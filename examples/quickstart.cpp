/**
 * @file
 * Quickstart: build a workload trace, run it on the monolithic machine
 * and on the three clustered partitionings of the paper, and print CPI
 * plus the critical-path breakdown.
 *
 * Usage: quickstart [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hh"
#include "core/timing_sim.hh"
#include "critpath/attribution.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "workloads/registry.hh"

using namespace csim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "vpr";
    const std::uint64_t count =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;

    WorkloadConfig wcfg;
    wcfg.targetInstructions = count;
    wcfg.seed = 1;
    Trace trace = buildAnnotatedTrace(name, wcfg);
    TraceStats ts = trace.stats();

    std::printf("workload %s: %llu instructions, "
                "%.1f%% branches (%.1f%% mispredicted), "
                "%.1f%% loads (%.1f%% L1 misses)\n\n",
                name.c_str(),
                static_cast<unsigned long long>(ts.instructions),
                100.0 * ts.branches / ts.instructions,
                100.0 * ts.mispredictRate(),
                100.0 * ts.loads / ts.instructions,
                100.0 * ts.l1MissRate());

    TextTable table({"config", "cycles", "CPI", "rel. CPI",
                     "glob/inst", "fwd", "contention", "fetch",
                     "window", "br.mispr", "mem"});

    double base_cpi = 0.0;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        MachineConfig cfg = n == 1 ? MachineConfig::monolithic()
                                   : MachineConfig::clustered(n);
        UnifiedSteering steering(UnifiedSteeringOptions{}, nullptr,
                                 nullptr);
        AgeScheduling age;
        SimResult res = TimingSim(cfg, trace, steering, age).run();
        CpBreakdown bd = analyzeFullRun(trace, res, cfg);
        const double total = static_cast<double>(bd.total());

        if (n == 1)
            base_cpi = res.cpi();
        auto pct = [&](CpCategory c) {
            return formatPercent(bd[c] / total, 1);
        };
        table.addRow({cfg.name(),
                      std::to_string(res.cycles),
                      formatDouble(res.cpi(), 3),
                      formatDouble(res.cpi() / base_cpi, 3),
                      formatDouble(res.globalValuesPerInst(), 3),
                      pct(CpCategory::FwdDelay),
                      pct(CpCategory::Contention),
                      pct(CpCategory::Fetch),
                      pct(CpCategory::Window),
                      pct(CpCategory::BrMispredict),
                      pct(CpCategory::MemLatency)});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(dependence-based steering, age scheduling; "
                "breakdown columns are shares of the critical path)\n");
    return 0;
}
