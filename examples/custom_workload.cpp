/**
 * @file
 * Building your own workload with the public API: write a program in
 * the mini-ISA with the Program builder, execute it functionally,
 * annotate the trace, and study how it clusters. The example program
 * is the paper's Fig. 12 loop — a linear search with an early exit —
 * whose most critical consumer (the loop-carried pointer update) is
 * not first in fetch order.
 */

#include <cstdio>

#include "common/stats.hh"
#include "core/timing_sim.hh"
#include "critpath/attribution.hh"
#include "critpath/consumer_analysis.hh"
#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"

using namespace csim;

int
main()
{
    const auto r = Program::r;

    // --- 1. Write the Fig. 12 loop in the mini-ISA. ---
    //   for (i = 0; i < N; ++i) if (A[i] == a) break;
    // restarted over random search targets so it runs indefinitely.
    Program p;
    Label outer = p.newLabel();
    Label scan = p.newLabel();
    Label found = p.newLabel();

    p.bind(outer);
    p.addi(r(4), r(31), 0);                 // i = 0
    p.addi(r(2), r(6), 0);                  // cursor = &A[0]
    p.add(r(0), r(0), r(5));                // evolve the target
    p.and_(r(0), r(0), r(7));

    p.bind(scan);
    p.addi(r(4), r(4), 1);                  // addl: trip counter
    p.ld(r(9), r(2), 0);                    // ldl: A[i]
    p.cmple(r(3), r(4), r(5));              // cmple: i < N
    p.addi(r(2), r(2), 4);                  // lda: cursor advance --
    p.addi(r(2), r(2), 4);                  //  2-deep, clearly the
                                            //  critical recurrence
    p.cmpeq(r(8), r(9), r(0));              // cmpeq: A[i] == a
    p.bne(r(8), found);                     // early exit
    p.bne(r(3), scan);                      // loop back

    p.bind(found);
    p.jmp(outer);
    p.halt();
    p.finalize();

    std::printf("--- program ---\n%s\n", p.disassemble().c_str());

    // --- 2. Execute functionally with seeded data. ---
    Emulator emu(p);
    emu.setReg(r(5), 64);                   // N
    emu.setReg(r(6), 0x100000);             // A
    emu.setReg(r(7), 127);                  // target mask
    Rng rng(42);
    for (int i = 0; i < 64; ++i)
        emu.poke(0x100000 + 8 * i, rng.range(0, 127));
    Trace trace = emu.run(40000);

    // --- 3. Annotate: dataflow, branch prediction, cache. ---
    trace.linkProducers();
    annotateBranches(trace);
    annotateMemory(trace);
    TraceStats ts = trace.stats();
    std::printf("trace: %llu instructions, mispredict rate %.1f%%\n\n",
                static_cast<unsigned long long>(ts.instructions),
                100.0 * ts.mispredictRate());

    // --- 4. Simulate monolithic vs 8x1w clusters. ---
    TextTable t({"config", "CPI", "fwd CPI", "contention CPI"});
    for (unsigned n : {1u, 8u}) {
        const MachineConfig mc = n == 1 ? MachineConfig::monolithic()
                                        : MachineConfig::clustered(n);
        UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr,
                              nullptr);
        AgeScheduling age;
        SimResult res = TimingSim(mc, trace, steer, age).run();
        CpBreakdown bd = analyzeFullRun(trace, res, mc);
        const double inst = static_cast<double>(res.instructions);
        t.addRow({mc.name(), formatDouble(res.cpi(), 3),
                  formatDouble(bd[CpCategory::FwdDelay] / inst, 3),
                  formatDouble(bd[CpCategory::Contention] / inst, 3)});
    }
    std::printf("%s\n", t.str().c_str());

    // --- 5. Consumer analysis: is the critical consumer first? ---
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    SimResult mono = TimingSim(MachineConfig::monolithic(), trace,
                               steer, age).run();
    ConsumerAnalysis ca = analyzeConsumers(
        trace, mono, MachineConfig::monolithic());
    std::printf("multi-consumer values: %llu; most critical consumer "
                "not first in fetch order: %.0f%% (the Fig. 12/13 "
                "hazard)\n",
                static_cast<unsigned long long>(
                    ca.multiConsumerValues),
                100.0 * ca.mostCriticalNotFirstFraction);
    return 0;
}
