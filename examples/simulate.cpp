/**
 * @file
 * General-purpose CLI driver: run any (workload, machine, policy)
 * combination and print CPI, the critical-path breakdown, bypass
 * traffic and steering statistics. The knobs cover everything the
 * paper varies: cluster count and width, forwarding latency,
 * instruction count, seeds, and the policy stack.
 *
 * Usage:
 *   simulate [options]
 *     --workload NAME    one of the 12 proxies, or 'all'   [vpr]
 *     --clusters N       1..16                             [4]
 *     --width W          issue width per cluster           [8/N]
 *     --fwd L            inter-cluster latency, cycles     [2]
 *     --policy P         modn|loadbal|dep|focused|loc|stall|
 *                        proactive|block|adaptive          [focused]
 *     --instructions N   dynamic instructions per seed     [60000]
 *     --seeds a,b,c      comma-separated seeds             [1,2,3]
 *     --save PATH        also write the (last) trace to PATH
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "policy/extra_steering.hh"
#include "policy/scheduling.hh"
#include "trace/trace_io.hh"

using namespace csim;

namespace {

struct Options
{
    std::string workload = "vpr";
    unsigned clusters = 4;
    unsigned width = 0;           // 0: derive as 8/clusters
    unsigned fwd = 2;
    std::string policy = "focused";
    std::uint64_t instructions = 60000;
    std::vector<std::uint64_t> seeds = {1, 2, 3};
    std::string savePath;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: simulate [--workload W|all] [--clusters N] "
                 "[--width W] [--fwd L]\n"
                 "       [--policy modn|loadbal|dep|focused|loc|stall|"
                 "proactive|block|adaptive]\n"
                 "       [--instructions N] [--seeds a,b,c] "
                 "[--save PATH]\n");
    std::exit(1);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--workload") {
            o.workload = next();
        } else if (a == "--clusters") {
            o.clusters = std::atoi(next());
        } else if (a == "--width") {
            o.width = std::atoi(next());
        } else if (a == "--fwd") {
            o.fwd = std::atoi(next());
        } else if (a == "--policy") {
            o.policy = next();
        } else if (a == "--instructions") {
            o.instructions = std::strtoull(next(), nullptr, 10);
        } else if (a == "--seeds") {
            o.seeds.clear();
            const char *s = next();
            for (const char *p = s; *p;) {
                o.seeds.push_back(std::strtoull(p, nullptr, 10));
                while (*p && *p != ',')
                    ++p;
                if (*p == ',')
                    ++p;
            }
        } else if (a == "--save") {
            o.savePath = next();
        } else {
            usage();
        }
    }
    if (o.clusters < 1 || o.clusters > 16 || o.seeds.empty())
        usage();
    return o;
}

/** Run one workload under the requested setup; returns normalized
 *  CPI data for the report. */
void
runOne(const Options &o, const std::string &wl,
       const MachineConfig &mc, TextTable &table)
{
    ExperimentConfig cfg;
    cfg.instructions = o.instructions;
    cfg.seeds = o.seeds;

    AggregateResult agg;
    // The extra policies are run directly (no predictors needed).
    if (o.policy == "block" || o.policy == "adaptive") {
        for (std::uint64_t seed : o.seeds) {
            WorkloadConfig wcfg;
            wcfg.targetInstructions = o.instructions;
            wcfg.seed = seed;
            Trace trace = buildAnnotatedTrace(wl, wcfg);
            AgeScheduling age;
            SimResult res;
            if (o.policy == "block") {
                BlockSteering steer;
                res = TimingSim(mc, trace, steer, age).run();
            } else {
                AdaptiveClusterSteering steer;
                res = TimingSim(mc, trace, steer, age).run();
            }
            CpBreakdown bd = analyzeFullRun(trace, res, mc);
            agg.instructions += res.instructions;
            agg.cycles += res.cycles;
            agg.globalValues += res.globalValues;
            for (std::size_t c = 0; c < numCpCategories; ++c)
                agg.categoryCycles[c] += bd.cycles[c];
            if (!o.savePath.empty())
                saveTrace(trace, o.savePath);
        }
    } else {
        PolicyKind kind = PolicyKind::Focused;
        if (o.policy == "modn")
            kind = PolicyKind::ModN;
        else if (o.policy == "loadbal")
            kind = PolicyKind::LoadBal;
        else if (o.policy == "dep")
            kind = PolicyKind::Dep;
        else if (o.policy == "focused")
            kind = PolicyKind::Focused;
        else if (o.policy == "loc")
            kind = PolicyKind::FocusedLoc;
        else if (o.policy == "stall")
            kind = PolicyKind::FocusedLocStall;
        else if (o.policy == "proactive")
            kind = PolicyKind::FocusedLocStallProactive;
        else
            usage();
        agg = runAggregate(wl, mc, kind, cfg);
        if (!o.savePath.empty()) {
            WorkloadConfig wcfg;
            wcfg.targetInstructions = o.instructions;
            wcfg.seed = o.seeds.back();
            Trace trace = buildAnnotatedTrace(wl, wcfg);
            saveTrace(trace, o.savePath);
        }
    }

    auto cat = [&](CpCategory c) {
        return formatDouble(agg.categoryCpi(c), 3);
    };
    table.addRow({wl, formatDouble(agg.cpi(), 3),
                  formatDouble(agg.globalValuesPerInst(), 3),
                  cat(CpCategory::FwdDelay),
                  cat(CpCategory::Contention),
                  cat(CpCategory::Fetch),
                  cat(CpCategory::MemLatency),
                  cat(CpCategory::BrMispredict)});
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    MachineConfig mc = o.clusters == 1 && (o.width == 0 || o.width == 8)
        ? MachineConfig::monolithic()
        : (o.width == 0 && 8 % o.clusters == 0
               ? MachineConfig::clustered(o.clusters)
               : MachineConfig::generic(o.clusters,
                                        o.width ? o.width
                                                : 8 / o.clusters));
    mc.fwdLatency = o.fwd;

    std::printf("machine %s, fwd latency %u, policy %s, %llu "
                "instructions x %zu seeds\n\n",
                mc.name().c_str(), mc.fwdLatency, o.policy.c_str(),
                static_cast<unsigned long long>(o.instructions),
                o.seeds.size());

    TextTable table({"workload", "CPI", "glob/inst", "fwd",
                     "contention", "fetch", "mem", "br.mispr"});
    if (o.workload == "all") {
        for (const std::string &wl : workloadNames())
            runOne(o, wl, mc, table);
    } else {
        runOne(o, o.workload, mc, table);
    }
    std::printf("%s\n(breakdown columns in CPI units)\n",
                table.str().c_str());
    return 0;
}
