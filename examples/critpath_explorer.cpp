/**
 * @file
 * Critical-path explorer: run one workload on one machine/policy and
 * dump per-static-instruction statistics — dynamic count, ground-truth
 * likelihood of criticality, the LoC the predictor would report,
 * steering placement outcomes, and how often the instruction's
 * operands crossed clusters. Invaluable for understanding *why* a
 * policy behaves the way it does on a given dataflow shape.
 *
 * Usage: critpath_explorer [workload] [clusters] [policy] [instrs]
 *   policy: dep | focused | loc | stall | proactive
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace csim;

namespace {

PolicyKind
parsePolicy(const std::string &s)
{
    if (s == "dep")
        return PolicyKind::Dep;
    if (s == "focused")
        return PolicyKind::Focused;
    if (s == "loc")
        return PolicyKind::FocusedLoc;
    if (s == "stall")
        return PolicyKind::FocusedLocStall;
    return PolicyKind::FocusedLocStallProactive;
}

struct PcStats
{
    std::uint64_t execs = 0;
    std::uint64_t critical = 0;
    std::uint64_t collocated = 0;
    std::uint64_t loadBalanced = 0;
    std::uint64_t proactive = 0;
    std::uint64_t noProducer = 0;
    std::uint64_t crossOperands = 0;
    std::uint64_t contentionCycles = 0;
    Opcode op = Opcode::Nop;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "vpr";
    const unsigned clusters =
        argc > 2 ? std::atoi(argv[2]) : 8;
    const PolicyKind kind =
        parsePolicy(argc > 3 ? argv[3] : "proactive");
    const std::uint64_t instrs =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 60000;

    WorkloadConfig wcfg;
    wcfg.targetInstructions = instrs;
    wcfg.seed = 1;
    Trace trace = buildAnnotatedTrace(workload, wcfg);

    const MachineConfig machine = clusters == 1
        ? MachineConfig::monolithic()
        : MachineConfig::clustered(clusters);
    ExperimentConfig cfg;
    PolicyRun run = runPolicy(trace, machine, kind, cfg);

    std::vector<bool> crit =
        criticalityGroundTruth(trace, run.sim, machine);

    std::map<Addr, PcStats> stats;
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        PcStats &s = stats[trace[i].pc];
        s.op = trace[i].op;
        ++s.execs;
        if (crit[i])
            ++s.critical;
        const InstTiming &t = run.sim.timing[i];
        switch (t.reason) {
          case SteerReason::Collocated:
            ++s.collocated;
            break;
          case SteerReason::LoadBalanced:
            ++s.loadBalanced;
            break;
          case SteerReason::ProactiveLB:
            ++s.proactive;
            break;
          default:
            ++s.noProducer;
            break;
        }
        for (int b = 0; b < numSrcSlots; ++b)
            if ((t.crossMask >> b) & 1)
                ++s.crossOperands;
        s.contentionCycles += t.issue - t.ready;
    }

    std::printf("%s on %s with %s: CPI %.3f, global values/inst "
                "%.3f\n\n",
                workload.c_str(), machine.name().c_str(),
                policyName(kind), run.sim.cpi(),
                run.sim.globalValuesPerInst());

    std::vector<std::pair<Addr, PcStats>> rows(stats.begin(),
                                               stats.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.critical > b.second.critical;
              });

    TextTable t({"pc", "op", "execs", "LoC", "colloc", "loadbal",
                 "proact", "cross", "cont.cyc"});
    int shown = 0;
    for (const auto &[pc, s] : rows) {
        if (++shown > 25)
            break;
        t.addRow({std::to_string(pc),
                  std::string(opName(s.op)),
                  std::to_string(s.execs),
                  formatPercent(static_cast<double>(s.critical) /
                                    static_cast<double>(s.execs), 0),
                  std::to_string(s.collocated),
                  std::to_string(s.loadBalanced),
                  std::to_string(s.proactive),
                  std::to_string(s.crossOperands),
                  std::to_string(s.contentionCycles)});
    }
    std::printf("%s\n(top 25 static instructions by ground-truth "
                "criticality)\n", t.str().c_str());
    return 0;
}
