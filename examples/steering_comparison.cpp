/**
 * @file
 * Steering-policy shoot-out: run one workload across every cluster
 * configuration and every policy stack, from naive round-robin to the
 * paper's full focused+LoC+stall+proactive pipeline, and print the
 * normalized CPI matrix plus bypass traffic. A compact way to see the
 * paper's whole story on one screen.
 *
 * Usage: steering_comparison [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace csim;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gzip";
    const std::uint64_t count =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60000;

    ExperimentConfig cfg;
    cfg.instructions = count;
    cfg.seeds = {1};

    const PolicyKind policies[] = {
        PolicyKind::ModN,
        PolicyKind::LoadBal,
        PolicyKind::Dep,
        PolicyKind::Focused,
        PolicyKind::FocusedLoc,
        PolicyKind::FocusedLocStall,
        PolicyKind::FocusedLocStallProactive,
    };

    // Baseline: the monolithic machine under dependence steering.
    AggregateResult mono = runAggregate(
        workload, MachineConfig::monolithic(), PolicyKind::Dep, cfg);
    const double base = mono.cpi();

    std::printf("%s, %llu instructions; CPI normalized to 1x8w "
                "(CPI %.3f)\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(count), base);

    TextTable t({"policy", "2x4w", "4x2w", "8x1w", "glob/inst(8x1w)"});
    for (PolicyKind kind : policies) {
        std::vector<std::string> row{policyName(kind)};
        double traffic8 = 0.0;
        for (unsigned n : {2u, 4u, 8u}) {
            AggregateResult res = runAggregate(
                workload, MachineConfig::clustered(n), kind, cfg);
            row.push_back(formatDouble(res.cpi() / base, 3));
            if (n == 8)
                traffic8 = res.globalValuesPerInst();
        }
        row.push_back(formatDouble(traffic8, 3));
        t.addRow(std::move(row));
    }

    // The idealized bound for context.
    std::vector<std::string> ideal_row{"(ideal list sched)"};
    AggregateResult ideal_mono = runIdealAggregate(
        workload, MachineConfig::monolithic(), cfg);
    double traffic8 = 0.0;
    for (unsigned n : {2u, 4u, 8u}) {
        AggregateResult res = runIdealAggregate(
            workload, MachineConfig::clustered(n), cfg);
        ideal_row.push_back(
            formatDouble(res.cpi() / ideal_mono.cpi(), 3));
        if (n == 8)
            traffic8 = res.globalValuesPerInst();
    }
    ideal_row.push_back(formatDouble(traffic8, 3));
    t.addRow(std::move(ideal_row));

    std::printf("%s\n", t.str().c_str());
    return 0;
}
