/**
 * @file
 * Critical-path consumers: the full-run breakdown used by the benches
 * (Figs. 5, 6, 14) and the online trainer that emulates Fields et al.'s
 * sampling criticality detector by analysing the committed stream in
 * chunks and training the binary and LoC predictors (paper Secs. 4, 7).
 */

#ifndef CSIM_CRITPATH_ATTRIBUTION_HH
#define CSIM_CRITPATH_ATTRIBUTION_HH

#include <cstdint>
#include <vector>

#include "core/policy.hh"
#include "core/timing.hh"
#include "critpath/depgraph.hh"
#include "predict/criticality_predictor.hh"
#include "predict/loc_predictor.hh"
#include "trace/trace.hh"

namespace csim {

/** Critical-path breakdown of a completed run (whole-trace walk). */
CpBreakdown analyzeFullRun(const Trace &trace, const SimResult &result,
                           const MachineConfig &config);

/**
 * Ground-truth per-instruction criticality: chunked critical-path
 * analysis over a completed run. Returns one flag per dynamic
 * instruction (E node on its chunk's critical path).
 */
std::vector<bool> criticalityGroundTruth(const Trace &trace,
                                         const SimResult &result,
                                         const MachineConfig &config,
                                         std::uint64_t chunk_size = 8192);

/**
 * Commit-stream observer that trains the criticality predictors online.
 *
 * Buffers committed instructions and, every chunk_size commits, runs
 * the dependence-graph analysis on the chunk; every instruction whose E
 * node lies on the chunk's critical path trains "critical", all others
 * train "not critical" — the inc-8/dec-1 dynamics of the Fields
 * predictor and the probabilistic updates of the LoC predictor do the
 * rest. This plays the role of the paper's token-passing detector that
 * "samples the retiring instruction stream".
 */
class OnlineCriticalityTrainer : public CommitListener
{
  public:
    /** Either predictor may be null (it simply is not trained). */
    OnlineCriticalityTrainer(const Trace &trace,
                             CriticalityPredictor *crit_pred,
                             LocPredictor *loc_pred,
                             std::uint64_t chunk_size = 8192);

    void onCommit(const CoreView &view, InstId id) override;
    void onRunEnd(const CoreView &view) override;

    /** Registers the trainer's progress stats (as live formulas over
     *  its members) and attaches the predictors' counters. */
    void registerStats(StatsRegistry &registry) override;

    std::uint64_t chunksAnalyzed() const { return chunks_; }
    std::uint64_t trainedCritical() const { return trainedCritical_; }
    std::uint64_t trainedTotal() const { return trainedTotal_; }

    /** Prepare for a new run over the same trace (predictors persist). */
    void restart();

  private:
    void flush(const CoreView &view);

    const Trace &trace_;
    CriticalityPredictor *critPred_;
    LocPredictor *locPred_;
    std::uint64_t chunkSize_;

    std::uint64_t chunkBegin_ = 0;
    std::vector<InstTiming> buffer_;
    std::uint64_t chunks_ = 0;
    std::uint64_t trainedCritical_ = 0;
    std::uint64_t trainedTotal_ = 0;
};

} // namespace csim

#endif // CSIM_CRITPATH_ATTRIBUTION_HH
