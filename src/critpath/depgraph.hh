/**
 * @file
 * Fields-style critical-path analysis over observed execution timings.
 *
 * The dependence-graph model gives every dynamic instruction three
 * nodes: D (dispatch into the window), E (execution complete) and C
 * (commit). Edges encode the machine constraints: in-order fetch and
 * dispatch bandwidth, branch-misprediction redirects, ROB/window
 * stalls, dataflow (with inter-cluster forwarding), functional-unit
 * latency, issue contention and in-order commit. Because this
 * implementation works from *observed* timestamps, the critical path is
 * recovered with a backward "last-arriving edge" walk from the final
 * commit, attributing every cycle of runtime to exactly one category
 * (paper Sec. 3, Figs. 5-6).
 */

#ifndef CSIM_CRITPATH_DEPGRAPH_HH
#define CSIM_CRITPATH_DEPGRAPH_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/machine_config.hh"
#include "core/timing.hh"
#include "trace/trace.hh"

namespace csim {

/** Categories of critical-path cycles (Fig. 5 legend). */
enum class CpCategory : std::uint8_t
{
    Fetch,          ///< front-end bandwidth, in-order fetch
    BrMispredict,   ///< redirect + pipeline refill
    Window,         ///< ROB full, window full, steering stalls
    Execute,        ///< functional-unit latency (and fixed pipe steps)
    MemLatency,     ///< load latency beyond the L1 load-to-use
    FwdDelay,       ///< inter-cluster forwarding on critical dataflow
    Contention,     ///< issue delayed past readiness
    NumCategories
};

const char *cpCategoryName(CpCategory cat);

inline constexpr std::size_t numCpCategories =
    static_cast<std::size_t>(CpCategory::NumCategories);

/** Cycle attribution plus the event counts behind Fig. 6. */
struct CpBreakdown
{
    std::array<std::uint64_t, numCpCategories> cycles = {};

    // Fig. 6(a): contention stall events by steer-time prediction.
    std::uint64_t contentionEventsCritical = 0;
    std::uint64_t contentionEventsOther = 0;

    // Fig. 6(b): critical forwarding events by cause.
    std::uint64_t fwdEventsLoadBal = 0;
    std::uint64_t fwdEventsDyadic = 0;
    std::uint64_t fwdEventsOther = 0;

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t c : cycles)
            t += c;
        return t;
    }

    std::uint64_t
    operator[](CpCategory cat) const
    {
        return cycles[static_cast<std::size_t>(cat)];
    }
};

/** Result of one critical-path walk. */
struct CriticalPathResult
{
    CpBreakdown breakdown;
    /** criticalExec[i - begin]: instruction i's E node is on the path. */
    std::vector<bool> criticalExec;
};

/**
 * Walk the critical path of the instruction range [begin, end).
 *
 * @param trace The full trace (records indexed absolutely).
 * @param timing timing[i - begin] holds instruction i's timestamps.
 * @param config The machine the timings came from.
 * @param begin First instruction of the analysed region.
 *
 * When the range is the whole run starting at instruction 0, the
 * attributed cycles sum exactly to the commit time of the last
 * instruction. For interior chunks the walk stops at the region
 * boundary, which is sufficient for predictor training.
 */
CriticalPathResult
analyzeCriticalPath(const Trace &trace,
                    std::span<const InstTiming> timing,
                    const MachineConfig &config, std::uint64_t begin);

} // namespace csim

#endif // CSIM_CRITPATH_DEPGRAPH_HH
