#include "critpath/attribution.hh"

#include <span>

#include "common/logging.hh"

namespace csim {

CpBreakdown
analyzeFullRun(const Trace &trace, const SimResult &result,
               const MachineConfig &config)
{
    CSIM_ASSERT(result.timing.size() == trace.size());
    CriticalPathResult res = analyzeCriticalPath(
        trace, std::span<const InstTiming>(result.timing), config, 0);
    return res.breakdown;
}

std::vector<bool>
criticalityGroundTruth(const Trace &trace, const SimResult &result,
                       const MachineConfig &config,
                       std::uint64_t chunk_size)
{
    CSIM_ASSERT(chunk_size > 0);
    const std::uint64_t n = trace.size();
    std::vector<bool> critical(n, false);
    for (std::uint64_t begin = 0; begin < n; begin += chunk_size) {
        const std::uint64_t len = std::min(chunk_size, n - begin);
        CriticalPathResult res = analyzeCriticalPath(
            trace,
            std::span<const InstTiming>(result.timing.data() + begin,
                                        len),
            config, begin);
        for (std::uint64_t k = 0; k < len; ++k)
            if (res.criticalExec[k])
                critical[begin + k] = true;
    }
    return critical;
}

OnlineCriticalityTrainer::OnlineCriticalityTrainer(
    const Trace &trace, CriticalityPredictor *crit_pred,
    LocPredictor *loc_pred, std::uint64_t chunk_size)
    : trace_(trace), critPred_(crit_pred), locPred_(loc_pred),
      chunkSize_(chunk_size)
{
    CSIM_ASSERT(chunk_size > 0);
    buffer_.reserve(chunk_size);
}

void
OnlineCriticalityTrainer::registerStats(StatsRegistry &registry)
{
    // The trainer's own progress lives in plain members (the counters
    // predate the registry); expose them as live formulas so snapshots
    // always see the current values without double bookkeeping.
    registry.addFormula(
        "train.chunks", [this] { return static_cast<double>(chunks_); },
        "commit chunks analysed by the online trainer");
    registry.addFormula(
        "train.trainedTotal",
        [this] { return static_cast<double>(trainedTotal_); },
        "instructions used to train the criticality predictors");
    registry.addFormula(
        "train.trainedCritical",
        [this] { return static_cast<double>(trainedCritical_); },
        "training instructions whose E node was chunk-critical");
    if (critPred_)
        critPred_->attachStats(registry);
    if (locPred_)
        locPred_->attachStats(registry);
}

void
OnlineCriticalityTrainer::restart()
{
    chunkBegin_ = 0;
    buffer_.clear();
}

void
OnlineCriticalityTrainer::onCommit(const CoreView &view, InstId id)
{
    // Commits arrive strictly in order.
    CSIM_ASSERT(id == chunkBegin_ + buffer_.size());
    buffer_.push_back(view.timingOf(id));
    if (buffer_.size() >= chunkSize_)
        flush(view);
}

void
OnlineCriticalityTrainer::onRunEnd(const CoreView &view)
{
    if (!buffer_.empty())
        flush(view);
}

void
OnlineCriticalityTrainer::flush(const CoreView &view)
{
    (void)view;
    CriticalPathResult res = analyzeCriticalPath(
        trace_, std::span<const InstTiming>(buffer_), view.config(),
        chunkBegin_);
    for (std::size_t k = 0; k < buffer_.size(); ++k) {
        const bool crit = res.criticalExec[k];
        const Addr pc = trace_[chunkBegin_ + k].pc;
        if (critPred_)
            critPred_->train(pc, crit);
        if (locPred_)
            locPred_->train(pc, crit);
        ++trainedTotal_;
        if (crit)
            ++trainedCritical_;
    }
    ++chunks_;
    chunkBegin_ += buffer_.size();
    buffer_.clear();
}

} // namespace csim
