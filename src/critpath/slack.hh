/**
 * @file
 * Local slack analysis (paper Sec. 4's argument against slack as a
 * scheduling metric).
 *
 * The slack of a dynamic instruction is how long its completion could
 * have been delayed without delaying anything that consumed it. Fields
 * et al. [9] define it globally; we compute the standard local
 * approximation: the gap between a value's arrival and its first use.
 * The paper's point (Sec. 4) is that slack is a *dynamic-instance*
 * quantity — a branch has zero slack when mispredicted and enormous
 * slack otherwise — so a static instruction's slack is a wide
 * histogram, unusable as a single priority number, whereas LoC
 * compresses dynamic behaviour into one static likelihood. The
 * analysis here quantifies exactly that: per-static-instruction slack
 * variability vs LoC's single number.
 */

#ifndef CSIM_CRITPATH_SLACK_HH
#define CSIM_CRITPATH_SLACK_HH

#include <cstdint>
#include <vector>

#include "core/machine_config.hh"
#include "core/timing.hh"
#include "trace/trace.hh"

namespace csim {

/** Slack statistics of one static instruction. */
struct StaticSlack
{
    Addr pc = 0;
    std::uint64_t instances = 0;
    double meanSlack = 0.0;
    double minSlack = 0.0;
    double maxSlack = 0.0;
    /** Standard deviation across dynamic instances. */
    double stddev = 0.0;
};

struct SlackAnalysis
{
    /** Local slack per dynamic instruction (capped at `cap`). */
    std::vector<Cycle> localSlack;
    /** Per-static-instruction aggregation, sorted by instances. */
    std::vector<StaticSlack> perStatic;
    /** Fraction of static instructions (weighted by dynamic count)
     *  whose slack stddev exceeds half their mean — the "wide
     *  histogram" population that defeats a scalar slack metric. */
    double highVarianceFraction = 0.0;
};

/**
 * Compute local slack over a completed run.
 *
 * For an instruction with consumers, local slack is the smallest gap
 * between its value's arrival at a consumer (complete + forwarding)
 * and that consumer's issue. For an instruction with no consumers in
 * the window, it is the gap to its own commit. Slack is capped so
 * never-consumed values do not blow up the statistics.
 */
SlackAnalysis analyzeSlack(const Trace &trace, const SimResult &result,
                           const MachineConfig &config,
                           Cycle cap = 256);

} // namespace csim

#endif // CSIM_CRITPATH_SLACK_HH
