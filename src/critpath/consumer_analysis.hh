/**
 * @file
 * Producer-consumer criticality analysis (paper Sec. 6).
 *
 * Quantifies the two dataflow properties the paper reports in support
 * of proactive load-balancing:
 *  - most critical consumers are statically unique (~80% of values),
 *  - a static consumer either almost always or almost never is the
 *    most critical consumer of its operand (bimodal tendency),
 * plus the Sec. 6 motivation stat: among critical producers with
 * multiple consumers, the most critical consumer is frequently not
 * first in fetch order (>50%).
 */

#ifndef CSIM_CRITPATH_CONSUMER_ANALYSIS_HH
#define CSIM_CRITPATH_CONSUMER_ANALYSIS_HH

#include "common/stats.hh"
#include "core/timing.hh"
#include "critpath/depgraph.hh"
#include "trace/trace.hh"

namespace csim {

struct ConsumerAnalysis
{
    /** Dynamic values considered (>= 1 register consumer). */
    std::uint64_t valuesAnalyzed = 0;
    /** Of those, values with >= 2 consumers. */
    std::uint64_t multiConsumerValues = 0;
    /**
     * Fraction of dynamic values whose most critical consumer is the
     * statically modal one for that producer PC.
     */
    double staticallyUniqueFraction = 0.0;
    /**
     * Histogram over [0,1] of each static consumer's tendency to be
     * the most critical consumer of its operand (bimodal expected).
     */
    Histogram tendency{10, 0.0, 1.0};
    /**
     * Among critical producers with multiple consumers: fraction whose
     * most critical consumer is NOT first in fetch order.
     */
    double mostCriticalNotFirstFraction = 0.0;
};

/**
 * Analyse the producer/consumer criticality structure of a completed
 * run. Consumer criticality uses per-PC ground-truth criticality
 * frequencies derived from chunked critical-path analysis.
 */
ConsumerAnalysis analyzeConsumers(const Trace &trace,
                                  const SimResult &result,
                                  const MachineConfig &config);

} // namespace csim

#endif // CSIM_CRITPATH_CONSUMER_ANALYSIS_HH
