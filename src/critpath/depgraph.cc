#include "critpath/depgraph.hh"

#include "common/logging.hh"

namespace csim {

const char *
cpCategoryName(CpCategory cat)
{
    switch (cat) {
      case CpCategory::Fetch: return "fetch";
      case CpCategory::BrMispredict: return "br. mispr.";
      case CpCategory::Window: return "window";
      case CpCategory::Execute: return "execute";
      case CpCategory::MemLatency: return "mem. latency";
      case CpCategory::FwdDelay: return "fwd. delay";
      case CpCategory::Contention: return "contention";
      default:
        CSIM_PANIC("cpCategoryName: bad category");
    }
}

namespace {

enum class NodeKind { Commit, Execute, Dispatch };

} // anonymous namespace

CriticalPathResult
analyzeCriticalPath(const Trace &trace,
                    std::span<const InstTiming> timing,
                    const MachineConfig &config, std::uint64_t begin)
{
    CriticalPathResult res;
    const std::uint64_t n = timing.size();
    res.criticalExec.assign(n, false);
    if (n == 0)
        return res;
    const std::uint64_t end = begin + n;

    auto tm = [&](std::uint64_t i) -> const InstTiming & {
        return timing[i - begin];
    };
    auto attr = [&](std::uint64_t cycles, CpCategory cat) {
        res.breakdown.cycles[static_cast<std::size_t>(cat)] += cycles;
    };

    // Most recent mispredicted conditional branch before each
    // instruction (region-local).
    std::vector<std::int64_t> last_mispred(n, -1);
    {
        std::int64_t last = -1;
        for (std::uint64_t i = begin; i < end; ++i) {
            last_mispred[i - begin] = last;
            if (trace[i].isCondBranch && trace[i].mispredicted)
                last = static_cast<std::int64_t>(i);
        }
    }

    const Cycle floor = (begin == 0) ? 0 : tm(begin).fetch;
    const unsigned depth = config.frontendDepth;
    const unsigned cw = config.commitWidth;

    NodeKind kind = NodeKind::Commit;
    std::uint64_t i = end - 1;
    bool done = false;

    while (!done) {
        switch (kind) {
          case NodeKind::Commit: {
            const InstTiming &t = tm(i);
            const Cycle T = t.commit;
            if (T == t.complete + 1) {
                attr(1, CpCategory::Execute);
                kind = NodeKind::Execute;
            } else if (i >= begin + cw &&
                       tm(i - cw).commit + 1 == T) {
                attr(1, CpCategory::Window);   // commit bandwidth
                i -= cw;
            } else if (i > begin && tm(i - 1).commit == T) {
                i -= 1;                        // in-order commit, 0 wt
            } else if (i > begin) {
                attr(T - tm(i - 1).commit, CpCategory::Window);
                i -= 1;
            } else {
                // Region-boundary commit stall.
                attr(T - t.complete - 1, CpCategory::Window);
                attr(1, CpCategory::Execute);
                kind = NodeKind::Execute;
            }
            break;
          }

          case NodeKind::Execute: {
            const InstTiming &t = tm(i);
            const TraceRecord &rec = trace[i];
            res.criticalExec[i - begin] = true;

            // Latency: split load-miss cycles out as memory latency.
            const unsigned base = opLatency(rec.op);
            const unsigned lat = rec.execLat;
            attr(std::min<unsigned>(lat, base), CpCategory::Execute);
            if (lat > base)
                attr(lat - base, CpCategory::MemLatency);

            // Contention: issued later than ready.
            CSIM_ASSERT(t.issue >= t.ready);
            const Cycle cont = t.issue - t.ready;
            if (cont > 0) {
                attr(cont, CpCategory::Contention);
                if (t.predictedCritical)
                    ++res.breakdown.contentionEventsCritical;
                else
                    ++res.breakdown.contentionEventsOther;
            }

            // What made it ready?
            if (t.ready == t.dispatch + 1) {
                attr(1, CpCategory::Execute);
                kind = NodeKind::Dispatch;
                break;
            }

            // A producer's arrival: find the last-arriving operand,
            // preferring one that paid the forwarding latency. When
            // several operands tie (parallel critical paths, e.g. the
            // two arms of a dataflow hammock), break the tie with a
            // per-instance hash so repeated executions distribute the
            // "critical" label across the near-critical twins — the
            // parallel-paths ambiguity Fields et al. note.
            std::int64_t candidates[numSrcSlots];
            bool candidate_cross[numSrcSlots];
            int num_candidates = 0;
            bool any_cross = false;
            for (int slot = 0; slot < numSrcSlots; ++slot) {
                const InstId p = rec.prod[slot];
                if (p == invalidInstId || p < begin)
                    continue;
                const bool cross =
                    (t.crossMask >> slot) & 1u;
                const Cycle avail = tm(p).complete +
                    (cross ? config.fwdLatency : 0);
                if (avail != t.ready)
                    continue;
                candidates[num_candidates] =
                    static_cast<std::int64_t>(p);
                candidate_cross[num_candidates] = cross;
                ++num_candidates;
                any_cross = any_cross || cross;
            }

            std::int64_t chosen = -1;
            bool chosen_cross = false;
            if (num_candidates == 1) {
                chosen = candidates[0];
                chosen_cross = candidate_cross[0];
            } else if (num_candidates > 1) {
                // Cross-cluster arrivals take precedence (they carry
                // the forwarding attribution); among equals, hash.
                int pool[numSrcSlots];
                int pool_size = 0;
                for (int k = 0; k < num_candidates; ++k)
                    if (candidate_cross[k] == any_cross)
                        pool[pool_size++] = k;
                const std::uint64_t h =
                    (i * 0x9e3779b97f4a7c15ull) >> 33;
                const int pick = pool[h % pool_size];
                chosen = candidates[pick];
                chosen_cross = candidate_cross[pick];
            }

            if (chosen < 0) {
                // Producer outside the analysed region: stop here.
                attr(t.ready - floor, CpCategory::Fetch);
                done = true;
                break;
            }

            if (chosen_cross) {
                attr(config.fwdLatency, CpCategory::FwdDelay);
                if (t.reason == SteerReason::LoadBalanced ||
                    t.reason == SteerReason::ProactiveLB) {
                    ++res.breakdown.fwdEventsLoadBal;
                } else if (t.dyadicSplit) {
                    ++res.breakdown.fwdEventsDyadic;
                } else {
                    ++res.breakdown.fwdEventsOther;
                }
            }

            i = static_cast<std::uint64_t>(chosen);
            // kind stays Execute.
            break;
          }

          case NodeKind::Dispatch: {
            const InstTiming &t = tm(i);
            // Steering-stage stall (ROB full, window full, policy
            // stall) beyond the front-end pipeline.
            CSIM_ASSERT(t.dispatch >= t.fetch + depth);
            const Cycle gap = t.dispatch - (t.fetch + depth);
            if (gap > 0)
                attr(gap, CpCategory::Window);

            // Walk the fetch chain.
            std::uint64_t j = i;
            bool depth_pending = true;
            while (true) {
                const std::int64_t b = last_mispred[j - begin];
                const bool redirect = b >= 0 &&
                    static_cast<std::uint64_t>(b) >= begin &&
                    tm(j).fetch ==
                        tm(static_cast<std::uint64_t>(b)).complete + 1;
                if (depth_pending) {
                    attr(depth, redirect ? CpCategory::BrMispredict
                                         : CpCategory::Fetch);
                    depth_pending = false;
                }
                if (redirect) {
                    attr(1, CpCategory::BrMispredict);
                    i = static_cast<std::uint64_t>(b);
                    kind = NodeKind::Execute;
                    break;
                }
                if (j == begin) {
                    attr(tm(j).fetch - floor, CpCategory::Fetch);
                    done = true;
                    break;
                }
                attr(tm(j).fetch - tm(j - 1).fetch, CpCategory::Fetch);
                j -= 1;
            }
            break;
          }
        }
    }

    return res;
}

} // namespace csim
