#include "critpath/consumer_analysis.hh"

#include <unordered_map>

#include "critpath/attribution.hh"

namespace csim {

ConsumerAnalysis
analyzeConsumers(const Trace &trace, const SimResult &result,
                 const MachineConfig &config)
{
    ConsumerAnalysis out;
    const std::uint64_t n = trace.size();
    if (n == 0)
        return out;

    // Ground-truth criticality and per-PC criticality frequency (the
    // "true LoC" of each static instruction).
    std::vector<bool> critical =
        criticalityGroundTruth(trace, result, config);
    std::unordered_map<Addr, std::pair<std::uint64_t, std::uint64_t>>
        pc_crit;  // pc -> (critical count, total count)
    for (std::uint64_t i = 0; i < n; ++i) {
        auto &e = pc_crit[trace[i].pc];
        ++e.second;
        if (critical[i])
            ++e.first;
    }
    auto loc_truth = [&](Addr pc) {
        const auto &e = pc_crit[pc];
        return e.second ? static_cast<double>(e.first) /
            static_cast<double>(e.second) : 0.0;
    };

    // Register consumers of each dynamic value.
    std::vector<std::vector<InstId>> consumers(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        for (int slot = srcSlot1; slot <= srcSlot2; ++slot) {
            const InstId p = trace[i].prod[slot];
            if (p != invalidInstId)
                consumers[p].push_back(i);
        }
    }

    // For every dynamic value: the most critical consumer (by
    // ground-truth LoC, ties to the earlier consumer).
    // Per static producer: votes per most-critical-consumer PC.
    std::unordered_map<Addr, std::unordered_map<Addr, std::uint64_t>>
        votes;
    // Per static consumer: (times was most critical, times seen).
    std::unordered_map<Addr, std::pair<std::uint64_t, std::uint64_t>>
        consumer_tendency;

    std::uint64_t crit_multi = 0;
    std::uint64_t crit_multi_not_first = 0;

    for (std::uint64_t p = 0; p < n; ++p) {
        const auto &cons = consumers[p];
        if (cons.empty())
            continue;
        ++out.valuesAnalyzed;
        if (cons.size() >= 2)
            ++out.multiConsumerValues;

        InstId best = cons.front();
        double best_loc = loc_truth(trace[best].pc);
        for (std::size_t k = 1; k < cons.size(); ++k) {
            const double l = loc_truth(trace[cons[k]].pc);
            if (l > best_loc) {
                best_loc = l;
                best = cons[k];
            }
        }

        votes[trace[p].pc][trace[best].pc] += 1;
        for (InstId c : cons) {
            auto &e = consumer_tendency[trace[c].pc];
            ++e.second;
            if (c == best)
                ++e.first;
        }

        if (critical[p] && cons.size() >= 2) {
            ++crit_multi;
            if (best != cons.front())
                ++crit_multi_not_first;
        }
    }

    // Statically-unique most-critical consumer: fraction of dynamic
    // values whose most critical consumer is the modal one for their
    // producer PC.
    std::uint64_t modal_hits = 0;
    std::uint64_t total_values = 0;
    for (const auto &[ppc, per_consumer] : votes) {
        std::uint64_t max_votes = 0;
        std::uint64_t sum = 0;
        for (const auto &[cpc, v] : per_consumer) {
            sum += v;
            max_votes = std::max(max_votes, v);
        }
        modal_hits += max_votes;
        total_values += sum;
    }
    out.staticallyUniqueFraction = total_values ?
        static_cast<double>(modal_hits) /
        static_cast<double>(total_values) : 0.0;

    for (const auto &[cpc, e] : consumer_tendency) {
        (void)cpc;
        if (e.second > 0) {
            out.tendency.add(static_cast<double>(e.first) /
                             static_cast<double>(e.second));
        }
    }

    out.mostCriticalNotFirstFraction = crit_multi ?
        static_cast<double>(crit_multi_not_first) /
        static_cast<double>(crit_multi) : 0.0;

    return out;
}

} // namespace csim
