#include "critpath/slack.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.hh"

namespace csim {

SlackAnalysis
analyzeSlack(const Trace &trace, const SimResult &result,
             const MachineConfig &config, Cycle cap)
{
    SlackAnalysis out;
    const std::uint64_t n = trace.size();
    CSIM_ASSERT(result.timing.size() == n);
    out.localSlack.assign(n, cap);

    // Pass 1: first-use time of each value — min over consumers of
    // (consumer.issue - arrival).
    std::vector<bool> has_consumer(n, false);
    for (std::uint64_t i = 0; i < n; ++i) {
        const TraceRecord &rec = trace[i];
        const InstTiming &t = result.timing[i];
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = rec.prod[slot];
            if (p == invalidInstId)
                continue;
            const InstTiming &pt = result.timing[p];
            Cycle arrival = pt.complete;
            if (slot != srcSlotMem && pt.cluster != t.cluster)
                arrival += config.fwdLatency;
            const Cycle gap =
                t.issue >= arrival ? t.issue - arrival : 0;
            out.localSlack[p] = std::min(out.localSlack[p], gap);
            has_consumer[p] = true;
        }
    }

    // Pass 2: instructions whose timing is not consumer-driven.
    for (std::uint64_t i = 0; i < n; ++i) {
        const TraceRecord &rec = trace[i];
        const InstTiming &t = result.timing[i];
        if (rec.isCondBranch && rec.mispredicted) {
            // A mispredicted branch gates the fetch redirect.
            out.localSlack[i] = 0;
        } else if (!has_consumer[i]) {
            const Cycle own =
                t.commit > t.complete ? t.commit - t.complete : 0;
            out.localSlack[i] = std::min(own, cap);
        }
    }

    // Aggregate per static instruction.
    struct Acc
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double sumsq = 0.0;
        double mn = 1e18;
        double mx = 0.0;
    };
    std::unordered_map<Addr, Acc> acc;
    for (std::uint64_t i = 0; i < n; ++i) {
        Acc &a = acc[trace[i].pc];
        const double s = static_cast<double>(out.localSlack[i]);
        ++a.count;
        a.sum += s;
        a.sumsq += s * s;
        a.mn = std::min(a.mn, s);
        a.mx = std::max(a.mx, s);
    }

    std::uint64_t high_var_weight = 0;
    for (const auto &[pc, a] : acc) {
        StaticSlack s;
        s.pc = pc;
        s.instances = a.count;
        s.meanSlack = a.sum / static_cast<double>(a.count);
        s.minSlack = a.mn;
        s.maxSlack = a.mx;
        const double var = std::max(
            0.0, a.sumsq / static_cast<double>(a.count) -
                s.meanSlack * s.meanSlack);
        s.stddev = std::sqrt(var);
        if (s.stddev > 0.5 * std::max(1.0, s.meanSlack))
            high_var_weight += a.count;
        out.perStatic.push_back(s);
    }
    std::sort(out.perStatic.begin(), out.perStatic.end(),
              [](const StaticSlack &a, const StaticSlack &b) {
                  return a.instances > b.instances;
              });
    out.highVarianceFraction = n ?
        static_cast<double>(high_var_weight) /
        static_cast<double>(n) : 0.0;
    return out;
}

} // namespace csim
