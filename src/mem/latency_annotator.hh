/**
 * @file
 * Cache latency annotation pass: replays the trace's memory accesses
 * through the L1 model in program order and rewrites each load's
 * execution latency with its hit/miss outcome.
 */

#ifndef CSIM_MEM_LATENCY_ANNOTATOR_HH
#define CSIM_MEM_LATENCY_ANNOTATOR_HH

#include "mem/cache.hh"
#include "trace/trace.hh"

namespace csim {

struct MemoryModelConfig
{
    CacheConfig l1 = CacheConfig{};
    /** Load-to-use latency on an L1 hit (Alpha 21264: 3 cycles). */
    unsigned loadToUse = 3;
    /** Additional latency on an L1 miss (infinite 20-cycle L2). */
    unsigned l2Latency = 20;
};

struct MemAnnotateResult
{
    CacheStats l1;
    std::uint64_t loadMisses = 0;
};

/**
 * Annotate rec.execLat and rec.l1Miss for every load; stores access the
 * cache (write-allocate) but keep their 1-cycle occupancy.
 */
MemAnnotateResult annotateMemory(Trace &trace,
                                 const MemoryModelConfig &config =
                                     MemoryModelConfig{});

/**
 * Same pass against a caller-owned L1 whose contents persist across
 * calls — the streaming-build form: annotating chunk by chunk through
 * one cache yields exactly the monolithic pass's outcomes. The
 * returned l1 stats cover the cache's whole lifetime so far.
 */
MemAnnotateResult annotateMemory(Trace &trace, Cache &l1,
                                 const MemoryModelConfig &config =
                                     MemoryModelConfig{});

} // namespace csim

#endif // CSIM_MEM_LATENCY_ANNOTATOR_HH
