#include "mem/latency_annotator.hh"

#include "common/logging.hh"

namespace csim {

MemAnnotateResult
annotateMemory(Trace &trace, const MemoryModelConfig &config)
{
    Cache l1(config.l1);
    return annotateMemory(trace, l1, config);
}

MemAnnotateResult
annotateMemory(Trace &trace, Cache &l1, const MemoryModelConfig &config)
{
    MemAnnotateResult res;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        TraceRecord &rec = trace[i];
        if (rec.isLoad()) {
            bool hit = l1.access(rec.memAddr);
            rec.l1Miss = !hit;
            unsigned lat = config.loadToUse + (hit ? 0 : config.l2Latency);
            CSIM_ASSERT(lat <= 255);
            rec.execLat = static_cast<std::uint8_t>(lat);
            if (!hit)
                ++res.loadMisses;
        } else if (rec.isStore()) {
            l1.access(rec.memAddr);
        }
    }

    res.l1 = l1.stats();
    return res;
}

} // namespace csim
