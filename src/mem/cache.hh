/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Models the paper's L1 data cache (32KB, 4-way, 64B lines, 2-cycle
 * access) backed by an infinite L2 with a 20-cycle latency. Only hit/miss
 * behaviour is modelled; the latency annotation pass translates outcomes
 * into load execution latencies.
 */

#ifndef CSIM_MEM_CACHE_HH
#define CSIM_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace csim {

struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
};

struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

class Cache
{
  public:
    explicit Cache(const CacheConfig &config = CacheConfig{});

    /**
     * Access the line containing addr, allocating on miss
     * (write-allocate for stores as well).
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Hit/miss check without changing state (for tests). */
    bool probe(Addr addr) const;

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }
    unsigned numSets() const { return numSets_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig config_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Way> ways_;  // numSets_ * assoc, set-major
    std::uint64_t tick_ = 0;
    CacheStats stats_;
};

} // namespace csim

#endif // CSIM_MEM_CACHE_HH
