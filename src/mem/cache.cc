#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace csim {

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    CSIM_ASSERT(config.lineBytes > 0 &&
                std::has_single_bit(std::uint64_t{config.lineBytes}));
    CSIM_ASSERT(config.assoc > 0);
    const std::uint64_t lines = config.sizeBytes / config.lineBytes;
    CSIM_ASSERT(lines % config.assoc == 0);
    numSets_ = static_cast<unsigned>(lines / config.assoc);
    CSIM_ASSERT(std::has_single_bit(std::uint64_t{numSets_}));
    lineShift_ = static_cast<unsigned>(
        std::countr_zero(std::uint64_t{config.lineBytes}));
    ways_.resize(static_cast<std::size_t>(numSets_) * config.assoc);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

bool
Cache::access(Addr addr)
{
    ++stats_.accesses;
    ++tick_;
    const std::size_t base = setIndex(addr) * config_.assoc;
    const Addr tag = tagOf(addr);

    std::size_t victim = base;
    for (std::size_t w = base; w < base + config_.assoc; ++w) {
        if (ways_[w].valid && ways_[w].tag == tag) {
            ways_[w].lruStamp = tick_;
            return true;
        }
        if (!ways_[w].valid) {
            victim = w;
        } else if (ways_[victim].valid &&
                   ways_[w].lruStamp < ways_[victim].lruStamp) {
            victim = w;
        }
    }

    ++stats_.misses;
    ways_[victim].tag = tag;
    ways_[victim].valid = true;
    ways_[victim].lruStamp = tick_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t base = setIndex(addr) * config_.assoc;
    const Addr tag = tagOf(addr);
    for (std::size_t w = base; w < base + config_.assoc; ++w)
        if (ways_[w].valid && ways_[w].tag == tag)
            return true;
    return false;
}

} // namespace csim
