/**
 * @file
 * Trace store v2: a columnar, mmap-able binary trace format.
 *
 * The v1 format (trace_io) freads 48-byte packed AoS records into a
 * std::vector — loading a 10M-instruction trace costs a full pass of
 * per-record copies and ~640 MB of AoS heap before the SoA view is
 * even built. The v2 store writes the *columns* themselves: the
 * on-disk layout after the header is exactly TraceSoA's column arena
 * (five 8-byte columns, then seven byte columns, each 8-byte aligned),
 * so loading is one mmap + header validation and the mapping itself
 * backs a zero-copy TraceSoA. Pages are faulted in only as the timing
 * core touches them, which is what lets region-sampled runs over a
 * multi-hundred-MB store stay within a small resident set.
 *
 * Writing is streaming-friendly: TraceStoreWriter preallocates the
 * column layout for a declared capacity and pwrite()s each appended
 * chunk's column slices at their final offsets, so build-side memory
 * is O(chunk). finalize() stamps the real instruction count (and the
 * producer-link total the timing core needs to size its waiter pool)
 * into the header.
 *
 * An optional per-column LEB128 varint mode (saveTraceStore with
 * compressWide) shrinks the five wide columns — pc/memAddr deltas are
 * small and most producer links are near sentinels — at the cost of a
 * decode pass into an owned arena on load (no zero-copy).
 *
 * All multi-byte fields are little-endian; the header carries an
 * endianness tag and loads reject foreign byte order with
 * TraceIoStatus::BadEndianness instead of misinterpreting.
 */

#ifndef CSIM_TRACE_TRACE_STORE_HH
#define CSIM_TRACE_TRACE_STORE_HH

#include <cstdint>
#include <string>

#include "trace/trace_io.hh"
#include "trace/trace_soa.hh"

namespace csim {

struct TraceStoreOptions
{
    /** LEB128-encode the five wide (8-byte) columns. Compressed
     *  stores load into an owned arena instead of zero-copy mmap. */
    bool compressWide = false;
};

/** Metadata of a loaded store (for stats and diagnostics). */
struct TraceStoreInfo
{
    std::uint64_t instructions = 0;
    std::uint64_t fileBytes = 0;
    /** Bytes kept mmap-ed for the view's lifetime (0 when the load
     *  decoded into an owned arena). */
    std::uint64_t mappedBytes = 0;
    bool compressed = false;
};

/**
 * Incremental v2 writer: declare a capacity, append AoS chunks, then
 * finalize. Columns live at capacity-sized fixed offsets, so chunks
 * land at their final position without buffering the whole trace.
 * The file is invalid until finalize() returns true.
 */
class TraceStoreWriter
{
  public:
    TraceStoreWriter(const std::string &path,
                     std::uint64_t capacityInstructions);
    ~TraceStoreWriter();

    TraceStoreWriter(const TraceStoreWriter &) = delete;
    TraceStoreWriter &operator=(const TraceStoreWriter &) = delete;

    /** False after any I/O error (subsequent calls are no-ops). */
    bool ok() const { return fd_ >= 0 && !failed_; }

    /**
     * Append one chunk's records as column slices. Producer links must
     * already be global (relative to the whole stored trace, not the
     * chunk). Returns false on I/O error or capacity overflow.
     */
    bool append(const Trace &chunk);

    /** Stamp the header with the real count and close. */
    bool finalize();

    std::uint64_t written() const { return written_; }

  private:
    int fd_ = -1;
    bool failed_ = false;
    bool finalized_ = false;
    std::string path_;
    std::uint64_t capacity_ = 0;
    std::uint64_t written_ = 0;
    std::uint64_t producerLinks_ = 0;
};

/**
 * Write a whole in-memory trace as one v2 store (the non-streaming
 * convenience path; the only way to produce a compressed store).
 * @return true on success.
 */
bool saveTraceStore(const Trace &trace, const std::string &path,
                    TraceStoreOptions opts = {});

/**
 * Load (mmap + validate) a v2 store as a column view. Uncompressed
 * stores are zero-copy: the returned TraceSoA's columns point into
 * the mapping, which stays alive as long as the view (or anything
 * holding its keepalive) does. Compressed stores decode into an owned
 * arena. @param[out] soa Replaced on success; untouched otherwise.
 */
TraceIoStatus loadTraceStore(TraceSoA &soa, const std::string &path,
                             TraceStoreInfo *info = nullptr);

/**
 * Materialize rows [base, base+len) of a column view as a standalone
 * AoS trace, remapping producer links into region-local indices
 * (links reaching before the region become invalidInstId — the
 * operand was ready at dispatch, exactly the semantics of a link
 * reaching before a trace window). The result is wellFormed() and
 * feeds TimingSim like any built trace; only the touched rows' pages
 * of an mmap-backed view are faulted in.
 */
Trace extractRegion(const TraceSoA &soa, std::uint64_t base,
                    std::uint64_t len);

} // namespace csim

#endif // CSIM_TRACE_TRACE_STORE_HH
