#include "trace/trace_soa.hh"

#include "common/logging.hh"

namespace csim {

TraceSoA::TraceSoA(const Trace &trace)
{
    size_ = trace.size();
    const std::size_t n = size_;

    // One arena: the five 8-byte columns first (keeping every column
    // naturally aligned), then the seven byte columns.
    constexpr std::size_t wideColumns = 2 + numSrcSlots;
    constexpr std::size_t byteColumns = 7;
    arenaBytes_ = n * (wideColumns * sizeof(std::uint64_t) +
                       byteColumns * sizeof(std::uint8_t));
    arena_ = std::make_unique<std::byte[]>(arenaBytes_);

    std::byte *cursor = arena_.get();
    auto take = [&](std::size_t bytes) {
        std::byte *p = cursor;
        cursor += bytes;
        return p;
    };
    pc_ = reinterpret_cast<Addr *>(take(n * sizeof(Addr)));
    memAddr_ = reinterpret_cast<Addr *>(take(n * sizeof(Addr)));
    for (int slot = 0; slot < numSrcSlots; ++slot)
        prod_[slot] =
            reinterpret_cast<InstId *>(take(n * sizeof(InstId)));
    op_ = reinterpret_cast<Opcode *>(take(n));
    cls_ = reinterpret_cast<OpClass *>(take(n));
    execLat_ = reinterpret_cast<std::uint8_t *>(take(n));
    flags_ = reinterpret_cast<std::uint8_t *>(take(n));
    dest_ = reinterpret_cast<RegIndex *>(take(n));
    src1_ = reinterpret_cast<RegIndex *>(take(n));
    src2_ = reinterpret_cast<RegIndex *>(take(n));
    CSIM_ASSERT(cursor == arena_.get() + arenaBytes_);

    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &rec = trace[i];
        pc_[i] = rec.pc;
        memAddr_[i] = rec.memAddr;
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            prod_[slot][i] = rec.prod[slot];
            if (rec.prod[slot] != invalidInstId)
                ++producerLinks_;
        }
        op_[i] = rec.op;
        cls_[i] = rec.cls;
        execLat_[i] = rec.execLat;
        std::uint8_t f = 0;
        if (rec.isBranch)
            f |= flagIsBranch;
        if (rec.isCondBranch)
            f |= flagIsCondBranch;
        if (rec.taken)
            f |= flagTaken;
        if (rec.mispredicted)
            f |= flagMispredicted;
        if (rec.l1Miss)
            f |= flagL1Miss;
        if (rec.hasDest())
            f |= flagHasDest;
        flags_[i] = f;
        dest_[i] = rec.dest;
        src1_[i] = rec.src1;
        src2_[i] = rec.src2;
    }
}

TraceSoA::TraceSoA(const Columns &cols,
                   std::shared_ptr<const void> keepalive)
    : size_(cols.size), producerLinks_(cols.producerLinks),
      keepalive_(std::move(keepalive))
{
    constexpr std::size_t wideColumns = 2 + numSrcSlots;
    constexpr std::size_t byteColumns = 7;
    arenaBytes_ = size_ * (wideColumns * sizeof(std::uint64_t) +
                           byteColumns * sizeof(std::uint8_t));

    // The view is read-only after construction, so adopting const
    // columns through the non-const pointers is safe.
    pc_ = const_cast<Addr *>(cols.pc);
    memAddr_ = const_cast<Addr *>(cols.memAddr);
    for (int slot = 0; slot < numSrcSlots; ++slot)
        prod_[slot] = const_cast<InstId *>(cols.prod[slot]);
    op_ = const_cast<Opcode *>(cols.op);
    cls_ = const_cast<OpClass *>(cols.cls);
    execLat_ = const_cast<std::uint8_t *>(cols.execLat);
    flags_ = const_cast<std::uint8_t *>(cols.flags);
    dest_ = const_cast<RegIndex *>(cols.dest);
    src1_ = const_cast<RegIndex *>(cols.src1);
    src2_ = const_cast<RegIndex *>(cols.src2);
}

TraceRecord
TraceSoA::record(std::size_t i) const
{
    CSIM_ASSERT(i < size_);
    TraceRecord rec;
    rec.pc = pc_[i];
    rec.op = op_[i];
    rec.cls = cls_[i];
    rec.dest = dest_[i];
    rec.src1 = src1_[i];
    rec.src2 = src2_[i];
    rec.memAddr = memAddr_[i];
    for (int slot = 0; slot < numSrcSlots; ++slot)
        rec.prod[slot] = prod_[slot][i];
    rec.execLat = execLat_[i];
    rec.isBranch = isBranch(i);
    rec.isCondBranch = isCondBranch(i);
    rec.taken = taken(i);
    rec.mispredicted = mispredicted(i);
    rec.l1Miss = l1Miss(i);
    return rec;
}

Trace
TraceSoA::toTrace() const
{
    Trace trace;
    for (std::size_t i = 0; i < size_; ++i)
        trace.append(record(i));
    return trace;
}

TraceStats
TraceSoA::stats() const
{
    TraceStats s;
    s.instructions = size_;
    for (std::size_t i = 0; i < size_; ++i) {
        if (isBranch(i)) {
            ++s.branches;
            if (isCondBranch(i)) {
                ++s.condBranches;
                if (mispredicted(i))
                    ++s.mispredicted;
            }
        }
        if (isLoad(i)) {
            ++s.loads;
            if (l1Miss(i))
                ++s.l1Misses;
        }
        if (isStore(i))
            ++s.stores;
        if (isFpClass(cls_[i]))
            ++s.fpOps;
    }
    return s;
}

} // namespace csim
