/**
 * @file
 * Dynamic instruction traces.
 *
 * A Trace is the interchange format between the functional emulator, the
 * annotation passes (branch prediction, cache latency), the clustered
 * timing simulator and the idealized list scheduler. Each record carries
 * the dataflow producers of its source operands so the timing models
 * never have to re-derive register renaming.
 */

#ifndef CSIM_TRACE_TRACE_HH
#define CSIM_TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace csim {

class TraceSoA;

/** Source operand slots: two register sources plus a memory dependence. */
enum SrcSlot { srcSlot1 = 0, srcSlot2 = 1, srcSlotMem = 2, numSrcSlots = 3 };

/**
 * One dynamic instruction. Producers refer to older trace records by
 * index; invalidInstId means the operand was ready at dispatch (produced
 * before the trace window or by an immediate).
 */
struct TraceRecord
{
    Addr pc = 0;
    Opcode op = Opcode::Nop;
    OpClass cls = OpClass::IntAlu;
    RegIndex dest = zeroReg;
    RegIndex src1 = zeroReg;
    RegIndex src2 = zeroReg;
    /** Effective byte address for Ld/St. */
    Addr memAddr = 0;

    /** Dataflow producers (dynamic indices), one per SrcSlot. */
    std::array<InstId, numSrcSlots> prod =
        {invalidInstId, invalidInstId, invalidInstId};

    /** Execution latency in cycles (loads updated by the cache pass). */
    std::uint8_t execLat = 1;

    bool isBranch = false;
    bool isCondBranch = false;
    /** Branch outcome (conditional branches only). */
    bool taken = false;
    /** Set by the branch annotation pass. */
    bool mispredicted = false;
    /** Set by the cache annotation pass. */
    bool l1Miss = false;

    bool hasDest() const { return writesDest(op) && dest != zeroReg; }
    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
};

/** Aggregate statistics over a trace (reported by examples/tests). */
struct TraceStats
{
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t mispredicted = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t fpOps = 0;

    double
    mispredictRate() const
    {
        return condBranches ?
            static_cast<double>(mispredicted) /
            static_cast<double>(condBranches) : 0.0;
    }

    double
    l1MissRate() const
    {
        return loads ? static_cast<double>(l1Misses) /
            static_cast<double>(loads) : 0.0;
    }
};

/**
 * A dynamic trace plus the producer-linkage pass.
 *
 * The AoS record vector is the build/annotation format; soa() derives
 * (and caches) the column-oriented TraceSoA the timing core consumes.
 * Any mutation drops the cached SoA, so a stale view can never be
 * observed through this object.
 */
class Trace
{
  public:
    Trace();
    ~Trace();

    // The cached SoA (and its guarding mutex) is derived state: copies
    // and moves transfer only the records and rebuild it on demand.
    // Out of line: their bodies need TraceSoA complete.
    Trace(const Trace &other);
    Trace(Trace &&other) noexcept;
    Trace &operator=(const Trace &other);
    Trace &operator=(Trace &&other) noexcept;

    void
    append(TraceRecord rec)
    {
        invalidateSoA();
        records_.push_back(rec);
    }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const TraceRecord &operator[](std::size_t i) const
    {
        return records_[i];
    }
    TraceRecord &
    operator[](std::size_t i)
    {
        // Handing out a mutable reference may change any field, so the
        // derived columns cannot be trusted afterwards.
        invalidateSoA();
        return records_[i];
    }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    /**
     * The structure-of-arrays view of this trace, built lazily on
     * first use and cached (thread-safe: concurrent sweep cells share
     * one immutable trace). The reference stays valid until the trace
     * is mutated or destroyed.
     */
    const TraceSoA &soa() const;

    /**
     * Host bytes held by this trace: the AoS records plus the SoA
     * arena when the column view has been materialized. This is what
     * the TraceCache byte budget accounts.
     */
    std::size_t footprintBytes() const;

    /**
     * Fill in the producer links: for each register source, the most
     * recent older record writing that register; for each load, the most
     * recent older store to the same 8-byte word (store-to-load
     * forwarding under perfect memory disambiguation).
     */
    void linkProducers();

    /** Compute aggregate statistics. */
    TraceStats stats() const;

    /**
     * Structural sanity of the producer links and annotations: every
     * producer index strictly precedes its consumer, op classes match
     * opcodes, and latencies are nonzero. Used to vet traces loaded
     * from disk before feeding them to the timing models.
     */
    bool wellFormed() const;

  private:
    void invalidateSoA();

    std::vector<TraceRecord> records_;

    /** Lazily built column view; guarded by soaMutex_. */
    mutable std::unique_ptr<TraceSoA> soa_;
    mutable std::mutex soaMutex_;
};

/**
 * The producer-linkage pass with state that persists across chunks:
 * linking a trace chunk by chunk through one linker (passing each
 * chunk's global base id) writes exactly the links
 * Trace::linkProducers() would over the concatenated trace — the
 * streaming-build form. Links are *global* ids, so a chunk linked
 * with base > 0 is not wellFormed() on its own; it becomes so again
 * when the ids are region-remapped (extractRegion) or the chunks are
 * stored and reloaded as one trace.
 */
class StreamingProducerLinker
{
  public:
    StreamingProducerLinker() { lastWriter_.fill(invalidInstId); }

    /** Link chunk's producers; `base` is chunk[0]'s global id. */
    void link(Trace &chunk, InstId base);

  private:
    /** Last dynamic writer of each architectural register. */
    std::array<InstId, numArchRegs> lastWriter_;
    /** Last store to each 8-byte word. */
    std::unordered_map<Addr, InstId> lastStore_;
};

} // namespace csim

#endif // CSIM_TRACE_TRACE_HH
