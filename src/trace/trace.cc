#include "trace/trace.hh"

#include <unordered_map>

#include "common/logging.hh"
#include "trace/trace_soa.hh"

namespace csim {

// Out of line: TraceSoA is incomplete where the header declares the
// unique_ptr member.
Trace::Trace() = default;
Trace::~Trace() = default;

Trace::Trace(const Trace &other) : records_(other.records_) {}

Trace::Trace(Trace &&other) noexcept
    : records_(std::move(other.records_))
{}

Trace &
Trace::operator=(const Trace &other)
{
    if (this != &other) {
        records_ = other.records_;
        invalidateSoA();
    }
    return *this;
}

Trace &
Trace::operator=(Trace &&other) noexcept
{
    if (this != &other) {
        records_ = std::move(other.records_);
        invalidateSoA();
    }
    return *this;
}

const TraceSoA &
Trace::soa() const
{
    std::lock_guard<std::mutex> lock(soaMutex_);
    if (!soa_)
        soa_ = std::make_unique<TraceSoA>(*this);
    return *soa_;
}

std::size_t
Trace::footprintBytes() const
{
    std::lock_guard<std::mutex> lock(soaMutex_);
    return records_.size() * sizeof(TraceRecord) +
        (soa_ ? soa_->arenaBytes() : 0);
}

void
Trace::invalidateSoA()
{
    // Mutation requires exclusive access to the trace (concurrent
    // readers of a trace being appended to are already a data race on
    // records_), so the unlocked empty check cannot miss a concurrent
    // build. It keeps the hot build loop — one call per appended or
    // annotated record — from taking the mutex 3x per instruction.
    if (!soa_)
        return;
    std::lock_guard<std::mutex> lock(soaMutex_);
    soa_.reset();
}

namespace {

struct SrcRegs
{
    int n;
    RegIndex s1;
    RegIndex s2;
};

// Mirror Instruction::numSrcs() without materialising an Instruction.
SrcRegs
srcsOf(const TraceRecord &rec)
{
    switch (rec.op) {
      case Opcode::Lui:
      case Opcode::Jmp:
      case Opcode::Nop:
      case Opcode::Halt:
        return {0, zeroReg, zeroReg};
      case Opcode::Addi:
      case Opcode::Ld:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Itof:
        return {1, rec.src1, zeroReg};
      default:
        return {2, rec.src1, rec.src2};
    }
}

} // anonymous namespace

void
Trace::linkProducers()
{
    StreamingProducerLinker linker;
    linker.link(*this, 0);
}

void
StreamingProducerLinker::link(Trace &chunk, InstId base)
{
    for (std::size_t i = 0; i < chunk.size(); ++i) {
        TraceRecord &rec = chunk[i];
        const InstId id = base + i;
        rec.prod = {invalidInstId, invalidInstId, invalidInstId};

        const SrcRegs srcs = srcsOf(rec);
        if (srcs.n >= 1 && srcs.s1 != zeroReg)
            rec.prod[srcSlot1] = lastWriter_[srcs.s1];
        if (srcs.n >= 2 && srcs.s2 != zeroReg)
            rec.prod[srcSlot2] = lastWriter_[srcs.s2];

        if (rec.isLoad()) {
            auto it = lastStore_.find(rec.memAddr >> 3);
            if (it != lastStore_.end())
                rec.prod[srcSlotMem] = it->second;
        } else if (rec.isStore()) {
            lastStore_[rec.memAddr >> 3] = id;
        }

        if (rec.hasDest())
            lastWriter_[rec.dest] = id;
    }
}

bool
Trace::wellFormed() const
{
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const TraceRecord &rec = records_[i];
        if (rec.op >= Opcode::NumOpcodes)
            return false;
        if (rec.cls != opClass(rec.op))
            return false;
        if (rec.execLat == 0)
            return false;
        if (rec.isBranch != isBranch(rec.op) ||
            rec.isCondBranch != isCondBranch(rec.op))
            return false;
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = rec.prod[slot];
            if (p != invalidInstId && p >= i)
                return false;
        }
    }
    return true;
}

TraceStats
Trace::stats() const
{
    TraceStats s;
    s.instructions = records_.size();
    for (const TraceRecord &rec : records_) {
        if (rec.isBranch) {
            ++s.branches;
            if (rec.isCondBranch) {
                ++s.condBranches;
                if (rec.mispredicted)
                    ++s.mispredicted;
            }
        }
        if (rec.isLoad()) {
            ++s.loads;
            if (rec.l1Miss)
                ++s.l1Misses;
        }
        if (rec.isStore())
            ++s.stores;
        if (isFpClass(rec.cls))
            ++s.fpOps;
    }
    return s;
}

} // namespace csim
