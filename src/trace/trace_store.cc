#include "trace/trace_store.hh"

#include <bit>
#include <cstddef>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace csim {

namespace {

constexpr char storeMagic[8] = {'c', 's', 'i', 'm', 't', 'r', 'c', '2'};
constexpr std::uint32_t storeVersion = 2;
/** Written as 0x01020304 by a little-endian host; any other byte
 *  order reads it back differently. */
constexpr std::uint32_t endianTag = 0x01020304u;
constexpr std::uint32_t flagCompressWide = 1u << 0;
constexpr std::uint32_t knownFlags = flagCompressWide;

/** Columns in TraceSoA arena order: five wide, then seven byte. */
constexpr std::size_t numColumns = 12;
constexpr std::size_t numWideColumns = 2 + numSrcSlots;
constexpr std::size_t columnElemBytes[numColumns] = {8, 8, 8, 8, 8,
                                                     1, 1, 1, 1, 1,
                                                     1, 1};

struct ColumnDesc
{
    std::uint64_t offset; ///< from file start; 8-byte aligned
    std::uint64_t bytes;  ///< encoded bytes (count*elem when raw)
};

struct StoreHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t endian;
    std::uint64_t count;
    std::uint64_t capacity;
    std::uint64_t producerLinks;
    std::uint32_t flags;
    std::uint32_t columnCount;
    ColumnDesc col[numColumns];
};

// The header is written/read as raw bytes, so its layout is the file
// format; pin it down like trace_io's DiskRecord.
static_assert(sizeof(ColumnDesc) == 16);
static_assert(sizeof(StoreHeader) == 240,
              "trace v2 header must stay 240 bytes");
static_assert(offsetof(StoreHeader, count) == 16 &&
                  offsetof(StoreHeader, flags) == 40 &&
                  offsetof(StoreHeader, col) == 48,
              "trace v2 header field offsets changed");
static_assert(sizeof(StoreHeader) % 8 == 0,
              "column offsets right after the header must stay "
              "8-byte aligned");
static_assert(sizeof(Addr) == 8 && sizeof(InstId) == 8 &&
                  sizeof(Opcode) == 1 && sizeof(OpClass) == 1 &&
                  sizeof(RegIndex) == 1,
              "column element types changed size; bump the store "
              "version");

std::uint64_t
alignUp8(std::uint64_t v)
{
    return (v + 7) & ~std::uint64_t{7};
}

/** Fixed (capacity-sized) column offsets for the raw layout. */
void
rawLayout(std::uint64_t capacity, ColumnDesc out[numColumns])
{
    std::uint64_t offset = sizeof(StoreHeader);
    for (std::size_t c = 0; c < numColumns; ++c) {
        out[c].offset = offset;
        out[c].bytes = capacity * columnElemBytes[c];
        offset = alignUp8(offset + out[c].bytes);
    }
}

std::uint64_t
rawLayoutEnd(std::uint64_t capacity)
{
    ColumnDesc col[numColumns];
    rawLayout(capacity, col);
    return alignUp8(col[numColumns - 1].offset +
                    col[numColumns - 1].bytes);
}

bool
pwriteAll(int fd, const void *buf, std::size_t len, std::uint64_t off)
{
    const char *p = static_cast<const char *>(buf);
    while (len > 0) {
        const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(off));
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
        off += static_cast<std::uint64_t>(n);
    }
    return true;
}

std::uint8_t
packFlags(const TraceRecord &rec)
{
    std::uint8_t f = 0;
    if (rec.isBranch)
        f |= TraceSoA::flagIsBranch;
    if (rec.isCondBranch)
        f |= TraceSoA::flagIsCondBranch;
    if (rec.taken)
        f |= TraceSoA::flagTaken;
    if (rec.mispredicted)
        f |= TraceSoA::flagMispredicted;
    if (rec.l1Miss)
        f |= TraceSoA::flagL1Miss;
    if (rec.hasDest())
        f |= TraceSoA::flagHasDest;
    return f;
}

/** Stage one chunk's columns into contiguous buffers. */
struct ColumnStage
{
    std::vector<std::uint64_t> wide[numWideColumns];
    std::vector<std::uint8_t> narrow[numColumns - numWideColumns];
    std::uint64_t producerLinks = 0;

    explicit ColumnStage(const Trace &chunk)
    {
        const std::size_t n = chunk.size();
        for (auto &w : wide)
            w.reserve(n);
        for (auto &b : narrow)
            b.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            const TraceRecord &rec = chunk[i];
            wide[0].push_back(rec.pc);
            wide[1].push_back(rec.memAddr);
            for (int slot = 0; slot < numSrcSlots; ++slot) {
                wide[2 + slot].push_back(rec.prod[slot]);
                if (rec.prod[slot] != invalidInstId)
                    ++producerLinks;
            }
            narrow[0].push_back(static_cast<std::uint8_t>(rec.op));
            narrow[1].push_back(static_cast<std::uint8_t>(rec.cls));
            narrow[2].push_back(rec.execLat);
            narrow[3].push_back(packFlags(rec));
            narrow[4].push_back(rec.dest);
            narrow[5].push_back(rec.src1);
            narrow[6].push_back(rec.src2);
        }
    }

    const void *
    data(std::size_t c) const
    {
        return c < numWideColumns
            ? static_cast<const void *>(wide[c].data())
            : static_cast<const void *>(
                  narrow[c - numWideColumns].data());
    }
};

// --- LEB128 (unsigned varint) for the compressed wide columns. ---
//
// Producer columns are mostly the all-ones sentinel, which a plain
// varint would inflate to ten bytes; encode prod values biased by +1
// so the sentinel wraps to 0 (one byte). Guarded by the 2^40 id bound
// the timing core already enforces, +1 cannot collide with it.

void
leb128Put(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

bool
leb128Get(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (p == end)
            return false;
        const std::uint8_t byte = *p++;
        // The 10th byte holds only bit 64 of the value: any payload
        // above 0x01 (or a continuation bit) would shift past 64 bits
        // and silently truncate, so a crafted file must be rejected,
        // not decoded to a wrong value.
        if (shift == 63 && byte > 0x01)
            return false;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false;
}

struct Unmapper
{
    std::size_t len;
    void
    operator()(const void *base) const
    {
        ::munmap(const_cast<void *>(base), len);
    }
};

struct FdCloser
{
    int fd;
    ~FdCloser()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

} // anonymous namespace

TraceStoreWriter::TraceStoreWriter(const std::string &path,
                                   std::uint64_t capacityInstructions)
    : path_(path), capacity_(capacityInstructions)
{
    fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd_ < 0)
        return;
    // Placeholder header (count 0): a writer that dies before
    // finalize() leaves an explicitly empty store, not garbage.
    StoreHeader hdr = {};
    std::memcpy(hdr.magic, storeMagic, sizeof(storeMagic));
    hdr.version = storeVersion;
    hdr.endian = endianTag;
    hdr.count = 0;
    hdr.capacity = capacity_;
    hdr.flags = 0;
    hdr.columnCount = numColumns;
    rawLayout(capacity_, hdr.col);
    for (std::size_t c = 0; c < numColumns; ++c)
        hdr.col[c].bytes = 0;
    if (!pwriteAll(fd_, &hdr, sizeof(hdr), 0))
        failed_ = true;
}

TraceStoreWriter::~TraceStoreWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
TraceStoreWriter::append(const Trace &chunk)
{
    if (!ok() || finalized_)
        return false;
    if (written_ + chunk.size() > capacity_) {
        failed_ = true;
        return false;
    }
    if (chunk.empty())
        return true;

    ColumnDesc col[numColumns];
    rawLayout(capacity_, col);
    const ColumnStage stage(chunk);
    for (std::size_t c = 0; c < numColumns; ++c) {
        const std::uint64_t off =
            col[c].offset + written_ * columnElemBytes[c];
        if (!pwriteAll(fd_, stage.data(c),
                       chunk.size() * columnElemBytes[c], off)) {
            failed_ = true;
            return false;
        }
    }
    producerLinks_ += stage.producerLinks;
    written_ += chunk.size();
    return true;
}

bool
TraceStoreWriter::finalize()
{
    if (!ok() || finalized_)
        return false;
    StoreHeader hdr = {};
    std::memcpy(hdr.magic, storeMagic, sizeof(storeMagic));
    hdr.version = storeVersion;
    hdr.endian = endianTag;
    hdr.count = written_;
    hdr.capacity = capacity_;
    hdr.producerLinks = producerLinks_;
    hdr.flags = 0;
    hdr.columnCount = numColumns;
    rawLayout(capacity_, hdr.col);
    for (std::size_t c = 0; c < numColumns; ++c)
        hdr.col[c].bytes = written_ * columnElemBytes[c];
    // Extend to the full capacity layout (sparse when written_ <
    // capacity_) so every column's extent is inside the file.
    if (::ftruncate(fd_, static_cast<off_t>(rawLayoutEnd(capacity_))) !=
            0 ||
        !pwriteAll(fd_, &hdr, sizeof(hdr), 0)) {
        failed_ = true;
        return false;
    }
    finalized_ = true;
    ::close(fd_);
    fd_ = -1;
    return true;
}

bool
saveTraceStore(const Trace &trace, const std::string &path,
               TraceStoreOptions opts)
{
    if (!opts.compressWide) {
        TraceStoreWriter writer(path, trace.size());
        return writer.append(trace) && writer.finalize();
    }

    const int fd =
        ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    FdCloser closer{fd};

    const ColumnStage stage(trace);
    const std::size_t n = trace.size();

    std::vector<std::uint8_t> encoded[numWideColumns];
    for (std::size_t c = 0; c < numWideColumns; ++c) {
        encoded[c].reserve(n * 2);
        const bool isProd = c >= 2;
        for (std::uint64_t v : stage.wide[c])
            leb128Put(encoded[c], isProd ? v + 1 : v);
    }

    StoreHeader hdr = {};
    std::memcpy(hdr.magic, storeMagic, sizeof(storeMagic));
    hdr.version = storeVersion;
    hdr.endian = endianTag;
    hdr.count = n;
    hdr.capacity = n;
    hdr.producerLinks = stage.producerLinks;
    hdr.flags = flagCompressWide;
    hdr.columnCount = numColumns;
    std::uint64_t offset = sizeof(StoreHeader);
    for (std::size_t c = 0; c < numColumns; ++c) {
        hdr.col[c].offset = offset;
        hdr.col[c].bytes = c < numWideColumns
            ? encoded[c].size()
            : n * columnElemBytes[c];
        offset = alignUp8(offset + hdr.col[c].bytes);
    }

    if (!pwriteAll(fd, &hdr, sizeof(hdr), 0))
        return false;
    for (std::size_t c = 0; c < numColumns; ++c) {
        const void *data = c < numWideColumns
            ? static_cast<const void *>(encoded[c].data())
            : stage.data(c);
        if (!pwriteAll(fd, data, hdr.col[c].bytes, hdr.col[c].offset))
            return false;
    }
    return ::ftruncate(fd, static_cast<off_t>(offset)) == 0;
}

TraceIoStatus
loadTraceStore(TraceSoA &soa, const std::string &path,
               TraceStoreInfo *info)
{
    if constexpr (std::endian::native != std::endian::little)
        return TraceIoStatus::BadEndianness;

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return TraceIoStatus::CannotOpen;
    FdCloser closer{fd};

    struct stat st = {};
    if (::fstat(fd, &st) != 0)
        return TraceIoStatus::CannotOpen;
    const std::uint64_t file_bytes =
        static_cast<std::uint64_t>(st.st_size);
    if (file_bytes < sizeof(storeMagic))
        return TraceIoStatus::Truncated;

    char got_magic[sizeof(storeMagic)];
    if (::pread(fd, got_magic, sizeof(got_magic), 0) !=
        static_cast<ssize_t>(sizeof(got_magic)))
        return TraceIoStatus::Truncated;
    if (std::memcmp(got_magic, storeMagic, 7) != 0)
        return TraceIoStatus::BadMagic;
    // Shared "csimtrc" prefix, different tail: a v1 file is a version
    // mismatch, anything else is not one of our trace files.
    if (got_magic[7] != storeMagic[7])
        return got_magic[7] == '\0' ? TraceIoStatus::BadVersion
                                    : TraceIoStatus::BadMagic;
    if (file_bytes < sizeof(StoreHeader))
        return TraceIoStatus::Truncated;

    void *base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE,
                        fd, 0);
    if (base == MAP_FAILED)
        return TraceIoStatus::CannotOpen;
    std::shared_ptr<const void> mapping(
        base, Unmapper{static_cast<std::size_t>(file_bytes)});

    StoreHeader hdr;
    std::memcpy(&hdr, base, sizeof(hdr));
    if (hdr.version != storeVersion || hdr.columnCount != numColumns ||
        (hdr.flags & ~knownFlags))
        return TraceIoStatus::BadVersion;
    if (hdr.endian != endianTag)
        return TraceIoStatus::BadEndianness;
    if (hdr.count > hdr.capacity)
        return TraceIoStatus::Truncated;
    const bool compressed = hdr.flags & flagCompressWide;
    for (std::size_t c = 0; c < numColumns; ++c) {
        const ColumnDesc &col = hdr.col[c];
        // Extent check phrased to be immune to uint64 wrap: a crafted
        // col.bytes near 2^64 must not pass via offset+bytes overflow
        // and then read past the mapping.
        if (col.offset % 8 != 0 || col.offset < sizeof(StoreHeader) ||
            col.offset > static_cast<std::uint64_t>(file_bytes) ||
            col.bytes >
                static_cast<std::uint64_t>(file_bytes) - col.offset)
            return TraceIoStatus::Truncated;
        const bool raw = !compressed || c >= numWideColumns;
        if (raw && col.bytes != hdr.count * columnElemBytes[c])
            return TraceIoStatus::Truncated;
    }

    const std::size_t n = hdr.count;
    const std::byte *map = static_cast<const std::byte *>(base);
    TraceSoA::Columns cols;
    cols.size = n;
    cols.producerLinks = hdr.producerLinks;

    if (!compressed) {
        cols.pc = reinterpret_cast<const Addr *>(map + hdr.col[0].offset);
        cols.memAddr =
            reinterpret_cast<const Addr *>(map + hdr.col[1].offset);
        for (int slot = 0; slot < numSrcSlots; ++slot)
            cols.prod[slot] = reinterpret_cast<const InstId *>(
                map + hdr.col[2 + slot].offset);
        cols.op =
            reinterpret_cast<const Opcode *>(map + hdr.col[5].offset);
        cols.cls =
            reinterpret_cast<const OpClass *>(map + hdr.col[6].offset);
        cols.execLat = reinterpret_cast<const std::uint8_t *>(
            map + hdr.col[7].offset);
        cols.flags = reinterpret_cast<const std::uint8_t *>(
            map + hdr.col[8].offset);
        cols.dest = reinterpret_cast<const RegIndex *>(
            map + hdr.col[9].offset);
        cols.src1 = reinterpret_cast<const RegIndex *>(
            map + hdr.col[10].offset);
        cols.src2 = reinterpret_cast<const RegIndex *>(
            map + hdr.col[11].offset);
        if (info) {
            info->instructions = n;
            info->fileBytes = file_bytes;
            info->mappedBytes = file_bytes;
            info->compressed = false;
        }
        soa = TraceSoA(cols, std::move(mapping));
        return TraceIoStatus::Ok;
    }

    // Compressed: decode the wide columns into an owned arena laid
    // out like TraceSoA's, copy the byte columns, drop the mapping.
    const std::size_t arena_bytes =
        n * (numWideColumns * sizeof(std::uint64_t) +
             (numColumns - numWideColumns));
    std::shared_ptr<std::byte[]> arena(new std::byte[arena_bytes]);
    std::byte *cursor = arena.get();
    std::uint64_t *wide[numWideColumns];
    for (std::size_t c = 0; c < numWideColumns; ++c) {
        wide[c] = reinterpret_cast<std::uint64_t *>(cursor);
        cursor += n * sizeof(std::uint64_t);
    }
    std::uint8_t *narrow[numColumns - numWideColumns];
    for (std::size_t c = numWideColumns; c < numColumns; ++c) {
        narrow[c - numWideColumns] =
            reinterpret_cast<std::uint8_t *>(cursor);
        cursor += n;
    }
    CSIM_ASSERT(cursor == arena.get() + arena_bytes);

    for (std::size_t c = 0; c < numWideColumns; ++c) {
        const std::uint8_t *p = reinterpret_cast<const std::uint8_t *>(
            map + hdr.col[c].offset);
        const std::uint8_t *end = p + hdr.col[c].bytes;
        const bool isProd = c >= 2;
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t v = 0;
            if (!leb128Get(p, end, v))
                return TraceIoStatus::Truncated;
            wide[c][i] = isProd ? v - 1 : v;
        }
        if (p != end)
            return TraceIoStatus::Truncated;
    }
    for (std::size_t c = numWideColumns; c < numColumns; ++c)
        std::memcpy(narrow[c - numWideColumns],
                    map + hdr.col[c].offset, n);

    cols.pc = reinterpret_cast<const Addr *>(wide[0]);
    cols.memAddr = reinterpret_cast<const Addr *>(wide[1]);
    for (int slot = 0; slot < numSrcSlots; ++slot)
        cols.prod[slot] =
            reinterpret_cast<const InstId *>(wide[2 + slot]);
    cols.op = reinterpret_cast<const Opcode *>(narrow[0]);
    cols.cls = reinterpret_cast<const OpClass *>(narrow[1]);
    cols.execLat = narrow[2];
    cols.flags = narrow[3];
    cols.dest = narrow[4];
    cols.src1 = narrow[5];
    cols.src2 = narrow[6];
    if (info) {
        info->instructions = n;
        info->fileBytes = file_bytes;
        info->mappedBytes = 0;
        info->compressed = true;
    }
    soa = TraceSoA(cols, std::shared_ptr<const void>(
                             arena, arena.get()));
    return TraceIoStatus::Ok;
}

Trace
extractRegion(const TraceSoA &soa, std::uint64_t base,
              std::uint64_t len)
{
    CSIM_ASSERT(base <= soa.size());
    const std::uint64_t end =
        len < soa.size() - base ? base + len : soa.size();
    Trace region;
    for (std::uint64_t i = base; i < end; ++i) {
        TraceRecord rec = soa.record(i);
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = rec.prod[slot];
            rec.prod[slot] = (p == invalidInstId || p < base)
                ? invalidInstId
                : p - base;
        }
        region.append(rec);
    }
    return region;
}

} // namespace csim
