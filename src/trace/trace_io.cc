#include "trace/trace_io.hh"

#include <bit>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>

namespace csim {

namespace {

constexpr char magic[8] = {'c', 's', 'i', 'm', 't', 'r', 'c', '\0'};
constexpr std::uint32_t version = 1;

/** On-disk record layout (packed, little-endian). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t memAddr;
    std::uint64_t prod[numSrcSlots];
    std::uint8_t op;
    std::uint8_t cls;
    std::uint8_t dest;
    std::uint8_t src1;
    std::uint8_t src2;
    std::uint8_t execLat;
    std::uint8_t flags;
    std::uint8_t pad = 0;
};

// The record is fwritten/freaded whole, so its layout IS the file
// format: pin it down so a compiler or ABI change cannot silently
// re-arrange the bytes on disk.
static_assert(sizeof(DiskRecord) == 48,
              "trace v1 on-disk record must stay 48 bytes");
static_assert(offsetof(DiskRecord, memAddr) == 8 &&
                  offsetof(DiskRecord, prod) == 16 &&
                  offsetof(DiskRecord, op) == 40 &&
                  offsetof(DiskRecord, pad) == 47,
              "trace v1 on-disk record field offsets changed");
static_assert(sizeof(InstId) == 8 && sizeof(Addr) == 8 &&
                  sizeof(RegIndex) == 1 && sizeof(Opcode) == 1 &&
                  sizeof(OpClass) == 1,
              "trace element types changed size; bump the format "
              "version");

constexpr std::uint8_t flagBranch = 1;
constexpr std::uint8_t flagCond = 2;
constexpr std::uint8_t flagTaken = 4;
constexpr std::uint8_t flagMispred = 8;
constexpr std::uint8_t flagL1Miss = 16;

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

} // anonymous namespace

const char *
traceIoStatusName(TraceIoStatus s)
{
    switch (s) {
      case TraceIoStatus::Ok: return "ok";
      case TraceIoStatus::CannotOpen: return "cannot open";
      case TraceIoStatus::BadMagic: return "bad magic";
      case TraceIoStatus::BadVersion: return "bad version";
      case TraceIoStatus::Truncated: return "truncated";
      case TraceIoStatus::BadEndianness: return "bad endianness";
      default: return "unknown";
    }
}

bool
saveTrace(const Trace &trace, const std::string &path)
{
    FileHandle f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;

    if (std::fwrite(magic, sizeof(magic), 1, f.get()) != 1)
        return false;
    if (std::fwrite(&version, sizeof(version), 1, f.get()) != 1)
        return false;
    const std::uint64_t count = trace.size();
    if (std::fwrite(&count, sizeof(count), 1, f.get()) != 1)
        return false;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &rec = trace[i];
        DiskRecord d = {};
        d.pc = rec.pc;
        d.memAddr = rec.memAddr;
        for (int s = 0; s < numSrcSlots; ++s)
            d.prod[s] = rec.prod[s];
        d.op = static_cast<std::uint8_t>(rec.op);
        d.cls = static_cast<std::uint8_t>(rec.cls);
        d.dest = rec.dest;
        d.src1 = rec.src1;
        d.src2 = rec.src2;
        d.execLat = rec.execLat;
        d.flags = static_cast<std::uint8_t>(
            (rec.isBranch ? flagBranch : 0) |
            (rec.isCondBranch ? flagCond : 0) |
            (rec.taken ? flagTaken : 0) |
            (rec.mispredicted ? flagMispred : 0) |
            (rec.l1Miss ? flagL1Miss : 0));
        if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1)
            return false;
    }
    return true;
}

TraceIoStatus
loadTrace(Trace &trace, const std::string &path)
{
    // The format is little-endian; a big-endian host would reinterpret
    // every multi-byte field. Reject up front rather than mis-load.
    if constexpr (std::endian::native != std::endian::little)
        return TraceIoStatus::BadEndianness;

    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return TraceIoStatus::CannotOpen;

    char got_magic[sizeof(magic)];
    if (std::fread(got_magic, sizeof(got_magic), 1, f.get()) != 1)
        return TraceIoStatus::Truncated;
    if (std::memcmp(got_magic, magic, sizeof(magic)) != 0)
        return TraceIoStatus::BadMagic;

    std::uint32_t got_version = 0;
    if (std::fread(&got_version, sizeof(got_version), 1, f.get()) != 1)
        return TraceIoStatus::Truncated;
    if (got_version != version)
        return TraceIoStatus::BadVersion;

    std::uint64_t count = 0;
    if (std::fread(&count, sizeof(count), 1, f.get()) != 1)
        return TraceIoStatus::Truncated;

    Trace loaded;
    for (std::uint64_t i = 0; i < count; ++i) {
        DiskRecord d;
        if (std::fread(&d, sizeof(d), 1, f.get()) != 1)
            return TraceIoStatus::Truncated;
        TraceRecord rec;
        rec.pc = d.pc;
        rec.memAddr = d.memAddr;
        for (int s = 0; s < numSrcSlots; ++s)
            rec.prod[s] = d.prod[s];
        rec.op = static_cast<Opcode>(d.op);
        rec.cls = static_cast<OpClass>(d.cls);
        rec.dest = d.dest;
        rec.src1 = d.src1;
        rec.src2 = d.src2;
        rec.execLat = d.execLat;
        rec.isBranch = d.flags & flagBranch;
        rec.isCondBranch = d.flags & flagCond;
        rec.taken = d.flags & flagTaken;
        rec.mispredicted = d.flags & flagMispred;
        rec.l1Miss = d.flags & flagL1Miss;
        loaded.append(rec);
    }

    trace = std::move(loaded);
    return TraceIoStatus::Ok;
}

} // namespace csim
