/**
 * @file
 * Structure-of-arrays view of an annotated trace.
 *
 * The timing core walks a handful of per-instruction fields (op class,
 * latency, producers, branch flags, pc) millions of times per run; in
 * the 64-byte AoS TraceRecord those fields share cache lines with cold
 * annotation state. TraceSoA splits them into dense per-field columns
 * backed by ONE arena allocation, so each hot loop streams exactly the
 * bytes it needs. The AoS Trace stays the build/annotation interchange
 * format; the SoA is a frozen snapshot derived from it (see
 * Trace::soa()) and must never outlive a subsequent mutation of its
 * source trace.
 */

#ifndef CSIM_TRACE_TRACE_SOA_HH
#define CSIM_TRACE_TRACE_SOA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "common/types.hh"
#include "isa/opcode.hh"
#include "trace/trace.hh"

namespace csim {

class TraceSoA
{
  public:
    /** Packed per-instruction boolean annotations (flags() column). */
    enum Flag : std::uint8_t
    {
        flagIsBranch = 1u << 0,
        flagIsCondBranch = 1u << 1,
        flagTaken = 1u << 2,
        flagMispredicted = 1u << 3,
        flagL1Miss = 1u << 4,
        /** writesDest(op) && dest != zeroReg, precomputed. */
        flagHasDest = 1u << 5,
    };

    /**
     * Externally owned columns (the trace-store mmap path). Pointers
     * must stay valid for the keepalive's lifetime; TraceSoA never
     * writes through them after construction.
     */
    struct Columns
    {
        std::size_t size = 0;
        /** Valid producer links over all slots (see producerLinks()). */
        std::uint64_t producerLinks = 0;
        const Addr *pc = nullptr;
        const Addr *memAddr = nullptr;
        const InstId *prod[numSrcSlots] = {nullptr, nullptr, nullptr};
        const Opcode *op = nullptr;
        const OpClass *cls = nullptr;
        const std::uint8_t *execLat = nullptr;
        const std::uint8_t *flags = nullptr;
        const RegIndex *dest = nullptr;
        const RegIndex *src1 = nullptr;
        const RegIndex *src2 = nullptr;
    };

    /** Empty view (no columns). */
    TraceSoA() = default;

    /** Build the columns from an AoS trace (one arena allocation). */
    explicit TraceSoA(const Trace &trace);

    /**
     * Adopt externally owned columns (e.g. an mmap-ed trace store).
     * `keepalive` is retained for the lifetime of this view and keeps
     * the backing storage (mapping or decode arena) alive; arenaBytes()
     * reports the columns' aggregate byte size either way.
     */
    TraceSoA(const Columns &cols, std::shared_ptr<const void> keepalive);

    TraceSoA(TraceSoA &&) noexcept = default;
    TraceSoA &operator=(TraceSoA &&) noexcept = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Bytes of the single backing arena (the whole SoA footprint). */
    std::size_t arenaBytes() const { return arenaBytes_; }

    /** Producer links with a valid (non-sentinel) producer, over all
     *  slots — the exact upper bound on waiter-list nodes a timing run
     *  can ever enqueue. */
    std::uint64_t producerLinks() const { return producerLinks_; }

    // Hot columns, one entry per dynamic instruction.
    std::span<const Addr> pc() const { return {pc_, size_}; }
    std::span<const Addr> memAddr() const { return {memAddr_, size_}; }
    /** Producer column for one SrcSlot. */
    std::span<const InstId>
    prod(int slot) const
    {
        return {prod_[slot], size_};
    }
    std::span<const Opcode> op() const { return {op_, size_}; }
    std::span<const OpClass> cls() const { return {cls_, size_}; }
    std::span<const std::uint8_t>
    execLat() const
    {
        return {execLat_, size_};
    }
    std::span<const std::uint8_t> flags() const { return {flags_, size_}; }
    std::span<const RegIndex> dest() const { return {dest_, size_}; }
    std::span<const RegIndex> src1() const { return {src1_, size_}; }
    std::span<const RegIndex> src2() const { return {src2_, size_}; }

    bool
    isBranch(std::size_t i) const
    {
        return flags_[i] & flagIsBranch;
    }
    bool
    isCondBranch(std::size_t i) const
    {
        return flags_[i] & flagIsCondBranch;
    }
    bool taken(std::size_t i) const { return flags_[i] & flagTaken; }
    bool
    mispredicted(std::size_t i) const
    {
        return flags_[i] & flagMispredicted;
    }
    bool l1Miss(std::size_t i) const { return flags_[i] & flagL1Miss; }
    bool hasDest(std::size_t i) const { return flags_[i] & flagHasDest; }
    bool isLoad(std::size_t i) const { return cls_[i] == OpClass::Load; }
    bool
    isStore(std::size_t i) const
    {
        return cls_[i] == OpClass::Store;
    }

    /** Reassemble one AoS record (round-trip and diagnostics). */
    TraceRecord record(std::size_t i) const;

    /** Reassemble the whole AoS trace (round-trip testing). */
    Trace toTrace() const;

    /** Aggregate statistics computed straight from the columns; equal
     *  to Trace::stats() of the source trace by construction. */
    TraceStats stats() const;

  private:
    std::size_t size_ = 0;
    std::size_t arenaBytes_ = 0;
    std::uint64_t producerLinks_ = 0;

    std::unique_ptr<std::byte[]> arena_;
    /** External backing storage (mmap keepalive); null when arena_
     *  owns the columns. */
    std::shared_ptr<const void> keepalive_;

    // Column pointers into arena_ (8-byte columns first, then bytes).
    Addr *pc_ = nullptr;
    Addr *memAddr_ = nullptr;
    InstId *prod_[numSrcSlots] = {nullptr, nullptr, nullptr};
    Opcode *op_ = nullptr;
    OpClass *cls_ = nullptr;
    std::uint8_t *execLat_ = nullptr;
    std::uint8_t *flags_ = nullptr;
    RegIndex *dest_ = nullptr;
    RegIndex *src1_ = nullptr;
    RegIndex *src2_ = nullptr;
};

} // namespace csim

#endif // CSIM_TRACE_TRACE_SOA_HH
