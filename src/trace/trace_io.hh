/**
 * @file
 * Binary trace serialization.
 *
 * Lets users snapshot an annotated trace to disk and replay it later
 * (or ship it to someone else) without re-running the emulator and the
 * annotation passes — the moral equivalent of the trace files a
 * SimpleScalar-era lab would keep on NFS.
 *
 * Format: a fixed header (magic, version, count) followed by packed
 * little-endian records. The format is versioned; readers reject
 * mismatches rather than misinterpret.
 */

#ifndef CSIM_TRACE_TRACE_IO_HH
#define CSIM_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace csim {

/** Result of a load attempt. */
enum class TraceIoStatus
{
    Ok,
    CannotOpen,
    BadMagic,
    BadVersion,
    Truncated,
    /** File (or host) byte order does not match little-endian. */
    BadEndianness,
};

const char *traceIoStatusName(TraceIoStatus s);

/**
 * Write a trace (including annotations and producer links) to path.
 * @return true on success.
 */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Load a trace previously written by saveTrace.
 * @param[out] trace Replaced on success; untouched otherwise.
 */
TraceIoStatus loadTrace(Trace &trace, const std::string &path);

} // namespace csim

#endif // CSIM_TRACE_TRACE_IO_HH
