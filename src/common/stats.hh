/**
 * @file
 * Small statistics toolkit: running means, histograms and formatting
 * helpers used by the experiment harness and the bench binaries.
 */

#ifndef CSIM_COMMON_STATS_HH
#define CSIM_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace csim {

/**
 * Running mean/min/max/variance over a stream of samples. Variance uses
 * Welford's online algorithm, so it is numerically stable even for
 * long streams with a large mean.
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        if (count_ == 0 || x < min_)
            min_ = x;
        if (count_ == 0 || x > max_)
            max_ = x;
        sum_ += x;
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 with fewer than 2 samples. */
    double
    variance() const
    {
        return count_ > 1 ?
            m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = mean_ = m2_ = 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Fixed-bucket histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram() : Histogram(10, 0.0, 1.0) {}

    Histogram(unsigned buckets, double lo, double hi)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        CSIM_ASSERT(buckets >= 1);
        CSIM_ASSERT(hi > lo);
    }

    /**
     * Add a sample. NaN samples are rejected (dropped without
     * counting): the cast below would otherwise bucket them
     * arbitrarily, silently skewing the distribution.
     */
    void
    add(double x, std::uint64_t weight = 1)
    {
        if (std::isnan(x))
            return;
        double t = (x - lo_) / (hi_ - lo_);
        auto idx = static_cast<long>(t * static_cast<double>(size()));
        if (idx < 0)
            idx = 0;
        if (idx >= static_cast<long>(size()))
            idx = static_cast<long>(size()) - 1;
        counts_[static_cast<std::size_t>(idx)] += weight;
        total_ += weight;
    }

    /**
     * Bucket a sample would land in — exactly the clamping math of
     * add(). Callers with a small set of recurring sample values can
     * precompute indices once and feed addToBucket() on the hot path.
     */
    std::size_t
    bucketIndex(double x) const
    {
        double t = (x - lo_) / (hi_ - lo_);
        auto idx = static_cast<long>(t * static_cast<double>(size()));
        if (idx < 0)
            idx = 0;
        if (idx >= static_cast<long>(size()))
            idx = static_cast<long>(size()) - 1;
        return static_cast<std::size_t>(idx);
    }

    /** Add `weight` samples straight into a precomputed bucket. */
    void
    addToBucket(std::size_t idx, std::uint64_t weight = 1)
    {
        CSIM_ASSERT(idx < counts_.size());
        counts_[idx] += weight;
        total_ += weight;
    }

    /** Forget all samples; shape (buckets, bounds) is kept. */
    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
    }

    std::size_t size() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::uint64_t total() const { return total_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Fraction of all samples falling in bucket i. */
    double
    fraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(counts_.at(i)) /
            static_cast<double>(total_) : 0.0;
    }

    /** Lower edge of bucket i. */
    double
    bucketLo(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
            static_cast<double>(size());
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Plain-text table with fixed-width columns, used by the bench binaries
 * to print paper-style rows.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string formatDouble(double v, int decimals = 3);

/** Format v as a percentage ("12.3%"). */
std::string formatPercent(double v, int decimals = 1);

} // namespace csim

#endif // CSIM_COMMON_STATS_HH
