/**
 * @file
 * Error-reporting and logging helpers in the spirit of gem5's
 * logging.hh.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts so a debugger or core dump can inspect the state.
 * fatal()  -- the user asked for something unsatisfiable (bad config);
 *             exits with an error code.
 *
 * The _F variants take printf-style format strings; CSIM_LOG emits
 * leveled diagnostics gated by a runtime-settable global level so
 * instrumentation code never needs bare fprintf calls.
 */

#ifndef CSIM_COMMON_LOGGING_HH
#define CSIM_COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace csim {

/**
 * Hook invoked after a panic/fatal message is printed, before the
 * process dies. The flight recorder (src/obs/flight_recorder) installs
 * itself here so every CSIM_PANIC/CSIM_FATAL dumps the last ledger
 * events and the exact replay command. Null (the default) is a no-op,
 * so code paths without a recorder behave exactly as before.
 */
using CrashHook = void (*)(const char *reason);

inline std::atomic<CrashHook> &
crashHookRef()
{
    static std::atomic<CrashHook> hook{nullptr};
    return hook;
}

inline void
setCrashHook(CrashHook hook)
{
    crashHookRef().store(hook, std::memory_order_relaxed);
}

inline void
invokeCrashHook(const char *reason)
{
    if (CrashHook hook = crashHookRef().load(std::memory_order_relaxed))
        hook(reason);
}

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    invokeCrashHook(msg);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    invokeCrashHook(msg);
    std::exit(1);
}

#if defined(__GNUC__) || defined(__clang__)
#define CSIM_PRINTF_LIKE(fmt_idx, arg_idx)                                 \
    __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define CSIM_PRINTF_LIKE(fmt_idx, arg_idx)
#endif

[[noreturn]] inline void
panicFmtImpl(const char *file, int line, const char *fmt, ...)
    CSIM_PRINTF_LIKE(3, 4);

[[noreturn]] inline void
panicFmtImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    char msg[512];
    std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    invokeCrashHook(msg);
    std::abort();
}

[[noreturn]] inline void
fatalFmtImpl(const char *file, int line, const char *fmt, ...)
    CSIM_PRINTF_LIKE(3, 4);

[[noreturn]] inline void
fatalFmtImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    char msg[512];
    std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    invokeCrashHook(msg);
    std::exit(1);
}

/**
 * Diagnostic verbosity, most to least severe. Error is always printed;
 * the default global level is Warn.
 */
enum class LogLevel : int
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/**
 * The runtime-settable global log level (process-wide). Atomic because
 * sweep worker threads evaluate CSIM_LOG gates concurrently with any
 * setLogLevel call; relaxed ordering suffices — the level is an
 * independent flag, not a synchronization point.
 */
inline std::atomic<LogLevel> &
logLevelRef()
{
    static std::atomic<LogLevel> level{LogLevel::Warn};
    return level;
}

inline LogLevel
logLevel()
{
    return logLevelRef().load(std::memory_order_relaxed);
}

inline void
setLogLevel(LogLevel level)
{
    logLevelRef().store(level, std::memory_order_relaxed);
}

inline const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
      case LogLevel::Trace: return "trace";
      default: return "?";
    }
}

/**
 * Parse a diagnostic level from a flag or environment variable: either
 * a level name ("error", "warn", "info", "debug", "trace") or its
 * numeric value in [0, 4]. Anything else — empty, mixed case garbage,
 * out-of-range digits, trailing junk — is fatal, quoting `source`
 * (e.g. "CSIM_LOG") and the offending value, in the same strict style
 * as parseThreadCount: a typo must never silently fall back to the
 * default and swallow the diagnostics the user asked for.
 */
inline LogLevel
parseLogLevel(const char *value, const char *source)
{
    if (value != nullptr && value[0] != '\0') {
        for (int lv = 0; lv <= static_cast<int>(LogLevel::Trace); ++lv) {
            const LogLevel level = static_cast<LogLevel>(lv);
            if (std::strcmp(value, logLevelName(level)) == 0)
                return level;
            if (value[0] == '0' + lv && value[1] == '\0')
                return level;
        }
    }
    fatalFmtImpl(__FILE__, __LINE__,
                 "%s: log level '%s' is not a level name "
                 "(error|warn|info|debug|trace) or digit in [0, 4]",
                 source, value ? value : "");
}

/**
 * Apply the CSIM_LOG environment variable to the global level. Unset
 * keeps the default; a malformed value is fatal (see parseLogLevel).
 * Called once at startup by every bench binary (BenchContext).
 */
inline void
initLogLevelFromEnv()
{
    if (const char *env = std::getenv("CSIM_LOG"))
        setLogLevel(parseLogLevel(env, "CSIM_LOG"));
}

inline void
logImpl(LogLevel level, const char *fmt, ...) CSIM_PRINTF_LIKE(2, 3);

inline void
logImpl(LogLevel level, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[%s] ", logLevelName(level));
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
}

} // namespace csim

#define CSIM_PANIC(msg) ::csim::panicImpl(__FILE__, __LINE__, (msg))
#define CSIM_FATAL(msg) ::csim::fatalImpl(__FILE__, __LINE__, (msg))

/** printf-style panic: CSIM_PANIC_F("bad id %u", id). */
#define CSIM_PANIC_F(...) \
    ::csim::panicFmtImpl(__FILE__, __LINE__, __VA_ARGS__)

/** printf-style fatal: CSIM_FATAL_F("unknown flag %s", arg). */
#define CSIM_FATAL_F(...) \
    ::csim::fatalFmtImpl(__FILE__, __LINE__, __VA_ARGS__)

/**
 * Leveled log statement, gated by the global level at runtime:
 * CSIM_LOG(Info, "run %u finished in %llu cycles", i, cycles).
 * The level is a bare LogLevel enumerator name.
 */
#define CSIM_LOG(level, ...)                                               \
    do {                                                                   \
        if (::csim::LogLevel::level <= ::csim::logLevel())                 \
            ::csim::logImpl(::csim::LogLevel::level, __VA_ARGS__);         \
    } while (0)

/** Invariant check that stays on in release builds. */
#define CSIM_ASSERT(cond)                                                  \
    do {                                                                   \
        if (!(cond))                                                       \
            CSIM_PANIC("assertion failed: " #cond);                        \
    } while (0)

#endif // CSIM_COMMON_LOGGING_HH
