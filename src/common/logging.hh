/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts so a debugger or core dump can inspect the state.
 * fatal()  -- the user asked for something unsatisfiable (bad config);
 *             exits with an error code.
 */

#ifndef CSIM_COMMON_LOGGING_HH
#define CSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace csim {

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

} // namespace csim

#define CSIM_PANIC(msg) ::csim::panicImpl(__FILE__, __LINE__, (msg))
#define CSIM_FATAL(msg) ::csim::fatalImpl(__FILE__, __LINE__, (msg))

/** Invariant check that stays on in release builds. */
#define CSIM_ASSERT(cond)                                                  \
    do {                                                                   \
        if (!(cond))                                                       \
            CSIM_PANIC("assertion failed: " #cond);                        \
    } while (0)

#endif // CSIM_COMMON_LOGGING_HH
