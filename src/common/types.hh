/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 */

#ifndef CSIM_COMMON_TYPES_HH
#define CSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace csim {

/** Simulated clock cycle. */
using Cycle = std::uint64_t;

/** Index of a dynamic instruction within a trace. */
using InstId = std::uint64_t;

/** Static instruction address. */
using Addr = std::uint64_t;

/** Architectural register index (int regs 0..31, fp regs 32..63). */
using RegIndex = std::uint8_t;

/** Cluster identifier. */
using ClusterId = std::uint8_t;

/** Sentinel for "no dynamic instruction". */
inline constexpr InstId invalidInstId =
    std::numeric_limits<InstId>::max();

/** Sentinel for "no cluster assigned". */
inline constexpr ClusterId invalidCluster =
    std::numeric_limits<ClusterId>::max();

/** Sentinel cycle meaning "not yet happened". */
inline constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Number of architectural integer registers (r31 reads as zero). */
inline constexpr int numIntRegs = 32;

/** Number of architectural floating point registers. */
inline constexpr int numFpRegs = 32;

/** Total architectural registers (int followed by fp). */
inline constexpr int numArchRegs = numIntRegs + numFpRegs;

/** The architectural zero register: writes discarded, reads yield 0. */
inline constexpr RegIndex zeroReg = 31;

} // namespace csim

#endif // CSIM_COMMON_TYPES_HH
