#include "common/stats.hh"

#include <cstdio>
#include <sstream>

namespace csim {

TextTable::TextTable(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    CSIM_ASSERT(cells.size() == rows_.front().size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(rows_.front().size(), 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (std::size_t c = 0; c < rows_[r].size(); ++c) {
            const auto &cell = rows_[r][c];
            out << cell;
            if (c + 1 < rows_[r].size())
                out << std::string(widths[c] - cell.size() + 2, ' ');
        }
        out << '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatPercent(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v * 100.0);
    return buf;
}

} // namespace csim
