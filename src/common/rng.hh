/**
 * @file
 * Deterministic xorshift64* pseudo-random number generator.
 *
 * Used everywhere randomness is needed (workload data, probabilistic
 * counter updates) so that runs are reproducible from a seed, independent
 * of the platform's std::rand or libstdc++ distribution details.
 */

#ifndef CSIM_COMMON_RNG_HH
#define CSIM_COMMON_RNG_HH

#include <cstdint>

namespace csim {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** True with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

} // namespace csim

#endif // CSIM_COMMON_RNG_HH
