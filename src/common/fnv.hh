/**
 * @file
 * FNV-1a 64-bit hashing, shared by the trace-cache spill keys and the
 * run-ledger digests (config, stats, provenance). One implementation
 * so a hash printed in a ledger event can be matched byte-for-byte
 * against a spill file name or a report's provenance block.
 */

#ifndef CSIM_COMMON_FNV_HH
#define CSIM_COMMON_FNV_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace csim {

inline constexpr std::uint64_t fnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t fnv1aPrime = 1099511628211ull;

/** Fold more bytes into a running FNV-1a 64 state. */
inline std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t h = fnv1aOffset)
{
    for (unsigned char c : bytes) {
        h ^= c;
        h *= fnv1aPrime;
    }
    return h;
}

/** Canonical 16-digit lower-case hex rendering of a hash. */
inline std::string
fnvHex(std::uint64_t h)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace csim

#endif // CSIM_COMMON_FNV_HH
