/**
 * @file
 * Probabilistic counter updates (Riley & Zilles, CAL 2005).
 *
 * The paper's LoC predictor stratifies likelihood-of-criticality into 16
 * levels stored in just 4 bits by making counter movement probabilistic:
 * on a training event the counter moves one level toward the observed
 * outcome with a probability chosen so the counter's resting level tracks
 * the observed frequency of the outcome.
 *
 * With moveUp probability p_up = (levels-1-v)/ (levels-1) scaled by the
 * training direction, the stationary distribution centres the level v on
 * roughly f*(levels-1) where f is the observed frequency of "true"
 * outcomes; level/(levels-1) is then an estimate of f. We implement the
 * simple symmetric random-walk variant: on outcome=true move up one level
 * with probability q, on outcome=false move down one level with
 * probability q' where q and q' are chosen to equalise expected drift,
 * i.e. q = 1 - v/(levels-1) view. Concretely we use the classic
 * "probabilistic saturating counter" recipe: move toward the outcome with
 * probability 1/updatePeriod, which emulates a higher-precision counter
 * that only stores its top bits.
 */

#ifndef CSIM_COMMON_PROB_COUNTER_HH
#define CSIM_COMMON_PROB_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/rng.hh"

namespace csim {

/**
 * A counter with `levels` discrete states kept in ceil(log2(levels)) bits
 * whose state, divided by (levels - 1), converges on the frequency of
 * positive training outcomes.
 *
 * Emulates an n-bit frequency estimator using only the stratum index: a
 * positive outcome moves the stratum up with probability proportional to
 * the distance to the top; a negative outcome moves it down with
 * probability proportional to the distance to the bottom. The fixed point
 * of the expected drift is exactly level = f * (levels - 1).
 */
class ProbCounter
{
  public:
    ProbCounter() = default;

    explicit ProbCounter(unsigned levels, unsigned initial = 0)
        : levels_(levels), level_(initial)
    {
        CSIM_ASSERT(levels >= 2);
        CSIM_ASSERT(initial < levels);
    }

    /**
     * Train with one observed outcome.
     *
     * Drift analysis: E[delta] = outcome_rate * pUp - (1-rate) * pDown
     * with pUp = (top - level)/top and pDown = level/top (top=levels-1).
     * Setting E[delta] = 0 gives level = rate * top.
     */
    void
    train(bool outcome, Rng &rng)
    {
        const unsigned top = levels_ - 1;
        if (outcome) {
            if (level_ < top && rng.below(top) >= level_)
                ++level_;
        } else {
            if (level_ > 0 && rng.below(top) < level_)
                --level_;
        }
    }

    unsigned level() const { return level_; }
    unsigned levels() const { return levels_; }

    /** Estimated frequency of positive outcomes, in [0, 1]. */
    double
    estimate() const
    {
        return static_cast<double>(level_) /
            static_cast<double>(levels_ - 1);
    }

    void reset(unsigned v = 0) { CSIM_ASSERT(v < levels_); level_ = v; }

  private:
    unsigned levels_ = 16;
    unsigned level_ = 0;
};

} // namespace csim

#endif // CSIM_COMMON_PROB_COUNTER_HH
