/**
 * @file
 * Saturating counter with asymmetric increment/decrement steps.
 *
 * The Fields criticality predictor uses a 6-bit counter that increments
 * by 8 when an instruction trains critical and decrements by 1 otherwise;
 * an instruction is predicted critical when the counter value is at least
 * the threshold (8). SatCounter supports that shape as well as the
 * classic 2-bit branch-predictor counter.
 */

#ifndef CSIM_COMMON_SAT_COUNTER_HH
#define CSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace csim {

class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits Counter width in bits (1..31).
     * @param up Increment step applied by train(true).
     * @param down Decrement step applied by train(false).
     * @param initial Initial counter value.
     */
    SatCounter(unsigned bits, unsigned up = 1, unsigned down = 1,
               unsigned initial = 0)
        : max_((1u << bits) - 1), up_(up), down_(down), value_(initial)
    {
        CSIM_ASSERT(bits >= 1 && bits <= 31);
        CSIM_ASSERT(initial <= max_);
    }

    /** Move the counter toward saturation in the given direction. */
    void
    train(bool up)
    {
        if (up)
            value_ = (value_ + up_ > max_) ? max_ : value_ + up_;
        else
            value_ = (value_ < down_) ? 0 : value_ - down_;
    }

    unsigned value() const { return value_; }
    unsigned maxValue() const { return max_; }
    bool saturatedHigh() const { return value_ == max_; }
    bool saturatedLow() const { return value_ == 0; }

    /** Predict taken/critical when at or above the given threshold. */
    bool atLeast(unsigned threshold) const { return value_ >= threshold; }

    void reset(unsigned v = 0) { CSIM_ASSERT(v <= max_); value_ = v; }

  private:
    unsigned max_ = 3;
    unsigned up_ = 1;
    unsigned down_ = 1;
    unsigned value_ = 0;
};

} // namespace csim

#endif // CSIM_COMMON_SAT_COUNTER_HH
