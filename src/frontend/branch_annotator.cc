#include "frontend/branch_annotator.hh"

#include "frontend/gshare.hh"

namespace csim {

BranchAnnotateResult
annotateBranches(Trace &trace, unsigned history_bits)
{
    GsharePredictor pred(history_bits);
    return annotateBranches(trace, pred);
}

BranchAnnotateResult
annotateBranches(Trace &trace, GsharePredictor &pred)
{
    BranchAnnotateResult res;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        TraceRecord &rec = trace[i];
        if (!rec.isCondBranch) {
            rec.mispredicted = false;
            continue;
        }
        ++res.condBranches;
        rec.mispredicted = pred.mispredicts(rec.pc, rec.taken);
        if (rec.mispredicted)
            ++res.mispredictions;
    }
    return res;
}

} // namespace csim
