/**
 * @file
 * Branch annotation pass: runs the gshare predictor over a trace in
 * program order and marks each conditional branch mispredicted or not.
 * Unconditional direct jumps are always predicted correctly (perfect
 * BTB, as implied by the paper's perfect instruction cache front end).
 */

#ifndef CSIM_FRONTEND_BRANCH_ANNOTATOR_HH
#define CSIM_FRONTEND_BRANCH_ANNOTATOR_HH

#include "trace/trace.hh"

namespace csim {

class GsharePredictor;

struct BranchAnnotateResult
{
    std::uint64_t condBranches = 0;
    std::uint64_t mispredictions = 0;
};

/**
 * Annotate rec.mispredicted for every conditional branch in the trace.
 * @param history_bits gshare global history length.
 */
BranchAnnotateResult annotateBranches(Trace &trace,
                                      unsigned history_bits = 16);

/**
 * Same pass against a caller-owned predictor whose tables and history
 * persist across calls — the streaming-build form: annotating a trace
 * chunk by chunk through one predictor yields exactly the monolithic
 * pass's outcomes.
 */
BranchAnnotateResult annotateBranches(Trace &trace,
                                      GsharePredictor &pred);

} // namespace csim

#endif // CSIM_FRONTEND_BRANCH_ANNOTATOR_HH
