/**
 * @file
 * gshare conditional branch predictor (16 bits of global history), as in
 * the paper's front end (Table 1).
 */

#ifndef CSIM_FRONTEND_GSHARE_HH
#define CSIM_FRONTEND_GSHARE_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/types.hh"

namespace csim {

class GsharePredictor
{
  public:
    /** @param history_bits Global history length; table has 2^bits PHT
     *  entries of 2-bit counters. */
    explicit GsharePredictor(unsigned history_bits = 16);

    /** Predict the direction of the conditional branch at pc. */
    bool predict(Addr pc) const;

    /**
     * Update the PHT and global history with the resolved outcome.
     * Because traces contain only correct-path instructions, history is
     * updated with the actual outcome, which models a machine with
     * perfect history repair on mispredictions.
     */
    void update(Addr pc, bool taken);

    /** Predict, update, and report whether the prediction was wrong. */
    bool
    mispredicts(Addr pc, bool taken)
    {
        bool pred = predict(pc);
        update(pc, taken);
        return pred != taken;
    }

    std::uint32_t history() const { return history_; }

  private:
    std::size_t index(Addr pc) const;

    unsigned historyBits_;
    std::uint32_t historyMask_;
    std::uint32_t history_ = 0;
    std::vector<SatCounter> pht_;
};

} // namespace csim

#endif // CSIM_FRONTEND_GSHARE_HH
