#include "frontend/gshare.hh"

#include "common/logging.hh"

namespace csim {

GsharePredictor::GsharePredictor(unsigned history_bits)
    : historyBits_(history_bits),
      historyMask_((1u << history_bits) - 1),
      pht_(std::size_t{1} << history_bits,
           SatCounter(2, 1, 1, 1))  // weakly not-taken
{
    CSIM_ASSERT(history_bits >= 1 && history_bits <= 24);
}

std::size_t
GsharePredictor::index(Addr pc) const
{
    // Drop the 2 low zero bits of the word-aligned pc before hashing.
    return ((pc >> 2) ^ history_) & historyMask_;
}

bool
GsharePredictor::predict(Addr pc) const
{
    return pht_[index(pc)].atLeast(2);
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    pht_[index(pc)].train(taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;
}

} // namespace csim
