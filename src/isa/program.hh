/**
 * @file
 * Program builder: a tiny assembler with labels for writing the workload
 * proxies directly in C++.
 */

#ifndef CSIM_ISA_PROGRAM_HH
#define CSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/instruction.hh"

namespace csim {

/** Forward-patchable branch target. */
struct Label
{
    int id = -1;
};

/**
 * A program in the mini-ISA. Built with one method per opcode; branch
 * targets are labels bound with bind() and resolved by finalize().
 *
 * Register naming helpers: r(i) for integer register i, f(i) for
 * floating point register i.
 */
class Program
{
  public:
    /** Integer register i as a RegIndex. */
    static RegIndex
    r(int i)
    {
        CSIM_ASSERT(i >= 0 && i < numIntRegs);
        return static_cast<RegIndex>(i);
    }

    /** Floating point register i as a RegIndex. */
    static RegIndex
    f(int i)
    {
        CSIM_ASSERT(i >= 0 && i < numFpRegs);
        return static_cast<RegIndex>(numIntRegs + i);
    }

    Label newLabel();

    /** Bind a label to the next emitted instruction. */
    void bind(Label l);

    // Three-operand ALU ops.
    void add(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Add, d, a, b); }
    void sub(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Sub, d, a, b); }
    void and_(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::And, d, a, b); }
    void or_(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Or, d, a, b); }
    void xor_(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Xor, d, a, b); }
    void sll(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Sll, d, a, b); }
    void srl(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Srl, d, a, b); }
    void cmpeq(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Cmpeq, d, a, b); }
    void cmplt(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Cmplt, d, a, b); }
    void cmple(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Cmple, d, a, b); }
    void mul(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Mul, d, a, b); }
    void fadd(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Fadd, d, a, b); }
    void fmul(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Fmul, d, a, b); }
    void fcmp(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Fcmp, d, a, b); }
    void fdiv(RegIndex d, RegIndex a, RegIndex b) { emitRRR(Opcode::Fdiv, d, a, b); }

    /** dest = src + imm. Also used as "mov" (imm 0) and "lda". */
    void addi(RegIndex d, RegIndex a, std::int64_t imm);
    /** dest = imm. */
    void lui(RegIndex d, std::int64_t imm);
    /** dest = (double)src. */
    void itof(RegIndex d, RegIndex a);
    /** dest = mem[base + disp]. */
    void ld(RegIndex d, RegIndex base, std::int64_t disp = 0);
    /** mem[base + disp] = value. */
    void st(RegIndex value, RegIndex base, std::int64_t disp = 0);
    /** Branch to l if src == 0. */
    void beq(RegIndex src, Label l);
    /** Branch to l if src != 0. */
    void bne(RegIndex src, Label l);
    /** Unconditional jump. */
    void jmp(Label l);
    void nop();
    void halt();

    /**
     * Resolve all labels. Must be called once, after which the program is
     * immutable and executable.
     */
    void finalize();

    bool finalized() const { return finalized_; }
    std::size_t size() const { return instrs_.size(); }
    const Instruction &at(std::size_t i) const { return instrs_.at(i); }
    const std::vector<Instruction> &instructions() const { return instrs_; }

    /** Human-readable listing (for debugging and the examples). */
    std::string disassemble() const;

  private:
    void emitRRR(Opcode op, RegIndex d, RegIndex a, RegIndex b);
    void emitBranch(Opcode op, RegIndex src, Label l);
    void checkMutable() const;

    std::vector<Instruction> instrs_;
    /** Per-label bound instruction index, or -1 while unbound. */
    std::vector<std::int64_t> labelTargets_;
    /** (instruction index, label id) pairs awaiting patching. */
    std::vector<std::pair<std::size_t, int>> fixups_;
    bool finalized_ = false;
};

} // namespace csim

#endif // CSIM_ISA_PROGRAM_HH
