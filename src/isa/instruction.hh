/**
 * @file
 * Static instruction representation for the mini-ISA.
 */

#ifndef CSIM_ISA_INSTRUCTION_HH
#define CSIM_ISA_INSTRUCTION_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace csim {

/**
 * One static instruction. Three-operand format:
 *
 *   alu   dest, src1, src2        (Add..Cmple, Mul, Fadd..Fdiv)
 *   addi  dest, src1, imm
 *   lui   dest, imm
 *   ld    dest, imm(src1)
 *   st    src2, imm(src1)
 *   beq/bne src1, target          (target = static instruction index)
 *   jmp   target
 *
 * Integer registers are 0..31 (r31 hardwired to zero); floating point
 * registers are numIntRegs..numIntRegs+31. Branch targets are static
 * instruction indices, patched from labels by Program::finalize().
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex dest = zeroReg;
    RegIndex src1 = zeroReg;
    RegIndex src2 = zeroReg;
    std::int64_t imm = 0;

    bool hasDest() const { return writesDest(op) && dest != zeroReg; }

    /** Number of register source operands actually read. */
    int
    numSrcs() const
    {
        switch (op) {
          case Opcode::Lui:
          case Opcode::Jmp:
          case Opcode::Nop:
          case Opcode::Halt:
            return 0;
          case Opcode::Addi:
          case Opcode::Ld:
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Itof:
            return 1;
          default:
            return 2;
        }
    }
};

} // namespace csim

#endif // CSIM_ISA_INSTRUCTION_HH
