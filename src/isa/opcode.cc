#include "isa/opcode.hh"

#include "common/logging.hh"

namespace csim {

OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return OpClass::IntMul;
      case Opcode::Ld:
        return OpClass::Load;
      case Opcode::St:
        return OpClass::Store;
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::Fcmp:
      case Opcode::Itof:
        return OpClass::FpAlu;
      case Opcode::Fdiv:
        return OpClass::FpDiv;
      default:
        return OpClass::IntAlu;
    }
}

unsigned
opLatency(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return 7;
      case Opcode::Ld:
        return 3;   // load-to-use on an L1 hit
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::Fcmp:
      case Opcode::Itof:
        return 4;
      case Opcode::Fdiv:
        return 12;
      default:
        return 1;
    }
}

bool
isBranch(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Jmp;
}

bool
isCondBranch(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne;
}

bool
isMem(Opcode op)
{
    return op == Opcode::Ld || op == Opcode::St;
}

bool
writesDest(Opcode op)
{
    switch (op) {
      case Opcode::St:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Jmp:
      case Opcode::Nop:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

std::string_view
opName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Cmpeq: return "cmpeq";
      case Opcode::Cmplt: return "cmplt";
      case Opcode::Cmple: return "cmple";
      case Opcode::Addi: return "addi";
      case Opcode::Lui: return "lui";
      case Opcode::Mul: return "mul";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fcmp: return "fcmp";
      case Opcode::Itof: return "itof";
      case Opcode::Fdiv: return "fdiv";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Jmp: return "jmp";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      default:
        CSIM_PANIC("opName: bad opcode");
    }
}

} // namespace csim
