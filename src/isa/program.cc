#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace csim {

Label
Program::newLabel()
{
    labelTargets_.push_back(-1);
    return Label{static_cast<int>(labelTargets_.size()) - 1};
}

void
Program::bind(Label l)
{
    checkMutable();
    CSIM_ASSERT(l.id >= 0 &&
                l.id < static_cast<int>(labelTargets_.size()));
    CSIM_ASSERT(labelTargets_[l.id] == -1);
    labelTargets_[l.id] = static_cast<std::int64_t>(instrs_.size());
}

void
Program::emitRRR(Opcode op, RegIndex d, RegIndex a, RegIndex b)
{
    checkMutable();
    instrs_.push_back(Instruction{op, d, a, b, 0});
}

void
Program::addi(RegIndex d, RegIndex a, std::int64_t imm)
{
    checkMutable();
    instrs_.push_back(Instruction{Opcode::Addi, d, a, zeroReg, imm});
}

void
Program::lui(RegIndex d, std::int64_t imm)
{
    checkMutable();
    instrs_.push_back(Instruction{Opcode::Lui, d, zeroReg, zeroReg, imm});
}

void
Program::itof(RegIndex d, RegIndex a)
{
    checkMutable();
    instrs_.push_back(Instruction{Opcode::Itof, d, a, zeroReg, 0});
}

void
Program::ld(RegIndex d, RegIndex base, std::int64_t disp)
{
    checkMutable();
    instrs_.push_back(Instruction{Opcode::Ld, d, base, zeroReg, disp});
}

void
Program::st(RegIndex value, RegIndex base, std::int64_t disp)
{
    checkMutable();
    instrs_.push_back(
        Instruction{Opcode::St, zeroReg, base, value, disp});
}

void
Program::emitBranch(Opcode op, RegIndex src, Label l)
{
    checkMutable();
    CSIM_ASSERT(l.id >= 0 &&
                l.id < static_cast<int>(labelTargets_.size()));
    fixups_.emplace_back(instrs_.size(), l.id);
    instrs_.push_back(Instruction{op, zeroReg, src, zeroReg, 0});
}

void
Program::beq(RegIndex src, Label l)
{
    emitBranch(Opcode::Beq, src, l);
}

void
Program::bne(RegIndex src, Label l)
{
    emitBranch(Opcode::Bne, src, l);
}

void
Program::jmp(Label l)
{
    emitBranch(Opcode::Jmp, zeroReg, l);
}

void
Program::nop()
{
    checkMutable();
    instrs_.push_back(Instruction{});
}

void
Program::halt()
{
    checkMutable();
    instrs_.push_back(
        Instruction{Opcode::Halt, zeroReg, zeroReg, zeroReg, 0});
}

void
Program::finalize()
{
    checkMutable();
    for (const auto &[index, label] : fixups_) {
        std::int64_t target = labelTargets_.at(label);
        if (target < 0)
            CSIM_FATAL("Program::finalize: unbound label");
        if (target > static_cast<std::int64_t>(instrs_.size()))
            CSIM_FATAL("Program::finalize: label past end of program");
        instrs_[index].imm = target;
    }
    finalized_ = true;
}

void
Program::checkMutable() const
{
    if (finalized_)
        CSIM_PANIC("Program modified after finalize()");
}

std::string
Program::disassemble() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
        const Instruction &inst = instrs_[i];
        out << i << ":\t" << opName(inst.op);
        auto reg = [](RegIndex x) {
            std::string s;
            if (x >= numIntRegs)
                s = "f" + std::to_string(x - numIntRegs);
            else
                s = "r" + std::to_string(x);
            return s;
        };
        switch (inst.op) {
          case Opcode::Addi:
            out << ' ' << reg(inst.dest) << ", " << reg(inst.src1)
                << ", " << inst.imm;
            break;
          case Opcode::Lui:
            out << ' ' << reg(inst.dest) << ", " << inst.imm;
            break;
          case Opcode::Itof:
            out << ' ' << reg(inst.dest) << ", " << reg(inst.src1);
            break;
          case Opcode::Ld:
            out << ' ' << reg(inst.dest) << ", " << inst.imm << '('
                << reg(inst.src1) << ')';
            break;
          case Opcode::St:
            out << ' ' << reg(inst.src2) << ", " << inst.imm << '('
                << reg(inst.src1) << ')';
            break;
          case Opcode::Beq:
          case Opcode::Bne:
            out << ' ' << reg(inst.src1) << ", " << inst.imm;
            break;
          case Opcode::Jmp:
            out << ' ' << inst.imm;
            break;
          case Opcode::Nop:
          case Opcode::Halt:
            break;
          default:
            out << ' ' << reg(inst.dest) << ", " << reg(inst.src1)
                << ", " << reg(inst.src2);
            break;
        }
        out << '\n';
    }
    return out.str();
}

} // namespace csim
