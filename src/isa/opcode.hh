/**
 * @file
 * Opcodes and operation classes for the mini Alpha-like ISA.
 *
 * The timing study only needs op *classes* (which functional-unit port an
 * instruction uses) and latencies (the paper matches the Alpha 21264
 * latency model); the concrete opcodes exist so workloads can be written
 * as real programs and executed functionally.
 */

#ifndef CSIM_ISA_OPCODE_HH
#define CSIM_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace csim {

enum class Opcode : std::uint8_t {
    // Integer ALU (1 cycle).
    Add, Sub, And, Or, Xor, Sll, Srl,
    Cmpeq, Cmplt, Cmple,
    Addi,       ///< dest = src1 + imm (also serves as LDA/MOV).
    Lui,        ///< dest = imm.
    // Integer multiply (7 cycles, 21264 MUL latency).
    Mul,
    // Memory.
    Ld,         ///< dest = mem[src1 + imm].
    St,         ///< mem[src1 + imm] = src2.
    // Floating point (4 cycles; divide 12).
    Fadd, Fmul, Fcmp, Itof,
    Fdiv,
    // Control. Conditional branches test src1 against zero.
    Beq,        ///< taken if src1 == 0.
    Bne,        ///< taken if src1 != 0.
    Jmp,        ///< unconditional direct jump.
    // Pseudo.
    Nop,
    Halt,       ///< stop functional emulation.

    NumOpcodes
};

/** Functional-unit port class; determines per-cluster issue limits. */
enum class OpClass : std::uint8_t {
    IntAlu,     ///< single-cycle integer ops and branches
    IntMul,     ///< pipelined integer multiply (uses an int port)
    FpAlu,      ///< floating point add/mul/cmp/convert
    FpDiv,      ///< floating point divide (uses the fp port)
    Load,
    Store,
    NumClasses
};

/** Port class for an opcode. */
OpClass opClass(Opcode op);

/**
 * Nominal execution latency in cycles (Alpha 21264 model). Loads report
 * the 3-cycle load-to-use hit latency; the cache annotation pass replaces
 * it on a miss.
 */
unsigned opLatency(Opcode op);

/** True for Beq/Bne/Jmp. */
bool isBranch(Opcode op);

/** True only for the conditional branches (Beq/Bne). */
bool isCondBranch(Opcode op);

/** True for Ld/St. */
bool isMem(Opcode op);

/** True when the opcode writes a destination register. */
bool writesDest(Opcode op);

/** Mnemonic for disassembly. */
std::string_view opName(Opcode op);

/** True when the op class issues through a memory port. */
inline bool
isMemClass(OpClass c)
{
    return c == OpClass::Load || c == OpClass::Store;
}

/** True when the op class issues through a floating point port. */
inline bool
isFpClass(OpClass c)
{
    return c == OpClass::FpAlu || c == OpClass::FpDiv;
}

/** True when the op class issues through an integer port. */
inline bool
isIntClass(OpClass c)
{
    return c == OpClass::IntAlu || c == OpClass::IntMul;
}

} // namespace csim

#endif // CSIM_ISA_OPCODE_HH
