/**
 * @file
 * Differential CPI oracles.
 *
 * The timing simulator's CPI is bounded below by two independent
 * models the repo already builds: the idealized list scheduler
 * (Sec. 2.2 — global view, exact future knowledge, same structural
 * constraints) and the same policy stack on a monolithic machine with
 * the clustered geometry's *summed* resources (one big window, no
 * forwarding latency, at least as many ports of every class). A
 * timing run that beats either bound is miscounting cycles, so the
 * harness asserts these relations after every sweep cell when
 * verification is on, and the fuzzer asserts them per random case.
 *
 * Bounds are checked with a small relative tolerance: the envelope
 * machine is a different discrete schedule, and rounding in the
 * measured-run cycle accounting can put the clustered machine a hair
 * under an equal-performance bound without any bug.
 */

#ifndef CSIM_VERIFY_ORACLE_HH
#define CSIM_VERIFY_ORACLE_HH

#include <string>

#include "core/machine_config.hh"

namespace csim {

/** Outcome of one differential bound check. */
struct OracleCheck
{
    bool ok = true;
    /** Human-readable description when the bound is violated. */
    std::string detail;
};

/**
 * The monolithic envelope of a clustered geometry: one cluster whose
 * issue width, port counts and scheduling window are the *sums* over
 * the clustered machine's clusters, with the same front end, ROB and
 * commit stage and no inter-cluster forwarding. Summing (rather than
 * taking MachineConfig::monolithic()) matters because clustered(n)
 * rounds partial fp/mem ports up, so e.g. 8x1w owns more total fp
 * ports than the paper's 1x8w baseline; the envelope must dominate
 * the clustered machine resource-for-resource for the CPI bound to be
 * sound.
 */
MachineConfig monolithicEnvelope(const MachineConfig &clustered);

/**
 * Assert `cpi >= bound * (1 - rel_tol)`. @p bound_name names the
 * bounding model in the failure detail (e.g. "ideal list scheduler").
 */
OracleCheck checkCpiLowerBound(double cpi, double bound,
                               double rel_tol,
                               const std::string &bound_name);

/**
 * Structural sanity: CPI can never drop below the reciprocal of the
 * narrowest pipeline stage (fetch, dispatch, total issue, commit).
 */
OracleCheck checkCpiFloor(double cpi, const MachineConfig &config);

} // namespace csim

#endif // CSIM_VERIFY_ORACLE_HH
