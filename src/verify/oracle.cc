#include "verify/oracle.hh"

#include <algorithm>

namespace csim {

MachineConfig
monolithicEnvelope(const MachineConfig &clustered)
{
    MachineConfig env = clustered;
    env.numClusters = 1;
    env.cluster.issueWidth =
        clustered.numClusters * clustered.cluster.issueWidth;
    env.cluster.intPorts =
        clustered.numClusters * clustered.cluster.intPorts;
    env.cluster.fpPorts =
        clustered.numClusters * clustered.cluster.fpPorts;
    env.cluster.memPorts =
        clustered.numClusters * clustered.cluster.memPorts;
    env.windowPerCluster =
        clustered.numClusters * clustered.windowPerCluster;
    env.fwdLatency = 0;
    return env;
}

OracleCheck
checkCpiLowerBound(double cpi, double bound, double rel_tol,
                   const std::string &bound_name)
{
    OracleCheck check;
    if (cpi >= bound * (1.0 - rel_tol))
        return check;
    check.ok = false;
    check.detail = "differential oracle: timing CPI " +
        std::to_string(cpi) + " beats the " + bound_name +
        " lower bound " + std::to_string(bound) +
        " (relative tolerance " + std::to_string(rel_tol) + ")";
    return check;
}

OracleCheck
checkCpiFloor(double cpi, const MachineConfig &config)
{
    const unsigned narrowest =
        std::min({config.fetchWidth, config.dispatchWidth,
                  config.totalWidth(), config.commitWidth});
    OracleCheck check;
    if (narrowest == 0 || cpi >= 1.0 / narrowest)
        return check;
    check.ok = false;
    check.detail = "differential oracle: timing CPI " +
        std::to_string(cpi) +
        " below the structural floor 1/" +
        std::to_string(narrowest) +
        " set by the narrowest pipeline stage";
    return check;
}

} // namespace csim
