/**
 * @file
 * Pipeline invariant checker.
 *
 * The paper's claims are bounds over the timing model, so a silently
 * broken timing invariant poisons every reproduced figure at once.
 * PipelineChecker re-derives, independently of the core's own
 * bookkeeping, every invariant the clustered machine must honour and
 * counts violations into `verify.*` stats (panicking immediately when
 * asked to):
 *
 *  - monotone stage timestamps per instruction:
 *      fetch <= dispatch (>= fetch + frontendDepth),
 *      dispatch + 1 <= ready <= issue < complete (= issue + execLat)
 *      < commit;
 *  - in-order steer and commit, program-order instruction ids;
 *  - per-cluster window-occupancy conservation: the checker's own
 *    enter/exit balance must equal the core's occupancy() every cycle
 *    and never exceed windowPerCluster;
 *  - per-cluster-cycle issue width and int/fp/mem port bounds, plus
 *    dispatch- and commit-width bounds;
 *  - ROB occupancy (steered-but-uncommitted) <= robEntries;
 *  - the bypass lower bound: a consumer's ready/issue can never
 *    precede producer.complete, plus fwdLatency for cross-cluster
 *    register operands.
 *
 * Two entry points share the same invariant set: a live SimObserver
 * attached through SimOptions::checker (validates while the run
 * unfolds, catching transient states a post-hoc look cannot see), and
 * auditTiming(), which replays the checks over a finished SimResult's
 * timing records — the hammer the negative tests and the fuzzer use
 * on deliberately corrupted schedules.
 */

#ifndef CSIM_VERIFY_PIPELINE_CHECKER_HH
#define CSIM_VERIFY_PIPELINE_CHECKER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/sim_observer.hh"
#include "core/timing.hh"
#include "obs/stats_registry.hh"
#include "trace/trace.hh"

namespace csim {

/** The invariant families the checker distinguishes. */
enum class Invariant : std::uint8_t
{
    Monotone,   ///< stage timestamp ordering / latency consistency
    Order,      ///< in-order steer and commit, program-order ids
    Occupancy,  ///< window enter/exit conservation and bounds
    Width,      ///< issue/port/dispatch/commit per-cycle bounds
    Rob,        ///< ROB occupancy bound
    Bypass,     ///< operand availability incl. forwarding latency
    NumInvariants
};

inline constexpr std::size_t numInvariants =
    static_cast<std::size_t>(Invariant::NumInvariants);

/** Dotted-stat segment / display name of an invariant family. */
const char *invariantName(Invariant inv);

/** Violation tally of a checker pass (live or post-hoc audit). */
struct VerifyReport
{
    std::array<std::uint64_t, numInvariants> byClass = {};
    /** Human-readable description of the first violation seen. */
    std::string firstDetail;
    std::uint64_t checkedInstructions = 0;
    std::uint64_t checkedCycles = 0;

    std::uint64_t
    violations() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : byClass)
            sum += v;
        return sum;
    }

    std::uint64_t
    count(Invariant inv) const
    {
        return byClass[static_cast<std::size_t>(inv)];
    }

    bool ok() const { return violations() == 0; }

    /** Record one violation (keeps the first detail string). */
    void record(Invariant inv, std::string detail);
};

struct PipelineCheckerOptions
{
    /**
     * Abort on the first violation with the full detail message
     * (CSIM_PANIC_F). The harness turns this on so CI dies loudly at
     * the broken cycle; the fuzzer leaves it off and inspects the
     * report to dump a reproducer instead.
     */
    bool panicOnViolation = false;
};

/**
 * Live invariant checker. Construct with the *intended* machine
 * geometry — normally the same config the TimingSim runs — and attach
 * through SimOptions::checker. (The negative tests exploit the
 * separation: a checker constructed with a stricter geometry than the
 * sim's flags exactly the faults the gap injects, e.g. a dropped
 * forwarding latency or an oversubscribed window.)
 *
 * The report accumulates across runs; live per-run state resets at
 * onRunStart, so one checker can watch warmup + measured runs.
 */
class PipelineChecker : public SimObserver
{
  public:
    PipelineChecker(const MachineConfig &config, const Trace &trace,
                    PipelineCheckerOptions options =
                        PipelineCheckerOptions{});

    // SimObserver interface.
    void onRunStart(const CoreView &view) override;
    void onSteer(const CoreView &view, InstId id) override;
    void onIssue(const CoreView &view, InstId id) override;
    void onCommit(const CoreView &view, InstId id) override;
    void onCycleEnd(const CoreView &view) override;
    void registerStats(StatsRegistry &registry) override;

    const VerifyReport &report() const { return report_; }
    std::uint64_t violations() const { return report_.violations(); }

  private:
    /** Record (and optionally panic on) one violation. */
    void violation(Invariant inv, std::string detail);

    /** Shared by onIssue/onCommit: operand-availability bounds. */
    void checkOperands(const CoreView &view, InstId id,
                       bool at_commit);

    struct ClusterState
    {
        std::uint64_t entered = 0;
        std::uint64_t exited = 0;
        // Per-cycle port use, reset at every cycle end.
        unsigned total = 0;
        unsigned intU = 0;
        unsigned fpU = 0;
        unsigned memU = 0;
    };

    const MachineConfig config_;
    const Trace &trace_;
    PipelineCheckerOptions options_;

    VerifyReport report_;

    // Live per-run state.
    InstId nextSteer_ = 0;
    InstId nextCommit_ = 0;
    Cycle lastDispatch_ = 0;
    Cycle lastCommit_ = 0;
    std::uint64_t inFlight_ = 0;
    unsigned steersThisCycle_ = 0;
    unsigned commitsThisCycle_ = 0;
    std::vector<ClusterState> clusters_;

    // Optional registry bindings (mirror the report counts).
    Counter *statCheckedInsts_ = nullptr;
    Counter *statCheckedCycles_ = nullptr;
    Counter *statViolations_ = nullptr;
    std::array<Counter *, numInvariants> statByClass_ = {};
};

/**
 * Post-hoc audit: replay every checker invariant over the final
 * timing records of a finished run (occupancy and ROB bounds are
 * reconstructed from the dispatch/issue/commit event streams). Never
 * panics — callers inspect the returned report.
 */
VerifyReport auditTiming(const Trace &trace,
                         const std::vector<InstTiming> &timing,
                         const MachineConfig &config);

} // namespace csim

#endif // CSIM_VERIFY_PIPELINE_CHECKER_HH
