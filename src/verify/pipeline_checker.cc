#include "verify/pipeline_checker.hh"

#include <map>
#include <utility>

#include "common/logging.hh"

namespace csim {

const char *
invariantName(Invariant inv)
{
    switch (inv) {
      case Invariant::Monotone: return "monotone";
      case Invariant::Order: return "order";
      case Invariant::Occupancy: return "occupancy";
      case Invariant::Width: return "width";
      case Invariant::Rob: return "rob";
      case Invariant::Bypass: return "bypass";
      default:
        CSIM_PANIC("invariantName: bad invariant");
    }
}

void
VerifyReport::record(Invariant inv, std::string detail)
{
    ++byClass[static_cast<std::size_t>(inv)];
    if (firstDetail.empty())
        firstDetail = std::move(detail);
}

namespace {

std::string
cyc(Cycle c)
{
    return c == invalidCycle ? std::string("<unset>")
                             : std::to_string(c);
}

/** "inst 42: " prefix every violation message starts with. */
std::string
instPrefix(InstId id)
{
    return "inst " + std::to_string(id) + ": ";
}

} // anonymous namespace

PipelineChecker::PipelineChecker(const MachineConfig &config,
                                 const Trace &trace,
                                 PipelineCheckerOptions options)
    : config_(config), trace_(trace), options_(options)
{
    clusters_.resize(config_.numClusters);
}

void
PipelineChecker::violation(Invariant inv, std::string detail)
{
    detail = std::string("pipeline invariant [") + invariantName(inv) +
        "] violated: " + detail;
    if (statViolations_) {
        ++*statViolations_;
        ++*statByClass_[static_cast<std::size_t>(inv)];
    }
    if (options_.panicOnViolation)
        CSIM_PANIC_F("%s", detail.c_str());
    report_.record(inv, std::move(detail));
}

void
PipelineChecker::registerStats(StatsRegistry &registry)
{
    statCheckedInsts_ = &registry.addCounter(
        "verify.checkedInstructions",
        "instructions validated by the pipeline checker");
    statCheckedCycles_ = &registry.addCounter(
        "verify.checkedCycles",
        "cycles validated by the pipeline checker");
    statViolations_ = &registry.addCounter(
        "verify.violations", "total pipeline invariant violations");
    for (std::size_t i = 0; i < numInvariants; ++i)
        statByClass_[i] = &registry.addCounter(
            std::string("verify.violation.") +
                invariantName(static_cast<Invariant>(i)),
            std::string("violations of the ") +
                invariantName(static_cast<Invariant>(i)) +
                " invariant family");
}

void
PipelineChecker::onRunStart(const CoreView &view)
{
    (void)view;
    nextSteer_ = 0;
    nextCommit_ = 0;
    lastDispatch_ = 0;
    lastCommit_ = 0;
    inFlight_ = 0;
    steersThisCycle_ = 0;
    commitsThisCycle_ = 0;
    clusters_.assign(config_.numClusters, ClusterState{});
}

void
PipelineChecker::onSteer(const CoreView &view, InstId id)
{
    const InstTiming &t = view.timingOf(id);

    if (id != nextSteer_)
        violation(Invariant::Order,
                  instPrefix(id) + "steered out of program order "
                  "(expected inst " + std::to_string(nextSteer_) + ")");
    nextSteer_ = id + 1;

    if (t.dispatch != view.now())
        violation(Invariant::Monotone,
                  instPrefix(id) + "dispatch stamp " + cyc(t.dispatch) +
                  " != steer cycle " + std::to_string(view.now()));
    if (t.fetch == invalidCycle ||
        t.dispatch == invalidCycle ||
        t.dispatch < t.fetch + config_.frontendDepth)
        violation(Invariant::Monotone,
                  instPrefix(id) + "dispatch " + cyc(t.dispatch) +
                  " precedes fetch " + cyc(t.fetch) + " + frontend depth " +
                  std::to_string(config_.frontendDepth));
    if (t.dispatch != invalidCycle && t.dispatch < lastDispatch_)
        violation(Invariant::Order,
                  instPrefix(id) + "dispatch " + cyc(t.dispatch) +
                  " earlier than an older instruction's (" +
                  std::to_string(lastDispatch_) + ")");
    if (t.dispatch != invalidCycle)
        lastDispatch_ = t.dispatch;

    if (++steersThisCycle_ > config_.dispatchWidth)
        violation(Invariant::Width,
                  instPrefix(id) + std::to_string(steersThisCycle_) +
                  " steers in one cycle exceed dispatch width " +
                  std::to_string(config_.dispatchWidth));

    if (t.cluster >= config_.numClusters) {
        violation(Invariant::Occupancy,
                  instPrefix(id) + "cluster " +
                  std::to_string(t.cluster) + " out of range");
        return;
    }
    ClusterState &cs = clusters_[t.cluster];
    ++cs.entered;
    if (cs.entered - cs.exited > config_.windowPerCluster)
        violation(Invariant::Occupancy,
                  instPrefix(id) + "cluster " +
                  std::to_string(t.cluster) + " window holds " +
                  std::to_string(cs.entered - cs.exited) +
                  " instructions, capacity " +
                  std::to_string(config_.windowPerCluster));

    if (++inFlight_ > config_.robEntries)
        violation(Invariant::Rob,
                  instPrefix(id) + std::to_string(inFlight_) +
                  " in-flight instructions exceed ROB capacity " +
                  std::to_string(config_.robEntries));
}

void
PipelineChecker::checkOperands(const CoreView &view, InstId id,
                               bool at_commit)
{
    (void)at_commit;
    const TraceRecord &rec = trace_[id];
    const InstTiming &t = view.timingOf(id);
    for (int slot = 0; slot < numSrcSlots; ++slot) {
        const InstId p = rec.prod[slot];
        if (p == invalidInstId)
            continue;
        const InstTiming &pt = view.timingOf(p);
        if (pt.complete == invalidCycle) {
            violation(Invariant::Bypass,
                      instPrefix(id) + "issued before producer " +
                      std::to_string(p) + " (operand " +
                      std::to_string(slot) + ") was scheduled");
            continue;
        }
        const bool cross =
            slot != srcSlotMem && pt.cluster != t.cluster;
        const Cycle avail =
            pt.complete + (cross ? config_.fwdLatency : 0);
        if (t.ready == invalidCycle || t.ready < avail ||
            t.issue < avail)
            violation(Invariant::Bypass,
                      instPrefix(id) + "ready " + cyc(t.ready) +
                      "/issue " + cyc(t.issue) +
                      " precede operand " + std::to_string(slot) +
                      " availability " + std::to_string(avail) +
                      " (producer " + std::to_string(p) +
                      " completes " + cyc(pt.complete) +
                      (cross ? ", + cross-cluster forwarding)" : ")"));
    }
}

void
PipelineChecker::onIssue(const CoreView &view, InstId id)
{
    const TraceRecord &rec = trace_[id];
    const InstTiming &t = view.timingOf(id);

    if (t.issue != view.now())
        violation(Invariant::Monotone,
                  instPrefix(id) + "issue stamp " + cyc(t.issue) +
                  " != issue cycle " + std::to_string(view.now()));
    if (t.ready == invalidCycle || t.issue < t.ready)
        violation(Invariant::Monotone,
                  instPrefix(id) + "issue " + cyc(t.issue) +
                  " precedes ready " + cyc(t.ready));
    if (t.ready != invalidCycle && t.dispatch != invalidCycle &&
        t.ready < t.dispatch + 1)
        violation(Invariant::Monotone,
                  instPrefix(id) + "ready " + cyc(t.ready) +
                  " precedes dispatch " + cyc(t.dispatch) + " + 1");
    if (t.complete != t.issue + rec.execLat)
        violation(Invariant::Monotone,
                  instPrefix(id) + "complete " + cyc(t.complete) +
                  " != issue " + cyc(t.issue) + " + latency " +
                  std::to_string(rec.execLat));

    checkOperands(view, id, false);

    if (t.cluster >= config_.numClusters)
        return; // already flagged at steer
    ClusterState &cs = clusters_[t.cluster];
    ++cs.exited;
    if (cs.exited > cs.entered)
        violation(Invariant::Occupancy,
                  instPrefix(id) + "cluster " +
                  std::to_string(t.cluster) +
                  " issued more instructions than were steered in");

    ++cs.total;
    if (isIntClass(rec.cls))
        ++cs.intU;
    else if (isFpClass(rec.cls))
        ++cs.fpU;
    else
        ++cs.memU;
    if (cs.total > config_.cluster.issueWidth)
        violation(Invariant::Width,
                  instPrefix(id) + "cluster " +
                  std::to_string(t.cluster) + " issued " +
                  std::to_string(cs.total) +
                  " instructions in one cycle, width " +
                  std::to_string(config_.cluster.issueWidth));
    if (cs.intU > config_.cluster.intPorts ||
        cs.fpU > config_.cluster.fpPorts ||
        cs.memU > config_.cluster.memPorts)
        violation(Invariant::Width,
                  instPrefix(id) + "cluster " +
                  std::to_string(t.cluster) +
                  " exceeded a port-class bound (int " +
                  std::to_string(cs.intU) + "/" +
                  std::to_string(config_.cluster.intPorts) + ", fp " +
                  std::to_string(cs.fpU) + "/" +
                  std::to_string(config_.cluster.fpPorts) + ", mem " +
                  std::to_string(cs.memU) + "/" +
                  std::to_string(config_.cluster.memPorts) + ")");
}

void
PipelineChecker::onCommit(const CoreView &view, InstId id)
{
    const InstTiming &t = view.timingOf(id);

    if (id != nextCommit_)
        violation(Invariant::Order,
                  instPrefix(id) + "committed out of program order "
                  "(expected inst " + std::to_string(nextCommit_) +
                  ")");
    nextCommit_ = id + 1;

    if (t.commit != view.now())
        violation(Invariant::Monotone,
                  instPrefix(id) + "commit stamp " + cyc(t.commit) +
                  " != commit cycle " + std::to_string(view.now()));
    if (t.commit != invalidCycle && t.commit < lastCommit_)
        violation(Invariant::Order,
                  instPrefix(id) + "commit " + cyc(t.commit) +
                  " earlier than an older instruction's (" +
                  std::to_string(lastCommit_) + ")");
    if (t.commit != invalidCycle)
        lastCommit_ = t.commit;

    // Full monotone chain, every stamp final.
    if (t.fetch == invalidCycle || t.dispatch == invalidCycle ||
        t.ready == invalidCycle || t.issue == invalidCycle ||
        t.complete == invalidCycle || t.commit == invalidCycle)
        violation(Invariant::Monotone,
                  instPrefix(id) + "committed with an unset stage "
                  "timestamp (fetch " + cyc(t.fetch) + ", dispatch " +
                  cyc(t.dispatch) + ", ready " + cyc(t.ready) +
                  ", issue " + cyc(t.issue) + ", complete " +
                  cyc(t.complete) + ", commit " + cyc(t.commit) + ")");
    else if (!(t.fetch <= t.dispatch && t.dispatch < t.ready &&
               t.ready <= t.issue && t.issue < t.complete &&
               t.complete < t.commit))
        violation(Invariant::Monotone,
                  instPrefix(id) + "stage timestamps not monotone "
                  "(fetch " + cyc(t.fetch) + " <= dispatch " +
                  cyc(t.dispatch) + " < ready " + cyc(t.ready) +
                  " <= issue " + cyc(t.issue) + " < complete " +
                  cyc(t.complete) + " < commit " + cyc(t.commit) +
                  ")");

    if (++commitsThisCycle_ > config_.commitWidth)
        violation(Invariant::Width,
                  instPrefix(id) + std::to_string(commitsThisCycle_) +
                  " commits in one cycle exceed commit width " +
                  std::to_string(config_.commitWidth));

    if (inFlight_ == 0)
        violation(Invariant::Rob,
                  instPrefix(id) + "committed with an empty ROB");
    else
        --inFlight_;

    ++report_.checkedInstructions;
    if (statCheckedInsts_)
        ++*statCheckedInsts_;
}

void
PipelineChecker::onCycleEnd(const CoreView &view)
{
    for (ClusterId c = 0; c < config_.numClusters; ++c) {
        ClusterState &cs = clusters_[c];
        const std::uint64_t balance = cs.entered - cs.exited;
        if (balance != view.windowOccupancy(c))
            violation(Invariant::Occupancy,
                      "cycle " + std::to_string(view.now()) +
                      ": cluster " + std::to_string(c) +
                      " occupancy " +
                      std::to_string(view.windowOccupancy(c)) +
                      " disagrees with enter/exit balance " +
                      std::to_string(balance));
        cs.total = cs.intU = cs.fpU = cs.memU = 0;
    }
    steersThisCycle_ = 0;
    commitsThisCycle_ = 0;
    ++report_.checkedCycles;
    if (statCheckedCycles_)
        ++*statCheckedCycles_;
}

VerifyReport
auditTiming(const Trace &trace, const std::vector<InstTiming> &timing,
            const MachineConfig &config)
{
    VerifyReport report;
    const std::size_t n = trace.size();
    if (timing.size() != n) {
        report.record(Invariant::Order,
                      "timing has " + std::to_string(timing.size()) +
                      " records for a trace of " + std::to_string(n));
        return report;
    }

    struct PortUse
    {
        unsigned total = 0;
        unsigned intU = 0;
        unsigned fpU = 0;
        unsigned memU = 0;
    };
    std::map<std::pair<ClusterId, Cycle>, PortUse> ports;
    std::map<Cycle, unsigned> commits_per, dispatches_per;
    /** cycle -> (window enters, window exits) per cluster. */
    std::vector<std::map<Cycle, std::pair<std::uint64_t,
                                          std::uint64_t>>>
        win_events(config.numClusters);
    /** cycle -> (dispatches, commits) for the ROB walk. */
    std::map<Cycle, std::pair<std::uint64_t, std::uint64_t>>
        rob_events;

    Cycle prev_dispatch = 0;
    Cycle prev_commit = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &rec = trace[i];
        const InstTiming &t = timing[i];
        const std::string at = instPrefix(i);

        if (t.fetch == invalidCycle || t.dispatch == invalidCycle ||
            t.ready == invalidCycle || t.issue == invalidCycle ||
            t.complete == invalidCycle || t.commit == invalidCycle) {
            report.record(Invariant::Monotone,
                          at + "unset stage timestamp (fetch " +
                          cyc(t.fetch) + ", dispatch " +
                          cyc(t.dispatch) + ", ready " + cyc(t.ready) +
                          ", issue " + cyc(t.issue) + ", complete " +
                          cyc(t.complete) + ", commit " +
                          cyc(t.commit) + ")");
            continue;
        }
        if (t.cluster >= config.numClusters) {
            report.record(Invariant::Occupancy,
                          at + "cluster " + std::to_string(t.cluster) +
                          " out of range");
            continue;
        }

        if (t.dispatch < t.fetch + config.frontendDepth)
            report.record(Invariant::Monotone,
                          at + "dispatch " + cyc(t.dispatch) +
                          " precedes fetch " + cyc(t.fetch) +
                          " + frontend depth " +
                          std::to_string(config.frontendDepth));
        if (t.ready < t.dispatch + 1)
            report.record(Invariant::Monotone,
                          at + "ready " + cyc(t.ready) +
                          " precedes dispatch " + cyc(t.dispatch) +
                          " + 1");
        if (t.issue < t.ready)
            report.record(Invariant::Monotone,
                          at + "issue " + cyc(t.issue) +
                          " precedes ready " + cyc(t.ready));
        if (t.complete != t.issue + rec.execLat)
            report.record(Invariant::Monotone,
                          at + "complete " + cyc(t.complete) +
                          " != issue " + cyc(t.issue) + " + latency " +
                          std::to_string(rec.execLat));
        if (t.commit <= t.complete)
            report.record(Invariant::Monotone,
                          at + "commit " + cyc(t.commit) +
                          " does not follow complete " +
                          cyc(t.complete));

        if (t.dispatch < prev_dispatch)
            report.record(Invariant::Order,
                          at + "dispatch " + cyc(t.dispatch) +
                          " earlier than an older instruction's (" +
                          std::to_string(prev_dispatch) + ")");
        prev_dispatch = t.dispatch;
        if (t.commit < prev_commit)
            report.record(Invariant::Order,
                          at + "commit " + cyc(t.commit) +
                          " earlier than an older instruction's (" +
                          std::to_string(prev_commit) + ")");
        prev_commit = t.commit;

        ++dispatches_per[t.dispatch];
        ++commits_per[t.commit];

        PortUse &u = ports[{t.cluster, t.issue}];
        ++u.total;
        if (isIntClass(rec.cls))
            ++u.intU;
        else if (isFpClass(rec.cls))
            ++u.fpU;
        else
            ++u.memU;

        auto &we = win_events[t.cluster];
        ++we[t.dispatch].first;
        ++we[t.issue].second;
        ++rob_events[t.dispatch].first;
        ++rob_events[t.commit].second;

        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = rec.prod[slot];
            if (p == invalidInstId)
                continue;
            const InstTiming &pt = timing[p];
            if (pt.complete == invalidCycle)
                continue; // producer already flagged
            const bool cross =
                slot != srcSlotMem && pt.cluster != t.cluster;
            const Cycle avail =
                pt.complete + (cross ? config.fwdLatency : 0);
            if (t.ready < avail || t.issue < avail)
                report.record(Invariant::Bypass,
                              at + "ready " + cyc(t.ready) +
                              "/issue " + cyc(t.issue) +
                              " precede operand " +
                              std::to_string(slot) +
                              " availability " + std::to_string(avail) +
                              " (producer " + std::to_string(p) +
                              " completes " + cyc(pt.complete) +
                              (cross ? ", + cross-cluster forwarding)"
                                     : ")"));
        }
        ++report.checkedInstructions;
    }

    for (const auto &[key, u] : ports) {
        const std::string at = "cluster " +
            std::to_string(key.first) + " cycle " +
            std::to_string(key.second) + ": ";
        if (u.total > config.cluster.issueWidth)
            report.record(Invariant::Width,
                          at + std::to_string(u.total) +
                          " issues exceed width " +
                          std::to_string(config.cluster.issueWidth));
        if (u.intU > config.cluster.intPorts ||
            u.fpU > config.cluster.fpPorts ||
            u.memU > config.cluster.memPorts)
            report.record(Invariant::Width,
                          at + "port-class bound exceeded (int " +
                          std::to_string(u.intU) + "/" +
                          std::to_string(config.cluster.intPorts) +
                          ", fp " + std::to_string(u.fpU) + "/" +
                          std::to_string(config.cluster.fpPorts) +
                          ", mem " + std::to_string(u.memU) + "/" +
                          std::to_string(config.cluster.memPorts) +
                          ")");
    }
    for (const auto &[cycle, cnt] : commits_per)
        if (cnt > config.commitWidth)
            report.record(Invariant::Width,
                          "cycle " + std::to_string(cycle) + ": " +
                          std::to_string(cnt) +
                          " commits exceed commit width " +
                          std::to_string(config.commitWidth));
    for (const auto &[cycle, cnt] : dispatches_per)
        if (cnt > config.dispatchWidth)
            report.record(Invariant::Width,
                          "cycle " + std::to_string(cycle) + ": " +
                          std::to_string(cnt) +
                          " dispatches exceed dispatch width " +
                          std::to_string(config.dispatchWidth));

    // Window occupancy walk. Within a cycle the machine issues
    // (window exits) before it steers (window enters), so exits apply
    // first at equal cycles.
    for (ClusterId c = 0; c < config.numClusters; ++c) {
        std::int64_t occ = 0;
        for (const auto &[cycle, ev] : win_events[c]) {
            occ -= static_cast<std::int64_t>(ev.second);
            if (occ < 0) {
                report.record(Invariant::Occupancy,
                              "cluster " + std::to_string(c) +
                              " cycle " + std::to_string(cycle) +
                              ": more window exits than entries");
                occ = 0;
            }
            occ += static_cast<std::int64_t>(ev.first);
            if (occ > static_cast<std::int64_t>(
                          config.windowPerCluster))
                report.record(Invariant::Occupancy,
                              "cluster " + std::to_string(c) +
                              " cycle " + std::to_string(cycle) +
                              ": window holds " + std::to_string(occ) +
                              " instructions, capacity " +
                              std::to_string(config.windowPerCluster));
        }
    }

    // ROB walk. Commit frees its entry before the same cycle's steer
    // stage runs, so commits apply first at equal cycles.
    std::int64_t in_flight = 0;
    for (const auto &[cycle, ev] : rob_events) {
        in_flight -= static_cast<std::int64_t>(ev.second);
        if (in_flight < 0) {
            report.record(Invariant::Rob,
                          "cycle " + std::to_string(cycle) +
                          ": more commits than dispatches");
            in_flight = 0;
        }
        in_flight += static_cast<std::int64_t>(ev.first);
        if (in_flight > static_cast<std::int64_t>(config.robEntries))
            report.record(Invariant::Rob,
                          "cycle " + std::to_string(cycle) + ": " +
                          std::to_string(in_flight) +
                          " in-flight instructions exceed ROB "
                          "capacity " +
                          std::to_string(config.robEntries));
    }

    return report;
}

} // namespace csim
