#include "verify/random_trace.hh"

#include <vector>

#include "common/logging.hh"
#include "isa/opcode.hh"

namespace csim {

MachineConfig
randomMachineConfig(Rng &rng)
{
    MachineConfig config;
    // Favour the paper's cluster counts but visit every legal one.
    static const unsigned cluster_counts[] = {1, 2, 3, 4, 6, 8, 16};
    config.numClusters = cluster_counts[rng.below(7)];
    config.cluster.issueWidth =
        1 + static_cast<unsigned>(rng.below(4));
    config.cluster.intPorts =
        1 + static_cast<unsigned>(rng.below(config.cluster.issueWidth));
    config.cluster.fpPorts =
        1 + static_cast<unsigned>(rng.below(config.cluster.issueWidth));
    config.cluster.memPorts =
        1 + static_cast<unsigned>(rng.below(config.cluster.issueWidth));
    config.windowPerCluster =
        1 + static_cast<unsigned>(rng.below(32));
    config.robEntries = 8 + static_cast<unsigned>(rng.below(249));
    config.fetchWidth = 1 + static_cast<unsigned>(rng.below(8));
    config.dispatchWidth = 1 + static_cast<unsigned>(rng.below(8));
    config.commitWidth = 1 + static_cast<unsigned>(rng.below(8));
    config.frontendDepth = 1 + static_cast<unsigned>(rng.below(13));
    config.fwdLatency = static_cast<unsigned>(rng.below(5));
    config.fetchStopAtTaken = rng.chance(1, 2);
    CSIM_ASSERT(config.validationError().empty());
    return config;
}

Trace
randomTrace(Rng &rng, std::uint64_t instructions)
{
    // Weighted opcode mix: int-heavy with real shares of memory,
    // floating point and control, like the synthetic workloads.
    struct Pick
    {
        Opcode op;
        unsigned weight;
    };
    static const Pick mix[] = {
        {Opcode::Add, 22}, {Opcode::Addi, 10}, {Opcode::Xor, 6},
        {Opcode::Cmplt, 4}, {Opcode::Mul, 4},  {Opcode::Ld, 18},
        {Opcode::St, 8},   {Opcode::Fadd, 8},  {Opcode::Fmul, 4},
        {Opcode::Fdiv, 2}, {Opcode::Beq, 6},   {Opcode::Bne, 5},
        {Opcode::Jmp, 3},
    };
    unsigned total_weight = 0;
    for (const Pick &p : mix)
        total_weight += p.weight;

    Trace trace;
    std::vector<InstId> recent_stores;
    for (std::uint64_t i = 0; i < instructions; ++i) {
        std::uint64_t roll = rng.below(total_weight);
        Opcode op = mix[0].op;
        for (const Pick &p : mix) {
            if (roll < p.weight) {
                op = p.op;
                break;
            }
            roll -= p.weight;
        }

        TraceRecord rec;
        rec.pc = 0x1000 + i * 4;
        rec.op = op;
        rec.cls = opClass(op);
        rec.execLat = static_cast<std::uint8_t>(opLatency(op));
        rec.isBranch = isBranch(op);
        rec.isCondBranch = isCondBranch(op);
        if (rec.isCondBranch) {
            rec.taken = rng.chance(2, 5);
            rec.mispredicted = rng.chance(1, 12);
        } else if (rec.isBranch) {
            rec.taken = true;
        }
        if (rec.isLoad() && rng.chance(1, 10)) {
            rec.l1Miss = true;
            rec.execLat = static_cast<std::uint8_t>(
                8 + rng.below(32));
        }

        const bool fp = isFpClass(rec.cls);
        rec.dest = static_cast<RegIndex>(
            fp ? numIntRegs + rng.below(numFpRegs)
               : rng.below(zeroReg));
        rec.src1 = static_cast<RegIndex>(rng.below(numIntRegs));
        rec.src2 = static_cast<RegIndex>(rng.below(numIntRegs));
        rec.memAddr = isMem(op) ? 0x8000 + rng.below(64) * 8 : 0;

        // Register operands wired straight to random recent
        // producers: dependence chains dense enough to exercise the
        // bypass, shallow enough to leave parallelism.
        if (i > 0) {
            for (int slot = 0; slot < 2; ++slot) {
                if (!rng.chance(3, 5))
                    continue;
                const std::uint64_t back =
                    1 + rng.below(std::min<std::uint64_t>(i, 24));
                rec.prod[slot] = i - back;
            }
        }
        if (rec.isLoad() && !recent_stores.empty() &&
            rng.chance(3, 10))
            rec.prod[srcSlotMem] =
                recent_stores[recent_stores.size() - 1 -
                              rng.below(std::min<std::uint64_t>(
                                  recent_stores.size(), 8))];
        if (rec.isStore())
            recent_stores.push_back(i);

        trace.append(rec);
    }
    CSIM_ASSERT(trace.wellFormed());
    return trace;
}

} // namespace csim
