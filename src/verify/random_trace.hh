/**
 * @file
 * Seeded random machine geometries and synthetic traces for the
 * differential fuzzer.
 *
 * Both generators draw only from Rng, so a fuzz case is reproducible
 * from its 64-bit seed alone — the reproducer a failing run prints is
 * just the seed and the derived geometry. Generated traces always
 * satisfy Trace::wellFormed() and generated configs always pass
 * MachineConfig::validate(); the fuzzer's job is to stress the timing
 * model, not the input validators.
 */

#ifndef CSIM_VERIFY_RANDOM_TRACE_HH
#define CSIM_VERIFY_RANDOM_TRACE_HH

#include <cstdint>

#include "common/rng.hh"
#include "core/machine_config.hh"
#include "trace/trace.hh"

namespace csim {

/**
 * A random but valid machine geometry: 1..16 clusters of width 1..4,
 * nonzero ports of every class, small-to-paper-sized windows, ROB and
 * stage widths, and forwarding latency 0..4. Deliberately includes
 * degenerate shapes (1-entry windows, single-port clusters,
 * zero-latency forwarding) — those corners are where occupancy and
 * bypass bugs live.
 */
MachineConfig randomMachineConfig(Rng &rng);

/**
 * A random producer-linked trace of @p instructions records: a mix of
 * int/mul/fp/div ops, loads and stores (some linked store-to-load),
 * and branches (some annotated mispredicted), with register operands
 * wired to random recent producers. Latencies follow the opcode
 * model, with a slice of loads promoted to cache-miss latencies.
 */
Trace randomTrace(Rng &rng, std::uint64_t instructions);

} // namespace csim

#endif // CSIM_VERIFY_RANDOM_TRACE_HH
