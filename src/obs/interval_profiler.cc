#include "obs/interval_profiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csim {

const char *
cpiComponentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::Base:
        return "base";
      case CpiComponent::Window:
        return "window";
      case CpiComponent::SteerStall:
        return "steerStall";
      case CpiComponent::Bypass:
        return "bypass";
      case CpiComponent::Contention:
        return "contention";
      case CpiComponent::LoadImbalance:
        return "loadImbalance";
      case CpiComponent::Execute:
        return "execute";
      case CpiComponent::Memory:
        return "memory";
      case CpiComponent::Frontend:
        return "frontend";
      case CpiComponent::NumComponents:
        break;
    }
    CSIM_PANIC("cpiComponentName: bad component");
}

void
IntervalRecord::merge(const IntervalRecord &other)
{
    // Same nominal window across seeds; keep this record's start.
    cycles += other.cycles;
    for (std::size_t i = 0; i < numCpiComponents; ++i)
        components[i] += other.components[i];
    commits += other.commits;
    steers += other.steers;
    issued += other.issued;
    predictedCriticalSteers += other.predictedCriticalSteers;
    locLevelSum += other.locLevelSum;
    deniedIssue += other.deniedIssue;
    deniedCritical += other.deniedCritical;
    fetchStallCycles += other.fetchStallCycles;
    if (clusters.size() < other.clusters.size())
        clusters.resize(other.clusters.size());
    for (std::size_t c = 0; c < other.clusters.size(); ++c) {
        clusters[c].steered += other.clusters[c].steered;
        clusters[c].issued += other.clusters[c].issued;
        clusters[c].occupancySum += other.clusters[c].occupancySum;
    }
}

std::uint64_t
IntervalSeries::totalCycles() const
{
    std::uint64_t total = 0;
    for (const IntervalRecord &rec : records)
        total += rec.cycles;
    return total;
}

void
IntervalSeries::merge(const IntervalSeries &other)
{
    if (other.empty())
        return;
    if (empty()) {
        *this = other;
        return;
    }
    CSIM_ASSERT(intervalCycles == other.intervalCycles);
    CSIM_ASSERT(clusterIssueWidth == other.clusterIssueWidth);
    CSIM_ASSERT(windowPerCluster == other.windowPerCluster);
    mergeCount += other.mergeCount;
    const std::size_t common =
        std::min(records.size(), other.records.size());
    for (std::size_t i = 0; i < common; ++i)
        records[i].merge(other.records[i]);
    for (std::size_t i = common; i < other.records.size(); ++i)
        records.push_back(other.records[i]);
}

IntervalProfiler::IntervalProfiler(const MachineConfig &config,
                                   const Trace &trace,
                                   IntervalProfilerOptions options)
    : config_(config), trace_(trace), options_(options)
{
    CSIM_ASSERT(options_.intervalCycles >= 1);
    // A run over an empty trace returns before any observer hook
    // fires, so the geometry normally stamped by onRunStart must
    // already be in place: a series with intervalCycles == 0 trips
    // the merge asserts and zero-divides downstream normalizers.
    initSeriesGeometry();
}

void
IntervalProfiler::onRunStart(const CoreView &view)
{
    (void)view;
    series_ = IntervalSeries{};
    initSeriesGeometry();
    cur_ = IntervalRecord{};
    cur_.clusters.resize(config_.numClusters);
    nextCommit_ = 0;
    cycClusterIssued_.assign(config_.numClusters, 0);
    cycClusterDenied_.assign(config_.numClusters, 0);
    resetCycleState();
}

void
IntervalProfiler::onSteer(const CoreView &view, InstId id)
{
    const InstTiming &t = view.timingOf(id);
    ++cur_.steers;
    cur_.locLevelSum += t.locLevel;
    if (t.predictedCritical)
        ++cur_.predictedCriticalSteers;
    if (t.cluster < cur_.clusters.size())
        ++cur_.clusters[t.cluster].steered;
    if (statLocSpectrum_)
        statLocSpectrum_->add(static_cast<double>(t.locLevel));
}

void
IntervalProfiler::onIssue(const CoreView &view, InstId id)
{
    const InstTiming &t = view.timingOf(id);
    ++cur_.issued;
    ++cycIssued_;
    if (t.cluster < cur_.clusters.size()) {
        ++cur_.clusters[t.cluster].issued;
        ++cycClusterIssued_[t.cluster];
    }
}

void
IntervalProfiler::onIssueDenied(const CoreView &view, InstId id)
{
    const InstTiming &t = view.timingOf(id);
    ++cur_.deniedIssue;
    ++cycDenied_;
    if (t.cluster < cycClusterDenied_.size())
        ++cycClusterDenied_[t.cluster];
    if (t.predictedCritical) {
        ++cur_.deniedCritical;
        ++cycDeniedCritical_;
    }
}

void
IntervalProfiler::onCommit(const CoreView &view, InstId id)
{
    (void)view;
    // Commit is in-order, so the ROB head is always the next trace id.
    nextCommit_ = id + 1;
    ++cur_.commits;
}

void
IntervalProfiler::onSteerStall(const CoreView &view, SteerStallCause cause)
{
    (void)view;
    cycSteerStalled_ = true;
    cycSteerStallCause_ = cause;
}

void
IntervalProfiler::onFetchStall(const CoreView &view)
{
    (void)view;
    ++cur_.fetchStallCycles;
}

void
IntervalProfiler::onCycleEnd(const CoreView &view)
{
    const CpiComponent comp = classifyCycle(view);
    ++cur_.components[static_cast<std::size_t>(comp)];
    ++cur_.cycles;
    for (ClusterId c = 0; c < config_.numClusters; ++c)
        cur_.clusters[c].occupancySum += view.windowOccupancy(c);
    if (cur_.cycles >= options_.intervalCycles)
        closeInterval(view.now() + 1);
    resetCycleState();
}

void
IntervalProfiler::onRunEnd(const CoreView &view)
{
    (void)view;
    if (cur_.cycles > 0)
        closeInterval(0);
}

CpiComponent
IntervalProfiler::classifyCycle(const CoreView &view) const
{
    // Denied-issue beats issued: even on a cycle that issued work, a
    // predicted-critical denial (or a denial with idle width elsewhere)
    // is the loss the paper's Figs. 5-6 attribute clustering to.
    if (cycDeniedCritical_ > 0)
        return CpiComponent::Contention;
    if (cycDenied_ > 0) {
        for (ClusterId c = 0; c < config_.numClusters; ++c) {
            if (cycClusterDenied_[c] == 0 &&
                cycClusterIssued_[c] < config_.cluster.issueWidth) {
                return CpiComponent::LoadImbalance;
            }
        }
    }
    if (cycIssued_ > 0)
        return CpiComponent::Base;

    // Zero-issue cycle. Structural back-pressure first.
    if (cycSteerStalled_) {
        return cycSteerStallCause_ == SteerStallCause::PolicyStall ?
            CpiComponent::SteerStall : CpiComponent::Window;
    }

    // Otherwise attribute by what the oldest uncommitted instruction
    // (the ROB head — the one every other in-flight op waits behind)
    // is blocked on.
    const InstId head = nextCommit_;
    if (head >= trace_.size())
        return CpiComponent::Base;
    const InstTiming &ht = view.timingOf(head);
    if (ht.dispatch == invalidCycle)
        return CpiComponent::Frontend;

    const Cycle now = view.now();
    if (ht.issue == invalidCycle) {
        // Waiting on operands: scan producers, worst blocker wins
        // (memory > bypass-in-flight > execution latency).
        bool saw_memory = false;
        bool saw_bypass = false;
        const TraceRecord &rec = trace_[head];
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = rec.prod[static_cast<std::size_t>(slot)];
            if (p == invalidInstId)
                continue;
            const InstTiming &pt = view.timingOf(p);
            if (pt.complete == invalidCycle || pt.complete > now) {
                const TraceRecord &prec = trace_[p];
                if (prec.isLoad() && prec.l1Miss)
                    saw_memory = true;
            } else if (slot != srcSlotMem &&
                       pt.cluster != ht.cluster &&
                       pt.complete + config_.fwdLatency > now) {
                // Result produced but still crossing clusters.
                saw_bypass = true;
            }
        }
        if (saw_memory)
            return CpiComponent::Memory;
        if (saw_bypass)
            return CpiComponent::Bypass;
        return CpiComponent::Execute;
    }
    if (ht.complete == invalidCycle || ht.complete > now) {
        const TraceRecord &rec = trace_[head];
        return rec.isLoad() && rec.l1Miss ? CpiComponent::Memory :
            CpiComponent::Execute;
    }
    // Issued and complete, awaiting commit bandwidth.
    return CpiComponent::Base;
}

void
IntervalProfiler::closeInterval(Cycle next_start)
{
    CSIM_ASSERT(cur_.componentSum() == cur_.cycles);
    if (statIntervals_)
        ++*statIntervals_;
    for (std::size_t i = 0; i < numCpiComponents; ++i) {
        if (statComponents_[i])
            *statComponents_[i] += cur_.components[i];
    }
    if (statPredCritSteers_)
        *statPredCritSteers_ += cur_.predictedCriticalSteers;
    if (statDenied_)
        *statDenied_ += cur_.deniedIssue;
    if (statDeniedCritical_)
        *statDeniedCritical_ += cur_.deniedCritical;
    series_.records.push_back(std::move(cur_));
    cur_ = IntervalRecord{};
    cur_.startCycle = next_start;
    cur_.clusters.resize(config_.numClusters);
}

void
IntervalProfiler::resetCycleState()
{
    cycIssued_ = 0;
    cycDenied_ = 0;
    cycDeniedCritical_ = 0;
    cycSteerStalled_ = false;
    cycSteerStallCause_ = SteerStallCause::RobFull;
    std::fill(cycClusterIssued_.begin(), cycClusterIssued_.end(), 0u);
    std::fill(cycClusterDenied_.begin(), cycClusterDenied_.end(), 0u);
}

IntervalSeries
IntervalProfiler::takeSeries()
{
    IntervalSeries out = std::move(series_);
    series_ = IntervalSeries{};
    initSeriesGeometry();
    return out;
}

void
IntervalProfiler::initSeriesGeometry()
{
    series_.intervalCycles = options_.intervalCycles;
    series_.clusterIssueWidth = config_.cluster.issueWidth;
    series_.windowPerCluster = config_.windowPerCluster;
}

void
IntervalProfiler::registerStats(StatsRegistry &registry)
{
    statIntervals_ = &registry.addCounter(
        "profiler.intervals", "profiling intervals closed");
    for (std::size_t i = 0; i < numCpiComponents; ++i) {
        const CpiComponent c = static_cast<CpiComponent>(i);
        statComponents_[i] = &registry.addCounter(
            std::string("profiler.cycles.") + cpiComponentName(c),
            std::string("cycles attributed to ") + cpiComponentName(c));
    }
    statPredCritSteers_ = &registry.addCounter(
        "profiler.steers.predictedCritical",
        "steered instructions predicted critical");
    statDenied_ = &registry.addCounter(
        "profiler.issue.denied",
        "ready instructions denied issue (per cycle events)");
    statDeniedCritical_ = &registry.addCounter(
        "profiler.issue.deniedCritical",
        "predicted-critical instructions denied issue");
    statLocSpectrum_ = &registry.addDistribution(
        "profiler.loc.spectrum", 16, 0.0, 16.0,
        "steer-time LoC predictor level spectrum");
}

} // namespace csim
