#include "obs/stats_registry.hh"

#include "common/logging.hh"

namespace csim {

namespace {

/** Dotted lowerCamel names: segments of [A-Za-z0-9_-], '.'-separated. */
bool
validStatName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool prev_dot = false;
    for (char c : name) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// StatsSnapshot

void
StatsSnapshot::add(const std::string &name, StatValue v)
{
    if (index_.count(name))
        CSIM_PANIC_F("StatsSnapshot: duplicate stat '%s'", name.c_str());
    index_.emplace(name, entries_.size());
    entries_.emplace_back(name, std::move(v));
}

bool
StatsSnapshot::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

const StatValue &
StatsSnapshot::at(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        CSIM_PANIC_F("StatsSnapshot: unknown stat '%s'", name.c_str());
    return entries_[it->second].second;
}

double
StatsSnapshot::value(const std::string &name) const
{
    return at(name).value;
}

void
StatsSnapshot::merge(const StatsSnapshot &other)
{
    for (const auto &[name, theirs] : other.entries()) {
        auto it = index_.find(name);
        if (it == index_.end()) {
            add(name, theirs);
            continue;
        }
        StatValue &mine = entries_[it->second].second;
        if (mine.kind != theirs.kind)
            CSIM_PANIC_F("StatsSnapshot: stat '%s' merged with "
                         "mismatched kind", name.c_str());
        switch (mine.kind) {
          case StatKind::Counter:
            mine.value += theirs.value;
            break;
          case StatKind::Distribution: {
            if (mine.buckets.size() != theirs.buckets.size() ||
                mine.lo != theirs.lo || mine.hi != theirs.hi)
                CSIM_PANIC_F("StatsSnapshot: distribution '%s' merged "
                             "with mismatched geometry", name.c_str());
            for (std::size_t i = 0; i < mine.buckets.size(); ++i)
                mine.buckets[i] += theirs.buckets[i];
            mine.value += theirs.value;  // total sample count
            break;
          }
          case StatKind::Formula: {
            // Running mean across the merged snapshots: a ratio like
            // CPI cannot be summed, so report the per-run average.
            const double total = mine.value *
                    static_cast<double>(mine.mergeCount) +
                theirs.value * static_cast<double>(theirs.mergeCount);
            mine.value = total /
                static_cast<double>(mine.mergeCount + theirs.mergeCount);
            break;
          }
        }
        mine.mergeCount += theirs.mergeCount;
    }
}

StatsSnapshot
StatsSnapshot::filtered(const std::vector<std::string> &prefixes) const
{
    if (prefixes.empty())
        return *this;
    StatsSnapshot out;
    for (const auto &[name, val] : entries_) {
        for (const std::string &prefix : prefixes) {
            if (name.compare(0, prefix.size(), prefix) == 0) {
                out.add(name, val);
                break;
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// StatsRegistry

StatsRegistry::Entry &
StatsRegistry::newEntry(const std::string &name, const std::string &desc,
                        StatKind kind)
{
    if (!validStatName(name))
        CSIM_PANIC_F("StatsRegistry: malformed stat name '%s'",
                     name.c_str());
    if (index_.count(name))
        CSIM_PANIC_F("StatsRegistry: duplicate stat name '%s'",
                     name.c_str());
    index_.emplace(name, entries_.size());
    Entry &e = entries_.emplace_back();
    e.name = name;
    e.desc = desc;
    e.kind = kind;
    return e;
}

Counter &
StatsRegistry::addCounter(const std::string &name,
                          const std::string &desc)
{
    Entry &e = newEntry(name, desc, StatKind::Counter);
    e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Histogram &
StatsRegistry::addDistribution(const std::string &name, unsigned buckets,
                               double lo, double hi,
                               const std::string &desc)
{
    Entry &e = newEntry(name, desc, StatKind::Distribution);
    e.dist = std::make_unique<Histogram>(buckets, lo, hi);
    return *e.dist;
}

void
StatsRegistry::addFormula(const std::string &name,
                          std::function<double()> fn,
                          const std::string &desc)
{
    CSIM_ASSERT(fn != nullptr);
    Entry &e = newEntry(name, desc, StatKind::Formula);
    e.formula = std::move(fn);
}

bool
StatsRegistry::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

const std::string &
StatsRegistry::description(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        CSIM_PANIC_F("StatsRegistry: unknown stat '%s'", name.c_str());
    return entries_[it->second].desc;
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    for (const Entry &e : entries_) {
        StatValue v;
        v.kind = e.kind;
        switch (e.kind) {
          case StatKind::Counter:
            v.value = static_cast<double>(e.counter->value());
            break;
          case StatKind::Distribution: {
            v.value = static_cast<double>(e.dist->total());
            v.lo = e.dist->lo();
            v.hi = e.dist->hi();
            v.buckets.reserve(e.dist->size());
            for (std::size_t i = 0; i < e.dist->size(); ++i)
                v.buckets.push_back(e.dist->bucket(i));
            break;
          }
          case StatKind::Formula:
            v.value = e.formula();
            break;
        }
        snap.add(e.name, std::move(v));
    }
    return snap;
}

void
StatsRegistry::resetMeasurement()
{
    for (Entry &e : entries_) {
        switch (e.kind) {
          case StatKind::Counter:
            e.counter->set(0);
            break;
          case StatKind::Distribution:
            e.dist->reset();
            break;
          case StatKind::Formula:
            break;
        }
    }
}

} // namespace csim
