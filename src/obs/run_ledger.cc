#include "obs/run_ledger.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/fnv.hh"
#include "common/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_prof.hh"

namespace csim {

namespace {

/**
 * Minimal append-to-string JSON builder for ledger payloads. The
 * harness's JsonWriter lives above this library in the link order, and
 * ledger lines are flat enough that a few helpers beat a dependency
 * inversion. Rendering is canonical: fixed key order at each call
 * site, %.12g doubles (the JsonWriter convention), deterministic
 * escaping — so equal payload values imply equal payload bytes.
 */
void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendKey(std::string &out, const char *key)
{
    if (out.back() != '{' && out.back() != '[')
        out += ',';
    out += '"';
    out += key;
    out += "\":";
}

void
appendField(std::string &out, const char *key, const std::string &v)
{
    appendKey(out, key);
    appendEscaped(out, v);
}

void
appendField(std::string &out, const char *key, std::uint64_t v)
{
    appendKey(out, key);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

void
appendField(std::string &out, const char *key, double v)
{
    appendKey(out, key);
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out += buf;
}

void
appendField(std::string &out, const char *key, bool v)
{
    appendKey(out, key);
    out += v ? "true" : "false";
}

std::string
provenanceJson(const std::string &benchmark, const Provenance &prov)
{
    std::string p = "{";
    appendField(p, "benchmark", benchmark);
    appendField(p, "ledgerSchemaVersion",
                std::uint64_t{ledgerSchemaVersion});
    appendKey(p, "provenance");
    p += '{';
    appendField(p, "gitSha", prov.gitSha);
    appendField(p, "buildType", prov.buildType);
    appendField(p, "buildFlags", prov.buildFlags);
    appendField(p, "hostProf", prov.hostProf);
    appendField(p, "cmdline", prov.cmdline);
    appendKey(p, "env");
    p += '{';
    for (const auto &[name, value] : prov.env)
        appendField(p, name.c_str(), value);
    p += "}}}";
    return p;
}

} // anonymous namespace

Provenance
collectProvenance(const std::string &cmdline)
{
    Provenance prov;
#ifdef CSIM_GIT_SHA
    prov.gitSha = CSIM_GIT_SHA;
#else
    prov.gitSha = "unknown";
#endif
#ifdef CSIM_BUILD_TYPE
    prov.buildType = CSIM_BUILD_TYPE;
#else
    prov.buildType = "unknown";
#endif
#ifdef CSIM_BUILD_FLAGS
    prov.buildFlags = CSIM_BUILD_FLAGS;
#else
    prov.buildFlags = "";
#endif
    prov.hostProf = HostProf::compiledIn();
    prov.cmdline = cmdline;
    // The fixed list of environment knobs the simulator honors; an
    // unset variable is omitted (set-to-empty is a real override).
    for (const char *name :
         {"CSIM_HOST_PROF", "CSIM_LOG", "CSIM_STATS_FILTER",
          "CSIM_THREADS"}) {
        if (const char *value = std::getenv(name))
            prov.env.emplace_back(name, value);
    }
    return prov;
}

std::string
replayCommandLine(int argc, char **argv)
{
    std::string cmd;
    for (int i = 0; i < argc; ++i) {
        if (i > 0)
            cmd += ' ';
        const std::string arg = argv[i];
        const bool plain =
            !arg.empty() &&
            arg.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                "0123456789._,/=+:@%-") == std::string::npos;
        if (plain) {
            cmd += arg;
        } else {
            cmd += '\'';
            for (char c : arg) {
                if (c == '\'')
                    cmd += "'\\''";
                else
                    cmd += c;
            }
            cmd += '\'';
        }
    }
    return cmd;
}

std::string
statsDigest(const StatsSnapshot &snap)
{
    std::uint64_t h = fnv1aOffset;
    char buf[64];
    for (const auto &[name, value] : snap.entries()) {
        h = fnv1a64(name, h);
        std::snprintf(buf, sizeof(buf), "=%d:%.12g;",
                      static_cast<int>(value.kind), value.value);
        h = fnv1a64(buf, h);
        for (std::uint64_t b : value.buckets) {
            std::snprintf(buf, sizeof(buf), "%" PRIu64 ",", b);
            h = fnv1a64(buf, h);
        }
    }
    return fnvHex(h);
}

RunLedger::RunLedger(std::string path, std::string benchmark,
                     const Provenance &provenance)
    : path_(std::move(path)), benchmark_(std::move(benchmark)),
      out_(path_, std::ios::trunc),
      start_(std::chrono::steady_clock::now())
{
    if (!out_)
        CSIM_FATAL_F("%s: cannot open --ledger-out path '%s'",
                     benchmark_.c_str(), path_.c_str());
    event("head", provenanceJson(benchmark_, provenance));
}

RunLedger::~RunLedger()
{
    stopHeartbeat();
}

double
RunLedger::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
RunLedger::event(const char *kind, const std::string &payload_json,
                 const std::string &wall_json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string line = "{";
    appendField(line, "ledger", std::uint64_t{ledgerSchemaVersion});
    appendField(line, "seq", seq_++);
    appendField(line, "kind", std::string(kind));
    appendKey(line, "wall");
    // Every event is stamped with its wall offset; extra wall fields
    // (heartbeat samples, sweep wall times) splice in after it.
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "{\"tMs\":%.12g",
                      elapsedSeconds() * 1e3);
        line += buf;
        if (!wall_json.empty()) {
            CSIM_ASSERT(wall_json.front() == '{' &&
                        wall_json.back() == '}');
            if (wall_json.size() > 2) {
                line += ',';
                line.append(wall_json, 1, wall_json.size() - 2);
            }
        }
        line += '}';
    }
    appendKey(line, "payload");
    CSIM_ASSERT(!payload_json.empty() && payload_json.front() == '{');
    line += payload_json;
    line += '}';

    out_ << line << '\n';
    out_.flush();
    if (!out_)
        CSIM_FATAL_F("%s: failed writing ledger '%s'",
                     benchmark_.c_str(), path_.c_str());
    // The ledger line doubles as the flight-recorder breadcrumb: a
    // crash dump replays exactly what the ledger last saw.
    FlightRecorder::note(line.c_str());
}

void
RunLedger::sweepBegin(std::uint64_t sweep, std::uint64_t cells,
                      std::uint64_t jobs, unsigned threads)
{
    std::string p = "{";
    appendField(p, "sweep", sweep);
    appendField(p, "cells", cells);
    appendField(p, "jobs", jobs);
    p += '}';
    // Worker-thread count varies by invocation: wall side.
    std::string wall = "{";
    appendField(wall, "threads", std::uint64_t{threads});
    wall += '}';
    event("sweepBegin", p, wall);
}

void
RunLedger::jobBegin(std::uint64_t sweep, const std::string &cell,
                    std::uint64_t seed,
                    const std::string &config_digest)
{
    std::string p = "{";
    appendField(p, "sweep", sweep);
    appendField(p, "cell", cell);
    appendField(p, "seed", seed);
    appendField(p, "configDigest", config_digest);
    p += '}';
    event("jobBegin", p);
}

void
RunLedger::jobEnd(std::uint64_t sweep, const std::string &cell,
                  std::uint64_t seed, std::uint64_t instructions,
                  std::uint64_t cycles, const std::string &stats_digest)
{
    std::string p = "{";
    appendField(p, "sweep", sweep);
    appendField(p, "cell", cell);
    appendField(p, "seed", seed);
    appendField(p, "instructions", instructions);
    appendField(p, "cycles", cycles);
    appendField(p, "cpi",
                instructions ? static_cast<double>(cycles) /
                                   static_cast<double>(instructions)
                             : 0.0);
    appendField(p, "statsDigest", stats_digest);
    p += '}';
    event("jobEnd", p);
}

void
RunLedger::cellEnd(std::uint64_t sweep, const std::string &cell,
                   std::uint64_t seeds, std::uint64_t instructions,
                   std::uint64_t cycles,
                   const std::string &stats_digest)
{
    std::string p = "{";
    appendField(p, "sweep", sweep);
    appendField(p, "cell", cell);
    appendField(p, "seeds", seeds);
    appendField(p, "instructions", instructions);
    appendField(p, "cycles", cycles);
    appendField(p, "cpi",
                instructions ? static_cast<double>(cycles) /
                                   static_cast<double>(instructions)
                             : 0.0);
    appendField(p, "statsDigest", stats_digest);
    p += '}';
    event("cellEnd", p);
}

void
RunLedger::sweepEnd(std::uint64_t sweep, std::uint64_t cells,
                    std::uint64_t jobs, double wall_seconds)
{
    std::string p = "{";
    appendField(p, "sweep", sweep);
    appendField(p, "cells", cells);
    appendField(p, "jobs", jobs);
    p += '}';
    std::string wall = "{";
    appendField(wall, "wallSeconds", wall_seconds);
    wall += '}';
    event("sweepEnd", p, wall);
}

void
RunLedger::traceHashes(
    const std::vector<std::pair<std::string, std::string>> &hashes)
{
    std::string p = "{";
    appendKey(p, "traces");
    p += '[';
    for (const auto &[key, hash] : hashes) {
        if (p.back() != '[')
            p += ',';
        p += '{';
        appendField(p, "key", key);
        appendField(p, "hash", hash);
        p += '}';
    }
    p += "]}";
    event("traces", p);
}

void
RunLedger::benchEnd(std::uint64_t grids, std::uint64_t runs,
                    std::uint64_t scalars, double wall_seconds)
{
    std::string p = "{";
    appendField(p, "grids", grids);
    appendField(p, "runs", runs);
    appendField(p, "scalars", scalars);
    p += '}';
    std::string wall = "{";
    appendField(wall, "wallSeconds", wall_seconds);
    wall += '}';
    event("benchEnd", p, wall);
}

std::uint64_t
RunLedger::nextSweepIndex()
{
    return sweepCounter_.fetch_add(1, std::memory_order_relaxed);
}

void
RunLedger::emitHeartbeat()
{
    const double elapsed = elapsedSeconds();
    const std::uint64_t done =
        progress_.jobsDone.load(std::memory_order_relaxed);
    const std::uint64_t total =
        progress_.jobsTotal.load(std::memory_order_relaxed);
    const std::uint64_t instructions =
        progress_.instructionsDone.load(std::memory_order_relaxed);
    const double mips = elapsed > 0.0
        ? static_cast<double>(instructions) / elapsed / 1e6 : 0.0;
    // ETA extrapolates the mean job latency so far onto the backlog;
    // 0 until the first job lands (no basis) or once the sweep drains.
    const double eta = done > 0 && total > done
        ? elapsed / static_cast<double>(done) *
            static_cast<double>(total - done)
        : 0.0;
    const HostMemoryStats mem = sampleHostMemory();

    std::string wall = "{";
    appendField(wall, "jobsDone", done);
    appendField(wall, "jobsTotal", total);
    appendField(wall, "instructions", instructions);
    appendField(wall, "hostMips", mips);
    appendField(wall, "etaSeconds", eta);
    appendField(wall, "rssBytes", mem.currentRssBytes);
    wall += '}';
    event("heartbeat", "{}", wall);
}

void
RunLedger::startHeartbeat(unsigned period_ms)
{
    CSIM_ASSERT(period_ms > 0);
    stopHeartbeat();
    {
        std::lock_guard<std::mutex> lock(heartbeatMutex_);
        heartbeatStop_ = false;
    }
    heartbeat_ = std::thread([this, period_ms] {
        std::unique_lock<std::mutex> lock(heartbeatMutex_);
        for (;;) {
            if (heartbeatCv_.wait_for(
                    lock, std::chrono::milliseconds(period_ms),
                    [this] { return heartbeatStop_; }))
                return;
            lock.unlock();
            emitHeartbeat();
            lock.lock();
        }
    });
}

void
RunLedger::stopHeartbeat()
{
    {
        std::lock_guard<std::mutex> lock(heartbeatMutex_);
        heartbeatStop_ = true;
    }
    heartbeatCv_.notify_all();
    if (heartbeat_.joinable())
        heartbeat_.join();
}

} // namespace csim
