#include "obs/pipe_trace.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"

namespace csim {

PipeTracer::PipeTracer(std::ostream &out, PipeTraceOptions options)
    : out_(out), options_(options)
{
    CSIM_ASSERT(options_.startInst <= options_.endInst);
    CSIM_ASSERT(options_.startCycle <= options_.endCycle);
}

void
PipeTracer::onRetire(InstId id, const TraceRecord &rec,
                     const InstTiming &timing)
{
    if (id < options_.startInst || id >= options_.endInst)
        return;
    if (timing.fetch < options_.startCycle ||
        timing.fetch >= options_.endCycle)
        return;

    // A retired instruction must have a complete, ordered lifecycle;
    // anything else is a core bug the tracer refuses to paper over.
    CSIM_ASSERT(timing.fetch != invalidCycle);
    CSIM_ASSERT(timing.fetch <= timing.dispatch);
    CSIM_ASSERT(timing.dispatch <= timing.issue);
    CSIM_ASSERT(timing.issue <= timing.complete);
    CSIM_ASSERT(timing.complete < timing.commit);

    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "O3PipeView:fetch:%" PRIu64 ":0x%08" PRIx64 ":0:%" PRIu64
        ":%s c%u crit=%d loc=%u\n"
        "O3PipeView:decode:%" PRIu64 "\n"
        "O3PipeView:rename:%" PRIu64 "\n"
        "O3PipeView:dispatch:%" PRIu64 "\n"
        "O3PipeView:issue:%" PRIu64 "\n"
        "O3PipeView:complete:%" PRIu64 "\n"
        "O3PipeView:retire:%" PRIu64 ":store:0\n",
        timing.fetch, rec.pc, id,
        std::string(opName(rec.op)).c_str(),
        static_cast<unsigned>(timing.cluster),
        timing.predictedCritical ? 1 : 0,
        static_cast<unsigned>(timing.locLevel),
        timing.dispatch, timing.dispatch, timing.dispatch,
        timing.issue, timing.complete, timing.commit);
    out_ << buf;
    ++traced_;
}

void
writePipeTrace(std::ostream &out, const Trace &trace,
               const std::vector<InstTiming> &timing,
               PipeTraceOptions options)
{
    CSIM_ASSERT(timing.size() >= trace.size());
    PipeTracer tracer(out, options);
    for (InstId id = 0; id < trace.size(); ++id)
        tracer.onRetire(id, trace[id], timing[id]);
}

} // namespace csim
