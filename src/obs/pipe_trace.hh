/**
 * @file
 * Per-instruction pipeline event tracing in gem5's O3PipeView text
 * format, which Konata and the gem5 o3-pipeview script can render.
 *
 * Each retired instruction emits one record:
 *
 *   O3PipeView:fetch:<cycle>:0x<pc>:0:<seq>:<disasm> [annotations]
 *   O3PipeView:decode:<cycle>
 *   O3PipeView:rename:<cycle>
 *   O3PipeView:dispatch:<cycle>
 *   O3PipeView:issue:<cycle>
 *   O3PipeView:complete:<cycle>
 *   O3PipeView:retire:<cycle>:store:0
 *
 * decode/rename are folded onto the steer (dispatch) cycle: the model
 * has no distinct decode/rename stages, and viewers require the full
 * stage set. The disasm field carries the cluster assignment and the
 * criticality snapshot ("c2 crit=1 loc=13"), which is exactly the
 * microscope needed to debug steering-policy losses instruction by
 * instruction. A [startInst, endInst) window keeps full-program traces
 * cheap to sample; an additional [startCycle, endCycle) window gates
 * on the fetch timestamp, so a pipeline trace can be cut to the same
 * cycle region as an interval-profiler record.
 */

#ifndef CSIM_OBS_PIPE_TRACE_HH
#define CSIM_OBS_PIPE_TRACE_HH

#include <cstdint>
#include <limits>
#include <ostream>

#include "core/timing.hh"
#include "trace/trace.hh"

namespace csim {

struct PipeTraceOptions
{
    /** First dynamic instruction traced. */
    std::uint64_t startInst = 0;
    /** One past the last dynamic instruction traced. */
    std::uint64_t endInst = std::numeric_limits<std::uint64_t>::max();
    /** First fetch cycle traced (both windows must admit a record). */
    Cycle startCycle = 0;
    /** One past the last fetch cycle traced. */
    Cycle endCycle = std::numeric_limits<Cycle>::max();
};

/**
 * Streaming tracer the timing core drives at commit time, when every
 * timestamp of the retiring instruction is final.
 */
class PipeTracer
{
  public:
    explicit PipeTracer(std::ostream &out,
                        PipeTraceOptions options = PipeTraceOptions{});

    /** Emit the record for a retiring instruction (window-gated). */
    void onRetire(InstId id, const TraceRecord &rec,
                  const InstTiming &timing);

    /** Instructions actually emitted (inside the sampling window). */
    std::uint64_t traced() const { return traced_; }

  private:
    std::ostream &out_;
    PipeTraceOptions options_;
    std::uint64_t traced_ = 0;
};

/**
 * Post-hoc convenience: trace a finished run from its timing records
 * (identical output to an in-run PipeTracer).
 */
void writePipeTrace(std::ostream &out, const Trace &trace,
                    const std::vector<InstTiming> &timing,
                    PipeTraceOptions options = PipeTraceOptions{});

} // namespace csim

#endif // CSIM_OBS_PIPE_TRACE_HH
