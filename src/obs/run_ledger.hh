/**
 * @file
 * Structured live-run telemetry: an NDJSON event ledger with periodic
 * wall-clock heartbeats and a provenance manifest.
 *
 * A RunLedger streams one JSON object per line to a file while a bench
 * runs (`--ledger-out`), so a multi-minute sweep is observable *while*
 * it runs (tools/sweep_monitor.py tails the file) and leaves a replay-
 * able record when it dies (every event is also copied into the crash
 * flight recorder's ring).
 *
 * Event lines have a fixed envelope:
 *
 *   {"ledger":1,"seq":N,"kind":"<kind>","wall":{...},"payload":{...}}
 *
 * and a hard determinism contract: everything under "payload" is a
 * pure function of the declared experiment — byte-identical across
 * sweep worker-thread counts — while everything nondeterministic
 * (timestamps, RSS, host MIPS, ETA, thread counts, the file order of
 * concurrently emitted events) lives under "wall" or in wall-only
 * events. This is the same deterministic-vs-wall-clock split the JSON
 * report's "host" blocks use (docs/SCHEMA.md). Two designated
 * exceptions inside the head event's provenance payload — "cmdline"
 * and "env" — describe the invocation itself and differ between a
 * --threads 1 and a --threads 4 run by construction;
 * tools/check_ledger.py strips exactly those before its cross-thread
 * diff.
 *
 * Kinds: "head" (provenance manifest), "sweepBegin", "jobBegin",
 * "jobEnd" (one (cell, seed) unit), "cellEnd" (merged cell, emitted in
 * deterministic merge order), "sweepEnd", "traces" (content hashes of
 * every annotated trace built), "benchEnd", and the wall-only
 * "heartbeat" emitted by a sampler thread.
 */

#ifndef CSIM_OBS_RUN_LEDGER_HH
#define CSIM_OBS_RUN_LEDGER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/stats_registry.hh"

namespace csim {

/** The ledger's own NDJSON schema version (head payload). */
inline constexpr int ledgerSchemaVersion = 1;

/**
 * Where this run came from: enough to reproduce the report from its
 * header alone. Deterministic fields (gitSha, buildType, buildFlags,
 * hostProf) identify the code; instance fields (cmdline, env) identify
 * the invocation and are the two designated nondeterministic keys.
 */
struct Provenance
{
    std::string gitSha;
    std::string buildType;
    std::string buildFlags;
    bool hostProf = false;
    std::string cmdline;
    /** The CSIM_* environment overrides that were set, name-sorted. */
    std::vector<std::pair<std::string, std::string>> env;
};

/** Provenance of this process: build-time identity (baked in by CMake)
 *  plus the given command line and the live CSIM_* environment. */
Provenance collectProvenance(const std::string &cmdline);

/** Quote argv into one shell-pasteable replay command. */
std::string replayCommandLine(int argc, char **argv);

/**
 * FNV-1a digest of a stats snapshot's canonical rendering (names,
 * kinds, %.12g values, distribution buckets, in registration order).
 * Ledger events carry this 16-hex-digit digest instead of the full
 * snapshot, so a jobEnd line stays grep-able while still committing
 * to every stat byte.
 */
std::string statsDigest(const StatsSnapshot &snap);

/**
 * Live progress counters shared by the sweep runner (writer) and the
 * heartbeat sampler (reader). Monotonic, relaxed atomics: heartbeats
 * are wall-clock telemetry, not part of the deterministic record.
 */
struct LedgerProgress
{
    std::atomic<std::uint64_t> jobsTotal{0};
    std::atomic<std::uint64_t> jobsDone{0};
    std::atomic<std::uint64_t> instructionsDone{0};
};

class RunLedger
{
  public:
    /**
     * Open `path` for writing (fatal when the file cannot be created:
     * an unwritable ledger path must fail at startup, not after the
     * sweep) and emit the head event with the provenance manifest.
     */
    RunLedger(std::string path, std::string benchmark,
              const Provenance &provenance);

    /** Stops the heartbeat sampler and closes the stream. */
    ~RunLedger();

    RunLedger(const RunLedger &) = delete;
    RunLedger &operator=(const RunLedger &) = delete;

    const std::string &path() const { return path_; }
    LedgerProgress &progress() { return progress_; }

    /**
     * Start the wall-clock heartbeat sampler: every `period_ms` it
     * emits a heartbeat event with jobs done/total, committed
     * instructions, host MIPS over the ledger's lifetime, an ETA
     * extrapolated from job completion, and current RSS.
     */
    void startHeartbeat(unsigned period_ms);

    /** Stop the sampler (idempotent; also called by the destructor). */
    void stopHeartbeat();

    // -- Event emitters. `payload_json` must be a complete JSON object
    //    rendered deterministically; the envelope (seq, wall times) is
    //    added here. Thread-safe; every line is flushed so tailers and
    //    post-crash readers see complete events.

    /** Generic emitter: wall_json "" means an empty wall object. */
    void event(const char *kind, const std::string &payload_json,
               const std::string &wall_json = "");

    void sweepBegin(std::uint64_t sweep, std::uint64_t cells,
                    std::uint64_t jobs, unsigned threads);
    void jobBegin(std::uint64_t sweep, const std::string &cell,
                  std::uint64_t seed, const std::string &config_digest);
    void jobEnd(std::uint64_t sweep, const std::string &cell,
                std::uint64_t seed, std::uint64_t instructions,
                std::uint64_t cycles, const std::string &stats_digest);
    void cellEnd(std::uint64_t sweep, const std::string &cell,
                 std::uint64_t seeds, std::uint64_t instructions,
                 std::uint64_t cycles, const std::string &stats_digest);
    void sweepEnd(std::uint64_t sweep, std::uint64_t cells,
                  std::uint64_t jobs, double wall_seconds);

    /** Content hashes of every annotated trace built (name-sorted). */
    void traceHashes(
        const std::vector<std::pair<std::string, std::string>> &hashes);

    void benchEnd(std::uint64_t grids, std::uint64_t runs,
                  std::uint64_t scalars, double wall_seconds);

    /** Next sweep index for this ledger (sweepBegin/sweepEnd pairing
     *  is the caller's job; benches run sweeps sequentially). */
    std::uint64_t nextSweepIndex();

  private:
    void emitHeartbeat();
    double elapsedSeconds() const;

    const std::string path_;
    const std::string benchmark_;

    std::mutex mutex_; ///< serializes line emission
    std::ofstream out_;
    std::uint64_t seq_ = 0;
    std::chrono::steady_clock::time_point start_;

    LedgerProgress progress_;
    std::atomic<std::uint64_t> sweepCounter_{0};

    std::thread heartbeat_;
    std::mutex heartbeatMutex_;
    std::condition_variable heartbeatCv_;
    bool heartbeatStop_ = false;
};

} // namespace csim

#endif // CSIM_OBS_RUN_LEDGER_HH
