/**
 * @file
 * Live interval profiler: time-resolved CPI-stack loss accounting.
 *
 * The post-hoc critical-path pass in src/critpath attributes a whole
 * run's cycles to the paper's loss categories (Figs. 5-6); this
 * profiler does the same accounting *live*, one interval at a time, so
 * policy behaviour can be watched unfold over a run instead of being
 * summarized by a single end-of-run CPI. Attached through
 * SimOptions::observers, it classifies every simulated cycle into
 * exactly one CPI-stack component — so components sum to interval
 * cycles by construction — and every N cycles (default 10k) closes an
 * IntervalRecord carrying the stack, per-cluster occupancy/issue
 * lanes, and predictor telemetry (LoC spectrum, predicted-critical
 * steers). The series feeds three sinks: the bench JSON report
 * (schema v3), the Chrome trace-event exporter (src/obs/chrome_trace)
 * and `profiler.*` stats in the run's StatsRegistry.
 *
 * Per-cycle classification (first match wins):
 *   contention     a ready *predicted-critical* instruction was denied
 *                  issue by its cluster's ports — the paper's Fig. 6(a)
 *                  loss: contention among predicted-critical ops;
 *   loadImbalance  a ready instruction was denied while another
 *                  cluster had spare issue capacity and nothing denied
 *                  — work exists but steering mal-distributed it;
 *   base           at least one instruction issued (issue-width/
 *                  productive cycles, incl. saturated-width denials);
 *   steerStall     zero issue; steering stalled by policy choice
 *                  (stall-over-steer, Fig. 14 's');
 *   window         zero issue; steering blocked on a full ROB or full
 *                  scheduling windows;
 *   memory/bypass/execute/frontend
 *                  zero issue, nothing denied: attributed by examining
 *                  the oldest uncommitted instruction — waiting on an
 *                  L1-missing producer (memory), on a cross-cluster
 *                  forward in flight (bypass), on execution latency
 *                  (execute), or not yet out of the front end
 *                  (frontend: fill, fetch bandwidth, mispredict
 *                  recovery).
 */

#ifndef CSIM_OBS_INTERVAL_PROFILER_HH
#define CSIM_OBS_INTERVAL_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/sim_observer.hh"
#include "core/timing.hh"
#include "obs/stats_registry.hh"
#include "trace/trace.hh"

namespace csim {

/** CPI-stack components of the live per-cycle attribution. */
enum class CpiComponent : std::uint8_t
{
    Base,           ///< >= 1 instruction issued (issue-width bound)
    Window,         ///< ROB / scheduling windows full
    SteerStall,     ///< steering policy stalled (stall-over-steer)
    Bypass,         ///< waiting on an inter-cluster forward in flight
    Contention,     ///< predicted-critical op denied issue
    LoadImbalance,  ///< denial with spare capacity on another cluster
    Execute,        ///< waiting on functional-unit latency
    Memory,         ///< waiting on an L1-missing load
    Frontend,       ///< fetch fill/bandwidth/mispredict recovery
    NumComponents
};

inline constexpr std::size_t numCpiComponents =
    static_cast<std::size_t>(CpiComponent::NumComponents);

/** Dotted-stat segment / JSON key of a component ("base", ...). */
const char *cpiComponentName(CpiComponent c);

/** One cluster's activity within one interval. */
struct IntervalClusterLane
{
    std::uint64_t steered = 0;
    std::uint64_t issued = 0;
    /** Per-cycle window occupancy summed over the interval's cycles
     *  (divide by cycles for the average). */
    std::uint64_t occupancySum = 0;
};

/** One closed profiling interval. */
struct IntervalRecord
{
    /** First cycle of the interval. */
    Cycle startCycle = 0;
    /** Cycles covered (== configured length except the last). */
    std::uint64_t cycles = 0;
    /** CPI stack; invariant: sums exactly to `cycles`. */
    std::array<std::uint64_t, numCpiComponents> components = {};

    std::uint64_t commits = 0;
    std::uint64_t steers = 0;
    std::uint64_t issued = 0;
    /** Steers whose criticality snapshot predicted critical. */
    std::uint64_t predictedCriticalSteers = 0;
    /** Sum of steer-time LoC levels (divide by steers for average). */
    std::uint64_t locLevelSum = 0;
    std::uint64_t deniedIssue = 0;
    std::uint64_t deniedCritical = 0;
    std::uint64_t fetchStallCycles = 0;

    std::vector<IntervalClusterLane> clusters;

    std::uint64_t
    componentSum() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t c : components)
            s += c;
        return s;
    }

    /** Element-wise accumulation (seed/sweep aggregation). */
    void merge(const IntervalRecord &other);
};

/**
 * A run's (or a seed-merged aggregate's) interval time series.
 * Merging sums records index-wise — each index is the same nominal
 * [i*N, (i+1)*N) cycle window across seeds — adopting the longer
 * tail, so aggregates stay deterministic under the sweep runner's
 * fixed merge order.
 */
struct IntervalSeries
{
    /** Configured interval length in cycles (0 when empty). */
    std::uint64_t intervalCycles = 0;
    /** Machine geometry snapshot for utilization denominators. */
    unsigned clusterIssueWidth = 0;
    unsigned windowPerCluster = 0;
    /**
     * Runs merged into this series. Merged records carry *summed*
     * cycles — up to mergeCount * intervalCycles per nominal window —
     * so timeline renderers divide by this to recover the per-run
     * mean (slices must fit their [i*N, (i+1)*N) window).
     */
    std::uint64_t mergeCount = 1;
    std::vector<IntervalRecord> records;

    bool empty() const { return records.empty(); }

    /** Total cycles across all records. */
    std::uint64_t totalCycles() const;

    void merge(const IntervalSeries &other);
};

struct IntervalProfilerOptions
{
    /** Interval length in cycles. */
    std::uint64_t intervalCycles = 10000;
};

/**
 * The live profiler. Construct with the machine geometry and trace of
 * the run it will watch and attach through SimOptions::observers (it
 * composes with the pipeline checker). Live state and the series reset
 * at onRunStart, so the series always describes the most recent run;
 * attach only to the measured run, not warmup passes.
 */
class IntervalProfiler : public SimObserver
{
  public:
    IntervalProfiler(const MachineConfig &config, const Trace &trace,
                     IntervalProfilerOptions options =
                         IntervalProfilerOptions{});

    // SimObserver interface.
    void onRunStart(const CoreView &view) override;
    void onSteer(const CoreView &view, InstId id) override;
    void onIssue(const CoreView &view, InstId id) override;
    void onIssueDenied(const CoreView &view, InstId id) override;
    void onCommit(const CoreView &view, InstId id) override;
    void onSteerStall(const CoreView &view,
                      SteerStallCause cause) override;
    void onFetchStall(const CoreView &view) override;
    void onCycleEnd(const CoreView &view) override;
    void onRunEnd(const CoreView &view) override;
    void registerStats(StatsRegistry &registry) override;

    const IntervalSeries &series() const { return series_; }
    /** Move the series out (the profiler keeps an empty one). */
    IntervalSeries takeSeries();

  private:
    /** Attribute the cycle that just ended to one component. */
    CpiComponent classifyCycle(const CoreView &view) const;

    /** Push the current interval and start the next one. */
    void closeInterval(Cycle next_start);

    void resetCycleState();

    /** Stamp geometry on a fresh series (run or no run). */
    void initSeriesGeometry();

    const MachineConfig config_;
    const Trace &trace_;
    IntervalProfilerOptions options_;

    IntervalSeries series_;
    IntervalRecord cur_;

    /** Oldest uncommitted instruction (head of the ROB). */
    InstId nextCommit_ = 0;

    // Per-cycle scratch, folded into cur_ and reset at every cycle end.
    std::uint64_t cycIssued_ = 0;
    std::uint64_t cycDenied_ = 0;
    std::uint64_t cycDeniedCritical_ = 0;
    bool cycSteerStalled_ = false;
    SteerStallCause cycSteerStallCause_ = SteerStallCause::RobFull;
    std::vector<std::uint32_t> cycClusterIssued_;
    std::vector<std::uint32_t> cycClusterDenied_;

    // Optional registry bindings (null until registerStats).
    Counter *statIntervals_ = nullptr;
    std::array<Counter *, numCpiComponents> statComponents_ = {};
    Counter *statPredCritSteers_ = nullptr;
    Counter *statDenied_ = nullptr;
    Counter *statDeniedCritical_ = nullptr;
    Histogram *statLocSpectrum_ = nullptr;
};

} // namespace csim

#endif // CSIM_OBS_INTERVAL_PROFILER_HH
