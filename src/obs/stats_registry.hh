/**
 * @file
 * Simulator-wide statistics registry.
 *
 * Components register named scalar counters, distributions and derived
 * formulas under hierarchical dotted names ("sim.cluster0.issue.int",
 * "steer.stallCycles"). A registry belongs to one simulation run; at
 * the end of the run it is frozen into a StatsSnapshot, a plain value
 * type that the harness aggregates across seeds and the JSON reporter
 * serializes. This replaces the ad-hoc counter members that used to be
 * scattered through TimingSim and the policies.
 */

#ifndef CSIM_OBS_STATS_REGISTRY_HH
#define CSIM_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace csim {

/** A registered scalar event counter. */
class Counter
{
  public:
    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t d)
    {
        value_ += d;
        return *this;
    }

    void inc(std::uint64_t d = 1) { value_ += d; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

enum class StatKind : std::uint8_t
{
    Counter,
    Distribution,
    Formula,
};

/** One frozen stat inside a StatsSnapshot. */
struct StatValue
{
    StatKind kind = StatKind::Counter;
    /** Counter value or formula result (counters fit a double up to
     *  2^53, far beyond any simulated event count). */
    double value = 0.0;
    /** Distribution payload (empty for scalars). */
    std::vector<std::uint64_t> buckets;
    double lo = 0.0;
    double hi = 0.0;
    /** Snapshots merged into this value; formulas merge by mean. */
    std::uint64_t mergeCount = 1;
};

/**
 * A frozen, order-preserving view of a registry: the interchange format
 * between a finished run, the seed-averaging harness and the JSON
 * reporter.
 */
class StatsSnapshot
{
  public:
    void add(const std::string &name, StatValue v);

    bool has(const std::string &name) const;

    /** Scalar value of a stat; panics when the name is unknown. */
    double value(const std::string &name) const;

    /** Full stat record; panics when the name is unknown. */
    const StatValue &at(const std::string &name) const;

    /**
     * Merge another snapshot (e.g. another seed's run): counters and
     * distribution buckets sum; formulas average across the merged
     * snapshots. Names unknown to this snapshot are adopted.
     */
    void merge(const StatsSnapshot &other);

    /**
     * Copy containing only the stats whose name starts with one of
     * the given prefixes, in the original order. An empty prefix list
     * keeps everything (filtering is opt-in). Used by the stat dumpers
     * so profiler-heavy runs can be cut down to e.g. "profiler.".
     */
    StatsSnapshot filtered(
        const std::vector<std::string> &prefixes) const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Stats in registration order. */
    const std::vector<std::pair<std::string, StatValue>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<std::string, StatValue>> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

/**
 * The live registry one simulation run writes into. Registration
 * panics on duplicate or malformed names (stat names are API).
 * Counter/Histogram references stay valid for the registry's lifetime.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    Counter &addCounter(const std::string &name,
                        const std::string &desc = "");

    Histogram &addDistribution(const std::string &name, unsigned buckets,
                               double lo, double hi,
                               const std::string &desc = "");

    /** A derived stat, evaluated lazily at snapshot time. */
    void addFormula(const std::string &name, std::function<double()> fn,
                    const std::string &desc = "");

    bool has(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** Human-readable description of a registered stat ("" if none). */
    const std::string &description(const std::string &name) const;

    StatsSnapshot snapshot() const;

    /**
     * Zero every counter and distribution (formulas recompute from
     * them and need no reset). This is the phase-boundary operation:
     * a warmup phase's events are discarded while the components that
     * own the counters — predictors, caches, steering state — keep
     * their trained microarchitectural state untouched.
     */
    void resetMeasurement();

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        StatKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Histogram> dist;
        std::function<double()> formula;
    };

    Entry &newEntry(const std::string &name, const std::string &desc,
                    StatKind kind);

    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace csim

#endif // CSIM_OBS_STATS_REGISTRY_HH
