#include "obs/chrome_trace.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/logging.hh"

namespace csim {
namespace {

/** Minimal JSON string escape (labels are machine/policy names, but a
 *  trace path or workload label could in principle carry anything). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

/** Fixed-point with 3 decimals, locale-independent. */
std::string
fixed3(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

class EventList
{
  public:
    explicit EventList(std::ostream &os) : os_(os) { os_ << "["; }

    /** Begin one event object; the caller appends fields via raw(). */
    std::ostream &
    next()
    {
        if (!first_)
            os_ << ",";
        first_ = false;
        os_ << "\n{";
        return os_;
    }

    void endEvent() { os_ << "}"; }

    void finish() { os_ << "\n]"; }

  private:
    std::ostream &os_;
    bool first_ = true;
};

/**
 * A merged cell's adaptive lane is the concatenation of its seed
 * runs' decision streams (AggregateResult::merge), each restarting at
 * cycle 0. Sub-lane count = number of those restarts, so every seed's
 * timeline gets its own non-overlapping track.
 */
std::size_t
adaptiveSubLanes(const ChromeTraceRun &run)
{
    std::size_t lanes = 0;
    bool first = true;
    Cycle prev = 0;
    for (const AdaptiveLanePoint &p : run.adaptive) {
        if (first || p.startCycle <= prev)
            ++lanes;
        first = false;
        prev = p.startCycle;
    }
    return lanes;
}

void
emitMetadata(EventList &ev, unsigned pid, const ChromeTraceRun &run)
{
    ev.next() << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
              << ",\"tid\":0,\"args\":{\"name\":\""
              << jsonEscape(run.label) << "\"}";
    ev.endEvent();
    const std::size_t clusters = run.series.records.empty() ?
        0 : run.series.records.front().clusters.size();
    for (std::size_t c = 0; c < clusters; ++c) {
        ev.next() << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << pid << ",\"tid\":" << c + 1
                  << ",\"args\":{\"name\":\"cluster" << c << "\"}";
        ev.endEvent();
    }
    const std::size_t lanes = adaptiveSubLanes(run);
    for (std::size_t l = 0; l < lanes; ++l) {
        std::ostream &os = ev.next();
        os << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << clusters + 1 + l
           << ",\"args\":{\"name\":\"adaptive";
        if (l)
            os << " run" << l + 1;
        os << "\"}";
        ev.endEvent();
    }
}

/**
 * Adaptive decision lane: one "X" slice per decision interval named by
 * the phase class (so the lane reads as a phase timeline), a "C"
 * counter track for the knob trajectories, and "i" instants marking
 * transitions and reverts. Rides on its own tracks after the cluster
 * lanes — one track per merged seed run (a merged cell's lane is the
 * seed runs' concatenated decision streams, each restarting at cycle
 * 0; a startCycle reset starts the next track). The knob counter
 * follows the first run only, so its trajectory stays monotonic in
 * time.
 */
void
emitAdaptiveLane(EventList &ev, unsigned pid, const ChromeTraceRun &run)
{
    if (run.adaptive.empty())
        return;
    const std::size_t clusters = run.series.records.empty() ?
        0 : run.series.records.front().clusters.size();
    std::uint64_t tid = clusters;
    bool first = true;
    Cycle prev_start = 0;
    for (const AdaptiveLanePoint &p : run.adaptive) {
        if (first || p.startCycle <= prev_start)
            ++tid;
        first = false;
        prev_start = p.startCycle;
        if (p.cycles == 0)
            continue;
        ev.next() << "\"name\":\"" << jsonEscape(p.phase)
                  << "\",\"ph\":\"X\",\"pid\":" << pid
                  << ",\"tid\":" << tid
                  << ",\"ts\":" << p.startCycle
                  << ",\"dur\":" << p.cycles
                  << ",\"args\":{\"stallThreshold\":"
                  << fixed3(p.stallThreshold)
                  << ",\"locLowCutoff\":" << p.locLowCutoff
                  << ",\"pressure\":" << fixed3(p.pressure) << "}";
        ev.endEvent();
        if (tid == clusters + 1) {
            ev.next() << "\"name\":\"adaptiveKnobs\",\"ph\":\"C\","
                      << "\"pid\":" << pid
                      << ",\"tid\":0,\"ts\":" << p.startCycle
                      << ",\"args\":{\"stallThreshold\":"
                      << fixed3(p.stallThreshold)
                      << ",\"locLowCutoff\":" << p.locLowCutoff
                      << ",\"pressure\":" << fixed3(p.pressure) << "}";
            ev.endEvent();
        }
        if (p.transitioned || p.reverted) {
            ev.next() << "\"name\":\""
                      << (p.reverted ? "revert" : "transition")
                      << "\",\"ph\":\"i\",\"pid\":" << pid
                      << ",\"tid\":" << tid
                      << ",\"ts\":" << p.startCycle + p.cycles
                      << ",\"s\":\"t\",\"args\":{\"phase\":\""
                      << jsonEscape(p.phase) << "\"}";
            ev.endEvent();
        }
    }
}

void
emitClusterSlices(EventList &ev, unsigned pid, const ChromeTraceRun &run)
{
    const IntervalSeries &series = run.series;
    const std::uint64_t runs_merged =
        series.mergeCount ? series.mergeCount : 1;
    for (const IntervalRecord &rec : series.records) {
        if (rec.cycles == 0)
            continue;
        // Merged records carry cycles summed over mergeCount runs;
        // render the per-run mean so the slice stays inside its
        // nominal interval window (ceil keeps short tails visible).
        const std::uint64_t dur =
            (rec.cycles + runs_merged - 1) / runs_merged;
        for (std::size_t c = 0; c < rec.clusters.size(); ++c) {
            const IntervalClusterLane &lane = rec.clusters[c];
            const double cycles = static_cast<double>(rec.cycles);
            const double util = series.clusterIssueWidth ?
                static_cast<double>(lane.issued) /
                (cycles * series.clusterIssueWidth) : 0.0;
            const double occ = series.windowPerCluster ?
                static_cast<double>(lane.occupancySum) /
                (cycles * series.windowPerCluster) : 0.0;
            ev.next() << "\"name\":\"interval\",\"ph\":\"X\",\"pid\":"
                      << pid << ",\"tid\":" << c + 1
                      << ",\"ts\":" << rec.startCycle
                      << ",\"dur\":" << dur
                      << ",\"args\":{\"issued\":" << lane.issued
                      << ",\"steered\":" << lane.steered
                      << ",\"issueUtil\":" << fixed3(util)
                      << ",\"windowOcc\":" << fixed3(occ) << "}";
            ev.endEvent();
        }
    }
}

void
emitCounters(EventList &ev, unsigned pid, const ChromeTraceRun &run)
{
    for (const IntervalRecord &rec : run.series.records) {
        if (rec.cycles == 0)
            continue;
        // CPI-stack counter track: per-component share of the
        // interval's cycles, stacked by the viewer.
        auto &os = ev.next();
        os << "\"name\":\"cpiStack\",\"ph\":\"C\",\"pid\":" << pid
           << ",\"tid\":0,\"ts\":" << rec.startCycle << ",\"args\":{";
        for (std::size_t i = 0; i < numCpiComponents; ++i) {
            if (i)
                os << ",";
            os << "\"" << cpiComponentName(static_cast<CpiComponent>(i))
               << "\":" << rec.components[i];
        }
        os << "}";
        ev.endEvent();
        const double steers = static_cast<double>(rec.steers);
        ev.next() << "\"name\":\"predictor\",\"ph\":\"C\",\"pid\":"
                  << pid << ",\"tid\":0,\"ts\":" << rec.startCycle
                  << ",\"args\":{\"predictedCriticalFrac\":"
                  << fixed3(steers ? rec.predictedCriticalSteers / steers
                                   : 0.0)
                  << ",\"locLevelAvg\":"
                  << fixed3(steers ? rec.locLevelSum / steers : 0.0)
                  << ",\"deniedIssue\":" << rec.deniedIssue
                  << ",\"deniedCritical\":" << rec.deniedCritical << "}";
        ev.endEvent();
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<ChromeTraceRun> &runs)
{
    os << "{\n\"displayTimeUnit\":\"ms\",\n\"traceEvents\":";
    EventList ev(os);
    unsigned pid = 1;
    for (const ChromeTraceRun &run : runs) {
        emitMetadata(ev, pid, run);
        emitClusterSlices(ev, pid, run);
        emitCounters(ev, pid, run);
        emitAdaptiveLane(ev, pid, run);
        ++pid;
    }
    ev.finish();
    os << "\n}\n";
}

void
writeChromeTraceFile(const std::string &path,
                     const std::vector<ChromeTraceRun> &runs)
{
    std::ofstream os(path);
    if (!os)
        CSIM_PANIC("writeChromeTraceFile: cannot open output file");
    writeChromeTrace(os, runs);
    os.flush();
    if (!os)
        CSIM_PANIC("writeChromeTraceFile: write failed");
}

} // namespace csim
