#include "obs/flight_recorder.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace csim {

namespace {

/** One thread's ring. Claimed by CAS on `used`; only the owning
 *  thread writes entries/context/head, so recording needs no lock.
 *  `head` counts total notes; entry i lives at slot i % ringEntries. */
struct Ring
{
    std::atomic<bool> used{false};
    std::atomic<std::uint64_t> head{0};
    char context[FlightRecorder::entryBytes] = {};
    char entries[FlightRecorder::ringEntries]
                [FlightRecorder::entryBytes] = {};
};

Ring g_rings[FlightRecorder::maxThreads];

std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumped{false};
char g_replay[1024] = {};
char g_dumpPath[512] = {};

/** Claim a free ring slot for this thread; null when all are taken. */
Ring *
claimRing()
{
    for (Ring &ring : g_rings) {
        bool expected = false;
        if (ring.used.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
            ring.head.store(0, std::memory_order_relaxed);
            ring.context[0] = '\0';
            return &ring;
        }
    }
    return nullptr;
}

/** Releases this thread's ring on exit so slots recycle across the
 *  short-lived sweep worker pools. */
struct RingHolder
{
    Ring *ring = nullptr;
    bool exhausted = false;

    ~RingHolder()
    {
        if (!ring)
            return;
        // Clear before releasing so a recycled slot never attributes
        // a dead thread's events to its successor.
        ring->head.store(0, std::memory_order_relaxed);
        ring->context[0] = '\0';
        std::memset(ring->entries, 0, sizeof(ring->entries));
        ring->used.store(false, std::memory_order_release);
    }
};

thread_local RingHolder t_ring;

Ring *
myRing()
{
    if (t_ring.ring == nullptr && !t_ring.exhausted) {
        t_ring.ring = claimRing();
        t_ring.exhausted = t_ring.ring == nullptr;
    }
    return t_ring.ring;
}

void
copyTruncated(char *dst, std::size_t cap, const char *src)
{
    std::size_t i = 0;
    for (; src[i] != '\0' && i + 1 < cap; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
}

/**
 * Line-by-line dump renderer shared by the crash path (emit = write())
 * and dumpToString (emit = string append). Every line is built into a
 * stack buffer with snprintf — async-signal-safe on every libc this
 * project targets, and the crash path allocates nothing.
 */
template <typename Emit>
void
renderDump(const char *reason, Emit &&emit)
{
    char line[FlightRecorder::entryBytes + 64];
    std::snprintf(line, sizeof(line),
                  "=== flight recorder dump (reason: %s) ===\n",
                  reason ? reason : "?");
    emit(line);
    if (g_replay[0] != '\0') {
        std::snprintf(line, sizeof(line), "replay: %s\n", g_replay);
        emit(line);
    }
    for (std::size_t t = 0; t < FlightRecorder::maxThreads; ++t) {
        Ring &ring = g_rings[t];
        if (!ring.used.load(std::memory_order_acquire))
            continue;
        const std::uint64_t head =
            ring.head.load(std::memory_order_relaxed);
        if (head == 0 && ring.context[0] == '\0')
            continue;
        std::snprintf(line, sizeof(line),
                      "thread %zu: %llu events recorded, context: %s\n",
                      t, static_cast<unsigned long long>(head),
                      ring.context[0] ? ring.context : "(none)");
        emit(line);
        const std::uint64_t kept =
            head < FlightRecorder::ringEntries
                ? head : FlightRecorder::ringEntries;
        for (std::uint64_t i = head - kept; i < head; ++i) {
            const char *entry =
                ring.entries[i % FlightRecorder::ringEntries];
            std::snprintf(line, sizeof(line), "  [%lld] %s\n",
                          static_cast<long long>(i) -
                              static_cast<long long>(head),
                          entry);
            emit(line);
        }
    }
    std::snprintf(line, sizeof(line),
                  "=== end flight recorder dump ===\n");
    emit(line);
}

void
crashHook(const char *reason)
{
    FlightRecorder::dump(reason);
}

void
signalHandler(int signo)
{
    // strsignal is not signal-safe; a fixed name table is.
    const char *name = "fatal signal";
    switch (signo) {
      case SIGSEGV: name = "SIGSEGV"; break;
      case SIGBUS: name = "SIGBUS"; break;
      case SIGFPE: name = "SIGFPE"; break;
      case SIGILL: name = "SIGILL"; break;
      case SIGABRT: name = "SIGABRT"; break;
    }
    FlightRecorder::dump(name);
    // SA_RESETHAND restored the default action; re-raise so the
    // process still dies with the original signal (and core dump).
    ::raise(signo);
}

void
installSignalHandlers()
{
    struct ::sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = signalHandler;
    sa.sa_flags = SA_RESETHAND | SA_NODEFER;
    ::sigemptyset(&sa.sa_mask);
    for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        ::sigaction(signo, &sa, nullptr);
}

void
restoreSignalHandlers()
{
    struct ::sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_DFL;
    ::sigemptyset(&sa.sa_mask);
    for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        ::sigaction(signo, &sa, nullptr);
}

} // anonymous namespace

void
FlightRecorder::install(const std::string &replay_command,
                        const std::string &dump_path)
{
    copyTruncated(g_replay, sizeof(g_replay), replay_command.c_str());
    copyTruncated(g_dumpPath, sizeof(g_dumpPath), dump_path.c_str());
    g_dumped.store(false, std::memory_order_relaxed);
    if (!g_installed.exchange(true, std::memory_order_acq_rel)) {
        setCrashHook(&crashHook);
        installSignalHandlers();
    }
}

bool
FlightRecorder::installed()
{
    return g_installed.load(std::memory_order_relaxed);
}

void
FlightRecorder::reset()
{
    if (g_installed.exchange(false, std::memory_order_acq_rel)) {
        setCrashHook(nullptr);
        restoreSignalHandlers();
    }
    g_replay[0] = '\0';
    g_dumpPath[0] = '\0';
    g_dumped.store(false, std::memory_order_relaxed);
    // Rings owned by live threads keep their slots (the owners still
    // hold pointers); only their recorded content is discarded.
    for (Ring &ring : g_rings) {
        ring.head.store(0, std::memory_order_relaxed);
        ring.context[0] = '\0';
    }
}

void
FlightRecorder::note(const char *text)
{
    if (!installed())
        return;
    Ring *ring = myRing();
    if (ring == nullptr)
        return;
    const std::uint64_t head =
        ring->head.load(std::memory_order_relaxed);
    copyTruncated(ring->entries[head % ringEntries], entryBytes, text);
    ring->head.store(head + 1, std::memory_order_release);
}

void
FlightRecorder::setContext(const char *text)
{
    if (!installed())
        return;
    Ring *ring = myRing();
    if (ring == nullptr)
        return;
    copyTruncated(ring->context, entryBytes, text);
}

void
FlightRecorder::dump(const char *reason)
{
    if (!installed())
        return;
    // One dump per death: the panic hook fires first, then abort()
    // raises SIGABRT whose handler would dump again.
    if (g_dumped.exchange(true, std::memory_order_acq_rel))
        return;
    int fd = -1;
    if (g_dumpPath[0] != '\0')
        fd = ::open(g_dumpPath, O_WRONLY | O_CREAT | O_APPEND, 0644);
    renderDump(reason, [fd](const char *line) {
        const std::size_t len = std::strlen(line);
        // Best effort: a failed write must not stop the dump.
        if (::write(STDERR_FILENO, line, len) < 0) {}
        if (fd >= 0 && ::write(fd, line, len) < 0) {}
    });
    if (fd >= 0)
        ::close(fd);
}

std::string
FlightRecorder::dumpToString(const char *reason)
{
    std::string out;
    renderDump(reason, [&out](const char *line) { out += line; });
    return out;
}

} // namespace csim
