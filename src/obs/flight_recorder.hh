/**
 * @file
 * Crash flight recorder: a lock-free per-thread ring buffer of the
 * most recent ledger events (plus a sticky "what am I simulating"
 * context line per thread), dumped together with the exact replay
 * command when the process dies — via CSIM_PANIC / CSIM_FATAL (through
 * the logging crash hook) or a fatal signal (SIGSEGV, SIGBUS, SIGFPE,
 * SIGILL, SIGABRT).
 *
 * Design constraints:
 *  - Recording must be cheap and safe on sweep worker threads: each
 *    thread owns one ring slot claimed by CAS and writes it with plain
 *    stores; no locks, no allocation after the slot is claimed.
 *  - Dumping must work from a signal handler: the dump path renders
 *    each line into a stack buffer with snprintf and emits it with
 *    write(2) — no heap, no stdio locks, no iostreams.
 *  - Installing is optional and reversible: without install() the
 *    recorder costs one relaxed atomic load per note() and the crash
 *    paths behave exactly as before.
 *
 * The dump goes to stderr and, when a dump path was configured, is
 * appended to that file so CI can upload it as an artifact.
 */

#ifndef CSIM_OBS_FLIGHT_RECORDER_HH
#define CSIM_OBS_FLIGHT_RECORDER_HH

#include <cstddef>
#include <string>

namespace csim {

class FlightRecorder
{
  public:
    /** Events retained per thread (the "last N" of the dump). */
    static constexpr std::size_t ringEntries = 32;
    /** Bytes retained per event (longer lines are truncated). */
    static constexpr std::size_t entryBytes = 240;
    /** Concurrent threads with live rings (slots recycle on thread
     *  exit; threads beyond this record nothing, losing context but
     *  never correctness). */
    static constexpr std::size_t maxThreads = 64;

    /**
     * Arm the recorder: remember the replay command and optional dump
     * file, install the logging crash hook and the fatal signal
     * handlers. Idempotent; the latest replay command wins.
     */
    static void install(const std::string &replay_command,
                        const std::string &dump_path = "");

    /** True between install() and reset(). */
    static bool installed();

    /** Uninstall hooks and clear every ring (tests). */
    static void reset();

    /**
     * Record one line into the calling thread's ring. No-op when not
     * installed. Lock-free; truncates to entryBytes - 1 chars.
     */
    static void note(const char *text);

    /** Sticky per-thread context line ("cell=... seed=..."),
     *  overwritten in place and shown once per thread in the dump. */
    static void setContext(const char *text);

    /**
     * Render every live ring, each thread's context and the replay
     * command to stderr (and the dump file when configured) using only
     * async-signal-safe primitives. Safe to call from the crash hook
     * and from signal handlers; a second concurrent dump is dropped.
     */
    static void dump(const char *reason);

    /** The same rendering as dump(), returned as a string instead of
     *  written out — the testable, non-crash inspection path. */
    static std::string dumpToString(const char *reason);
};

} // namespace csim

#endif // CSIM_OBS_FLIGHT_RECORDER_HH
