/**
 * @file
 * Host-side performance observability: a low-overhead RAII scoped
 * timer hierarchy plus process memory sampling.
 *
 * Every `HOST_PROF_SCOPE("sim.run")` opens a node in the calling
 * thread's private timer tree (no locks, no atomics on the hot path);
 * nesting follows lexical scope. When a thread exits, its tree is
 * folded into a retired pool under a mutex, and HostProf::snapshot()
 * merges the retired pool with all live threads' trees into one
 * HostProfNode tree whose children are sorted by name and whose
 * counters are integer sums — so the merged tree is deterministic
 * for a fixed workload regardless of how many worker threads ran it.
 * Worker pools keep the tree *shape* thread-count invariant by
 * adopting the spawning thread's scope path (HostProfPathAdopter),
 * so a scope opened on a worker lands at the same tree position it
 * would have in the inline single-threaded execution.
 *
 * Scopes can attach simulated-instruction counts
 * (HOST_PROF_INSTRUCTIONS), from which per-scope host-MIPS is
 * derived. sampleHostMemory() reads peak/current RSS and (glibc)
 * heap usage, tracking an allocation high-water mark across samples.
 *
 * Cost model: a scope is one map descent + two steady_clock reads,
 * so scopes belong at phase boundaries (a trace build, a whole sim
 * run, a sweep merge), never inside per-cycle loops. Configure with
 * -DCSIM_ENABLE_HOST_PROF=OFF and the macros compile to nothing;
 * at runtime HostProf::setEnabled(false) (or CSIM_HOST_PROF=0 in the
 * environment) reduces a scope to one relaxed atomic load.
 *
 * Threading discipline: snapshot() and reset() must run while no
 * other thread is inside a scope (e.g. after worker pools joined).
 */

#ifndef CSIM_OBS_HOST_PROF_HH
#define CSIM_OBS_HOST_PROF_HH

#include <cstdint>
#include <string>
#include <vector>

namespace csim {

/** One node of a merged (frozen) host-profile timer tree. */
struct HostProfNode
{
    std::string name;
    /** Times the scope was entered (0 for purely structural nodes). */
    std::uint64_t calls = 0;
    /** Wall nanoseconds spent inside the scope, children included. */
    std::uint64_t ns = 0;
    /** Simulated instructions attributed to this scope. */
    std::uint64_t instructions = 0;
    /** Sorted by name; the sum of child ns never exceeds ns. */
    std::vector<HostProfNode> children;

    /** Child with this name, or null. */
    const HostProfNode *find(const std::string &child) const;

    /** Sum of direct children's ns. */
    std::uint64_t childNs() const;

    /** instructions + ns of the whole subtree. */
    std::uint64_t totalInstructions() const;

    /** Host MIPS of this scope (0 when instructions or ns unknown). */
    double mips() const;
};

/**
 * Canonical duration-free rendering of a merged tree: one line per
 * node ("path calls=N instructions=M"), depth-first. Because it
 * contains no wall times, it is byte-identical across runs and
 * worker-thread counts for a deterministic workload — the form the
 * determinism tests and CI compare.
 */
std::string hostProfCanonical(const HostProfNode &root);

/** Process memory sample (Linux; zeros where unsupported). */
struct HostMemoryStats
{
    /** Kernel-tracked peak resident set (ru_maxrss). */
    std::uint64_t peakRssBytes = 0;
    /** Current resident set (/proc/self/statm). */
    std::uint64_t currentRssBytes = 0;
    /** Bytes currently allocated from the heap (glibc mallinfo2). */
    std::uint64_t heapBytes = 0;
    /** High-water mark of heapBytes across all samples so far. */
    std::uint64_t heapHighWaterBytes = 0;
};

/** Sample process memory and advance the heap high-water mark. */
HostMemoryStats sampleHostMemory();

class HostProf
{
  public:
    /** True when the scope macros were compiled in. */
    static constexpr bool
    compiledIn()
    {
#ifdef CSIM_HOST_PROF
        return true;
#else
        return false;
#endif
    }

    /** Runtime gate (default on; CSIM_HOST_PROF=0 disables). */
    static bool enabled();
    static void setEnabled(bool on);

    /** Drop all accumulated timing (threads must be quiescent). */
    static void reset();

    /**
     * Deterministic merge of the retired pool and every live thread's
     * tree. The returned root is named "host" with ns equal to the
     * sum of its children (so the child-sum invariant holds at every
     * level). Call only while other threads are outside scopes.
     */
    static HostProfNode snapshot();

    /** Scope-name path from the calling thread's root to its current
     *  scope (empty at top level or when disabled). */
    static std::vector<std::string> currentPath();
};

/**
 * RAII scope timer. Use through HOST_PROF_SCOPE so the object (and
 * its clock reads) vanish entirely in CSIM_ENABLE_HOST_PROF=OFF
 * builds.
 */
class HostProfScope
{
  public:
    explicit HostProfScope(const char *name);
    ~HostProfScope();

    HostProfScope(const HostProfScope &) = delete;
    HostProfScope &operator=(const HostProfScope &) = delete;

  private:
    void *node_ = nullptr; ///< live node; null when disabled
    std::uint64_t startNs_ = 0;
};

/**
 * Re-roots the calling thread's scope stack at a path captured on
 * another thread (HostProf::currentPath()). Worker-pool threads adopt
 * the spawning thread's path before running jobs, so their scopes
 * merge into the same tree positions the inline execution would use —
 * the adopted nodes themselves accumulate no calls or time.
 */
class HostProfPathAdopter
{
  public:
    explicit HostProfPathAdopter(const std::vector<std::string> &path);
    ~HostProfPathAdopter();

    HostProfPathAdopter(const HostProfPathAdopter &) = delete;
    HostProfPathAdopter &operator=(const HostProfPathAdopter &) =
        delete;

  private:
    std::size_t depth_ = 0;
};

/** Attribute simulated instructions to the current scope. */
void hostProfAddInstructions(std::uint64_t n);

} // namespace csim

#define CSIM_HOST_PROF_CONCAT2(a, b) a##b
#define CSIM_HOST_PROF_CONCAT(a, b) CSIM_HOST_PROF_CONCAT2(a, b)

#ifdef CSIM_HOST_PROF
/** Open a named timer scope for the rest of the enclosing block. */
#define HOST_PROF_SCOPE(name)                                              \
    ::csim::HostProfScope CSIM_HOST_PROF_CONCAT(csim_host_prof_scope_,     \
                                                __COUNTER__)(name)
/** Credit N simulated instructions to the innermost open scope. */
#define HOST_PROF_INSTRUCTIONS(n) ::csim::hostProfAddInstructions(n)
#else
#define HOST_PROF_SCOPE(name) ((void)0)
#define HOST_PROF_INSTRUCTIONS(n) ((void)0)
#endif

#endif // CSIM_OBS_HOST_PROF_HH
