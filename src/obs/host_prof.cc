#include "obs/host_prof.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#if defined(__linux__)
#include <sys/resource.h>
#include <unistd.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/logging.hh"

namespace csim {

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** A node of one thread's private (unlocked) timer tree. std::map
 *  keeps children name-sorted, which makes every merge and rendering
 *  order deterministic by construction. */
struct LiveNode
{
    LiveNode(std::string node_name, LiveNode *node_parent)
        : name(std::move(node_name)), parent(node_parent)
    {
    }

    const std::string name;
    LiveNode *const parent;
    std::map<std::string, std::unique_ptr<LiveNode>> children;
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
    std::uint64_t instructions = 0;
};

struct ThreadTree
{
    LiveNode root{"", nullptr};
    LiveNode *current = &root;
};

struct Globals
{
    std::mutex mutex;
    std::vector<ThreadTree *> active;
    /** Merged trees of threads that already exited. */
    HostProfNode retired;
    std::atomic<bool> enabled;

    Globals()
    {
        const char *env = std::getenv("CSIM_HOST_PROF");
        enabled.store(!(env && std::strcmp(env, "0") == 0),
                      std::memory_order_relaxed);
    }
};

Globals &
globals()
{
    static Globals g;
    return g;
}

/** Insertion point for (or existing) child `name` in a frozen node,
 *  preserving the sorted-children invariant. */
HostProfNode &
frozenChild(HostProfNode &dst, const std::string &name)
{
    auto it = std::lower_bound(
        dst.children.begin(), dst.children.end(), name,
        [](const HostProfNode &n, const std::string &key) {
            return n.name < key;
        });
    if (it == dst.children.end() || it->name != name) {
        HostProfNode fresh;
        fresh.name = name;
        it = dst.children.insert(it, std::move(fresh));
    }
    return *it;
}

void
mergeLive(HostProfNode &dst, const LiveNode &src)
{
    dst.calls += src.calls;
    dst.ns += src.ns;
    dst.instructions += src.instructions;
    for (const auto &[name, child] : src.children)
        mergeLive(frozenChild(dst, name), *child);
}

/** Per-thread tree, registered on first use and folded into the
 *  retired pool when the thread exits. */
struct ThreadReg
{
    ThreadTree tree;

    ThreadReg()
    {
        Globals &g = globals();
        std::lock_guard<std::mutex> lock(g.mutex);
        g.active.push_back(&tree);
    }

    ~ThreadReg()
    {
        Globals &g = globals();
        std::lock_guard<std::mutex> lock(g.mutex);
        mergeLive(g.retired, tree.root);
        g.active.erase(
            std::find(g.active.begin(), g.active.end(), &tree));
    }
};

ThreadTree &
threadTree()
{
    thread_local ThreadReg reg;
    return reg.tree;
}

LiveNode *
descend(LiveNode *from, const std::string &name)
{
    std::unique_ptr<LiveNode> &slot = from->children[name];
    if (!slot)
        slot = std::make_unique<LiveNode>(name, from);
    return slot.get();
}

/**
 * Enforce the child-sum invariant after a cross-thread merge: scopes
 * opened concurrently on worker threads can sum to more wall time
 * than their (single-threaded) parent's span, in which case the
 * parent is lifted to the children's sum — CPU-time semantics under
 * parallelism, wall-time semantics everywhere else.
 */
void
liftToChildSum(HostProfNode &node)
{
    for (HostProfNode &child : node.children)
        liftToChildSum(child);
    node.ns = std::max(node.ns, node.childNs());
}

void
canonicalLines(const HostProfNode &node, const std::string &prefix,
               std::string &out)
{
    const std::string path =
        prefix.empty() ? node.name : prefix + "/" + node.name;
    out += path;
    out += " calls=";
    out += std::to_string(node.calls);
    out += " instructions=";
    out += std::to_string(node.instructions);
    out += '\n';
    for (const HostProfNode &child : node.children)
        canonicalLines(child, path, out);
}

} // anonymous namespace

const HostProfNode *
HostProfNode::find(const std::string &child) const
{
    for (const HostProfNode &c : children)
        if (c.name == child)
            return &c;
    return nullptr;
}

std::uint64_t
HostProfNode::childNs() const
{
    std::uint64_t sum = 0;
    for (const HostProfNode &c : children)
        sum += c.ns;
    return sum;
}

std::uint64_t
HostProfNode::totalInstructions() const
{
    std::uint64_t sum = instructions;
    for (const HostProfNode &c : children)
        sum += c.totalInstructions();
    return sum;
}

double
HostProfNode::mips() const
{
    if (instructions == 0 || ns == 0)
        return 0.0;
    // instructions/us == millions of instructions per second.
    return static_cast<double>(instructions) * 1000.0 /
        static_cast<double>(ns);
}

std::string
hostProfCanonical(const HostProfNode &root)
{
    std::string out;
    canonicalLines(root, "", out);
    return out;
}

bool
HostProf::enabled()
{
    return globals().enabled.load(std::memory_order_relaxed);
}

void
HostProf::setEnabled(bool on)
{
    globals().enabled.store(on, std::memory_order_relaxed);
}

void
HostProf::reset()
{
    Globals &g = globals();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.retired = HostProfNode{};
    for (ThreadTree *tree : g.active) {
        // Quiescence contract: no scope is open anywhere, so every
        // live tree's cursor sits at its root.
        CSIM_ASSERT(tree->current == &tree->root);
        tree->root.children.clear();
        tree->root.calls = 0;
        tree->root.ns = 0;
        tree->root.instructions = 0;
    }
}

HostProfNode
HostProf::snapshot()
{
    Globals &g = globals();
    std::lock_guard<std::mutex> lock(g.mutex);
    HostProfNode root = g.retired;
    for (const ThreadTree *tree : g.active)
        mergeLive(root, tree->root);
    root.name = "host";
    liftToChildSum(root);
    // Roots never time themselves; defining the root's span as the
    // sum of its children keeps the child-sum invariant total.
    root.ns = root.childNs();
    return root;
}

std::vector<std::string>
HostProf::currentPath()
{
    std::vector<std::string> path;
    if (!enabled())
        return path;
    const ThreadTree &tree = threadTree();
    for (const LiveNode *n = tree.current; n->parent; n = n->parent)
        path.push_back(n->name);
    std::reverse(path.begin(), path.end());
    return path;
}

HostProfScope::HostProfScope(const char *name)
{
    if (!HostProf::enabled())
        return;
    ThreadTree &tree = threadTree();
    LiveNode *node = descend(tree.current, name);
    tree.current = node;
    node_ = node;
    startNs_ = nowNs();
}

HostProfScope::~HostProfScope()
{
    if (!node_)
        return;
    LiveNode *node = static_cast<LiveNode *>(node_);
    node->ns += nowNs() - startNs_;
    node->calls += 1;
    threadTree().current = node->parent;
}

HostProfPathAdopter::HostProfPathAdopter(
    const std::vector<std::string> &path)
{
    if (!HostProf::enabled() || path.empty())
        return;
    ThreadTree &tree = threadTree();
    for (const std::string &name : path)
        tree.current = descend(tree.current, name);
    depth_ = path.size();
}

HostProfPathAdopter::~HostProfPathAdopter()
{
    if (depth_ == 0)
        return;
    ThreadTree &tree = threadTree();
    for (std::size_t i = 0; i < depth_; ++i) {
        CSIM_ASSERT(tree.current->parent);
        tree.current = tree.current->parent;
    }
}

void
hostProfAddInstructions(std::uint64_t n)
{
    if (!HostProf::enabled())
        return;
    threadTree().current->instructions += n;
}

HostMemoryStats
sampleHostMemory()
{
    HostMemoryStats out;
#if defined(__linux__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0)
        out.peakRssBytes =
            static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;

    if (std::FILE *f = std::fopen("/proc/self/statm", "r")) {
        unsigned long long size = 0, resident = 0;
        if (std::fscanf(f, "%llu %llu", &size, &resident) == 2)
            out.currentRssBytes = static_cast<std::uint64_t>(resident) *
                static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
        std::fclose(f);
    }
#endif
#if defined(__GLIBC__) && __GLIBC_PREREQ(2, 33)
    const struct mallinfo2 mi = mallinfo2();
    out.heapBytes = static_cast<std::uint64_t>(mi.uordblks);
#endif

    static std::atomic<std::uint64_t> heap_high_water{0};
    std::uint64_t seen = heap_high_water.load(std::memory_order_relaxed);
    while (out.heapBytes > seen &&
           !heap_high_water.compare_exchange_weak(
               seen, out.heapBytes, std::memory_order_relaxed))
        ;
    out.heapHighWaterBytes =
        std::max(heap_high_water.load(std::memory_order_relaxed),
                 out.heapBytes);
    return out;
}

} // namespace csim
