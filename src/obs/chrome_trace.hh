/**
 * @file
 * Chrome trace-event export of interval-profiler series.
 *
 * Writes the JSON object format understood by chrome://tracing and
 * Perfetto: one process per profiled run (cell), one thread track per
 * cluster carrying a complete ("X") event per interval whose duration
 * is the interval's cycle span and whose args hold issue/occupancy
 * utilization, plus counter ("C") tracks for the CPI-stack components
 * and the predictor telemetry. Cycles are mapped 1:1 onto trace
 * microseconds, so the timeline ruler reads directly in cycles.
 *
 * The emitter writes its own JSON: src/obs sits below src/harness in
 * the link order, so the harness's JsonWriter is not reachable from
 * here (and the format is flat enough not to need it).
 */

#ifndef CSIM_OBS_CHROME_TRACE_HH
#define CSIM_OBS_CHROME_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/interval_profiler.hh"

namespace csim {

/**
 * One adaptive-manager decision as a timeline lane point. A plain
 * obs-layer mirror of the policy layer's decision record (obs sits
 * below policy in the link order, so the policy types are not
 * reachable from here).
 */
struct AdaptiveLanePoint
{
    /** First cycle of the interval the decision closed. */
    Cycle startCycle = 0;
    std::uint64_t cycles = 0;
    /** Phase-class name ("smooth", "memory", ...). */
    std::string phase;
    double stallThreshold = 0.0;
    std::uint64_t locLowCutoff = 0;
    /** Proactive pressure gate as a fraction of window capacity. */
    double pressure = 0.0;
    bool transitioned = false;
    bool reverted = false;
};

/** One run's series plus its display label ("gcc/4x2w/focused"). */
struct ChromeTraceRun
{
    std::string label;
    IntervalSeries series;
    /** Adaptive decision lane; empty when the run was static. */
    std::vector<AdaptiveLanePoint> adaptive;
};

/**
 * Write all runs into one trace: each run becomes a process (pid =
 * index + 1) named by its label. Emission is fully deterministic —
 * iteration order is the caller's run order, so byte-identical inputs
 * yield byte-identical traces.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<ChromeTraceRun> &runs);

/** Convenience wrapper: open `path` and write; panics on I/O failure. */
void writeChromeTraceFile(const std::string &path,
                          const std::vector<ChromeTraceRun> &runs);

} // namespace csim

#endif // CSIM_OBS_CHROME_TRACE_HH
