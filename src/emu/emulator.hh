/**
 * @file
 * Functional emulator: executes a Program and records the dynamic trace
 * the timing models consume.
 */

#ifndef CSIM_EMU_EMULATOR_HH
#define CSIM_EMU_EMULATOR_HH

#include <array>
#include <cstdint>

#include "emu/memory.hh"
#include "isa/program.hh"
#include "trace/trace.hh"

namespace csim {

/**
 * Interprets a finalized Program, producing a Trace of committed
 * (correct-path) instructions. Integer registers hold int64; floating
 * point registers hold doubles stored in a separate file. The PC of a
 * dynamic record is codeBase + 4 * static index, so static instruction
 * identity (used by the PC-indexed predictors) is the instruction
 * address.
 */
class Emulator
{
  public:
    explicit Emulator(const Program &prog);

    /** Pre-set an integer register before the run. */
    void setReg(RegIndex reg, std::int64_t value);

    /** Pre-set a memory word before the run. */
    void poke(Addr addr, std::int64_t value);

    /** Read a memory word after (or during) the run. */
    std::int64_t peek(Addr addr) const { return mem_.read(addr); }

    /** Read an integer register. */
    std::int64_t reg(RegIndex r) const { return intRegs_.at(r); }

    /**
     * Run until Halt or until maxInstrs dynamic instructions have
     * committed; Halt/Nop/trace bookkeeping do not enter the trace.
     * @return the committed trace (producers not yet linked).
     */
    Trace run(std::uint64_t maxInstrs);

    /**
     * Resumable slice of run(): append up to maxInstrs committed
     * records to `out` and suspend, preserving the PC and all
     * architectural state for the next chunk. Chunked execution
     * produces exactly the record sequence one big run() would.
     * @return records appended (less than maxInstrs only at Halt or
     * end of program, after which done() is true).
     */
    std::uint64_t runChunk(Trace &out, std::uint64_t maxInstrs);

    /** True once execution hit Halt or fell off the program. */
    bool done() const { return done_; }

    /** Base address of the code segment. */
    static constexpr Addr codeBase = 0x1000;

  private:
    std::int64_t readInt(RegIndex r) const;
    void writeInt(RegIndex r, std::int64_t v);
    double readFp(RegIndex r) const;
    void writeFp(RegIndex r, double v);

    const Program &prog_;
    SparseMemory mem_;
    std::array<std::int64_t, numIntRegs> intRegs_ = {};
    std::array<double, numFpRegs> fpRegs_ = {};
    /** Static index of the next instruction (resumable execution). */
    std::uint64_t pcIndex_ = 0;
    bool done_ = false;
};

} // namespace csim

#endif // CSIM_EMU_EMULATOR_HH
