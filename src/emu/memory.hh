/**
 * @file
 * Sparse 64-bit simulated memory for the functional emulator.
 *
 * Backed by 4KB pages allocated on demand; word-granular (8-byte)
 * accesses. Addresses need not be aligned; they are rounded down to the
 * containing word, which is all the mini-ISA requires.
 */

#ifndef CSIM_EMU_MEMORY_HH
#define CSIM_EMU_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace csim {

class SparseMemory
{
  public:
    /** Read the 8-byte word containing addr (zero if never written). */
    std::int64_t read(Addr addr) const;

    /** Write the 8-byte word containing addr. */
    void write(Addr addr, std::int64_t value);

    /** Number of pages currently allocated. */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    static constexpr Addr pageShift = 12;
    static constexpr std::size_t wordsPerPage =
        (std::size_t{1} << pageShift) / 8;

    struct Page
    {
        std::int64_t words[wordsPerPage] = {};
    };

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /** Last page touched: accesses cluster, so most lookups skip the
     *  hash probe. Never dangles — pages are allocated once and only
     *  freed with the whole map. */
    mutable Addr cachedPage_ = ~Addr{0};
    mutable Page *cachedPtr_ = nullptr;
};

} // namespace csim

#endif // CSIM_EMU_MEMORY_HH
