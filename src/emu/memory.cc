#include "emu/memory.hh"

namespace csim {

std::int64_t
SparseMemory::read(Addr addr) const
{
    const Addr page = addr >> pageShift;
    const std::size_t word =
        (addr >> 3) & (wordsPerPage - 1);
    if (page == cachedPage_ && cachedPtr_)
        return cachedPtr_->words[word];
    auto it = pages_.find(page);
    if (it == pages_.end())
        return 0;
    cachedPage_ = page;
    cachedPtr_ = it->second.get();
    return cachedPtr_->words[word];
}

void
SparseMemory::write(Addr addr, std::int64_t value)
{
    const Addr page = addr >> pageShift;
    const std::size_t word =
        (addr >> 3) & (wordsPerPage - 1);
    if (page == cachedPage_ && cachedPtr_) {
        cachedPtr_->words[word] = value;
        return;
    }
    auto &slot = pages_[page];
    if (!slot)
        slot = std::make_unique<Page>();
    cachedPage_ = page;
    cachedPtr_ = slot.get();
    cachedPtr_->words[word] = value;
}

} // namespace csim
