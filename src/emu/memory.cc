#include "emu/memory.hh"

namespace csim {

std::int64_t
SparseMemory::read(Addr addr) const
{
    const Addr page = addr >> pageShift;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return 0;
    const std::size_t word =
        (addr >> 3) & (wordsPerPage - 1);
    return it->second->words[word];
}

void
SparseMemory::write(Addr addr, std::int64_t value)
{
    const Addr page = addr >> pageShift;
    auto &slot = pages_[page];
    if (!slot)
        slot = std::make_unique<Page>();
    const std::size_t word =
        (addr >> 3) & (wordsPerPage - 1);
    slot->words[word] = value;
}

} // namespace csim
