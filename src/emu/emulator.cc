#include "emu/emulator.hh"

#include "common/logging.hh"

namespace csim {

Emulator::Emulator(const Program &prog)
    : prog_(prog)
{
    if (!prog.finalized())
        CSIM_FATAL("Emulator: program must be finalized");
}

void
Emulator::setReg(RegIndex reg, std::int64_t value)
{
    writeInt(reg, value);
}

void
Emulator::poke(Addr addr, std::int64_t value)
{
    mem_.write(addr, value);
}

std::int64_t
Emulator::readInt(RegIndex r) const
{
    CSIM_ASSERT(r < numIntRegs);
    return r == zeroReg ? 0 : intRegs_[r];
}

void
Emulator::writeInt(RegIndex r, std::int64_t v)
{
    CSIM_ASSERT(r < numIntRegs);
    if (r != zeroReg)
        intRegs_[r] = v;
}

double
Emulator::readFp(RegIndex r) const
{
    if (r >= numIntRegs)
        return fpRegs_[r - numIntRegs];
    return static_cast<double>(readInt(r));
}

void
Emulator::writeFp(RegIndex r, double v)
{
    if (r >= numIntRegs)
        fpRegs_[r - numIntRegs] = v;
    else
        writeInt(r, static_cast<std::int64_t>(v));
}

Trace
Emulator::run(std::uint64_t maxInstrs)
{
    Trace trace;
    runChunk(trace, maxInstrs);
    return trace;
}

std::uint64_t
Emulator::runChunk(Trace &out, std::uint64_t maxInstrs)
{
    std::uint64_t committed = 0;

    while (committed < maxInstrs && !done_) {
        if (pcIndex_ >= prog_.size()) {
            done_ = true;  // fell off the end of the program
            break;
        }
        const Instruction &inst = prog_.at(pcIndex_);
        if (inst.op == Opcode::Halt) {
            done_ = true;
            break;
        }

        TraceRecord rec;
        rec.pc = codeBase + 4 * pcIndex_;
        rec.op = inst.op;
        rec.cls = opClass(inst.op);
        rec.dest = inst.dest;
        rec.src1 = inst.src1;
        rec.src2 = inst.src2;
        rec.execLat = static_cast<std::uint8_t>(opLatency(inst.op));
        rec.isBranch = isBranch(inst.op);
        rec.isCondBranch = isCondBranch(inst.op);

        std::uint64_t next_pc = pcIndex_ + 1;

        switch (inst.op) {
          case Opcode::Add:
            writeInt(inst.dest, readInt(inst.src1) + readInt(inst.src2));
            break;
          case Opcode::Sub:
            writeInt(inst.dest, readInt(inst.src1) - readInt(inst.src2));
            break;
          case Opcode::And:
            writeInt(inst.dest, readInt(inst.src1) & readInt(inst.src2));
            break;
          case Opcode::Or:
            writeInt(inst.dest, readInt(inst.src1) | readInt(inst.src2));
            break;
          case Opcode::Xor:
            writeInt(inst.dest, readInt(inst.src1) ^ readInt(inst.src2));
            break;
          case Opcode::Sll:
            writeInt(inst.dest,
                     readInt(inst.src1) << (readInt(inst.src2) & 63));
            break;
          case Opcode::Srl:
            writeInt(inst.dest, static_cast<std::int64_t>(
                static_cast<std::uint64_t>(readInt(inst.src1)) >>
                (readInt(inst.src2) & 63)));
            break;
          case Opcode::Cmpeq:
            writeInt(inst.dest,
                     readInt(inst.src1) == readInt(inst.src2) ? 1 : 0);
            break;
          case Opcode::Cmplt:
            writeInt(inst.dest,
                     readInt(inst.src1) < readInt(inst.src2) ? 1 : 0);
            break;
          case Opcode::Cmple:
            writeInt(inst.dest,
                     readInt(inst.src1) <= readInt(inst.src2) ? 1 : 0);
            break;
          case Opcode::Mul:
            writeInt(inst.dest, readInt(inst.src1) * readInt(inst.src2));
            break;
          case Opcode::Addi:
            writeInt(inst.dest, readInt(inst.src1) + inst.imm);
            break;
          case Opcode::Lui:
            writeInt(inst.dest, inst.imm);
            break;
          case Opcode::Itof:
            writeFp(inst.dest,
                    static_cast<double>(readInt(inst.src1)));
            break;
          case Opcode::Fadd:
            writeFp(inst.dest, readFp(inst.src1) + readFp(inst.src2));
            break;
          case Opcode::Fmul:
            writeFp(inst.dest, readFp(inst.src1) * readFp(inst.src2));
            break;
          case Opcode::Fdiv: {
            double denom = readFp(inst.src2);
            writeFp(inst.dest,
                    denom == 0.0 ? 0.0 : readFp(inst.src1) / denom);
            break;
          }
          case Opcode::Fcmp:
            writeFp(inst.dest,
                    readFp(inst.src1) < readFp(inst.src2) ? 1.0 : 0.0);
            break;
          case Opcode::Ld: {
            Addr ea = static_cast<Addr>(
                readInt(inst.src1) + inst.imm);
            rec.memAddr = ea;
            writeInt(inst.dest, mem_.read(ea));
            break;
          }
          case Opcode::St: {
            Addr ea = static_cast<Addr>(
                readInt(inst.src1) + inst.imm);
            rec.memAddr = ea;
            mem_.write(ea, readInt(inst.src2));
            break;
          }
          case Opcode::Beq:
            rec.taken = readInt(inst.src1) == 0;
            if (rec.taken)
                next_pc = static_cast<std::uint64_t>(inst.imm);
            break;
          case Opcode::Bne:
            rec.taken = readInt(inst.src1) != 0;
            if (rec.taken)
                next_pc = static_cast<std::uint64_t>(inst.imm);
            break;
          case Opcode::Jmp:
            rec.taken = true;
            next_pc = static_cast<std::uint64_t>(inst.imm);
            break;
          case Opcode::Nop:
            break;
          default:
            CSIM_PANIC("Emulator: bad opcode");
        }

        out.append(rec);
        ++committed;
        pcIndex_ = next_pc;
    }

    return committed;
}

} // namespace csim
