/**
 * @file
 * Region splitting for the idealized list scheduler (paper Sec. 2.2,
 * footnote 2): the trace is divided at mispredicted branches — the
 * natural serialisation points of the critical path — and each region
 * is scheduled independently; summing the spans gives a conservative
 * estimate of total runtime. Regions are also capped at the ROB size,
 * since no machine can consider more instructions at once.
 */

#ifndef CSIM_LISTSCHED_REGION_HH
#define CSIM_LISTSCHED_REGION_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace csim {

struct Region
{
    std::uint64_t begin;
    std::uint64_t end;    // one past the last instruction
    /** Region ends with a mispredicted branch (a real split). */
    bool endsWithMispredict;
};

/**
 * Split [0, trace.size()) at mispredicted branches, capping region
 * length at max_length.
 */
std::vector<Region> splitRegions(const Trace &trace,
                                 std::uint64_t max_length = 256);

} // namespace csim

#endif // CSIM_LISTSCHED_REGION_HH
