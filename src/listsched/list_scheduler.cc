#include "listsched/list_scheduler.hh"

#include <algorithm>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "core/cluster.hh"

namespace csim {

namespace {

/** Priority bonus for the mispredicted branch's backward slice. */
constexpr std::int64_t sliceBonus = std::int64_t{1} << 20;

/** Per-cluster schedule grid: port usage per cycle from the region
 *  base. */
class ResourceGrid
{
  public:
    ResourceGrid(unsigned num_clusters, const ClusterPorts &ports)
        : ports_(ports), grid_(num_clusters)
    {}

    /** First cycle >= t where cluster c can issue an op of class cls. */
    Cycle
    findSlot(ClusterId c, Cycle t, Cycle base, OpClass cls)
    {
        auto &lane = grid_[c];
        while (true) {
            const std::size_t off = static_cast<std::size_t>(t - base);
            if (off >= lane.size())
                lane.resize(off + 64);
            Cluster::PortUse probe = lane[off];
            if (probe.claim(cls, ports_))
                return t;
            ++t;
        }
    }

    void
    claim(ClusterId c, Cycle t, Cycle base, OpClass cls)
    {
        auto &lane = grid_[c];
        const std::size_t off = static_cast<std::size_t>(t - base);
        CSIM_ASSERT(off < lane.size());
        const bool ok = lane[off].claim(cls, ports_);
        CSIM_ASSERT(ok);
    }

    void
    resetAll()
    {
        for (auto &lane : grid_)
            lane.clear();
    }

  private:
    ClusterPorts ports_;
    std::vector<std::vector<Cluster::PortUse>> grid_;
};

} // anonymous namespace

ListSchedResult
listSchedule(const Trace &trace,
             const std::vector<InstTiming> &ref_timing,
             const MachineConfig &config,
             const ListSchedOptions &options)
{
    const std::uint64_t n = trace.size();
    CSIM_ASSERT(ref_timing.size() == n);
    if (options.priority == ListSchedOptions::Priority::Loc)
        CSIM_ASSERT(options.locPred != nullptr);
    if (options.priority == ListSchedOptions::Priority::BinaryCritical)
        CSIM_ASSERT(options.critPred != nullptr);

    ListSchedResult result;
    result.instructions = n;
    if (n == 0)
        return result;

    const std::vector<Region> regions =
        splitRegions(trace, options.maxRegion);
    result.regions = regions.size();

    std::vector<Cycle> completion(n, 0);
    std::vector<ClusterId> cluster_of(n, 0);
    ResourceGrid grid(config.numClusters, config.cluster);

    Cycle clock = 0;
    Cycle makespan = 0;

    // Region-local scratch, sized once.
    std::vector<std::int64_t> prio;
    std::vector<std::int64_t> chain_best;
    std::vector<bool> on_slice;
    std::vector<unsigned> pending;
    std::vector<std::vector<std::uint32_t>> consumers;

    for (const Region &region : regions) {
        const std::uint64_t b = region.begin;
        const std::uint64_t e = region.end;
        const std::uint64_t m = e - b;

        prio.assign(m, 0);
        pending.assign(m, 0);
        consumers.assign(m, {});
        grid.resetAll();

        // Region-internal consumer lists and pending-producer counts.
        for (std::uint64_t i = b; i < e; ++i) {
            for (int slot = 0; slot < numSrcSlots; ++slot) {
                const InstId p = trace[i].prod[slot];
                if (p == invalidInstId || p < b)
                    continue;
                consumers[p - b].push_back(
                    static_cast<std::uint32_t>(i - b));
                ++pending[i - b];
            }
        }

        // Priorities.
        switch (options.priority) {
          case ListSchedOptions::Priority::DataflowHeight: {
            chain_best.assign(m, 0);
            on_slice.assign(m, false);
            if (region.endsWithMispredict)
                on_slice[m - 1] = true;
            for (std::uint64_t k = m; k-- > 0;) {
                const std::uint64_t i = b + k;
                const std::int64_t h =
                    trace[i].execLat + chain_best[k];
                prio[k] = h + (on_slice[k] ? sliceBonus : 0);
                for (int slot = 0; slot < numSrcSlots; ++slot) {
                    const InstId p = trace[i].prod[slot];
                    if (p == invalidInstId || p < b)
                        continue;
                    chain_best[p - b] =
                        std::max(chain_best[p - b], h);
                    if (on_slice[k])
                        on_slice[p - b] = true;
                }
            }
            break;
          }
          case ListSchedOptions::Priority::Loc:
            for (std::uint64_t k = 0; k < m; ++k)
                prio[k] = options.locPred->level(trace[b + k].pc);
            break;
          case ListSchedOptions::Priority::BinaryCritical:
            for (std::uint64_t k = 0; k < m; ++k)
                prio[k] = options.critPred->predict(trace[b + k].pc)
                    ? 1 : 0;
            break;
        }

        // Ready heap: highest priority first, then oldest.
        using HeapEntry = std::pair<std::int64_t, std::int64_t>;
        std::priority_queue<HeapEntry> ready;
        for (std::uint64_t k = 0; k < m; ++k)
            if (pending[k] == 0)
                ready.emplace(prio[k],
                              -static_cast<std::int64_t>(k));

        const Cycle disp_base = ref_timing[b].dispatch;
        std::unordered_set<std::uint64_t> delivered;

        std::uint64_t scheduled = 0;
        while (!ready.empty()) {
            const std::uint64_t k =
                static_cast<std::uint64_t>(-ready.top().second);
            ready.pop();
            const std::uint64_t i = b + k;
            const TraceRecord &rec = trace[i];

            // The fetch constraint: no earlier than the cycle the 1x8w
            // machine dispatched it, rebased to this region's start.
            const Cycle disp_rel =
                ref_timing[i].dispatch - disp_base;
            const Cycle fetch_floor = clock + disp_rel;

            Cycle best_completion = invalidCycle;
            Cycle best_start = 0;
            ClusterId best_cluster = 0;
            bool best_is_producer_cluster = false;

            for (unsigned cu = 0; cu < config.numClusters; ++cu) {
                const ClusterId c = static_cast<ClusterId>(cu);
                Cycle est = fetch_floor;
                bool producer_here = false;
                for (int slot = 0; slot < numSrcSlots; ++slot) {
                    const InstId p = rec.prod[slot];
                    if (p == invalidInstId)
                        continue;
                    Cycle avail = completion[p];
                    if (slot != srcSlotMem) {
                        if (cluster_of[p] != c)
                            avail += config.fwdLatency;
                        else
                            producer_here = true;
                    }
                    est = std::max(est, avail);
                }
                const Cycle t = grid.findSlot(c, est, clock, rec.cls);
                const Cycle done = t + rec.execLat;
                const bool better = done < best_completion ||
                    (done == best_completion && producer_here &&
                     !best_is_producer_cluster);
                if (better) {
                    best_completion = done;
                    best_start = t;
                    best_cluster = c;
                    best_is_producer_cluster = producer_here;
                }
            }

            grid.claim(best_cluster, best_start, clock, rec.cls);
            completion[i] = best_completion;
            cluster_of[i] = best_cluster;
            makespan = std::max(makespan, best_completion);
            ++scheduled;

            // Count cross-cluster value deliveries (deduplicated per
            // producer and destination cluster).
            for (int slot = srcSlot1; slot <= srcSlot2; ++slot) {
                const InstId p = rec.prod[slot];
                if (p == invalidInstId || cluster_of[p] == best_cluster)
                    continue;
                const std::uint64_t key =
                    (p << 4) | best_cluster;
                if (delivered.insert(key).second)
                    ++result.globalValues;
            }

            for (std::uint32_t ck : consumers[k]) {
                CSIM_ASSERT(pending[ck] > 0);
                if (--pending[ck] == 0)
                    ready.emplace(prio[ck],
                                  -static_cast<std::int64_t>(ck));
            }
        }
        CSIM_ASSERT(scheduled == m);

        // Advance the clock to the next region's start.
        if (region.endsWithMispredict) {
            clock = completion[e - 1] + 1 + config.frontendDepth;
        } else if (e < n) {
            // Artificial split: pure front-end pacing.
            clock += ref_timing[e].dispatch - disp_base;
        }
    }

    result.cycles = makespan + 1;
    return result;
}

} // namespace csim
