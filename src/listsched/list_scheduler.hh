/**
 * @file
 * The idealized list scheduler of paper Sec. 2.2.
 *
 * Performs steering and instruction scheduling in a single pass with a
 * global (monolithic) view of all in-flight instructions and exact
 * future knowledge within each region: instructions are prioritised by
 * the dataflow height emanating from them, with precedence for the
 * backward slice of the region-terminating mispredicted branch, and
 * placed so consumers collocate with producers when profitable. The
 * schedule honours the real machine's constraints: per-cluster issue
 * width and int/fp/mem ports, the inter-cluster forwarding latency,
 * the front-end dispatch times observed on the 1x8w machine, and the
 * branch-misprediction redirect latency between regions.
 *
 * Priority variants implement the Sec. 4 study: exact dataflow height
 * (the oracle), LoC (average past criticality) and binary criticality.
 */

#ifndef CSIM_LISTSCHED_LIST_SCHEDULER_HH
#define CSIM_LISTSCHED_LIST_SCHEDULER_HH

#include <cstdint>

#include "core/machine_config.hh"
#include "core/timing.hh"
#include "listsched/region.hh"
#include "predict/criticality_predictor.hh"
#include "predict/loc_predictor.hh"
#include "trace/trace.hh"

namespace csim {

struct ListSchedOptions
{
    enum class Priority
    {
        DataflowHeight,   ///< oracle: exact height + mispredict slice
        Loc,              ///< likelihood of criticality (Sec. 4)
        BinaryCritical,   ///< Fields-style binary criticality (Sec. 4)
    };

    Priority priority = Priority::DataflowHeight;
    /** Required for Priority::Loc. */
    const LocPredictor *locPred = nullptr;
    /** Required for Priority::BinaryCritical. */
    const CriticalityPredictor *critPred = nullptr;
    /** Maximum scheduling-scope length (ROB size). */
    std::uint64_t maxRegion = 256;
};

struct ListSchedResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t regions = 0;
    /** Values delivered across clusters (for the traffic stat). */
    std::uint64_t globalValues = 0;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
            static_cast<double>(instructions) : 0.0;
    }
};

/**
 * List-schedule the trace onto the given machine.
 *
 * @param trace Annotated, producer-linked trace.
 * @param ref_timing Per-instruction timing of a reference 1x8w run
 *        (supplies the dispatch/fetch constraints).
 * @param config Target machine geometry.
 */
ListSchedResult listSchedule(const Trace &trace,
                             const std::vector<InstTiming> &ref_timing,
                             const MachineConfig &config,
                             const ListSchedOptions &options =
                                 ListSchedOptions{});

} // namespace csim

#endif // CSIM_LISTSCHED_LIST_SCHEDULER_HH
