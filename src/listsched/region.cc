#include "listsched/region.hh"

#include "common/logging.hh"

namespace csim {

std::vector<Region>
splitRegions(const Trace &trace, std::uint64_t max_length)
{
    CSIM_ASSERT(max_length >= 1);
    std::vector<Region> regions;
    const std::uint64_t n = trace.size();
    std::uint64_t begin = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const bool mispred =
            trace[i].isCondBranch && trace[i].mispredicted;
        const bool full = (i + 1 - begin) >= max_length;
        if (mispred || full || i + 1 == n) {
            regions.push_back(Region{begin, i + 1, mispred});
            begin = i + 1;
        }
    }
    return regions;
}

} // namespace csim
