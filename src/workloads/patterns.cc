#include "workloads/patterns.hh"

#include <vector>

#include "common/logging.hh"

namespace csim {

void
fillRandom(Emulator &emu, const ArrayRegion &region, Rng &rng,
           std::int64_t lo, std::int64_t hi)
{
    CSIM_ASSERT(hi >= lo);
    for (std::uint64_t i = 0; i < region.words; ++i)
        emu.poke(region.wordAddr(i), rng.range(lo, hi));
}

void
fillPointerCycle(Emulator &emu, const ArrayRegion &region, Rng &rng)
{
    CSIM_ASSERT(region.words >= 2);
    // Sattolo's algorithm: a uniformly random single-cycle permutation.
    std::vector<std::uint64_t> perm(region.words);
    for (std::uint64_t i = 0; i < region.words; ++i)
        perm[i] = i;
    for (std::uint64_t i = region.words - 1; i >= 1; --i) {
        const std::uint64_t j = rng.below(i);
        std::swap(perm[i], perm[j]);
    }
    for (std::uint64_t i = 0; i < region.words; ++i) {
        emu.poke(region.wordAddr(i),
                 static_cast<std::int64_t>(region.wordAddr(perm[i])));
    }
}

void
fillRandomIndices(Emulator &emu, const ArrayRegion &region, Rng &rng,
                  std::uint64_t modulo)
{
    CSIM_ASSERT(modulo > 0);
    for (std::uint64_t i = 0; i < region.words; ++i) {
        emu.poke(region.wordAddr(i),
                 static_cast<std::int64_t>(rng.below(modulo)));
    }
}

} // namespace csim
