/**
 * @file
 * gap proxy (computational group theory).
 *
 * Arbitrary-precision-style arithmetic over word vectors: a serial
 * carry chain (the spine) with parallel per-limb work diverging off it,
 * and a predictable inner loop. One of the programs stall-over-steer
 * helps most (Sec. 7), so the spine must be clearly identifiable.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareGap(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x67617021ull + 29);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    const ArrayRegion vecA{0x100000, 2048};
    const ArrayRegion vecB{0x110000, 2048};
    const ArrayRegion vecC{0x120000, 2048};

    // r1: limb index  r2..r4: vector bases  r5: mask  r9: carry (spine)
    Label loop = p.newLabel();
    Label nocarry = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(5));
    p.sll(r(10), r(10), r(6));              // r6 = 3

    p.add(r(11), r(10), r(2));
    p.ld(r(12), r(11), 0);                  // a limb
    p.add(r(13), r(10), r(3));
    p.ld(r(14), r(13), 0);                  // b limb

    // spine: Horner-style accumulation — a serial multiply chain
    // across iterations, the clearly identifiable execute-critical
    // chain gap needs for stall-over-steer to matter (Sec. 7)
    p.mul(r(9), r(9), r(23));               // acc *= x   (critical)
    p.add(r(9), r(9), r(12));               // acc += limb (critical)

    // divergent per-limb work (parallel, off the spine)
    p.add(r(15), r(12), r(14));
    p.srl(r(16), r(15), r(7));              // r7 = 32
    p.and_(r(16), r(15), r(8));             // r8 = low mask
    p.mul(r(17), r(12), r(14));             // multiply tail
    p.xor_(r(18), r(17), r(16));
    p.add(r(19), r(10), r(4));
    p.st(r(16), r(19), 0);
    p.st(r(18), r(19), 8192);

    // rare data-dependent overflow guard (~0.4% of limbs): keeps the
    // trace seed-sensitive while staying predictable
    p.and_(r(21), r(15), r(22));            // r22 = 255
    p.beq(r(21), nocarry);
    p.addi(r(20), r(20), 1);
    p.bind(nocarry);
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(vecA.base));
    emu.setReg(r(3), static_cast<std::int64_t>(vecB.base));
    emu.setReg(r(4), static_cast<std::int64_t>(vecC.base));
    emu.setReg(r(5), static_cast<std::int64_t>(vecA.words - 1));
    emu.setReg(r(6), 3);
    emu.setReg(r(7), 32);
    emu.setReg(r(8), 0xffffffffll);
    emu.setReg(r(9), 1);
    emu.setReg(r(22), 255);
    emu.setReg(r(23), 3);                   // Horner x

    // Limbs below 2^31 so the carry is always zero: the carry *chain*
    // still serialises the dataflow, but the carry branch stays
    // predictable (gap's control flow is regular).
    fillRandom(emu, vecA, rng, 0, (1ll << 31) - 1);
    fillRandom(emu, vecB, rng, 0, (1ll << 31) - 1);

    return w;
}

Trace
buildGap(const WorkloadConfig &cfg)
{
    return prepareGap(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
