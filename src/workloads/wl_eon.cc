/**
 * @file
 * eon proxy (probabilistic ray tracer, the only C++ SPECint program).
 *
 * Floating-point flavoured integer benchmark: dot products and shading
 * accumulations with predictable control flow and decent ILP. Exercises
 * the per-cluster FP ports (eon is the reason each 1-wide cluster still
 * rounds up to one FP ALU, Table 1 footnote).
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareEon(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x656f6e21ull + 23);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;
    const auto f = Program::f;

    const ArrayRegion rays{0x100000, 3 * 1024};    // x,y,z triples

    // r1: ray index  r2: base  r4: mask
    Label loop = p.newLabel();
    Label miss = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(4));
    p.mul(r(11), r(10), r(5));              // r5 = 24 (triple stride)
    p.add(r(11), r(11), r(2));

    // load direction components and convert
    p.ld(r(12), r(11), 0);
    p.ld(r(13), r(11), 8);
    p.ld(r(14), r(11), 16);
    p.itof(f(1), r(12));
    p.itof(f(2), r(13));
    p.itof(f(3), r(14));

    // dot product with the normal (f4..f6) — parallel FP multiplies
    p.fmul(f(7), f(1), f(4));
    p.fmul(f(8), f(2), f(5));
    p.fmul(f(9), f(3), f(6));
    p.fadd(f(10), f(7), f(8));
    p.fadd(f(10), f(10), f(9));

    // facing test: predictable for coherent rays
    p.fcmp(r(15), r(16), r(12));            // int compare proxy
    p.beq(r(15), miss);
    // shade: reciprocal-ish divide then accumulate
    p.fdiv(f(11), f(12), f(10));
    p.fadd(f(13), f(13), f(11));
    p.bind(miss);
    p.add(r(17), r(17), r(12));             // integer bookkeeping
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(rays.base));
    emu.setReg(r(4), 1023);
    emu.setReg(r(5), 24);
    emu.setReg(r(16), 1);

    fillRandom(emu, rays, rng, 1, 255);

    return w;
}

Trace
buildEon(const WorkloadConfig &cfg)
{
    return prepareEon(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
