/**
 * @file
 * parser proxy (link grammar parser).
 *
 * Linked-list dictionary walks with data-dependent early exits — the
 * divergent early-exit loop of the paper's Fig. 12: two loop-carried
 * dependences (the list cursor and the trip counter) with per-element
 * comparisons diverging off both.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareParser(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x70617273ull + 37);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    // A 32KB dictionary: right at the L1 capacity, so the chase sees
    // occasional misses like the real benchmark's working set.
    const ArrayRegion list{0x100000, 4096};   // next pointers
    const ArrayRegion words{0x100000 + 8 * 4096, 4096}; // payload

    // Fig. 12 shape: for (i = 0; i < N; ++i) if (A[i] == a) break;
    // r1: cursor (addl-like loop-carried #1: pointer)
    // r2: trip counter (loop-carried #2)
    // r3: search key  r4: trip limit
    Label outer = p.newLabel();
    Label scan = p.newLabel();
    Label found = p.newLabel();

    p.bind(outer);
    p.addi(r(2), r(31), 0);                 // counter = 0
    p.and_(r(10), r(9), r(5));              // pick a start bucket
    p.sll(r(10), r(10), r(6));
    p.add(r(1), r(10), r(7));               // cursor = &list[bucket]

    p.bind(scan);
    p.addi(r(2), r(2), 1);                  // addl  (counter spine)
    p.ld(r(11), r(1), 8 * 4096);            // ldl   (payload)
    p.cmple(r(12), r(2), r(4));             // cmple (counter test)
    p.ld(r(1), r(1), 0);                    // lda-ish: cursor advance
    p.cmpeq(r(13), r(11), r(3));            // cmpeq (match test)
    // dictionary bookkeeping off the payload (parallel work per
    // element, as in the real parser's connector checks)
    p.and_(r(16), r(11), r(5));
    p.add(r(17), r(17), r(16));
    p.sll(r(18), r(11), r(6));
    p.xor_(r(19), r(19), r(18));
    p.add(r(21), r(21), r(11));
    p.bne(r(13), found);                    // bne: early exit (rare)
    p.bne(r(12), scan);                     // bne: loop back

    p.bind(found);
    p.add(r(9), r(9), r(11));               // evolve bucket choice
    p.add(r(14), r(14), r(2));              // stats
    p.jmp(outer);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(3), 7);                    // key: ~1/48 of payload
    emu.setReg(r(4), 20);                   // trip limit
    emu.setReg(r(5), static_cast<std::int64_t>(list.words - 1));
    emu.setReg(r(6), 3);
    emu.setReg(r(7), static_cast<std::int64_t>(list.base));
    emu.setReg(r(9), 1);

    fillPointerCycle(emu, list, rng);
    fillRandomIndices(emu, words, rng, 48);

    return w;
}

Trace
buildParser(const WorkloadConfig &cfg)
{
    return prepareParser(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
