/**
 * @file
 * Workload registry: name -> builder, plus the standard preparation
 * pipeline (producer linking, branch annotation, cache annotation)
 * every consumer of a trace needs.
 */

#ifndef CSIM_WORKLOADS_REGISTRY_HH
#define CSIM_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "workloads/workload.hh"

namespace csim {

/** The 12 SPECint 2000 proxies, in the paper's plotting order. */
const std::vector<std::string> &workloadNames();

/** Builder for a named workload; fatals on an unknown name. */
WorkloadBuilder workloadBuilder(const std::string &name);

/** Build the raw (unannotated) trace for a named workload. */
Trace buildWorkloadTrace(const std::string &name,
                         const WorkloadConfig &cfg);

/**
 * Build a simulation-ready trace: emulate, link producers, annotate
 * branch mispredictions (gshare) and load latencies (L1 model).
 */
Trace buildAnnotatedTrace(const std::string &name,
                          const WorkloadConfig &cfg,
                          const MemoryModelConfig &mem =
                              MemoryModelConfig{},
                          unsigned gshare_bits = 16);

/**
 * Build an annotated trace into immutable shared storage. This is the
 * form the harness TraceCache hands to concurrently running experiment
 * cells: every consumer downstream of the annotation passes takes
 * `const Trace &`, so one build can back any number of cells.
 */
std::shared_ptr<const Trace>
buildSharedAnnotatedTrace(const std::string &name,
                          const WorkloadConfig &cfg,
                          const MemoryModelConfig &mem =
                              MemoryModelConfig{},
                          unsigned gshare_bits = 16);

} // namespace csim

#endif // CSIM_WORKLOADS_REGISTRY_HH
