/**
 * @file
 * Workload registry: name -> builder, plus the standard preparation
 * pipeline (producer linking, branch annotation, cache annotation)
 * every consumer of a trace needs.
 */

#ifndef CSIM_WORKLOADS_REGISTRY_HH
#define CSIM_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "workloads/workload.hh"

namespace csim {

/** The 12 SPECint 2000 proxies, in the paper's plotting order. */
const std::vector<std::string> &workloadNames();

/** Builder for a named workload; fatals on an unknown name. */
WorkloadBuilder workloadBuilder(const std::string &name);

/** Paused-at-entry preparer for a named workload (streaming builds);
 *  fatals on an unknown name. */
WorkloadPreparer workloadPreparer(const std::string &name);

/** Build the raw (unannotated) trace for a named workload. */
Trace buildWorkloadTrace(const std::string &name,
                         const WorkloadConfig &cfg);

/**
 * Build a simulation-ready trace: emulate, link producers, annotate
 * branch mispredictions (gshare) and load latencies (L1 model).
 */
Trace buildAnnotatedTrace(const std::string &name,
                          const WorkloadConfig &cfg,
                          const MemoryModelConfig &mem =
                              MemoryModelConfig{},
                          unsigned gshare_bits = 16);

/**
 * Build an annotated trace into immutable shared storage. This is the
 * form the harness TraceCache hands to concurrently running experiment
 * cells: every consumer downstream of the annotation passes takes
 * `const Trace &`, so one build can back any number of cells.
 */
std::shared_ptr<const Trace>
buildSharedAnnotatedTrace(const std::string &name,
                          const WorkloadConfig &cfg,
                          const MemoryModelConfig &mem =
                              MemoryModelConfig{},
                          unsigned gshare_bits = 16);

/** Outcome of a streaming store build. */
struct TraceStoreBuildResult
{
    bool ok = false;
    /** Dynamic instructions written (may stop short at Halt). */
    std::uint64_t instructions = 0;
};

/**
 * Stream-build the annotated trace for a named workload directly into
 * a v2 trace store file: emulate, link producers and annotate in
 * bounded chunks, appending each chunk's columns to the store — peak
 * host memory is O(chunkInstructions), not O(targetInstructions).
 * Because every pass (linking, gshare, L1) carries its state across
 * chunks, the stored trace is byte-identical to what
 * buildAnnotatedTrace would produce with the same arguments.
 */
TraceStoreBuildResult
buildTraceStoreFile(const std::string &name, const WorkloadConfig &cfg,
                    const std::string &path,
                    std::uint64_t chunkInstructions = 1u << 16,
                    const MemoryModelConfig &mem = MemoryModelConfig{},
                    unsigned gshare_bits = 16);

} // namespace csim

#endif // CSIM_WORKLOADS_REGISTRY_HH
