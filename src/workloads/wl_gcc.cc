/**
 * @file
 * gcc proxy (compiler).
 *
 * Branchy and statically large: a dispatch loop reads "IR nodes" and
 * branches through a tree of opcode tests into one of many small
 * handler blocks, each with its own short dependence chains, loads and
 * stores. Generated programmatically so the static footprint (and thus
 * predictor pressure) is an order of magnitude larger than the other
 * proxies — gcc's defining feature.
 */

#include "workloads/workload.hh"

#include <vector>

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareGcc(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x67636321ull + 31);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    constexpr int numHandlers = 24;
    const ArrayRegion ir{0x100000, 4096};     // opcode stream
    const ArrayRegion operands{0x110000, 4096};
    const ArrayRegion output{0x120000, 4096};

    // r1: node index  r2: ir base  r3: operand base  r4: out base
    // r5: mask  r6: shift(3)
    Label loop = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(5));
    p.sll(r(10), r(10), r(6));
    p.add(r(11), r(10), r(2));
    p.ld(r(12), r(11), 0);                  // opcode

    // binary dispatch tree over the opcode (log2(24) levels of
    // data-dependent branches)
    std::vector<Label> handlers;
    handlers.reserve(numHandlers);
    for (int h = 0; h < numHandlers; ++h)
        handlers.push_back(p.newLabel());

    // Compare-and-branch chain: each test peels off one handler. The
    // stream is random, so the early tests are taken ~1/24 of the
    // time and train to weakly biased counters — gcc-like behaviour.
    for (int h = 0; h < numHandlers - 1; ++h) {
        p.addi(r(13), r(12), -h);
        p.beq(r(13), handlers[h]);
    }
    p.jmp(handlers[numHandlers - 1]);

    Label join = p.newLabel();
    for (int h = 0; h < numHandlers; ++h) {
        p.bind(handlers[h]);
        // Small handler body with distinct constants: load an
        // operand, transform, store a result.
        p.add(r(14), r(10), r(3));
        p.ld(r(15), r(14), 8 * (h % 7));
        p.addi(r(16), r(15), 3 * h + 1);
        if (h % 3 == 0) {
            p.sll(r(17), r(16), r(7));      // r7 = 1
            p.add(r(18), r(17), r(16));
        } else if (h % 3 == 1) {
            p.xor_(r(18), r(16), r(12));
        } else {
            p.sub(r(18), r(16), r(12));
            p.and_(r(18), r(18), r(5));
        }
        p.add(r(19), r(10), r(4));
        p.st(r(18), r(19), 0);
        p.add(r(20), r(20), r(18));         // running checksum
        p.jmp(join);
    }

    p.bind(join);
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(ir.base));
    emu.setReg(r(3), static_cast<std::int64_t>(operands.base));
    emu.setReg(r(4), static_cast<std::int64_t>(output.base));
    emu.setReg(r(5), static_cast<std::int64_t>(ir.words - 1));
    emu.setReg(r(6), 3);
    emu.setReg(r(7), 1);

    // Geometric opcode mix with run correlation: real IR streams are
    // dominated by a few node kinds AND arrive in runs (a block of
    // loads, a block of arithmetic), which the global-history
    // predictor exploits. Without the runs every dispatch test is a
    // coin flip and the proxy mispredicts far more than gcc does.
    std::int64_t last_op = 0;
    for (std::uint64_t i = 0; i < ir.words; ++i) {
        if (rng.below(100) < 14) {
            std::int64_t op = 0;
            while (op < numHandlers - 1 && rng.below(100) < 38)
                ++op;
            last_op = op;
        }
        emu.poke(ir.wordAddr(i), last_op);
    }
    fillRandom(emu, operands, rng, 0, 1 << 16);

    return w;
}

Trace
buildGcc(const WorkloadConfig &cfg)
{
    return prepareGcc(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
