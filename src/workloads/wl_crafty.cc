/**
 * @file
 * crafty proxy (chess).
 *
 * Bitboard manipulation: wide logical operations (and/or/xor/shift)
 * over 64-bit boards with convergent dataflow — move generation
 * combines several independently computed attack masks into one board
 * that a data-dependent branch tests. The paper groups crafty with
 * bzip2 as convergence-limited (Sec. 2.2).
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareCrafty(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x63726166ull + 19);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    const ArrayRegion boards{0x100000, 1024};
    const ArrayRegion attacks{0x110000, 1024};

    // r1: ply index  r2: boards base  r3: attacks base  r4: mask
    Label loop = p.newLabel();
    Label quiet = p.newLabel();
    Label nocap = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(4));
    p.sll(r(10), r(10), r(5));              // r5 = 3

    // two independent mask computations (convergent chains)
    p.add(r(11), r(10), r(2));
    p.ld(r(12), r(11), 0);                  // own pieces
    p.srl(r(13), r(12), r(6));              // r6 = 1
    p.xor_(r(14), r(13), r(12));            // file fill

    p.add(r(15), r(10), r(3));
    p.ld(r(16), r(15), 0);                  // enemy attacks
    p.sll(r(17), r(16), r(6));
    p.or_(r(18), r(17), r(16));

    p.and_(r(19), r(14), r(18));            // convergence: capture set
    p.and_(r(25), r(19), r(26));            // low bits of the board
    p.beq(r(25), quiet);                    // taken ~1/8: ~10% mispred

    // capture path: update both boards
    p.xor_(r(12), r(12), r(19));
    p.st(r(12), r(11), 0);
    p.and_(r(20), r(19), r(16));
    p.beq(r(20), nocap);
    p.xor_(r(16), r(16), r(20));
    p.st(r(16), r(15), 0);
    p.bind(nocap);

    p.bind(quiet);
    // evaluation tail: popcount-ish fold of the capture set
    p.srl(r(21), r(19), r(7));              // r7 = 2
    p.add(r(22), r(21), r(19));
    p.and_(r(23), r(22), r(8));             // r8 = 0x3333...
    p.add(r(24), r(24), r(23));             // running eval
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(boards.base));
    emu.setReg(r(3), static_cast<std::int64_t>(attacks.base));
    emu.setReg(r(4), static_cast<std::int64_t>(boards.words - 1));
    emu.setReg(r(5), 3);
    emu.setReg(r(6), 1);
    emu.setReg(r(7), 2);
    emu.setReg(r(8), 0x3333333333333333ll);
    emu.setReg(r(26), 7);

    fillRandom(emu, boards, rng, 0, (1ll << 31));
    fillRandom(emu, attacks, rng, 0, (1ll << 31));

    return w;
}

Trace
buildCrafty(const WorkloadConfig &cfg)
{
    return prepareCrafty(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
