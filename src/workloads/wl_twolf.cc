/**
 * @file
 * twolf proxy (standard-cell placement, simulated annealing).
 *
 * Cost-delta evaluation hammocks on the critical path: a cell's
 * position feeds two independent cost chains (old cost / new cost)
 * that reconverge at the accept/reject comparison — the dataflow
 * hammock the paper says limits proactive load-balancing on twolf
 * (Sec. 7). The accept branch is data-dependent.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareTwolf(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x74776f6cull + 43);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    const ArrayRegion cells{0x100000, 2048};
    const ArrayRegion nets{0x110000, 2048};

    // r1: move counter  r2: cells base  r3: nets base  r4: mask
    Label loop = p.newLabel();
    Label reject = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(4));
    p.sll(r(10), r(10), r(5));              // r5 = 3
    p.add(r(11), r(10), r(2));
    p.ld(r(12), r(11), 0);                  // cell position (hammock
                                            // source)

    // chain 1: old wirelength cost
    p.add(r(13), r(10), r(3));
    p.ld(r(14), r(13), 0);                  // net span
    p.sub(r(15), r(12), r(14));
    p.and_(r(15), r(15), r(4));
    p.add(r(16), r(15), r(14));

    // chain 2: new cost after the proposed swap
    p.addi(r(17), r(12), 64);               // proposed position
    p.and_(r(17), r(17), r(4));
    p.sub(r(18), r(17), r(14));
    p.and_(r(18), r(18), r(4));
    p.add(r(19), r(18), r(17));

    // reconvergence: accept if the move improves the cost by enough
    // (late-anneal temperature: ~15% acceptance)
    p.sub(r(26), r(16), r(25));             // old cost - margin
    p.cmplt(r(20), r(19), r(26));           // dyadic consumer
    p.beq(r(20), reject);                   // taken ~85%, learnable

    // accept: commit the move
    p.st(r(17), r(11), 0);
    p.add(r(21), r(21), r(19));
    p.sub(r(22), r(16), r(19));
    p.add(r(23), r(23), r(22));             // delta accumulator

    p.bind(reject);
    p.add(r(24), r(24), r(16));             // cost bookkeeping
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(cells.base));
    emu.setReg(r(3), static_cast<std::int64_t>(nets.base));
    emu.setReg(r(4), static_cast<std::int64_t>(cells.words - 1));
    emu.setReg(r(5), 3);
    emu.setReg(r(25), 1400);                // acceptance margin

    fillRandom(emu, cells, rng, 0, 2047);
    fillRandom(emu, nets, rng, 0, 2047);

    return w;
}

Trace
buildTwolf(const WorkloadConfig &cfg)
{
    return prepareTwolf(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
