/**
 * @file
 * vpr proxy (FPGA place & route).
 *
 * The paper's running example (Figs. 7, 10): a "spine and ribs" loop.
 * The dominant spine computes a loop-carried heap index through a chain
 * of dependent integer ops; ribs periodically diverge from the spine,
 * load placement costs, evaluate a dataflow hammock (one value feeding
 * two chains that reconverge at a dyadic op) and terminate in stores
 * and a hard-to-predict branch. Instructions on the rib and on the
 * spine both consume the same source register, recreating the a/b
 * contention scenario of Sec. 4.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareVpr(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x76707221ull + 7);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    const ArrayRegion heap{0x100000, 2048};
    const ArrayRegion cost{0x120000, 2048};

    // r1: spine index  r2: heap base  r3: cost base  r4: mask
    // r5: threshold    r6: step       r31: zero
    Label loop = p.newLabel();
    Label skip = p.newLabel();
    Label skip2 = p.newLabel();

    p.bind(loop);
    // --- spine: get_heap_head()-like loop-carried chain ---
    p.add(r(1), r(1), r(6));        // b: spine advance (critical)
    p.and_(r(10), r(1), r(4));      // spine-dependent index
    p.sll(r(11), r(10), r(7));      // byte offset (r7 = 3)
    p.add(r(12), r(11), r(2));      // heap address

    // --- rib 1: consume the spine value; ends in a mispredicting
    //     branch (both this and the spine consume r1's value) ---
    p.ld(r(13), r(12), 0);          // heap entry
    p.cmplt(r(14), r(13), r(5));    // data-dependent test
    p.bne(r(14), skip);             // a: hard to predict

    // hammock: r13 feeds two chains that reconverge
    p.add(r(15), r(13), r(6));
    p.sll(r(16), r(15), r(7));
    p.sub(r(17), r(13), r(5));
    p.and_(r(18), r(17), r(4));
    p.xor_(r(19), r(16), r(18));    // convergence
    p.add(r(20), r(11), r(3));
    p.st(r(19), r(20), 0);          // cost update

    p.bind(skip);
    // --- rib 2: second cost load, predictable test ---
    p.ld(r(21), r(20), 8);
    p.cmplt(r(22), r(21), r(31));
    p.bne(r(22), skip2);            // almost never taken
    p.add(r(23), r(21), r(13));
    p.st(r(23), r(20), 8);
    p.bind(skip2);

    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(1), 0);
    emu.setReg(r(2), static_cast<std::int64_t>(heap.base));
    emu.setReg(r(3), static_cast<std::int64_t>(cost.base));
    emu.setReg(r(4), static_cast<std::int64_t>(heap.words - 1));
    emu.setReg(r(5), 130);          // ~13% taken given data in [0,1000]
    emu.setReg(r(6), 1);
    emu.setReg(r(7), 3);
    emu.setReg(r(20), static_cast<std::int64_t>(cost.base));

    fillRandom(emu, heap, rng, 0, 1000);
    fillRandom(emu, cost, rng, 0, 1 << 20);

    return w;
}

Trace
buildVpr(const WorkloadConfig &cfg)
{
    return prepareVpr(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
