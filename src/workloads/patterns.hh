/**
 * @file
 * Shared helpers for building workload proxies: seeded memory
 * initialisation patterns used by several benchmarks.
 */

#ifndef CSIM_WORKLOADS_PATTERNS_HH
#define CSIM_WORKLOADS_PATTERNS_HH

#include <cstdint>

#include "common/rng.hh"
#include "emu/emulator.hh"

namespace csim {

/** A contiguous region of 8-byte words in simulated memory. */
struct ArrayRegion
{
    Addr base;
    std::uint64_t words;

    Addr wordAddr(std::uint64_t i) const { return base + 8 * i; }
};

/** Fill a region with uniform random values in [lo, hi]. */
void fillRandom(Emulator &emu, const ArrayRegion &region, Rng &rng,
                std::int64_t lo, std::int64_t hi);

/**
 * Fill a region with a random single-cycle permutation of its own word
 * *addresses*: region[i] holds the address of the next element. Used
 * for pointer-chasing proxies (mcf, parser); a single cycle guarantees
 * the chase visits every element.
 */
void fillPointerCycle(Emulator &emu, const ArrayRegion &region,
                      Rng &rng);

/**
 * Fill a region with random word *indices* into [0, modulo). Used for
 * data-dependent indexing (hash chains, permutation tables).
 */
void fillRandomIndices(Emulator &emu, const ArrayRegion &region,
                       Rng &rng, std::uint64_t modulo);

} // namespace csim

#endif // CSIM_WORKLOADS_PATTERNS_HH
