#include "workloads/micro.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

namespace {
const auto r = Program::r;
} // anonymous namespace

Trace
buildMicroSerialChain(const WorkloadConfig &cfg)
{
    Program p;
    Label loop = p.newLabel();
    p.bind(loop);
    // Unrolled body keeps the branch overhead negligible.
    for (int i = 0; i < 32; ++i)
        p.addi(r(1), r(1), 1);
    p.jmp(loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    return emu.run(cfg.targetInstructions);
}

Trace
buildMicroConvergent(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x33 + 1);
    Program p;

    const ArrayRegion tblA{0x100000, 512};
    const ArrayRegion tblB{0x110000, 512};
    const ArrayRegion tblC{0x120000, 512};
    const ArrayRegion tblD{0x130000, 512};

    Label loop = p.newLabel();
    Label skip = p.newLabel();
    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(6));      // r6 = mask
    p.sll(r(10), r(10), r(7));      // r7 = 3

    // chain 1: ld; ld              (nodes 1,3,5 of Fig. 3)
    p.add(r(11), r(10), r(2));
    p.ld(r(12), r(11), 0);
    p.sll(r(13), r(12), r(7));
    p.add(r(13), r(13), r(3));
    p.ld(r(14), r(13), 0);

    // chain 2: ld; ld              (nodes 2,4,6)
    p.add(r(15), r(10), r(4));
    p.ld(r(16), r(15), 0);
    p.sll(r(17), r(16), r(7));
    p.add(r(17), r(17), r(5));
    p.ld(r(18), r(17), 0);

    p.xor_(r(19), r(14), r(18));    // node 7
    p.beq(r(19), skip);             // node 8 (br*)
    p.addi(r(20), r(20), 1);
    p.bind(skip);
    p.jmp(loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    emu.setReg(r(2), static_cast<std::int64_t>(tblA.base));
    emu.setReg(r(3), static_cast<std::int64_t>(tblB.base));
    emu.setReg(r(4), static_cast<std::int64_t>(tblC.base));
    emu.setReg(r(5), static_cast<std::int64_t>(tblD.base));
    emu.setReg(r(6), static_cast<std::int64_t>(tblA.words - 1));
    emu.setReg(r(7), 3);
    fillRandomIndices(emu, tblA, rng, tblB.words);
    fillRandomIndices(emu, tblB, rng, 8);
    fillRandomIndices(emu, tblC, rng, tblD.words);
    fillRandomIndices(emu, tblD, rng, 8);
    return emu.run(cfg.targetInstructions);
}

Trace
buildMicroSpineRibs(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x35 + 3);
    Program p;
    const ArrayRegion heap{0x100000, 1024};

    Label loop = p.newLabel();
    Label skip = p.newLabel();
    p.bind(loop);
    // spine: 2-deep loop-carried chain (A-B-C-D of Fig. 10)
    p.add(r(1), r(1), r(6));
    p.and_(r(1), r(1), r(4));
    // rib: load and a data-dependent branch off the spine
    p.sll(r(10), r(1), r(7));
    p.add(r(10), r(10), r(2));
    p.ld(r(11), r(10), 0);
    p.cmplt(r(12), r(11), r(5));
    p.bne(r(12), skip);             // the mispredicting rib branch
    p.add(r(13), r(11), r(6));
    p.st(r(13), r(10), 0);
    p.bind(skip);
    p.jmp(loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    emu.setReg(r(2), static_cast<std::int64_t>(heap.base));
    emu.setReg(r(4), static_cast<std::int64_t>(heap.words - 1));
    emu.setReg(r(5), 130);
    emu.setReg(r(6), 1);
    emu.setReg(r(7), 3);
    fillRandom(emu, heap, rng, 0, 1000);
    return emu.run(cfg.targetInstructions);
}

Trace
buildMicroEarlyExit(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x37 + 5);
    Program p;
    const ArrayRegion arr{0x100000, 64};

    Label outer = p.newLabel();
    Label scan = p.newLabel();
    Label found = p.newLabel();

    p.bind(outer);
    p.addi(r(4), r(31), 0);
    p.addi(r(2), r(6), 0);
    p.add(r(0), r(0), r(5));
    p.and_(r(0), r(0), r(7));

    p.bind(scan);
    p.addi(r(4), r(4), 1);          // addl
    p.ld(r(9), r(2), 0);            // ldl
    p.cmple(r(3), r(4), r(5));      // cmple
    p.addi(r(2), r(2), 8);          // lda: the critical consumer,
                                    // last in fetch order (Fig. 13)
    p.cmpeq(r(8), r(9), r(0));      // cmpeq
    p.bne(r(8), found);             // bne (early exit)
    p.bne(r(3), scan);              // bne (loop)

    p.bind(found);
    p.jmp(outer);
    p.halt();
    p.finalize();

    Emulator emu(p);
    emu.setReg(r(5), 64);
    emu.setReg(r(6), static_cast<std::int64_t>(arr.base));
    emu.setReg(r(7), 127);
    fillRandomIndices(emu, arr, rng, 128);
    return emu.run(cfg.targetInstructions);
}

Trace
buildMicroWideIlp(const WorkloadConfig &cfg, unsigned chains)
{
    CSIM_ASSERT(chains >= 1 && chains <= 24);
    Program p;
    Label loop = p.newLabel();
    p.bind(loop);
    for (int round = 0; round < 4; ++round)
        for (unsigned c = 0; c < chains; ++c)
            p.addi(r(1 + static_cast<int>(c)),
                   r(1 + static_cast<int>(c)), 1);
    p.jmp(loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    return emu.run(cfg.targetInstructions);
}

} // namespace csim
