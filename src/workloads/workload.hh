/**
 * @file
 * Workload interface: each SPECint 2000 proxy is a function that builds
 * a Program in the mini-ISA, initialises simulated memory with seeded
 * random data, executes functionally and returns the raw dynamic trace.
 *
 * The proxies are not the SPEC sources; they are small programs that
 * reproduce the dataflow motifs the paper attributes to each benchmark
 * (convergent dataflow, spine-and-ribs, hammocks, divergent trees,
 * pointer chasing, hash chains). See DESIGN.md for the substitution
 * argument.
 */

#ifndef CSIM_WORKLOADS_WORKLOAD_HH
#define CSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>

#include "emu/emulator.hh"
#include "isa/program.hh"
#include "trace/trace.hh"

namespace csim {

struct WorkloadConfig
{
    /** Dynamic instructions to trace (the emulator stops here). */
    std::uint64_t targetInstructions = 100000;
    /** Seed for the workload's data (the paper averages 3 samples). */
    std::uint64_t seed = 1;
};

using WorkloadBuilder = Trace (*)(const WorkloadConfig &);

/**
 * A workload paused at its entry point: program built, memory and
 * registers seeded, nothing executed yet. The streaming trace build
 * pulls the dynamic stream from here in bounded chunks
 * (Emulator::runChunk) instead of materializing it in one run() —
 * each buildX() is exactly prepareX() followed by a full run.
 */
struct PreparedWorkload
{
    std::unique_ptr<Program> program;
    /** References *program; keep both together. */
    std::unique_ptr<Emulator> emulator;
};

using WorkloadPreparer = PreparedWorkload (*)(const WorkloadConfig &);

// One builder (and its paused prepare form) per SPECint 2000 proxy.
Trace buildBzip2(const WorkloadConfig &cfg);
Trace buildCrafty(const WorkloadConfig &cfg);
Trace buildEon(const WorkloadConfig &cfg);
Trace buildGap(const WorkloadConfig &cfg);
Trace buildGcc(const WorkloadConfig &cfg);
Trace buildGzip(const WorkloadConfig &cfg);
Trace buildMcf(const WorkloadConfig &cfg);
Trace buildParser(const WorkloadConfig &cfg);
Trace buildPerl(const WorkloadConfig &cfg);
Trace buildTwolf(const WorkloadConfig &cfg);
Trace buildVortex(const WorkloadConfig &cfg);
Trace buildVpr(const WorkloadConfig &cfg);

PreparedWorkload prepareBzip2(const WorkloadConfig &cfg);
PreparedWorkload prepareCrafty(const WorkloadConfig &cfg);
PreparedWorkload prepareEon(const WorkloadConfig &cfg);
PreparedWorkload prepareGap(const WorkloadConfig &cfg);
PreparedWorkload prepareGcc(const WorkloadConfig &cfg);
PreparedWorkload prepareGzip(const WorkloadConfig &cfg);
PreparedWorkload prepareMcf(const WorkloadConfig &cfg);
PreparedWorkload prepareParser(const WorkloadConfig &cfg);
PreparedWorkload preparePerl(const WorkloadConfig &cfg);
PreparedWorkload prepareTwolf(const WorkloadConfig &cfg);
PreparedWorkload prepareVortex(const WorkloadConfig &cfg);
PreparedWorkload prepareVpr(const WorkloadConfig &cfg);

} // namespace csim

#endif // CSIM_WORKLOADS_WORKLOAD_HH
