/**
 * @file
 * gzip proxy (LZ77 compression).
 *
 * Dominated by hash-chain following in longest_match(): a long serial
 * chain of dependent loads with comparisons, i.e. an execute-critical,
 * low-ILP region — the shape for which the paper's stall-over-steer
 * policy buys its 20% speedup (Sec. 5, Sec. 7). The proxy follows a
 * pre-built chain table, comparing window bytes, with an early-exit
 * branch, then a short bookkeeping tail.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareGzip(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x677a6970ull + 13);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    const ArrayRegion chain{0x100000, 2048};  // next-pointer table
    const ArrayRegion window{0x120000, 2048}; // "window" bytes

    // r1: cursor (address)  r2: window base  r3: match target
    // r4: mask  r5: depth counter  r6: depth limit
    Label outer = p.newLabel();
    Label follow = p.newLabel();
    Label matched = p.newLabel();

    p.bind(outer);
    // restart the chase from a data-dependent head
    p.and_(r(10), r(7), r(4));
    p.sll(r(10), r(10), r(8));              // r8 = 3
    p.add(r(1), r(10), r(9));               // r9 = chain base
    p.addi(r(5), r(31), 0);                 // depth = 0

    p.bind(follow);
    // the serial spine: pointer-chase through the hash chain
    p.ld(r(1), r(1), 0);                    // cursor = chain[cursor]
    // compare window byte at this position against the target
    p.and_(r(11), r(1), r(4));
    p.sll(r(12), r(11), r(8));
    p.add(r(12), r(12), r(2));
    p.ld(r(13), r(12), 0);
    p.cmpeq(r(14), r(13), r(3));
    p.bne(r(14), matched);                  // early exit, rare
    p.addi(r(5), r(5), 1);
    p.cmplt(r(15), r(5), r(6));
    p.bne(r(15), follow);                   // mostly taken (chase on)

    p.bind(matched);
    // bookkeeping tail; evolve the head for the next chase
    p.add(r(7), r(7), r(13));
    p.addi(r(7), r(7), 17);
    p.jmp(outer);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(window.base));
    emu.setReg(r(3), 3);                    // match value (rare in data)
    emu.setReg(r(4), static_cast<std::int64_t>(chain.words - 1));
    emu.setReg(r(6), 24);                   // max chase depth
    emu.setReg(r(7), 1);
    emu.setReg(r(8), 3);
    emu.setReg(r(9), static_cast<std::int64_t>(chain.base));

    fillPointerCycle(emu, chain, rng);
    fillRandomIndices(emu, window, rng, 64); // value 3 hits ~1.6%

    return w;
}

Trace
buildGzip(const WorkloadConfig &cfg)
{
    return prepareGzip(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
