#include "workloads/registry.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "frontend/gshare.hh"
#include "obs/host_prof.hh"
#include "trace/trace_store.hh"

namespace csim {

namespace {

struct Entry
{
    const char *name;
    WorkloadBuilder builder;
    WorkloadPreparer preparer;
};

constexpr Entry entries[] = {
    {"bzip2", buildBzip2, prepareBzip2},
    {"crafty", buildCrafty, prepareCrafty},
    {"eon", buildEon, prepareEon},
    {"gap", buildGap, prepareGap},
    {"gcc", buildGcc, prepareGcc},
    {"gzip", buildGzip, prepareGzip},
    {"mcf", buildMcf, prepareMcf},
    {"parser", buildParser, prepareParser},
    {"perl", buildPerl, preparePerl},
    {"twolf", buildTwolf, prepareTwolf},
    {"vortex", buildVortex, prepareVortex},
    {"vpr", buildVpr, prepareVpr},
};

} // anonymous namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Entry &e : entries)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

WorkloadBuilder
workloadBuilder(const std::string &name)
{
    for (const Entry &e : entries)
        if (name == e.name)
            return e.builder;
    CSIM_FATAL("unknown workload name");
}

WorkloadPreparer
workloadPreparer(const std::string &name)
{
    for (const Entry &e : entries)
        if (name == e.name)
            return e.preparer;
    CSIM_FATAL("unknown workload name");
}

Trace
buildWorkloadTrace(const std::string &name, const WorkloadConfig &cfg)
{
    return workloadBuilder(name)(cfg);
}

Trace
buildAnnotatedTrace(const std::string &name, const WorkloadConfig &cfg,
                    const MemoryModelConfig &mem, unsigned gshare_bits)
{
    HOST_PROF_SCOPE("trace.build");
    Trace trace = [&] {
        HOST_PROF_SCOPE("trace.emulate");
        return buildWorkloadTrace(name, cfg);
    }();
    {
        HOST_PROF_SCOPE("trace.linkProducers");
        trace.linkProducers();
    }
    {
        HOST_PROF_SCOPE("trace.annotateBranches");
        annotateBranches(trace, gshare_bits);
    }
    {
        HOST_PROF_SCOPE("trace.annotateMemory");
        annotateMemory(trace, mem);
    }
    HOST_PROF_INSTRUCTIONS(trace.size());
    return trace;
}

std::shared_ptr<const Trace>
buildSharedAnnotatedTrace(const std::string &name,
                          const WorkloadConfig &cfg,
                          const MemoryModelConfig &mem,
                          unsigned gshare_bits)
{
    return std::make_shared<const Trace>(
        buildAnnotatedTrace(name, cfg, mem, gshare_bits));
}

TraceStoreBuildResult
buildTraceStoreFile(const std::string &name, const WorkloadConfig &cfg,
                    const std::string &path,
                    std::uint64_t chunkInstructions,
                    const MemoryModelConfig &mem, unsigned gshare_bits)
{
    HOST_PROF_SCOPE("trace.buildStore");
    CSIM_ASSERT(chunkInstructions > 0);

    PreparedWorkload w = workloadPreparer(name)(cfg);
    TraceStoreWriter writer(path, cfg.targetInstructions);

    // Each pass's state lives across chunks, so chunked annotation
    // replays the monolithic passes exactly (see buildAnnotatedTrace).
    StreamingProducerLinker linker;
    GsharePredictor pred(gshare_bits);
    Cache l1(mem.l1);

    TraceStoreBuildResult res;
    while (res.instructions < cfg.targetInstructions &&
           !w.emulator->done()) {
        const std::uint64_t want =
            std::min(chunkInstructions,
                     cfg.targetInstructions - res.instructions);
        Trace chunk;
        if (w.emulator->runChunk(chunk, want) == 0)
            break;
        linker.link(chunk, res.instructions);
        annotateBranches(chunk, pred);
        annotateMemory(chunk, l1, mem);
        if (!writer.append(chunk))
            return res;
        res.instructions += chunk.size();
    }
    if (!writer.finalize())
        return res;
    HOST_PROF_INSTRUCTIONS(res.instructions);
    res.ok = true;
    return res;
}

} // namespace csim
