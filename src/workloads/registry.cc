#include "workloads/registry.hh"

#include <utility>

#include "common/logging.hh"
#include "obs/host_prof.hh"

namespace csim {

namespace {

struct Entry
{
    const char *name;
    WorkloadBuilder builder;
};

constexpr Entry entries[] = {
    {"bzip2", buildBzip2},
    {"crafty", buildCrafty},
    {"eon", buildEon},
    {"gap", buildGap},
    {"gcc", buildGcc},
    {"gzip", buildGzip},
    {"mcf", buildMcf},
    {"parser", buildParser},
    {"perl", buildPerl},
    {"twolf", buildTwolf},
    {"vortex", buildVortex},
    {"vpr", buildVpr},
};

} // anonymous namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Entry &e : entries)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

WorkloadBuilder
workloadBuilder(const std::string &name)
{
    for (const Entry &e : entries)
        if (name == e.name)
            return e.builder;
    CSIM_FATAL("unknown workload name");
}

Trace
buildWorkloadTrace(const std::string &name, const WorkloadConfig &cfg)
{
    return workloadBuilder(name)(cfg);
}

Trace
buildAnnotatedTrace(const std::string &name, const WorkloadConfig &cfg,
                    const MemoryModelConfig &mem, unsigned gshare_bits)
{
    HOST_PROF_SCOPE("trace.build");
    Trace trace = [&] {
        HOST_PROF_SCOPE("trace.emulate");
        return buildWorkloadTrace(name, cfg);
    }();
    {
        HOST_PROF_SCOPE("trace.linkProducers");
        trace.linkProducers();
    }
    {
        HOST_PROF_SCOPE("trace.annotateBranches");
        annotateBranches(trace, gshare_bits);
    }
    {
        HOST_PROF_SCOPE("trace.annotateMemory");
        annotateMemory(trace, mem);
    }
    HOST_PROF_INSTRUCTIONS(trace.size());
    return trace;
}

std::shared_ptr<const Trace>
buildSharedAnnotatedTrace(const std::string &name,
                          const WorkloadConfig &cfg,
                          const MemoryModelConfig &mem,
                          unsigned gshare_bits)
{
    return std::make_shared<const Trace>(
        buildAnnotatedTrace(name, cfg, mem, gshare_bits));
}

} // namespace csim
