/**
 * @file
 * bzip2 proxy (Burrows-Wheeler compression).
 *
 * The paper singles bzip2 out for *convergent dataflow* (Fig. 3): two
 * independent chains of dependent loads whose values reconverge at a
 * dyadic op (xor) feeding a mispredicted branch. The proxy's inner loop
 * is exactly that shape — two 2-deep load chains through permutation
 * tables, xor-compared, branching on the (random) result — plus a
 * Huffman-style bit-packing tail of shifts and ors.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareBzip2(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x627a6970ull + 11);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    const ArrayRegion tblA{0x100000, 1024};  // index tables
    const ArrayRegion tblB{0x110000, 1024};
    const ArrayRegion tblC{0x120000, 1024};
    const ArrayRegion tblD{0x130000, 1024};
    const ArrayRegion out{0x140000, 4096};

    // r1: i   r2..r5: table bases   r6: mask   r7: shift(3)
    // r8: out base   r9: bit accumulator
    Label loop = p.newLabel();
    Label noswap = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(6));
    p.sll(r(10), r(10), r(7));

    // chain 1: A[i] then B[A[i]]            (1, 3, 5 of Fig. 3)
    p.add(r(11), r(10), r(2));
    p.ld(r(12), r(11), 0);
    p.sll(r(13), r(12), r(7));
    p.add(r(13), r(13), r(3));
    p.ld(r(14), r(13), 0);                  // dependent load

    // chain 2: C[i] then D[C[i]]            (2, 4, 6 of Fig. 3)
    p.add(r(15), r(10), r(4));
    p.ld(r(16), r(15), 0);
    p.sll(r(17), r(16), r(7));
    p.add(r(17), r(17), r(5));
    p.ld(r(18), r(17), 0);                  // dependent load

    // convergence at a dyadic op feeding a mispredicting branch
    p.xor_(r(19), r(14), r(18));            // 7 (xor) of Fig. 3
    p.beq(r(19), noswap);                   // 8 (br*): data random

    // taken path: Huffman-ish bit packing (short serial chain)
    p.sll(r(9), r(9), r(20));               // r20 = 2
    p.or_(r(9), r(9), r(12));
    p.add(r(21), r(10), r(8));
    p.st(r(9), r(21), 0);

    p.bind(noswap);
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(1), 0);
    emu.setReg(r(2), static_cast<std::int64_t>(tblA.base));
    emu.setReg(r(3), static_cast<std::int64_t>(tblB.base));
    emu.setReg(r(4), static_cast<std::int64_t>(tblC.base));
    emu.setReg(r(5), static_cast<std::int64_t>(tblD.base));
    emu.setReg(r(6), static_cast<std::int64_t>(tblA.words - 1));
    emu.setReg(r(7), 3);
    emu.setReg(r(8), static_cast<std::int64_t>(out.base));
    emu.setReg(r(20), 2);

    fillRandomIndices(emu, tblA, rng, tblB.words);
    // B and D hold small values; the two chains collide (xor == 0)
    // about 1 time in 8, giving the convergence branch a SPEC-like
    // ~10% misprediction rate rather than a pure coin flip.
    fillRandomIndices(emu, tblB, rng, 8);
    fillRandomIndices(emu, tblC, rng, tblD.words);
    fillRandomIndices(emu, tblD, rng, 8);

    return w;
}

Trace
buildBzip2(const WorkloadConfig &cfg)
{
    return prepareBzip2(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
