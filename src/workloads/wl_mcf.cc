/**
 * @file
 * mcf proxy (network simplex / minimum cost flow).
 *
 * The memory-bound pointer chaser of SPECint: node traversal over a
 * working set far larger than the L1, so the critical path is
 * dominated by load misses. The proxy chases a random cycle through a
 * 1M-word region (8MB against a 32KB L1), accumulating node fields and
 * taking a data-dependent branch on the node's "potential".
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareMcf(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x6d636621ull + 17);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    // 2^17 nodes of 4 words each = 4MB: far beyond the 32KB L1.
    const std::uint64_t nodes = std::uint64_t{1} << 17;
    const ArrayRegion next{0x1000000, nodes};        // next pointers
    // Node payload interleaved at next-pointer address + big offset.
    const std::int64_t payload_off = 8 * 1024 * 1024;

    // r1: node cursor (address)   r2: accumulator  r3: threshold
    Label loop = p.newLabel();
    Label cheap = p.newLabel();

    p.bind(loop);
    p.ld(r(1), r(1), 0);                    // chase: node = node->next
    p.ld(r(10), r(1), payload_off);         // cost field (also misses)
    p.add(r(2), r(2), r(10));               // accumulate flow cost
    p.cmplt(r(11), r(10), r(3));
    p.bne(r(11), cheap);                    // data-dependent
    p.sub(r(2), r(2), r(12));               // price out
    p.sll(r(13), r(10), r(14));
    p.add(r(2), r(2), r(13));
    p.bind(cheap);
    p.addi(r(15), r(15), 1);                // iteration count
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(1), static_cast<std::int64_t>(next.base));
    emu.setReg(r(3), 8);                    // taken ~12.5%: mostly
                                            // predictable (mcf is
                                            // memory- not branch-bound)
    emu.setReg(r(12), 5);
    emu.setReg(r(14), 1);

    fillPointerCycle(emu, next, rng);
    // Payload region: random costs in [0, 64).
    const ArrayRegion payload{next.base +
        static_cast<Addr>(payload_off), nodes};
    fillRandomIndices(emu, payload, rng, 64);

    return w;
}

Trace
buildMcf(const WorkloadConfig &cfg)
{
    return prepareMcf(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
