/**
 * @file
 * perl proxy (interpreter).
 *
 * A bytecode dispatch loop: fetch an op from a bytecode stream, branch
 * on its class (hard to predict: the stream is data), run a short
 * handler that reads/writes an operand stack. Interpreter dispatch is
 * SPECint's classic mispredict generator.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
preparePerl(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x7065726cull + 41);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    const ArrayRegion bytecode{0x100000, 4096};
    const ArrayRegion stack{0x110000, 1024};
    const ArrayRegion scalars{0x120000, 1024};

    // r1: pc index  r2: bytecode base  r3: stack ptr (word index)
    // r4: mask  r8: scalars base
    Label loop = p.newLabel();
    Label op_add = p.newLabel();
    Label op_load = p.newLabel();
    Label op_store = p.newLabel();
    Label join = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(4));
    p.sll(r(10), r(10), r(5));              // r5 = 3
    p.add(r(11), r(10), r(2));
    p.ld(r(12), r(11), 0);                  // opcode (random 0..3)

    p.addi(r(13), r(12), -1);
    p.beq(r(13), op_add);                   // 25%: mispredicts
    p.addi(r(13), r(12), -2);
    p.beq(r(13), op_load);
    p.addi(r(13), r(12), -3);
    p.beq(r(13), op_store);

    // default: arithmetic on top of stack in-place
    p.and_(r(14), r(3), r(6));              // r6 = stack mask
    p.sll(r(14), r(14), r(5));
    p.add(r(14), r(14), r(7));              // r7 = stack base
    p.ld(r(15), r(14), 0);
    p.addi(r(15), r(15), 1);
    p.st(r(15), r(14), 0);
    p.jmp(join);

    p.bind(op_add);                         // pop two, push sum
    p.and_(r(14), r(3), r(6));
    p.sll(r(14), r(14), r(5));
    p.add(r(14), r(14), r(7));
    p.ld(r(15), r(14), 0);
    p.ld(r(16), r(14), 8);
    p.add(r(17), r(15), r(16));
    p.st(r(17), r(14), 0);
    p.addi(r(3), r(3), -1);
    p.jmp(join);

    p.bind(op_load);                        // push a scalar
    p.and_(r(18), r(12), r(6));
    p.sll(r(18), r(18), r(5));
    p.add(r(18), r(18), r(8));
    p.ld(r(19), r(18), 0);
    p.addi(r(3), r(3), 1);
    p.and_(r(14), r(3), r(6));
    p.sll(r(14), r(14), r(5));
    p.add(r(14), r(14), r(7));
    p.st(r(19), r(14), 0);
    p.jmp(join);

    p.bind(op_store);                       // pop into a scalar
    p.and_(r(14), r(3), r(6));
    p.sll(r(14), r(14), r(5));
    p.add(r(14), r(14), r(7));
    p.ld(r(20), r(14), 0);
    p.and_(r(21), r(20), r(6));
    p.sll(r(21), r(21), r(5));
    p.add(r(21), r(21), r(8));
    p.st(r(20), r(21), 0);
    p.addi(r(3), r(3), -1);
    p.jmp(join);

    p.bind(join);
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(bytecode.base));
    emu.setReg(r(3), 64);                   // stack depth cursor
    emu.setReg(r(4), static_cast<std::int64_t>(bytecode.words - 1));
    emu.setReg(r(5), 3);
    emu.setReg(r(6), static_cast<std::int64_t>(stack.words - 1));
    emu.setReg(r(7), static_cast<std::int64_t>(stack.base));
    emu.setReg(r(8), static_cast<std::int64_t>(scalars.base));

    // Skewed opcode mix (real interpreters are dominated by a few
    // ops): arithmetic 82%, add 8%, load 6%, store 4%. The dispatch
    // tree mispredicts on the minority ops.
    for (std::uint64_t i = 0; i < bytecode.words; ++i) {
        const std::uint64_t roll = rng.below(100);
        std::int64_t op = 0;
        if (roll >= 96)
            op = 3;
        else if (roll >= 90)
            op = 2;
        else if (roll >= 82)
            op = 1;
        emu.poke(bytecode.wordAddr(i), op);
    }
    fillRandomIndices(emu, scalars, rng, 256);
    fillRandomIndices(emu, stack, rng, 256);

    return w;
}

Trace
buildPerl(const WorkloadConfig &cfg)
{
    return preparePerl(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
