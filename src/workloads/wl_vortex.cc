/**
 * @file
 * vortex proxy (object-oriented database).
 *
 * High-ILP, predictably-branched record manipulation: fetch an object
 * header, touch several independent fields (wide parallel loads),
 * update and write them back. Vortex clusters well in the paper —
 * plenty of independent work to spread — so the proxy emphasises
 * breadth over chain depth.
 */

#include "workloads/workload.hh"

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/program.hh"
#include "workloads/patterns.hh"

namespace csim {

PreparedWorkload
prepareVortex(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed * 0x766f7274ull + 47);
    PreparedWorkload w;
    w.program = std::make_unique<Program>();
    Program &p = *w.program;
    const auto r = Program::r;

    // Objects of 8 fields; 256 objects = 16KB (mostly L1 resident).
    const ArrayRegion objects{0x100000, 2048};

    // r1: object index  r2: base  r4: mask(255)  r5: shift(6: 64B obj)
    Label loop = p.newLabel();
    Label nomark = p.newLabel();

    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.and_(r(10), r(1), r(4));
    p.sll(r(10), r(10), r(5));
    p.add(r(11), r(10), r(2));              // object base address

    // wide independent field reads
    p.ld(r(12), r(11), 0);
    p.ld(r(13), r(11), 8);
    p.ld(r(14), r(11), 16);
    p.ld(r(15), r(11), 24);

    // independent field updates (parallel chains)
    p.addi(r(16), r(12), 1);
    p.xor_(r(17), r(13), r(12));
    p.add(r(18), r(14), r(13));
    p.srl(r(19), r(15), r(6));              // r6 = 1

    p.st(r(16), r(11), 0);
    p.st(r(17), r(11), 8);
    p.st(r(18), r(11), 16);
    p.st(r(19), r(11), 24);

    // a rare data-dependent consistency check (~1.6% of objects),
    // keeping vortex branchy-but-predictable
    p.and_(r(21), r(12), r(7));             // r7 = 63
    p.bne(r(21), nomark);
    p.add(r(20), r(20), r(16));
    p.bind(nomark);
    p.jmp(loop);
    p.halt();
    p.finalize();

    w.emulator = std::make_unique<Emulator>(p);
    Emulator &emu = *w.emulator;
    emu.setReg(r(2), static_cast<std::int64_t>(objects.base));
    emu.setReg(r(4), 255);
    emu.setReg(r(5), 6);
    emu.setReg(r(6), 1);
    emu.setReg(r(7), 63);

    fillRandom(emu, objects, rng, 1, 1 << 16);

    return w;
}

Trace
buildVortex(const WorkloadConfig &cfg)
{
    return prepareVortex(cfg).emulator->run(cfg.targetInstructions);
}

} // namespace csim
