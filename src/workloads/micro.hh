/**
 * @file
 * Micro-kernels reproducing the paper's illustrative code examples:
 *
 *  - Fig. 3: convergent dataflow from bzip2 — two independent
 *    load-chains reconverging at a dyadic op feeding a branch.
 *  - Fig. 9: a single chain of dependent adds — the canonical
 *    execute-critical program that load-balance steering smears
 *    across every cluster.
 *  - Fig. 7/10: a spine-and-ribs loop with a mispredicting rib.
 *  - Fig. 12: the early-exit search loop whose most critical consumer
 *    (the loop-carried update) is last in fetch order.
 *  - A parametric wide-ILP kernel (independent chains).
 *
 * These are tiny, fully-controlled programs used by
 * bench_paper_examples and the tests to demonstrate each policy
 * mechanism on exactly the dataflow shape the paper draws.
 */

#ifndef CSIM_WORKLOADS_MICRO_HH
#define CSIM_WORKLOADS_MICRO_HH

#include "workloads/workload.hh"

namespace csim {

/** Fig. 9: one dependent add chain (execute-critical, ILP 1). */
Trace buildMicroSerialChain(const WorkloadConfig &cfg);

/** Fig. 3: two 2-deep load chains converging at xor -> branch. */
Trace buildMicroConvergent(const WorkloadConfig &cfg);

/** Fig. 7/10: spine-and-ribs with a hard-to-predict rib branch. */
Trace buildMicroSpineRibs(const WorkloadConfig &cfg);

/** Fig. 12: early-exit linear search, two loop-carried deps. */
Trace buildMicroEarlyExit(const WorkloadConfig &cfg);

/** `chains` independent add chains: available ILP == chains. */
Trace buildMicroWideIlp(const WorkloadConfig &cfg, unsigned chains);

} // namespace csim

#endif // CSIM_WORKLOADS_MICRO_HH
