#include "harness/json_report.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/trace_cache.hh"
#include "obs/chrome_trace.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_prof.hh"
#include "obs/run_ledger.hh"

namespace csim {

JsonWriter::JsonWriter(std::ostream &out)
    : out_(out)
{
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            out_ << ',';
        hasElement_.back() = true;
    }
}

void
JsonWriter::writeEscaped(const std::string &s)
{
    out_ << '"';
    for (char c : s) {
        switch (c) {
          case '"': out_ << "\\\""; break;
          case '\\': out_ << "\\\\"; break;
          case '\n': out_ << "\\n"; break;
          case '\t': out_ << "\\t"; break;
          case '\r': out_ << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out_ << buf;
            } else {
                out_ << c;
            }
        }
    }
    out_ << '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ << '{';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    CSIM_ASSERT(!hasElement_.empty() && !pendingKey_);
    hasElement_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ << '[';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    CSIM_ASSERT(!hasElement_.empty() && !pendingKey_);
    hasElement_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    CSIM_ASSERT(!pendingKey_);
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            out_ << ',';
        hasElement_.back() = true;
    }
    writeEscaped(name);
    out_ << ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    writeEscaped(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        out_ << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    beforeValue();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ << "null";
    return *this;
}

void
writeStatValue(JsonWriter &w, const StatValue &v)
{
    if (v.kind != StatKind::Distribution) {
        w.value(v.value);
        return;
    }
    w.beginObject();
    w.key("lo").value(v.lo);
    w.key("hi").value(v.hi);
    w.key("total").value(v.value);
    w.key("buckets").beginArray();
    for (std::uint64_t b : v.buckets)
        w.value(b);
    w.endArray();
    w.endObject();
}

void
writeSnapshot(JsonWriter &w, const StatsSnapshot &snap)
{
    w.beginObject();
    for (const auto &[name, val] : snap.entries()) {
        w.key(name);
        writeStatValue(w, val);
    }
    w.endObject();
}

namespace {

[[noreturn]] void
usage(const std::string &benchmark, const char *bad_arg)
{
    std::fprintf(stderr,
                 "usage: %s [--json <path>] [--instructions N] "
                 "[--seeds a,b,c] [--threads N] [--check]\n"
                 "       [--profile] [--profile-interval N] "
                 "[--adaptive] [--adaptive-interval N]\n"
                 "       [--trace-out <path>] [--ledger-out <path>] "
                 "[--heartbeat-ms N]\n"
                 "       [--stats-filter p1,p2]\n"
                 "       [--legacy-step] [--regions K] "
                 "[--region-len N] [--warmup N]\n",
                 benchmark.c_str());
    if (bad_arg)
        CSIM_FATAL_F("%s: unknown or incomplete argument '%s'",
                     benchmark.c_str(), bad_arg);
    std::exit(0);
}

std::vector<std::uint64_t>
parseSeedList(const std::string &benchmark, const std::string &arg)
{
    std::vector<std::uint64_t> seeds;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        std::size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        const std::string tok = arg.substr(pos, comma - pos);
        char *end = nullptr;
        const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (tok.empty() || end == nullptr || *end != '\0')
            CSIM_FATAL_F("%s: bad --seeds entry '%s'",
                         benchmark.c_str(), tok.c_str());
        seeds.push_back(v);
        pos = comma + 1;
    }
    return seeds;
}

/**
 * Fatal unless `path` can be created and written right now: an output
 * flag pointing into a missing or read-only directory must fail at
 * startup, not after the sweep has run for minutes (same strictness
 * contract as parseThreadCount). The probe opens in append mode so an
 * existing file's contents survive the check.
 */
void
validateWritablePath(const std::string &benchmark, const char *flag,
                     const std::string &path)
{
    std::ofstream probe(path, std::ios::app);
    if (!probe)
        CSIM_FATAL_F("%s: %s path '%s' is not writable",
                     benchmark.c_str(), flag, path.c_str());
}

std::vector<std::string>
parsePrefixList(const std::string &arg)
{
    std::vector<std::string> prefixes;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        std::size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        const std::string tok = arg.substr(pos, comma - pos);
        if (!tok.empty())
            prefixes.push_back(tok);
        pos = comma + 1;
    }
    return prefixes;
}

} // anonymous namespace

BenchContext::BenchContext(std::string benchmark, int argc, char **argv)
    : benchmark_(std::move(benchmark)),
      start_(std::chrono::steady_clock::now())
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(benchmark_, arg.c_str());
            return argv[++i];
        };
        if (arg == "--json") {
            jsonPath_ = next();
        } else if (arg == "--instructions") {
            const std::string v = next();
            char *end = nullptr;
            instructions_ = std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || instructions_ == 0)
                CSIM_FATAL_F("%s: bad --instructions '%s'",
                             benchmark_.c_str(), v.c_str());
        } else if (arg == "--threads") {
            threadsArg_ = parseThreadCount(next(), "--threads");
        } else if (arg == "--seeds") {
            seeds_ = parseSeedList(benchmark_, next());
        } else if (arg == "--check") {
            check_ = true;
        } else if (arg == "--legacy-step") {
            legacyStep_ = true;
        } else if (arg == "--profile") {
            profile_ = true;
        } else if (arg == "--profile-interval") {
            const std::string v = next();
            char *end = nullptr;
            profileInterval_ = std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || profileInterval_ == 0)
                CSIM_FATAL_F("%s: bad --profile-interval '%s'",
                             benchmark_.c_str(), v.c_str());
            profile_ = true;
        } else if (arg == "--adaptive") {
            adaptive_ = true;
        } else if (arg == "--adaptive-interval") {
            const std::string v = next();
            char *end = nullptr;
            adaptiveInterval_ = std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || adaptiveInterval_ == 0)
                CSIM_FATAL_F("%s: bad --adaptive-interval '%s'",
                             benchmark_.c_str(), v.c_str());
            adaptive_ = true;
        } else if (arg == "--trace-out") {
            traceOutPath_ = next();
            profile_ = true;
        } else if (arg == "--ledger-out") {
            ledgerPath_ = next();
        } else if (arg == "--heartbeat-ms") {
            const std::string v = next();
            char *end = nullptr;
            const unsigned long long ms =
                std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || ms == 0 ||
                ms > 3600u * 1000u)
                CSIM_FATAL_F("%s: bad --heartbeat-ms '%s'",
                             benchmark_.c_str(), v.c_str());
            heartbeatMs_ = static_cast<unsigned>(ms);
        } else if (arg == "--stats-filter") {
            statsFilter_ = parsePrefixList(next());
        } else if (arg == "--regions") {
            const std::string v = next();
            char *end = nullptr;
            const unsigned long long k =
                std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || k == 0 || k > 1u << 20)
                CSIM_FATAL_F("%s: bad --regions '%s'",
                             benchmark_.c_str(), v.c_str());
            regions_ = static_cast<unsigned>(k);
        } else if (arg == "--region-len") {
            const std::string v = next();
            char *end = nullptr;
            regionLen_ = std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || regionLen_ == 0)
                CSIM_FATAL_F("%s: bad --region-len '%s'",
                             benchmark_.c_str(), v.c_str());
        } else if (arg == "--warmup") {
            const std::string v = next();
            char *end = nullptr;
            warmup_ = std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || warmup_ == 0)
                CSIM_FATAL_F("%s: bad --warmup '%s'",
                             benchmark_.c_str(), v.c_str());
        } else if (arg == "--help" || arg == "-h") {
            usage(benchmark_, nullptr);
        } else {
            usage(benchmark_, arg.c_str());
        }
    }
    if (statsFilter_.empty()) {
        if (const char *env = std::getenv("CSIM_STATS_FILTER"))
            statsFilter_ = parsePrefixList(env);
    }
    if (regions_ != 0 && regionLen_ == 0)
        CSIM_FATAL_F("%s: --regions requires --region-len",
                     benchmark_.c_str());

    // Strict env handling: a malformed CSIM_LOG is fatal, never a
    // silent fall-back to the default level.
    initLogLevelFromEnv();

    // Output paths must fail now, not after the sweep has run.
    cmdline_ = replayCommandLine(argc, argv);
    if (!traceOutPath_.empty())
        validateWritablePath(benchmark_, "--trace-out", traceOutPath_);
    if (!ledgerPath_.empty()) {
        validateWritablePath(benchmark_, "--ledger-out", ledgerPath_);
        ledger_ = std::make_unique<RunLedger>(
            ledgerPath_, benchmark_, collectProvenance(cmdline_));
        ledger_->startHeartbeat(heartbeatMs_);
        // Crashes dump the last ledger events, each worker's sim
        // context and the replay command to stderr and to a .crash
        // file CI uploads as an artifact.
        FlightRecorder::install(cmdline_, ledgerPath_ + ".crash");
    }
}

BenchContext::~BenchContext() = default;

unsigned
BenchContext::threads() const
{
    return threadsArg_ ? threadsArg_ : SweepRunner::defaultThreads();
}

TraceCache &
BenchContext::traceCache()
{
    if (!cache_)
        cache_ = std::make_unique<TraceCache>();
    return *cache_;
}

SweepRunner &
BenchContext::runner()
{
    if (!runner_) {
        runner_ =
            std::make_unique<SweepRunner>(threads(), &traceCache());
        runner_->setLedger(ledger_.get());
    }
    return *runner_;
}

void
BenchContext::apply(ExperimentConfig &cfg) const
{
    if (instructions_ != 0)
        cfg.instructions = instructions_;
    if (!seeds_.empty())
        cfg.seeds = seeds_;
    if (check_) {
        cfg.verify.checker = true;
        cfg.verify.oracle = true;
    }
    if (legacyStep_)
        cfg.simOptions.legacyStep = true;
    if (profile_) {
        cfg.profile.enabled = true;
        if (profileInterval_ != 0)
            cfg.profile.intervalCycles = profileInterval_;
    }
    if (adaptive_) {
        cfg.adaptive.enabled = true;
        if (adaptiveInterval_ != 0)
            cfg.adaptive.intervalCycles = adaptiveInterval_;
    }
    if (regions_ != 0) {
        cfg.regions = regions_;
        cfg.regionLen = regionLen_;
        cfg.regionWarmup = warmup_;
    } else if (warmup_ != 0) {
        // Phase-based warmup on the full trace: one discarded warmup
        // window followed by a to-trace-end measured phase. Replaces
        // the legacy full-pass warmupRuns (see runPolicy).
        cfg.simOptions.phases = {
            PhaseSpec{"warmup", warmup_, true},
            PhaseSpec{"measure", 0, false},
        };
    }
}

void
BenchContext::addGrid(const FigureGrid &grid)
{
    grids_.push_back(grid);
}

void
BenchContext::addRunStats(const std::string &label,
                          const StatsSnapshot &s,
                          const IntervalSeries &intervals,
                          const std::vector<PhaseResult> &phases,
                          const AdaptiveSummary &adaptive,
                          const std::vector<AdaptiveLanePoint>
                              &adaptiveLane)
{
    runs_.push_back(RunEntry{label, s, intervals, phases, adaptive,
                             adaptiveLane, RunHostMetrics{}});
}

void
BenchContext::addSweepRuns(const SweepOutcome &outcome)
{
    for (std::size_t i = 0; i < outcome.cells.size(); ++i)
        addRunStats(outcome.cells[i].label(), outcome.results[i].stats,
                    outcome.results[i].intervals,
                    outcome.results[i].phases,
                    outcome.results[i].adaptive,
                    outcome.results[i].adaptiveLane);
}

void
BenchContext::addRunHost(const std::string &label,
                         const RunHostMetrics &host)
{
    for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
        if (it->label == label) {
            it->host = host;
            return;
        }
    }
    CSIM_FATAL_F("%s: addRunHost: no recorded run labelled '%s'",
                 benchmark_.c_str(), label.c_str());
}

void
BenchContext::addScalar(const std::string &name, double value)
{
    scalars_.emplace_back(name, value);
}

namespace {

/** Serialize one interval series as the run's "intervals" object. */
void
writeIntervalSeries(JsonWriter &w, const IntervalSeries &series)
{
    w.beginObject();
    w.key("intervalCycles").value(series.intervalCycles);
    w.key("clusterIssueWidth")
        .value(std::uint64_t{series.clusterIssueWidth});
    w.key("windowPerCluster")
        .value(std::uint64_t{series.windowPerCluster});
    w.key("mergeCount").value(series.mergeCount);
    w.key("series").beginArray();
    for (const IntervalRecord &rec : series.records) {
        w.beginObject();
        w.key("start").value(rec.startCycle);
        w.key("cycles").value(rec.cycles);
        w.key("cpiStack").beginObject();
        for (std::size_t i = 0; i < numCpiComponents; ++i) {
            w.key(cpiComponentName(static_cast<CpiComponent>(i)))
                .value(rec.components[i]);
        }
        w.endObject();
        w.key("commits").value(rec.commits);
        w.key("steers").value(rec.steers);
        w.key("issued").value(rec.issued);
        w.key("predictedCriticalSteers")
            .value(rec.predictedCriticalSteers);
        w.key("locLevelSum").value(rec.locLevelSum);
        w.key("deniedIssue").value(rec.deniedIssue);
        w.key("deniedCritical").value(rec.deniedCritical);
        w.key("fetchStallCycles").value(rec.fetchStallCycles);
        w.key("clusters").beginArray();
        for (const IntervalClusterLane &lane : rec.clusters) {
            w.beginObject();
            w.key("steered").value(lane.steered);
            w.key("issued").value(lane.issued);
            w.key("occupancySum").value(lane.occupancySum);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

/** Serialize one run's adaptive-manager aggregate (schema v6). All
 *  fields are thread-count invariant: decisions derive only from the
 *  deterministic interval records, and the summary merges in the same
 *  fixed order as every other aggregate. */
void
writeAdaptive(JsonWriter &w, const AdaptiveSummary &a)
{
    w.beginObject();
    w.key("runs").value(a.mergeCount);
    w.key("intervals").value(a.intervals);
    w.key("transitions").value(a.transitions);
    w.key("reverts").value(a.reverts);
    w.key("phases").beginObject();
    for (std::size_t i = 0; i < numAdaptivePhases; ++i)
        w.key(adaptivePhaseName(static_cast<AdaptivePhase>(i)))
            .value(a.phaseIntervals[i]);
    w.endObject();
    // Knob values in force at run end, averaged over merged runs.
    const double n = static_cast<double>(a.mergeCount);
    w.key("finalKnobs").beginObject();
    w.key("stallThreshold").value(a.stallThresholdSum / n);
    w.key("locLowCutoff").value(a.locLowCutoffSum / n);
    w.key("pressure").value(a.pressureSum / n);
    w.endObject();
    w.endObject();
}

/** Millions of instructions per wall second (0 when unknown). */
double
mipsOf(std::uint64_t instructions, double wall_seconds)
{
    return instructions && wall_seconds > 0.0
        ? static_cast<double>(instructions) / wall_seconds / 1e6
        : 0.0;
}

/** Serialize one merged timer-tree node, recursively. */
void
writeTimerNode(JsonWriter &w, const HostProfNode &node)
{
    w.beginObject();
    w.key("name").value(node.name);
    w.key("calls").value(node.calls);
    w.key("ns").value(node.ns);
    w.key("instructions").value(node.instructions);
    w.key("mips").value(node.mips());
    w.key("children").beginArray();
    for (const HostProfNode &child : node.children)
        writeTimerNode(w, child);
    w.endArray();
    w.endObject();
}

/** Serialize one run's merged phase outcomes (compact: spans + CPI;
 *  the run's "stats" object already carries the measured registry). */
void
writePhases(JsonWriter &w, const std::vector<PhaseResult> &phases)
{
    w.beginArray();
    for (const PhaseResult &phase : phases) {
        w.beginObject();
        w.key("name").value(phase.name);
        w.key("isWarmup").value(phase.isWarmup);
        w.key("instructions").value(phase.instructions);
        w.key("cycles").value(phase.cycles);
        w.key("cpi").value(phase.instructions
                               ? static_cast<double>(phase.cycles) /
                                     static_cast<double>(
                                         phase.instructions)
                               : 0.0);
        w.endObject();
    }
    w.endArray();
}

/**
 * Simulated instructions attributed to measured work only. The timer
 * tree also credits instructions to warmup passes (under
 * "harness.warmup") and to the trace-build pipelines ("trace.*" /
 * "traceCache.*"); dividing the bench wall time into the undiscounted
 * total overstated the top-level MIPS by more than 2x on warmed
 * benches, so those subtrees are pruned here.
 */
std::uint64_t
measuredInstructions(const HostProfNode &node)
{
    if (node.name == "harness.warmup" ||
        node.name.rfind("trace.", 0) == 0 ||
        node.name.rfind("traceCache.", 0) == 0)
        return 0;
    std::uint64_t sum = node.instructions;
    for (const HostProfNode &child : node.children)
        sum += measuredInstructions(child);
    return sum;
}

/** Serialize one run's host-cost block (see RunHostMetrics). */
void
writeRunHost(JsonWriter &w, const RunHostMetrics &host)
{
    w.beginObject();
    w.key("wallSeconds").value(host.wallSeconds);
    w.key("instructions").value(host.instructions);
    w.key("hostMips").value(mipsOf(host.instructions,
                                   host.wallSeconds));
    w.key("peakRssBytes").value(host.peakRssBytes);
    w.endObject();
}

} // anonymous namespace

int
BenchContext::finish()
{
    if (!traceOutPath_.empty()) {
        std::vector<ChromeTraceRun> trace_runs;
        for (const RunEntry &run : runs_) {
            // A run with only an adaptive lane (adaptive on, profile
            // off) still gets a process: the decision timeline stands
            // on its own.
            if (!run.intervals.empty() || !run.adaptiveLane.empty())
                trace_runs.push_back(ChromeTraceRun{
                    run.label, run.intervals, run.adaptiveLane});
        }
        writeChromeTraceFile(traceOutPath_, trace_runs);
        std::fprintf(stderr, "wrote %s\n", traceOutPath_.c_str());
    }

    // Close out the ledger stream: trace content identity, the bench
    // footer, and the end of heartbeats. The RunLedger itself stays
    // alive (the report's provenance block reuses it conceptually, and
    // late panics still flight-record).
    if (ledger_) {
        if (cache_)
            ledger_->traceHashes(cache_->contentHashes());
        ledger_->benchEnd(
            grids_.size(), runs_.size(), scalars_.size(),
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count());
        ledger_->stopHeartbeat();
    }

    if (jsonPath_.empty())
        return 0;

    std::ofstream out(jsonPath_);
    if (!out)
        CSIM_FATAL_F("%s: cannot open --json path '%s'",
                     benchmark_.c_str(), jsonPath_.c_str());

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();

    JsonWriter w(out);
    w.beginObject();
    w.key("schemaVersion").value(7);
    w.key("benchmark").value(benchmark_);
    w.key("threads").value(std::uint64_t{threads()});
    w.key("wallSeconds").value(wall);

    // Provenance manifest (v7): same content as the ledger head. Only
    // "cmdline" and "env" are invocation-specific; everything else —
    // including "traceHashes" — is part of the deterministic region,
    // so the cross-thread determinism checks verify that both runs
    // simulated identically-hashed traces from the same build.
    {
        const Provenance prov = collectProvenance(cmdline_);
        w.key("provenance").beginObject();
        w.key("gitSha").value(prov.gitSha);
        w.key("buildType").value(prov.buildType);
        w.key("buildFlags").value(prov.buildFlags);
        w.key("hostProf").value(prov.hostProf);
        w.key("cmdline").value(prov.cmdline);
        w.key("env").beginObject();
        for (const auto &[name, v] : prov.env)
            w.key(name).value(v);
        w.endObject();
        w.key("traceHashes").beginObject();
        if (cache_)
            for (const auto &[key, hash] : cache_->contentHashes())
                w.key(key).value(hash);
        w.endObject();
        w.endObject();
    }

    w.key("grids").beginArray();
    for (const FigureGrid &g : grids_)
        g.toJson(w);
    w.endArray();

    w.key("scalars").beginObject();
    for (const auto &[name, v] : scalars_)
        w.key(name).value(v);
    w.endObject();

    w.key("runs").beginArray();
    for (const RunEntry &run : runs_) {
        w.beginObject();
        w.key("label").value(run.label);
        w.key("stats");
        writeSnapshot(w, run.stats.filtered(statsFilter_));
        if (!run.phases.empty()) {
            w.key("phases");
            writePhases(w, run.phases);
        }
        if (!run.intervals.empty()) {
            w.key("intervals");
            writeIntervalSeries(w, run.intervals);
        }
        if (run.adaptive.present()) {
            w.key("adaptive");
            writeAdaptive(w, run.adaptive);
        }
        if (run.host.wallSeconds > 0.0) {
            w.key("host");
            writeRunHost(w, run.host);
        }
        w.endObject();
    }
    // Cache activity counts are thread-count invariant (concurrent
    // requesters of an in-flight build count as hits), so this entry
    // is part of the byte-identical region of the report. The stats
    // filter applies here too; a fully filtered entry is omitted.
    if (cache_) {
        const StatsSnapshot cache_stats =
            cache_->statsSnapshot().filtered(statsFilter_);
        if (!cache_stats.empty()) {
            w.beginObject();
            w.key("label").value("traceCache");
            w.key("stats");
            writeSnapshot(w, cache_stats);
            w.endObject();
        }
    }
    w.endArray();

    // Process-wide host observability: nondeterministic wall times and
    // memory, so everything under "host" sits outside the report's
    // byte-identical region (validators and determinism checks strip
    // it). Absent when host profiling is compiled out or disabled.
    if (HostProf::compiledIn() && HostProf::enabled()) {
        const HostProfNode tree = HostProf::snapshot();
        const HostMemoryStats mem = sampleHostMemory();
        const std::uint64_t measured = measuredInstructions(tree);
        w.key("host").beginObject();
        w.key("wallSeconds").value(wall);
        w.key("hostMips").value(mipsOf(measured, wall));
        w.key("measuredInstructions").value(measured);
        w.key("peakRssBytes").value(mem.peakRssBytes);
        w.key("currentRssBytes").value(mem.currentRssBytes);
        w.key("heapBytes").value(mem.heapBytes);
        w.key("heapHighWaterBytes").value(mem.heapHighWaterBytes);
        w.key("timerTree");
        writeTimerNode(w, tree);
        if (cache_) {
            w.key("traceCache");
            writeSnapshot(w, cache_->timeSnapshot());
        }
        w.endObject();
    }

    w.endObject();
    out << '\n';
    out.close();
    if (!out)
        CSIM_FATAL_F("%s: failed writing '%s'", benchmark_.c_str(),
                     jsonPath_.c_str());
    std::fprintf(stderr, "wrote %s\n", jsonPath_.c_str());
    return 0;
}

} // namespace csim
