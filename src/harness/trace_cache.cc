#include "harness/trace_cache.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "obs/host_prof.hh"

namespace csim {

namespace {

std::uint64_t
wallNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
cacheKey(const std::string &workload, const WorkloadConfig &cfg,
         const MemoryModelConfig &mem, unsigned gshare_bits)
{
    std::ostringstream key;
    key << workload << '|' << cfg.seed << '|' << cfg.targetInstructions
        << '|' << mem.l1.sizeBytes << ',' << mem.l1.assoc << ','
        << mem.l1.lineBytes << '|' << mem.loadToUse << ','
        << mem.l2Latency << '|' << gshare_bits;
    return key.str();
}

} // anonymous namespace

TraceCache::TraceCache(std::size_t capacity_bytes)
    : capacityBytes_(capacity_bytes)
{
    statRequests_ = &registry_.addCounter(
        "traceCache.requests", "trace lookups (hits + builds)");
    statBuilds_ = &registry_.addCounter(
        "traceCache.builds", "annotated traces built");
    statHits_ = &registry_.addCounter(
        "traceCache.hits", "lookups served from the cache");
    statEvictions_ = &registry_.addCounter(
        "traceCache.evictions", "entries evicted by the byte budget");
    statBytesBuilt_ = &registry_.addCounter(
        "traceCache.bytesBuilt", "total bytes of traces built");
    statBytesEvicted_ = &registry_.addCounter(
        "traceCache.bytesEvicted", "total bytes evicted");
    registry_.addFormula(
        "traceCache.bytesHeld", [this] {
            return static_cast<double>(bytesHeld_);
        },
        "bytes currently held");
    registry_.addFormula(
        "traceCache.peakBytes", [this] {
            return static_cast<double>(peakBytes_);
        },
        "high-water mark of bytes held");
    registry_.addFormula(
        "traceCache.entriesHeld", [this] {
            return static_cast<double>(slots_.size());
        },
        "entries currently held");
    registry_.addFormula(
        "traceCache.hitRate", [this] {
            const double reqs =
                static_cast<double>(statRequests_->value());
            return reqs > 0.0 ?
                static_cast<double>(statHits_->value()) / reqs : 0.0;
        },
        "fraction of lookups served without a build");

    statBuildNs_ = &timeRegistry_.addCounter(
        "traceCache.time.buildNs",
        "wall nanoseconds spent building annotated traces");
    statLockWaitNs_ = &timeRegistry_.addCounter(
        "traceCache.time.lockWaitNs",
        "wall nanoseconds spent acquiring the cache lock");
    statHitWaitNs_ = &timeRegistry_.addCounter(
        "traceCache.time.hitWaitNs",
        "wall nanoseconds blocked on another thread's in-flight build");
    timeRegistry_.addFormula(
        "traceCache.time.buildMsMean", [this] {
            const double builds =
                static_cast<double>(statBuilds_->value());
            return builds > 0.0 ?
                static_cast<double>(statBuildNs_->value()) / builds /
                    1e6 : 0.0;
        },
        "mean milliseconds per trace build");
}

std::shared_ptr<const Trace>
TraceCache::get(const std::string &workload, const WorkloadConfig &cfg,
                const MemoryModelConfig &mem, unsigned gshare_bits)
{
    const std::string key = cacheKey(workload, cfg, mem, gshare_bits);

    std::promise<std::shared_ptr<const Trace>> promise;
    {
        const std::uint64_t lock_start = wallNs();
        std::unique_lock<std::mutex> lock(mutex_);
        *statLockWaitNs_ += wallNs() - lock_start;
        ++*statRequests_;
        auto it = slots_.find(key);
        if (it != slots_.end()) {
            ++*statHits_;
            it->second.lastUse = ++tick_;
            auto future = it->second.future;
            if (it->second.ready)
                return future.get();
            // Still in flight on another thread: wait on the shared
            // future outside the lock and charge the blocked time.
            const std::uint64_t wait_start = wallNs();
            lock.unlock();
            std::shared_ptr<const Trace> trace = future.get();
            const std::uint64_t wait_ns = wallNs() - wait_start;
            lock.lock();
            *statHitWaitNs_ += wait_ns;
            return trace;
        }
        ++*statBuilds_;
        Slot slot;
        slot.future = promise.get_future().share();
        slot.lastUse = ++tick_;
        slots_.emplace(key, std::move(slot));
    }

    // Build outside the lock so unrelated builds proceed in parallel.
    const std::uint64_t build_start = wallNs();
    std::shared_ptr<const Trace> trace = [&] {
        HOST_PROF_SCOPE("traceCache.build");
        std::shared_ptr<const Trace> built =
            buildSharedAnnotatedTrace(workload, cfg, mem,
                                      gshare_bits);
        // Materialise the column view while the trace is still ours
        // alone: every sim run will want it, and building it here
        // keeps the cost inside the build scope instead of racing the
        // first consumers for the lazy-init mutex.
        (void)built->soa();
        return built;
    }();
    const std::uint64_t build_ns = wallNs() - build_start;
    promise.set_value(trace);

    {
        const std::uint64_t lock_start = wallNs();
        std::lock_guard<std::mutex> lock(mutex_);
        *statLockWaitNs_ += wallNs() - lock_start;
        *statBuildNs_ += build_ns;
        auto it = slots_.find(key);
        CSIM_ASSERT(it != slots_.end()); // in-flight: never evicted
        it->second.ready = true;
        it->second.bytes = trace->footprintBytes();
        bytesHeld_ += it->second.bytes;
        peakBytes_ = std::max(peakBytes_, bytesHeld_);
        *statBytesBuilt_ += it->second.bytes;
        evictLocked(key);
    }
    return trace;
}

void
TraceCache::evictLocked(const std::string &protect_key)
{
    if (capacityBytes_ == 0)
        return;
    while (bytesHeld_ > capacityBytes_) {
        auto victim = slots_.end();
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (!it->second.ready || it->first == protect_key)
                continue;
            if (victim == slots_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == slots_.end())
            return; // only the protected / in-flight entries remain
        bytesHeld_ -= victim->second.bytes;
        ++*statEvictions_;
        *statBytesEvicted_ += victim->second.bytes;
        slots_.erase(victim);
    }
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, slot] : slots_)
        CSIM_ASSERT(slot.ready);
    slots_.clear();
    bytesHeld_ = 0;
}

std::uint64_t
TraceCache::requests() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statRequests_->value();
}

std::uint64_t
TraceCache::builds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statBuilds_->value();
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statHits_->value();
}

std::uint64_t
TraceCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statEvictions_->value();
}

std::size_t
TraceCache::bytesHeld() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytesHeld_;
}

std::size_t
TraceCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

StatsSnapshot
TraceCache::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return registry_.snapshot();
}

StatsSnapshot
TraceCache::timeSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return timeRegistry_.snapshot();
}

} // namespace csim
