#include "harness/trace_cache.hh"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/fnv.hh"
#include "common/logging.hh"
#include "obs/host_prof.hh"
#include "trace/trace_soa.hh"
#include "trace/trace_store.hh"

namespace csim {

namespace {

std::uint64_t
wallNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
cacheKey(const std::string &workload, const WorkloadConfig &cfg,
         const MemoryModelConfig &mem, unsigned gshare_bits)
{
    std::ostringstream key;
    key << workload << '|' << cfg.seed << '|' << cfg.targetInstructions
        << '|' << mem.l1.sizeBytes << ',' << mem.l1.assoc << ','
        << mem.l1.lineBytes << '|' << mem.loadToUse << ','
        << mem.l2Latency << '|' << gshare_bits;
    return key.str();
}

/** Spill file name: FNV-1a 64 over the cache key (the key encodes
 *  every build input, so equal hashes mean equal content). */
std::string
spillFileName(const std::string &key)
{
    return fnvHex(fnv1a64(key)) + ".trc2";
}

std::size_t
fileSizeBytes(const std::string &path)
{
    struct ::stat st;
    return ::stat(path.c_str(), &st) == 0 ?
        static_cast<std::size_t>(st.st_size) : 0;
}

} // anonymous namespace

TraceCache::TraceCache(std::size_t capacity_bytes,
                       std::string spill_dir)
    : capacityBytes_(capacity_bytes), spillDir_(std::move(spill_dir))
{
    statRequests_ = &registry_.addCounter(
        "traceCache.requests", "trace lookups (hits + builds)");
    statBuilds_ = &registry_.addCounter(
        "traceCache.builds", "annotated traces built");
    statHits_ = &registry_.addCounter(
        "traceCache.hits", "lookups served from the cache");
    statEvictions_ = &registry_.addCounter(
        "traceCache.evictions", "entries evicted by the byte budget");
    statBytesBuilt_ = &registry_.addCounter(
        "traceCache.bytesBuilt", "total bytes of traces built");
    statBytesEvicted_ = &registry_.addCounter(
        "traceCache.bytesEvicted", "total bytes evicted");
    statSpillWrites_ = &registry_.addCounter(
        "traceCache.spill.writes",
        "evicted traces written to the spill directory");
    statSpillBytes_ = &registry_.addCounter(
        "traceCache.spill.bytes",
        "total file bytes of spilled trace stores");
    statMmapLoads_ = &registry_.addCounter(
        "traceCache.mmap.loads",
        "misses served by mmap-ing a spilled store back");
    statMmapBytes_ = &registry_.addCounter(
        "traceCache.mmap.bytes",
        "total file bytes mmap-ed back from spilled stores");
    registry_.addFormula(
        "traceCache.bytesHeld", [this] {
            return static_cast<double>(bytesHeld_);
        },
        "bytes currently held");
    registry_.addFormula(
        "traceCache.peakBytes", [this] {
            return static_cast<double>(peakBytes_);
        },
        "high-water mark of bytes held");
    registry_.addFormula(
        "traceCache.entriesHeld", [this] {
            return static_cast<double>(slots_.size());
        },
        "entries currently held");
    registry_.addFormula(
        "traceCache.hitRate", [this] {
            const double reqs =
                static_cast<double>(statRequests_->value());
            return reqs > 0.0 ?
                static_cast<double>(statHits_->value()) / reqs : 0.0;
        },
        "fraction of lookups served without a build");

    statBuildNs_ = &timeRegistry_.addCounter(
        "traceCache.time.buildNs",
        "wall nanoseconds spent building annotated traces");
    statLockWaitNs_ = &timeRegistry_.addCounter(
        "traceCache.time.lockWaitNs",
        "wall nanoseconds spent acquiring the cache lock");
    statHitWaitNs_ = &timeRegistry_.addCounter(
        "traceCache.time.hitWaitNs",
        "wall nanoseconds blocked on another thread's in-flight build");
    timeRegistry_.addFormula(
        "traceCache.time.buildMsMean", [this] {
            const double builds =
                static_cast<double>(statBuilds_->value());
            return builds > 0.0 ?
                static_cast<double>(statBuildNs_->value()) / builds /
                    1e6 : 0.0;
        },
        "mean milliseconds per trace build");
}

std::shared_ptr<const Trace>
TraceCache::get(const std::string &workload, const WorkloadConfig &cfg,
                const MemoryModelConfig &mem, unsigned gshare_bits)
{
    const std::string key = cacheKey(workload, cfg, mem, gshare_bits);

    std::promise<std::shared_ptr<const Trace>> promise;
    std::string spill_path;
    {
        const std::uint64_t lock_start = wallNs();
        std::unique_lock<std::mutex> lock(mutex_);
        *statLockWaitNs_ += wallNs() - lock_start;
        ++*statRequests_;
        auto it = slots_.find(key);
        if (it != slots_.end()) {
            ++*statHits_;
            it->second.lastUse = ++tick_;
            auto future = it->second.future;
            if (it->second.ready)
                return future.get();
            // Still in flight on another thread: wait on the shared
            // future outside the lock and charge the blocked time.
            const std::uint64_t wait_start = wallNs();
            lock.unlock();
            std::shared_ptr<const Trace> trace = future.get();
            const std::uint64_t wait_ns = wallNs() - wait_start;
            lock.lock();
            *statHitWaitNs_ += wait_ns;
            return trace;
        }
        // A spilled entry is rehydrated from its store file instead
        // of re-running the whole build pipeline.
        auto sp = spilled_.find(key);
        if (sp != spilled_.end())
            spill_path = sp->second.path;
        if (spill_path.empty())
            ++*statBuilds_;
        Slot slot;
        slot.future = promise.get_future().share();
        slot.lastUse = ++tick_;
        slots_.emplace(key, std::move(slot));
    }

    // Build (or reload) outside the lock so unrelated builds proceed
    // in parallel.
    bool spill_fallback = false;
    std::size_t mmap_bytes = 0;
    const std::uint64_t build_start = wallNs();
    std::shared_ptr<const Trace> trace = [&] {
        if (!spill_path.empty()) {
            HOST_PROF_SCOPE("traceCache.mmapLoad");
            TraceSoA soa;
            TraceStoreInfo info;
            if (loadTraceStore(soa, spill_path, &info) ==
                TraceIoStatus::Ok) {
                mmap_bytes = info.fileBytes;
                // Rebase into an owning AoS trace (base 0: identity),
                // releasing the mapping when `soa` goes out of scope.
                auto loaded = std::make_shared<Trace>(
                    extractRegion(soa, 0, soa.size()));
                (void)loaded->soa();
                return std::shared_ptr<const Trace>(std::move(loaded));
            }
            // Unreadable spill file: fall back to a fresh build.
            spill_fallback = true;
        }
        HOST_PROF_SCOPE("traceCache.build");
        std::shared_ptr<const Trace> built =
            buildSharedAnnotatedTrace(workload, cfg, mem,
                                      gshare_bits);
        // Materialise the column view while the trace is still ours
        // alone: every sim run will want it, and building it here
        // keeps the cost inside the build scope instead of racing the
        // first consumers for the lazy-init mutex.
        (void)built->soa();
        return built;
    }();
    const std::uint64_t build_ns = wallNs() - build_start;
    promise.set_value(trace);

    {
        const std::uint64_t lock_start = wallNs();
        std::lock_guard<std::mutex> lock(mutex_);
        *statLockWaitNs_ += wallNs() - lock_start;
        if (spill_path.empty() || spill_fallback)
            *statBuildNs_ += build_ns;
        if (spill_fallback) {
            ++*statBuilds_;
            spilled_.erase(key);
        } else if (!spill_path.empty()) {
            ++*statMmapLoads_;
            *statMmapBytes_ += mmap_bytes;
        }
        auto it = slots_.find(key);
        CSIM_ASSERT(it != slots_.end()); // in-flight: never evicted
        it->second.ready = true;
        it->second.bytes = trace->footprintBytes();
        bytesHeld_ += it->second.bytes;
        peakBytes_ = std::max(peakBytes_, bytesHeld_);
        *statBytesBuilt_ += it->second.bytes;
        evictLocked(key);
    }
    return trace;
}

void
TraceCache::evictLocked(const std::string &protect_key)
{
    if (capacityBytes_ == 0)
        return;
    while (bytesHeld_ > capacityBytes_) {
        auto victim = slots_.end();
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (!it->second.ready || it->first == protect_key)
                continue;
            if (victim == slots_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == slots_.end())
            return; // only the protected / in-flight entries remain
        // Spill the victim to disk before dropping it so a later miss
        // mmaps it back instead of re-running the build pipeline. A
        // previously spilled key's file is still valid (entries are
        // immutable), so it is never rewritten.
        if (!spillDir_.empty() && !spilled_.count(victim->first)) {
            const std::string path =
                spillDir_ + "/" + spillFileName(victim->first);
            if (saveTraceStore(*victim->second.future.get(), path)) {
                SpillEntry entry;
                entry.path = path;
                entry.fileBytes = fileSizeBytes(path);
                ++*statSpillWrites_;
                *statSpillBytes_ += entry.fileBytes;
                spilled_.emplace(victim->first, std::move(entry));
            }
        }
        bytesHeld_ -= victim->second.bytes;
        ++*statEvictions_;
        *statBytesEvicted_ += victim->second.bytes;
        slots_.erase(victim);
    }
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, slot] : slots_)
        CSIM_ASSERT(slot.ready);
    slots_.clear();
    bytesHeld_ = 0;
}

std::uint64_t
TraceCache::requests() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statRequests_->value();
}

std::uint64_t
TraceCache::builds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statBuilds_->value();
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statHits_->value();
}

std::uint64_t
TraceCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statEvictions_->value();
}

std::size_t
TraceCache::bytesHeld() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytesHeld_;
}

std::size_t
TraceCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

StatsSnapshot
TraceCache::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return registry_.snapshot();
}

StatsSnapshot
TraceCache::timeSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return timeRegistry_.snapshot();
}

std::vector<std::pair<std::string, std::string>>
TraceCache::contentHashes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::string>> hashes;
    hashes.reserve(slots_.size() + spilled_.size());
    for (const auto &[key, slot] : slots_)
        hashes.emplace_back(key, fnvHex(fnv1a64(key)));
    for (const auto &[key, entry] : spilled_)
        if (!slots_.count(key))
            hashes.emplace_back(key, fnvHex(fnv1a64(key)));
    std::sort(hashes.begin(), hashes.end());
    return hashes;
}

} // namespace csim
