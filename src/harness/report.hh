/**
 * @file
 * Reporting helpers shared by the bench binaries: the (workload x
 * config) grids with an AVE column that every figure in the paper
 * uses, plus small math utilities.
 */

#ifndef CSIM_HARNESS_REPORT_HH
#define CSIM_HARNESS_REPORT_HH

#include <map>
#include <string>
#include <vector>

namespace csim {

class JsonWriter;

/**
 * A figure-style grid: rows are workloads (plus an AVE row appended
 * automatically), columns are machine configurations / policy bars.
 */
class FigureGrid
{
  public:
    FigureGrid(std::string title, std::vector<std::string> columns);

    void set(const std::string &workload, const std::string &column,
             double value);

    /** Arithmetic mean down each column (the paper's AVE bars). */
    double columnAverage(const std::string &column) const;

    /** Render with fixed-width columns; values with 3 decimals. */
    std::string str() const;

    /** Emit as one JSON object: title, columns, rows, averages. */
    void toJson(JsonWriter &w) const;

    const std::string &title() const { return title_; }
    const std::vector<std::string> &columns() const { return columns_; }
    /** Row names in insertion order (without the synthetic AVE row). */
    const std::vector<std::string> &rows() const { return rowOrder_; }
    bool has(const std::string &row, const std::string &column) const;
    /** Cell value; panics when absent. */
    double at(const std::string &row, const std::string &column) const;

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::string> rowOrder_;
    std::map<std::string, std::map<std::string, double>> cells_;
};

/** Arithmetic mean of a vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Geometric mean of a vector (0 when empty). */
double geomean(const std::vector<double> &xs);

} // namespace csim

#endif // CSIM_HARNESS_REPORT_HH
