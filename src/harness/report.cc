#include "harness/report.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"
#include "harness/json_report.hh"

namespace csim {

FigureGrid::FigureGrid(std::string title,
                       std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
}

void
FigureGrid::set(const std::string &workload, const std::string &column,
                double value)
{
    if (!cells_.count(workload))
        rowOrder_.push_back(workload);
    cells_[workload][column] = value;
}

double
FigureGrid::columnAverage(const std::string &column) const
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto &[row, vals] : cells_) {
        auto it = vals.find(column);
        if (it != vals.end()) {
            sum += it->second;
            ++count;
        }
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

std::string
FigureGrid::str() const
{
    std::vector<std::string> header{"benchmark"};
    for (const std::string &c : columns_)
        header.push_back(c);
    TextTable table(std::move(header));

    auto add_row = [&](const std::string &name,
                       const std::map<std::string, double> *vals) {
        std::vector<std::string> row{name};
        for (const std::string &c : columns_) {
            if (vals) {
                auto it = vals->find(c);
                row.push_back(it == vals->end()
                                  ? "-" : formatDouble(it->second, 3));
            } else {
                row.push_back(formatDouble(columnAverage(c), 3));
            }
        }
        table.addRow(std::move(row));
    };

    for (const std::string &row : rowOrder_)
        add_row(row, &cells_.at(row));
    add_row("AVE", nullptr);

    return title_ + "\n" + table.str();
}

bool
FigureGrid::has(const std::string &row, const std::string &column) const
{
    auto it = cells_.find(row);
    return it != cells_.end() && it->second.count(column);
}

double
FigureGrid::at(const std::string &row, const std::string &column) const
{
    auto it = cells_.find(row);
    if (it == cells_.end())
        CSIM_PANIC_F("FigureGrid: unknown row '%s'", row.c_str());
    auto jt = it->second.find(column);
    if (jt == it->second.end())
        CSIM_PANIC_F("FigureGrid: no cell ('%s', '%s')", row.c_str(),
                     column.c_str());
    return jt->second;
}

void
FigureGrid::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("title").value(title_);

    w.key("columns").beginArray();
    for (const std::string &c : columns_)
        w.value(c);
    w.endArray();

    w.key("rows").beginArray();
    for (const std::string &row : rowOrder_) {
        w.beginObject();
        w.key("name").value(row);
        w.key("cells").beginObject();
        const auto &vals = cells_.at(row);
        for (const std::string &c : columns_) {
            auto it = vals.find(c);
            if (it != vals.end())
                w.key(c).value(it->second);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("averages").beginObject();
    for (const std::string &c : columns_)
        w.key(c).value(columnAverage(c));
    w.endObject();

    w.endObject();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        CSIM_ASSERT(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace csim
