#include "harness/experiment.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/fnv.hh"
#include "common/logging.hh"
#include "harness/trace_cache.hh"
#include "obs/host_prof.hh"
#include "trace/trace_store.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "verify/oracle.hh"
#include "verify/pipeline_checker.hh"

namespace csim {

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::ModN: return "mod-n";
      case PolicyKind::LoadBal: return "load-balance";
      case PolicyKind::Dep: return "dependence";
      case PolicyKind::Focused: return "focused";
      case PolicyKind::FocusedLoc: return "focused+loc";
      case PolicyKind::FocusedLocStall: return "focused+loc+stall";
      case PolicyKind::FocusedLocStallProactive:
        return "focused+loc+stall+proactive";
      default:
        CSIM_PANIC("policyName: bad kind");
    }
}

std::string
configDigest(const ExperimentConfig &cfg)
{
    std::ostringstream os;
    os << "inst=" << cfg.instructions << ";seeds=";
    for (std::uint64_t seed : cfg.seeds)
        os << seed << ',';
    os << ";warm=" << cfg.warmupRuns << ";chunk=" << cfg.trainChunk
       << ";stall=" << cfg.stallThreshold << ";loc=" << cfg.locLevels
       << ";sim=" << cfg.simOptions.collectIlp << ','
       << cfg.simOptions.legacyStep << ','
       << cfg.simOptions.ilpMaxAvailable << ','
       << cfg.simOptions.maxCpi << ";phases=";
    for (const PhaseSpec &phase : cfg.simOptions.phases)
        os << phase.name << ':' << phase.instructions << ':'
           << phase.isWarmup << ',';
    os << ";verify=" << cfg.verify.checker << ',' << cfg.verify.oracle
       << ',' << cfg.verify.oracleRelTol << ','
       << cfg.verify.panicOnViolation
       << ";profile=" << cfg.profile.enabled << ','
       << cfg.profile.intervalCycles << ','
       << cfg.profile.scoreCriticality
       << ";adaptive=" << cfg.adaptive.enabled << ','
       << cfg.adaptive.intervalCycles << ','
       << cfg.adaptive.reactionIntervals << ','
       << cfg.adaptive.minDwellIntervals << ','
       << cfg.adaptive.revertOnRegression << ','
       << cfg.adaptive.regressionTolerance
       << ";regions=" << cfg.regions << ',' << cfg.regionLen << ','
       << cfg.regionWarmup;
    return fnvHex(fnv1a64(os.str()));
}

namespace {

/** Everything a policy stack owns for one trace's runs. */
struct PolicyStack
{
    std::unique_ptr<CriticalityPredictor> critPred;
    std::unique_ptr<LocPredictor> locPred;
    std::unique_ptr<OnlineCriticalityTrainer> trainer;
    std::unique_ptr<SteeringPolicy> steering;
    std::unique_ptr<SchedulingPolicy> scheduling;
    /** Concrete-type views of steering/scheduling when the stack uses
     *  the retunable policies (the adaptive manager's knob surface);
     *  null for the baselines. */
    UnifiedSteering *unified = nullptr;
    LocScheduling *locSched = nullptr;
};

PolicyStack
makeStack(const Trace &trace, PolicyKind kind,
          const ExperimentConfig &cfg)
{
    PolicyStack s;
    switch (kind) {
      case PolicyKind::ModN:
        s.steering = std::make_unique<ModNSteering>();
        s.scheduling = std::make_unique<AgeScheduling>();
        break;
      case PolicyKind::LoadBal:
        s.steering = std::make_unique<LoadBalanceSteering>();
        s.scheduling = std::make_unique<AgeScheduling>();
        break;
      case PolicyKind::Dep: {
        auto steer = std::make_unique<UnifiedSteering>(
            UnifiedSteeringOptions{}, nullptr, nullptr);
        s.unified = steer.get();
        s.steering = std::move(steer);
        s.scheduling = std::make_unique<AgeScheduling>();
        break;
      }
      case PolicyKind::Focused: {
        s.critPred = std::make_unique<CriticalityPredictor>();
        UnifiedSteeringOptions opt;
        opt.focusOnCritical = true;
        auto steer = std::make_unique<UnifiedSteering>(
            opt, s.critPred.get(), nullptr);
        s.unified = steer.get();
        s.steering = std::move(steer);
        s.scheduling =
            std::make_unique<CriticalScheduling>(*s.critPred);
        s.trainer = std::make_unique<OnlineCriticalityTrainer>(
            trace, s.critPred.get(), nullptr, cfg.trainChunk);
        break;
      }
      case PolicyKind::FocusedLoc:
      case PolicyKind::FocusedLocStall:
      case PolicyKind::FocusedLocStallProactive: {
        s.critPred = std::make_unique<CriticalityPredictor>();
        LocPredictor::Params loc_params;
        loc_params.levels = cfg.locLevels;
        s.locPred = std::make_unique<LocPredictor>(loc_params);
        UnifiedSteeringOptions opt;
        opt.focusOnCritical = true;
        opt.stallOverSteer = kind != PolicyKind::FocusedLoc;
        opt.stallThreshold = cfg.stallThreshold;
        opt.proactiveLB =
            kind == PolicyKind::FocusedLocStallProactive;
        auto steer = std::make_unique<UnifiedSteering>(
            opt, s.critPred.get(), s.locPred.get());
        s.unified = steer.get();
        s.steering = std::move(steer);
        auto sched = std::make_unique<LocScheduling>(*s.locPred);
        s.locSched = sched.get();
        s.scheduling = std::move(sched);
        s.trainer = std::make_unique<OnlineCriticalityTrainer>(
            trace, s.critPred.get(), s.locPred.get(), cfg.trainChunk);
        break;
      }
      default:
        CSIM_PANIC("makeStack: bad kind");
    }
    return s;
}

/**
 * Score the steer-time criticality snapshots against the chunked
 * depgraph ground truth and fold the tallies into the run's stats as
 * profiler.crit.* (counters sum across seeds; the rate formulas
 * seed-average, matching every other formula in the registry).
 */
void
scoreCriticalityPredictions(const Trace &trace, SimResult &result,
                            const MachineConfig &machine,
                            std::uint64_t chunk_size)
{
    const std::vector<bool> truth =
        criticalityGroundTruth(trace, result, machine, chunk_size);
    std::uint64_t tp = 0, fp = 0, fn = 0, tn = 0;
    const std::size_t n =
        std::min(truth.size(), result.timing.size());
    for (std::size_t i = 0; i < n; ++i) {
        const bool pred = result.timing[i].predictedCritical;
        if (pred && truth[i])
            ++tp;
        else if (pred)
            ++fp;
        else if (truth[i])
            ++fn;
        else
            ++tn;
    }

    const auto counter = [](std::uint64_t v) {
        StatValue sv;
        sv.kind = StatKind::Counter;
        sv.value = static_cast<double>(v);
        return sv;
    };
    const auto formula = [](std::uint64_t num, std::uint64_t den) {
        StatValue sv;
        sv.kind = StatKind::Formula;
        sv.value = den ? static_cast<double>(num) /
            static_cast<double>(den) : 0.0;
        return sv;
    };
    result.stats.add("profiler.crit.truePos", counter(tp));
    result.stats.add("profiler.crit.falsePos", counter(fp));
    result.stats.add("profiler.crit.falseNeg", counter(fn));
    result.stats.add("profiler.crit.trueNeg", counter(tn));
    result.stats.add("profiler.crit.hitRate",
                     formula(tp + tn, tp + fp + fn + tn));
    result.stats.add("profiler.crit.precision", formula(tp, tp + fp));
    result.stats.add("profiler.crit.recall", formula(tp, tp + fn));
}

} // anonymous namespace

PolicyRun
runPolicy(const Trace &trace, const MachineConfig &machine,
          PolicyKind kind, const ExperimentConfig &cfg)
{
    PolicyStack stack = makeStack(trace, kind, cfg);

    // Warmup passes train the predictors across the whole trace.
    // They honor the stepping-mode escape hatch so a --legacy-step
    // run is dense end to end, but carry no observers or collection
    // options: training must see the same machine either way. With
    // phases configured the in-run warmup phase takes over this job
    // (training runs during the whole measured pass anyway), so the
    // discarded full passes — previously the dominant cost of a
    // warmed cell — are skipped entirely.
    if (stack.trainer && cfg.simOptions.phases.empty()) {
        HOST_PROF_SCOPE("harness.warmup");
        SimOptions warm_options;
        warm_options.legacyStep = cfg.simOptions.legacyStep;
        for (unsigned w = 0; w < cfg.warmupRuns; ++w) {
            stack.trainer->restart();
            TimingSim warm(machine, trace, *stack.steering,
                           *stack.scheduling, stack.trainer.get(),
                           warm_options);
            (void)warm.run();
        }
    }

    if (stack.trainer)
        stack.trainer->restart();

    // The checker and profiler are per-run local state: sweep cells
    // run on worker threads, so they cannot live in the (shared)
    // config.
    std::unique_ptr<PipelineChecker> checker;
    std::unique_ptr<IntervalProfiler> profiler;
    SimOptions sim_options = cfg.simOptions;
    if (cfg.verify.checker) {
        PipelineCheckerOptions copt;
        copt.panicOnViolation = cfg.verify.panicOnViolation;
        checker =
            std::make_unique<PipelineChecker>(machine, trace, copt);
        sim_options.checker = checker.get();
    }
    if (cfg.profile.enabled) {
        IntervalProfilerOptions popt;
        popt.intervalCycles = cfg.profile.intervalCycles;
        profiler =
            std::make_unique<IntervalProfiler>(machine, trace, popt);
        sim_options.observers.push_back(profiler.get());
    }
    std::unique_ptr<AdaptiveManager> adaptive;
    if (cfg.adaptive.enabled) {
        AdaptiveManagerOptions aopt;
        aopt.intervalCycles = cfg.adaptive.intervalCycles;
        aopt.brain.reactionIntervals = cfg.adaptive.reactionIntervals;
        aopt.brain.minDwellIntervals = cfg.adaptive.minDwellIntervals;
        aopt.brain.revertOnRegression = cfg.adaptive.revertOnRegression;
        aopt.brain.regressionTolerance = cfg.adaptive.regressionTolerance;
        // Attached to the measured run only: the warmup passes above
        // must train under the static knobs the measured run starts
        // from. The baselines expose no knobs — the manager still
        // attaches (classification stats stay meaningful) but has
        // nothing to turn.
        adaptive = std::make_unique<AdaptiveManager>(
            machine, trace, aopt, stack.unified, stack.locSched,
            stack.locPred.get());
        sim_options.observers.push_back(adaptive.get());
    }

    TimingSim sim(machine, trace, *stack.steering, *stack.scheduling,
                  stack.trainer.get(), sim_options);
    PolicyRun out;
    out.sim = sim.run();
    out.skipSpans = sim.skipSpans();
    out.skipCycles = sim.skipCycles();
    if (profiler) {
        out.intervals = profiler->takeSeries();
        if (cfg.profile.scoreCriticality)
            scoreCriticalityPredictions(trace, out.sim, machine,
                                        cfg.trainChunk);
    }
    if (adaptive) {
        out.adaptive = adaptive->summary();
        out.adaptiveLane = adaptive->lanePoints();
    }

    if (checker) {
        // Second opinion over the final timing records; also what the
        // live hooks cannot see (e.g. instructions never committed).
        const VerifyReport audit =
            auditTiming(trace, out.sim.timing, machine);
        if (!audit.ok() && cfg.verify.panicOnViolation)
            CSIM_PANIC_F("post-run audit (%s, %s): %s",
                         machine.name().c_str(), policyName(kind),
                         audit.firstDetail.c_str());
        out.checkerViolations =
            checker->violations() + audit.violations();
        out.checkerDetail = checker->report().firstDetail.empty()
            ? audit.firstDetail : checker->report().firstDetail;
    }

    {
        HOST_PROF_SCOPE("critpath.analyze");
        out.breakdown = analyzeFullRun(trace, out.sim, machine);
    }
    return out;
}

void
AggregateResult::merge(const AggregateResult &other)
{
    instructions += other.instructions;
    cycles += other.cycles;
    for (std::size_t c = 0; c < numCpCategories; ++c)
        categoryCycles[c] += other.categoryCycles[c];
    contentionEventsCritical += other.contentionEventsCritical;
    contentionEventsOther += other.contentionEventsOther;
    fwdEventsLoadBal += other.fwdEventsLoadBal;
    fwdEventsDyadic += other.fwdEventsDyadic;
    fwdEventsOther += other.fwdEventsOther;
    globalValues += other.globalValues;
    stats.merge(other.stats);
    intervals.merge(other.intervals);
    adaptive.merge(other.adaptive);
    // Lanes concatenate: each merged run keeps its own decision
    // timeline, and the fixed merge order keeps the result identical
    // at any sweep thread count.
    adaptiveLane.insert(adaptiveLane.end(), other.adaptiveLane.begin(),
                        other.adaptiveLane.end());

    // Like-shaped phase lists (every seed/region runs the same specs)
    // fold elementwise; anything else concatenates, which keeps the
    // merge total even for heterogeneous inputs.
    auto sameShape = [&] {
        if (phases.size() != other.phases.size())
            return false;
        for (std::size_t i = 0; i < phases.size(); ++i)
            if (phases[i].name != other.phases[i].name ||
                phases[i].isWarmup != other.phases[i].isWarmup)
                return false;
        return true;
    };
    if (phases.empty()) {
        phases = other.phases;
    } else if (sameShape()) {
        for (std::size_t i = 0; i < phases.size(); ++i) {
            phases[i].instructions += other.phases[i].instructions;
            phases[i].cycles += other.phases[i].cycles;
            phases[i].stats.merge(other.phases[i].stats);
        }
    } else {
        phases.insert(phases.end(), other.phases.begin(),
                      other.phases.end());
    }
}

namespace {

AggregateResult
toAggregate(std::uint64_t instructions, Cycle cycles,
            const CpBreakdown &bd, std::uint64_t global_values,
            const StatsSnapshot &stats)
{
    AggregateResult r;
    r.instructions = instructions;
    r.cycles = cycles;
    for (std::size_t c = 0; c < numCpCategories; ++c)
        r.categoryCycles[c] = bd.cycles[c];
    r.contentionEventsCritical = bd.contentionEventsCritical;
    r.contentionEventsOther = bd.contentionEventsOther;
    r.fwdEventsLoadBal = bd.fwdEventsLoadBal;
    r.fwdEventsDyadic = bd.fwdEventsDyadic;
    r.fwdEventsOther = bd.fwdEventsOther;
    r.globalValues = global_values;
    r.stats.merge(stats);
    return r;
}

/**
 * The per-seed aggregation loop shared by runAggregate and
 * runIdealAggregate: build (or fetch) each seed's trace and merge the
 * per-seed cell results in seed order.
 */
template <typename PerSeed>
AggregateResult
aggregateOverSeeds(const std::string &workload,
                   const ExperimentConfig &cfg, TraceCache *cache,
                   PerSeed &&per_seed)
{
    AggregateResult agg;
    for (std::uint64_t seed : cfg.seeds) {
        WorkloadConfig wcfg;
        wcfg.targetInstructions = cfg.instructions;
        wcfg.seed = seed;
        if (cache) {
            std::shared_ptr<const Trace> trace =
                cache->get(workload, wcfg);
            agg.merge(per_seed(*trace));
        } else {
            Trace trace = buildAnnotatedTrace(workload, wcfg);
            agg.merge(per_seed(trace));
        }
    }
    return agg;
}

/**
 * Differential CPI oracle over one finished cell (ISSUE: a timing run
 * that beats an idealized model is miscounting cycles). Bound
 * violations are always fatal here — this path exists for CI and the
 * property tests; the fuzzer composes the src/verify helpers itself
 * so it can collect a reproducer instead of dying.
 */
void
checkCellOracle(const Trace &trace, const MachineConfig &machine,
                PolicyKind kind, const ExperimentConfig &cfg,
                std::uint64_t instructions, std::uint64_t cycles)
{
    const double cpi = instructions ?
        static_cast<double>(cycles) /
        static_cast<double>(instructions) : 0.0;

    // The bounding runs must not recurse into verification.
    ExperimentConfig bound_cfg = cfg;
    bound_cfg.verify = VerifyConfig{};

    OracleCheck floor = checkCpiFloor(cpi, machine);
    if (!floor.ok)
        CSIM_FATAL_F("%s (%s, %s)", floor.detail.c_str(),
                     machine.name().c_str(), policyName(kind));

    AggregateResult ideal = runIdealCell(trace, machine, bound_cfg);
    OracleCheck vs_ideal =
        checkCpiLowerBound(cpi, ideal.cpi(), cfg.verify.oracleRelTol,
                           "ideal list scheduler");
    if (!vs_ideal.ok)
        CSIM_FATAL_F("%s (%s, %s)", vs_ideal.detail.c_str(),
                     machine.name().c_str(), policyName(kind));

    // Clustering can only cost cycles against the same policy on a
    // machine owning the summed resources with free bypass.
    if (machine.numClusters > 1) {
        PolicyRun env = runPolicy(trace, monolithicEnvelope(machine),
                                  kind, bound_cfg);
        const double env_cpi = env.sim.instructions ?
            static_cast<double>(env.sim.cycles) /
            static_cast<double>(env.sim.instructions) : 0.0;
        OracleCheck vs_env = checkCpiLowerBound(
            cpi, env_cpi, cfg.verify.oracleRelTol,
            "monolithic-envelope");
        if (!vs_env.ok)
            CSIM_FATAL_F("%s (%s, %s)", vs_env.detail.c_str(),
                         machine.name().c_str(), policyName(kind));
    }
}

} // anonymous namespace

/**
 * Region-sampled evaluation of one cell: K evenly spaced regions are
 * carved out of the column view, each rebased into a standalone
 * (wellFormed) mini-trace and simulated with a warmup/measure phase
 * pair. Region results merge in region order — the same deterministic
 * fold as the seed loop — so the output is identical at any sweep
 * thread count.
 */
AggregateResult
runRegionSampledCell(const TraceSoA &soa, const MachineConfig &machine,
                     PolicyKind kind, const ExperimentConfig &cfg)
{
    // User-facing configuration errors (these values arrive straight
    // from --regions/--region-len/--warmup), so reject them with the
    // same fatal strictness parseThreadCount applies, not an assert.
    const std::uint64_t n = soa.size();
    const std::uint64_t k = cfg.regions;
    if (cfg.regionLen == 0)
        CSIM_FATAL_F("region sampling: region length must be >= 1 "
                     "(got %llu)",
                     static_cast<unsigned long long>(cfg.regionLen));
    if (k < 1 || k > n)
        CSIM_FATAL_F("region sampling: region count %llu out of range "
                     "[1, %llu] for a %llu-instruction store",
                     static_cast<unsigned long long>(k),
                     static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(n));
    // Spacing soundness: k regions of span (warmup + len) starting at
    // multiples of floor(n / k) neither overlap nor run off the end
    // iff k * span <= n (then span <= floor(n / k) exactly). Anything
    // larger would silently overlap regions or degenerate the tail,
    // double-counting instructions in the merged phases.
    if (cfg.regionWarmup + cfg.regionLen > n / k)
        CSIM_FATAL_F("region sampling: %llu regions x (%llu warmup + "
                     "%llu measured) = %llu instructions exceed the "
                     "%llu-instruction store; shrink --regions, "
                     "--region-len or --warmup",
                     static_cast<unsigned long long>(k),
                     static_cast<unsigned long long>(cfg.regionWarmup),
                     static_cast<unsigned long long>(cfg.regionLen),
                     static_cast<unsigned long long>(
                         k * (cfg.regionWarmup + cfg.regionLen)),
                     static_cast<unsigned long long>(n));

    // The recursive per-region config: sampling off, phases on.
    ExperimentConfig rcfg = cfg;
    rcfg.regions = 0;
    rcfg.simOptions.phases.clear();
    if (cfg.regionWarmup > 0)
        rcfg.simOptions.phases.push_back(
            PhaseSpec{"warmup", cfg.regionWarmup, true});
    rcfg.simOptions.phases.push_back(PhaseSpec{"measure", 0, false});

    const std::uint64_t span = cfg.regionWarmup + cfg.regionLen;
    const std::uint64_t stride = n / k;
    AggregateResult agg;
    for (std::uint64_t r = 0; r < k; ++r) {
        // Evenly spaced starts; extractRegion clamps a tail region
        // that would run past the end of the trace.
        const std::uint64_t base = r * stride;
        Trace region = extractRegion(soa, base, span);
        // A clamped tail region may be shorter than the warmup quota;
        // trim the warmup so the phase budget stays valid (the
        // measured phase then sees whatever remains).
        ExperimentConfig cell_cfg = rcfg;
        if (cfg.regionWarmup > 0 &&
            cell_cfg.simOptions.phases.front().instructions >=
                region.size())
            cell_cfg.simOptions.phases.front().instructions =
                region.size() > 1 ? region.size() - 1 : 0;
        if (cell_cfg.simOptions.phases.front().instructions == 0 &&
            cell_cfg.simOptions.phases.size() > 1)
            cell_cfg.simOptions.phases.erase(
                cell_cfg.simOptions.phases.begin());
        agg.merge(runPolicyCell(region, machine, kind, cell_cfg));
    }
    return agg;
}

AggregateResult
runPolicyCell(const Trace &trace, const MachineConfig &machine,
              PolicyKind kind, const ExperimentConfig &cfg)
{
    if (cfg.regions > 0)
        return runRegionSampledCell(trace.soa(), machine, kind, cfg);

    PolicyRun run = runPolicy(trace, machine, kind, cfg);
    // The differential oracle compares whole-trace CPIs; a phased
    // run's top-level CPI covers only the measured phases, so the
    // comparison is no longer apples-to-apples and is skipped.
    if (cfg.verify.oracle && cfg.simOptions.phases.empty()) {
        HOST_PROF_SCOPE("verify.oracle");
        checkCellOracle(trace, machine, kind, cfg,
                        run.sim.instructions, run.sim.cycles);
    }
    AggregateResult agg =
        toAggregate(run.sim.instructions, run.sim.cycles,
                    run.breakdown, run.sim.globalValues,
                    run.sim.stats);
    agg.intervals = std::move(run.intervals);
    agg.adaptive = run.adaptive;
    agg.adaptiveLane = std::move(run.adaptiveLane);
    agg.phases = std::move(run.sim.phases);
    return agg;
}

AggregateResult
runIdealCell(const Trace &trace, const MachineConfig &machine,
             const ExperimentConfig &cfg,
             ListSchedOptions::Priority priority)
{
    const MachineConfig ref = MachineConfig::monolithic();

    // Reference 1x8w run supplies the dispatch constraints (the
    // paper schedules traces retiring from the 1x8w back end).
    UnifiedSteering steering(UnifiedSteeringOptions{}, nullptr,
                             nullptr);
    AgeScheduling age;
    SimResult ref_run = TimingSim(ref, trace, steering, age).run();

    ListSchedOptions opts;
    opts.priority = priority;

    // The non-oracle priorities need trained predictors: train
    // them with a focused run on the reference machine.
    CriticalityPredictor crit;
    LocPredictor loc;
    if (priority != ListSchedOptions::Priority::DataflowHeight) {
        OnlineCriticalityTrainer trainer(trace, &crit, &loc,
                                         cfg.trainChunk);
        UnifiedSteeringOptions fopt;
        fopt.focusOnCritical = true;
        UnifiedSteering fsteer(fopt, &crit, nullptr);
        CriticalScheduling fsched(crit);
        TimingSim train_sim(ref, trace, fsteer, fsched, &trainer);
        (void)train_sim.run();
        opts.locPred = &loc;
        opts.critPred = &crit;
    }

    ListSchedResult sched = [&] {
        HOST_PROF_SCOPE("listsched.schedule");
        return listSchedule(trace, ref_run.timing, machine, opts);
    }();
    CpBreakdown empty;
    // The list scheduler has no registry of its own; keep the
    // reference run's snapshot so ideal cells still carry stats.
    return toAggregate(sched.instructions, sched.cycles, empty,
                       sched.globalValues, ref_run.stats);
}

AggregateResult
runAggregate(const std::string &workload, const MachineConfig &machine,
             PolicyKind kind, const ExperimentConfig &cfg,
             TraceCache *cache)
{
    return aggregateOverSeeds(
        workload, cfg, cache, [&](const Trace &trace) {
            return runPolicyCell(trace, machine, kind, cfg);
        });
}

AggregateResult
runIdealAggregate(const std::string &workload,
                  const MachineConfig &machine,
                  const ExperimentConfig &cfg,
                  ListSchedOptions::Priority priority,
                  TraceCache *cache)
{
    return aggregateOverSeeds(
        workload, cfg, cache, [&](const Trace &trace) {
            return runIdealCell(trace, machine, cfg, priority);
        });
}

} // namespace csim
