/**
 * @file
 * Experiment harness: wires predictors, trainer, steering and
 * scheduling together for each policy the paper evaluates, runs
 * benchmark x machine x policy sweeps with seed averaging, and returns
 * aggregate CPI + critical-path statistics. All bench binaries build
 * on these entry points.
 */

#ifndef CSIM_HARNESS_EXPERIMENT_HH
#define CSIM_HARNESS_EXPERIMENT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/timing_sim.hh"
#include "critpath/attribution.hh"
#include "listsched/list_scheduler.hh"
#include "obs/chrome_trace.hh"
#include "obs/interval_profiler.hh"
#include "policy/adaptive_manager.hh"
#include "workloads/registry.hh"

namespace csim {

class TraceCache;

/** The steering/scheduling policy stacks evaluated in the paper. */
enum class PolicyKind
{
    ModN,            ///< round-robin baseline
    LoadBal,         ///< least-loaded baseline
    Dep,             ///< dependence-based steering, age scheduling
    Focused,         ///< Fields et al. focused steering & scheduling
    FocusedLoc,      ///< + LoC-based scheduling          (Fig. 14 'l')
    FocusedLocStall, ///< + stall-over-steer              (Fig. 14 's')
    FocusedLocStallProactive, ///< + proactive load-bal.  (Fig. 14 'p')
};

const char *policyName(PolicyKind kind);

/**
 * Verification knobs (src/verify). Both default off: the checker adds
 * per-event work to every simulated cycle and the oracle roughly
 * triples a cell's cost (it reruns the cell on two bounding models),
 * so production sweeps pay nothing. Bench binaries enable both with
 * `--check`; the fuzzer drives them directly.
 */
struct VerifyConfig
{
    /** Attach a live PipelineChecker to every measured run. */
    bool checker = false;
    /** Differential CPI bounds after every policy cell. */
    bool oracle = false;
    /**
     * Slack for the oracle bounds: the bounding models are different
     * discrete schedules, so an equal-performance machine can land a
     * hair under the bound without a bug.
     */
    double oracleRelTol = 0.02;
    /** Die on the first violation (CI); false: count into verify.*. */
    bool panicOnViolation = true;
};

/**
 * Interval-profiling knobs (src/obs). Off by default: the profiler
 * adds per-event bookkeeping to every cycle and the ground-truth
 * scoring pass re-walks the depgraph after the run. Bench binaries
 * enable it with `--profile` / `--profile-interval`.
 */
struct ProfileConfig
{
    /** Attach an IntervalProfiler to every measured run. */
    bool enabled = false;
    /** Interval length in cycles. */
    std::uint64_t intervalCycles = 10000;
    /**
     * Score the steer-time criticality predictions against the chunked
     * depgraph ground truth after each measured run (profiler.crit.*).
     */
    bool scoreCriticality = true;
};

/**
 * Closed-loop adaptive steering knobs (src/policy/adaptive_manager).
 * Off by default: an enabled manager attaches an interval watcher to
 * every measured run and retunes the live policy knobs at each
 * interval close. Bench binaries enable it with `--adaptive`.
 */
struct AdaptiveConfig
{
    /** Attach an AdaptiveManager to every measured run. */
    bool enabled = false;
    /** Decision interval length in cycles. */
    std::uint64_t intervalCycles = 2000;
    /** Consecutive intervals before a phase transition is taken. */
    unsigned reactionIntervals = 2;
    /** Minimum intervals dwelt in a phase between transitions. */
    unsigned minDwellIntervals = 3;
    /** Undo a knob change whose probe window regressed CPI. */
    bool revertOnRegression = true;
    /** Fractional CPI worsening that counts as a regression. */
    double regressionTolerance = 0.05;
};

struct ExperimentConfig
{
    std::uint64_t instructions = 60000;
    std::vector<std::uint64_t> seeds = {1, 2, 3};
    /** Full-trace runs used to warm the predictors before measuring
     *  (the paper warms predictors/caches before its samples). */
    unsigned warmupRuns = 1;
    /** Commit-chunk length for online criticality training. */
    std::uint64_t trainChunk = 8192;
    /** Stall-over-steer LoC threshold (paper: 30%). */
    double stallThreshold = 0.30;
    /** LoC predictor strata (paper: 16 levels in 4 bits). */
    unsigned locLevels = 16;
    SimOptions simOptions = {};
    VerifyConfig verify = {};
    ProfileConfig profile = {};
    AdaptiveConfig adaptive = {};

    /**
     * SimPoint-style region sampling: instead of simulating the whole
     * trace, simulate `regions` evenly spaced regions of `regionLen`
     * committed instructions each, every region preceded by a
     * `regionWarmup`-instruction warmup phase whose stats are
     * discarded. 0 = off (full-trace simulation, the historical
     * behavior). Regions are merged in region order — the same
     * deterministic fold the seed loop uses — so results are
     * byte-identical at any sweep thread count. With sampling on (or
     * with simOptions.phases set) the legacy full-pass warmupRuns are
     * skipped: the per-region warmup phase replaces them.
     */
    unsigned regions = 0;
    /** Measured instructions per sampled region. */
    std::uint64_t regionLen = 0;
    /** Warmup instructions run (and discarded) before each region. */
    std::uint64_t regionWarmup = 0;
};

/**
 * FNV-1a digest (16 hex digits) of an ExperimentConfig's canonical
 * rendering: every deterministic knob — instructions, seeds, warmup,
 * training, thresholds, verify/profile/adaptive/region settings, sim
 * options and phase specs — in a fixed order. Ledger jobBegin events
 * carry this so a replayed run can prove it executed the same declared
 * experiment. Pointer-valued observer hooks are excluded (they do not
 * describe the experiment, only its instrumentation).
 */
std::string configDigest(const ExperimentConfig &cfg);

/** Seed-aggregated outcome of a (workload, machine, policy) cell. */
struct AggregateResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    /** Critical-path cycles per category, summed over seeds. */
    std::array<std::uint64_t, numCpCategories> categoryCycles = {};
    std::uint64_t contentionEventsCritical = 0;
    std::uint64_t contentionEventsOther = 0;
    std::uint64_t fwdEventsLoadBal = 0;
    std::uint64_t fwdEventsDyadic = 0;
    std::uint64_t fwdEventsOther = 0;
    std::uint64_t globalValues = 0;
    /** Merged registry snapshots from all seeds' measured runs
     *  (counters summed, formulas seed-averaged). */
    StatsSnapshot stats;
    /** Interval time series, merged index-wise across seeds (empty
     *  unless cfg.profile.enabled). */
    IntervalSeries intervals;
    /** Adaptive-manager aggregate (present() only when
     *  cfg.adaptive.enabled; counters sum across seeds). */
    AdaptiveSummary adaptive;
    /** Adaptive decision lane, concatenated across seeds in the
     *  deterministic merge order (Chrome trace export). */
    std::vector<AdaptiveLanePoint> adaptiveLane;
    /**
     * Phase outcomes when phases (or region sampling) were configured.
     * Like-named phase lists merge elementwise across seeds/regions,
     * so "warmup" and "measure" stay two entries with summed spans.
     */
    std::vector<PhaseResult> phases;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
            static_cast<double>(instructions) : 0.0;
    }

    /** Per-category contribution expressed in CPI units. */
    double
    categoryCpi(CpCategory cat) const
    {
        return instructions ?
            static_cast<double>(
                categoryCycles[static_cast<std::size_t>(cat)]) /
            static_cast<double>(instructions) : 0.0;
    }

    double
    globalValuesPerInst() const
    {
        return instructions ? static_cast<double>(globalValues) /
            static_cast<double>(instructions) : 0.0;
    }

    /**
     * Fold another result in (the seed-accumulation step): integer
     * fields sum, registry snapshots merge. Merging per-seed results
     * in seed order is exactly the sequential aggregation loop, which
     * is what lets the sweep runner compute cells in parallel and
     * still produce bit-identical aggregates.
     */
    void merge(const AggregateResult &other);
};

/** One policy run over one already-built trace (no seed averaging). */
struct PolicyRun
{
    SimResult sim;
    CpBreakdown breakdown;
    /**
     * Live-checker + post-run-audit violations (cfg.verify.checker
     * with panicOnViolation off; always 0 otherwise — with panic on,
     * a violation aborts before the run returns).
     */
    std::uint64_t checkerViolations = 0;
    /** First violation's description (the fuzzer's reproducer line). */
    std::string checkerDetail;
    /** The measured run's interval series (cfg.profile.enabled). */
    IntervalSeries intervals;
    /** Adaptive-manager outcome (cfg.adaptive.enabled). */
    AdaptiveSummary adaptive;
    /** Adaptive decision lane (cfg.adaptive.enabled). */
    std::vector<AdaptiveLanePoint> adaptiveLane;
    /** Idle spans the measured run's skip-ahead jumped over (always 0
     *  under --legacy-step or with observers attached). */
    std::uint64_t skipSpans = 0;
    /** Cycles those spans covered. */
    std::uint64_t skipCycles = 0;
};

/**
 * Run a policy stack on a trace. Predictors are created fresh, warmed
 * with cfg.warmupRuns full passes, then the measured run is performed
 * (training continues during measurement, as in real hardware).
 */
PolicyRun runPolicy(const Trace &trace, const MachineConfig &machine,
                    PolicyKind kind, const ExperimentConfig &cfg);

/**
 * One (workload, machine, policy, seed) cell measured on an
 * already-built trace: a runPolicy pass folded into AggregateResult
 * form. This is the unit of work the sweep runner parallelizes.
 */
AggregateResult runPolicyCell(const Trace &trace,
                              const MachineConfig &machine,
                              PolicyKind kind,
                              const ExperimentConfig &cfg);

/**
 * Region-sampled cell evaluation straight off a column view (e.g. an
 * mmap-ed trace store; cfg.regions must be set). Only the sampled
 * regions are materialized as AoS traces, so peak RSS stays
 * O(regions x region span) — for a 10M-instruction store mapped from
 * disk, only the sampled pages are ever touched. Region results merge
 * in region order, so the outcome is thread-count invariant.
 */
AggregateResult runRegionSampledCell(const TraceSoA &soa,
                                     const MachineConfig &machine,
                                     PolicyKind kind,
                                     const ExperimentConfig &cfg);

/**
 * One idealized list-scheduling cell on an already-built trace
 * (Sec. 2.2): a reference 1x8w run supplies dispatch constraints, the
 * non-oracle priorities train their predictors with a focused run,
 * then the trace is list-scheduled onto the target machine.
 */
AggregateResult runIdealCell(const Trace &trace,
                             const MachineConfig &machine,
                             const ExperimentConfig &cfg,
                             ListSchedOptions::Priority priority =
                                 ListSchedOptions::Priority::
                                     DataflowHeight);

/**
 * Seed-averaged policy evaluation for one workload. With a cache the
 * per-seed traces are fetched from (and retained by) it; without one
 * they are built fresh, exactly as before the cache existed.
 */
AggregateResult runAggregate(const std::string &workload,
                             const MachineConfig &machine,
                             PolicyKind kind,
                             const ExperimentConfig &cfg,
                             TraceCache *cache = nullptr);

/**
 * Seed-averaged idealized list scheduling (Sec. 2.2) — the seed loop
 * over runIdealCell.
 */
AggregateResult runIdealAggregate(const std::string &workload,
                                  const MachineConfig &machine,
                                  const ExperimentConfig &cfg,
                                  ListSchedOptions::Priority priority =
                                      ListSchedOptions::Priority::
                                          DataflowHeight,
                                  TraceCache *cache = nullptr);

} // namespace csim

#endif // CSIM_HARNESS_EXPERIMENT_HH
