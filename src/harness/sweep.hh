/**
 * @file
 * Declarative experiment sweeps with a parallel cell executor.
 *
 * Every figure in the paper is a sweep over (workload x machine x
 * policy x seed) cells. A SweepSpec declares the cells; SweepRunner
 * expands them into independent (cell, seed) jobs, executes the jobs
 * on a std::thread worker pool, fetches each job's annotated trace
 * from a shared TraceCache (built once per (workload, seed, ...) key),
 * and merges per-seed results back into per-cell AggregateResults in
 * declaration/seed order. Because each job is deterministic and the
 * merge order is fixed, a run with N worker threads is bit-identical
 * to the 1-thread (and the old hand-rolled sequential) path.
 *
 * Thread count: explicit argument > CSIM_THREADS environment variable
 * > std::thread::hardware_concurrency(). A malformed CSIM_THREADS
 * value (zero, negative, garbage) is a fatal error, never a silent
 * fallback.
 */

#ifndef CSIM_HARNESS_SWEEP_HH
#define CSIM_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/trace_cache.hh"

namespace csim {

class RunLedger;

/**
 * Parse a worker-thread count from a flag or environment variable:
 * decimal digits only, in [1, 65536]. Anything else — empty, signed,
 * zero, trailing garbage, absurdly large — is fatal, quoting `source`
 * (e.g. "--threads", "CSIM_THREADS") and the offending value.
 */
unsigned parseThreadCount(const std::string &value, const char *source);

/** Whether a cell runs the timing simulator or the idealized
 *  list scheduler (Sec. 2.2). */
enum class CellMode
{
    Timing,
    Ideal,
};

/** One declared (workload, machine, policy-or-ideal) cell; the seed
 *  axis comes from the cell's ExperimentConfig. */
struct SweepCell
{
    std::string workload;
    MachineConfig machine;
    CellMode mode = CellMode::Timing;
    /** Timing cells only. */
    PolicyKind policy = PolicyKind::Focused;
    /** Ideal cells only. */
    ListSchedOptions::Priority priority =
        ListSchedOptions::Priority::DataflowHeight;
    /** Per-cell config override (ablation axes); unset inherits the
     *  spec-wide config. */
    std::optional<ExperimentConfig> cfg;
    /** Appended to label() — disambiguates cells that share a
     *  (workload, machine, policy) triple but differ in config (e.g.
     *  "+adaptive"). */
    std::string labelSuffix;

    /** "gcc/4x2w/focused", "gzip/8x1w/ideal", "vpr/2x4w/ideal-loc",
     *  "gcc/4x2w/focused+loc+stall+adaptive". */
    std::string label() const;
};

/** A declared experiment grid: shared config + cells. */
struct SweepSpec
{
    ExperimentConfig cfg;
    std::vector<SweepCell> cells;

    /** Append a cell; returns its index into the results. */
    std::size_t add(SweepCell cell);

    std::size_t addTiming(std::string workload, MachineConfig machine,
                          PolicyKind policy);

    std::size_t addIdeal(std::string workload, MachineConfig machine,
                         ListSchedOptions::Priority priority =
                             ListSchedOptions::Priority::
                                 DataflowHeight);

    /** Cross product of timing cells, workload-major. */
    void crossTiming(const std::vector<std::string> &workloads,
                     const std::vector<MachineConfig> &machines,
                     const std::vector<PolicyKind> &policies);

    /** The effective config of cell i (override or spec-wide). */
    const ExperimentConfig &cellConfig(std::size_t i) const;
};

/** Per-cell results, keyed by declaration index. */
struct SweepOutcome
{
    std::vector<SweepCell> cells;
    std::vector<AggregateResult> results;
    unsigned threads = 1;
    double wallSeconds = 0.0;

    const AggregateResult &
    at(std::size_t i) const
    {
        return results.at(i);
    }
};

class SweepRunner
{
  public:
    /**
     * @param threads Worker threads; 0 resolves via defaultThreads().
     * @param cache Shared trace cache; null uses a runner-owned one.
     */
    explicit SweepRunner(unsigned threads = 0,
                         TraceCache *cache = nullptr);

    /** CSIM_THREADS when set and valid, else hardware_concurrency. */
    static unsigned defaultThreads();

    unsigned threads() const { return threads_; }
    TraceCache &cache() { return cache_ ? *cache_ : ownCache_; }

    /**
     * Attach a run ledger (may be null to detach). Every subsequent
     * run() emits sweepBegin / jobBegin / jobEnd / cellEnd / sweepEnd
     * events into it and keeps its progress counters live for the
     * heartbeat sampler. Workers also publish a "cell=... seed=..."
     * context line to the crash flight recorder. The ledger must
     * outlive the runner's run() calls.
     */
    void setLedger(RunLedger *ledger) { ledger_ = ledger; }

    /** Execute every (cell, seed) job and merge deterministically. */
    SweepOutcome run(const SweepSpec &spec);

    /**
     * Order-free parallel execution of fn(0..n-1) on the worker pool;
     * returns when all indices completed. The building block for
     * benches whose per-cell work is not an AggregateResult (ILP
     * capture, ground-truth criticality, consumer analysis): each
     * index writes its own result slot, the caller merges in index
     * order afterwards, and determinism follows as for run().
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    unsigned threads_;
    TraceCache *cache_;
    TraceCache ownCache_;
    RunLedger *ledger_ = nullptr;
};

} // namespace csim

#endif // CSIM_HARNESS_SWEEP_HH
