/**
 * @file
 * Machine-readable experiment output.
 *
 * JsonWriter is a tiny streaming JSON emitter (no external deps);
 * BenchContext is the shared command-line front end of every bench
 * binary: it parses `--json <path>`, `--instructions N`,
 * `--seeds a,b,c`, `--threads N`, `--check`, `--profile`,
 * `--profile-interval N`, `--adaptive`, `--adaptive-interval N`,
 * `--trace-out <path>`, `--ledger-out <path>`, `--heartbeat-ms N`,
 * `--stats-filter p1,p2`, `--legacy-step`, `--regions K`,
 * `--region-len N` and `--warmup N`, owns the sweep runner
 * + trace cache the
 * bench executes on, wires the run ledger + crash flight recorder
 * (src/obs) into every bench, collects FigureGrids, scalars and
 * per-run registry snapshots (plus interval series when profiling)
 * while the bench runs, and on finish() writes one report file with a
 * stable schema (see README "Observability" and docs/SCHEMA.md):
 *
 *   {
 *     "schemaVersion": 7,
 *     "benchmark": "<name>",
 *     "threads": <worker thread count>,
 *     "wallSeconds": <bench wall-clock time>,
 *     "provenance": {"gitSha", "buildType", "buildFlags", "hostProf",
 *                    "cmdline", "env", "traceHashes"},
 *     "grids":   [{"title", "columns", "rows", "averages"}, ...],
 *     "scalars": {"<name>": <number>, ...},
 *     "runs":    [{"label": "<wl/machine/policy>",
 *                  "stats": {"<stat>": <number> | {distribution}},
 *                  "phases": [{"name", "isWarmup",     // phased
 *                              "instructions",         // runs only
 *                              "cycles", "cpi"}, ...],
 *                  "intervals": {"intervalCycles": N,   // profiled
 *                                "series": [...]},      // runs only
 *                  "adaptive": {"runs", "intervals",    // adaptive
 *                               "transitions",          // runs only
 *                               "reverts",
 *                               "phases": {"smooth": N, ...},
 *                               "finalKnobs": {"stallThreshold",
 *                                              "locLowCutoff",
 *                                              "pressure"}},
 *                  "host": {"wallSeconds", "instructions",
 *                           "hostMips", "peakRssBytes"}},  // optional
 *                 ...,
 *                 {"label": "traceCache", "stats": {...}}],
 *     "host":    {"wallSeconds", "hostMips",   // process-wide
 *                 "measuredInstructions",
 *                 "peakRssBytes", "currentRssBytes",
 *                 "heapBytes", "heapHighWaterBytes",
 *                 "timerTree": {"name", "calls", "ns",
 *                               "instructions", "mips",
 *                               "children": [...]},
 *                 "traceCache": {"traceCache.time.*": <number>}}
 *   }
 *
 * The top-level host.hostMips divides only *measured* simulation
 * instructions by the bench wall time: instructions retired inside
 * warmup passes ("harness.warmup") or the trace-build pipelines
 * ("trace.*" / "traceCache.*") are excluded, so the figure answers
 * "how fast does this machine simulate measured work" instead of
 * silently double-counting discarded passes.
 *
 * Each series entry carries "start", "cycles", a "cpiStack" object
 * whose components sum exactly to "cycles", event counts and a
 * per-cluster lane array; "mergeCount" is the number of seed runs
 * summed into the series (per-run means divide by it). Apart from
 * "threads", "wallSeconds", the "host" blocks (wall times and memory
 * vary run to run) and the provenance "cmdline"/"env" pair (which
 * describe the invocation itself) the report is byte-identical across
 * thread counts — including the interval series, whose seed merge
 * happens in fixed declaration order, and the provenance
 * "traceHashes". The "host" block is absent when host profiling is
 * compiled out or disabled at runtime.
 * tools/check_bench_json.py validates this schema in CI.
 */

#ifndef CSIM_HARNESS_JSON_REPORT_HH
#define CSIM_HARNESS_JSON_REPORT_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/timing.hh"
#include "harness/report.hh"
#include "obs/chrome_trace.hh"
#include "obs/interval_profiler.hh"
#include "obs/stats_registry.hh"
#include "policy/adaptive_manager.hh"

namespace csim {

struct ExperimentConfig;
struct SweepOutcome;
class RunLedger;
class SweepRunner;
class TraceCache;

/**
 * Minimal streaming JSON writer. The caller drives the structure
 * (beginObject/key/value/...); the writer tracks comma placement and
 * indentation. Doubles print with %.12g; NaN and infinities become
 * null (JSON has no encoding for them).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

  private:
    void beforeValue();
    void writeEscaped(const std::string &s);

    std::ostream &out_;
    /** One frame per open container: true once it holds an element. */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

/** Serialize one frozen stat (scalar or distribution payload). */
void writeStatValue(JsonWriter &w, const StatValue &v);

/** Serialize a whole snapshot as an object keyed by stat name. */
void writeSnapshot(JsonWriter &w, const StatsSnapshot &snap);

/** Host-side cost of one measured run (see addRunHost). */
struct RunHostMetrics
{
    /** Wall seconds the run's sweep took. */
    double wallSeconds = 0.0;
    /** Simulated instructions retired during those seconds. */
    std::uint64_t instructions = 0;
    /** Peak resident set sampled after the run (0: not sampled). */
    std::uint64_t peakRssBytes = 0;
};

/**
 * Shared bench command line + JSON report accumulator.
 *
 * Usage in a bench main():
 *
 *   BenchContext ctx("bench_fig14_policies", argc, argv);
 *   ctx.apply(cfg);              // --instructions / --seeds overrides
 *   ...
 *   ctx.addGrid(grid);
 *   ctx.addRunStats("gcc/4x2w/focused", agg.stats);
 *   return ctx.finish();         // writes --json file when requested
 */
class BenchContext
{
  public:
    /** Parses argv; unknown flags are fatal (prints usage first). */
    BenchContext(std::string benchmark, int argc, char **argv);
    ~BenchContext();

    /**
     * Apply --instructions / --seeds overrides to a config. `--check`
     * additionally arms cfg.verify: every measured run gets a live
     * PipelineChecker + post-run audit and every policy cell is held
     * to the differential CPI oracles (fatal on violation).
     * `--profile` arms cfg.profile the same way. `--legacy-step`
     * forces dense cycle stepping (skip-ahead off) in every run,
     * warmups included — results must be byte-identical either way.
     */
    void apply(ExperimentConfig &cfg) const;

    /** True when --check was given. */
    bool checkRequested() const { return check_; }

    /** True when --profile / --profile-interval / --trace-out given. */
    bool profileRequested() const { return profile_; }

    /** True when --adaptive / --adaptive-interval was given. */
    bool adaptiveRequested() const { return adaptive_; }

    bool jsonRequested() const { return !jsonPath_.empty(); }
    const std::string &jsonPath() const { return jsonPath_; }

    /** Chrome trace output path ("" when --trace-out absent). */
    const std::string &traceOutPath() const { return traceOutPath_; }

    /** NDJSON run-ledger path ("" when --ledger-out absent). */
    const std::string &ledgerPath() const { return ledgerPath_; }

    /** The live run ledger (null without --ledger-out). Already wired
     *  into runner(); benches with custom phases may emit their own
     *  events through it. */
    RunLedger *ledger() { return ledger_.get(); }

    /** Worker threads (--threads, CSIM_THREADS, hw concurrency). */
    unsigned threads() const;

    /** The bench-wide trace cache (shared by runner()). */
    TraceCache &traceCache();

    /** The bench's sweep runner, created on first use. */
    SweepRunner &runner();

    /** Record a finished grid (copied; call after the grid is full). */
    void addGrid(const FigureGrid &grid);

    /** Record one aggregate cell's merged registry snapshot, plus its
     *  interval series when the cell was profiled, its phase
     *  outcomes when phases / region sampling were configured, and its
     *  adaptive-manager summary + decision lane when adaptive steering
     *  was enabled. */
    void addRunStats(const std::string &label, const StatsSnapshot &s,
                     const IntervalSeries &intervals = IntervalSeries{},
                     const std::vector<PhaseResult> &phases = {},
                     const AdaptiveSummary &adaptive = AdaptiveSummary{},
                     const std::vector<AdaptiveLanePoint> &adaptiveLane =
                         {});

    /** Record every cell of a sweep outcome via addRunStats. */
    void addSweepRuns(const SweepOutcome &outcome);

    /**
     * Attach host-side cost metrics to the already-recorded run with
     * this label (fatal when the label is unknown). Serialized as the
     * run's "host" object with a derived "hostMips"; excluded from the
     * report's deterministic region.
     */
    void addRunHost(const std::string &label,
                    const RunHostMetrics &host);

    /** Record a loose named number (model params, derived metrics). */
    void addScalar(const std::string &name, double value);

    /** Write the JSON report if --json was given; returns exit code. */
    int finish();

  private:
    struct RunEntry
    {
        std::string label;
        StatsSnapshot stats;
        IntervalSeries intervals;
        /** Merged phase outcomes (empty: unphased run). */
        std::vector<PhaseResult> phases;
        /** Adaptive-manager aggregate (present() when the run was
         *  adaptive). */
        AdaptiveSummary adaptive;
        /** Adaptive decision lane for the Chrome trace. */
        std::vector<AdaptiveLanePoint> adaptiveLane;
        /** Host cost metrics; present when wallSeconds > 0. */
        RunHostMetrics host;
    };

    std::string benchmark_;
    std::string jsonPath_;
    std::string traceOutPath_;            ///< "": no Chrome trace
    std::string ledgerPath_;              ///< "": no run ledger
    std::string cmdline_;                 ///< shell-quoted replay command
    unsigned heartbeatMs_ = 1000;         ///< --heartbeat-ms period
    std::uint64_t instructions_ = 0;      ///< 0: keep bench default
    std::vector<std::uint64_t> seeds_;    ///< empty: keep bench default
    unsigned threadsArg_ = 0;             ///< 0: resolve automatically
    bool check_ = false;                  ///< --check: arm cfg.verify
    bool legacyStep_ = false;             ///< --legacy-step: dense loop
    bool profile_ = false;                ///< --profile: arm cfg.profile
    std::uint64_t profileInterval_ = 0;   ///< 0: keep config default
    bool adaptive_ = false;               ///< --adaptive: arm cfg.adaptive
    std::uint64_t adaptiveInterval_ = 0;  ///< 0: keep config default
    unsigned regions_ = 0;                ///< --regions: sampled regions
    std::uint64_t regionLen_ = 0;         ///< --region-len: instrs each
    std::uint64_t warmup_ = 0;            ///< --warmup: phase warmup
    /** --stats-filter / CSIM_STATS_FILTER prefixes ("": no filter). */
    std::vector<std::string> statsFilter_;
    std::chrono::steady_clock::time_point start_;
    std::unique_ptr<TraceCache> cache_;
    std::unique_ptr<RunLedger> ledger_;
    std::unique_ptr<SweepRunner> runner_;
    std::vector<FigureGrid> grids_;
    std::vector<RunEntry> runs_;
    std::vector<std::pair<std::string, double>> scalars_;
};

} // namespace csim

#endif // CSIM_HARNESS_JSON_REPORT_HH
