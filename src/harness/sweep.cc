#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_prof.hh"
#include "obs/run_ledger.hh"

namespace csim {

unsigned
parseThreadCount(const std::string &value, const char *source)
{
    constexpr unsigned long maxThreads = 65536;
    bool digits_only = !value.empty();
    for (char c : value)
        digits_only = digits_only && c >= '0' && c <= '9';
    if (!digits_only)
        CSIM_FATAL_F("%s: thread count '%s' is not a positive integer",
                     source, value.c_str());
    char *end = nullptr;
    const unsigned long n = std::strtoul(value.c_str(), &end, 10);
    if (*end != '\0' || n == 0 || n > maxThreads)
        CSIM_FATAL_F("%s: thread count '%s' out of range [1, %lu]",
                     source, value.c_str(), maxThreads);
    return static_cast<unsigned>(n);
}

namespace {

const char *
priorityName(ListSchedOptions::Priority priority)
{
    switch (priority) {
      case ListSchedOptions::Priority::DataflowHeight:
        return "ideal";
      case ListSchedOptions::Priority::Loc:
        return "ideal-loc";
      case ListSchedOptions::Priority::BinaryCritical:
        return "ideal-binary";
      default:
        CSIM_PANIC("priorityName: bad priority");
    }
}

} // anonymous namespace

std::string
SweepCell::label() const
{
    std::string out = workload;
    out += '/';
    out += machine.name();
    out += '/';
    out += mode == CellMode::Timing ? policyName(policy)
                                    : priorityName(priority);
    out += labelSuffix;
    return out;
}

std::size_t
SweepSpec::add(SweepCell cell)
{
    cells.push_back(std::move(cell));
    return cells.size() - 1;
}

std::size_t
SweepSpec::addTiming(std::string workload, MachineConfig machine,
                     PolicyKind policy)
{
    SweepCell cell;
    cell.workload = std::move(workload);
    cell.machine = machine;
    cell.mode = CellMode::Timing;
    cell.policy = policy;
    return add(std::move(cell));
}

std::size_t
SweepSpec::addIdeal(std::string workload, MachineConfig machine,
                    ListSchedOptions::Priority priority)
{
    SweepCell cell;
    cell.workload = std::move(workload);
    cell.machine = machine;
    cell.mode = CellMode::Ideal;
    cell.priority = priority;
    return add(std::move(cell));
}

void
SweepSpec::crossTiming(const std::vector<std::string> &workloads,
                       const std::vector<MachineConfig> &machines,
                       const std::vector<PolicyKind> &policies)
{
    for (const std::string &wl : workloads)
        for (const MachineConfig &machine : machines)
            for (PolicyKind policy : policies)
                addTiming(wl, machine, policy);
}

const ExperimentConfig &
SweepSpec::cellConfig(std::size_t i) const
{
    const SweepCell &cell = cells.at(i);
    return cell.cfg ? *cell.cfg : cfg;
}

SweepRunner::SweepRunner(unsigned threads, TraceCache *cache)
    : threads_(threads ? threads : defaultThreads()), cache_(cache)
{
}

unsigned
SweepRunner::defaultThreads()
{
    if (const char *env = std::getenv("CSIM_THREADS"))
        return parseThreadCount(env, "CSIM_THREADS");
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
SweepRunner::parallelFor(std::size_t n,
                         const std::function<void(std::size_t)> &fn)
{
    const std::size_t workers =
        std::min<std::size_t>(threads_, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Atomic-counter work stealing: whichever worker is free claims
    // the next index. Claim order is nondeterministic; determinism is
    // the caller's job (each index writes only its own result slot).
    // Workers adopt the spawning thread's host-prof scope path so the
    // merged timer tree has the same shape as the inline execution.
    const std::vector<std::string> prof_path = HostProf::currentPath();
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            HostProfPathAdopter prof_adopt(prof_path);
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
}

SweepOutcome
SweepRunner::run(const SweepSpec &spec)
{
    HOST_PROF_SCOPE("sweep.run");
    const auto start = std::chrono::steady_clock::now();

    // Expand cells into independent (cell, seed) jobs, cell-major with
    // seeds in declaration order — the same order the sequential
    // aggregation loop visits them.
    struct Job
    {
        std::size_t cell;
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (std::size_t c = 0; c < spec.cells.size(); ++c)
        for (std::uint64_t seed : spec.cellConfig(c).seeds)
            jobs.push_back(Job{c, seed});

    const std::uint64_t sweepIdx =
        ledger_ ? ledger_->nextSweepIndex() : 0;
    if (ledger_) {
        ledger_->progress().jobsTotal.fetch_add(
            jobs.size(), std::memory_order_relaxed);
        ledger_->sweepBegin(sweepIdx, spec.cells.size(), jobs.size(),
                            threads_);
    }

    std::vector<AggregateResult> jobResults(jobs.size());
    {
        HOST_PROF_SCOPE("sweep.jobs");
        parallelFor(jobs.size(), [&](std::size_t i) {
            const Job &job = jobs[i];
            const SweepCell &cell = spec.cells[job.cell];
            const ExperimentConfig &cfg = spec.cellConfig(job.cell);
            const std::string label = cell.label();

            if (ledger_)
                ledger_->jobBegin(sweepIdx, label, job.seed,
                                  configDigest(cfg));
            if (FlightRecorder::installed()) {
                char ctx[128];
                std::snprintf(ctx, sizeof(ctx),
                              "cell=%s seed=%llu", label.c_str(),
                              static_cast<unsigned long long>(job.seed));
                FlightRecorder::setContext(ctx);
            }

            WorkloadConfig wcfg;
            wcfg.targetInstructions = cfg.instructions;
            wcfg.seed = job.seed;
            std::shared_ptr<const Trace> trace =
                cache().get(cell.workload, wcfg);

            jobResults[i] =
                cell.mode == CellMode::Timing
                    ? runPolicyCell(*trace, cell.machine, cell.policy,
                                    cfg)
                    : runIdealCell(*trace, cell.machine, cfg,
                                   cell.priority);

            if (ledger_) {
                const AggregateResult &res = jobResults[i];
                ledger_->progress().jobsDone.fetch_add(
                    1, std::memory_order_relaxed);
                ledger_->progress().instructionsDone.fetch_add(
                    res.instructions, std::memory_order_relaxed);
                ledger_->jobEnd(sweepIdx, label, job.seed,
                                res.instructions, res.cycles,
                                statsDigest(res.stats));
            }
        });
    }

    // Merge per-seed results in job (= cell-major, seed) order: this
    // replays the exact merge sequence of the sequential path, so the
    // outcome is bit-identical regardless of thread count.
    SweepOutcome out;
    out.cells = spec.cells;
    out.results.resize(spec.cells.size());
    out.threads = threads_;
    {
        HOST_PROF_SCOPE("sweep.merge");
        for (std::size_t i = 0; i < jobs.size(); ++i)
            out.results[jobs[i].cell].merge(jobResults[i]);
    }

    // cellEnd events are emitted from this single-threaded loop, so
    // unlike the concurrent jobBegin/jobEnd stream their file order is
    // itself deterministic (declaration order).
    if (ledger_) {
        for (std::size_t c = 0; c < spec.cells.size(); ++c) {
            const AggregateResult &res = out.results[c];
            ledger_->cellEnd(sweepIdx, spec.cells[c].label(),
                             spec.cellConfig(c).seeds.size(),
                             res.instructions, res.cycles,
                             statsDigest(res.stats));
        }
    }

    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (ledger_)
        ledger_->sweepEnd(sweepIdx, spec.cells.size(), jobs.size(),
                          out.wallSeconds);
    return out;
}

} // namespace csim
