/**
 * @file
 * Shared annotated-trace cache for experiment sweeps.
 *
 * Every (workload, seed, instructions, memory-config, gshare-bits)
 * combination maps to exactly one annotated trace, which is built once
 * and then shared immutably (shared_ptr<const Trace>) across all
 * experiment cells that need it — the trace-build passes (emulation,
 * producer linking, branch and cache annotation) are deterministic, so
 * a cached trace is bit-identical to a fresh build. The cache is
 * thread-safe: concurrent requests for a trace that is still being
 * built block on the in-flight build instead of duplicating it.
 *
 * An optional byte budget evicts least-recently-used entries; evicted
 * traces stay alive for as long as any cell still holds its
 * shared_ptr. Cache activity (builds, hits, evictions, bytes held) is
 * reported through a StatsRegistry so bench JSON reports can show how
 * much redundant work the cache removed.
 *
 * Host-side latency (wall time spent building entries, waiting for the
 * cache lock, or blocking on another thread's in-flight build) lives in
 * a separate time registry ("traceCache.time.*", timeSnapshot()). Wall
 * times vary run to run, so they are surfaced only under the report's
 * "host" block, never mixed into the deterministic simulation stats.
 */

#ifndef CSIM_HARNESS_TRACE_CACHE_HH
#define CSIM_HARNESS_TRACE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/stats_registry.hh"
#include "workloads/registry.hh"

namespace csim {

class TraceCache
{
  public:
    /**
     * @param capacity_bytes LRU byte budget; 0 means unlimited.
     * @param spill_dir When non-empty, entries evicted by the byte
     *        budget are written to this directory as columnar trace
     *        stores (one file per cache key, named by a content hash
     *        of the key) instead of being discarded. A later miss on
     *        a spilled key mmaps the store back instead of re-running
     *        the whole build pipeline — the trace-build passes are
     *        deterministic, so the rehydrated trace is bit-identical.
     *        The directory must exist and files left in it belong to
     *        the caller (a temp dir in the bench binaries).
     */
    explicit TraceCache(std::size_t capacity_bytes = 0,
                        std::string spill_dir = "");

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The annotated trace for this cell key, building it on first use.
     * Blocks if another thread is currently building the same trace.
     */
    std::shared_ptr<const Trace>
    get(const std::string &workload, const WorkloadConfig &cfg,
        const MemoryModelConfig &mem = MemoryModelConfig{},
        unsigned gshare_bits = 16);

    /** Drop every cached entry (in-flight builds must have finished). */
    void clear();

    // Activity counters (all monotonic except bytesHeld/entries).
    std::uint64_t requests() const;
    std::uint64_t builds() const;
    std::uint64_t hits() const;
    std::uint64_t evictions() const;
    std::size_t bytesHeld() const;
    std::size_t entries() const;

    /** Frozen view of the cache's stats registry ("traceCache.*"). */
    StatsSnapshot statsSnapshot() const;

    /** Frozen view of the host-latency registry ("traceCache.time.*").
     *  Nondeterministic wall times; report under "host" only. */
    StatsSnapshot timeSnapshot() const;

    /**
     * Content identity of every trace this cache has seen (held or
     * spilled), as key-sorted (cacheKey, fnv1a64 hex) pairs — the same
     * FNV-1a digest the spill files are named by. The key encodes every
     * deterministic build input, so the hash commits to the trace
     * content; provenance manifests embed this list.
     */
    std::vector<std::pair<std::string, std::string>>
    contentHashes() const;

  private:
    struct Slot
    {
        std::shared_future<std::shared_ptr<const Trace>> future;
        /** Approximate footprint; known once the build finished. */
        std::size_t bytes = 0;
        bool ready = false;
        std::uint64_t lastUse = 0;
    };

    /** Evict ready LRU entries beyond the byte budget (lock held).
     *  The entry named by protect_key is never evicted. */
    void evictLocked(const std::string &protect_key);

    const std::size_t capacityBytes_;
    const std::string spillDir_;

    /** A spilled entry: its store file and the in-memory footprint it
     *  had (the rehydrated size, for the byte budget on reload). */
    struct SpillEntry
    {
        std::string path;
        std::size_t fileBytes = 0;
    };
    std::unordered_map<std::string, SpillEntry> spilled_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Slot> slots_;
    std::uint64_t tick_ = 0;
    std::size_t bytesHeld_ = 0;
    std::size_t peakBytes_ = 0;

    StatsRegistry registry_;
    Counter *statRequests_ = nullptr;
    Counter *statBuilds_ = nullptr;
    Counter *statHits_ = nullptr;
    Counter *statEvictions_ = nullptr;
    Counter *statBytesBuilt_ = nullptr;
    Counter *statBytesEvicted_ = nullptr;
    Counter *statSpillWrites_ = nullptr;
    Counter *statSpillBytes_ = nullptr;
    Counter *statMmapLoads_ = nullptr;
    Counter *statMmapBytes_ = nullptr;

    StatsRegistry timeRegistry_;
    Counter *statBuildNs_ = nullptr;
    Counter *statLockWaitNs_ = nullptr;
    Counter *statHitWaitNs_ = nullptr;
};

} // namespace csim

#endif // CSIM_HARNESS_TRACE_CACHE_HH
