#include "predict/criticality_predictor.hh"

namespace csim {

CriticalityPredictor::CriticalityPredictor()
    : CriticalityPredictor(Params{})
{
}

CriticalityPredictor::CriticalityPredictor(const Params &params)
    : params_(params),
      mask_((std::size_t{1} << params.tableBits) - 1),
      table_(std::size_t{1} << params.tableBits,
             SatCounter(params.counterBits, params.up, params.down, 0))
{
}

std::size_t
CriticalityPredictor::index(Addr pc) const
{
    return (pc >> 2) & mask_;
}

bool
CriticalityPredictor::predict(Addr pc) const
{
    return table_[index(pc)].atLeast(params_.threshold);
}

void
CriticalityPredictor::train(Addr pc, bool critical)
{
    table_[index(pc)].train(critical);
    if (statTrains_) {
        ++*statTrains_;
        if (critical)
            ++*statTrainCritical_;
    }
}

void
CriticalityPredictor::attachStats(StatsRegistry &registry)
{
    statTrains_ = &registry.addCounter(
        "predict.crit.trains", "binary predictor training events");
    statTrainCritical_ = &registry.addCounter(
        "predict.crit.trainsCritical",
        "binary training events with a critical outcome");
}

unsigned
CriticalityPredictor::counterValue(Addr pc) const
{
    return table_[index(pc)].value();
}

void
CriticalityPredictor::reset()
{
    for (SatCounter &c : table_)
        c.reset();
}

} // namespace csim
