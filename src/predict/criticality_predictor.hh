/**
 * @file
 * Fields et al.'s binary criticality predictor: a PC-indexed table of
 * 6-bit saturating counters that increment by 8 when an instruction
 * trains critical and decrement by 1 otherwise; an instruction is
 * predicted critical when its counter reaches the threshold (8). Thus 1
 * in 8 instances being critical suffices for a "critical" prediction
 * (paper Sec. 4, footnote 6).
 */

#ifndef CSIM_PREDICT_CRITICALITY_PREDICTOR_HH
#define CSIM_PREDICT_CRITICALITY_PREDICTOR_HH

#include <vector>

#include "common/sat_counter.hh"
#include "common/types.hh"
#include "obs/stats_registry.hh"

namespace csim {

class CriticalityPredictor
{
  public:
    struct Params
    {
        unsigned tableBits = 12;
        unsigned counterBits = 6;
        unsigned up = 8;
        unsigned down = 1;
        unsigned threshold = 8;
    };

    CriticalityPredictor();
    explicit CriticalityPredictor(const Params &params);

    /** Predict whether the static instruction at pc is critical. */
    bool predict(Addr pc) const;

    /** Train with one dynamic instance's detected criticality. */
    void train(Addr pc, bool critical);

    /** Register training counters with a run's registry (rebindable;
     *  the predictor counts nothing until attached). */
    void attachStats(StatsRegistry &registry);

    /** Raw counter value (tests and diagnostics). */
    unsigned counterValue(Addr pc) const;

    void reset();

  private:
    std::size_t index(Addr pc) const;

    Params params_;
    std::size_t mask_;
    std::vector<SatCounter> table_;

    Counter *statTrains_ = nullptr;
    Counter *statTrainCritical_ = nullptr;
};

} // namespace csim

#endif // CSIM_PREDICT_CRITICALITY_PREDICTOR_HH
