/**
 * @file
 * Likelihood-of-criticality (LoC) predictor (paper Secs. 4 and 7).
 *
 * Tracks, per static instruction, the fraction of dynamic instances that
 * were detected critical, stratified into 16 levels held in 4 bits of
 * state via probabilistic counter updates (Riley & Zilles) — less
 * storage than the 6-bit counters of the binary Fields predictor.
 */

#ifndef CSIM_PREDICT_LOC_PREDICTOR_HH
#define CSIM_PREDICT_LOC_PREDICTOR_HH

#include <vector>

#include "common/prob_counter.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "obs/stats_registry.hh"

namespace csim {

class LocPredictor
{
  public:
    struct Params
    {
        unsigned tableBits = 12;
        unsigned levels = 16;
        std::uint64_t seed = 0x10c0ull;
    };

    LocPredictor();
    explicit LocPredictor(const Params &params);

    /** LoC stratum of the static instruction at pc, 0..levels-1. */
    unsigned level(Addr pc) const;

    /** LoC as a frequency estimate in [0, 1]. */
    double estimate(Addr pc) const;

    /** Train with one dynamic instance's detected criticality. */
    void train(Addr pc, bool critical);

    /** Register training counters with a run's registry (rebindable;
     *  the predictor counts nothing until attached). */
    void attachStats(StatsRegistry &registry);

    unsigned levels() const { return params_.levels; }

    /** Live telemetry: dynamic instances trained since reset().
     *  Read by the adaptive manager at interval closes. */
    std::uint64_t trains() const { return trains_; }
    /** Of those, instances whose detected outcome was critical. */
    std::uint64_t trainsCritical() const { return trainsCritical_; }

    void reset();

  private:
    std::size_t index(Addr pc) const;

    Params params_;
    std::size_t mask_;
    std::vector<ProbCounter> table_;
    Rng rng_;

    Counter *statTrains_ = nullptr;
    Counter *statTrainCritical_ = nullptr;
    std::uint64_t trains_ = 0;
    std::uint64_t trainsCritical_ = 0;
};

} // namespace csim

#endif // CSIM_PREDICT_LOC_PREDICTOR_HH
