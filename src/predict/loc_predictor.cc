#include "predict/loc_predictor.hh"

namespace csim {

LocPredictor::LocPredictor()
    : LocPredictor(Params{})
{
}

LocPredictor::LocPredictor(const Params &params)
    : params_(params),
      mask_((std::size_t{1} << params.tableBits) - 1),
      table_(std::size_t{1} << params.tableBits,
             ProbCounter(params.levels, 0)),
      rng_(params.seed)
{
}

std::size_t
LocPredictor::index(Addr pc) const
{
    return (pc >> 2) & mask_;
}

unsigned
LocPredictor::level(Addr pc) const
{
    return table_[index(pc)].level();
}

double
LocPredictor::estimate(Addr pc) const
{
    return table_[index(pc)].estimate();
}

void
LocPredictor::train(Addr pc, bool critical)
{
    table_[index(pc)].train(critical, rng_);
    ++trains_;
    if (critical)
        ++trainsCritical_;
    if (statTrains_) {
        ++*statTrains_;
        if (critical)
            ++*statTrainCritical_;
    }
}

void
LocPredictor::attachStats(StatsRegistry &registry)
{
    statTrains_ = &registry.addCounter(
        "predict.loc.trains", "LoC predictor training events");
    statTrainCritical_ = &registry.addCounter(
        "predict.loc.trainsCritical",
        "LoC training events with a critical outcome");
}

void
LocPredictor::reset()
{
    for (ProbCounter &c : table_)
        c.reset();
    trains_ = 0;
    trainsCritical_ = 0;
}

} // namespace csim
