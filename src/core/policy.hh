/**
 * @file
 * Abstract interfaces between the timing core and the steering,
 * scheduling and training policies. The core exposes a read-only
 * CoreView; concrete policies live in src/policy and the online
 * criticality trainer in src/critpath, keeping the core free of any
 * predictor knowledge.
 */

#ifndef CSIM_CORE_POLICY_HH
#define CSIM_CORE_POLICY_HH

#include <cstdint>

#include "core/machine_config.hh"
#include "core/timing.hh"
#include "trace/trace.hh"

namespace csim {

class StatsRegistry;

/** Read-only machine state offered to policies during steering. */
class CoreView
{
  public:
    virtual ~CoreView() = default;

    virtual const MachineConfig &config() const = 0;
    virtual Cycle now() const = 0;
    /** Free scheduling-window entries at cluster c. */
    virtual unsigned windowFree(ClusterId c) const = 0;
    /** Occupied scheduling-window entries at cluster c. */
    virtual unsigned windowOccupancy(ClusterId c) const = 0;
    /** Instruction has been steered but has not completed. */
    virtual bool inFlight(InstId id) const = 0;
    /** Instruction has finished executing. */
    virtual bool completed(InstId id) const = 0;
    /** Cluster an already-steered instruction lives on. */
    virtual ClusterId clusterOf(InstId id) const = 0;
    /** Trace record of any dynamic instruction (e.g. a producer). */
    virtual const TraceRecord &record(InstId id) const = 0;
    /** Timing record of any dynamic instruction. */
    virtual const InstTiming &timingOf(InstId id) const = 0;

    /**
     * Static address of any dynamic instruction. Prefer this over
     * record(id).pc when the pc is all you need: the timing core
     * serves it from a dense SoA column instead of dragging a whole
     * 64-byte AoS record through the cache.
     */
    virtual Addr pcOf(InstId id) const { return record(id).pc; }
};

/** The instruction presented to the steering policy. */
struct SteerRequest
{
    InstId id = invalidInstId;
    const TraceRecord *rec = nullptr;
};

/** The policy's placement decision plus prediction snapshots. */
struct SteerDecision
{
    bool stall = false;
    ClusterId cluster = 0;
    SteerReason reason = SteerReason::NoProducer;
    /** Producer cluster the policy preferred (may equal cluster). */
    ClusterId desired = invalidCluster;
    bool dyadicSplit = false;
    bool predictedCritical = false;
    std::uint8_t locLevel = 0;
};

/**
 * Cluster-assignment policy. steer() is called once per instruction in
 * program order; the core guarantees at least one cluster has a free
 * window entry. Returning stall leaves the instruction (and all younger
 * ones) for a later cycle.
 */
class SteeringPolicy
{
  public:
    virtual ~SteeringPolicy() = default;

    /** Called once before a run. @param trace_size dynamic count. */
    virtual void reset(const CoreView &view, std::size_t trace_size)
    {
        (void)view;
        (void)trace_size;
    }

    virtual SteerDecision steer(const CoreView &view,
                                const SteerRequest &req) = 0;

    /**
     * Register the policy's counters with the run's stats registry.
     * Called once per TimingSim construction; a policy reused across
     * runs is re-bound to each new run's registry.
     */
    virtual void registerStats(StatsRegistry &registry)
    {
        (void)registry;
    }

    /** The core placed req on decision.cluster. */
    virtual void
    notifySteered(const CoreView &view, const SteerRequest &req,
                  const SteerDecision &decision)
    {
        (void)view;
        (void)req;
        (void)decision;
    }

    /** The instruction committed. */
    virtual void
    notifyCommit(const CoreView &view, InstId id, const TraceRecord &rec)
    {
        (void)view;
        (void)id;
        (void)rec;
    }

    virtual const char *name() const = 0;
};

/**
 * Issue-priority policy: instructions with smaller priority classes are
 * selected first; the core breaks ties by age. The class is sampled when
 * the instruction is steered (predictions are made in the front end).
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual std::uint32_t priorityClass(const TraceRecord &rec) = 0;

    /** See SteeringPolicy::registerStats. */
    virtual void registerStats(StatsRegistry &registry)
    {
        (void)registry;
    }

    virtual const char *name() const = 0;
};

/** Observer of the in-order commit stream (drives online training). */
class CommitListener
{
  public:
    virtual ~CommitListener() = default;

    virtual void onCommit(const CoreView &view, InstId id) = 0;

    /** See SteeringPolicy::registerStats. */
    virtual void registerStats(StatsRegistry &registry)
    {
        (void)registry;
    }

    /** The run finished; flush any partial state. */
    virtual void onRunEnd(const CoreView &view) { (void)view; }
};

} // namespace csim

#endif // CSIM_CORE_POLICY_HH
