/**
 * @file
 * Passive observation hooks into the timing core's pipeline events.
 *
 * A SimObserver attached through SimOptions::checker (or the
 * SimOptions::observers chain) is driven by TimingSim at every steer,
 * issue, commit and cycle boundary — plus the stall events each stage
 * reports — with a read-only CoreView of the machine state. The core
 * knows nothing about concrete observers; the pipeline invariant
 * checker in src/verify and the interval profiler in src/obs implement
 * this interface, keeping both subsystems out of the core's dependency
 * graph (mirroring how CommitListener decouples predictor training).
 */

#ifndef CSIM_CORE_SIM_OBSERVER_HH
#define CSIM_CORE_SIM_OBSERVER_HH

#include <cstddef>
#include <cstdint>

#include "core/policy.hh"

namespace csim {

class StatsRegistry;

/** Why the in-order steer stage blocked for the rest of a cycle. */
enum class SteerStallCause : std::uint8_t
{
    RobFull,      ///< shared ROB at capacity
    WindowFull,   ///< every cluster scheduling window full
    PolicyStall,  ///< the steering policy chose to stall (Fig. 14 's')
};

/**
 * Pipeline event observer. All hooks default to no-ops so observers
 * override only the events they care about. Hooks fire after the core
 * has updated the instruction's timing record, so view.timingOf(id)
 * reflects the event.
 */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** The run is about to execute cycle 0. */
    virtual void onRunStart(const CoreView &view) { (void)view; }

    /** id was steered into its cluster window this cycle. */
    virtual void onSteer(const CoreView &view, InstId id)
    {
        (void)view;
        (void)id;
    }

    /** id issued this cycle (window entry freed, complete scheduled). */
    virtual void onIssue(const CoreView &view, InstId id)
    {
        (void)view;
        (void)id;
    }

    /**
     * id was ready this cycle but denied issue by its cluster's
     * width/port limits (one event per denied instruction per cycle;
     * the same events sched.replayEvents counts).
     */
    virtual void onIssueDenied(const CoreView &view, InstId id)
    {
        (void)view;
        (void)id;
    }

    /** The steer stage blocked this cycle for the given cause (fires
     *  at most once per cycle). */
    virtual void onSteerStall(const CoreView &view, SteerStallCause cause)
    {
        (void)view;
        (void)cause;
    }

    /** Fetch spent this cycle stalled on an unresolved mispredicted
     *  branch. */
    virtual void onFetchStall(const CoreView &view) { (void)view; }

    /** id retired this cycle (every timestamp final). */
    virtual void onCommit(const CoreView &view, InstId id)
    {
        (void)view;
        (void)id;
    }

    /** All stages have run for cycle view.now(). */
    virtual void onCycleEnd(const CoreView &view) { (void)view; }

    /** The run finished (after the last commit). */
    virtual void onRunEnd(const CoreView &view) { (void)view; }

    /** See SteeringPolicy::registerStats. */
    virtual void registerStats(StatsRegistry &registry)
    {
        (void)registry;
    }
};

} // namespace csim

#endif // CSIM_CORE_SIM_OBSERVER_HH
