/**
 * @file
 * Passive observation hooks into the timing core's pipeline events.
 *
 * A SimObserver attached through SimOptions::checker is driven by
 * TimingSim at every steer, issue, commit and cycle boundary, with a
 * read-only CoreView of the machine state. The core knows nothing
 * about concrete observers; the pipeline invariant checker in
 * src/verify implements this interface, keeping the verification
 * subsystem out of the core's dependency graph (mirroring how
 * CommitListener decouples predictor training).
 */

#ifndef CSIM_CORE_SIM_OBSERVER_HH
#define CSIM_CORE_SIM_OBSERVER_HH

#include <cstddef>

#include "core/policy.hh"

namespace csim {

class StatsRegistry;

/**
 * Pipeline event observer. All hooks default to no-ops so observers
 * override only the events they care about. Hooks fire after the core
 * has updated the instruction's timing record, so view.timingOf(id)
 * reflects the event.
 */
class SimObserver
{
  public:
    virtual ~SimObserver() = default;

    /** The run is about to execute cycle 0. */
    virtual void onRunStart(const CoreView &view) { (void)view; }

    /** id was steered into its cluster window this cycle. */
    virtual void onSteer(const CoreView &view, InstId id)
    {
        (void)view;
        (void)id;
    }

    /** id issued this cycle (window entry freed, complete scheduled). */
    virtual void onIssue(const CoreView &view, InstId id)
    {
        (void)view;
        (void)id;
    }

    /** id retired this cycle (every timestamp final). */
    virtual void onCommit(const CoreView &view, InstId id)
    {
        (void)view;
        (void)id;
    }

    /** All stages have run for cycle view.now(). */
    virtual void onCycleEnd(const CoreView &view) { (void)view; }

    /** The run finished (after the last commit). */
    virtual void onRunEnd(const CoreView &view) { (void)view; }

    /** See SteeringPolicy::registerStats. */
    virtual void registerStats(StatsRegistry &registry)
    {
        (void)registry;
    }
};

} // namespace csim

#endif // CSIM_CORE_SIM_OBSERVER_HH
