#include "core/machine_config.hh"

#include "common/logging.hh"

namespace csim {

MachineConfig
MachineConfig::monolithic()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::clustered(unsigned n)
{
    CSIM_ASSERT(n >= 1 && n <= 8 && 8 % n == 0);
    MachineConfig cfg;
    cfg.numClusters = n;
    cfg.cluster.issueWidth = 8 / n;
    cfg.cluster.intPorts = 8 / n;
    cfg.cluster.fpPorts = (4 + n - 1) / n;   // round up partial ports
    cfg.cluster.memPorts = (4 + n - 1) / n;
    cfg.windowPerCluster = 128 / n;
    return cfg;
}

MachineConfig
MachineConfig::generic(unsigned n, unsigned width)
{
    CSIM_ASSERT(n >= 1 && width >= 1);
    MachineConfig cfg;
    cfg.numClusters = n;
    cfg.cluster.issueWidth = width;
    cfg.cluster.intPorts = width;
    cfg.cluster.fpPorts = (width + 1) / 2;
    cfg.cluster.memPorts = (width + 1) / 2;
    cfg.windowPerCluster = (128 + n - 1) / n;
    return cfg;
}

std::string
MachineConfig::name() const
{
    return std::to_string(numClusters) + "x" +
        std::to_string(cluster.issueWidth) + "w";
}

std::string
MachineConfig::validationError() const
{
    if (numClusters < 1)
        return "numClusters must be >= 1";
    if (numClusters > maxClusters)
        return "numClusters " + std::to_string(numClusters) +
            " exceeds the supported maximum of " +
            std::to_string(maxClusters) +
            " (per-cluster delivery masks are 16 bits wide)";
    if (cluster.issueWidth < 1)
        return "cluster issueWidth must be >= 1";
    if (cluster.intPorts < 1 || cluster.fpPorts < 1 ||
        cluster.memPorts < 1)
        return "every cluster needs >= 1 port of each class (a "
               "portless class deadlocks in-order steering)";
    if (windowPerCluster < 1)
        return "windowPerCluster must be >= 1";
    if (robEntries < 1)
        return "robEntries must be >= 1";
    if (fetchWidth < 1 || dispatchWidth < 1 || commitWidth < 1)
        return "fetch/dispatch/commit widths must be >= 1";
    return "";
}

void
MachineConfig::validate() const
{
    const std::string err = validationError();
    if (!err.empty())
        CSIM_FATAL_F("invalid machine config %s: %s", name().c_str(),
                     err.c_str());
}

} // namespace csim
