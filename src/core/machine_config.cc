#include "core/machine_config.hh"

#include "common/logging.hh"

namespace csim {

MachineConfig
MachineConfig::monolithic()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::clustered(unsigned n)
{
    CSIM_ASSERT(n >= 1 && n <= 8 && 8 % n == 0);
    MachineConfig cfg;
    cfg.numClusters = n;
    cfg.cluster.issueWidth = 8 / n;
    cfg.cluster.intPorts = 8 / n;
    cfg.cluster.fpPorts = (4 + n - 1) / n;   // round up partial ports
    cfg.cluster.memPorts = (4 + n - 1) / n;
    cfg.windowPerCluster = 128 / n;
    return cfg;
}

MachineConfig
MachineConfig::generic(unsigned n, unsigned width)
{
    CSIM_ASSERT(n >= 1 && width >= 1);
    MachineConfig cfg;
    cfg.numClusters = n;
    cfg.cluster.issueWidth = width;
    cfg.cluster.intPorts = width;
    cfg.cluster.fpPorts = (width + 1) / 2;
    cfg.cluster.memPorts = (width + 1) / 2;
    cfg.windowPerCluster = (128 + n - 1) / n;
    return cfg;
}

std::string
MachineConfig::name() const
{
    return std::to_string(numClusters) + "x" +
        std::to_string(cluster.issueWidth) + "w";
}

} // namespace csim
