/**
 * @file
 * Machine configurations: the monolithic 8-wide baseline (Table 1) and
 * its clustered partitionings (2x4w, 4x2w, 8x1w, and generic NxW).
 */

#ifndef CSIM_CORE_MACHINE_CONFIG_HH
#define CSIM_CORE_MACHINE_CONFIG_HH

#include <string>

#include "common/types.hh"

namespace csim {

/**
 * Largest supported cluster count. The timing core tracks per-cluster
 * delivery state in 16-bit masks (one bit per cluster), so geometries
 * beyond 16 clusters must be rejected up front instead of silently
 * overflowing the masks.
 */
inline constexpr unsigned maxClusters = 16;

/** Issue resources of one cluster. */
struct ClusterPorts
{
    /** Total instructions issued per cycle. */
    unsigned issueWidth = 8;
    /** Integer ops (ALU + MUL) per cycle. */
    unsigned intPorts = 8;
    /** Floating point ops per cycle. */
    unsigned fpPorts = 4;
    /** Memory ops (load or store) per cycle. */
    unsigned memPorts = 4;
};

/**
 * Full machine description. Defaults are the paper's Table 1 monolithic
 * baseline; the factory functions derive the clustered machines by
 * dividing execution resources and the scheduling window equally among
 * the clusters (partial per-cluster ports round up, per footnote 1).
 */
struct MachineConfig
{
    unsigned numClusters = 1;
    ClusterPorts cluster = {};
    /** Scheduling window entries per cluster (total 128). */
    unsigned windowPerCluster = 128;
    unsigned robEntries = 256;
    unsigned fetchWidth = 8;
    /** Steering (dispatch into windows) bandwidth. */
    unsigned dispatchWidth = 8;
    unsigned commitWidth = 8;
    /** Front-end stages from fetch to dispatch. */
    unsigned frontendDepth = 13;
    /** Inter-cluster forwarding latency in cycles. */
    unsigned fwdLatency = 2;
    /** Fetch groups end at taken branches. */
    bool fetchStopAtTaken = true;

    /** The 1x8w monolithic baseline. */
    static MachineConfig monolithic();

    /**
     * Partition the monolithic machine into n clusters (n divides 8).
     * n=2 -> 2x4w, n=4 -> 4x2w, n=8 -> 8x1w.
     */
    static MachineConfig clustered(unsigned n);

    /**
     * Generic geometry: n clusters of the given issue width, with fp/mem
     * ports scaled as width/2 rounded up. Used for the 16x1w extension
     * study; window entries are 128/n rounded up.
     */
    static MachineConfig generic(unsigned n, unsigned width);

    /** "1x8w", "4x2w", ... */
    std::string name() const;

    /**
     * Structural validity: cluster count within the bit-mask capacity
     * of the timing core (<= maxClusters), every stage width and port
     * count nonzero (a cluster missing a port class deadlocks the
     * in-order steer stage), and nonzero window/ROB capacity. Returns
     * "" when valid, else a description of the first problem.
     */
    std::string validationError() const;

    /** Fatal on an invalid configuration (user-facing entry points). */
    void validate() const;

    /** Aggregate issue width across clusters. */
    unsigned
    totalWidth() const
    {
        return numClusters * cluster.issueWidth;
    }
};

} // namespace csim

#endif // CSIM_CORE_MACHINE_CONFIG_HH
