// Cluster is header-only; this translation unit exists so the build
// exercises the header standalone (include hygiene).
#include "core/cluster.hh"
