#include "core/timing_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/sim_observer.hh"
#include "obs/host_prof.hh"
#include "obs/pipe_trace.hh"

namespace csim {

// crossMask_ holds one bit per source slot.
static_assert(numSrcSlots <= 8,
              "InstTiming::crossMask is uint8_t: one bit per SrcSlot");
// deliveredMask_ holds one bit per cluster; MachineConfig::validate
// rejects numClusters > maxClusters.
static_assert(maxClusters <= 16,
              "deliveredMask_ is uint16_t: one bit per cluster");

namespace {

/** Dotted-name segment for a steering outcome. */
const char *
steerReasonStatName(SteerReason reason)
{
    switch (reason) {
      case SteerReason::Monolithic: return "monolithic";
      case SteerReason::NoProducer: return "noProducer";
      case SteerReason::Collocated: return "collocated";
      case SteerReason::LoadBalanced: return "loadBalanced";
      case SteerReason::ProactiveLB: return "proactiveLb";
      default:
        CSIM_PANIC("steerReasonStatName: bad reason");
    }
}

constexpr std::size_t numSteerReasons = 5;

} // anonymous namespace

TimingSim::TimingSim(const MachineConfig &config, const Trace &trace,
                     SteeringPolicy &steering,
                     SchedulingPolicy &scheduling,
                     CommitListener *listener, SimOptions options)
    : config_(config), trace_(trace), steering_(steering),
      scheduling_(scheduling), listener_(listener), options_(options)
{
    config.validate();
    // Larger traces would overflow the id bits of the priority keys
    // and silently corrupt issue ordering.
    CSIM_ASSERT(trace.size() <= maxTraceInstructions);
    for (unsigned c = 0; c < config.numClusters; ++c)
        clusters_.emplace_back(config.cluster, config.windowPerCluster);

    const std::size_t n = trace.size();
    timing_.resize(n);
    prioKey_.resize(n, 0);
    pendingOps_.resize(n, 0);
    partialReady_.resize(n, 0);
    waiters_.resize(n);
    deliveredMask_.resize(n, 0);
    buckets_.resize(bucketCount);

    if (options_.collectIlp) {
        ilpCycles_.resize(options_.ilpMaxAvailable + 1, 0);
        ilpIssuedSum_.resize(options_.ilpMaxAvailable + 1, 0);
    }

    if (options_.checker)
        observers_.push_back(options_.checker);
    for (SimObserver *obs : options_.observers)
        if (obs)
            observers_.push_back(obs);

    registerCoreStats();
    for (unsigned c = 0; c < config.numClusters; ++c)
        clusters_[c].attachStats(registry_,
                                 "sim.cluster" + std::to_string(c));
    steering_.registerStats(registry_);
    scheduling_.registerStats(registry_);
    if (listener_)
        listener_->registerStats(registry_);
    for (SimObserver *obs : observers_)
        obs->registerStats(registry_);
}

void
TimingSim::registerCoreStats()
{
    statCycles_ = &registry_.addCounter(
        "sim.cycles", "total simulated cycles");
    statInstructions_ = &registry_.addCounter(
        "sim.instructions", "committed instructions");
    statGlobalValues_ = &registry_.addCounter(
        "sim.globalValues",
        "distinct (value, remote cluster) deliveries over the bypass");
    statSteerStallCycles_ = &registry_.addCounter(
        "steer.stallCycles",
        "cycles the steer stage stalled by policy choice");
    statRobFullCycles_ = &registry_.addCounter(
        "steer.robFullCycles", "cycles steering blocked on a full ROB");
    statAllWindowsFullCycles_ = &registry_.addCounter(
        "steer.windowFullCycles",
        "cycles steering blocked with every cluster window full");
    statFetchStallCycles_ = &registry_.addCounter(
        "fetch.stallCycles",
        "cycles fetch stalled on an unresolved mispredicted branch");
    statPortStarvedEvents_ = &registry_.addCounter(
        "sched.replayEvents",
        "ready instructions denied issue by port limits (inst-cycles)");
    statPriorityInversions_ = &registry_.addCounter(
        "sched.priorityInversions",
        "issues that bypassed a denied instruction of a strictly "
        "higher scheduling class");
    statFwdDyadic_ = &registry_.addCounter(
        "fwd.cause.dyadic",
        "bypass deliveries to consumers with split producers");

    statSteerReason_.resize(numSteerReasons);
    statFwdCause_.resize(numSteerReasons);
    for (std::size_t r = 0; r < numSteerReasons; ++r) {
        const std::string reason =
            steerReasonStatName(static_cast<SteerReason>(r));
        statSteerReason_[r] = &registry_.addCounter(
            "steer.reason." + reason,
            "instructions steered with outcome " + reason);
        statFwdCause_[r] = &registry_.addCounter(
            "fwd.cause." + reason,
            "bypass deliveries to consumers steered as " + reason);
    }

    const Counter *cycles = statCycles_;
    const Counter *insts = statInstructions_;
    const Counter *globals = statGlobalValues_;
    registry_.addFormula(
        "sim.cpi",
        [cycles, insts] {
            return insts->value() ?
                static_cast<double>(cycles->value()) /
                static_cast<double>(insts->value()) : 0.0;
        },
        "cycles per committed instruction");
    registry_.addFormula(
        "sim.ipc",
        [cycles, insts] {
            return cycles->value() ?
                static_cast<double>(insts->value()) /
                static_cast<double>(cycles->value()) : 0.0;
        },
        "committed instructions per cycle");
    registry_.addFormula(
        "sim.globalValuesPerInst",
        [globals, insts] {
            return insts->value() ?
                static_cast<double>(globals->value()) /
                static_cast<double>(insts->value()) : 0.0;
        },
        "bypass deliveries per committed instruction");

    clusterStats_.resize(config_.numClusters);
    for (unsigned c = 0; c < config_.numClusters; ++c) {
        const std::string prefix = "sim.cluster" + std::to_string(c);
        ClusterStats &cs = clusterStats_[c];
        cs.steered = &registry_.addCounter(
            prefix + ".steered", "instructions steered to this cluster");
        cs.windowFullDiverts = &registry_.addCounter(
            prefix + ".steer.windowFullDiverts",
            "steers diverted elsewhere because this window was full");
        cs.intIssued = &registry_.addCounter(
            prefix + ".issue.int", "instructions issued on int ports");
        cs.fpIssued = &registry_.addCounter(
            prefix + ".issue.fp", "instructions issued on fp ports");
        cs.memIssued = &registry_.addCounter(
            prefix + ".issue.mem", "instructions issued on mem ports");

        const Counter *ints = cs.intIssued;
        const Counter *fps = cs.fpIssued;
        const Counter *mems = cs.memIssued;
        const double width = config_.cluster.issueWidth;
        registry_.addFormula(
            prefix + ".issue.utilization",
            [cycles, ints, fps, mems, width] {
                const double issued = static_cast<double>(
                    ints->value() + fps->value() + mems->value());
                const double slots =
                    static_cast<double>(cycles->value()) * width;
                return slots > 0.0 ? issued / slots : 0.0;
            },
            "fraction of issue slots used");
    }
}

unsigned
TimingSim::windowFree(ClusterId c) const
{
    return clusters_[c].windowFree();
}

unsigned
TimingSim::windowOccupancy(ClusterId c) const
{
    return clusters_[c].occupancy();
}

bool
TimingSim::inFlight(InstId id) const
{
    const InstTiming &t = timing_[id];
    return t.dispatch != invalidCycle &&
        (t.complete == invalidCycle || t.complete > now_);
}

bool
TimingSim::completed(InstId id) const
{
    const InstTiming &t = timing_[id];
    return t.complete != invalidCycle && t.complete <= now_;
}

ClusterId
TimingSim::clusterOf(InstId id) const
{
    return timing_[id].cluster;
}

Cycle
TimingSim::availTime(InstId producer, ClusterId consumer_cluster,
                     int slot) const
{
    const InstTiming &pt = timing_[producer];
    CSIM_ASSERT(pt.complete != invalidCycle);
    // Memory dependences resolve through the shared L1, so they never
    // pay the global bypass latency; register values do when the
    // producer lives on another cluster.
    const bool cross =
        slot != srcSlotMem && pt.cluster != consumer_cluster;
    return pt.complete + (cross ? config_.fwdLatency : 0);
}

void
TimingSim::noteGlobalDelivery(InstId producer, InstId consumer,
                              ClusterId consumer_cluster)
{
    const std::uint16_t bit =
        static_cast<std::uint16_t>(1u << consumer_cluster);
    if (!(deliveredMask_[producer] & bit)) {
        deliveredMask_[producer] |= bit;
        ++*statGlobalValues_;
        const InstTiming &ct = timing_[consumer];
        ++*statFwdCause_[static_cast<std::size_t>(ct.reason)];
        if (ct.dyadicSplit)
            ++*statFwdDyadic_;
    }
}

SimResult
TimingSim::run()
{
    // One scope per run, never per cycle: the host-prof tree reports
    // the whole sim loop as a phase, with host MIPS from the commit
    // count credited below.
    HOST_PROF_SCOPE("sim.run");

    const std::uint64_t n = trace_.size();
    SimResult result;
    if (n == 0) {
        result.stats = registry_.snapshot();
        return result;
    }

    steering_.reset(*this, n);
    for (SimObserver *obs : observers_)
        obs->onRunStart(*this);

    const std::uint64_t cycle_limit =
        static_cast<std::uint64_t>(options_.maxCpi) * n + 100000;

    now_ = 0;
    while (commitIdx_ < n) {
        doIssue();
        doCommit();
        doSteer();
        doFetch();
        for (SimObserver *obs : observers_)
            obs->onCycleEnd(*this);
        ++now_;
        if (now_ > cycle_limit) {
            const InstTiming &h = timing_[commitIdx_];
            std::fprintf(stderr,
                         "TimingSim stuck: commit=%llu steer=%llu "
                         "fetch=%llu n=%llu\n"
                         "head: fetch=%llu dispatch=%llu ready=%llu "
                         "issue=%llu complete=%llu cluster=%u "
                         "pendingOps=%u\n",
                         (unsigned long long)commitIdx_,
                         (unsigned long long)steerIdx_,
                         (unsigned long long)fetchIdx_,
                         (unsigned long long)n,
                         (unsigned long long)h.fetch,
                         (unsigned long long)h.dispatch,
                         (unsigned long long)h.ready,
                         (unsigned long long)h.issue,
                         (unsigned long long)h.complete,
                         (unsigned)h.cluster,
                         (unsigned)pendingOps_[commitIdx_]);
            for (std::size_t c = 0; c < clusters_.size(); ++c) {
                std::fprintf(stderr, "cluster %zu: occ=%u readyNow=%zu\n",
                             c, clusters_[c].occupancy(),
                             clusters_[c].readyNow().size());
            }
            CSIM_PANIC("TimingSim: cycle limit exceeded (deadlock?)");
        }
    }

    if (listener_)
        listener_->onRunEnd(*this);
    for (SimObserver *obs : observers_)
        obs->onRunEnd(*this);

    // The last instruction committed on cycle now_-1... runtime is the
    // commit cycle of the final instruction plus one (cycles are
    // zero-based).
    result.cycles = timing_[n - 1].commit + 1;
    result.instructions = n;
    HOST_PROF_INSTRUCTIONS(n);
    statCycles_->set(result.cycles);
    statInstructions_->set(n);
    result.globalValues = statGlobalValues_->value();
    result.steerStallCycles = statSteerStallCycles_->value();
    result.stats = registry_.snapshot();
    result.timing = std::move(timing_);
    result.ilpCycles = std::move(ilpCycles_);
    result.ilpIssuedSum = std::move(ilpIssuedSum_);
    return result;
}

void
TimingSim::doIssue()
{
    std::uint64_t available_total = 0;
    std::uint64_t issued_total = 0;

    for (std::size_t ci = 0; ci < clusters_.size(); ++ci) {
        Cluster &cluster = clusters_[ci];
        cluster.promoteReady(now_);
        auto &ready = cluster.readyNow();
        available_total += ready.size();
        if (ready.empty())
            continue;

        std::sort(ready.begin(), ready.end(),
                  [this](InstId a, InstId b) {
                      return prioKey_[a] < prioKey_[b];
                  });

        Cluster::PortUse ports;
        std::vector<InstId> leftover;
        leftover.reserve(ready.size());
        ClusterStats &cs = clusterStats_[ci];

        for (InstId id : ready) {
            const TraceRecord &rec = trace_[id];
            if (ports.total >= cluster.ports().issueWidth ||
                !ports.claim(rec.cls, cluster.ports())) {
                leftover.push_back(id);
                continue;
            }

            // Issue.
            InstTiming &t = timing_[id];
            t.issue = now_;
            t.complete = now_ + rec.execLat;
            cluster.exitWindow();
            ++issued_total;
            if (isIntClass(rec.cls))
                ++*cs.intIssued;
            else if (isFpClass(rec.cls))
                ++*cs.fpIssued;
            else
                ++*cs.memIssued;
            // The select loop walks in priority order, so the denied
            // instructions in `leftover` always precede this one in
            // (class, age) order. It is only a priority *inversion*
            // when a port-class conflict let an instruction of a
            // strictly lower scheduling class through — same-class
            // age bypasses are ordinary port contention. leftover[0]
            // holds the highest-priority denial of this cluster-cycle.
            if (!leftover.empty() &&
                prioKeyClass(prioKey_[leftover.front()]) <
                    prioKeyClass(prioKey_[id]))
                ++*statPriorityInversions_;

            if (fetchStalled_ && id == fetchStallBranch_)
                fetchResume_ = t.complete + 1;

            // Wake consumers waiting on this value.
            for (const Waiter &w : waiters_[id]) {
                const ClusterId wc = timing_[w.id].cluster;
                const bool cross =
                    w.slot != srcSlotMem && t.cluster != wc;
                const Cycle avail =
                    t.complete + (cross ? config_.fwdLatency : 0);
                if (cross) {
                    noteGlobalDelivery(id, w.id, wc);
                    timing_[w.id].crossMask |=
                        static_cast<std::uint8_t>(1u << w.slot);
                }
                if (avail > partialReady_[w.id])
                    partialReady_[w.id] = avail;
                CSIM_ASSERT(pendingOps_[w.id] > 0);
                if (--pendingOps_[w.id] == 0) {
                    timing_[w.id].ready = partialReady_[w.id];
                    clusters_[wc].markReady(w.id, partialReady_[w.id]);
                }
            }
            waiters_[id].clear();

            for (SimObserver *obs : observers_)
                obs->onIssue(*this, id);
        }

        *statPortStarvedEvents_ += leftover.size();
        if (!observers_.empty()) {
            for (InstId id : leftover)
                for (SimObserver *obs : observers_)
                    obs->onIssueDenied(*this, id);
        }
        ready.swap(leftover);
    }

    if (options_.collectIlp) {
        std::uint64_t bucket =
            std::min<std::uint64_t>(available_total,
                                    options_.ilpMaxAvailable);
        ++ilpCycles_[bucket];
        ilpIssuedSum_[bucket] += issued_total;
    }
}

void
TimingSim::doCommit()
{
    const std::uint64_t n = trace_.size();
    unsigned committed = 0;
    while (committed < config_.commitWidth && commitIdx_ < n) {
        InstTiming &t = timing_[commitIdx_];
        if (t.complete == invalidCycle || t.complete >= now_)
            break;
        t.commit = now_;
        for (SimObserver *obs : observers_)
            obs->onCommit(*this, commitIdx_);
        if (options_.pipeTracer)
            options_.pipeTracer->onRetire(commitIdx_, trace_[commitIdx_],
                                          t);
        if (listener_)
            listener_->onCommit(*this, commitIdx_);
        steering_.notifyCommit(*this, commitIdx_, trace_[commitIdx_]);
        ++commitIdx_;
        ++committed;
    }
}

void
TimingSim::doSteer()
{
    const std::uint64_t n = trace_.size();
    unsigned steered = 0;
    while (steered < config_.dispatchWidth && steerIdx_ < n) {
        const InstId id = steerIdx_;
        InstTiming &t = timing_[id];
        if (t.fetch == invalidCycle)
            break;  // not yet fetched
        if (t.fetch + config_.frontendDepth > now_)
            break;  // still in the front-end pipeline
        if (steerIdx_ - commitIdx_ >= config_.robEntries) {
            ++*statRobFullCycles_;
            for (SimObserver *obs : observers_)
                obs->onSteerStall(*this, SteerStallCause::RobFull);
            break;  // ROB full
        }

        unsigned total_free = 0;
        for (const Cluster &cluster : clusters_)
            total_free += cluster.windowFree();
        if (total_free == 0) {
            ++*statAllWindowsFullCycles_;
            for (SimObserver *obs : observers_)
                obs->onSteerStall(*this, SteerStallCause::WindowFull);
            break;  // every window full: structural stall
        }

        const TraceRecord &rec = trace_[id];
        SteerRequest req{id, &rec};
        SteerDecision d = steering_.steer(*this, req);
        if (d.stall) {
            ++*statSteerStallCycles_;
            for (SimObserver *obs : observers_)
                obs->onSteerStall(*this, SteerStallCause::PolicyStall);
            break;  // policy chose to stall; in-order steering blocks
        }

        CSIM_ASSERT(d.cluster < clusters_.size());
        CSIM_ASSERT(clusters_[d.cluster].windowFree() > 0);

        clusters_[d.cluster].enter();
        t.dispatch = now_;
        t.cluster = d.cluster;
        t.desired = d.desired;
        t.reason = d.reason;
        t.dyadicSplit = d.dyadicSplit;
        t.predictedCritical = d.predictedCritical;
        t.locLevel = d.locLevel;

        ++*statSteerReason_[static_cast<std::size_t>(d.reason)];
        ++*clusterStats_[d.cluster].steered;
        if (d.reason == SteerReason::LoadBalanced &&
            d.desired != invalidCluster && d.desired != d.cluster)
            ++*clusterStats_[d.desired].windowFullDiverts;

        const std::uint32_t prio = scheduling_.priorityClass(rec);
        prioKey_[id] = makePrioKey(prio, id);

        // Resolve operand readiness.
        Cycle ready = now_ + 1;  // earliest possible issue
        unsigned pending = 0;
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = rec.prod[slot];
            if (p == invalidInstId)
                continue;
            if (timing_[p].complete != invalidCycle) {
                // Producer already issued; arrival time is known.
                const Cycle avail =
                    availTime(p, d.cluster, slot);
                const bool cross = slot != srcSlotMem &&
                    timing_[p].cluster != d.cluster;
                if (cross) {
                    noteGlobalDelivery(p, id, d.cluster);
                    t.crossMask |=
                        static_cast<std::uint8_t>(1u << slot);
                }
                if (avail > ready)
                    ready = avail;
            } else {
                waiters_[p].push_back(
                    {id, static_cast<std::uint8_t>(slot)});
                ++pending;
            }
        }

        partialReady_[id] = ready;
        pendingOps_[id] = static_cast<std::uint8_t>(pending);
        if (pending == 0) {
            t.ready = ready;
            clusters_[d.cluster].markReady(id, ready);
        }

        for (SimObserver *obs : observers_)
            obs->onSteer(*this, id);
        steering_.notifySteered(*this, req, d);
        ++steerIdx_;
        ++steered;
    }
}

void
TimingSim::doFetch()
{
    const std::uint64_t n = trace_.size();
    if (fetchStalled_) {
        if (fetchResume_ != invalidCycle && now_ >= fetchResume_) {
            fetchStalled_ = false;
            fetchStallBranch_ = invalidInstId;
        } else {
            ++*statFetchStallCycles_;
            for (SimObserver *obs : observers_)
                obs->onFetchStall(*this);
            return;
        }
    }

    // The front end holds at most depth x width instructions plus the
    // current fetch group.
    const std::uint64_t fetch_bound = steerIdx_ +
        static_cast<std::uint64_t>(config_.frontendDepth) *
        config_.fetchWidth + config_.fetchWidth;

    unsigned fetched = 0;
    while (fetched < config_.fetchWidth && fetchIdx_ < n &&
           fetchIdx_ < fetch_bound) {
        const TraceRecord &rec = trace_[fetchIdx_];
        timing_[fetchIdx_].fetch = now_;
        ++fetchIdx_;
        ++fetched;

        if (rec.isCondBranch && rec.mispredicted) {
            fetchStalled_ = true;
            fetchStallBranch_ = fetchIdx_ - 1;
            fetchResume_ = invalidCycle;
            break;
        }
        if (config_.fetchStopAtTaken && rec.isBranch && rec.taken)
            break;
    }
}

} // namespace csim
