#include "core/timing_sim.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <type_traits>

#include "common/logging.hh"
#include "core/sim_observer.hh"
#include "obs/host_prof.hh"
#include "obs/pipe_trace.hh"

namespace csim {

// crossMask_ holds one bit per source slot.
static_assert(numSrcSlots <= 8,
              "InstTiming::crossMask is uint8_t: one bit per SrcSlot");
// deliveredMask_ holds one bit per cluster; MachineConfig::validate
// rejects numClusters > maxClusters.
static_assert(maxClusters <= 16,
              "deliveredMask_ is uint16_t: one bit per cluster");
// Waiter-pool nodes pack (consumer id, slot) like priority keys do.
static_assert(static_cast<std::uint32_t>(numSrcSlots) - 1 <=
                  maxPriorityClass,
              "slot must fit above the id bits");

namespace {

/** Dotted-name segment for a steering outcome. */
const char *
steerReasonStatName(SteerReason reason)
{
    switch (reason) {
      case SteerReason::Monolithic: return "monolithic";
      case SteerReason::NoProducer: return "noProducer";
      case SteerReason::Collocated: return "collocated";
      case SteerReason::LoadBalanced: return "loadBalanced";
      case SteerReason::ProactiveLB: return "proactiveLb";
      default:
        CSIM_PANIC("steerReasonStatName: bad reason");
    }
}

constexpr std::size_t numSteerReasons = 5;

} // anonymous namespace

TimingSim::TimingSim(const MachineConfig &config, const Trace &trace,
                     SteeringPolicy &steering,
                     SchedulingPolicy &scheduling,
                     CommitListener *listener, SimOptions options)
    : TimingSim(config, &trace, trace.soa(), steering, scheduling,
                listener, std::move(options))
{
}

TimingSim::TimingSim(const MachineConfig &config, const TraceSoA &soa,
                     SteeringPolicy &steering,
                     SchedulingPolicy &scheduling,
                     CommitListener *listener, SimOptions options)
    : TimingSim(config, nullptr, soa, steering, scheduling, listener,
                std::move(options))
{
}

TimingSim::TimingSim(const MachineConfig &config, const Trace *trace,
                     const TraceSoA &soa, SteeringPolicy &steering,
                     SchedulingPolicy &scheduling,
                     CommitListener *listener, SimOptions options)
    : config_(config), trace_(trace), soa_(soa),
      steering_(steering), scheduling_(scheduling),
      listener_(listener), options_(options)
{
    config.validate();
    // Larger traces would overflow the id bits of the priority keys
    // (and of the packed waiter nodes) and silently corrupt ordering.
    CSIM_ASSERT(soa_.size() <= maxTraceInstructions);
    for (unsigned c = 0; c < config.numClusters; ++c)
        clusters_.emplace_back(config.cluster, config.windowPerCluster);
    freeWindowsTotal_ = config.numClusters * config.windowPerCluster;

    soaPc_ = soa_.pc().data();
    soaCls_ = soa_.cls().data();
    soaLat_ = soa_.execLat().data();
    soaFlags_ = soa_.flags().data();
    for (int slot = 0; slot < numSrcSlots; ++slot)
        soaProd_[slot] = soa_.prod(slot).data();

    // Carve every per-instruction side table out of one arena, wide
    // columns first so each stays naturally aligned.
    const std::size_t n = soa_.size();
    const std::uint64_t links = soa_.producerLinks();
    CSIM_ASSERT(links < noWaiter);
    waiterPoolCap_ = static_cast<std::uint32_t>(links);

    const std::size_t arena_bytes =
        n * sizeof(std::uint64_t) +          // prioKey
        n * sizeof(Cycle) +                  // partialReady
        links * sizeof(std::uint64_t) +      // waiter pool: id|slot
        2 * n * sizeof(std::uint32_t) +      // waiter head/tail
        links * sizeof(std::uint32_t) +      // waiter pool: next
        n * sizeof(std::uint16_t) +          // deliveredMask
        n * sizeof(std::uint8_t);            // pendingOps
    sideArena_.reset(new std::byte[arena_bytes]);
    std::byte *cursor = sideArena_.get();
    auto take = [&](std::size_t bytes) {
        std::byte *p = cursor;
        cursor += bytes;
        return p;
    };
    // The timing records live in their own vector, not the arena:
    // run() hands the whole store to the SimResult by move, so the
    // harness never pays for an O(n) copy-out.
    timingStore_.resize(n);
    timing_ = timingStore_.data();
    prioKey_ = reinterpret_cast<std::uint64_t *>(
        take(n * sizeof(std::uint64_t)));
    partialReady_ = reinterpret_cast<Cycle *>(take(n * sizeof(Cycle)));
    waiterIdSlot_ = reinterpret_cast<std::uint64_t *>(
        take(links * sizeof(std::uint64_t)));
    waiterHead_ = reinterpret_cast<std::uint32_t *>(
        take(n * sizeof(std::uint32_t)));
    waiterTail_ = reinterpret_cast<std::uint32_t *>(
        take(n * sizeof(std::uint32_t)));
    waiterNext_ = reinterpret_cast<std::uint32_t *>(
        take(links * sizeof(std::uint32_t)));
    deliveredMask_ = reinterpret_cast<std::uint16_t *>(
        take(n * sizeof(std::uint16_t)));
    pendingOps_ = reinterpret_cast<std::uint8_t *>(take(n));
    CSIM_ASSERT(cursor == sideArena_.get() + arena_bytes);

    std::memset(prioKey_, 0, n * sizeof(std::uint64_t));
    std::memset(partialReady_, 0, n * sizeof(Cycle));
    std::memset(waiterHead_, 0xFF, n * sizeof(std::uint32_t));
    std::memset(waiterTail_, 0xFF, n * sizeof(std::uint32_t));
    std::memset(deliveredMask_, 0, n * sizeof(std::uint16_t));
    std::memset(pendingOps_, 0, n);

    if (options_.collectIlp) {
        ilpCycles_.resize(options_.ilpMaxAvailable + 1, 0);
        ilpIssuedSum_.resize(options_.ilpMaxAvailable + 1, 0);
    }

    if (options_.checker)
        observers_.push_back(options_.checker);
    for (SimObserver *obs : options_.observers)
        if (obs)
            observers_.push_back(obs);

    registerCoreStats();
    for (unsigned c = 0; c < config.numClusters; ++c)
        clusters_[c].attachStats(registry_,
                                 "sim.cluster" + std::to_string(c));
    steering_.registerStats(registry_);
    scheduling_.registerStats(registry_);
    if (listener_)
        listener_->registerStats(registry_);
    for (SimObserver *obs : observers_)
        obs->registerStats(registry_);

    initPhases();
}

void
TimingSim::initPhases()
{
    if (options_.phases.empty())
        return;
    const std::uint64_t n = soa_.size();
    std::uint64_t budget = 0;
    for (std::size_t i = 0; i < options_.phases.size(); ++i) {
        const PhaseSpec &spec = options_.phases[i];
        const bool last = i + 1 == options_.phases.size();
        // A zero quota means "to trace end" and only makes sense for
        // the final phase; earlier zero-length phases would produce
        // empty snapshots at ambiguous boundaries.
        CSIM_ASSERT(spec.instructions > 0 || last);
        budget += spec.instructions;
    }
    CSIM_ASSERT(budget <= n);
    phaseResults_.reserve(options_.phases.size());
    const std::uint64_t quota = options_.phases.front().instructions;
    nextPhaseBoundary_ = quota > 0 ? quota : invalidInstId;
}

void
TimingSim::closePhase(Cycle end_exclusive)
{
    const PhaseSpec &spec = options_.phases[phaseIdx_];
    PhaseResult res;
    res.name = spec.name;
    res.isWarmup = spec.isWarmup;
    res.instructions = commitIdx_ - phaseStartInst_;
    res.cycles = end_exclusive - phaseStartCycle_;
    statCycles_->set(res.cycles);
    statInstructions_->set(res.instructions);
    res.stats = registry_.snapshot();
    phaseResults_.push_back(std::move(res));

    // Zero measured counters only: predictors, caches, windows and
    // every in-flight instruction keep their state across the boundary.
    registry_.resetMeasurement();
    phaseStartInst_ = commitIdx_;
    phaseStartCycle_ = end_exclusive;
    ++phaseIdx_;
    if (phaseIdx_ < options_.phases.size()) {
        const std::uint64_t quota = options_.phases[phaseIdx_].instructions;
        nextPhaseBoundary_ =
            quota > 0 ? commitIdx_ + quota : invalidInstId;
    } else {
        nextPhaseBoundary_ = invalidInstId;
    }
}

void
TimingSim::registerCoreStats()
{
    statCycles_ = &registry_.addCounter(
        "sim.cycles", "total simulated cycles");
    statInstructions_ = &registry_.addCounter(
        "sim.instructions", "committed instructions");
    statGlobalValues_ = &registry_.addCounter(
        "sim.globalValues",
        "distinct (value, remote cluster) deliveries over the bypass");
    statSteerStallCycles_ = &registry_.addCounter(
        "steer.stallCycles",
        "cycles the steer stage stalled by policy choice");
    statRobFullCycles_ = &registry_.addCounter(
        "steer.robFullCycles", "cycles steering blocked on a full ROB");
    statAllWindowsFullCycles_ = &registry_.addCounter(
        "steer.windowFullCycles",
        "cycles steering blocked with every cluster window full");
    statFetchStallCycles_ = &registry_.addCounter(
        "fetch.stallCycles",
        "cycles fetch stalled on an unresolved mispredicted branch");
    statPortStarvedEvents_ = &registry_.addCounter(
        "sched.replayEvents",
        "ready instructions denied issue by port limits (inst-cycles)");
    statPriorityInversions_ = &registry_.addCounter(
        "sched.priorityInversions",
        "issues that bypassed a denied instruction of a strictly "
        "higher scheduling class");
    statFwdDyadic_ = &registry_.addCounter(
        "fwd.cause.dyadic",
        "bypass deliveries to consumers with split producers");

    statSteerReason_.resize(numSteerReasons);
    statFwdCause_.resize(numSteerReasons);
    for (std::size_t r = 0; r < numSteerReasons; ++r) {
        const std::string reason =
            steerReasonStatName(static_cast<SteerReason>(r));
        statSteerReason_[r] = &registry_.addCounter(
            "steer.reason." + reason,
            "instructions steered with outcome " + reason);
        statFwdCause_[r] = &registry_.addCounter(
            "fwd.cause." + reason,
            "bypass deliveries to consumers steered as " + reason);
    }

    const Counter *cycles = statCycles_;
    const Counter *insts = statInstructions_;
    const Counter *globals = statGlobalValues_;
    registry_.addFormula(
        "sim.cpi",
        [cycles, insts] {
            return insts->value() ?
                static_cast<double>(cycles->value()) /
                static_cast<double>(insts->value()) : 0.0;
        },
        "cycles per committed instruction");
    registry_.addFormula(
        "sim.ipc",
        [cycles, insts] {
            return cycles->value() ?
                static_cast<double>(insts->value()) /
                static_cast<double>(cycles->value()) : 0.0;
        },
        "committed instructions per cycle");
    registry_.addFormula(
        "sim.globalValuesPerInst",
        [globals, insts] {
            return insts->value() ?
                static_cast<double>(globals->value()) /
                static_cast<double>(insts->value()) : 0.0;
        },
        "bypass deliveries per committed instruction");

    clusterStats_.resize(config_.numClusters);
    for (unsigned c = 0; c < config_.numClusters; ++c) {
        const std::string prefix = "sim.cluster" + std::to_string(c);
        ClusterStats &cs = clusterStats_[c];
        cs.steered = &registry_.addCounter(
            prefix + ".steered", "instructions steered to this cluster");
        cs.windowFullDiverts = &registry_.addCounter(
            prefix + ".steer.windowFullDiverts",
            "steers diverted elsewhere because this window was full");
        cs.intIssued = &registry_.addCounter(
            prefix + ".issue.int", "instructions issued on int ports");
        cs.fpIssued = &registry_.addCounter(
            prefix + ".issue.fp", "instructions issued on fp ports");
        cs.memIssued = &registry_.addCounter(
            prefix + ".issue.mem", "instructions issued on mem ports");

        const Counter *ints = cs.intIssued;
        const Counter *fps = cs.fpIssued;
        const Counter *mems = cs.memIssued;
        const double width = config_.cluster.issueWidth;
        registry_.addFormula(
            prefix + ".issue.utilization",
            [cycles, ints, fps, mems, width] {
                const double issued = static_cast<double>(
                    ints->value() + fps->value() + mems->value());
                const double slots =
                    static_cast<double>(cycles->value()) * width;
                return slots > 0.0 ? issued / slots : 0.0;
            },
            "fraction of issue slots used");
    }
}

unsigned
TimingSim::windowFree(ClusterId c) const
{
    return clusters_[c].windowFree();
}

unsigned
TimingSim::windowOccupancy(ClusterId c) const
{
    return clusters_[c].occupancy();
}

bool
TimingSim::inFlight(InstId id) const
{
    const InstTiming &t = timing_[id];
    return t.dispatch != invalidCycle &&
        (t.complete == invalidCycle || t.complete > now_);
}

bool
TimingSim::completed(InstId id) const
{
    const InstTiming &t = timing_[id];
    return t.complete != invalidCycle && t.complete <= now_;
}

ClusterId
TimingSim::clusterOf(InstId id) const
{
    return timing_[id].cluster;
}

Cycle
TimingSim::availTime(InstId producer, ClusterId consumer_cluster,
                     int slot) const
{
    const InstTiming &pt = timing_[producer];
    CSIM_ASSERT(pt.complete != invalidCycle);
    // Memory dependences resolve through the shared L1, so they never
    // pay the global bypass latency; register values do when the
    // producer lives on another cluster.
    const bool cross =
        slot != srcSlotMem && pt.cluster != consumer_cluster;
    return pt.complete + (cross ? config_.fwdLatency : 0);
}

void
TimingSim::noteGlobalDelivery(InstId producer, InstId consumer,
                              ClusterId consumer_cluster)
{
    const std::uint16_t bit =
        static_cast<std::uint16_t>(1u << consumer_cluster);
    if (!(deliveredMask_[producer] & bit)) {
        deliveredMask_[producer] |= bit;
        ++*statGlobalValues_;
        const InstTiming &ct = timing_[consumer];
        ++*statFwdCause_[static_cast<std::size_t>(ct.reason)];
        if (ct.dyadicSplit)
            ++*statFwdDyadic_;
    }
}

SimResult
TimingSim::run()
{
    // One scope per run, never per cycle: the host-prof tree reports
    // the whole sim loop as a phase, with host MIPS from the commit
    // count credited below.
    HOST_PROF_SCOPE("sim.run");

    const std::uint64_t n = soa_.size();
    SimResult result;
    if (n == 0) {
        result.stats = registry_.snapshot();
        return result;
    }

    steering_.reset(*this, n);
    for (SimObserver *obs : observers_)
        obs->onRunStart(*this);

    const std::uint64_t cycle_limit =
        static_cast<std::uint64_t>(options_.maxCpi) * n + 100000;

    now_ = 0;
    // Observers receive per-cycle hooks, so observed runs must visit
    // every cycle; bare runs ride the skip-ahead.
    if (options_.legacyStep || !observers_.empty())
        runDense(cycle_limit);
    else
        runSkipAhead(cycle_limit);

    for (Cluster &cluster : clusters_)
        cluster.finishOccupancy(now_);

    if (listener_)
        listener_->onRunEnd(*this);
    for (SimObserver *obs : observers_)
        obs->onRunEnd(*this);

    // The last instruction committed on cycle now_-1... runtime is the
    // commit cycle of the final instruction plus one (cycles are
    // zero-based).
    const Cycle end_cycles = timing_[n - 1].commit + 1;
    HOST_PROF_INSTRUCTIONS(n);
    if (options_.phases.empty()) {
        result.cycles = end_cycles;
        result.instructions = n;
        statCycles_->set(result.cycles);
        statInstructions_->set(n);
        result.globalValues = statGlobalValues_->value();
        result.steerStallCycles = statSteerStallCycles_->value();
        result.stats = registry_.snapshot();
    } else {
        // Close the trailing phase (quota 0 = "to trace end", or a
        // quota whose boundary is the final commit), then merge the
        // measured phases in order for the top-level view.
        if (phaseIdx_ < options_.phases.size())
            closePhase(end_cycles);
        for (const PhaseResult &phase : phaseResults_) {
            if (phase.isWarmup)
                continue;
            result.cycles += phase.cycles;
            result.instructions += phase.instructions;
            if (result.stats.empty())
                result.stats = phase.stats;
            else
                result.stats.merge(phase.stats);
        }
        if (!result.stats.empty()) {
            result.globalValues = static_cast<std::uint64_t>(
                result.stats.value("sim.globalValues"));
            result.steerStallCycles = static_cast<std::uint64_t>(
                result.stats.value("steer.stallCycles"));
        }
        result.phases = std::move(phaseResults_);
    }
    // Hand over the backing store; the sim is single-shot, so nothing
    // reads timing_ after this point.
    result.timing = std::move(timingStore_);
    timing_ = nullptr;
    result.ilpCycles = std::move(ilpCycles_);
    result.ilpIssuedSum = std::move(ilpIssuedSum_);
    return result;
}

void
TimingSim::runDense(std::uint64_t cycle_limit)
{
    const std::uint64_t n = soa_.size();
    while (commitIdx_ < n) {
        doIssue();
        doCommit();
        doSteer();
        doFetch();
        for (SimObserver *obs : observers_)
            obs->onCycleEnd(*this);
        ++now_;
        if (now_ > cycle_limit)
            stuckPanic();
    }
}

void
TimingSim::runSkipAhead(std::uint64_t cycle_limit)
{
    const std::uint64_t n = soa_.size();
    // The O(clusters) idle probe only runs after a cycle in which no
    // stage did anything: a busy machine never pays for it, and a
    // machine going idle pays one densely stepped idle cycle before
    // the span check fires. Stepping that first idle cycle densely is
    // stat-exact — a truly idle cycle's dense bookkeeping (the zero-
    // ILP bucket, the blocked-stage stall counters) is precisely what
    // skipTo() folds per skipped cycle.
    bool quiet = true;
    while (commitIdx_ < n) {
        Cycle skip_target = now_;
        {
            // One scope per dense batch, never per cycle.
            HOST_PROF_SCOPE("sim.step.dense");
            while (commitIdx_ < n) {
                if (quiet) {
                    skip_target = idleSkipTarget();
                    if (skip_target != now_)
                        break;
                }
                const std::uint64_t cursors =
                    commitIdx_ + steerIdx_ + fetchIdx_;
                const std::uint64_t issued = doIssue();
                doCommit();
                doSteer();
                doFetch();
                quiet = issued == 0 &&
                    commitIdx_ + steerIdx_ + fetchIdx_ == cursors;
                ++now_;
                if (now_ > cycle_limit)
                    stuckPanic();
            }
        }
        if (commitIdx_ >= n)
            break;
        HOST_PROF_SCOPE("sim.step.skip");
        skipTo(skip_target, cycle_limit);
        // The cycle jumped to has a pending event, so step it densely
        // without re-probing.
        quiet = false;
    }
}

Cycle
TimingSim::idleSkipTarget() const
{
    const std::uint64_t n = soa_.size();
    Cycle target = invalidCycle;

    // Issue: any issuable (or promotable) instruction forces a dense
    // cycle; otherwise the earliest pending wakeup bounds the skip.
    // Both reads are O(1): the mask and bound are kept exact by the
    // issue and steer stages.
    if (readyMask_ != 0 || nextPendingBound_ <= now_)
        return now_;
    if (nextPendingBound_ < target)
        target = nextPendingBound_;

    // Commit: the head retires the cycle after it completes.
    const InstTiming &head = timing_[commitIdx_];
    if (head.complete != invalidCycle) {
        if (head.complete < now_)
            return now_;
        if (head.complete + 1 < target)
            target = head.complete + 1;
    }

    // Steer: consulting the policy has per-call side effects
    // (predictor training, stall decisions), so any cycle that would
    // reach the policy is dense. Structural blocks (ROB or all
    // windows full) persist for the whole idle span — no issues or
    // commits happen in it — and their per-cycle counters fold.
    if (steerIdx_ < n) {
        const InstTiming &s = timing_[steerIdx_];
        if (s.fetch != invalidCycle) {
            const Cycle delivered = s.fetch + config_.frontendDepth;
            if (delivered > now_) {
                if (delivered < target)
                    target = delivered;
            } else if (steerIdx_ - commitIdx_ < config_.robEntries &&
                       freeWindowsTotal_ > 0) {
                return now_;
            }
        }
        // Unfetched head: fetch below decides.
    }

    // Fetch: a stalled front end resumes at a known cycle once the
    // mispredicted branch has issued; an unstalled front end with
    // room would fetch right now.
    if (fetchStalled_) {
        if (fetchResume_ != invalidCycle) {
            if (now_ >= fetchResume_)
                return now_;
            if (fetchResume_ < target)
                target = fetchResume_;
        }
    } else if (fetchIdx_ < n && fetchIdx_ < fetchBound()) {
        return now_;
    }

    return target;
}

void
TimingSim::skipTo(Cycle target, std::uint64_t cycle_limit)
{
    // No future event at all means the machine is deadlocked: jump to
    // the limit so the stuck diagnostics fire exactly as dense
    // stepping's would.
    if (target > cycle_limit)
        target = cycle_limit + 1;
    CSIM_ASSERT(target > now_);
    const std::uint64_t span = target - now_;

    // Fold the per-cycle bookkeeping of `span` structurally identical
    // idle cycles: the zero-available ILP bucket and whichever stall
    // counter the first blocked stage would have bumped each cycle
    // (mirroring doSteer's first-blocked-reason order and doFetch's
    // stall accounting). Occupancy needs nothing here — it is folded
    // at occupancy-change points, and a skipped span by construction
    // contains none.
    if (options_.collectIlp)
        ilpCycles_[0] += span;

    const std::uint64_t n = soa_.size();
    if (steerIdx_ < n) {
        const InstTiming &s = timing_[steerIdx_];
        if (s.fetch != invalidCycle &&
            s.fetch + config_.frontendDepth <= now_) {
            if (steerIdx_ - commitIdx_ >= config_.robEntries)
                *statRobFullCycles_ += span;
            else if (freeWindowsTotal_ == 0)
                *statAllWindowsFullCycles_ += span;
        }
    }
    if (fetchStalled_)
        *statFetchStallCycles_ += span;

    now_ = target;
    ++skipSpans_;
    skipCycles_ += span;
    if (now_ > cycle_limit)
        stuckPanic();
}

void
TimingSim::stuckPanic()
{
    const std::uint64_t n = soa_.size();
    const InstTiming &h = timing_[commitIdx_];
    std::fprintf(stderr,
                 "TimingSim stuck: commit=%llu steer=%llu "
                 "fetch=%llu n=%llu\n"
                 "head: fetch=%llu dispatch=%llu ready=%llu "
                 "issue=%llu complete=%llu cluster=%u "
                 "pendingOps=%u\n",
                 (unsigned long long)commitIdx_,
                 (unsigned long long)steerIdx_,
                 (unsigned long long)fetchIdx_,
                 (unsigned long long)n,
                 (unsigned long long)h.fetch,
                 (unsigned long long)h.dispatch,
                 (unsigned long long)h.ready,
                 (unsigned long long)h.issue,
                 (unsigned long long)h.complete,
                 (unsigned)h.cluster,
                 (unsigned)pendingOps_[commitIdx_]);
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        std::fprintf(stderr, "cluster %zu: occ=%u readyNow=%zu\n",
                     c, clusters_[c].occupancy(),
                     clusters_[c].readyNow().size());
    }
    CSIM_PANIC("TimingSim: cycle limit exceeded (deadlock?)");
}

std::uint64_t
TimingSim::doIssue()
{
    // Promote pending wakeups only on cycles where one is due; the
    // bound is the exact cross-cluster minimum (see its declaration),
    // so skipping the scan can never miss a promotion. Issues this
    // cycle queue wakeups strictly in the future (execLat >= 1), so
    // promoting every cluster up front is equivalent to the old
    // promote-then-issue interleave.
    if (now_ >= nextPendingBound_) {
        Cycle next = invalidCycle;
        for (std::size_t ci = 0; ci < clusters_.size(); ++ci) {
            Cluster &cluster = clusters_[ci];
            cluster.promoteReady(now_);
            if (!cluster.readyEmpty())
                readyMask_ |= static_cast<std::uint16_t>(1u << ci);
            const Cycle p = cluster.nextPendingCycle();
            if (p < next)
                next = p;
        }
        nextPendingBound_ = next;
    }

    if (readyMask_ == 0) {
        // Nothing available anywhere: only the ILP accounting runs.
        if (options_.collectIlp)
            ++ilpCycles_[0];
        return 0;
    }

    std::uint64_t available_total = 0;
    std::uint64_t issued_total = 0;

    for (std::uint16_t scan = readyMask_; scan; scan &= scan - 1) {
        const auto ci =
            static_cast<std::size_t>(std::countr_zero(scan));
        Cluster &cluster = clusters_[ci];
        auto &ready = cluster.readyNow();
        available_total += ready.size();

        if (ready.size() > 1)
            std::sort(ready.begin(), ready.end(),
                      [this](InstId a, InstId b) {
                          return prioKey_[a] < prioKey_[b];
                      });

        Cluster::PortUse ports;
        std::vector<InstId> &leftover = leftoverScratch_;
        leftover.clear();
        ClusterStats &cs = clusterStats_[ci];

        for (InstId id : ready) {
            const OpClass cls = soaCls_[id];
            if (ports.total >= cluster.ports().issueWidth ||
                !ports.claim(cls, cluster.ports())) {
                leftover.push_back(id);
                continue;
            }

            // Issue.
            InstTiming &t = timing_[id];
            t.issue = now_;
            t.complete = now_ + soaLat_[id];
            cluster.exitWindow(now_);
            ++freeWindowsTotal_;
            ++issued_total;
            if (isIntClass(cls))
                ++*cs.intIssued;
            else if (isFpClass(cls))
                ++*cs.fpIssued;
            else
                ++*cs.memIssued;
            // The select loop walks in priority order, so the denied
            // instructions in `leftover` always precede this one in
            // (class, age) order. It is only a priority *inversion*
            // when a port-class conflict let an instruction of a
            // strictly lower scheduling class through — same-class
            // age bypasses are ordinary port contention. leftover[0]
            // holds the highest-priority denial of this cluster-cycle.
            if (!leftover.empty() &&
                prioKeyClass(prioKey_[leftover.front()]) <
                    prioKeyClass(prioKey_[id]))
                ++*statPriorityInversions_;

            if (fetchStalled_ && id == fetchStallBranch_)
                fetchResume_ = t.complete + 1;

            // Wake consumers waiting on this value (FIFO per
            // producer: first delivery per remote cluster gets the
            // traffic attribution).
            for (std::uint32_t node = waiterHead_[id];
                 node != noWaiter; node = waiterNext_[node]) {
                const std::uint64_t packed = waiterIdSlot_[node];
                const InstId wid = packed &
                    (maxTraceInstructions - 1);
                const int wslot =
                    static_cast<int>(packed >> prioKeyIdBits);
                const ClusterId wc = timing_[wid].cluster;
                const bool cross =
                    wslot != srcSlotMem && t.cluster != wc;
                const Cycle avail =
                    t.complete + (cross ? config_.fwdLatency : 0);
                if (cross) {
                    noteGlobalDelivery(id, wid, wc);
                    timing_[wid].crossMask |=
                        static_cast<std::uint8_t>(1u << wslot);
                }
                if (avail > partialReady_[wid])
                    partialReady_[wid] = avail;
                CSIM_ASSERT(pendingOps_[wid] > 0);
                if (--pendingOps_[wid] == 0) {
                    timing_[wid].ready = partialReady_[wid];
                    clusters_[wc].markReady(wid, partialReady_[wid]);
                    if (partialReady_[wid] < nextPendingBound_)
                        nextPendingBound_ = partialReady_[wid];
                }
            }
            waiterHead_[id] = noWaiter;
            waiterTail_[id] = noWaiter;

            for (SimObserver *obs : observers_)
                obs->onIssue(*this, id);
        }

        *statPortStarvedEvents_ += leftover.size();
        if (!observers_.empty()) {
            for (InstId id : leftover)
                for (SimObserver *obs : observers_)
                    obs->onIssueDenied(*this, id);
        }
        ready.swap(leftover);
        if (ready.empty())
            readyMask_ &= static_cast<std::uint16_t>(~(1u << ci));
    }

    if (options_.collectIlp) {
        std::uint64_t bucket =
            std::min<std::uint64_t>(available_total,
                                    options_.ilpMaxAvailable);
        ++ilpCycles_[bucket];
        ilpIssuedSum_[bucket] += issued_total;
    }
    return issued_total;
}

void
TimingSim::doCommit()
{
    const std::uint64_t n = soa_.size();
    unsigned committed = 0;
    while (committed < config_.commitWidth && commitIdx_ < n) {
        InstTiming &t = timing_[commitIdx_];
        if (t.complete == invalidCycle || t.complete >= now_)
            break;
        t.commit = now_;
        for (SimObserver *obs : observers_)
            obs->onCommit(*this, commitIdx_);
        if (options_.pipeTracer)
            options_.pipeTracer->onRetire(commitIdx_,
                                          recordAt(commitIdx_), t);
        if (listener_)
            listener_->onCommit(*this, commitIdx_);
        steering_.notifyCommit(*this, commitIdx_, recordAt(commitIdx_));
        ++commitIdx_;
        ++committed;
        if (commitIdx_ == nextPhaseBoundary_)
            closePhase(now_ + 1);
    }
}

void
TimingSim::doSteer()
{
    const std::uint64_t n = soa_.size();
    unsigned steered = 0;
    while (steered < config_.dispatchWidth && steerIdx_ < n) {
        const InstId id = steerIdx_;
        InstTiming &t = timing_[id];
        if (t.fetch == invalidCycle)
            break;  // not yet fetched
        if (t.fetch + config_.frontendDepth > now_)
            break;  // still in the front-end pipeline
        if (steerIdx_ - commitIdx_ >= config_.robEntries) {
            ++*statRobFullCycles_;
            for (SimObserver *obs : observers_)
                obs->onSteerStall(*this, SteerStallCause::RobFull);
            break;  // ROB full
        }

        if (freeWindowsTotal_ == 0) {
            ++*statAllWindowsFullCycles_;
            for (SimObserver *obs : observers_)
                obs->onSteerStall(*this, SteerStallCause::WindowFull);
            break;  // every window full: structural stall
        }

        const TraceRecord &rec = recordAt(id);
        SteerRequest req{id, &rec};
        SteerDecision d = steering_.steer(*this, req);
        if (d.stall) {
            ++*statSteerStallCycles_;
            for (SimObserver *obs : observers_)
                obs->onSteerStall(*this, SteerStallCause::PolicyStall);
            break;  // policy chose to stall; in-order steering blocks
        }

        CSIM_ASSERT(d.cluster < clusters_.size());
        CSIM_ASSERT(clusters_[d.cluster].windowFree() > 0);

        clusters_[d.cluster].enter(now_);
        --freeWindowsTotal_;
        t.dispatch = now_;
        t.cluster = d.cluster;
        t.desired = d.desired;
        t.reason = d.reason;
        t.dyadicSplit = d.dyadicSplit;
        t.predictedCritical = d.predictedCritical;
        t.locLevel = d.locLevel;

        ++*statSteerReason_[static_cast<std::size_t>(d.reason)];
        ++*clusterStats_[d.cluster].steered;
        if (d.reason == SteerReason::LoadBalanced &&
            d.desired != invalidCluster && d.desired != d.cluster)
            ++*clusterStats_[d.desired].windowFullDiverts;

        const std::uint32_t prio = scheduling_.priorityClass(rec);
        prioKey_[id] = makePrioKey(prio, id);

        // Resolve operand readiness.
        Cycle ready = now_ + 1;  // earliest possible issue
        unsigned pending = 0;
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = soaProd_[slot][id];
            if (p == invalidInstId)
                continue;
            if (timing_[p].complete != invalidCycle) {
                // Producer already issued; arrival time is known.
                const Cycle avail =
                    availTime(p, d.cluster, slot);
                const bool cross = slot != srcSlotMem &&
                    timing_[p].cluster != d.cluster;
                if (cross) {
                    noteGlobalDelivery(p, id, d.cluster);
                    t.crossMask |=
                        static_cast<std::uint8_t>(1u << slot);
                }
                if (avail > ready)
                    ready = avail;
            } else {
                // Producer still pending: append to its waiter list.
                const std::uint32_t node = waiterPoolUsed_++;
                CSIM_ASSERT(node < waiterPoolCap_);
                waiterIdSlot_[node] = id |
                    (static_cast<std::uint64_t>(slot) <<
                     prioKeyIdBits);
                waiterNext_[node] = noWaiter;
                if (waiterTail_[p] == noWaiter)
                    waiterHead_[p] = node;
                else
                    waiterNext_[waiterTail_[p]] = node;
                waiterTail_[p] = node;
                ++pending;
            }
        }

        partialReady_[id] = ready;
        pendingOps_[id] = static_cast<std::uint8_t>(pending);
        if (pending == 0) {
            t.ready = ready;
            clusters_[d.cluster].markReady(id, ready);
            if (ready < nextPendingBound_)
                nextPendingBound_ = ready;
        }

        for (SimObserver *obs : observers_)
            obs->onSteer(*this, id);
        steering_.notifySteered(*this, req, d);
        ++steerIdx_;
        ++steered;
    }
}

void
TimingSim::doFetch()
{
    const std::uint64_t n = soa_.size();
    if (fetchStalled_) {
        if (fetchResume_ != invalidCycle && now_ >= fetchResume_) {
            fetchStalled_ = false;
            fetchStallBranch_ = invalidInstId;
        } else {
            ++*statFetchStallCycles_;
            for (SimObserver *obs : observers_)
                obs->onFetchStall(*this);
            return;
        }
    }

    // The front end holds at most depth x width instructions plus the
    // current fetch group.
    const std::uint64_t fetch_bound = fetchBound();

    constexpr std::uint8_t mispredictedCond =
        TraceSoA::flagIsCondBranch | TraceSoA::flagMispredicted;
    constexpr std::uint8_t takenBranch =
        TraceSoA::flagIsBranch | TraceSoA::flagTaken;

    unsigned fetched = 0;
    while (fetched < config_.fetchWidth && fetchIdx_ < n &&
           fetchIdx_ < fetch_bound) {
        const std::uint8_t flags = soaFlags_[fetchIdx_];
        timing_[fetchIdx_].fetch = now_;
        ++fetchIdx_;
        ++fetched;

        if ((flags & mispredictedCond) == mispredictedCond) {
            fetchStalled_ = true;
            fetchStallBranch_ = fetchIdx_ - 1;
            fetchResume_ = invalidCycle;
            break;
        }
        if (config_.fetchStopAtTaken &&
            (flags & takenBranch) == takenBranch)
            break;
    }
}

} // namespace csim
