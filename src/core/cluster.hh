/**
 * @file
 * Per-cluster execution state: the scheduling window occupancy, the
 * not-yet-ready/ready instruction queues, and per-cycle port accounting.
 */

#ifndef CSIM_CORE_CLUSTER_HH
#define CSIM_CORE_CLUSTER_HH

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/machine_config.hh"
#include "isa/opcode.hh"
#include "obs/stats_registry.hh"

namespace csim {

/**
 * One cluster: a scheduling window plus issue ports. Instructions enter
 * at steer time (occupying a window entry), move from `pending` to
 * `readyNow` when their operands arrive, and leave the window at issue.
 */
class Cluster
{
  public:
    Cluster(const ClusterPorts &ports, unsigned window_entries)
        : ports_(ports), windowEntries_(window_entries)
    {}

    /**
     * Register this cluster's own stats (window entries, per-cycle
     * occupancy distribution) under the given dotted prefix, e.g.
     * "sim.cluster0". Optional: an unattached cluster records nothing.
     */
    void
    attachStats(StatsRegistry &registry, const std::string &prefix)
    {
        statEntered_ = &registry.addCounter(
            prefix + ".window.entered",
            "instructions steered into this window");
        statOccupancy_ = &registry.addDistribution(
            prefix + ".window.occupancy", 16, 0.0,
            static_cast<double>(windowEntries_ + 1),
            "per-cycle scheduling-window occupancy");
    }

    unsigned windowFree() const { return windowEntries_ - occupancy_; }
    unsigned occupancy() const { return occupancy_; }

    /** Steer an instruction into the window. */
    void
    enter()
    {
        CSIM_ASSERT(occupancy_ < windowEntries_);
        ++occupancy_;
        if (statEntered_)
            ++*statEntered_;
    }

    /** Queue an instruction that becomes ready at the given cycle. */
    void
    markReady(InstId id, Cycle when)
    {
        pending_.emplace(when, id);
    }

    /** Move everything ready by `now` into the issuable set. Called
     *  once per cycle, so it doubles as the occupancy sample point. */
    void
    promoteReady(Cycle now)
    {
        if (statOccupancy_)
            statOccupancy_->add(static_cast<double>(occupancy_));
        while (!pending_.empty() && pending_.top().first <= now) {
            readyNow_.push_back(pending_.top().second);
            pending_.pop();
        }
    }

    /** Instructions whose operands are available (contending to issue). */
    std::vector<InstId> &readyNow() { return readyNow_; }

    /** An instruction issued: its window entry frees. */
    void
    exitWindow()
    {
        CSIM_ASSERT(occupancy_ > 0);
        --occupancy_;
    }

    const ClusterPorts &ports() const { return ports_; }

    /** Per-cycle port tracker. */
    struct PortUse
    {
        unsigned total = 0;
        unsigned intUsed = 0;
        unsigned fpUsed = 0;
        unsigned memUsed = 0;

        /** Try to claim a port for an op of class c. */
        bool
        claim(OpClass c, const ClusterPorts &ports)
        {
            if (total >= ports.issueWidth)
                return false;
            if (isIntClass(c)) {
                if (intUsed >= ports.intPorts)
                    return false;
                ++intUsed;
            } else if (isFpClass(c)) {
                if (fpUsed >= ports.fpPorts)
                    return false;
                ++fpUsed;
            } else {
                if (memUsed >= ports.memPorts)
                    return false;
                ++memUsed;
            }
            ++total;
            return true;
        }
    };

  private:
    using PendingEntry = std::pair<Cycle, InstId>;

    ClusterPorts ports_;
    unsigned windowEntries_;
    unsigned occupancy_ = 0;
    Counter *statEntered_ = nullptr;
    Histogram *statOccupancy_ = nullptr;
    std::priority_queue<PendingEntry, std::vector<PendingEntry>,
                        std::greater<>> pending_;
    std::vector<InstId> readyNow_;
};

} // namespace csim

#endif // CSIM_CORE_CLUSTER_HH
