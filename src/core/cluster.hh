/**
 * @file
 * Per-cluster execution state: the scheduling window occupancy, the
 * not-yet-ready/ready instruction queues, and per-cycle port accounting.
 */

#ifndef CSIM_CORE_CLUSTER_HH
#define CSIM_CORE_CLUSTER_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/machine_config.hh"
#include "isa/opcode.hh"
#include "obs/stats_registry.hh"

namespace csim {

/**
 * One cluster: a scheduling window plus issue ports. Instructions enter
 * at steer time (occupying a window entry), move from `pending` to
 * `readyNow` when their operands arrive, and leave the window at issue.
 *
 * The pending queue is a flat binary min-heap over (ready cycle, id)
 * kept with std::push_heap/pop_heap — the same comparator and pop
 * order a std::priority_queue would give, but with the storage
 * reservable and the minimum inspectable (nextPendingCycle() is what
 * lets the timing core's skip-ahead bound an idle span).
 */
class Cluster
{
  public:
    Cluster(const ClusterPorts &ports, unsigned window_entries)
        : ports_(ports), windowEntries_(window_entries)
    {
        pending_.reserve(window_entries);
        readyNow_.reserve(window_entries);
    }

    /**
     * Register this cluster's own stats (window entries, per-cycle
     * occupancy distribution) under the given dotted prefix, e.g.
     * "sim.cluster0". Optional: an unattached cluster records nothing.
     */
    void
    attachStats(StatsRegistry &registry, const std::string &prefix)
    {
        statEntered_ = &registry.addCounter(
            prefix + ".window.entered",
            "instructions steered into this window");
        statOccupancy_ = &registry.addDistribution(
            prefix + ".window.occupancy", 16, 0.0,
            static_cast<double>(windowEntries_ + 1),
            "per-cycle scheduling-window occupancy");
        // Occupancy is a small integer sampled every cycle; precompute
        // its bucket with the histogram's own math so the hot path
        // skips the floating-point bucketing entirely.
        occBucket_.resize(windowEntries_ + 1);
        for (unsigned occ = 0; occ <= windowEntries_; ++occ)
            occBucket_[occ] = static_cast<std::uint8_t>(
                statOccupancy_->bucketIndex(static_cast<double>(occ)));
    }

    unsigned windowFree() const { return windowEntries_ - occupancy_; }
    unsigned occupancy() const { return occupancy_; }

    /** Steer an instruction into the window during cycle `now`. */
    void
    enter(Cycle now)
    {
        CSIM_ASSERT(occupancy_ < windowEntries_);
        foldOccupancy(now);
        ++occupancy_;
        if (statEntered_)
            ++*statEntered_;
    }

    /** Queue an instruction that becomes ready at the given cycle. */
    void
    markReady(InstId id, Cycle when)
    {
        pending_.emplace_back(when, id);
        std::push_heap(pending_.begin(), pending_.end(),
                       std::greater<>{});
    }

    /**
     * Occupancy sampling is deferred: instead of feeding the histogram
     * every cycle, each occupancy *change* during cycle `now` first
     * folds one sample per cycle in [occSampleFrom_, now] at the
     * pre-change value (a cycle's sample is taken before that cycle's
     * issues and steers, matching the old sample-at-issue-start
     * order), and finishOccupancy() flushes the tail at run end. The
     * bucket totals are bit-identical to per-cycle sampling; the hot
     * loop just stops paying for it.
     */
    void
    foldOccupancy(Cycle now)
    {
        if (statOccupancy_ && now >= occSampleFrom_)
            statOccupancy_->addToBucket(occBucket_[occupancy_],
                                        now - occSampleFrom_ + 1);
        occSampleFrom_ = now + 1;
    }

    /** Flush the deferred samples of the final unchanged stretch;
     *  `cycles` is the run's total cycle count (samples cover cycles
     *  [0, cycles)). */
    void
    finishOccupancy(Cycle cycles)
    {
        if (statOccupancy_ && cycles > occSampleFrom_)
            statOccupancy_->addToBucket(occBucket_[occupancy_],
                                        cycles - occSampleFrom_);
        occSampleFrom_ = cycles;
    }

    /** Move everything ready by `now` into the issuable set. */
    void
    promoteReady(Cycle now)
    {
        while (!pending_.empty() && pending_.front().first <= now) {
            readyNow_.push_back(pending_.front().second);
            std::pop_heap(pending_.begin(), pending_.end(),
                          std::greater<>{});
            pending_.pop_back();
        }
    }

    /** Earliest cycle any pending instruction becomes ready
     *  (invalidCycle when the pending queue is empty). */
    Cycle
    nextPendingCycle() const
    {
        return pending_.empty() ? invalidCycle : pending_.front().first;
    }

    /** No instruction is currently contending to issue. */
    bool readyEmpty() const { return readyNow_.empty(); }

    /** Instructions whose operands are available (contending to issue). */
    std::vector<InstId> &readyNow() { return readyNow_; }

    /** An instruction issued during cycle `now`: its entry frees. */
    void
    exitWindow(Cycle now)
    {
        CSIM_ASSERT(occupancy_ > 0);
        foldOccupancy(now);
        --occupancy_;
    }

    const ClusterPorts &ports() const { return ports_; }

    /** Per-cycle port tracker. */
    struct PortUse
    {
        unsigned total = 0;
        unsigned intUsed = 0;
        unsigned fpUsed = 0;
        unsigned memUsed = 0;

        /** Try to claim a port for an op of class c. */
        bool
        claim(OpClass c, const ClusterPorts &ports)
        {
            if (total >= ports.issueWidth)
                return false;
            if (isIntClass(c)) {
                if (intUsed >= ports.intPorts)
                    return false;
                ++intUsed;
            } else if (isFpClass(c)) {
                if (fpUsed >= ports.fpPorts)
                    return false;
                ++fpUsed;
            } else {
                if (memUsed >= ports.memPorts)
                    return false;
                ++memUsed;
            }
            ++total;
            return true;
        }
    };

  private:
    using PendingEntry = std::pair<Cycle, InstId>;

    ClusterPorts ports_;
    unsigned windowEntries_;
    unsigned occupancy_ = 0;
    Counter *statEntered_ = nullptr;
    Histogram *statOccupancy_ = nullptr;
    /** occupancy -> histogram bucket, fixed at attachStats time. */
    std::vector<std::uint8_t> occBucket_;
    /** First cycle whose occupancy sample is not yet folded. */
    Cycle occSampleFrom_ = 0;
    /** Min-heap on (ready cycle, id); front() is the minimum. */
    std::vector<PendingEntry> pending_;
    std::vector<InstId> readyNow_;
};

} // namespace csim

#endif // CSIM_CORE_CLUSTER_HH
