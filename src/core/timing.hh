/**
 * @file
 * Per-instruction timing records and simulation results produced by the
 * clustered timing simulator. These are consumed by the critical-path
 * analysis, the experiment harness, and the tests.
 */

#ifndef CSIM_CORE_TIMING_HH
#define CSIM_CORE_TIMING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/stats_registry.hh"

namespace csim {

/** Why the steering logic placed an instruction where it did. */
enum class SteerReason : std::uint8_t
{
    Monolithic,     ///< single-cluster machine; no choice to make
    NoProducer,     ///< no in-flight producer; least-loaded cluster
    Collocated,     ///< placed with an in-flight producer
    LoadBalanced,   ///< desired producer cluster full; least-loaded
    ProactiveLB,    ///< pushed away by proactive load-balancing
};

/** Lifecycle timestamps and steering metadata of a dynamic instruction. */
struct InstTiming
{
    Cycle fetch = invalidCycle;
    /** Cycle the instruction was steered into a cluster window. */
    Cycle dispatch = invalidCycle;
    /** Cycle all operands were available at this cluster. */
    Cycle ready = invalidCycle;
    Cycle issue = invalidCycle;
    /** Cycle execution finished (result locally visible). */
    Cycle complete = invalidCycle;
    Cycle commit = invalidCycle;

    ClusterId cluster = invalidCluster;
    /** Cluster the steering policy wanted (producer's cluster). */
    ClusterId desired = invalidCluster;
    SteerReason reason = SteerReason::Monolithic;

    /** Criticality-prediction snapshot taken at steer time. */
    bool predictedCritical = false;
    /** LoC predictor level snapshot (0..15) at steer time. */
    std::uint8_t locLevel = 0;
    /** In-flight producers lived in >= 2 different clusters. */
    bool dyadicSplit = false;
    /** Bit per SrcSlot: operand arrived via the global bypass. */
    std::uint8_t crossMask = 0;
};

/**
 * One named simulation phase (ChampSim-style warmup/measure split).
 * Phases partition a run by committed-instruction count: when a
 * phase's quota commits, the run's measured counters are snapshotted
 * and reset while every microarchitectural structure — predictors,
 * caches, windows, in-flight instructions — keeps its state. A
 * warmup phase's events are excluded from the run's merged totals.
 */
struct PhaseSpec
{
    std::string name;
    /** Committed instructions in this phase; 0 = run to trace end
     *  (valid only for the final phase). */
    std::uint64_t instructions = 0;
    bool isWarmup = false;
};

/** Closed-phase outcome: the phase's own cycle/instruction span plus
 *  a phase-local stats snapshot. */
struct PhaseResult
{
    std::string name;
    bool isWarmup = false;
    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    StatsSnapshot stats;
};

/** Outcome of one timing-simulation run. */
struct SimResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::vector<InstTiming> timing;

    /** Distinct (value, remote cluster) deliveries over the bypass. */
    std::uint64_t globalValues = 0;
    /** Cycles the steering stage spent stalled by policy choice. */
    std::uint64_t steerStallCycles = 0;

    /**
     * Frozen stats-registry view of the run: every counter,
     * distribution and formula registered by the core, the policies
     * and the predictors. globalValues/steerStallCycles above are
     * convenience copies of "sim.globalValues"/"steer.stallCycles".
     */
    StatsSnapshot stats;

    /**
     * ILP capture (Fig. 15): index a = available ILP that cycle;
     * ilpCycles[a] counts cycles, ilpIssuedSum[a] sums instructions
     * issued on those cycles. Only filled when SimOptions::collectIlp
     * (whole-run, not phase-split).
     */
    std::vector<std::uint64_t> ilpCycles;
    std::vector<std::uint64_t> ilpIssuedSum;

    /**
     * Per-phase outcomes when SimOptions::phases was configured
     * (empty otherwise). With phases, the top-level cycles /
     * instructions / stats above cover only the *measured* (non-
     * warmup) phases, merged in phase order; `timing` still spans the
     * whole trace.
     */
    std::vector<PhaseResult> phases;

    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
            static_cast<double>(instructions) : 0.0;
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
            static_cast<double>(cycles) : 0.0;
    }

    double
    globalValuesPerInst() const
    {
        return instructions ? static_cast<double>(globalValues) /
            static_cast<double>(instructions) : 0.0;
    }
};

} // namespace csim

#endif // CSIM_CORE_TIMING_HH
