/**
 * @file
 * The clustered out-of-order timing simulator.
 *
 * Trace-driven and cycle-stepped. Models the paper's machine (Table 1):
 * an 8-wide front end (13 stages to dispatch, gshare-annotated branch
 * outcomes), in-order steering into per-cluster scheduling windows, a
 * shared 256-entry ROB, per-cluster out-of-order issue constrained by
 * int/fp/mem ports, a global bypass with a configurable inter-cluster
 * forwarding latency, and in-order commit.
 *
 * Steering and scheduling are delegated to SteeringPolicy and
 * SchedulingPolicy; the commit stream is exposed to a CommitListener so
 * the criticality predictors can be trained online, exactly mirroring
 * the decoupled structure the paper studies.
 */

#ifndef CSIM_CORE_TIMING_SIM_HH
#define CSIM_CORE_TIMING_SIM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "core/cluster.hh"
#include "core/machine_config.hh"
#include "core/policy.hh"
#include "core/timing.hh"
#include "obs/stats_registry.hh"
#include "trace/trace.hh"

namespace csim {

class PipeTracer;
class SimObserver;

/**
 * Issue-priority keys pack the scheduling class above the instruction
 * id (the age tiebreak): class in the top 24 bits, id in the low 40.
 * Any id at or above 2^40 would bleed into the class bits and silently
 * corrupt priority ordering, so both halves are checked when a key is
 * built and TimingSim rejects traces longer than 2^40 at construction.
 */
inline constexpr unsigned prioKeyIdBits = 40;

/** Largest trace (and largest InstId + 1) a priority key can carry. */
inline constexpr std::uint64_t maxTraceInstructions =
    std::uint64_t{1} << prioKeyIdBits;

/** Largest priority class value a key can carry. */
inline constexpr std::uint32_t maxPriorityClass =
    (std::uint32_t{1} << (64 - prioKeyIdBits)) - 1;

inline std::uint64_t
makePrioKey(std::uint32_t prio_class, InstId id)
{
    CSIM_ASSERT(id < maxTraceInstructions);
    CSIM_ASSERT(prio_class <= maxPriorityClass);
    return (static_cast<std::uint64_t>(prio_class) << prioKeyIdBits) |
        id;
}

/** Scheduling class carried by a packed priority key. */
inline std::uint32_t
prioKeyClass(std::uint64_t key)
{
    return static_cast<std::uint32_t>(key >> prioKeyIdBits);
}

struct SimOptions
{
    /** Collect the per-cycle available/achieved ILP data (Fig. 15). */
    bool collectIlp = false;
    /** Largest available-ILP bucket tracked. */
    unsigned ilpMaxAvailable = 64;
    /**
     * Hard safety bound: panic if the run exceeds this many cycles per
     * instruction (catches policy-induced deadlock in tests).
     */
    unsigned maxCpi = 1000;
    /**
     * Optional pipeline event tracer, fed each instruction at commit
     * (all timestamps final). The tracer's own [startInst, endInst)
     * window gates the output; the tracer must outlive run().
     */
    PipeTracer *pipeTracer = nullptr;
    /**
     * Optional pipeline observer (the invariant checker in
     * src/verify), driven at steer, issue, commit and every cycle
     * boundary. Like pipeTracer it must outlive run(); its stats are
     * registered into the run's registry at construction.
     */
    SimObserver *checker = nullptr;
    /**
     * Additional observers (e.g. the interval profiler in src/obs),
     * driven after `checker` at every hook. Null entries are ignored;
     * all observers must outlive run() and are registered into the
     * run's registry at construction, exactly like `checker`.
     */
    std::vector<SimObserver *> observers;
};

class TimingSim : public CoreView
{
  public:
    /**
     * @param config Machine geometry.
     * @param trace Annotated, producer-linked dynamic trace.
     * @param steering Cluster-assignment policy.
     * @param scheduling Issue-priority policy.
     * @param listener Optional commit observer (predictor training).
     */
    TimingSim(const MachineConfig &config, const Trace &trace,
              SteeringPolicy &steering, SchedulingPolicy &scheduling,
              CommitListener *listener = nullptr,
              SimOptions options = SimOptions{});

    /** Run the whole trace to commit and return the timing results. */
    SimResult run();

    // CoreView interface.
    const MachineConfig &config() const override { return config_; }
    Cycle now() const override { return now_; }
    unsigned windowFree(ClusterId c) const override;
    unsigned windowOccupancy(ClusterId c) const override;
    bool inFlight(InstId id) const override;
    bool completed(InstId id) const override;
    ClusterId clusterOf(InstId id) const override;
    const TraceRecord &record(InstId id) const override
    {
        return trace_[id];
    }
    const InstTiming &timingOf(InstId id) const override
    {
        return timing_[id];
    }

  private:
    void doComplete();
    void doIssue();
    void doSteer();
    void doCommit();
    void doFetch();

    /** Operand arrival time at the consumer's cluster. */
    Cycle availTime(InstId producer, ClusterId consumer_cluster,
                    int slot) const;

    /** Record a cross-cluster value delivery (for the traffic stats,
     *  attributed to the consumer's steering outcome). */
    void noteGlobalDelivery(InstId producer, InstId consumer,
                            ClusterId consumer_cluster);

    /** Register the core's counters and formulas with registry_. */
    void registerCoreStats();

    /** Stored by value so callers may pass temporaries. */
    const MachineConfig config_;
    /** The trace must outlive the simulation (it is large; callers
     *  always keep it alive for the results anyway). */
    const Trace &trace_;
    SteeringPolicy &steering_;
    SchedulingPolicy &scheduling_;
    CommitListener *listener_;
    SimOptions options_;
    /** The flattened observer chain: options_.checker (if any)
     *  followed by the non-null options_.observers entries. */
    std::vector<SimObserver *> observers_;

    Cycle now_ = 0;
    std::vector<Cluster> clusters_;

    // In-order stage cursors: commitIdx_ <= steerIdx_ <= fetchIdx_.
    std::uint64_t fetchIdx_ = 0;
    std::uint64_t steerIdx_ = 0;
    std::uint64_t commitIdx_ = 0;

    bool fetchStalled_ = false;
    InstId fetchStallBranch_ = invalidInstId;
    Cycle fetchResume_ = 0;

    // Per-instruction state (indexed by trace position).
    std::vector<InstTiming> timing_;
    std::vector<std::uint64_t> prioKey_;
    std::vector<std::uint8_t> pendingOps_;
    std::vector<Cycle> partialReady_;
    struct Waiter
    {
        InstId id;
        std::uint8_t slot;
    };
    std::vector<std::vector<Waiter>> waiters_;
    std::vector<std::uint16_t> deliveredMask_;

    // Completion "calendar": buckets_[(cycle) % bucketCount].
    static constexpr std::size_t bucketCount = 64;
    std::vector<std::vector<InstId>> buckets_;

    std::vector<std::uint64_t> ilpCycles_;
    std::vector<std::uint64_t> ilpIssuedSum_;

    // ----------------------------------------------------------------
    // Observability. The registry owns every stat of the run; the core,
    // the clusters, the policies and the listener register into it at
    // construction. The raw Counter pointers below are plain handles
    // into registry_ (stable for its lifetime).
    StatsRegistry registry_;

    Counter *statCycles_ = nullptr;
    Counter *statInstructions_ = nullptr;
    /** Replaces the old ad-hoc globalValues_ member. */
    Counter *statGlobalValues_ = nullptr;
    /** Replaces the old ad-hoc steerStallCycles_ member. */
    Counter *statSteerStallCycles_ = nullptr;
    Counter *statRobFullCycles_ = nullptr;
    Counter *statAllWindowsFullCycles_ = nullptr;
    Counter *statFetchStallCycles_ = nullptr;
    Counter *statPortStarvedEvents_ = nullptr;
    Counter *statPriorityInversions_ = nullptr;
    /** Indexed by SteerReason: why instructions landed where they did. */
    std::vector<Counter *> statSteerReason_;
    /** Indexed by the consumer's SteerReason: bypass traffic by cause. */
    std::vector<Counter *> statFwdCause_;
    Counter *statFwdDyadic_ = nullptr;

    struct ClusterStats
    {
        Counter *steered = nullptr;
        /** Steers that wanted this cluster but found its window full. */
        Counter *windowFullDiverts = nullptr;
        Counter *intIssued = nullptr;
        Counter *fpIssued = nullptr;
        Counter *memIssued = nullptr;
    };
    std::vector<ClusterStats> clusterStats_;
};

} // namespace csim

#endif // CSIM_CORE_TIMING_SIM_HH
