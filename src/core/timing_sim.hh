/**
 * @file
 * The clustered out-of-order timing simulator.
 *
 * Trace-driven and cycle-stepped. Models the paper's machine (Table 1):
 * an 8-wide front end (13 stages to dispatch, gshare-annotated branch
 * outcomes), in-order steering into per-cluster scheduling windows, a
 * shared 256-entry ROB, per-cluster out-of-order issue constrained by
 * int/fp/mem ports, a global bypass with a configurable inter-cluster
 * forwarding latency, and in-order commit.
 *
 * Steering and scheduling are delegated to SteeringPolicy and
 * SchedulingPolicy; the commit stream is exposed to a CommitListener so
 * the criticality predictors can be trained online, exactly mirroring
 * the decoupled structure the paper studies.
 */

#ifndef CSIM_CORE_TIMING_SIM_HH
#define CSIM_CORE_TIMING_SIM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/cluster.hh"
#include "core/machine_config.hh"
#include "core/policy.hh"
#include "core/timing.hh"
#include "obs/stats_registry.hh"
#include "trace/trace.hh"
#include "trace/trace_soa.hh"

namespace csim {

class PipeTracer;
class SimObserver;

/**
 * Issue-priority keys pack the scheduling class above the instruction
 * id (the age tiebreak): class in the top 24 bits, id in the low 40.
 * Any id at or above 2^40 would bleed into the class bits and silently
 * corrupt priority ordering, so both halves are checked when a key is
 * built and TimingSim rejects traces longer than 2^40 at construction.
 */
inline constexpr unsigned prioKeyIdBits = 40;

/** Largest trace (and largest InstId + 1) a priority key can carry. */
inline constexpr std::uint64_t maxTraceInstructions =
    std::uint64_t{1} << prioKeyIdBits;

/** Largest priority class value a key can carry. */
inline constexpr std::uint32_t maxPriorityClass =
    (std::uint32_t{1} << (64 - prioKeyIdBits)) - 1;

inline std::uint64_t
makePrioKey(std::uint32_t prio_class, InstId id)
{
    CSIM_ASSERT(id < maxTraceInstructions);
    CSIM_ASSERT(prio_class <= maxPriorityClass);
    return (static_cast<std::uint64_t>(prio_class) << prioKeyIdBits) |
        id;
}

/** Scheduling class carried by a packed priority key. */
inline std::uint32_t
prioKeyClass(std::uint64_t key)
{
    return static_cast<std::uint32_t>(key >> prioKeyIdBits);
}

struct SimOptions
{
    /** Collect the per-cycle available/achieved ILP data (Fig. 15). */
    bool collectIlp = false;
    /**
     * Escape hatch: step every cycle densely instead of using the
     * event-driven skip-ahead. Results are identical either way (the
     * fuzzer's differential check enforces it); dense stepping is only
     * useful as the reference half of that comparison and when
     * bisecting a suspected skip-ahead bug. Runs with observers
     * attached always step densely, because per-cycle hooks must fire
     * on every cycle.
     */
    bool legacyStep = false;
    /** Largest available-ILP bucket tracked. */
    unsigned ilpMaxAvailable = 64;
    /**
     * Hard safety bound: panic if the run exceeds this many cycles per
     * instruction (catches policy-induced deadlock in tests).
     */
    unsigned maxCpi = 1000;
    /**
     * Optional pipeline event tracer, fed each instruction at commit
     * (all timestamps final). The tracer's own [startInst, endInst)
     * window gates the output; the tracer must outlive run().
     */
    PipeTracer *pipeTracer = nullptr;
    /**
     * Optional pipeline observer (the invariant checker in
     * src/verify), driven at steer, issue, commit and every cycle
     * boundary. Like pipeTracer it must outlive run(); its stats are
     * registered into the run's registry at construction.
     */
    SimObserver *checker = nullptr;
    /**
     * Additional observers (e.g. the interval profiler in src/obs),
     * driven after `checker` at every hook. Null entries are ignored;
     * all observers must outlive run() and are registered into the
     * run's registry at construction, exactly like `checker`.
     */
    std::vector<SimObserver *> observers;
    /**
     * Named warmup/measure phases (see PhaseSpec). Empty = the whole
     * run is one implicit measured phase with exactly the historical
     * behavior. Quotas of all but the last phase must be positive and
     * sum to at most the trace length; a last-phase quota of 0 means
     * "to trace end".
     */
    std::vector<PhaseSpec> phases;
};

class TimingSim : public CoreView
{
  public:
    /**
     * @param config Machine geometry.
     * @param trace Annotated, producer-linked dynamic trace.
     * @param steering Cluster-assignment policy.
     * @param scheduling Issue-priority policy.
     * @param listener Optional commit observer (predictor training).
     */
    TimingSim(const MachineConfig &config, const Trace &trace,
              SteeringPolicy &steering, SchedulingPolicy &scheduling,
              CommitListener *listener = nullptr,
              SimOptions options = SimOptions{});

    /**
     * Simulate straight off a column view (e.g. an mmap-ed trace
     * store) with no AoS trace behind it: record() reassembles
     * requested records from the columns on demand. The view must
     * outlive the simulation.
     */
    TimingSim(const MachineConfig &config, const TraceSoA &soa,
              SteeringPolicy &steering, SchedulingPolicy &scheduling,
              CommitListener *listener = nullptr,
              SimOptions options = SimOptions{});

    /** Run the whole trace to commit and return the timing results. */
    SimResult run();

    // CoreView interface.
    const MachineConfig &config() const override { return config_; }
    Cycle now() const override { return now_; }
    unsigned windowFree(ClusterId c) const override;
    unsigned windowOccupancy(ClusterId c) const override;
    bool inFlight(InstId id) const override;
    bool completed(InstId id) const override;
    ClusterId clusterOf(InstId id) const override;
    const TraceRecord &record(InstId id) const override
    {
        return recordAt(id);
    }
    const InstTiming &timingOf(InstId id) const override
    {
        return timing_[id];
    }
    Addr pcOf(InstId id) const override { return soaPc_[id]; }

    /** Idle spans jumped over by the event-driven skip-ahead (0 when
     *  the run stepped densely: legacyStep or observers attached). */
    std::uint64_t skipSpans() const { return skipSpans_; }
    /** Cycles those spans covered (their stats were folded in bulk). */
    std::uint64_t skipCycles() const { return skipCycles_; }

  private:
    TimingSim(const MachineConfig &config, const Trace *trace,
              const TraceSoA &soa, SteeringPolicy &steering,
              SchedulingPolicy &scheduling, CommitListener *listener,
              SimOptions options);

    /**
     * One AoS record. Backed by the source trace when there is one;
     * otherwise reassembled from the columns into a single scratch
     * slot, so the returned reference is only valid until the next
     * call (matching how every caller uses it: read, then drop).
     */
    const TraceRecord &
    recordAt(InstId id) const
    {
        if (trace_)
            return (*trace_)[id];
        scratchRecord_ = soa_.record(id);
        return scratchRecord_;
    }

    /** Validate options_.phases against the trace and arm the first
     *  boundary. */
    void initPhases();

    /** Close the current phase at end-of-cycle `end_exclusive`:
     *  snapshot phase-local stats, reset measured counters, arm the
     *  next boundary. */
    void closePhase(Cycle end_exclusive);

    void runDense(std::uint64_t cycle_limit);
    void runSkipAhead(std::uint64_t cycle_limit);
    /** Returns the number of instructions issued this cycle (the
     *  skip-ahead's quiet-cycle gate reads it; the stage cursors
     *  expose every other kind of activity). */
    std::uint64_t doIssue();
    void doSteer();
    void doCommit();
    void doFetch();

    /**
     * The cycle skip-ahead may jump to from now_, or now_ itself when
     * this cycle can do work (or consult the steering policy) and must
     * be stepped densely. invalidCycle when no stage has any future
     * event: the machine is deadlocked and skipTo clamps the jump to
     * the cycle limit so the stuck panic reproduces exactly.
     */
    Cycle idleSkipTarget() const;

    /** Jump now_ to `target`, folding the skipped span's per-cycle
     *  stats (occupancy samples, ILP idle bucket, stall counters) in
     *  one shot. */
    void skipTo(Cycle target, std::uint64_t cycle_limit);

    [[noreturn]] void stuckPanic();

    /** Oldest trace index the front end may fetch this cycle (the
     *  front-end pipe holds depth x width plus the current group). */
    std::uint64_t
    fetchBound() const
    {
        return steerIdx_ +
            static_cast<std::uint64_t>(config_.frontendDepth) *
            config_.fetchWidth + config_.fetchWidth;
    }

    /** Operand arrival time at the consumer's cluster. */
    Cycle availTime(InstId producer, ClusterId consumer_cluster,
                    int slot) const;

    /** Record a cross-cluster value delivery (for the traffic stats,
     *  attributed to the consumer's steering outcome). */
    void noteGlobalDelivery(InstId producer, InstId consumer,
                            ClusterId consumer_cluster);

    /** Register the core's counters and formulas with registry_. */
    void registerCoreStats();

    /** Stored by value so callers may pass temporaries. */
    const MachineConfig config_;
    /** The source AoS trace, or null when simulating a bare column
     *  view (an mmap-ed store); must outlive the simulation. */
    const Trace *trace_;
    /** Column view (of trace_, or standalone when trace_ is null). */
    const TraceSoA &soa_;
    /** recordAt() reassembly slot for the column-view-only case. */
    mutable TraceRecord scratchRecord_;
    SteeringPolicy &steering_;
    SchedulingPolicy &scheduling_;
    CommitListener *listener_;
    SimOptions options_;
    /** The flattened observer chain: options_.checker (if any)
     *  followed by the non-null options_.observers entries. */
    std::vector<SimObserver *> observers_;

    // Raw SoA column pointers, hoisted out of the cycle loop.
    const Addr *soaPc_ = nullptr;
    const OpClass *soaCls_ = nullptr;
    const std::uint8_t *soaLat_ = nullptr;
    const std::uint8_t *soaFlags_ = nullptr;
    const InstId *soaProd_[numSrcSlots] = {nullptr, nullptr, nullptr};

    Cycle now_ = 0;
    std::vector<Cluster> clusters_;

    // In-order stage cursors: commitIdx_ <= steerIdx_ <= fetchIdx_.
    std::uint64_t fetchIdx_ = 0;
    std::uint64_t steerIdx_ = 0;
    std::uint64_t commitIdx_ = 0;

    bool fetchStalled_ = false;
    InstId fetchStallBranch_ = invalidInstId;
    Cycle fetchResume_ = 0;

    /** Free window entries summed over all clusters, kept in sync at
     *  enter/exit so the steer stage never rescans the clusters. */
    unsigned freeWindowsTotal_ = 0;

    /** One bit per cluster with a non-empty ready set. readyNow_ is
     *  only mutated by doIssue, which keeps the mask exact. */
    std::uint16_t readyMask_ = 0;
    /**
     * Exact minimum of nextPendingCycle() across clusters: folded on
     * every markReady and recomputed by the promote scan (the only
     * place pending entries are removed). Lets the issue stage and
     * the idle probe skip the per-cluster scan on cycles with no
     * wakeup due.
     */
    Cycle nextPendingBound_ = invalidCycle;

    // ----------------------------------------------------------------
    // Per-instruction side tables (indexed by trace position), carved
    // out of ONE arena allocation: 8-byte columns first, then the
    // narrower ones, so every column stays naturally aligned. Waiter
    // lists (consumers blocked on a producer's value) live as per-
    // producer linked lists threaded through a flat node pool, sized
    // up front by the trace's producer-link count — appends never
    // allocate, and wake order stays FIFO per producer.
    static constexpr std::uint32_t noWaiter = UINT32_MAX;

    std::unique_ptr<std::byte[]> sideArena_;
    /** Backing store for timing_; moved wholesale into the SimResult
     *  at the end of run() instead of being copied out. */
    std::vector<InstTiming> timingStore_;
    InstTiming *timing_ = nullptr;
    std::uint64_t *prioKey_ = nullptr;
    Cycle *partialReady_ = nullptr;
    /** Pool column: waiting consumer id | (slot << prioKeyIdBits). */
    std::uint64_t *waiterIdSlot_ = nullptr;
    std::uint32_t *waiterHead_ = nullptr;
    std::uint32_t *waiterTail_ = nullptr;
    /** Pool column: next node of the same producer's list. */
    std::uint32_t *waiterNext_ = nullptr;
    std::uint16_t *deliveredMask_ = nullptr;
    std::uint8_t *pendingOps_ = nullptr;
    std::uint32_t waiterPoolCap_ = 0;
    std::uint32_t waiterPoolUsed_ = 0;

    std::uint64_t skipSpans_ = 0;
    std::uint64_t skipCycles_ = 0;

    // ----------------------------------------------------------------
    // Phase bookkeeping (see SimOptions::phases). An unphased run pays
    // exactly one compare per commit against the invalid sentinel.
    /** Commit index that closes the current phase; invalidInstId when
     *  unphased or the final phase runs to trace end. */
    std::uint64_t nextPhaseBoundary_ = invalidInstId;
    std::size_t phaseIdx_ = 0;
    std::uint64_t phaseStartInst_ = 0;
    Cycle phaseStartCycle_ = 0;
    std::vector<PhaseResult> phaseResults_;

    /** Issue-stage scratch (denied instructions of the cluster being
     *  selected); a member so its capacity persists across cycles. */
    std::vector<InstId> leftoverScratch_;

    std::vector<std::uint64_t> ilpCycles_;
    std::vector<std::uint64_t> ilpIssuedSum_;

    // ----------------------------------------------------------------
    // Observability. The registry owns every stat of the run; the core,
    // the clusters, the policies and the listener register into it at
    // construction. The raw Counter pointers below are plain handles
    // into registry_ (stable for its lifetime).
    StatsRegistry registry_;

    Counter *statCycles_ = nullptr;
    Counter *statInstructions_ = nullptr;
    /** Replaces the old ad-hoc globalValues_ member. */
    Counter *statGlobalValues_ = nullptr;
    /** Replaces the old ad-hoc steerStallCycles_ member. */
    Counter *statSteerStallCycles_ = nullptr;
    Counter *statRobFullCycles_ = nullptr;
    Counter *statAllWindowsFullCycles_ = nullptr;
    Counter *statFetchStallCycles_ = nullptr;
    Counter *statPortStarvedEvents_ = nullptr;
    Counter *statPriorityInversions_ = nullptr;
    /** Indexed by SteerReason: why instructions landed where they did. */
    std::vector<Counter *> statSteerReason_;
    /** Indexed by the consumer's SteerReason: bypass traffic by cause. */
    std::vector<Counter *> statFwdCause_;
    Counter *statFwdDyadic_ = nullptr;

    struct ClusterStats
    {
        Counter *steered = nullptr;
        /** Steers that wanted this cluster but found its window full. */
        Counter *windowFullDiverts = nullptr;
        Counter *intIssued = nullptr;
        Counter *fpIssued = nullptr;
        Counter *memIssued = nullptr;
    };
    std::vector<ClusterStats> clusterStats_;
};

} // namespace csim

#endif // CSIM_CORE_TIMING_SIM_HH
