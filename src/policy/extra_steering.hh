/**
 * @file
 * Additional steering policies from the clustered-processor
 * literature, for baselines and the cluster-sweep study:
 *
 *  - BlockSteering (Baniasadi & Moshovos [3] style): whole basic
 *    blocks go to one cluster, blocks rotate across clusters. Cheap
 *    hardware, decent locality within blocks, no dataflow awareness.
 *  - AdaptiveClusterSteering (Balasubramonian et al. [2] style):
 *    dependence-based steering restricted to a subset of active
 *    clusters whose size is tuned at runtime by interval-based
 *    exploration — fewer active clusters trade peak throughput for
 *    communication locality, which wins for low-ILP phases (the
 *    observation the paper revisits in Sec. 5).
 */

#ifndef CSIM_POLICY_EXTRA_STEERING_HH
#define CSIM_POLICY_EXTRA_STEERING_HH

#include <vector>

#include "core/policy.hh"

namespace csim {

/** Whole basic blocks to one cluster; blocks rotate. */
class BlockSteering : public SteeringPolicy
{
  public:
    void reset(const CoreView &view, std::size_t trace_size) override;
    SteerDecision steer(const CoreView &view,
                        const SteerRequest &req) override;
    void notifySteered(const CoreView &view, const SteerRequest &req,
                       const SteerDecision &decision) override;
    const char *name() const override { return "block"; }

  private:
    ClusterId current_ = 0;
    bool blockOpen_ = false;
};

/** Interval-based adaptive active-cluster-count steering. */
class AdaptiveClusterSteering : public SteeringPolicy
{
  public:
    /**
     * @param interval Instructions per measurement interval.
     * @param exploit_intervals Intervals to run the winning
     *        configuration before re-exploring.
     */
    explicit AdaptiveClusterSteering(std::uint64_t interval = 2048,
                                     unsigned exploit_intervals = 8);

    void reset(const CoreView &view, std::size_t trace_size) override;
    SteerDecision steer(const CoreView &view,
                        const SteerRequest &req) override;
    void notifySteered(const CoreView &view, const SteerRequest &req,
                       const SteerDecision &decision) override;
    const char *name() const override { return "adaptive"; }

    unsigned activeClusters() const { return active_; }

  private:
    void maybeAdvanceInterval(const CoreView &view);
    ClusterId leastLoadedActive(const CoreView &view) const;

    std::uint64_t interval_;
    unsigned exploitIntervals_;

    // Candidate active-cluster counts (powers of two up to N).
    std::vector<unsigned> candidates_;
    unsigned active_ = 1;

    enum class Phase { Explore, Exploit };
    Phase phase_ = Phase::Explore;
    std::size_t exploreIdx_ = 0;
    unsigned exploitLeft_ = 0;
    double bestIpc_ = 0.0;
    unsigned bestActive_ = 1;

    std::uint64_t steeredInInterval_ = 0;
    Cycle intervalStart_ = 0;
};

} // namespace csim

#endif // CSIM_POLICY_EXTRA_STEERING_HH
