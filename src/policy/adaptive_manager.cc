/**
 * @file
 * Closed-loop adaptive steering manager implementation.
 */

#include "policy/adaptive_manager.hh"

#include <algorithm>
#include <limits>
#include <string>

#include "common/logging.hh"

namespace csim {

const char *
adaptivePhaseName(AdaptivePhase p)
{
    switch (p) {
      case AdaptivePhase::Smooth: return "smooth";
      case AdaptivePhase::MemoryBound: return "memory";
      case AdaptivePhase::SteerBound: return "steer";
      case AdaptivePhase::Imbalanced: return "imbalance";
      case AdaptivePhase::Contended: return "contention";
      case AdaptivePhase::NumPhases: break;
    }
    CSIM_FATAL("invalid AdaptivePhase");
}

void
AdaptiveSummary::merge(const AdaptiveSummary &other)
{
    mergeCount += other.mergeCount;
    intervals += other.intervals;
    transitions += other.transitions;
    reverts += other.reverts;
    for (std::size_t i = 0; i < numAdaptivePhases; ++i)
        phaseIntervals[i] += other.phaseIntervals[i];
    stallThresholdSum += other.stallThresholdSum;
    locLowCutoffSum += other.locLowCutoffSum;
    pressureSum += other.pressureSum;
}

// --------------------------------------------------------------------
// AdaptiveBrain
// --------------------------------------------------------------------

AdaptiveBrain::AdaptiveBrain(const AdaptiveBrainOptions &options,
                             const AdaptiveKnobs &initial)
    : options_(options), defaults_(initial), knobs_(initial),
      revertKnobs_(initial)
{
    // A zero reaction latency would judge a probe over zero intervals
    // and transition on single-interval noise; clamp to the minimum
    // meaningful values instead of asserting on user input.
    options_.reactionIntervals = std::max(1u, options_.reactionIntervals);
    options_.minDwellIntervals = std::max(1u, options_.minDwellIntervals);
}

AdaptivePhase
AdaptiveBrain::classify(const IntervalRecord &rec,
                        unsigned windowPerCluster)
{
    if (rec.cycles == 0)
        return AdaptivePhase::Smooth;

    const auto comp = [&rec](CpiComponent c) {
        return rec.components[static_cast<std::size_t>(c)];
    };

    // Occupancy skew is a leading indicator: the stack only charges
    // LoadImbalance once denial cycles appear, but a half-window
    // occupancy gap between clusters means steering is already piling
    // work up. Promote before the stack test.
    if (rec.clusters.size() > 1 && windowPerCluster > 0) {
        std::uint64_t max_occ = 0;
        std::uint64_t min_occ = std::numeric_limits<std::uint64_t>::max();
        for (const IntervalClusterLane &lane : rec.clusters) {
            max_occ = std::max(max_occ, lane.occupancySum);
            min_occ = std::min(min_occ, lane.occupancySum);
        }
        if ((max_occ - min_occ) * 2 >
            rec.cycles * static_cast<std::uint64_t>(windowPerCluster))
            return AdaptivePhase::Imbalanced;
    }

    // Dominant loss component, tie-broken in a fixed order so the
    // classification (and hence every downstream knob change) is
    // deterministic. A phase only counts as dominant when its loss
    // covers more than a quarter of the interval; below that, knob
    // changes chase noise for marginal gain.
    const std::uint64_t memory = comp(CpiComponent::Memory);
    const std::uint64_t steer =
        comp(CpiComponent::SteerStall) + comp(CpiComponent::Window);
    const std::uint64_t imbalance = comp(CpiComponent::LoadImbalance);
    const std::uint64_t contention = comp(CpiComponent::Contention);

    std::uint64_t best = memory;
    AdaptivePhase best_phase = AdaptivePhase::MemoryBound;
    if (steer > best) {
        best = steer;
        best_phase = AdaptivePhase::SteerBound;
    }
    if (imbalance > best) {
        best = imbalance;
        best_phase = AdaptivePhase::Imbalanced;
    }
    if (contention > best) {
        best = contention;
        best_phase = AdaptivePhase::Contended;
    }
    if (best * 4 <= rec.cycles)
        return AdaptivePhase::Smooth;
    return best_phase;
}

AdaptiveKnobs
AdaptiveBrain::knobsFor(AdaptivePhase phase, double critFraction) const
{
    AdaptiveKnobs k = defaults_;
    switch (phase) {
      case AdaptivePhase::Smooth:
        break;
      case AdaptivePhase::MemoryBound:
        // Stalling the in-order steer stage behind an L1 miss
        // serializes the whole miss latency: raise the cutoff so only
        // the most critical chains may stall.
        k.stallThreshold =
            std::min(1.0, defaults_.stallThreshold + 0.20);
        break;
      case AdaptivePhase::SteerBound:
        // Steer/window losses dominate: the policy is stalling (or
        // backing the ROB up) too eagerly — demand more criticality
        // before a stall is worth a steer slot.
        k.stallThreshold =
            std::min(1.0, defaults_.stallThreshold + 0.25);
        break;
      case AdaptivePhase::Imbalanced:
        // Engage proactive pushing at half occupancy instead of 3/4:
        // spread work before the hot cluster's window saturates.
        k.pressureNum = 1;
        k.pressureDen = 2;
        break;
      case AdaptivePhase::Contended:
        // Critical ops are fighting for ports: sharpen scheduling
        // resolution among likely-critical instructions, stall a bit
        // more readily to keep chains collocated, and stop pushing
        // consumers until the producer cluster is nearly full. When
        // the predictor marks most steers critical it has saturated —
        // a cutoff of 1 would just reshuffle noise, so keep 2.
        k.locLowCutoff = critFraction > 0.5 ? 2u : 1u;
        k.stallThreshold =
            std::max(0.0, defaults_.stallThreshold - 0.10);
        k.pressureNum = 7;
        k.pressureDen = 8;
        break;
      case AdaptivePhase::NumPhases:
        CSIM_FATAL("invalid AdaptivePhase");
    }
    return k;
}

AdaptiveDecision
AdaptiveBrain::observe(const IntervalRecord &rec,
                       unsigned windowPerCluster)
{
    AdaptiveDecision d;
    d.startCycle = rec.startCycle;
    d.cycles = rec.cycles;

    ++dwell_;

    // The interval that just closed ran under the post-transition
    // knobs; once the probe window spans reactionIntervals of them,
    // judge the change against the pre-transition CPI.
    if (probing_) {
        probeCycles_ += rec.cycles;
        probeCommits_ += rec.commits;
        if (dwell_ >= options_.reactionIntervals) {
            probing_ = false;
            const double cpi_after = probeCommits_
                ? static_cast<double>(probeCycles_) / probeCommits_
                : 0.0;
            if (options_.revertOnRegression && cpiBefore_ > 0.0 &&
                cpi_after >
                    cpiBefore_ * (1.0 + options_.regressionTolerance)) {
                knobs_ = revertKnobs_;
                vetoActive_ = true;
                vetoPhase_ = phase_;
                d.reverted = true;
            }
        }
    }

    // Candidate streak: a new phase must classify for
    // reactionIntervals consecutive closes before the machine moves.
    const AdaptivePhase cls = classify(rec, windowPerCluster);
    if (cls == phase_) {
        candidate_ = phase_;
        candidateStreak_ = 0;
    } else if (cls == candidate_) {
        ++candidateStreak_;
    } else {
        candidate_ = cls;
        candidateStreak_ = 1;
    }

    if (candidate_ != phase_ &&
        candidateStreak_ >= options_.reactionIntervals &&
        dwell_ >= options_.minDwellIntervals) {
        // Record what we are leaving behind so a bad move can be
        // undone: the trailing interval's CPI is the baseline.
        cpiBefore_ = lastCommits_
            ? static_cast<double>(lastCycles_) / lastCommits_
            : 0.0;
        const bool vetoed = vetoActive_ && vetoPhase_ == candidate_;
        vetoActive_ = false;
        revertKnobs_ = knobs_;
        phase_ = candidate_;
        dwell_ = 0;
        candidateStreak_ = 0;
        if (!vetoed) {
            const double crit_fraction = rec.steers
                ? static_cast<double>(rec.predictedCriticalSteers) /
                    rec.steers
                : 0.0;
            knobs_ = knobsFor(phase_, crit_fraction);
            probing_ = true;
            probeCycles_ = 0;
            probeCommits_ = 0;
        }
        d.transitioned = true;
    }

    lastCycles_ = rec.cycles;
    lastCommits_ = rec.commits;
    d.phase = phase_;
    d.knobs = knobs_;
    return d;
}

// --------------------------------------------------------------------
// AdaptiveManager
// --------------------------------------------------------------------

namespace {

AdaptiveKnobs
initialKnobsOf(const UnifiedSteering *steering,
               const LocScheduling *scheduling)
{
    // Seed the machine from the knobs actually in force so the first
    // decision interval runs the static configuration unchanged (and
    // Smooth always means "whatever the user configured").
    AdaptiveKnobs k;
    if (steering) {
        k.stallThreshold = steering->stallThreshold();
        k.pressureNum = steering->pressureNum();
        k.pressureDen = steering->pressureDen();
    }
    if (scheduling)
        k.locLowCutoff = scheduling->lowCutoff();
    return k;
}

} // namespace

AdaptiveManager::AdaptiveManager(const MachineConfig &config,
                                 const Trace &trace,
                                 const AdaptiveManagerOptions &options,
                                 UnifiedSteering *steering,
                                 LocScheduling *scheduling,
                                 const LocPredictor *loc_pred)
    : profiler_(config, trace,
                IntervalProfilerOptions{options.intervalCycles}),
      brainOptions_(options.brain),
      initialKnobs_(initialKnobsOf(steering, scheduling)),
      brain_(options.brain, initialKnobs_),
      steering_(steering), scheduling_(scheduling), locPred_(loc_pred)
{}

void
AdaptiveManager::onRunStart(const CoreView &view)
{
    profiler_.onRunStart(view);
    // A fresh run replays from a fresh machine: restart the state
    // machine and restore the static knobs so back-to-back runs over
    // the same manager stay deterministic.
    brain_ = AdaptiveBrain(brainOptions_, initialKnobs_);
    applyKnobs(initialKnobs_);
    seen_ = 0;
    sinceTransition_ = 0;
    decisions_.clear();
}

void
AdaptiveManager::onSteer(const CoreView &view, InstId id)
{
    profiler_.onSteer(view, id);
}

void
AdaptiveManager::onIssue(const CoreView &view, InstId id)
{
    profiler_.onIssue(view, id);
}

void
AdaptiveManager::onIssueDenied(const CoreView &view, InstId id)
{
    profiler_.onIssueDenied(view, id);
}

void
AdaptiveManager::onCommit(const CoreView &view, InstId id)
{
    profiler_.onCommit(view, id);
}

void
AdaptiveManager::onSteerStall(const CoreView &view, SteerStallCause cause)
{
    profiler_.onSteerStall(view, cause);
}

void
AdaptiveManager::onFetchStall(const CoreView &view)
{
    profiler_.onFetchStall(view);
}

void
AdaptiveManager::onCycleEnd(const CoreView &view)
{
    profiler_.onCycleEnd(view);
    reactToCloses();
}

void
AdaptiveManager::onRunEnd(const CoreView &view)
{
    profiler_.onRunEnd(view);
    reactToCloses();
}

void
AdaptiveManager::registerStats(StatsRegistry &registry)
{
    // Note: the internal profiler's stats deliberately stay
    // unregistered — a user-requested --profile profiler on the same
    // observer chain owns the "profiler.*" namespace.
    statIntervals_ = &registry.addCounter(
        "adaptive.intervals", "decision intervals observed");
    statTransitions_ = &registry.addCounter(
        "adaptive.transitions", "phase transitions taken");
    statReverts_ = &registry.addCounter(
        "adaptive.reverts", "knob changes undone on CPI regression");
    for (std::size_t i = 0; i < numAdaptivePhases; ++i) {
        const char *name =
            adaptivePhaseName(static_cast<AdaptivePhase>(i));
        statPhase_[i] = &registry.addCounter(
            std::string("adaptive.phase.") + name,
            std::string("intervals spent in the ") + name + " phase");
    }
    statDwell_ = &registry.addDistribution(
        "adaptive.dwell", 16, 0.0, 64.0,
        "intervals dwelt in a phase at each transition");
    registry.addFormula(
        "adaptive.knob.stallThreshold",
        [this] { return brain_.knobs().stallThreshold; },
        "stall-over-steer LoC cutoff in force at run end");
    registry.addFormula(
        "adaptive.knob.locLowCutoff",
        [this] {
            return static_cast<double>(brain_.knobs().locLowCutoff);
        },
        "LoC scheduling low cutoff in force at run end");
    registry.addFormula(
        "adaptive.knob.pressure",
        [this] { return brain_.knobs().pressure(); },
        "proactive-LB pressure gate in force at run end");
}

void
AdaptiveManager::reactToCloses()
{
    const IntervalSeries &series = profiler_.series();
    while (seen_ < series.records.size()) {
        const IntervalRecord &rec = series.records[seen_++];
        AdaptiveDecision d =
            brain_.observe(rec, series.windowPerCluster);
        ++sinceTransition_;
        if (statIntervals_)
            ++*statIntervals_;
        if (statPhase_[static_cast<std::size_t>(d.phase)])
            ++*statPhase_[static_cast<std::size_t>(d.phase)];
        if (d.transitioned) {
            if (statTransitions_)
                ++*statTransitions_;
            if (statDwell_)
                statDwell_->add(static_cast<double>(sinceTransition_));
            sinceTransition_ = 0;
        }
        if (d.reverted && statReverts_)
            ++*statReverts_;
        applyKnobs(d.knobs);
        decisions_.push_back(d);
    }
}

void
AdaptiveManager::applyKnobs(const AdaptiveKnobs &knobs)
{
    if (steering_) {
        steering_->setStallThreshold(knobs.stallThreshold);
        steering_->setProactivePressure(knobs.pressureNum,
                                        knobs.pressureDen);
    }
    if (scheduling_)
        scheduling_->setLowCutoff(knobs.locLowCutoff);
}

std::vector<AdaptiveLanePoint>
AdaptiveManager::lanePoints() const
{
    std::vector<AdaptiveLanePoint> points;
    points.reserve(decisions_.size());
    for (const AdaptiveDecision &d : decisions_) {
        AdaptiveLanePoint p;
        p.startCycle = d.startCycle;
        p.cycles = d.cycles;
        p.phase = adaptivePhaseName(d.phase);
        p.stallThreshold = d.knobs.stallThreshold;
        p.locLowCutoff = d.knobs.locLowCutoff;
        p.pressure = d.knobs.pressure();
        p.transitioned = d.transitioned;
        p.reverted = d.reverted;
        points.push_back(std::move(p));
    }
    return points;
}

AdaptiveSummary
AdaptiveManager::summary() const
{
    AdaptiveSummary s;
    s.mergeCount = 1;
    s.intervals = decisions_.size();
    for (const AdaptiveDecision &d : decisions_) {
        ++s.phaseIntervals[static_cast<std::size_t>(d.phase)];
        if (d.transitioned)
            ++s.transitions;
        if (d.reverted)
            ++s.reverts;
    }
    const AdaptiveKnobs &k = brain_.knobs();
    s.stallThresholdSum = k.stallThreshold;
    s.locLowCutoffSum = k.locLowCutoff;
    s.pressureSum = k.pressure();
    return s;
}

} // namespace csim
