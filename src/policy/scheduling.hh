/**
 * @file
 * Issue-priority (scheduling) policies.
 *
 * Age: classic oldest-first selection.
 * Critical: Fields's focused scheduling — predicted-critical
 *     instructions issue before others, ties by age (paper Sec. 2.3).
 * LoC: prioritise by likelihood of criticality, a 16-way spectrum that
 *     distinguishes degrees of criticality (paper Sec. 4).
 */

#ifndef CSIM_POLICY_SCHEDULING_HH
#define CSIM_POLICY_SCHEDULING_HH

#include <algorithm>

#include "core/policy.hh"
#include "obs/stats_registry.hh"
#include "predict/criticality_predictor.hh"
#include "predict/loc_predictor.hh"

namespace csim {

/** Oldest-first issue. */
class AgeScheduling : public SchedulingPolicy
{
  public:
    std::uint32_t
    priorityClass(const TraceRecord &rec) override
    {
        (void)rec;
        return 0;
    }

    const char *name() const override { return "age"; }
};

/** Predicted-critical instructions first; ties broken by age. */
class CriticalScheduling : public SchedulingPolicy
{
  public:
    explicit CriticalScheduling(const CriticalityPredictor &pred)
        : pred_(pred)
    {}

    std::uint32_t
    priorityClass(const TraceRecord &rec) override
    {
        const bool critical = pred_.predict(rec.pc);
        if (statCriticalClassed_ && critical)
            ++*statCriticalClassed_;
        return critical ? 0 : 1;
    }

    void
    registerStats(StatsRegistry &registry) override
    {
        statCriticalClassed_ = &registry.addCounter(
            "sched.critical.classedCritical",
            "dispatches classed into the critical priority class");
    }

    const char *name() const override { return "critical"; }

  private:
    const CriticalityPredictor &pred_;
    Counter *statCriticalClassed_ = nullptr;
};

/** Higher likelihood of criticality issues first; ties by age. */
class LocScheduling : public SchedulingPolicy
{
  public:
    explicit LocScheduling(const LocPredictor &loc)
        : loc_(loc), low_(std::max(2u, loc.levels() / 8))
    {}

    std::uint32_t
    priorityClass(const TraceRecord &rec) override
    {
        // Full LoC resolution among likely-critical instructions, but
        // one shared class for the never/rarely-critical mass: the
        // probabilistic counters carry about a level of noise, and
        // spurious priority inversions among equally non-critical
        // instructions (breaking age order) cost more than the last
        // bit of LoC resolution buys.
        const unsigned level = loc_.level(rec.pc);
        const unsigned top = loc_.levels() - 1;
        if (statElevated_ && level >= low_)
            ++*statElevated_;
        return level >= low_ ? top - level : top - low_ + 1;
    }

    // --- Live retune surface (adaptive manager) ----------------- //

    /** Retune the lowest level resolved above the non-critical mass
     *  (plain setter; a sim runs on exactly one thread). Clamped to
     *  [1, levels-1] so the priority math stays well-formed. */
    void
    setLowCutoff(unsigned low)
    {
        low_ = std::min(std::max(low, 1u), loc_.levels() - 1);
    }
    unsigned lowCutoff() const { return low_; }

    void
    registerStats(StatsRegistry &registry) override
    {
        statElevated_ = &registry.addCounter(
            "sched.loc.classedElevated",
            "dispatches classed above the non-critical mass");
    }

    const char *name() const override { return "loc"; }

  private:
    const LocPredictor &loc_;
    unsigned low_;
    Counter *statElevated_ = nullptr;
};

} // namespace csim

#endif // CSIM_POLICY_SCHEDULING_HH
