#include "policy/extra_steering.hh"

#include "common/logging.hh"

namespace csim {

// ---------------------------------------------------------------------
// BlockSteering

void
BlockSteering::reset(const CoreView &view, std::size_t trace_size)
{
    (void)view;
    (void)trace_size;
    current_ = 0;
    blockOpen_ = false;
}

SteerDecision
BlockSteering::steer(const CoreView &view, const SteerRequest &req)
{
    const unsigned n = view.config().numClusters;
    SteerDecision d;
    if (n == 1) {
        d.cluster = 0;
        d.reason = SteerReason::Monolithic;
        return d;
    }

    if (!blockOpen_ || view.windowFree(current_) == 0) {
        // Start a new block (or spill a full one): rotate to the next
        // cluster with room.
        ClusterId c = current_;
        for (unsigned tries = 0; tries < n; ++tries) {
            c = static_cast<ClusterId>((c + 1) % n);
            if (view.windowFree(c) > 0)
                break;
        }
        CSIM_ASSERT(view.windowFree(c) > 0);
        current_ = c;
        blockOpen_ = true;
    }

    d.cluster = current_;
    d.reason = SteerReason::NoProducer;
    (void)req;
    return d;
}

void
BlockSteering::notifySteered(const CoreView &view,
                             const SteerRequest &req,
                             const SteerDecision &decision)
{
    (void)view;
    (void)decision;
    // A branch ends the basic block.
    if (req.rec->isBranch)
        blockOpen_ = false;
}

// ---------------------------------------------------------------------
// AdaptiveClusterSteering

AdaptiveClusterSteering::AdaptiveClusterSteering(
    std::uint64_t interval, unsigned exploit_intervals)
    : interval_(interval), exploitIntervals_(exploit_intervals)
{
    CSIM_ASSERT(interval >= 64);
}

void
AdaptiveClusterSteering::reset(const CoreView &view,
                               std::size_t trace_size)
{
    (void)trace_size;
    candidates_.clear();
    const unsigned n = view.config().numClusters;
    for (unsigned k = 1; k <= n; k *= 2)
        candidates_.push_back(k);
    if (candidates_.back() != n)
        candidates_.push_back(n);

    phase_ = Phase::Explore;
    exploreIdx_ = 0;
    active_ = candidates_.front();
    bestIpc_ = 0.0;
    bestActive_ = active_;
    steeredInInterval_ = 0;
    intervalStart_ = view.now();
}

ClusterId
AdaptiveClusterSteering::leastLoadedActive(const CoreView &view) const
{
    ClusterId best = invalidCluster;
    for (unsigned c = 0; c < active_; ++c) {
        const ClusterId cid = static_cast<ClusterId>(c);
        if (view.windowFree(cid) == 0)
            continue;
        if (best == invalidCluster ||
            view.windowOccupancy(cid) < view.windowOccupancy(best))
            best = cid;
    }
    return best;
}

void
AdaptiveClusterSteering::maybeAdvanceInterval(const CoreView &view)
{
    if (steeredInInterval_ < interval_)
        return;

    const Cycle elapsed = view.now() > intervalStart_
        ? view.now() - intervalStart_ : 1;
    const double ipc = static_cast<double>(steeredInInterval_) /
        static_cast<double>(elapsed);

    if (phase_ == Phase::Explore) {
        if (ipc > bestIpc_) {
            bestIpc_ = ipc;
            bestActive_ = active_;
        }
        ++exploreIdx_;
        if (exploreIdx_ < candidates_.size()) {
            active_ = candidates_[exploreIdx_];
        } else {
            phase_ = Phase::Exploit;
            active_ = bestActive_;
            exploitLeft_ = exploitIntervals_;
        }
    } else {
        if (--exploitLeft_ == 0) {
            phase_ = Phase::Explore;
            exploreIdx_ = 0;
            active_ = candidates_.front();
            bestIpc_ = 0.0;
        }
    }

    steeredInInterval_ = 0;
    intervalStart_ = view.now();
}

SteerDecision
AdaptiveClusterSteering::steer(const CoreView &view,
                               const SteerRequest &req)
{
    maybeAdvanceInterval(view);
    const TraceRecord &rec = *req.rec;
    SteerDecision d;

    if (view.config().numClusters == 1) {
        d.cluster = 0;
        d.reason = SteerReason::Monolithic;
        return d;
    }

    // Dependence-based steering restricted to the active subset.
    InstId prod = invalidInstId;
    for (int slot = srcSlot1; slot <= srcSlot2; ++slot) {
        const InstId p = rec.prod[slot];
        if (p == invalidInstId || !view.inFlight(p))
            continue;
        if (view.clusterOf(p) >= active_)
            continue;  // parked on an inactive cluster
        if (prod == invalidInstId || p > prod)
            prod = p;
    }

    if (prod != invalidInstId) {
        const ClusterId pc = view.clusterOf(prod);
        if (view.windowFree(pc) > 0) {
            d.cluster = pc;
            d.reason = SteerReason::Collocated;
            d.desired = pc;
            return d;
        }
        d.desired = pc;
        const ClusterId lb = leastLoadedActive(view);
        if (lb != invalidCluster) {
            d.cluster = lb;
            d.reason = SteerReason::LoadBalanced;
            return d;
        }
        // Active set completely full: stall until it drains (the
        // inactive clusters are deliberately unused).
        d.stall = true;
        return d;
    }

    const ClusterId lb = leastLoadedActive(view);
    if (lb == invalidCluster) {
        d.stall = true;
        return d;
    }
    d.cluster = lb;
    d.reason = SteerReason::NoProducer;
    return d;
}

void
AdaptiveClusterSteering::notifySteered(const CoreView &view,
                                       const SteerRequest &req,
                                       const SteerDecision &decision)
{
    (void)view;
    (void)req;
    (void)decision;
    ++steeredInInterval_;
}

} // namespace csim
