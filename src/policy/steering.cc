#include "policy/steering.hh"

#include <algorithm>

#include "common/logging.hh"

namespace csim {

namespace {

/** Snapshot the predictions for a steer decision. */
void
snapshotPredictions(SteerDecision &d, const TraceRecord &rec,
                    const CriticalityPredictor *crit,
                    const LocPredictor *loc)
{
    if (crit)
        d.predictedCritical = crit->predict(rec.pc);
    if (loc)
        d.locLevel = static_cast<std::uint8_t>(loc->level(rec.pc));
}

} // anonymous namespace

// ---------------------------------------------------------------------
// ModNSteering

void
ModNSteering::reset(const CoreView &view, std::size_t trace_size)
{
    (void)view;
    (void)trace_size;
    next_ = 0;
}

SteerDecision
ModNSteering::steer(const CoreView &view, const SteerRequest &req)
{
    (void)req;
    SteerDecision d;
    const unsigned n = view.config().numClusters;
    if (n == 1) {
        d.cluster = 0;
        d.reason = SteerReason::Monolithic;
        return d;
    }
    // Rotate, skipping full clusters (the core guarantees one is free).
    for (unsigned tries = 0; tries < n; ++tries) {
        ClusterId c = next_;
        next_ = static_cast<ClusterId>((next_ + 1) % n);
        if (view.windowFree(c) > 0) {
            d.cluster = c;
            d.reason = SteerReason::NoProducer;
            return d;
        }
    }
    CSIM_PANIC("ModNSteering: no free cluster");
}

// ---------------------------------------------------------------------
// LoadBalanceSteering

SteerDecision
LoadBalanceSteering::steer(const CoreView &view, const SteerRequest &req)
{
    (void)req;
    SteerDecision d;
    const unsigned n = view.config().numClusters;
    if (n == 1) {
        d.cluster = 0;
        d.reason = SteerReason::Monolithic;
        return d;
    }
    // One occupancy query per cluster: a full window shows occupancy
    // == windowPerCluster, so the free-entry test needs no extra call.
    const unsigned entries = view.config().windowPerCluster;
    ClusterId best = invalidCluster;
    unsigned best_occ = entries;
    for (unsigned c = 0; c < n; ++c) {
        ClusterId cid = static_cast<ClusterId>(c);
        const unsigned occ = view.windowOccupancy(cid);
        if (occ < best_occ) {
            best = cid;
            best_occ = occ;
        }
    }
    CSIM_ASSERT(best != invalidCluster);
    d.cluster = best;
    d.reason = SteerReason::NoProducer;
    return d;
}

// ---------------------------------------------------------------------
// UnifiedSteering

UnifiedSteering::UnifiedSteering(const UnifiedSteeringOptions &options,
                                 const CriticalityPredictor *crit_pred,
                                 const LocPredictor *loc_pred)
    : options_(options), critPred_(crit_pred), locPred_(loc_pred)
{
    name_ = "dep";
    if (options.focusOnCritical)
        name_ += "+focus";
    if (options.stallOverSteer)
        name_ += "+stall";
    if (options.proactiveLB)
        name_ += "+proactive";
    if (options.focusOnCritical)
        CSIM_ASSERT(critPred_ != nullptr);
    if (options.stallOverSteer || options.proactiveLB)
        CSIM_ASSERT(locPred_ != nullptr);
}

void
UnifiedSteering::registerStats(StatsRegistry &registry)
{
    statStallDecisions_ = &registry.addCounter(
        "steer.policy.stallDecisions",
        "steers answered with a stall-over-steer decision");
    statCritKeepVetoes_ = &registry.addCounter(
        "steer.policy.critKeepVetoes",
        "proactive pushes vetoed by the binary criticality predictor");
    statLocKeepOverrides_ = &registry.addCounter(
        "steer.policy.locKeepOverrides",
        "proactive pushes vetoed by the LoC override");
}

void
UnifiedSteering::reset(const CoreView &view, std::size_t trace_size)
{
    (void)view;
    pendingProducer_ = invalidInstId;
    maxConsumerLoc_.assign(trace_size, 0);
    followed_.assign(trace_size, false);
    if (lbCandidate_.empty()) {
        lbCandidate_.assign(std::size_t{1} << lbTableBits,
                            SatCounter(2, 1, 1, 0));
    }
    if (stallClass_.empty()) {
        stallClass_.assign(std::size_t{1} << lbTableBits,
                           SatCounter(2, 1, 1, 0));
    }
    // The lbCandidate table persists across runs (it is a predictor),
    // like the criticality tables.
}

std::size_t
UnifiedSteering::lbIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << lbTableBits) - 1);
}

ClusterId
UnifiedSteering::leastLoaded(const CoreView &view)
{
    // One occupancy query per cluster (see LoadBalanceSteering): full
    // windows read occupancy == windowPerCluster and never win.
    const unsigned n = view.config().numClusters;
    const unsigned entries = view.config().windowPerCluster;
    ClusterId best = invalidCluster;
    unsigned best_occ = entries;
    for (unsigned c = 0; c < n; ++c) {
        ClusterId cid = static_cast<ClusterId>(c);
        const unsigned occ = view.windowOccupancy(cid);
        if (occ < best_occ) {
            best = cid;
            best_occ = occ;
        }
    }
    CSIM_ASSERT(best != invalidCluster);
    return best;
}

SteerDecision
UnifiedSteering::steer(const CoreView &view, const SteerRequest &req)
{
    const TraceRecord &rec = *req.rec;
    SteerDecision d;
    snapshotPredictions(d, rec, critPred_, locPred_);
    pendingProducer_ = invalidInstId;

    if (view.config().numClusters == 1) {
        d.cluster = 0;
        d.reason = SteerReason::Monolithic;
        return d;
    }

    // Collect in-flight register producers (slots 1 and 2; memory
    // dependences resolve through the shared L1 and do not steer).
    struct ProducerInfo
    {
        InstId id;
        ClusterId cluster;
        bool critical;
    };
    ProducerInfo prods[2];
    int num_prods = 0;
    for (int slot = srcSlot1; slot <= srcSlot2; ++slot) {
        const InstId p = rec.prod[slot];
        if (p == invalidInstId || !view.inFlight(p))
            continue;
        bool crit = false;
        if (options_.focusOnCritical)
            crit = critPred_->predict(view.pcOf(p));
        prods[num_prods++] = ProducerInfo{p, view.clusterOf(p), crit};
    }

    d.dyadicSplit = num_prods == 2 &&
        prods[0].cluster != prods[1].cluster;

    if (num_prods == 0) {
        d.cluster = leastLoaded(view);
        d.reason = SteerReason::NoProducer;
        return d;
    }

    // Desired producer: most recently dispatched (approximates the
    // last-arriving operand); focused steering promotes a
    // predicted-critical producer over a non-critical one.
    int chosen = 0;
    if (num_prods == 2) {
        if (options_.focusOnCritical &&
            prods[0].critical != prods[1].critical) {
            chosen = prods[0].critical ? 0 : 1;
        } else {
            chosen = prods[0].id > prods[1].id ? 0 : 1;
        }
    }
    const ProducerInfo &prod = prods[chosen];
    d.desired = prod.cluster;
    pendingProducer_ = prod.id;

    const double loc_est =
        locPred_ ? locPred_->estimate(rec.pc) : 0.0;

    // Train the stall-class hysteresis with this steer's LoC sample:
    // single samples of the probabilistic counter are too noisy to
    // gate a fetch stall (a ~20%-critical instruction still reads
    // above the 30% threshold ~16% of the time).
    if (options_.stallOverSteer) {
        stallClass_[lbIndex(rec.pc)].train(
            loc_est >= options_.stallThreshold);
    }

    // Proactive load-balancing: push consumers that are usually not the
    // most critical one (or that follow an already-followed producer)
    // to another cluster, unless the LoC override retains them.
    // Proactive pushing only pays when the producer's cluster is under
    // pressure; with a lightly loaded window, collocation is free and
    // pushing can only add forwarding delay (the hammock trap).
    const bool producer_pressured =
        view.windowOccupancy(prod.cluster) * options_.pressureDen >=
        view.config().windowPerCluster * options_.pressureNum;

    if (options_.proactiveLB && producer_pressured) {
        const bool candidate =
            lbCandidate_[lbIndex(rec.pc)].saturatedHigh();
        const bool already_followed = followed_[prod.id];
        bool keep = false;
        if (locPred_) {
            // Integer-level comparison with one level of slack: the
            // 16-level stratification makes an exact "half the
            // producer's LoC" test flicker for near-critical consumers
            // (hammock arms), and a wrongly pushed arm costs the
            // convergence point a forwarding delay on every instance.
            const unsigned c_lvl = locPred_->level(rec.pc);
            const unsigned p_lvl =
                locPred_->level(view.pcOf(prod.id));
            keep = (c_lvl >= 1 && 2 * c_lvl + 1 >= p_lvl) ||
                loc_est >= options_.keepAbsoluteLoc;
        }
        // The probabilistic LoC levels are noisy (binomial stationary
        // distribution); the 6-bit binary predictor's +8/-1 hysteresis
        // is sticky, so use it as a stable veto: never push a
        // predicted-critical consumer off its producer.
        bool crit_veto = false;
        if (critPred_ && critPred_->predict(rec.pc)) {
            crit_veto = !keep;
            keep = true;
        }
        if ((candidate || already_followed) && keep) {
            if (crit_veto) {
                if (statCritKeepVetoes_)
                    ++*statCritKeepVetoes_;
            } else if (statLocKeepOverrides_) {
                ++*statLocKeepOverrides_;
            }
        }
        if ((candidate || already_followed) && !keep) {
            d.cluster = leastLoaded(view);
            if (d.cluster != prod.cluster) {
                d.reason = SteerReason::ProactiveLB;
                pendingProducer_ = invalidInstId;
                return d;
            }
            // Least-loaded happens to be the producer cluster: fall
            // through to normal collocation.
        }
    }

    if (view.windowFree(prod.cluster) > 0) {
        d.cluster = prod.cluster;
        d.reason = SteerReason::Collocated;
        return d;
    }

    // Desired cluster is full: stall steering for execute-critical
    // consumers rather than break their dependence chain (Sec. 5).
    // The stall case is the one of the paper's Fig. 9 — a chain still
    // being built, i.e. the producer has not issued, so its completion
    // time is unknown; once the producer has issued, its value reaches
    // every cluster within the forwarding latency and stalling fetch
    // costs more than the 2 cycles it could save.
    if (options_.stallOverSteer &&
        stallClass_[lbIndex(rec.pc)].atLeast(2) &&
        view.timingOf(prod.id).complete == invalidCycle) {
        d.stall = true;
        if (statStallDecisions_)
            ++*statStallDecisions_;
        pendingProducer_ = invalidInstId;
        return d;
    }

    d.cluster = leastLoaded(view);
    d.reason = SteerReason::LoadBalanced;
    pendingProducer_ = invalidInstId;
    return d;
}

void
UnifiedSteering::notifySteered(const CoreView &view,
                               const SteerRequest &req,
                               const SteerDecision &decision)
{
    (void)view;
    const TraceRecord &rec = *req.rec;

    // Track the most critical consumer seen so far for each dynamic
    // value, and mark producers as followed on collocation.
    if (!maxConsumerLoc_.empty() && locPred_) {
        const std::uint8_t lvl =
            static_cast<std::uint8_t>(locPred_->level(rec.pc));
        for (int slot = srcSlot1; slot <= srcSlot2; ++slot) {
            const InstId p = rec.prod[slot];
            if (p == invalidInstId)
                continue;
            if (lvl > maxConsumerLoc_[p])
                maxConsumerLoc_[p] = lvl;
        }
    }

    if (decision.reason == SteerReason::Collocated &&
        pendingProducer_ != invalidInstId) {
        followed_[pendingProducer_] = true;
    }
    pendingProducer_ = invalidInstId;
}

void
UnifiedSteering::notifyCommit(const CoreView &view, InstId id,
                              const TraceRecord &rec)
{
    (void)view;
    if (!options_.proactiveLB || !locPred_ || maxConsumerLoc_.empty())
        return;

    // When a consumer retires, compare its LoC against the most
    // critical consumer recorded for its producers' values; if lower,
    // it is a load-balancing candidate (paper Sec. 7).
    (void)id;
    const std::uint8_t lvl =
        static_cast<std::uint8_t>(locPred_->level(rec.pc));
    for (int slot = srcSlot1; slot <= srcSlot2; ++slot) {
        const InstId p = rec.prod[slot];
        if (p == invalidInstId)
            continue;
        lbCandidate_[lbIndex(rec.pc)].train(maxConsumerLoc_[p] > lvl);
    }
}

} // namespace csim
