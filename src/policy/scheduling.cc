// Scheduling policies are header-only; this translation unit exercises
// the header standalone (include hygiene).
#include "policy/scheduling.hh"
