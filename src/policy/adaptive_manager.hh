/**
 * @file
 * Closed-loop adaptive steering manager (driven by interval CPI
 * stacks).
 *
 * The paper evaluates static policies only, but its own loss taxonomy
 * shifts per program phase. The AdaptiveManager attaches through
 * SimOptions::observers, watches the live per-interval 9-component
 * CPI stack (plus per-cluster occupancy imbalance and predictor
 * telemetry), classifies each closed interval into a phase class, and
 * retunes the live policy knobs — stall-over-steer LoC cutoff,
 * LoC-scheduling low cutoff, and proactive load-balance
 * aggressiveness — through the plain-setter retune surface on
 * UnifiedSteering / LocScheduling. A small hysteresis state machine
 * (reaction latency, min-dwell, revert-on-regression) keeps the loop
 * from chasing noise.
 *
 * Everything here is deterministic: decisions derive only from the
 * interval records, which are themselves byte-identical at any sweep
 * thread count, so adaptive runs keep the harness's determinism
 * guarantees.
 */

#ifndef CSIM_POLICY_ADAPTIVE_MANAGER_HH
#define CSIM_POLICY_ADAPTIVE_MANAGER_HH

#include <cstdint>
#include <vector>

#include "core/sim_observer.hh"
#include "obs/chrome_trace.hh"
#include "obs/interval_profiler.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "predict/loc_predictor.hh"

namespace csim {

/** Phase classes the hysteresis machine steers between. */
enum class AdaptivePhase : std::uint8_t
{
    Smooth,      ///< issue-bound, no dominant loss component
    MemoryBound, ///< Memory dominates: stalls are wasted, don't stall
    SteerBound,  ///< SteerStall + Window dominate: stalling too much
    Imbalanced,  ///< LoadImbalance dominates or occupancy skews hard
    Contended,   ///< Contention dominates: protect critical chains
    NumPhases
};

inline constexpr std::size_t numAdaptivePhases =
    static_cast<std::size_t>(AdaptivePhase::NumPhases);

/** Lane / JSON name of a phase class ("smooth", "memory", ...). */
const char *adaptivePhaseName(AdaptivePhase p);

/** The live knob values the manager drives. */
struct AdaptiveKnobs
{
    /** Stall-over-steer LoC cutoff (UnifiedSteering). */
    double stallThreshold = 0.30;
    /** Lowest LoC level resolved above the non-critical mass
     *  (LocScheduling). */
    unsigned locLowCutoff = 2;
    /** Proactive-LB pressure gate, engaged at num/den occupancy. */
    unsigned pressureNum = 3;
    unsigned pressureDen = 4;

    double
    pressure() const
    {
        return static_cast<double>(pressureNum) / pressureDen;
    }

    bool
    operator==(const AdaptiveKnobs &o) const
    {
        return stallThreshold == o.stallThreshold &&
            locLowCutoff == o.locLowCutoff &&
            pressureNum == o.pressureNum &&
            pressureDen == o.pressureDen;
    }
    bool operator!=(const AdaptiveKnobs &o) const { return !(*this == o); }
};

/** Hysteresis tuning for the decision state machine. */
struct AdaptiveBrainOptions
{
    /** Consecutive intervals classifying into a new phase before the
     *  machine transitions (reaction latency). */
    unsigned reactionIntervals = 2;
    /** Intervals a phase must be held before the next transition. */
    unsigned minDwellIntervals = 3;
    /** Compare CPI across a transition and undo a knob change that
     *  made things worse. */
    bool revertOnRegression = true;
    /** Fractional CPI worsening that counts as a regression. */
    double regressionTolerance = 0.05;
};

/** One interval-close decision (stats, Chrome lane, JSON). */
struct AdaptiveDecision
{
    Cycle startCycle = 0;
    std::uint64_t cycles = 0;
    AdaptivePhase phase = AdaptivePhase::Smooth;
    AdaptiveKnobs knobs;
    bool transitioned = false;
    bool reverted = false;
};

/**
 * Aggregate of one (or, after merging, several) adaptive runs, carried
 * into the schema-v6 "adaptive" run block. Counters sum across merged
 * runs; final knob values are carried as sums so serialization can
 * report the mean. mergeCount == 0 means "no adaptive run" (the block
 * is omitted).
 */
struct AdaptiveSummary
{
    std::uint64_t mergeCount = 0;
    std::uint64_t intervals = 0;
    std::uint64_t transitions = 0;
    std::uint64_t reverts = 0;
    std::uint64_t phaseIntervals[numAdaptivePhases] = {};
    double stallThresholdSum = 0.0;
    double locLowCutoffSum = 0.0;
    double pressureSum = 0.0;

    bool present() const { return mergeCount > 0; }
    void merge(const AdaptiveSummary &other);
};

/**
 * The hysteresis state machine, separable from the observer plumbing
 * so its transition rules are unit-testable on hand-built interval
 * records. observe() consumes one closed interval and returns the
 * decision taken (phase after the interval, knobs now in force, and
 * whether this close transitioned or reverted).
 */
class AdaptiveBrain
{
  public:
    AdaptiveBrain(const AdaptiveBrainOptions &options,
                  const AdaptiveKnobs &initial);

    AdaptiveDecision observe(const IntervalRecord &rec,
                             unsigned windowPerCluster);

    AdaptivePhase phase() const { return phase_; }
    const AdaptiveKnobs &knobs() const { return knobs_; }
    /** Dwell (intervals) in the current phase so far. */
    unsigned dwell() const { return dwell_; }

    /** Classify one interval by its dominant CPI-stack component and
     *  occupancy imbalance (pure; exposed for tests). */
    static AdaptivePhase classify(const IntervalRecord &rec,
                                  unsigned windowPerCluster);

    /** Knob assignment for a phase class, derived from the defaults
     *  the machine was constructed with (pure; exposed for tests).
     *  critFraction is the interval's predicted-critical steer share,
     *  the predictor-saturation telemetry. */
    AdaptiveKnobs knobsFor(AdaptivePhase phase,
                           double critFraction) const;

  private:
    AdaptiveBrainOptions options_;
    AdaptiveKnobs defaults_;
    AdaptiveKnobs knobs_;
    AdaptivePhase phase_ = AdaptivePhase::Smooth;
    AdaptivePhase candidate_ = AdaptivePhase::Smooth;
    unsigned candidateStreak_ = 0;
    unsigned dwell_ = 0;
    /** Mean CPI of the completed intervals before the last
     *  transition, and the probe accumulators after it. */
    double cpiBefore_ = 0.0;
    bool probing_ = false;
    std::uint64_t probeCycles_ = 0;
    std::uint64_t probeCommits_ = 0;
    AdaptiveKnobs revertKnobs_;
    /** Phase whose knob assignment regressed; its knobs stay
     *  reverted until the machine leaves and re-enters it. */
    bool vetoActive_ = false;
    AdaptivePhase vetoPhase_ = AdaptivePhase::Smooth;
    std::uint64_t lastCycles_ = 0;
    std::uint64_t lastCommits_ = 0;
};

/** Construction options for the manager. */
struct AdaptiveManagerOptions
{
    /** Decision interval length in cycles. */
    std::uint64_t intervalCycles = 2000;
    AdaptiveBrainOptions brain;
};

/**
 * The interval-driven policy manager. Owns a private IntervalProfiler
 * (hook forwarding; its stats stay unregistered so it never collides
 * with a user-requested profiler on the same observer chain), feeds
 * each closed interval to the AdaptiveBrain, and applies the resulting
 * knobs through the retune setters. Any of steering / scheduling /
 * loc_pred may be null: the manager still classifies and exports its
 * stats, it just has fewer (or no) knobs to turn.
 */
class AdaptiveManager : public SimObserver
{
  public:
    AdaptiveManager(const MachineConfig &config, const Trace &trace,
                    const AdaptiveManagerOptions &options,
                    UnifiedSteering *steering,
                    LocScheduling *scheduling,
                    const LocPredictor *loc_pred);

    // SimObserver interface: every hook forwards to the internal
    // profiler; onCycleEnd / onRunEnd additionally react to closes.
    void onRunStart(const CoreView &view) override;
    void onSteer(const CoreView &view, InstId id) override;
    void onIssue(const CoreView &view, InstId id) override;
    void onIssueDenied(const CoreView &view, InstId id) override;
    void onCommit(const CoreView &view, InstId id) override;
    void onSteerStall(const CoreView &view,
                      SteerStallCause cause) override;
    void onFetchStall(const CoreView &view) override;
    void onCycleEnd(const CoreView &view) override;
    void onRunEnd(const CoreView &view) override;
    void registerStats(StatsRegistry &registry) override;

    const std::vector<AdaptiveDecision> &decisions() const
    {
        return decisions_;
    }

    /** Decision lane for the Chrome trace emitter. */
    std::vector<AdaptiveLanePoint> lanePoints() const;

    /** Run aggregate for the schema-v6 "adaptive" block. */
    AdaptiveSummary summary() const;

  private:
    /** Consume interval records the profiler closed since the last
     *  call and apply the brain's decisions. */
    void reactToCloses();
    void applyKnobs(const AdaptiveKnobs &knobs);

    IntervalProfiler profiler_;
    AdaptiveBrainOptions brainOptions_;
    AdaptiveKnobs initialKnobs_;
    AdaptiveBrain brain_;
    UnifiedSteering *steering_;
    LocScheduling *scheduling_;
    const LocPredictor *locPred_;
    std::size_t seen_ = 0;
    /** Intervals since the last transition (dwell histogram). */
    std::size_t sinceTransition_ = 0;
    std::vector<AdaptiveDecision> decisions_;

    Counter *statIntervals_ = nullptr;
    Counter *statTransitions_ = nullptr;
    Counter *statReverts_ = nullptr;
    Counter *statPhase_[numAdaptivePhases] = {};
    Histogram *statDwell_ = nullptr;
};

} // namespace csim

#endif // CSIM_POLICY_ADAPTIVE_MANAGER_HH
