/**
 * @file
 * Steering (cluster assignment) policies.
 *
 * ModNSteering and LoadBalanceSteering are simple baselines. The main
 * policy is UnifiedSteering: dependence-based steering [Kemp & Franklin]
 * optionally focused by the binary criticality predictor [Fields et al.]
 * and extended with the paper's three proposals — LoC snapshots for the
 * scheduler, stall-over-steer for execute-critical instructions, and
 * proactive load-balancing of not-most-critical consumers.
 */

#ifndef CSIM_POLICY_STEERING_HH
#define CSIM_POLICY_STEERING_HH

#include <vector>

#include "common/logging.hh"
#include "common/sat_counter.hh"
#include "core/policy.hh"
#include "obs/stats_registry.hh"
#include "predict/criticality_predictor.hh"
#include "predict/loc_predictor.hh"

namespace csim {

/** Round-robin steering (baseline). */
class ModNSteering : public SteeringPolicy
{
  public:
    void reset(const CoreView &view, std::size_t trace_size) override;
    SteerDecision steer(const CoreView &view,
                        const SteerRequest &req) override;
    const char *name() const override { return "modn"; }

  private:
    ClusterId next_ = 0;
};

/** Always pick the least-occupied cluster (baseline). */
class LoadBalanceSteering : public SteeringPolicy
{
  public:
    SteerDecision steer(const CoreView &view,
                        const SteerRequest &req) override;
    const char *name() const override { return "loadbal"; }
};

/** Configuration of the dependence-based / focused / paper policies. */
struct UnifiedSteeringOptions
{
    /**
     * Prefer the cluster of a predicted-critical producer (focused
     * steering). Requires critPred.
     */
    bool focusOnCritical = false;
    /** Stall steering instead of load-balancing when an instruction
     *  with LoC >= stallThreshold cannot join its producer. */
    bool stallOverSteer = false;
    double stallThreshold = 0.30;
    /** Push not-most-critical consumers away from their producers. */
    bool proactiveLB = false;
    /** Proactive-LB override: keep a consumer with LoC above this... */
    double overrideMinLoc = 0.05;
    /** ...and at least this fraction of its producer's LoC. */
    double overrideProducerFraction = 0.5;
    /** A consumer this likely to be critical is always kept with its
     *  producer, whatever the producer's own LoC. */
    double keepAbsoluteLoc = 0.30;
    /**
     * Proactive pushing engages only when the producer cluster's
     * window occupancy reaches pressureNum/pressureDen of capacity
     * (integer ratio: the gate stays exact at every window size).
     */
    unsigned pressureNum = 3;
    unsigned pressureDen = 4;
};

/**
 * Dependence-based steering with the paper's policy extensions.
 *
 * Placement logic per instruction, in priority order:
 *  1. No in-flight register producer: least-occupied cluster.
 *  2. Proactive LB (if enabled): consumers learned to be
 *     not-most-critical, or producers already followed once, are
 *     load-balanced unless the LoC override applies.
 *  3. Desired producer cluster has space: collocate.
 *  4. Desired cluster full: stall if stall-over-steer applies
 *     (LoC >= threshold), otherwise load-balance.
 *
 * The desired producer is the most recently dispatched in-flight
 * register producer; with focusOnCritical, predicted-critical producers
 * take precedence (Fields's focused steering).
 */
class UnifiedSteering : public SteeringPolicy
{
  public:
    /**
     * @param crit_pred Binary criticality predictor, or nullptr.
     * @param loc_pred LoC predictor, or nullptr (disables LoC-driven
     *        features and snapshots).
     */
    UnifiedSteering(const UnifiedSteeringOptions &options,
                    const CriticalityPredictor *crit_pred,
                    const LocPredictor *loc_pred);

    void reset(const CoreView &view, std::size_t trace_size) override;
    SteerDecision steer(const CoreView &view,
                        const SteerRequest &req) override;
    void registerStats(StatsRegistry &registry) override;
    void notifySteered(const CoreView &view, const SteerRequest &req,
                       const SteerDecision &decision) override;
    void notifyCommit(const CoreView &view, InstId id,
                      const TraceRecord &rec) override;
    const char *name() const override { return name_.c_str(); }

    // --- Live retune surface (adaptive manager) ----------------- //
    // Plain setters are thread-safe by construction: a sim runs on
    // exactly one thread and sweeps parallelize across whole runs,
    // so a knob is only ever written by the thread reading it.

    /** Retune the stall-over-steer LoC cutoff mid-run. */
    void
    setStallThreshold(double threshold)
    {
        options_.stallThreshold = threshold;
    }
    double stallThreshold() const { return options_.stallThreshold; }

    /** Retune the proactive-LB pressure gate to num/den occupancy. */
    void
    setProactivePressure(unsigned num, unsigned den)
    {
        CSIM_ASSERT(den > 0 && num <= den);
        options_.pressureNum = num;
        options_.pressureDen = den;
    }
    unsigned pressureNum() const { return options_.pressureNum; }
    unsigned pressureDen() const { return options_.pressureDen; }

  private:
    /** Least-occupied cluster that has a free window entry. */
    static ClusterId leastLoaded(const CoreView &view);

    UnifiedSteeringOptions options_;
    const CriticalityPredictor *critPred_;
    const LocPredictor *locPred_;
    std::string name_;

    /** Producer chosen by the most recent steer() (for notifySteered). */
    InstId pendingProducer_ = invalidInstId;

    // --- proactive load-balancing state ---
    /** Max LoC level seen among steered consumers of each dynamic
     *  value. */
    std::vector<std::uint8_t> maxConsumerLoc_;
    /** Dynamic producer already has a collocated consumer. */
    std::vector<bool> followed_;
    /** PC-indexed "this consumer is usually not the most critical one"
     *  hysteresis counters. */
    std::vector<SatCounter> lbCandidate_;
    /** PC-indexed stall-over-steer hysteresis: smooths the noisy
     *  per-steer LoC samples into a stable execute-critical class. */
    std::vector<SatCounter> stallClass_;

    static constexpr unsigned lbTableBits = 12;
    std::size_t lbIndex(Addr pc) const;

    // --- registered stats (rebound per run; null until attached) ---
    /** Times the policy chose to stall rather than steer away. */
    Counter *statStallDecisions_ = nullptr;
    /** Proactive pushes vetoed by the sticky binary predictor. */
    Counter *statCritKeepVetoes_ = nullptr;
    /** Proactive pushes vetoed by the LoC override. */
    Counter *statLocKeepOverrides_ = nullptr;
};

} // namespace csim

#endif // CSIM_POLICY_STEERING_HH
