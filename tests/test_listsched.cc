/**
 * @file
 * Tests for region splitting and the idealized list scheduler:
 * legality lower bounds, resource limits, locality behaviour and the
 * relationship to the real machine.
 */

#include <gtest/gtest.h>

#include "core/timing_sim.hh"
#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "critpath/attribution.hh"
#include "listsched/list_scheduler.hh"
#include "mem/latency_annotator.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

const auto r = Program::r;

Trace
prepare(const Program &p)
{
    Emulator emu(p);
    Trace t = emu.run(100000);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    return t;
}

SimResult
refRun(const Trace &t)
{
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    return TimingSim(MachineConfig::monolithic(), t, steer, age).run();
}

TEST(Regions, SplitAtMispredictsAndCap)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 100);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    // Force a mispredict at instruction 22 (a bne: the trace is lui
    // followed by addi/bne pairs).
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i].mispredicted = false;
    t[22].mispredicted = true;
    ASSERT_TRUE(t[22].isCondBranch);

    std::vector<Region> regions = splitRegions(t, 64);
    // Coverage: disjoint, ordered, complete.
    std::uint64_t expect_begin = 0;
    for (const Region &reg : regions) {
        EXPECT_EQ(reg.begin, expect_begin);
        EXPECT_GT(reg.end, reg.begin);
        EXPECT_LE(reg.end - reg.begin, 64u);
        expect_begin = reg.end;
    }
    EXPECT_EQ(expect_begin, t.size());
    // First region ends right after the mispredicted branch.
    EXPECT_EQ(regions[0].end, 23u);
    EXPECT_TRUE(regions[0].endsWithMispredict);
}

TEST(Regions, CapOnly)
{
    Program p;
    for (int i = 0; i < 100; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    std::vector<Region> regions = splitRegions(t, 32);
    EXPECT_EQ(regions.size(), (t.size() + 31) / 32);
    for (std::size_t i = 0; i + 1 < regions.size(); ++i)
        EXPECT_FALSE(regions[i].endsWithMispredict);
}

TEST(ListSched, SerialChainBoundedByDataflow)
{
    Program p;
    for (int i = 0; i < 256; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult ref = refRun(t);

    ListSchedResult res = listSchedule(
        t, ref.timing, MachineConfig::monolithic());
    // A 256-deep chain of 1-cycle ops cannot beat 256 cycles.
    EXPECT_GE(res.cycles, 256u);
    // And the ideal schedule is not worse than the real machine.
    EXPECT_LE(res.cycles, ref.cycles + 8);
}

TEST(ListSched, ThroughputBoundRespected)
{
    Program p;
    for (int i = 0; i < 64; ++i)
        for (int j = 1; j <= 8; ++j)
            p.addi(r(j), r(j), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult ref = refRun(t);

    ListSchedResult res = listSchedule(
        t, ref.timing, MachineConfig::monolithic());
    // 512 instructions on an 8-wide machine need >= 64 cycles.
    EXPECT_GE(res.cycles, 64u);
}

TEST(ListSched, KeepsChainLocalOnClusters)
{
    Program p;
    for (int i = 0; i < 200; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult ref = refRun(t);

    ListSchedResult mono = listSchedule(
        t, ref.timing, MachineConfig::monolithic());
    ListSchedResult clus = listSchedule(
        t, ref.timing, MachineConfig::clustered(8));
    // The ideal scheduler collocates the chain: almost no penalty
    // and no global traffic along the chain.
    EXPECT_LE(clus.cycles, mono.cycles + 16);
    EXPECT_LE(clus.globalValues, 10u);
}

TEST(ListSched, ClusteredNeverBeatsMonolithicIdeal)
{
    for (const char *wl : {"vpr", "gzip", "vortex"}) {
        SCOPED_TRACE(wl);
        WorkloadConfig wcfg;
        wcfg.targetInstructions = 8000;
        wcfg.seed = 4;
        Trace t = buildAnnotatedTrace(wl, wcfg);
        SimResult ref = refRun(t);

        ListSchedResult mono = listSchedule(
            t, ref.timing, MachineConfig::monolithic());
        for (unsigned n : {2u, 4u, 8u}) {
            SCOPED_TRACE(n);
            ListSchedResult clus = listSchedule(
                t, ref.timing, MachineConfig::clustered(n));
            EXPECT_GE(clus.cycles + 2, mono.cycles);
        }
    }
}

TEST(ListSched, IdealNotSlowerThanMachine)
{
    // The whole point of Sec. 2.2: schedules exist that rival the
    // monolithic machine. Allow a little slack for the conservative
    // region-split accounting.
    for (const char *wl : {"gcc", "perl"}) {
        SCOPED_TRACE(wl);
        WorkloadConfig wcfg;
        wcfg.targetInstructions = 10000;
        wcfg.seed = 6;
        Trace t = buildAnnotatedTrace(wl, wcfg);
        SimResult ref = refRun(t);
        ListSchedResult ideal = listSchedule(
            t, ref.timing, MachineConfig::clustered(4));
        EXPECT_LT(ideal.cycles,
                  static_cast<Cycle>(1.10 *
                                     static_cast<double>(ref.cycles)));
    }
}

TEST(ListSched, MispredictRedirectSerializesRegions)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 50);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    // All iterations mispredict: every 2-instruction region pays the
    // redirect.
    for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i].isCondBranch)
            t[i].mispredicted = true;
    SimResult ref = refRun(t);

    ListSchedResult res = listSchedule(
        t, ref.timing, MachineConfig::monolithic());
    const MachineConfig mc = MachineConfig::monolithic();
    // 50 regions x (redirect + refill) is the floor.
    EXPECT_GE(res.cycles, 50u * (mc.frontendDepth + 1));
}

TEST(ListSched, EmptyTrace)
{
    Trace t;
    std::vector<InstTiming> timing;
    ListSchedResult res = listSchedule(
        t, timing, MachineConfig::monolithic());
    EXPECT_EQ(res.cycles, 0u);
    EXPECT_EQ(res.instructions, 0u);
}

TEST(ListSched, PriorityVariantsRunAndOrderSanely)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 8000;
    wcfg.seed = 9;
    Trace t = buildAnnotatedTrace("gzip", wcfg);
    SimResult ref = refRun(t);

    CriticalityPredictor crit;
    LocPredictor loc;
    OnlineCriticalityTrainer trainer(t, &crit, &loc, 2048);
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    TimingSim train(MachineConfig::monolithic(), t, steer, age,
                    &trainer);
    (void)train.run();

    ListSchedOptions oracle;
    ListSchedOptions with_loc;
    with_loc.priority = ListSchedOptions::Priority::Loc;
    with_loc.locPred = &loc;
    ListSchedOptions binary;
    binary.priority = ListSchedOptions::Priority::BinaryCritical;
    binary.critPred = &crit;

    MachineConfig mc = MachineConfig::clustered(8);
    const Cycle c_oracle =
        listSchedule(t, ref.timing, mc, oracle).cycles;
    const Cycle c_loc =
        listSchedule(t, ref.timing, mc, with_loc).cycles;
    const Cycle c_bin =
        listSchedule(t, ref.timing, mc, binary).cycles;

    // Degrading priority knowledge cannot make things much better
    // than the oracle (tolerance for tie-break luck).
    EXPECT_GE(static_cast<double>(c_loc),
              0.98 * static_cast<double>(c_oracle));
    EXPECT_GE(static_cast<double>(c_bin),
              0.98 * static_cast<double>(c_oracle));
}

} // anonymous namespace
} // namespace csim
