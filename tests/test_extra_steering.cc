/**
 * @file
 * Tests for the literature-baseline steering policies: block steering
 * and adaptive active-cluster steering.
 */

#include <gtest/gtest.h>

#include "core/timing_sim.hh"
#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "policy/extra_steering.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "sim_checks.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

const auto r = Program::r;

Trace
prepare(const Program &p)
{
    Emulator emu(p);
    Trace t = emu.run(100000);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    return t;
}

TEST(BlockSteering, KeepsBasicBlocksTogether)
{
    // Three blocks separated by branches.
    Program p;
    Label l1 = p.newLabel();
    Label l2 = p.newLabel();
    for (int i = 0; i < 4; ++i)
        p.addi(r(1), r(1), 1);
    p.beq(r(31), l1);           // always taken (r31 == 0)
    p.bind(l1);
    for (int i = 0; i < 4; ++i)
        p.addi(r(2), r(2), 1);
    p.beq(r(31), l2);
    p.bind(l2);
    for (int i = 0; i < 4; ++i)
        p.addi(r(3), r(3), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    BlockSteering block;
    AgeScheduling age;
    MachineConfig mc = MachineConfig::clustered(4);
    SimResult res = TimingSim(mc, t, block, age).run();
    validateTiming(t, res, mc);

    // Instructions within each block share a cluster...
    for (int base : {0, 5, 10}) {
        for (int i = 1; i < 4; ++i) {
            EXPECT_EQ(res.timing[base + i].cluster,
                      res.timing[base].cluster);
        }
    }
    // ...and consecutive blocks rotate.
    EXPECT_NE(res.timing[0].cluster, res.timing[5].cluster);
}

TEST(BlockSteering, ValidOnRealWorkloads)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 6000;
    cfg.seed = 2;
    for (const char *wl : {"vpr", "perl"}) {
        SCOPED_TRACE(wl);
        Trace t = buildAnnotatedTrace(wl, cfg);
        BlockSteering block;
        AgeScheduling age;
        MachineConfig mc = MachineConfig::clustered(8);
        SimResult res = TimingSim(mc, t, block, age).run();
        validateTiming(t, res, mc);
    }
}

TEST(AdaptiveSteering, ValidAndTerminates)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 12000;
    cfg.seed = 3;
    Trace t = buildAnnotatedTrace("gzip", cfg);

    AdaptiveClusterSteering adaptive(1024, 4);
    AgeScheduling age;
    MachineConfig mc = MachineConfig::clustered(8);
    SimResult res = TimingSim(mc, t, adaptive, age).run();
    validateTiming(t, res, mc);
}

TEST(AdaptiveSteering, SerialCodeDoesNotSpreadAcrossAllClusters)
{
    // A pure dependence chain: the adaptive policy should learn that
    // one active cluster is as good as eight — and collocating the
    // chain avoids the forwarding that fixed load-balancing incurs.
    Program p;
    for (int i = 0; i < 6000; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    AdaptiveClusterSteering adaptive(512, 8);
    AgeScheduling age;
    MachineConfig mc = MachineConfig::clustered(8);
    SimResult adaptive_res = TimingSim(mc, t, adaptive, age).run();

    ModNSteering modn;
    SimResult modn_res = TimingSim(mc, t, modn, age).run();

    // Mod-N alternates every link across clusters (2 extra cycles per
    // link); the adaptive policy should do far better.
    EXPECT_LT(adaptive_res.cycles, modn_res.cycles * 2 / 3);
    // And it should approach the dataflow bound (~1 cycle per link).
    EXPECT_LT(adaptive_res.cpi(), 1.5);
}

TEST(AdaptiveSteering, ExposesActiveClusterCount)
{
    AdaptiveClusterSteering adaptive(1024, 4);
    EXPECT_GE(adaptive.activeClusters(), 1u);
}

} // anonymous namespace
} // namespace csim
