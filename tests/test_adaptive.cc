/**
 * @file
 * Adaptive-manager tests: phase classification on hand-built interval
 * records, the hysteresis machine's reaction latency / minimum dwell /
 * revert-on-regression rules, the live retune surface on the policy
 * objects, end-to-end manager runs (stats registration, summary and
 * lane export, composition with --profile), byte-identical adaptive
 * sweep results across 1 and 4 worker threads, and the schema-v6 /
 * Chrome-trace serialization of adaptive runs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/timing_sim.hh"
#include "harness/json_report.hh"
#include "harness/sweep.hh"
#include "obs/chrome_trace.hh"
#include "obs/interval_profiler.hh"
#include "policy/adaptive_manager.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"

namespace csim {
namespace {

/** An interval whose loss cycles sit entirely in one component. */
IntervalRecord
intervalOf(CpiComponent dominant, std::uint64_t cycles = 1000,
           std::uint64_t commits = 500)
{
    IntervalRecord rec;
    rec.cycles = cycles;
    rec.components[static_cast<std::size_t>(dominant)] = cycles;
    rec.commits = commits;
    rec.steers = commits;
    rec.clusters.resize(2);
    return rec;
}

AdaptiveBrainOptions
fastBrain()
{
    AdaptiveBrainOptions opt;
    opt.reactionIntervals = 2;
    opt.minDwellIntervals = 3;
    opt.revertOnRegression = true;
    opt.regressionTolerance = 0.05;
    return opt;
}

// ----------------------------------------------------------------- //
// Classification

TEST(AdaptiveBrain, ClassifiesByDominantComponent)
{
    EXPECT_EQ(AdaptiveBrain::classify(intervalOf(CpiComponent::Memory),
                                      64),
              AdaptivePhase::MemoryBound);
    EXPECT_EQ(
        AdaptiveBrain::classify(intervalOf(CpiComponent::SteerStall),
                                64),
        AdaptivePhase::SteerBound);
    EXPECT_EQ(AdaptiveBrain::classify(intervalOf(CpiComponent::Window),
                                      64),
              AdaptivePhase::SteerBound);
    EXPECT_EQ(AdaptiveBrain::classify(
                  intervalOf(CpiComponent::LoadImbalance), 64),
              AdaptivePhase::Imbalanced);
    EXPECT_EQ(
        AdaptiveBrain::classify(intervalOf(CpiComponent::Contention),
                                64),
        AdaptivePhase::Contended);
    // Issue-bound intervals and empty records classify Smooth.
    EXPECT_EQ(AdaptiveBrain::classify(intervalOf(CpiComponent::Base),
                                      64),
              AdaptivePhase::Smooth);
    EXPECT_EQ(AdaptiveBrain::classify(IntervalRecord{}, 64),
              AdaptivePhase::Smooth);
}

TEST(AdaptiveBrain, QuarterShareNeededForDominance)
{
    // 24% memory, rest productive: below the quarter gate -> Smooth.
    IntervalRecord rec = intervalOf(CpiComponent::Base, 1000);
    auto &base =
        rec.components[static_cast<std::size_t>(CpiComponent::Base)];
    auto &mem =
        rec.components[static_cast<std::size_t>(CpiComponent::Memory)];
    base = 760;
    mem = 240;
    EXPECT_EQ(AdaptiveBrain::classify(rec, 64), AdaptivePhase::Smooth);
    // 26%: dominant.
    base = 740;
    mem = 260;
    EXPECT_EQ(AdaptiveBrain::classify(rec, 64),
              AdaptivePhase::MemoryBound);
}

TEST(AdaptiveBrain, OccupancySkewPromotesToImbalanced)
{
    // All cycles productive, but one cluster's window averages 60/64
    // entries while the other sits nearly empty: more than half a
    // window of skew promotes the interval before denial cycles ever
    // reach the stack.
    IntervalRecord rec = intervalOf(CpiComponent::Base, 1000);
    rec.clusters[0].occupancySum = 60 * 1000;
    rec.clusters[1].occupancySum = 2 * 1000;
    EXPECT_EQ(AdaptiveBrain::classify(rec, 64),
              AdaptivePhase::Imbalanced);
    // Mild skew stays Smooth.
    rec.clusters[0].occupancySum = 20 * 1000;
    rec.clusters[1].occupancySum = 12 * 1000;
    EXPECT_EQ(AdaptiveBrain::classify(rec, 64), AdaptivePhase::Smooth);
}

TEST(AdaptiveBrain, KnobAssignmentsPerPhase)
{
    const AdaptiveKnobs defaults;
    AdaptiveBrain brain(fastBrain(), defaults);

    EXPECT_EQ(brain.knobsFor(AdaptivePhase::Smooth, 0.0), defaults);

    const AdaptiveKnobs mem =
        brain.knobsFor(AdaptivePhase::MemoryBound, 0.0);
    EXPECT_GT(mem.stallThreshold, defaults.stallThreshold);
    EXPECT_LE(mem.stallThreshold, 1.0);

    const AdaptiveKnobs steer =
        brain.knobsFor(AdaptivePhase::SteerBound, 0.0);
    EXPECT_GT(steer.stallThreshold, defaults.stallThreshold);

    const AdaptiveKnobs imb =
        brain.knobsFor(AdaptivePhase::Imbalanced, 0.0);
    EXPECT_LT(imb.pressure(), defaults.pressure());

    const AdaptiveKnobs cont =
        brain.knobsFor(AdaptivePhase::Contended, 0.0);
    EXPECT_LT(cont.stallThreshold, defaults.stallThreshold);
    EXPECT_EQ(cont.locLowCutoff, 1u);
    EXPECT_GT(cont.pressure(), defaults.pressure());
    // Predictor saturation (most steers predicted critical) keeps the
    // cutoff at 2: full resolution would just reshuffle noise.
    EXPECT_EQ(brain.knobsFor(AdaptivePhase::Contended, 0.9).locLowCutoff,
              2u);
}

// ----------------------------------------------------------------- //
// Hysteresis

TEST(AdaptiveBrain, ReactionLatencyGatesTransitions)
{
    AdaptiveBrain brain(fastBrain(), AdaptiveKnobs{});
    const IntervalRecord smooth = intervalOf(CpiComponent::Base);
    const IntervalRecord memory = intervalOf(CpiComponent::Memory);

    // Warm the machine past the minimum dwell in Smooth.
    for (int i = 0; i < 3; ++i) {
        const AdaptiveDecision d = brain.observe(smooth, 64);
        EXPECT_EQ(d.phase, AdaptivePhase::Smooth);
        EXPECT_FALSE(d.transitioned);
    }

    // One memory interval is not enough (reactionIntervals = 2)...
    AdaptiveDecision d = brain.observe(memory, 64);
    EXPECT_EQ(d.phase, AdaptivePhase::Smooth);
    EXPECT_FALSE(d.transitioned);
    // ...the second consecutive one transitions and retunes.
    d = brain.observe(memory, 64);
    EXPECT_TRUE(d.transitioned);
    EXPECT_EQ(d.phase, AdaptivePhase::MemoryBound);
    EXPECT_GT(d.knobs.stallThreshold, AdaptiveKnobs{}.stallThreshold);
}

TEST(AdaptiveBrain, InterruptedStreakNeverFires)
{
    AdaptiveBrain brain(fastBrain(), AdaptiveKnobs{});
    const IntervalRecord smooth = intervalOf(CpiComponent::Base);
    const IntervalRecord memory = intervalOf(CpiComponent::Memory);
    for (int i = 0; i < 3; ++i)
        (void)brain.observe(smooth, 64);
    // memory, smooth, memory, smooth...: the candidate streak resets
    // every other interval, so the machine must hold Smooth.
    for (int i = 0; i < 6; ++i) {
        const AdaptiveDecision d =
            brain.observe(i % 2 ? smooth : memory, 64);
        EXPECT_EQ(d.phase, AdaptivePhase::Smooth) << "interval " << i;
        EXPECT_FALSE(d.transitioned);
    }
}

TEST(AdaptiveBrain, MinDwellHoldsEarlyTransitions)
{
    AdaptiveBrainOptions opt = fastBrain();
    opt.minDwellIntervals = 5;
    AdaptiveBrain brain(opt, AdaptiveKnobs{});
    const IntervalRecord memory = intervalOf(CpiComponent::Memory);

    // The candidate streak is satisfied after 2 intervals, but the
    // machine must dwell 5 intervals in Smooth first.
    for (int i = 0; i < 4; ++i) {
        const AdaptiveDecision d = brain.observe(memory, 64);
        EXPECT_FALSE(d.transitioned) << "interval " << i;
        EXPECT_EQ(d.phase, AdaptivePhase::Smooth);
    }
    const AdaptiveDecision d = brain.observe(memory, 64);
    EXPECT_TRUE(d.transitioned);
    EXPECT_EQ(d.phase, AdaptivePhase::MemoryBound);
}

TEST(AdaptiveBrain, RevertsKnobsOnCpiRegression)
{
    AdaptiveBrain brain(fastBrain(), AdaptiveKnobs{});
    // Healthy smooth intervals: CPI = 1000/500 = 2.0.
    for (int i = 0; i < 3; ++i)
        (void)brain.observe(intervalOf(CpiComponent::Base), 64);
    // Transition into MemoryBound.
    (void)brain.observe(intervalOf(CpiComponent::Memory), 64);
    const AdaptiveDecision t =
        brain.observe(intervalOf(CpiComponent::Memory), 64);
    ASSERT_TRUE(t.transitioned);
    EXPECT_NE(t.knobs, AdaptiveKnobs{});

    // The probe window (reactionIntervals = 2) shows CPI collapsing
    // to 1000/100 = 10.0, far beyond the 5% tolerance: the machine
    // must undo the knob change.
    (void)brain.observe(intervalOf(CpiComponent::Memory, 1000, 100),
                        64);
    const AdaptiveDecision r =
        brain.observe(intervalOf(CpiComponent::Memory, 1000, 100), 64);
    EXPECT_TRUE(r.reverted);
    EXPECT_EQ(r.knobs, AdaptiveKnobs{});
    // The phase classification itself stands; only the knobs revert.
    EXPECT_EQ(r.phase, AdaptivePhase::MemoryBound);
}

TEST(AdaptiveBrain, KeepsKnobsWhenProbeHoldsCpi)
{
    AdaptiveBrain brain(fastBrain(), AdaptiveKnobs{});
    for (int i = 0; i < 3; ++i)
        (void)brain.observe(intervalOf(CpiComponent::Base), 64);
    (void)brain.observe(intervalOf(CpiComponent::Memory), 64);
    const AdaptiveDecision t =
        brain.observe(intervalOf(CpiComponent::Memory), 64);
    ASSERT_TRUE(t.transitioned);

    // Probe CPI equals the pre-transition CPI: no revert.
    (void)brain.observe(intervalOf(CpiComponent::Memory), 64);
    const AdaptiveDecision ok =
        brain.observe(intervalOf(CpiComponent::Memory), 64);
    EXPECT_FALSE(ok.reverted);
    EXPECT_EQ(ok.knobs, t.knobs);
}

// ----------------------------------------------------------------- //
// Live retune surface

TEST(RetuneSurface, SteeringAndSchedulingSettersClamp)
{
    const UnifiedSteeringOptions opt;
    UnifiedSteering steering(opt, nullptr, nullptr);
    EXPECT_DOUBLE_EQ(steering.stallThreshold(), opt.stallThreshold);
    steering.setStallThreshold(0.55);
    EXPECT_DOUBLE_EQ(steering.stallThreshold(), 0.55);
    steering.setProactivePressure(1, 2);
    EXPECT_EQ(steering.pressureNum(), 1u);
    EXPECT_EQ(steering.pressureDen(), 2u);

    LocPredictor loc;
    LocScheduling sched(loc);
    const unsigned top = loc.levels() - 1;
    sched.setLowCutoff(4);
    EXPECT_EQ(sched.lowCutoff(), 4u);
    sched.setLowCutoff(0); // clamps to 1
    EXPECT_EQ(sched.lowCutoff(), 1u);
    sched.setLowCutoff(1000); // clamps to levels-1
    EXPECT_EQ(sched.lowCutoff(), top);
}

// ----------------------------------------------------------------- //
// End-to-end manager runs

Trace
buildSmallTrace(const std::string &workload, std::uint64_t seed,
                std::uint64_t instructions = 6000)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = instructions;
    wcfg.seed = seed;
    return buildAnnotatedTrace(workload, wcfg);
}

ExperimentConfig
adaptiveConfig(std::uint64_t interval_cycles = 500)
{
    ExperimentConfig cfg;
    cfg.instructions = 6000;
    cfg.seeds = {1, 2};
    cfg.adaptive.enabled = true;
    cfg.adaptive.intervalCycles = interval_cycles;
    return cfg;
}

TEST(AdaptiveManager, RunsAndExportsSummaryAndStats)
{
    const Trace trace = buildSmallTrace("mcf", 1);
    const MachineConfig machine = MachineConfig::clustered(4);

    ExperimentConfig cfg = adaptiveConfig();
    cfg.seeds = {1};
    PolicyRun run = runPolicy(trace, machine,
                              PolicyKind::FocusedLocStallProactive,
                              cfg);

    ASSERT_TRUE(run.adaptive.present());
    EXPECT_EQ(run.adaptive.mergeCount, 1u);
    EXPECT_GE(run.adaptive.intervals, 1u);
    std::uint64_t phase_sum = 0;
    for (std::size_t i = 0; i < numAdaptivePhases; ++i)
        phase_sum += run.adaptive.phaseIntervals[i];
    EXPECT_EQ(phase_sum, run.adaptive.intervals);
    EXPECT_EQ(run.adaptiveLane.size(), run.adaptive.intervals);

    // The manager's registry entries rode into the run stats.
    EXPECT_TRUE(run.sim.stats.has("adaptive.intervals"));
    EXPECT_TRUE(run.sim.stats.has("adaptive.transitions"));
    EXPECT_TRUE(run.sim.stats.has("adaptive.reverts"));
    EXPECT_TRUE(run.sim.stats.has("adaptive.phase.smooth"));
    EXPECT_TRUE(run.sim.stats.has("adaptive.knob.stallThreshold"));
    EXPECT_EQ(run.sim.stats.value("adaptive.intervals"),
              static_cast<double>(run.adaptive.intervals));

    // Back-to-back adaptive runs are deterministic: same trace, same
    // decisions, same cycle count.
    PolicyRun again = runPolicy(trace, machine,
                                PolicyKind::FocusedLocStallProactive,
                                cfg);
    EXPECT_EQ(run.sim.cycles, again.sim.cycles);
    ASSERT_EQ(run.adaptiveLane.size(), again.adaptiveLane.size());
    for (std::size_t i = 0; i < run.adaptiveLane.size(); ++i) {
        EXPECT_EQ(run.adaptiveLane[i].phase,
                  again.adaptiveLane[i].phase);
        EXPECT_EQ(run.adaptiveLane[i].stallThreshold,
                  again.adaptiveLane[i].stallThreshold);
    }
}

TEST(AdaptiveManager, ComposesWithProfilerWithoutStatCollision)
{
    const Trace trace = buildSmallTrace("gzip", 1);
    ExperimentConfig cfg = adaptiveConfig();
    cfg.seeds = {1};
    cfg.profile.enabled = true;
    cfg.profile.intervalCycles = 500;
    PolicyRun run = runPolicy(trace, MachineConfig::clustered(2),
                              PolicyKind::FocusedLocStall, cfg);

    // Both observers delivered: the user-requested profiler owns the
    // profiler.* namespace, the manager (whose internal profiler stays
    // unregistered) owns adaptive.*; a collision would have fataled
    // inside the registry before the run returned.
    EXPECT_FALSE(run.intervals.empty());
    EXPECT_TRUE(run.adaptive.present());
    EXPECT_TRUE(run.sim.stats.has("profiler.intervals"));
    EXPECT_TRUE(run.sim.stats.has("adaptive.intervals"));
}

TEST(AdaptiveManager, BaselinePolicyHasNoKnobsButStillClassifies)
{
    // ModN exposes no retune surface (stack.unified/locSched null):
    // the manager still watches, classifies and exports.
    const Trace trace = buildSmallTrace("gcc", 1, 4000);
    ExperimentConfig cfg = adaptiveConfig();
    cfg.seeds = {1};
    PolicyRun run = runPolicy(trace, MachineConfig::clustered(2),
                              PolicyKind::ModN, cfg);
    EXPECT_TRUE(run.adaptive.present());
    EXPECT_GE(run.adaptive.intervals, 1u);
}

// ----------------------------------------------------------------- //
// Sweep determinism: the acceptance criterion

TEST(AdaptiveSweep, ResultsIdenticalAcrossThreadCounts)
{
    SweepSpec spec;
    spec.cfg = adaptiveConfig();
    ExperimentConfig stat = spec.cfg;
    stat.adaptive.enabled = false;
    for (const char *wl : {"gzip", "mcf"}) {
        for (unsigned n : {2u, 4u}) {
            SweepCell adaptive;
            adaptive.workload = wl;
            adaptive.machine = MachineConfig::clustered(n);
            adaptive.policy = PolicyKind::FocusedLocStallProactive;
            adaptive.labelSuffix = "+adaptive";
            SweepCell fixed = adaptive;
            fixed.cfg = stat;
            fixed.labelSuffix = "";
            spec.add(std::move(adaptive));
            spec.add(std::move(fixed));
        }
    }

    TraceCache cache;
    const SweepOutcome one = SweepRunner(1, &cache).run(spec);
    const SweepOutcome four = SweepRunner(4, &cache).run(spec);
    ASSERT_EQ(one.results.size(), four.results.size());

    const auto fingerprint = [](const SweepOutcome &o) {
        std::ostringstream os;
        for (std::size_t i = 0; i < o.results.size(); ++i) {
            const AggregateResult &r = o.results[i];
            os << o.cells[i].label() << ":" << r.cycles << ":"
               << r.instructions << ":" << r.adaptive.intervals << ":"
               << r.adaptive.transitions << ":" << r.adaptive.reverts
               << ":" << r.adaptive.stallThresholdSum << "\n";
            for (const AdaptiveLanePoint &p : r.adaptiveLane)
                os << p.startCycle << "," << p.cycles << "," << p.phase
                   << "," << p.stallThreshold << "," << p.locLowCutoff
                   << "," << p.pressure << ";";
            os << "\n";
        }
        return os.str();
    };
    // Byte-identical aggregates + decision lanes at both thread counts.
    EXPECT_EQ(fingerprint(one), fingerprint(four));

    // The adaptive cell merged both seeds; its static sibling (same
    // triple, distinguished by the label suffix) carries no adaptive
    // block at all.
    EXPECT_EQ(one.cells[0].label().find("+adaptive") != std::string::npos,
              true);
    EXPECT_EQ(one.results[0].adaptive.mergeCount, 2u);
    EXPECT_FALSE(one.results[1].adaptive.present());
}

// ----------------------------------------------------------------- //
// Serialization: schema v6 + Chrome lane

TEST(JsonReport, SchemaV6AdaptiveRoundTrip)
{
    const Trace trace = buildSmallTrace("gzip", 1);
    ExperimentConfig cfg = adaptiveConfig();
    cfg.seeds = {1};
    PolicyRun run = runPolicy(trace, MachineConfig::clustered(2),
                              PolicyKind::FocusedLocStallProactive,
                              cfg);
    ASSERT_TRUE(run.adaptive.present());

    const std::string path = "test_adaptive_report.json";
    {
        const char *argv[] = {"bench", "--json", path.c_str(),
                              "--adaptive"};
        BenchContext ctx("test_adaptive_bench", 4,
                         const_cast<char **>(argv));
        EXPECT_TRUE(ctx.adaptiveRequested());
        ExperimentConfig applied;
        ctx.apply(applied);
        EXPECT_TRUE(applied.adaptive.enabled);
        ctx.addRunStats("gzip/2x4w/focused+loc+stall+proactive",
                        run.sim.stats, IntervalSeries{}, {},
                        run.adaptive, run.adaptiveLane);
        EXPECT_EQ(ctx.finish(), 0);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"schemaVersion\":7"), std::string::npos);
    EXPECT_NE(json.find("\"adaptive\":{"), std::string::npos);
    EXPECT_NE(json.find("\"transitions\":"), std::string::npos);
    EXPECT_NE(json.find("\"reverts\":"), std::string::npos);
    EXPECT_NE(json.find("\"phases\":{\"smooth\":"), std::string::npos);
    EXPECT_NE(json.find("\"finalKnobs\":{"), std::string::npos);
    EXPECT_NE(json.find("\"stallThreshold\":"), std::string::npos);
}

TEST(ChromeTrace, AdaptiveLaneEmission)
{
    std::vector<AdaptiveLanePoint> lane;
    AdaptiveLanePoint p;
    p.startCycle = 0;
    p.cycles = 500;
    p.phase = "smooth";
    p.stallThreshold = 0.30;
    p.locLowCutoff = 2;
    p.pressure = 0.75;
    lane.push_back(p);
    p.startCycle = 500;
    p.phase = "memory";
    p.stallThreshold = 0.50;
    p.transitioned = true;
    lane.push_back(p);

    std::vector<ChromeTraceRun> runs;
    runs.push_back(
        ChromeTraceRun{"gzip/2x4w/adaptive", IntervalSeries{}, lane});
    std::ostringstream os;
    writeChromeTrace(os, runs);
    const std::string json = os.str();

    // Lane metadata, per-interval phase slices, the knob counter
    // track, and the transition instant.
    EXPECT_NE(json.find("\"name\":\"adaptive\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"smooth\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"memory\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"adaptiveKnobs\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"transition\""), std::string::npos);
    EXPECT_NE(json.find("\"stallThreshold\":0.500"),
              std::string::npos);

    // Emission is a pure function of the lane.
    std::ostringstream again;
    writeChromeTrace(again, runs);
    EXPECT_EQ(json, again.str());
}

TEST(AdaptiveSummary, MergeSumsEverything)
{
    AdaptiveSummary a;
    a.mergeCount = 1;
    a.intervals = 10;
    a.transitions = 2;
    a.reverts = 1;
    a.phaseIntervals[0] = 8;
    a.phaseIntervals[1] = 2;
    a.stallThresholdSum = 0.30;
    a.locLowCutoffSum = 2.0;
    a.pressureSum = 0.75;
    AdaptiveSummary b = a;
    b.intervals = 12;

    a.merge(b);
    EXPECT_EQ(a.mergeCount, 2u);
    EXPECT_EQ(a.intervals, 22u);
    EXPECT_EQ(a.transitions, 4u);
    EXPECT_EQ(a.reverts, 2u);
    EXPECT_EQ(a.phaseIntervals[0], 16u);
    EXPECT_DOUBLE_EQ(a.stallThresholdSum, 0.60);

    // Merging a non-adaptive (default) summary changes nothing: the
    // static seeds of a mixed merge don't dilute the means.
    const AdaptiveSummary empty;
    EXPECT_FALSE(empty.present());
    a.merge(empty);
    EXPECT_EQ(a.mergeCount, 2u);
    EXPECT_EQ(a.intervals, 22u);
}

} // namespace
} // namespace csim
