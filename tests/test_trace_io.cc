/**
 * @file
 * Tests for binary trace serialization: round-trip fidelity and
 * corruption handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/timing_sim.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "trace/trace_io.hh"
#include "trace/trace_soa.hh"
#include "trace/trace_store.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/csim_" + tag +
        ".trc";
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 4000;
    cfg.seed = 5;
    Trace original = buildAnnotatedTrace("bzip2", cfg);

    const std::string path = tempPath("roundtrip");
    ASSERT_TRUE(saveTrace(original, path));

    Trace loaded;
    ASSERT_EQ(loadTrace(loaded, path), TraceIoStatus::Ok);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        SCOPED_TRACE(i);
        const TraceRecord &a = original[i];
        const TraceRecord &b = loaded[i];
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.op, b.op);
        ASSERT_EQ(a.cls, b.cls);
        ASSERT_EQ(a.dest, b.dest);
        ASSERT_EQ(a.src1, b.src1);
        ASSERT_EQ(a.src2, b.src2);
        ASSERT_EQ(a.memAddr, b.memAddr);
        ASSERT_EQ(a.execLat, b.execLat);
        ASSERT_EQ(a.prod, b.prod);
        ASSERT_EQ(a.isBranch, b.isBranch);
        ASSERT_EQ(a.isCondBranch, b.isCondBranch);
        ASSERT_EQ(a.taken, b.taken);
        ASSERT_EQ(a.mispredicted, b.mispredicted);
        ASSERT_EQ(a.l1Miss, b.l1Miss);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    Trace empty;
    const std::string path = tempPath("empty");
    ASSERT_TRUE(saveTrace(empty, path));
    Trace loaded;
    // Pre-populate to check it is replaced.
    loaded.append(TraceRecord{});
    ASSERT_EQ(loadTrace(loaded, path), TraceIoStatus::Ok);
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFile)
{
    Trace t;
    EXPECT_EQ(loadTrace(t, "/nonexistent/dir/x.trc"),
              TraceIoStatus::CannotOpen);
}

TEST(TraceIo, BadMagicRejected)
{
    const std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace file at all", f);
    std::fclose(f);

    Trace t;
    t.append(TraceRecord{});
    EXPECT_EQ(loadTrace(t, path), TraceIoStatus::BadMagic);
    EXPECT_EQ(t.size(), 1u);  // untouched on failure
    std::remove(path.c_str());
}

TEST(TraceIo, TruncationDetected)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 100;
    cfg.seed = 1;
    Trace original = buildAnnotatedTrace("vpr", cfg);
    const std::string path = tempPath("trunc");
    ASSERT_TRUE(saveTrace(original, path));

    // Chop off the tail.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);

    Trace t;
    EXPECT_EQ(loadTrace(t, path), TraceIoStatus::Truncated);
    std::remove(path.c_str());
}

TEST(TraceIo, StatusNames)
{
    EXPECT_STREQ(traceIoStatusName(TraceIoStatus::Ok), "ok");
    EXPECT_STREQ(traceIoStatusName(TraceIoStatus::BadVersion),
                 "bad version");
    EXPECT_STREQ(traceIoStatusName(TraceIoStatus::BadEndianness),
                 "bad endianness");
}

// --- Cross-format rejection: each loader must cleanly refuse the
// --- other format's files rather than misreading them.

TEST(TraceIoV2, V1FileRejectedAsBadVersion)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 100;
    cfg.seed = 1;
    Trace original = buildAnnotatedTrace("vpr", cfg);
    const std::string path = tempPath("v1tov2");
    ASSERT_TRUE(saveTrace(original, path));

    // A v1 file handed to the v2 loader shares the "csimtrc" prefix,
    // so the mismatch is reported as a version problem, not garbage.
    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::BadVersion);
    std::remove(path.c_str());
}

TEST(TraceIoV2, V2FileRejectedByV1Loader)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 100;
    cfg.seed = 1;
    Trace original = buildAnnotatedTrace("vpr", cfg);
    const std::string path = tempPath("v2tov1");
    ASSERT_TRUE(saveTraceStore(original, path));

    Trace t;
    EXPECT_EQ(loadTrace(t, path), TraceIoStatus::BadMagic);
    std::remove(path.c_str());
}

TEST(TraceIoV2, GarbageRejectedAsBadMagic)
{
    const std::string path = tempPath("v2badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 64; ++i)
        std::fputs("definitely not a columnar store ", f);
    std::fclose(f);

    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::BadMagic);
    std::remove(path.c_str());
}

TEST(TraceIoV2, MissingFile)
{
    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, "/nonexistent/dir/x.trc2"),
              TraceIoStatus::CannotOpen);
}

TEST(TraceIoV2, TruncationDetected)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 400;
    cfg.seed = 2;
    Trace original = buildAnnotatedTrace("vpr", cfg);
    const std::string path = tempPath("v2trunc");
    ASSERT_TRUE(saveTraceStore(original, path));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);

    // Chop mid-column: the header promises more data than the file
    // holds.
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::Truncated);

    // Chop mid-header too.
    ASSERT_EQ(truncate(path.c_str(), 16), 0);
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::Truncated);
    std::remove(path.c_str());
}

TEST(TraceIoV2, CompressedTruncationDetected)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 400;
    cfg.seed = 2;
    Trace original = buildAnnotatedTrace("vpr", cfg);
    const std::string path = tempPath("v2ztrunc");
    TraceStoreOptions opts;
    opts.compressWide = true;
    ASSERT_TRUE(saveTraceStore(original, path, opts));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);

    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::Truncated);
    std::remove(path.c_str());
}

TEST(TraceIo, LoadedTraceSimulatesIdentically)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 6000;
    cfg.seed = 8;
    Trace original = buildAnnotatedTrace("twolf", cfg);

    const std::string path = tempPath("simequal");
    ASSERT_TRUE(saveTrace(original, path));
    Trace loaded;
    ASSERT_EQ(loadTrace(loaded, path), TraceIoStatus::Ok);
    ASSERT_TRUE(loaded.wellFormed());

    UnifiedSteering s1(UnifiedSteeringOptions{}, nullptr, nullptr);
    UnifiedSteering s2(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    const MachineConfig mc = MachineConfig::clustered(4);
    SimResult a = TimingSim(mc, original, s1, age).run();
    SimResult b = TimingSim(mc, loaded, s2, age).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.globalValues, b.globalValues);
    std::remove(path.c_str());
}

TEST(TraceWellFormed, DetectsCorruptLinks)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 200;
    cfg.seed = 1;
    Trace t = buildAnnotatedTrace("vpr", cfg);
    ASSERT_TRUE(t.wellFormed());

    // Forward-pointing producer: malformed.
    t[10].prod[srcSlot1] = 150;
    EXPECT_FALSE(t.wellFormed());
}

TEST(TraceWellFormed, DetectsClassMismatchAndZeroLatency)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 100;
    cfg.seed = 1;
    Trace t = buildAnnotatedTrace("vpr", cfg);
    Trace t2 = t;
    t2[5].cls = t2[5].cls == OpClass::Load ? OpClass::IntAlu
                                           : OpClass::Load;
    EXPECT_FALSE(t2.wellFormed());

    Trace t3 = t;
    t3[5].execLat = 0;
    EXPECT_FALSE(t3.wellFormed());
}

} // anonymous namespace
} // namespace csim
