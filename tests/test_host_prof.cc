/**
 * @file
 * Host-side profiler tests: nested-scope tree shape and counters,
 * cross-thread merge determinism (1 vs 4 sweep worker threads must
 * render byte-identical canonical trees), the worker-pool path
 * adopter, the runtime disable gate, memory-sample monotonicity, and
 * the schema-v4 "host" blocks emitted through BenchContext.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/json_report.hh"
#include "harness/sweep.hh"
#include "obs/host_prof.hh"
#include "obs/stats_registry.hh"

namespace csim {
namespace {

/** Fresh profiler state; every test assumes a clean slate. */
class HostProfTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!HostProf::compiledIn())
            GTEST_SKIP() << "built with CSIM_ENABLE_HOST_PROF=OFF";
        HostProf::setEnabled(true);
        HostProf::reset();
    }

    void
    TearDown() override
    {
        HostProf::reset();
    }
};

SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.cfg.instructions = 2000;
    spec.cfg.seeds = {1, 2};
    spec.crossTiming({"gzip", "gcc"},
                     {MachineConfig::monolithic(),
                      MachineConfig::clustered(4)},
                     {PolicyKind::Focused});
    return spec;
}

TEST_F(HostProfTest, NestedScopesBuildATree)
{
    {
        HOST_PROF_SCOPE("outer");
        {
            HOST_PROF_SCOPE("inner");
            HOST_PROF_INSTRUCTIONS(100);
        }
        {
            HOST_PROF_SCOPE("inner");
            HOST_PROF_INSTRUCTIONS(50);
        }
        HOST_PROF_SCOPE("alpha"); // sibling of inner, sorts first
    }

    const HostProfNode root = HostProf::snapshot();
    EXPECT_EQ(root.name, "host");
    ASSERT_EQ(root.children.size(), 1u);

    const HostProfNode &outer = root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.calls, 1u);
    ASSERT_EQ(outer.children.size(), 2u);
    EXPECT_EQ(outer.children[0].name, "alpha"); // sorted by name
    EXPECT_EQ(outer.children[1].name, "inner");

    const HostProfNode &inner = outer.children[1];
    EXPECT_EQ(inner.calls, 2u); // same name re-entered, one node
    EXPECT_EQ(inner.instructions, 150u);
    EXPECT_TRUE(inner.children.empty());

    // Child spans nest inside the parent's span.
    EXPECT_GE(outer.ns, outer.childNs());
    EXPECT_EQ(root.ns, root.childNs());
    EXPECT_EQ(root.totalInstructions(), 150u);
    EXPECT_EQ(outer.find("inner"), &inner);
    EXPECT_EQ(outer.find("nope"), nullptr);
}

TEST_F(HostProfTest, CanonicalRenderingListsPaths)
{
    {
        HOST_PROF_SCOPE("a");
        HOST_PROF_SCOPE("b");
        HOST_PROF_INSTRUCTIONS(7);
    }
    const std::string canon = hostProfCanonical(HostProf::snapshot());
    EXPECT_EQ(canon,
              "host calls=0 instructions=0\n"
              "host/a calls=1 instructions=0\n"
              "host/a/b calls=1 instructions=7\n");
}

TEST_F(HostProfTest, WorkerThreadsMergeUnderAdoptedPath)
{
    std::vector<std::string> path;
    {
        HOST_PROF_SCOPE("spawn");
        path = HostProf::currentPath();
        ASSERT_EQ(path, std::vector<std::string>{"spawn"});

        std::thread worker([&path] {
            HostProfPathAdopter adopt(path);
            HOST_PROF_SCOPE("job");
            HOST_PROF_INSTRUCTIONS(42);
        });
        worker.join();
    }

    const HostProfNode root = HostProf::snapshot();
    const HostProfNode *spawn = root.find("spawn");
    ASSERT_NE(spawn, nullptr);
    // The worker's scope landed under the spawning thread's path even
    // though it ran on another thread's private tree.
    const HostProfNode *job = spawn->find("job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->calls, 1u);
    EXPECT_EQ(job->instructions, 42u);
    // Adopted nodes are structural on the worker: the spawning
    // thread's own call is the only one recorded.
    EXPECT_EQ(spawn->calls, 1u);
    // Concurrent children can exceed the parent's span; the merged
    // tree must still satisfy the child-sum invariant by lifting.
    EXPECT_GE(spawn->ns, spawn->childNs());
}

TEST_F(HostProfTest, TimerTreeIdenticalAcrossSweepThreadCounts)
{
    const SweepSpec spec = tinySpec();

    SweepRunner one(1);
    (void)one.run(spec);
    const std::string canon_one =
        hostProfCanonical(HostProf::snapshot());

    HostProf::reset();
    SweepRunner four(4);
    (void)four.run(spec);
    const std::string canon_four =
        hostProfCanonical(HostProf::snapshot());

    // The acceptance criterion: identical duration-free trees — same
    // scopes, same call counts, same attributed instructions —
    // regardless of worker count.
    EXPECT_EQ(canon_one, canon_four);
    EXPECT_NE(canon_one.find("sweep.run/sweep.jobs/sim.run"),
              std::string::npos);
    EXPECT_NE(canon_one.find("traceCache.build/trace.build"),
              std::string::npos);
}

TEST_F(HostProfTest, ChildSumInvariantHoldsEverywhereAfterSweep)
{
    SweepRunner four(4);
    (void)four.run(tinySpec());
    const HostProfNode root = HostProf::snapshot();

    std::vector<const HostProfNode *> stack{&root};
    std::size_t visited = 0;
    while (!stack.empty()) {
        const HostProfNode *n = stack.back();
        stack.pop_back();
        ++visited;
        EXPECT_GE(n->ns, n->childNs()) << "at scope " << n->name;
        for (const HostProfNode &c : n->children)
            stack.push_back(&c);
    }
    EXPECT_GT(visited, 5u);
}

TEST_F(HostProfTest, RuntimeDisableRecordsNothing)
{
    HostProf::setEnabled(false);
    {
        HOST_PROF_SCOPE("invisible");
        HOST_PROF_INSTRUCTIONS(1000);
        EXPECT_TRUE(HostProf::currentPath().empty());
    }
    HostProf::setEnabled(true);

    const HostProfNode root = HostProf::snapshot();
    EXPECT_TRUE(root.children.empty());
    EXPECT_EQ(root.totalInstructions(), 0u);
}

TEST_F(HostProfTest, ResetDropsAccumulatedTime)
{
    {
        HOST_PROF_SCOPE("gone");
    }
    HostProf::reset();
    EXPECT_TRUE(HostProf::snapshot().children.empty());
}

TEST(HostMemory, PeakRssIsMonotoneAndHighWaterSticks)
{
    const HostMemoryStats before = sampleHostMemory();
    EXPECT_GT(before.peakRssBytes, 0u);

    // Touch a real allocation so the sample has something to see.
    std::vector<char> block(8 * 1024 * 1024, 1);
    const HostMemoryStats during = sampleHostMemory();

    EXPECT_GE(during.peakRssBytes, before.peakRssBytes);
    EXPECT_GE(during.heapHighWaterBytes, during.heapBytes);
    EXPECT_GE(during.heapHighWaterBytes, before.heapHighWaterBytes);

    block.clear();
    block.shrink_to_fit();
    const HostMemoryStats after = sampleHostMemory();
    // Peak RSS never decreases; the heap high-water survives frees.
    EXPECT_GE(after.peakRssBytes, during.peakRssBytes);
    EXPECT_GE(after.heapHighWaterBytes, during.heapHighWaterBytes);
}

TEST(HostProfJson, SchemaV5RoundTripCarriesHostBlocks)
{
    if (!HostProf::compiledIn())
        GTEST_SKIP() << "built with CSIM_ENABLE_HOST_PROF=OFF";
    HostProf::setEnabled(true);
    HostProf::reset();
    {
        HOST_PROF_SCOPE("sim.run");
        HOST_PROF_INSTRUCTIONS(5000);
    }

    StatsRegistry reg;
    reg.addCounter("sim.cycles").inc(10);

    const std::string path = "test_host_prof_report.json";
    {
        const char *argv[] = {"bench", "--json", path.c_str()};
        BenchContext ctx("test_host_prof_bench", 3,
                         const_cast<char **>(argv));
        ctx.addRunStats("cell", reg.snapshot());
        RunHostMetrics host;
        host.wallSeconds = 0.25;
        host.instructions = 5000;
        host.peakRssBytes = 1 << 20;
        ctx.addRunHost("cell", host);
        EXPECT_EQ(ctx.finish(), 0);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"schemaVersion\":7"), std::string::npos);
    // Per-run host block with the derived MIPS (5000 insts / 0.25 s
    // = 0.02 MIPS).
    EXPECT_NE(json.find("\"host\":{\"wallSeconds\":0.25,"
                        "\"instructions\":5000,\"hostMips\":0.02,"
                        "\"peakRssBytes\":1048576}"),
              std::string::npos);
    // Process-wide host block with the timer tree.
    EXPECT_NE(json.find("\"timerTree\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"sim.run\""), std::string::npos);
    EXPECT_NE(json.find("\"heapHighWaterBytes\""), std::string::npos);
    HostProf::reset();
}

TEST(HostProfJson, DisabledProfilerOmitsTopLevelHostBlock)
{
    HostProf::setEnabled(false);

    const std::string path = "test_host_prof_disabled.json";
    {
        const char *argv[] = {"bench", "--json", path.c_str()};
        BenchContext ctx("test_host_prof_bench", 3,
                         const_cast<char **>(argv));
        EXPECT_EQ(ctx.finish(), 0);
    }
    HostProf::setEnabled(true);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    EXPECT_EQ(json.find("\"timerTree\""), std::string::npos);
    EXPECT_EQ(json.find("\"host\""), std::string::npos);
}

TEST(HostProfJsonDeathTest, UnknownRunLabelIsFatal)
{
    const char *argv[] = {"bench"};
    BenchContext ctx("bench", 1, const_cast<char **>(argv));
    RunHostMetrics host;
    host.wallSeconds = 1.0;
    EXPECT_DEATH(ctx.addRunHost("no-such-run", host), "no-such-run");
}

} // anonymous namespace
} // namespace csim
