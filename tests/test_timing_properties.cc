/**
 * @file
 * Property suite: every machine invariant must hold for every
 * (workload, configuration, policy) combination. This is the broad
 * net that catches scheduling, port and forwarding bugs.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/experiment.hh"
#include "sim_checks.hh"

namespace csim {
namespace {

using Combo = std::tuple<std::string, unsigned, PolicyKind>;

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    const std::string &wl = std::get<0>(info.param);
    const unsigned n = std::get<1>(info.param);
    std::string policy;
    switch (std::get<2>(info.param)) {
      case PolicyKind::Dep:
        policy = "dep";
        break;
      case PolicyKind::Focused:
        policy = "focused";
        break;
      default:
        policy = "full";
        break;
    }
    return wl + "_" + std::to_string(n) + "c_" + policy;
}

class SimInvariants : public ::testing::TestWithParam<Combo>
{};

TEST_P(SimInvariants, AllMachineInvariantsHold)
{
    const std::string workload = std::get<0>(GetParam());
    const unsigned clusters = std::get<1>(GetParam());
    const PolicyKind policy = std::get<2>(GetParam());

    WorkloadConfig wcfg;
    wcfg.targetInstructions = 8000;
    wcfg.seed = 7;
    Trace trace = buildAnnotatedTrace(workload, wcfg);

    const MachineConfig mc = clusters == 1
        ? MachineConfig::monolithic()
        : MachineConfig::clustered(clusters);

    ExperimentConfig cfg;
    cfg.warmupRuns = 1;
    PolicyRun run = runPolicy(trace, mc, policy, cfg);
    validateTiming(trace, run.sim, mc);

    // The critical-path walk must account for the entire runtime.
    EXPECT_EQ(run.breakdown.total(), run.sim.timing.back().commit);

    // A monolithic machine never pays forwarding delay.
    if (clusters == 1) {
        EXPECT_EQ(run.breakdown[CpCategory::FwdDelay], 0u);
        EXPECT_EQ(run.sim.globalValues, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariants,
    ::testing::Combine(
        ::testing::Values(std::string("vpr"), std::string("gzip"),
                          std::string("mcf"), std::string("vortex"),
                          std::string("gcc"), std::string("bzip2")),
        ::testing::Values(1u, 2u, 4u, 8u),
        ::testing::Values(PolicyKind::Dep, PolicyKind::Focused,
                          PolicyKind::FocusedLocStallProactive)),
    comboName);

using WlClusters = std::tuple<std::string, unsigned>;

std::string
wlClustersName(const ::testing::TestParamInfo<WlClusters> &info)
{
    return std::get<0>(info.param) + "_" +
        std::to_string(std::get<1>(info.param)) + "c";
}

class BaselinePolicies : public ::testing::TestWithParam<WlClusters>
{};

TEST_P(BaselinePolicies, ModNAndLoadBalanceAreValid)
{
    const std::string workload = std::get<0>(GetParam());
    const unsigned clusters = std::get<1>(GetParam());
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 6000;
    wcfg.seed = 3;
    Trace trace = buildAnnotatedTrace(workload, wcfg);
    const MachineConfig mc = MachineConfig::clustered(clusters);
    ExperimentConfig cfg;

    for (PolicyKind kind : {PolicyKind::ModN, PolicyKind::LoadBal}) {
        PolicyRun run = runPolicy(trace, mc, kind, cfg);
        validateTiming(trace, run.sim, mc);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselinePolicies,
    ::testing::Combine(::testing::Values(std::string("perl"),
                                         std::string("twolf")),
                       ::testing::Values(2u, 4u, 8u)),
    wlClustersName);

/** Clustering should never help: a partitioned machine has strictly
 *  fewer scheduling options than the monolithic one (small tolerance
 *  for policy noise). */
class ClusteringMonotonic
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ClusteringMonotonic, ClusteredNotFasterThanMonolithic)
{
    const std::string workload = GetParam();
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 10000;
    wcfg.seed = 5;
    Trace trace = buildAnnotatedTrace(workload, wcfg);
    ExperimentConfig cfg;

    PolicyRun mono = runPolicy(trace, MachineConfig::monolithic(),
                               PolicyKind::Dep, cfg);
    for (unsigned n : {2u, 4u, 8u}) {
        PolicyRun clus = runPolicy(trace, MachineConfig::clustered(n),
                                   PolicyKind::Dep, cfg);
        EXPECT_GE(clus.sim.cycles * 100, mono.sim.cycles * 99)
            << n << " clusters beat monolithic on " << workload;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ClusteringMonotonic,
                         ::testing::ValuesIn(workloadNames()));

/** Raising the forwarding latency can only slow a clustered machine
 *  (small tolerance for steering-feedback noise). */
class FwdLatencyMonotonic
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(FwdLatencyMonotonic, SlowerWiresNeverHelp)
{
    const std::string workload = GetParam();
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 8000;
    wcfg.seed = 2;
    Trace trace = buildAnnotatedTrace(workload, wcfg);
    ExperimentConfig cfg;

    Cycle prev = 0;
    for (unsigned lat : {1u, 2u, 4u}) {
        MachineConfig mc = MachineConfig::clustered(4);
        mc.fwdLatency = lat;
        PolicyRun run = runPolicy(trace, mc, PolicyKind::Dep, cfg);
        if (prev != 0) {
            EXPECT_GE(run.sim.cycles * 100, prev * 99) << lat;
        }
        prev = run.sim.cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(Sample, FwdLatencyMonotonic,
                         ::testing::Values(std::string("gzip"),
                                           std::string("vpr"),
                                           std::string("vortex")));

} // anonymous namespace
} // namespace csim
