/**
 * @file
 * Run-ledger and crash-flight-recorder tests: NDJSON envelope
 * structure, the cross-thread payload determinism contract, heartbeat
 * wall-only events, provenance digests, replay-command quoting, ring
 * wrap/recycling, and the crash paths (panic hook + dump content)
 * via death tests. BenchContext's --ledger-out / --trace-out startup
 * path validation is covered here too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "core/machine_config.hh"
#include "harness/experiment.hh"
#include "harness/json_report.hh"
#include "harness/sweep.hh"
#include "obs/flight_recorder.hh"
#include "obs/run_ledger.hh"

namespace csim {
namespace {

std::string
tempPath(const std::string &tag)
{
    return std::string(::testing::TempDir()) + "/csim_ledger_" + tag +
        "_" + std::to_string(::getpid());
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

std::string
fieldOf(const std::string &line, const std::string &marker)
{
    const std::size_t at = line.find(marker);
    EXPECT_NE(at, std::string::npos) << line;
    if (at == std::string::npos)
        return "";
    return line.substr(at + marker.size());
}

/** The payload object's exact bytes (it is the envelope's last
 *  field). */
std::string
payloadOf(const std::string &line)
{
    std::string tail = fieldOf(line, "\"payload\":");
    EXPECT_FALSE(tail.empty());
    if (!tail.empty())
        tail.pop_back(); // envelope's closing brace
    return tail;
}

std::string
kindOf(const std::string &line)
{
    const std::string tail = fieldOf(line, "\"kind\":\"");
    return tail.substr(0, tail.find('"'));
}

Provenance
testProvenance()
{
    Provenance prov;
    prov.gitSha = "cafef00dcafe";
    prov.buildType = "Test";
    prov.buildFlags = "-O2";
    prov.cmdline = "test_ledger --fake";
    return prov;
}

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.instructions = 3000;
    cfg.seeds = {1, 2};
    return cfg;
}

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.cfg = smallConfig();
    spec.addTiming("gzip", MachineConfig::clustered(2),
                   PolicyKind::Focused);
    spec.addTiming("gzip", MachineConfig::clustered(4),
                   PolicyKind::ModN);
    return spec;
}

// ---------------------------------------------------------------- //
// RunLedger structure

TEST(RunLedger, HeadEnvelopeAndSequencing)
{
    const std::string path = tempPath("head");
    {
        RunLedger ledger(path, "test_bench", testProvenance());
        ledger.jobBegin(0, "gzip/2x4w/focused", 1, "0123456789abcdef");
        ledger.jobEnd(0, "gzip/2x4w/focused", 1, 1000, 2000,
                      "fedcba9876543210");
    }
    const std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(kindOf(lines[0]), "head");
    EXPECT_NE(lines[0].find("\"gitSha\":\"cafef00dcafe\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"benchmark\":\"test_bench\""),
              std::string::npos);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string prefix =
            "{\"ledger\":1,\"seq\":" + std::to_string(i) + ",";
        EXPECT_EQ(lines[i].substr(0, prefix.size()), prefix);
        // Every event carries a wall offset and a payload object.
        EXPECT_NE(lines[i].find("\"wall\":{\"tMs\":"),
                  std::string::npos);
        EXPECT_NE(lines[i].find("\"payload\":{"), std::string::npos);
    }
    EXPECT_NE(lines[2].find("\"cpi\":2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(RunLedgerDeathTest, UnwritablePathIsFatalAtConstruction)
{
    EXPECT_DEATH(
        RunLedger("/nonexistent_dir_for_csim_test/x.ndjson", "bench",
                  testProvenance()),
        "--ledger-out");
}

TEST(RunLedger, HeartbeatsAreWallOnly)
{
    const std::string path = tempPath("beat");
    {
        RunLedger ledger(path, "test_bench", testProvenance());
        ledger.progress().jobsTotal.store(10);
        ledger.progress().jobsDone.store(4);
        ledger.progress().instructionsDone.store(123456);
        ledger.startHeartbeat(5);
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        ledger.stopHeartbeat();
    }
    std::size_t beats = 0;
    for (const std::string &line : readLines(path)) {
        if (kindOf(line) != "heartbeat")
            continue;
        ++beats;
        // The payload must be empty: heartbeats are wall-clock-only
        // and excluded from the determinism contract.
        EXPECT_EQ(payloadOf(line), "{}") << line;
        EXPECT_NE(line.find("\"jobsDone\":4"), std::string::npos);
        EXPECT_NE(line.find("\"jobsTotal\":10"), std::string::npos);
        EXPECT_NE(line.find("\"instructions\":123456"),
                  std::string::npos);
        EXPECT_NE(line.find("\"etaSeconds\":"), std::string::npos);
        EXPECT_NE(line.find("\"rssBytes\":"), std::string::npos);
    }
    EXPECT_GE(beats, 2u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- //
// Determinism contract across sweep thread counts

/** (ordered, concurrent) payload views, mirroring check_ledger.py:
 *  single-thread-emitted kinds keep file order, worker-emitted kinds
 *  (jobBegin/jobEnd) are compared as a sorted multiset, heartbeats
 *  are ignored. */
std::pair<std::vector<std::string>, std::vector<std::string>>
deterministicView(const std::string &path)
{
    std::vector<std::string> ordered, concurrent;
    for (const std::string &line : readLines(path)) {
        const std::string kind = kindOf(line);
        if (kind == "heartbeat")
            continue;
        if (kind == "jobBegin" || kind == "jobEnd")
            concurrent.push_back(payloadOf(line));
        else
            ordered.push_back(payloadOf(line));
    }
    std::sort(concurrent.begin(), concurrent.end());
    return {ordered, concurrent};
}

TEST(RunLedger, PayloadsByteIdenticalAcrossThreadCounts)
{
    const std::string path1 = tempPath("t1");
    const std::string path4 = tempPath("t4");
    for (const auto &[path, threads] :
         {std::pair<std::string, unsigned>{path1, 1u}, {path4, 4u}}) {
        RunLedger ledger(path, "test_bench", testProvenance());
        SweepRunner runner(threads);
        runner.setLedger(&ledger);
        runner.run(smallSpec());
    }
    const auto [ordered1, concurrent1] = deterministicView(path1);
    const auto [ordered4, concurrent4] = deterministicView(path4);
    EXPECT_FALSE(ordered1.empty());
    // jobBegin + jobEnd for every (cell, seed) unit.
    EXPECT_EQ(concurrent1.size(), 2u * smallSpec().cells.size() *
                                      smallConfig().seeds.size());
    EXPECT_EQ(ordered1, ordered4);
    EXPECT_EQ(concurrent1, concurrent4);
    std::remove(path1.c_str());
    std::remove(path4.c_str());
}

// ---------------------------------------------------------------- //
// Digests and replay quoting

TEST(RunLedger, StatsDigestCommitsToEveryStat)
{
    StatsRegistry reg;
    Counter &a = reg.addCounter("a", "");
    reg.addCounter("b", "");
    const std::string before = statsDigest(reg.snapshot());
    EXPECT_EQ(before.size(), 16u);
    EXPECT_EQ(before, statsDigest(reg.snapshot())); // stable
    a += 1;
    EXPECT_NE(before, statsDigest(reg.snapshot()));
}

TEST(RunLedger, ConfigDigestTracksEveryKnob)
{
    ExperimentConfig cfg = smallConfig();
    const std::string base = configDigest(cfg);
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base, configDigest(cfg));
    ExperimentConfig other = cfg;
    other.instructions += 1;
    EXPECT_NE(base, configDigest(other));
    other = cfg;
    other.seeds.push_back(9);
    EXPECT_NE(base, configDigest(other));
    other = cfg;
    other.adaptive.enabled = true;
    EXPECT_NE(base, configDigest(other));
    other = cfg;
    other.regions = 4;
    other.regionLen = 100;
    EXPECT_NE(base, configDigest(other));
}

TEST(RunLedger, ReplayCommandQuoting)
{
    const char *argv[] = {"bench", "--seeds", "1,2", "a b",
                          "don't", "--json=/tmp/x.json"};
    EXPECT_EQ(replayCommandLine(6, const_cast<char **>(argv)),
              "bench --seeds 1,2 'a b' 'don'\\''t' "
              "--json=/tmp/x.json");
}

TEST(RunLedger, CollectProvenanceCapturesEnvOverrides)
{
    ::unsetenv("CSIM_LOG");
    Provenance prov = collectProvenance("cmd");
    for (const auto &[name, value] : prov.env)
        EXPECT_NE(name, "CSIM_LOG");
    ::setenv("CSIM_LOG", "debug", 1);
    prov = collectProvenance("cmd");
    bool found = false;
    for (const auto &[name, value] : prov.env)
        if (name == "CSIM_LOG") {
            found = true;
            EXPECT_EQ(value, "debug");
        }
    EXPECT_TRUE(found);
    ::unsetenv("CSIM_LOG");
    EXPECT_EQ(prov.cmdline, "cmd");
    EXPECT_FALSE(prov.gitSha.empty());
}

// ---------------------------------------------------------------- //
// Flight recorder

class FlightRecorderTest : public ::testing::Test
{
  protected:
    void SetUp() override { FlightRecorder::reset(); }
    void TearDown() override { FlightRecorder::reset(); }
};

TEST_F(FlightRecorderTest, DumpContainsRingContextAndReplay)
{
    FlightRecorder::install("bench_xyz --seeds 1,2");
    FlightRecorder::note("event-alpha");
    FlightRecorder::note("event-beta");
    FlightRecorder::setContext("cell=gzip/2x4w seed=1");
    const std::string dump = FlightRecorder::dumpToString("test");
    EXPECT_NE(dump.find("flight recorder dump (reason: test)"),
              std::string::npos);
    EXPECT_NE(dump.find("replay: bench_xyz --seeds 1,2"),
              std::string::npos);
    EXPECT_NE(dump.find("event-alpha"), std::string::npos);
    EXPECT_NE(dump.find("event-beta"), std::string::npos);
    EXPECT_NE(dump.find("context: cell=gzip/2x4w seed=1"),
              std::string::npos);
    EXPECT_NE(dump.find("[-1] event-beta"), std::string::npos);
    EXPECT_NE(dump.find("[-2] event-alpha"), std::string::npos);
}

TEST_F(FlightRecorderTest, RingKeepsOnlyLastEntries)
{
    FlightRecorder::install("cmd");
    const std::size_t total = FlightRecorder::ringEntries + 5;
    for (std::size_t i = 0; i < total; ++i) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "entry-%03zu", i);
        FlightRecorder::note(buf);
    }
    const std::string dump = FlightRecorder::dumpToString("wrap");
    EXPECT_EQ(dump.find("entry-000"), std::string::npos);
    EXPECT_EQ(dump.find("entry-004"), std::string::npos);
    char first_kept[64], last[64];
    std::snprintf(first_kept, sizeof(first_kept), "entry-%03zu",
                  total - FlightRecorder::ringEntries);
    std::snprintf(last, sizeof(last), "entry-%03zu", total - 1);
    EXPECT_NE(dump.find(first_kept), std::string::npos);
    EXPECT_NE(dump.find(last), std::string::npos);
}

TEST_F(FlightRecorderTest, NotInstalledRecordsNothing)
{
    FlightRecorder::note("should-not-appear");
    FlightRecorder::install("cmd");
    const std::string dump = FlightRecorder::dumpToString("empty");
    EXPECT_EQ(dump.find("should-not-appear"), std::string::npos);
}

TEST_F(FlightRecorderTest, WorkerThreadRingsRecycle)
{
    FlightRecorder::install("cmd");
    // More sequential threads than ring slots: each releases its slot
    // on exit, so every one must get a live ring.
    for (std::size_t i = 0; i < FlightRecorder::maxThreads + 8; ++i) {
        std::thread([] {
            FlightRecorder::note("worker-event");
            FlightRecorder::setContext("worker-context");
        }).join();
    }
    // After all threads exited, their rings are cleared and released.
    const std::string dump = FlightRecorder::dumpToString("recycled");
    EXPECT_EQ(dump.find("worker-event"), std::string::npos);
}

// EXPECT_DEATH matches with POSIX EREs in which '.' need not match
// newlines, so each property of the multi-line dump gets its own
// death test.
TEST_F(FlightRecorderTest, PanicDumpAnnouncesReason)
{
    FlightRecorder::install("replay-me --flag");
    FlightRecorder::note("last-event-before-death");
    EXPECT_DEATH(CSIM_PANIC("induced for test"),
                 "flight recorder dump");
}

TEST_F(FlightRecorderTest, PanicDumpCarriesReplayCommand)
{
    FlightRecorder::install("replay-me --flag");
    EXPECT_DEATH(CSIM_PANIC("induced for test"),
                 "replay: replay-me --flag");
}

TEST_F(FlightRecorderTest, PanicDumpCarriesRingEvents)
{
    FlightRecorder::install("replay-me --flag");
    FlightRecorder::note("last-event-before-death");
    EXPECT_DEATH(CSIM_PANIC("induced for test"),
                 "last-event-before-death");
}

TEST_F(FlightRecorderTest, FatalDumpsToo)
{
    FlightRecorder::install("replay-me");
    EXPECT_DEATH(CSIM_FATAL("bad config for test"),
                 "flight recorder dump");
}

TEST_F(FlightRecorderTest, DumpFileWrittenOnDeath)
{
    const std::string dump_path = tempPath("crashdump");
    std::remove(dump_path.c_str());
    FlightRecorder::install("replay-me --here", dump_path);
    FlightRecorder::note("persisted-event");
    // The death-test child writes the dump file; the parent reads it.
    EXPECT_DEATH(CSIM_PANIC("induced"), "flight recorder");
    std::ifstream in(dump_path);
    ASSERT_TRUE(static_cast<bool>(in)) << dump_path;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("replay: replay-me --here"),
              std::string::npos);
    EXPECT_NE(content.find("persisted-event"), std::string::npos);
    std::remove(dump_path.c_str());
}

// ---------------------------------------------------------------- //
// BenchContext wiring

TEST(BenchContextLedgerDeathTest, UnwritableLedgerPathIsFatal)
{
    const char *argv[] = {"bench", "--ledger-out",
                          "/nonexistent_dir_for_csim_test/l.ndjson"};
    EXPECT_DEATH(BenchContext("bench", 3, const_cast<char **>(argv)),
                 "--ledger-out path "
                 "'/nonexistent_dir_for_csim_test/l.ndjson' is not "
                 "writable");
}

TEST(BenchContextLedgerDeathTest, UnwritableTraceOutPathIsFatal)
{
    const char *argv[] = {"bench", "--trace-out",
                          "/nonexistent_dir_for_csim_test/t.json"};
    EXPECT_DEATH(BenchContext("bench", 3, const_cast<char **>(argv)),
                 "--trace-out path "
                 "'/nonexistent_dir_for_csim_test/t.json' is not "
                 "writable");
}

TEST(BenchContextLedgerDeathTest, BadHeartbeatPeriodIsFatal)
{
    const char *argv[] = {"bench", "--heartbeat-ms", "fast"};
    EXPECT_DEATH(BenchContext("bench", 3, const_cast<char **>(argv)),
                 "bad --heartbeat-ms 'fast'");
    const char *argv0[] = {"bench", "--heartbeat-ms", "0"};
    EXPECT_DEATH(BenchContext("bench", 3, const_cast<char **>(argv0)),
                 "bad --heartbeat-ms '0'");
}

TEST(BenchContextLedger, EndToEndLedgerAndProvenance)
{
    const std::string ledger_path = tempPath("bench");
    const std::string json_path = tempPath("bench_json");
    {
        const std::string threads = "2";
        const char *argv[] = {"test_ledger_bench",
                              "--ledger-out", ledger_path.c_str(),
                              "--json", json_path.c_str(),
                              "--threads", threads.c_str()};
        BenchContext ctx("test_ledger_bench", 7,
                         const_cast<char **>(argv));
        ASSERT_NE(ctx.ledger(), nullptr);
        EXPECT_TRUE(FlightRecorder::installed());
        SweepSpec spec = smallSpec();
        ctx.apply(spec.cfg);
        const SweepOutcome outcome = ctx.runner().run(spec);
        ctx.addSweepRuns(outcome);
        EXPECT_EQ(ctx.finish(), 0);
    }
    FlightRecorder::reset();

    const std::vector<std::string> lines = readLines(ledger_path);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(kindOf(lines.front()), "head");
    std::size_t traces = 0, bench_end = 0, cell_end = 0;
    for (const std::string &line : lines) {
        const std::string kind = kindOf(line);
        traces += kind == "traces";
        bench_end += kind == "benchEnd";
        cell_end += kind == "cellEnd";
    }
    EXPECT_EQ(traces, 1u);
    EXPECT_EQ(bench_end, 1u);
    EXPECT_EQ(cell_end, smallSpec().cells.size());

    std::ifstream in(json_path);
    std::string report((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    EXPECT_NE(report.find("\"schemaVersion\":7"), std::string::npos);
    EXPECT_NE(report.find("\"provenance\":{"), std::string::npos);
    EXPECT_NE(report.find("\"traceHashes\":{"), std::string::npos);
    EXPECT_NE(report.find("\"cmdline\":"), std::string::npos);
    std::remove(ledger_path.c_str());
    std::remove(json_path.c_str());
}

} // namespace
} // namespace csim
