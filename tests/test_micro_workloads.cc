/**
 * @file
 * Tests for the paper-example micro-kernels: each must have exactly
 * the dataflow structure the corresponding figure draws.
 */

#include <gtest/gtest.h>

#include "core/timing_sim.hh"
#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "workloads/micro.hh"

namespace csim {
namespace {

Trace
annotate(Trace t)
{
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    return t;
}

WorkloadConfig
cfgOf(std::uint64_t n)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = n;
    cfg.seed = 1;
    return cfg;
}

TEST(MicroKernels, SerialChainHasIlpOne)
{
    Trace t = annotate(buildMicroSerialChain(cfgOf(5000)));
    // Essentially every instruction depends on its predecessor.
    std::uint64_t chained = 0, adds = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].op != Opcode::Addi)
            continue;
        ++adds;
        if (t[i].prod[srcSlot1] != invalidInstId)
            ++chained;
    }
    // Every add from index 1 on consumes the previous link.
    EXPECT_GT(adds, 4000u);
    EXPECT_EQ(chained, adds);

    // And the monolithic machine runs it at ~1 CPI.
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    SimResult res = TimingSim(MachineConfig::monolithic(), t, steer,
                              age).run();
    EXPECT_GT(res.cpi(), 0.9);
    EXPECT_LT(res.cpi(), 1.1);
}

TEST(MicroKernels, ConvergentHasDyadicJoin)
{
    Trace t = annotate(buildMicroConvergent(cfgOf(5000)));
    // Find xor instructions: both operands must be loads (the two
    // chains of Fig. 3).
    std::uint64_t joins = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].op != Opcode::Xor)
            continue;
        const InstId a = t[i].prod[srcSlot1];
        const InstId b = t[i].prod[srcSlot2];
        ASSERT_NE(a, invalidInstId);
        ASSERT_NE(b, invalidInstId);
        EXPECT_TRUE(t[a].isLoad());
        EXPECT_TRUE(t[b].isLoad());
        ++joins;
    }
    EXPECT_GT(joins, 200u);
}

TEST(MicroKernels, SpineRibsHasLoopCarriedSpine)
{
    Trace t = annotate(buildMicroSpineRibs(cfgOf(5000)));
    // The `and` spine op feeds the next iteration's `add` spine op.
    std::uint64_t spine_links = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].op != Opcode::Add || !t[i].hasDest())
            continue;
        const InstId p = t[i].prod[srcSlot1];
        if (p != invalidInstId && t[p].op == Opcode::And)
            ++spine_links;
    }
    EXPECT_GT(spine_links, 300u);
    EXPECT_GT(t.stats().mispredictRate(), 0.03);
}

TEST(MicroKernels, EarlyExitCriticalConsumerIsLast)
{
    Trace t = annotate(buildMicroEarlyExit(cfgOf(5000)));
    // The cursor register's value has >= 2 consumers and the
    // self-update comes after the load in fetch order.
    std::uint64_t checked = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        // Destructive self-updates (dest == src) are the loop-carried
        // candidates; the cursor is the one whose value a load read
        // earlier in the iteration.
        if (t[i].op != Opcode::Addi || t[i].dest != t[i].src1)
            continue;
        const InstId p = t[i].prod[srcSlot1];
        if (p == invalidInstId || t[p].op != Opcode::Addi)
            continue;
        // The load consumed the same value earlier.
        bool load_before = false;
        for (std::size_t j = p + 1; j < i; ++j) {
            if (t[j].isLoad() && t[j].prod[srcSlot1] == p)
                load_before = true;
        }
        if (load_before)
            ++checked;
    }
    EXPECT_GT(checked, 300u);
}

TEST(MicroKernels, WideIlpScalesWithChains)
{
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    double cpi2, cpi8;
    {
        Trace t = annotate(buildMicroWideIlp(cfgOf(8000), 2));
        cpi2 = TimingSim(MachineConfig::monolithic(), t, steer, age)
                   .run().cpi();
    }
    {
        Trace t = annotate(buildMicroWideIlp(cfgOf(8000), 8));
        cpi8 = TimingSim(MachineConfig::monolithic(), t, steer, age)
                   .run().cpi();
    }
    // More chains -> more ILP -> lower CPI, approaching the 8-wide
    // front-end bound.
    EXPECT_LT(cpi8, cpi2 * 0.5);
}

} // anonymous namespace
} // namespace csim
