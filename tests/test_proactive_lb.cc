/**
 * @file
 * Focused unit tests for the proactive load-balancing decision logic
 * (paper Sec. 6/7) against a scripted machine state: the
 * followed-producer rule, the learned not-most-critical-consumer
 * candidates, the LoC keep override and the pressure gate.
 */

#include <gtest/gtest.h>

#include <vector>

#include "policy/steering.hh"

namespace csim {
namespace {

/** Minimal scriptable CoreView (mirrors test_policies.cc). */
class MockView : public CoreView
{
  public:
    explicit MockView(unsigned clusters)
    {
        config_ = MachineConfig::clustered(clusters);
        occupancy_.assign(clusters, 0);
    }

    const MachineConfig &config() const override { return config_; }
    Cycle now() const override { return now_; }
    unsigned
    windowFree(ClusterId c) const override
    {
        return config_.windowPerCluster - occupancy_[c];
    }
    unsigned
    windowOccupancy(ClusterId c) const override
    {
        return occupancy_[c];
    }
    bool
    inFlight(InstId id) const override
    {
        const InstTiming &t = timing_.at(id);
        return t.dispatch != invalidCycle &&
            (t.complete == invalidCycle || t.complete > now_);
    }
    bool
    completed(InstId id) const override
    {
        const InstTiming &t = timing_.at(id);
        return t.complete != invalidCycle && t.complete <= now_;
    }
    ClusterId
    clusterOf(InstId id) const override
    {
        return timing_.at(id).cluster;
    }
    const TraceRecord &
    record(InstId id) const override
    {
        return records_.at(id);
    }
    const InstTiming &
    timingOf(InstId id) const override
    {
        return timing_.at(id);
    }

    InstId
    addInFlight(ClusterId cluster, Addr pc)
    {
        TraceRecord rec;
        rec.pc = pc;
        records_.push_back(rec);
        InstTiming t;
        t.dispatch = 1;
        t.cluster = cluster;
        timing_.push_back(t);
        ++occupancy_[cluster];
        return records_.size() - 1;
    }

    MachineConfig config_;
    Cycle now_ = 10;
    std::vector<unsigned> occupancy_;
    std::vector<TraceRecord> records_;
    std::vector<InstTiming> timing_;
};

struct Fixture
{
    Fixture()
        : view(8)
    {
        UnifiedSteeringOptions opt;
        opt.focusOnCritical = true;
        opt.proactiveLB = true;
        steer = std::make_unique<UnifiedSteering>(opt, &crit, &loc);
        steer->reset(view, 1000);
    }

    /** Pressure the producer's cluster so the gate opens. */
    void
    pressure(ClusterId c)
    {
        view.occupancy_[c] =
            view.config().windowPerCluster - 1;
    }

    TraceRecord
    consumerOf(InstId p, Addr pc)
    {
        TraceRecord rec;
        rec.pc = pc;
        rec.op = Opcode::Add;
        rec.prod[srcSlot1] = p;
        return rec;
    }

    MockView view;
    CriticalityPredictor crit;
    LocPredictor loc;
    std::unique_ptr<UnifiedSteering> steer;
};

TEST(ProactiveLb, SecondConsumerOfFollowedProducerIsPushed)
{
    Fixture f;
    const InstId p = f.view.addInFlight(3, 0x1000);
    f.pressure(3);

    // First consumer collocates and marks the producer followed.
    TraceRecord c1 = f.consumerOf(p, 0x2000);
    SteerRequest r1{10, &c1};
    SteerDecision d1 = f.steer->steer(f.view, r1);
    EXPECT_EQ(d1.reason, SteerReason::Collocated);
    f.steer->notifySteered(f.view, r1, d1);

    // Second (cold-LoC) consumer gets pushed away.
    TraceRecord c2 = f.consumerOf(p, 0x2004);
    SteerRequest r2{11, &c2};
    SteerDecision d2 = f.steer->steer(f.view, r2);
    EXPECT_EQ(d2.reason, SteerReason::ProactiveLB);
    EXPECT_NE(d2.cluster, 3);
}

TEST(ProactiveLb, NoPushWithoutPressure)
{
    Fixture f;
    const InstId p = f.view.addInFlight(3, 0x1000);
    // Window nearly empty: locality is free, keep both consumers.
    TraceRecord c1 = f.consumerOf(p, 0x2000);
    SteerRequest r1{10, &c1};
    SteerDecision d1 = f.steer->steer(f.view, r1);
    f.steer->notifySteered(f.view, r1, d1);

    TraceRecord c2 = f.consumerOf(p, 0x2004);
    SteerRequest r2{11, &c2};
    SteerDecision d2 = f.steer->steer(f.view, r2);
    EXPECT_EQ(d2.reason, SteerReason::Collocated);
    EXPECT_EQ(d2.cluster, 3);
}

TEST(ProactiveLb, PredictedCriticalConsumerIsKept)
{
    Fixture f;
    const InstId p = f.view.addInFlight(2, 0x1000);
    f.pressure(2);

    // Mark the producer followed via a first consumer.
    TraceRecord c1 = f.consumerOf(p, 0x2000);
    SteerRequest r1{10, &c1};
    SteerDecision d1 = f.steer->steer(f.view, r1);
    f.steer->notifySteered(f.view, r1, d1);

    // A second consumer the binary predictor says is critical stays.
    f.crit.train(0x2004, true);
    ASSERT_TRUE(f.crit.predict(0x2004));
    TraceRecord c2 = f.consumerOf(p, 0x2004);
    SteerRequest r2{11, &c2};
    SteerDecision d2 = f.steer->steer(f.view, r2);
    EXPECT_EQ(d2.reason, SteerReason::Collocated);
    EXPECT_EQ(d2.cluster, 2);
}

TEST(ProactiveLb, HighLocConsumerIsKept)
{
    Fixture f;
    const InstId p = f.view.addInFlight(1, 0x1000);
    f.pressure(1);

    TraceRecord c1 = f.consumerOf(p, 0x2000);
    SteerRequest r1{10, &c1};
    SteerDecision d1 = f.steer->steer(f.view, r1);
    f.steer->notifySteered(f.view, r1, d1);

    // A consumer with LoC near 1 is kept by the absolute override.
    for (int i = 0; i < 3000; ++i)
        f.loc.train(0x2004, true);
    TraceRecord c2 = f.consumerOf(p, 0x2004);
    SteerRequest r2{11, &c2};
    SteerDecision d2 = f.steer->steer(f.view, r2);
    EXPECT_EQ(d2.reason, SteerReason::Collocated);
}

TEST(ProactiveLb, CommitTrainingMarksCandidates)
{
    Fixture f;
    const InstId p = f.view.addInFlight(0, 0x1000);

    // Train the LoC predictor: 0x3000 is critical, 0x3004 is not.
    for (int i = 0; i < 3000; ++i) {
        f.loc.train(0x3000, true);
        f.loc.train(0x3004, false);
    }

    // Steering both consumers records the max consumer LoC of p's
    // value; committing the weak one trains its PC as a candidate.
    TraceRecord strong = f.consumerOf(p, 0x3000);
    TraceRecord weak = f.consumerOf(p, 0x3004);
    SteerRequest rs{10, &strong};
    SteerRequest rw{11, &weak};
    for (int round = 0; round < 8; ++round) {
        SteerDecision ds = f.steer->steer(f.view, rs);
        f.steer->notifySteered(f.view, rs, ds);
        SteerDecision dw = f.steer->steer(f.view, rw);
        f.steer->notifySteered(f.view, rw, dw);
        f.steer->notifyCommit(f.view, 11, weak);
        f.steer->notifyCommit(f.view, 10, strong);
    }

    // Now pressure the cluster: the weak consumer should be pushed
    // even as the FIRST consumer of a fresh value (candidate table).
    const InstId p2 = f.view.addInFlight(0, 0x1000);
    f.pressure(0);
    TraceRecord weak2 = f.consumerOf(p2, 0x3004);
    SteerRequest r2{20, &weak2};
    SteerDecision d2 = f.steer->steer(f.view, r2);
    EXPECT_EQ(d2.reason, SteerReason::ProactiveLB);
}

} // anonymous namespace
} // namespace csim
