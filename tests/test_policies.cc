/**
 * @file
 * Unit tests for the steering policies against a scripted mock
 * CoreView: placement preferences, load-balancing, stall-over-steer
 * and proactive load-balancing decisions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "policy/scheduling.hh"
#include "policy/steering.hh"

namespace csim {
namespace {

/** A hand-scriptable machine state. */
class MockView : public CoreView
{
  public:
    explicit MockView(unsigned clusters)
    {
        config_ = MachineConfig::clustered(clusters);
        occupancy_.assign(clusters, 0);
    }

    const MachineConfig &config() const override { return config_; }
    Cycle now() const override { return now_; }
    unsigned
    windowFree(ClusterId c) const override
    {
        return config_.windowPerCluster - occupancy_[c];
    }
    unsigned
    windowOccupancy(ClusterId c) const override
    {
        return occupancy_[c];
    }
    bool
    inFlight(InstId id) const override
    {
        const InstTiming &t = timing_.at(id);
        return t.dispatch != invalidCycle &&
            (t.complete == invalidCycle || t.complete > now_);
    }
    bool
    completed(InstId id) const override
    {
        const InstTiming &t = timing_.at(id);
        return t.complete != invalidCycle && t.complete <= now_;
    }
    ClusterId
    clusterOf(InstId id) const override
    {
        return timing_.at(id).cluster;
    }
    const TraceRecord &
    record(InstId id) const override
    {
        return records_.at(id);
    }
    const InstTiming &
    timingOf(InstId id) const override
    {
        return timing_.at(id);
    }

    /** Add an in-flight (dispatched, un-issued) producer. */
    InstId
    addInFlight(ClusterId cluster, Addr pc)
    {
        TraceRecord rec;
        rec.pc = pc;
        records_.push_back(rec);
        InstTiming t;
        t.dispatch = 1;
        t.cluster = cluster;
        timing_.push_back(t);
        ++occupancy_[cluster];
        return records_.size() - 1;
    }

    void
    setOccupancy(ClusterId c, unsigned n)
    {
        occupancy_[c] = n;
    }

    MachineConfig config_;
    Cycle now_ = 10;
    std::vector<unsigned> occupancy_;
    std::vector<TraceRecord> records_;
    std::vector<InstTiming> timing_;
};

TraceRecord
consumerOf(InstId p, Addr pc = 0x9000)
{
    TraceRecord rec;
    rec.pc = pc;
    rec.op = Opcode::Add;
    rec.prod[srcSlot1] = p;
    return rec;
}

TEST(ModNSteering, RotatesAcrossClusters)
{
    MockView view(4);
    ModNSteering modn;
    modn.reset(view, 100);
    TraceRecord rec;
    SteerRequest req{0, &rec};
    std::vector<ClusterId> seen;
    for (int i = 0; i < 4; ++i)
        seen.push_back(modn.steer(view, req).cluster);
    EXPECT_EQ(seen, (std::vector<ClusterId>{0, 1, 2, 3}));
}

TEST(ModNSteering, SkipsFullClusters)
{
    MockView view(2);
    view.setOccupancy(0, view.config().windowPerCluster);
    ModNSteering modn;
    modn.reset(view, 100);
    TraceRecord rec;
    SteerRequest req{0, &rec};
    EXPECT_EQ(modn.steer(view, req).cluster, 1);
}

TEST(LoadBalanceSteering, PicksLeastOccupied)
{
    MockView view(4);
    view.setOccupancy(0, 5);
    view.setOccupancy(1, 2);
    view.setOccupancy(2, 9);
    view.setOccupancy(3, 4);
    LoadBalanceSteering lb;
    TraceRecord rec;
    SteerRequest req{0, &rec};
    EXPECT_EQ(lb.steer(view, req).cluster, 1);
}

TEST(UnifiedSteering, CollocatesWithInFlightProducer)
{
    MockView view(4);
    InstId p = view.addInFlight(2, 0x1000);
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    steer.reset(view, 100);

    TraceRecord rec = consumerOf(p);
    SteerRequest req{5, &rec};
    SteerDecision d = steer.steer(view, req);
    EXPECT_FALSE(d.stall);
    EXPECT_EQ(d.cluster, 2);
    EXPECT_EQ(d.reason, SteerReason::Collocated);
    EXPECT_EQ(d.desired, 2);
}

TEST(UnifiedSteering, LoadBalancesWhenNoProducer)
{
    MockView view(4);
    view.setOccupancy(0, 3);
    view.setOccupancy(1, 1);
    view.setOccupancy(2, 4);
    view.setOccupancy(3, 2);
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    steer.reset(view, 100);
    TraceRecord rec;
    rec.pc = 0x2000;
    SteerRequest req{5, &rec};
    SteerDecision d = steer.steer(view, req);
    EXPECT_EQ(d.reason, SteerReason::NoProducer);
    EXPECT_EQ(d.cluster, 1);
}

TEST(UnifiedSteering, LoadBalancesWhenDesiredFull)
{
    MockView view(2);
    InstId p = view.addInFlight(0, 0x1000);
    view.setOccupancy(0, view.config().windowPerCluster);

    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    steer.reset(view, 100);
    TraceRecord rec = consumerOf(p);
    SteerRequest req{5, &rec};
    SteerDecision d = steer.steer(view, req);
    EXPECT_FALSE(d.stall);
    EXPECT_EQ(d.cluster, 1);
    EXPECT_EQ(d.reason, SteerReason::LoadBalanced);
    EXPECT_EQ(d.desired, 0);
}

TEST(UnifiedSteering, DyadicSplitFlagged)
{
    MockView view(4);
    InstId p1 = view.addInFlight(0, 0x1000);
    InstId p2 = view.addInFlight(3, 0x1004);
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    steer.reset(view, 100);

    TraceRecord rec;
    rec.pc = 0x9000;
    rec.op = Opcode::Add;
    rec.prod[srcSlot1] = p1;
    rec.prod[srcSlot2] = p2;
    SteerRequest req{7, &rec};
    SteerDecision d = steer.steer(view, req);
    EXPECT_TRUE(d.dyadicSplit);
    // Most recently dispatched producer preferred.
    EXPECT_EQ(d.cluster, 3);
}

TEST(UnifiedSteering, MonolithicAlwaysClusterZero)
{
    MockView view(1);
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    steer.reset(view, 100);
    TraceRecord rec;
    SteerRequest req{0, &rec};
    SteerDecision d = steer.steer(view, req);
    EXPECT_EQ(d.cluster, 0);
    EXPECT_EQ(d.reason, SteerReason::Monolithic);
}

TEST(UnifiedSteering, StallOverSteerForExecuteCritical)
{
    MockView view(2);
    InstId p = view.addInFlight(0, 0x1000);
    view.setOccupancy(0, view.config().windowPerCluster);

    CriticalityPredictor crit;
    LocPredictor loc;
    // Make the consumer's stall class saturate: train its LoC high.
    for (int i = 0; i < 3000; ++i)
        loc.train(0x9000, true);

    UnifiedSteeringOptions opt;
    opt.focusOnCritical = true;
    opt.stallOverSteer = true;
    UnifiedSteering steer(opt, &crit, &loc);
    steer.reset(view, 100);

    TraceRecord rec = consumerOf(p);
    SteerRequest req{5, &rec};
    // A few steers to warm the stall hysteresis, then expect a stall.
    SteerDecision d{};
    for (int i = 0; i < 4; ++i)
        d = steer.steer(view, req);
    EXPECT_TRUE(d.stall);
}

TEST(UnifiedSteering, NoStallForNonCritical)
{
    MockView view(2);
    InstId p = view.addInFlight(0, 0x1000);
    view.setOccupancy(0, view.config().windowPerCluster);

    CriticalityPredictor crit;
    LocPredictor loc;  // cold: LoC 0

    UnifiedSteeringOptions opt;
    opt.focusOnCritical = true;
    opt.stallOverSteer = true;
    UnifiedSteering steer(opt, &crit, &loc);
    steer.reset(view, 100);

    TraceRecord rec = consumerOf(p);
    SteerRequest req{5, &rec};
    SteerDecision d = steer.steer(view, req);
    EXPECT_FALSE(d.stall);
    EXPECT_EQ(d.reason, SteerReason::LoadBalanced);
}

TEST(UnifiedSteering, FocusPrefersCriticalProducer)
{
    MockView view(4);
    InstId p1 = view.addInFlight(0, 0x1000);  // will be critical
    InstId p2 = view.addInFlight(3, 0x1004);  // newer, not critical

    CriticalityPredictor crit;
    crit.train(0x1000, true);  // counter 8 -> predicted critical

    UnifiedSteeringOptions opt;
    opt.focusOnCritical = true;
    UnifiedSteering steer(opt, &crit, nullptr);
    steer.reset(view, 100);

    TraceRecord rec;
    rec.pc = 0x9000;
    rec.op = Opcode::Add;
    rec.prod[srcSlot1] = p1;
    rec.prod[srcSlot2] = p2;
    SteerRequest req{7, &rec};
    SteerDecision d = steer.steer(view, req);
    // Without focus, the newer producer (p2, cluster 3) would win;
    // with focus the critical one does.
    EXPECT_EQ(d.cluster, 0);
}

TEST(Scheduling, PriorityClasses)
{
    AgeScheduling age;
    TraceRecord rec;
    rec.pc = 0x1000;
    EXPECT_EQ(age.priorityClass(rec), 0u);

    CriticalityPredictor crit;
    CriticalScheduling cs(crit);
    EXPECT_EQ(cs.priorityClass(rec), 1u);  // not critical
    crit.train(0x1000, true);
    EXPECT_EQ(cs.priorityClass(rec), 0u);  // critical first

    LocPredictor loc;
    LocScheduling ls(loc);
    const unsigned cold = ls.priorityClass(rec);
    for (int i = 0; i < 3000; ++i)
        loc.train(0x1000, true);
    EXPECT_LT(ls.priorityClass(rec), cold);
}

} // anonymous namespace
} // namespace csim
