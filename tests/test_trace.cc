/**
 * @file
 * Unit tests for the trace module: producer linkage (register and
 * memory dependences) and trace statistics.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "trace/trace.hh"

namespace csim {
namespace {

const auto r = Program::r;

Trace
traceOf(const Program &p, std::uint64_t n = 1000)
{
    Emulator emu(p);
    Trace t = emu.run(n);
    t.linkProducers();
    return t;
}

TEST(TraceLink, RegisterDependences)
{
    Program p;
    p.lui(r(1), 1);                 // 0
    p.lui(r(2), 2);                 // 1
    p.add(r(3), r(1), r(2));        // 2: reads 0 and 1
    p.add(r(4), r(3), r(1));        // 3: reads 2 and 0
    p.halt();
    p.finalize();
    Trace t = traceOf(p);

    EXPECT_EQ(t[2].prod[srcSlot1], 0u);
    EXPECT_EQ(t[2].prod[srcSlot2], 1u);
    EXPECT_EQ(t[3].prod[srcSlot1], 2u);
    EXPECT_EQ(t[3].prod[srcSlot2], 0u);
}

TEST(TraceLink, LastWriterWins)
{
    Program p;
    p.lui(r(1), 1);                 // 0
    p.lui(r(1), 2);                 // 1: rewrites r1
    p.addi(r(2), r(1), 0);          // 2: must read from 1
    p.halt();
    p.finalize();
    Trace t = traceOf(p);
    EXPECT_EQ(t[2].prod[srcSlot1], 1u);
}

TEST(TraceLink, UnwrittenSourceHasNoProducer)
{
    Program p;
    p.addi(r(2), r(1), 5);          // r1 never written in-trace
    p.halt();
    p.finalize();
    Trace t = traceOf(p);
    EXPECT_EQ(t[0].prod[srcSlot1], invalidInstId);
}

TEST(TraceLink, ZeroRegisterNeverProduces)
{
    Program p;
    p.lui(r(31), 7);                // dropped write
    p.add(r(1), r(31), r(31));
    p.halt();
    p.finalize();
    Trace t = traceOf(p);
    EXPECT_EQ(t[1].prod[srcSlot1], invalidInstId);
    EXPECT_EQ(t[1].prod[srcSlot2], invalidInstId);
}

TEST(TraceLink, StoreToLoadForwarding)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.lui(r(2), 9);
    p.st(r(2), r(1), 0);            // 2
    p.ld(r(3), r(1), 0);            // 3: same word -> dep on 2
    p.ld(r(4), r(1), 8);            // 4: different word -> none
    p.halt();
    p.finalize();
    Trace t = traceOf(p);
    EXPECT_EQ(t[3].prod[srcSlotMem], 2u);
    EXPECT_EQ(t[4].prod[srcSlotMem], invalidInstId);
}

TEST(TraceLink, LaterStoreShadowsEarlier)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.lui(r(2), 1);
    p.st(r(2), r(1), 0);            // 2
    p.st(r(2), r(1), 0);            // 3
    p.ld(r(3), r(1), 0);            // 4: dep on 3, not 2
    p.halt();
    p.finalize();
    Trace t = traceOf(p);
    EXPECT_EQ(t[4].prod[srcSlotMem], 3u);
}

TEST(TraceLink, StoreReadsDataRegister)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.lui(r(2), 5);                 // 1: produces store data
    p.st(r(2), r(1), 0);            // 2
    p.halt();
    p.finalize();
    Trace t = traceOf(p);
    EXPECT_EQ(t[2].prod[srcSlot1], 0u);   // base
    EXPECT_EQ(t[2].prod[srcSlot2], 1u);   // data
}

TEST(TraceStats, Counts)
{
    Program p;
    Label l = p.newLabel();
    p.lui(r(1), 3);
    p.lui(r(2), 0x1000);
    p.bind(l);
    p.ld(r(3), r(2), 0);
    p.st(r(3), r(2), 8);
    p.addi(r(1), r(1), -1);
    p.bne(r(1), l);
    p.halt();
    p.finalize();
    Trace t = traceOf(p);
    TraceStats s = t.stats();
    EXPECT_EQ(s.instructions, t.size());
    EXPECT_EQ(s.loads, 3u);
    EXPECT_EQ(s.stores, 3u);
    EXPECT_EQ(s.condBranches, 3u);
    EXPECT_EQ(s.branches, 3u);
}

TEST(TraceStats, EmptyTrace)
{
    Trace t;
    TraceStats s = t.stats();
    EXPECT_EQ(s.instructions, 0u);
    EXPECT_DOUBLE_EQ(s.mispredictRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.l1MissRate(), 0.0);
}

} // anonymous namespace
} // namespace csim
