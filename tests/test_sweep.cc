/**
 * @file
 * Sweep engine tests: TraceCache build-once/hit/eviction semantics,
 * SweepRunner determinism across thread counts (bit-identical
 * aggregates, including the merged stats snapshots), equivalence with
 * the legacy sequential entry points, and BenchContext's --threads
 * front end.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/json_report.hh"
#include "harness/sweep.hh"
#include "harness/trace_cache.hh"

namespace csim {
namespace {

WorkloadConfig
smallWorkload(std::uint64_t seed, std::uint64_t instructions = 4000)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = instructions;
    cfg.seed = seed;
    return cfg;
}

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.instructions = 4000;
    cfg.seeds = {1, 2};
    return cfg;
}

// ---------------------------------------------------------------- //
// TraceCache

TEST(TraceCache, BuildsOnceAndHits)
{
    TraceCache cache;
    auto a = cache.get("gzip", smallWorkload(1));
    auto b = cache.get("gzip", smallWorkload(1));
    EXPECT_EQ(a.get(), b.get());  // shared, not rebuilt
    EXPECT_EQ(cache.requests(), 2u);
    EXPECT_EQ(cache.builds(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_GT(cache.bytesHeld(), 0u);
}

TEST(TraceCache, DistinctKeysBuildSeparately)
{
    TraceCache cache;
    auto a = cache.get("gzip", smallWorkload(1));
    auto b = cache.get("gzip", smallWorkload(2));        // seed
    auto c = cache.get("mcf", smallWorkload(1));         // workload
    auto d = cache.get("gzip", smallWorkload(1, 2000));  // length
    MemoryModelConfig mem;
    mem.l2Latency = 77;
    auto e = cache.get("gzip", smallWorkload(1), mem);   // mem config
    EXPECT_EQ(cache.builds(), 5u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(a.get(), d.get());
    EXPECT_NE(a.get(), e.get());
}

TEST(TraceCache, CachedTraceMatchesFreshBuild)
{
    TraceCache cache;
    auto cached = cache.get("vpr", smallWorkload(3));
    Trace fresh = buildAnnotatedTrace("vpr", smallWorkload(3));
    ASSERT_EQ(cached->size(), fresh.size());
    for (std::uint64_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ((*cached)[i].pc, fresh[i].pc);
        EXPECT_EQ((*cached)[i].mispredicted, fresh[i].mispredicted);
    }
}

TEST(TraceCache, EvictsLruByByteBudget)
{
    // Capacity of one trace: the second insert evicts the first.
    TraceCache probe;
    auto first = probe.get("gzip", smallWorkload(1));
    const std::size_t one = probe.bytesHeld();
    ASSERT_GT(one, 0u);

    TraceCache cache(one);
    auto a = cache.get("gzip", smallWorkload(1));
    EXPECT_EQ(cache.evictions(), 0u);
    auto b = cache.get("gzip", smallWorkload(2));
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_LE(cache.bytesHeld(), one);

    // The evicted trace stays alive through the held shared_ptr, and
    // re-requesting it is a rebuild, not a hit.
    EXPECT_GT(a->size(), 0u);
    auto a2 = cache.get("gzip", smallWorkload(1));
    EXPECT_EQ(cache.builds(), 3u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(TraceCache, SpillsEvictionsAndRehydratesByMmap)
{
    // Size the budget to exactly one trace so the second insert
    // evicts (and, with a spill dir, spills) the first.
    TraceCache probe;
    (void)probe.get("gzip", smallWorkload(1));
    const std::size_t one = probe.bytesHeld();
    ASSERT_GT(one, 0u);

    const std::string dir = ::testing::TempDir();
    TraceCache cache(one, dir);
    auto a = cache.get("gzip", smallWorkload(1));
    auto b = cache.get("gzip", smallWorkload(2));
    {
        const StatsSnapshot snap = cache.statsSnapshot();
        EXPECT_EQ(snap.value("traceCache.evictions"), 1.0);
        EXPECT_EQ(snap.value("traceCache.spill.writes"), 1.0);
        EXPECT_GT(snap.value("traceCache.spill.bytes"), 0.0);
        EXPECT_EQ(snap.value("traceCache.mmap.loads"), 0.0);
    }

    // A miss on the spilled key re-mmaps the store file instead of
    // re-running the build pipeline, and the rehydrated trace is
    // bit-identical to a fresh build.
    auto a2 = cache.get("gzip", smallWorkload(1));
    {
        const StatsSnapshot snap = cache.statsSnapshot();
        EXPECT_EQ(snap.value("traceCache.builds"), 2.0);
        EXPECT_EQ(snap.value("traceCache.mmap.loads"), 1.0);
        EXPECT_GT(snap.value("traceCache.mmap.bytes"), 0.0);
    }
    const Trace fresh = buildAnnotatedTrace("gzip", smallWorkload(1));
    ASSERT_EQ(a2->size(), fresh.size());
    for (std::uint64_t i = 0; i < fresh.size(); ++i) {
        ASSERT_EQ((*a2)[i].pc, fresh[i].pc) << i;
        ASSERT_EQ((*a2)[i].prod, fresh[i].prod) << i;
        ASSERT_EQ((*a2)[i].mispredicted, fresh[i].mispredicted) << i;
        ASSERT_EQ((*a2)[i].l1Miss, fresh[i].l1Miss) << i;
    }
}

TEST(TraceCache, NoSpillDirMeansPlainEviction)
{
    TraceCache probe;
    (void)probe.get("gzip", smallWorkload(1));
    const std::size_t one = probe.bytesHeld();

    TraceCache cache(one);  // no spill dir
    (void)cache.get("gzip", smallWorkload(1));
    (void)cache.get("gzip", smallWorkload(2));
    (void)cache.get("gzip", smallWorkload(1));  // full rebuild
    const StatsSnapshot snap = cache.statsSnapshot();
    EXPECT_EQ(snap.value("traceCache.builds"), 3.0);
    EXPECT_EQ(snap.value("traceCache.spill.writes"), 0.0);
    EXPECT_EQ(snap.value("traceCache.mmap.loads"), 0.0);
}

TEST(TraceCache, UnlimitedCapacityNeverEvicts)
{
    TraceCache cache;  // capacity 0 = unlimited
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        cache.get("gzip", smallWorkload(seed));
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.entries(), 4u);
}

TEST(TraceCache, ClearDropsEntries)
{
    TraceCache cache;
    cache.get("gzip", smallWorkload(1));
    cache.clear();
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytesHeld(), 0u);
    cache.get("gzip", smallWorkload(1));
    EXPECT_EQ(cache.builds(), 2u);
}

TEST(TraceCache, StatsSnapshotCarriesRegistry)
{
    TraceCache cache;
    cache.get("gzip", smallWorkload(1));
    cache.get("gzip", smallWorkload(1));
    StatsSnapshot snap = cache.statsSnapshot();
    EXPECT_GE(snap.size(), 10u);  // CI validates --min-stats 10
    EXPECT_EQ(snap.value("traceCache.requests"), 2.0);
    EXPECT_EQ(snap.value("traceCache.builds"), 1.0);
    EXPECT_EQ(snap.value("traceCache.hits"), 1.0);
    EXPECT_DOUBLE_EQ(snap.value("traceCache.hitRate"), 0.5);
    EXPECT_GT(snap.value("traceCache.bytesHeld"), 0.0);
    EXPECT_GT(snap.value("traceCache.peakBytes"), 0.0);
    EXPECT_EQ(snap.value("traceCache.entriesHeld"), 1.0);
    EXPECT_EQ(snap.value("traceCache.evictions"), 0.0);
}

TEST(TraceCache, TimeSnapshotTracksBuildLatency)
{
    TraceCache cache;
    (void)cache.get("gzip", smallWorkload(1));
    (void)cache.get("gzip", smallWorkload(1));
    const StatsSnapshot t = cache.timeSnapshot();
    EXPECT_GT(t.value("traceCache.time.buildNs"), 0.0);
    EXPECT_TRUE(t.has("traceCache.time.lockWaitNs"));
    EXPECT_TRUE(t.has("traceCache.time.hitWaitNs"));
    EXPECT_GT(t.value("traceCache.time.buildMsMean"), 0.0);
    // Wall times are nondeterministic, so they must stay out of the
    // cache's deterministic stats snapshot.
    EXPECT_FALSE(cache.statsSnapshot().has("traceCache.time.buildNs"));
}

// ---------------------------------------------------------------- //
// SweepSpec

TEST(SweepSpec, CrossTimingIsWorkloadMajor)
{
    SweepSpec spec;
    spec.crossTiming({"gzip", "mcf"},
                     {MachineConfig::monolithic(),
                      MachineConfig::clustered(4)},
                     {PolicyKind::ModN});
    ASSERT_EQ(spec.cells.size(), 4u);
    EXPECT_EQ(spec.cells[0].label(), "gzip/1x8w/mod-n");
    EXPECT_EQ(spec.cells[1].label(), "gzip/4x2w/mod-n");
    EXPECT_EQ(spec.cells[2].label(), "mcf/1x8w/mod-n");
    EXPECT_EQ(spec.cells[3].label(), "mcf/4x2w/mod-n");
}

TEST(SweepSpec, LabelsAndPerCellConfig)
{
    SweepSpec spec;
    spec.cfg.instructions = 123;
    const std::size_t a =
        spec.addIdeal("vpr", MachineConfig::clustered(2),
                      ListSchedOptions::Priority::Loc);
    SweepCell override_cell;
    override_cell.workload = "gcc";
    override_cell.machine = MachineConfig::clustered(8);
    override_cell.policy = PolicyKind::FocusedLocStall;
    ExperimentConfig special;
    special.instructions = 456;
    override_cell.cfg = special;
    const std::size_t b = spec.add(override_cell);

    EXPECT_EQ(spec.cells[a].label(), "vpr/2x4w/ideal-loc");
    EXPECT_EQ(spec.cells[b].label(), "gcc/8x1w/focused+loc+stall");
    EXPECT_EQ(spec.cellConfig(a).instructions, 123u);
    EXPECT_EQ(spec.cellConfig(b).instructions, 456u);
}

// ---------------------------------------------------------------- //
// SweepRunner

void
expectSnapshotsEqual(const StatsSnapshot &a, const StatsSnapshot &b)
{
    ASSERT_EQ(a.size(), b.size());
    const auto &ea = a.entries();
    const auto &eb = b.entries();
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].first, eb[i].first);
        const StatValue &va = ea[i].second;
        const StatValue &vb = eb[i].second;
        EXPECT_EQ(va.kind, vb.kind) << ea[i].first;
        EXPECT_EQ(va.value, vb.value) << ea[i].first;
        EXPECT_EQ(va.buckets, vb.buckets) << ea[i].first;
        EXPECT_EQ(va.mergeCount, vb.mergeCount) << ea[i].first;
    }
}

void
expectResultsEqual(const AggregateResult &a, const AggregateResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    for (std::size_t c = 0; c < numCpCategories; ++c)
        EXPECT_EQ(a.categoryCycles[c], b.categoryCycles[c]);
    EXPECT_EQ(a.contentionEventsCritical, b.contentionEventsCritical);
    EXPECT_EQ(a.contentionEventsOther, b.contentionEventsOther);
    EXPECT_EQ(a.fwdEventsLoadBal, b.fwdEventsLoadBal);
    EXPECT_EQ(a.fwdEventsDyadic, b.fwdEventsDyadic);
    EXPECT_EQ(a.fwdEventsOther, b.fwdEventsOther);
    EXPECT_EQ(a.globalValues, b.globalValues);
    expectSnapshotsEqual(a.stats, b.stats);
}

void
expectPhasesEqual(const std::vector<PhaseResult> &a,
                  const std::vector<PhaseResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].isWarmup, b[i].isWarmup);
        EXPECT_EQ(a[i].instructions, b[i].instructions);
        EXPECT_EQ(a[i].cycles, b[i].cycles);
        expectSnapshotsEqual(a[i].stats, b[i].stats);
    }
}

SweepSpec
mixedSpec()
{
    SweepSpec spec;
    spec.cfg = smallConfig();
    spec.addTiming("gzip", MachineConfig::clustered(4),
                   PolicyKind::Focused);
    spec.addTiming("gzip", MachineConfig::monolithic(),
                   PolicyKind::ModN);
    spec.addIdeal("mcf", MachineConfig::clustered(2));
    // A per-cell override exercises cellConfig plumbing.
    SweepCell special;
    special.workload = "gzip";
    special.machine = MachineConfig::clustered(2);
    special.policy = PolicyKind::LoadBal;
    ExperimentConfig cfg = smallConfig();
    cfg.seeds = {7};
    special.cfg = cfg;
    spec.add(special);
    return spec;
}

TEST(SweepRunner, ParallelMatchesSequentialBitForBit)
{
    const SweepSpec spec = mixedSpec();
    SweepRunner seq(1);
    SweepRunner par(4);
    const SweepOutcome a = seq.run(spec);
    const SweepOutcome b = par.run(spec);

    EXPECT_EQ(a.threads, 1u);
    EXPECT_EQ(b.threads, 4u);
    ASSERT_EQ(a.results.size(), spec.cells.size());
    ASSERT_EQ(b.results.size(), spec.cells.size());
    for (std::size_t i = 0; i < a.results.size(); ++i)
        expectResultsEqual(a.results[i], b.results[i]);
}

TEST(SweepRunner, RegionSampledRunsAreThreadCountInvariant)
{
    // Region-sampled cells must merge region (and seed) results in a
    // fixed order, so a parallel sweep reproduces the sequential one
    // bit for bit — including the merged phase reports.
    SweepSpec spec;
    spec.cfg = smallConfig();
    spec.cfg.instructions = 8000;
    spec.cfg.regions = 3;
    spec.cfg.regionLen = 400;
    spec.cfg.regionWarmup = 150;
    spec.addTiming("gzip", MachineConfig::clustered(4),
                   PolicyKind::Focused);
    spec.addTiming("mcf", MachineConfig::monolithic(),
                   PolicyKind::ModN);

    SweepRunner seq(1);
    SweepRunner par(4);
    const SweepOutcome a = seq.run(spec);
    const SweepOutcome b = par.run(spec);
    ASSERT_EQ(a.results.size(), spec.cells.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        expectResultsEqual(a.results[i], b.results[i]);
        expectPhasesEqual(a.results[i].phases, b.results[i].phases);
        // Two seeds x three regions of like-named phases fold into
        // exactly one warmup and one measure entry.
        ASSERT_EQ(a.results[i].phases.size(), 2u);
        EXPECT_EQ(a.results[i].phases[0].name, "warmup");
        EXPECT_EQ(a.results[i].phases[1].name, "measure");
        EXPECT_EQ(a.results[i].phases[1].instructions,
                  a.results[i].instructions);
        EXPECT_EQ(a.results[i].phases[0].instructions,
                  2u * 3u * 150u);
    }
}

TEST(SweepRunner, MatchesLegacySequentialAggregates)
{
    const ExperimentConfig cfg = smallConfig();
    SweepSpec spec;
    spec.cfg = cfg;
    const std::size_t timing = spec.addTiming(
        "gzip", MachineConfig::clustered(4), PolicyKind::Focused);
    const std::size_t ideal =
        spec.addIdeal("mcf", MachineConfig::clustered(2));

    SweepRunner runner(2);
    const SweepOutcome out = runner.run(spec);

    const AggregateResult legacy_timing = runAggregate(
        "gzip", MachineConfig::clustered(4), PolicyKind::Focused, cfg);
    const AggregateResult legacy_ideal = runIdealAggregate(
        "mcf", MachineConfig::clustered(2), cfg);
    expectResultsEqual(out.at(timing), legacy_timing);
    expectResultsEqual(out.at(ideal), legacy_ideal);
}

TEST(SweepRunner, SharesTracesAcrossCells)
{
    SweepSpec spec;
    spec.cfg = smallConfig();
    spec.crossTiming({"gzip"},
                     {MachineConfig::monolithic(),
                      MachineConfig::clustered(4)},
                     {PolicyKind::ModN, PolicyKind::LoadBal});
    SweepRunner runner(2);
    (void)runner.run(spec);
    // 4 cells x 2 seeds = 8 jobs but only 2 distinct traces.
    EXPECT_EQ(runner.cache().requests(), 8u);
    EXPECT_EQ(runner.cache().builds(), 2u);
    EXPECT_EQ(runner.cache().hits(), 6u);
}

TEST(SweepRunner, ExternalCacheIsUsed)
{
    TraceCache cache;
    SweepSpec spec;
    spec.cfg = smallConfig();
    spec.addTiming("gzip", MachineConfig::monolithic(),
                   PolicyKind::ModN);
    SweepRunner runner(2, &cache);
    EXPECT_EQ(&runner.cache(), &cache);
    (void)runner.run(spec);
    EXPECT_EQ(cache.builds(), 2u);  // one per seed
}

TEST(SweepRunner, ParallelForCoversAllIndicesOnce)
{
    SweepRunner runner(4);
    std::vector<int> touched(257, 0);
    runner.parallelFor(touched.size(), [&](std::size_t i) {
        ++touched[i];  // each index owned by exactly one job
    });
    for (std::size_t i = 0; i < touched.size(); ++i)
        EXPECT_EQ(touched[i], 1) << i;
}

TEST(SweepRunner, WallTimeAndCellsRecorded)
{
    SweepSpec spec;
    spec.cfg = smallConfig();
    spec.addTiming("gzip", MachineConfig::monolithic(),
                   PolicyKind::ModN);
    SweepRunner runner(1);
    const SweepOutcome out = runner.run(spec);
    ASSERT_EQ(out.cells.size(), 1u);
    EXPECT_EQ(out.cells[0].label(), "gzip/1x8w/mod-n");
    EXPECT_GE(out.wallSeconds, 0.0);
    EXPECT_GT(out.at(0).instructions, 0u);
}

TEST(SweepRunner, DefaultThreadsReadsEnv)
{
    ASSERT_EQ(setenv("CSIM_THREADS", "3", 1), 0);
    EXPECT_EQ(SweepRunner::defaultThreads(), 3u);
    ASSERT_EQ(unsetenv("CSIM_THREADS"), 0);
    EXPECT_GE(SweepRunner::defaultThreads(), 1u);
}

TEST(SweepRunnerDeathTest, MalformedEnvThreadCountIsFatal)
{
    // A malformed CSIM_THREADS must never silently fall back to a
    // default thread count.
    ASSERT_EQ(setenv("CSIM_THREADS", "junk", 1), 0);
    EXPECT_DEATH(SweepRunner::defaultThreads(), "CSIM_THREADS");
    ASSERT_EQ(setenv("CSIM_THREADS", "0", 1), 0);
    EXPECT_DEATH(SweepRunner::defaultThreads(), "CSIM_THREADS");
    ASSERT_EQ(setenv("CSIM_THREADS", "-2", 1), 0);
    EXPECT_DEATH(SweepRunner::defaultThreads(), "CSIM_THREADS");
    ASSERT_EQ(unsetenv("CSIM_THREADS"), 0);
}

TEST(ParseThreadCount, AcceptsPositiveDecimals)
{
    EXPECT_EQ(parseThreadCount("1", "--threads"), 1u);
    EXPECT_EQ(parseThreadCount("48", "--threads"), 48u);
    EXPECT_EQ(parseThreadCount("65536", "--threads"), 65536u);
}

TEST(ParseThreadCountDeathTest, RejectsGarbage)
{
    EXPECT_DEATH(parseThreadCount("", "--threads"), "--threads");
    EXPECT_DEATH(parseThreadCount("0", "--threads"), "--threads");
    EXPECT_DEATH(parseThreadCount("-1", "--threads"), "--threads");
    EXPECT_DEATH(parseThreadCount("+4", "--threads"), "--threads");
    EXPECT_DEATH(parseThreadCount("4x", "--threads"), "--threads");
    EXPECT_DEATH(parseThreadCount("0x10", "--threads"), "--threads");
    EXPECT_DEATH(parseThreadCount(" 4", "--threads"), "--threads");
    EXPECT_DEATH(parseThreadCount("65537", "--threads"), "65537");
    EXPECT_DEATH(parseThreadCount("99999999999999999999", "src"),
                 "src");
}

// ---------------------------------------------------------------- //
// BenchContext front end

TEST(BenchContextThreads, FlagOverridesDefault)
{
    const char *argv[] = {"bench", "--threads", "5"};
    BenchContext ctx("bench", 3, const_cast<char **>(argv));
    EXPECT_EQ(ctx.threads(), 5u);
    EXPECT_EQ(ctx.runner().threads(), 5u);
    EXPECT_EQ(&ctx.runner().cache(), &ctx.traceCache());
}

TEST(BenchContextThreads, EnvDefaultWhenFlagAbsent)
{
    ASSERT_EQ(setenv("CSIM_THREADS", "2", 1), 0);
    const char *argv[] = {"bench"};
    BenchContext ctx("bench", 1, const_cast<char **>(argv));
    EXPECT_EQ(ctx.threads(), 2u);
    ASSERT_EQ(unsetenv("CSIM_THREADS"), 0);
}

} // anonymous namespace
} // namespace csim
