/**
 * @file
 * Unit tests for the functional emulator: per-opcode semantics, the
 * zero register, memory, branches, floating point, and the trace it
 * records.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "emu/memory.hh"

namespace csim {
namespace {

const auto r = Program::r;
const auto f = Program::f;

TEST(SparseMemory, ReadAfterWrite)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1000), 0);
    m.write(0x1000, -42);
    EXPECT_EQ(m.read(0x1000), -42);
    EXPECT_EQ(m.pageCount(), 1u);
}

TEST(SparseMemory, WordGranularity)
{
    SparseMemory m;
    m.write(0x2000, 7);
    // Any address within the same 8-byte word aliases.
    EXPECT_EQ(m.read(0x2003), 7);
    EXPECT_EQ(m.read(0x2008), 0);
}

TEST(SparseMemory, PagesAllocatedLazily)
{
    SparseMemory m;
    m.write(0x0, 1);
    m.write(0x100000, 2);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(Emulator, IntegerArithmetic)
{
    Program p;
    p.lui(r(1), 10);
    p.lui(r(2), 3);
    p.add(r(3), r(1), r(2));
    p.sub(r(4), r(1), r(2));
    p.mul(r(5), r(1), r(2));
    p.and_(r(6), r(1), r(2));
    p.or_(r(7), r(1), r(2));
    p.xor_(r(8), r(1), r(2));
    p.sll(r(9), r(1), r(2));
    p.srl(r(10), r(1), r(2));
    p.halt();
    p.finalize();

    Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.reg(r(3)), 13);
    EXPECT_EQ(emu.reg(r(4)), 7);
    EXPECT_EQ(emu.reg(r(5)), 30);
    EXPECT_EQ(emu.reg(r(6)), 2);
    EXPECT_EQ(emu.reg(r(7)), 11);
    EXPECT_EQ(emu.reg(r(8)), 9);
    EXPECT_EQ(emu.reg(r(9)), 80);
    EXPECT_EQ(emu.reg(r(10)), 1);
}

TEST(Emulator, Comparisons)
{
    Program p;
    p.lui(r(1), 5);
    p.lui(r(2), 5);
    p.lui(r(3), 6);
    p.cmpeq(r(4), r(1), r(2));
    p.cmplt(r(5), r(1), r(3));
    p.cmplt(r(6), r(3), r(1));
    p.cmple(r(7), r(1), r(2));
    p.halt();
    p.finalize();

    Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.reg(r(4)), 1);
    EXPECT_EQ(emu.reg(r(5)), 1);
    EXPECT_EQ(emu.reg(r(6)), 0);
    EXPECT_EQ(emu.reg(r(7)), 1);
}

TEST(Emulator, ZeroRegisterReadsZeroAndDropsWrites)
{
    Program p;
    p.lui(r(31), 99);               // write to r31 is discarded
    p.add(r(1), r(31), r(31));
    p.halt();
    p.finalize();

    Emulator emu(p);
    emu.run(100);
    EXPECT_EQ(emu.reg(r(1)), 0);
}

TEST(Emulator, LoadsAndStores)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.lui(r(2), 77);
    p.st(r(2), r(1), 8);
    p.ld(r(3), r(1), 8);
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(100);
    EXPECT_EQ(emu.reg(r(3)), 77);
    EXPECT_EQ(emu.peek(0x1008), 77);

    // Trace records carry effective addresses.
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[2].memAddr, 0x1008u);
    EXPECT_EQ(t[3].memAddr, 0x1008u);
    EXPECT_TRUE(t[2].isStore());
    EXPECT_TRUE(t[3].isLoad());
}

TEST(Emulator, BranchSemantics)
{
    Program p;
    Label skip = p.newLabel();
    Label end = p.newLabel();
    p.lui(r(1), 0);
    p.beq(r(1), skip);              // taken: r1 == 0
    p.lui(r(2), 1);                 // skipped
    p.bind(skip);
    p.lui(r(3), 2);
    p.bne(r(3), end);               // taken: r3 != 0
    p.lui(r(4), 3);                 // skipped
    p.bind(end);
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(100);
    EXPECT_EQ(emu.reg(r(2)), 0);
    EXPECT_EQ(emu.reg(r(3)), 2);
    EXPECT_EQ(emu.reg(r(4)), 0);
    // Taken flags recorded.
    EXPECT_TRUE(t[1].taken);
}

TEST(Emulator, LoopExecutesExpectedIterations)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 5);                 // counter
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.addi(r(2), r(2), 10);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    emu.run(1000);
    EXPECT_EQ(emu.reg(r(2)), 50);
}

TEST(Emulator, FloatingPoint)
{
    Program p;
    p.lui(r(1), 6);
    p.lui(r(2), 4);
    p.itof(f(1), r(1));
    p.itof(f(2), r(2));
    p.fadd(f(3), f(1), f(2));
    p.fmul(f(4), f(1), f(2));
    p.fdiv(f(5), f(1), f(2));
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(100);
    // FP results observed via a store round-trip would need int
    // conversion; instead check the recorded op classes.
    EXPECT_EQ(t[2].cls, OpClass::FpAlu);   // itof
    EXPECT_EQ(t[4].cls, OpClass::FpAlu);   // fadd
    EXPECT_EQ(t[5].cls, OpClass::FpAlu);   // fmul
    EXPECT_EQ(t[6].cls, OpClass::FpDiv);   // fdiv
}

TEST(Emulator, FdivByZeroYieldsZero)
{
    Program p;
    p.lui(r(1), 5);
    p.itof(f(1), r(1));
    p.fdiv(f(2), f(1), f(3));       // f3 never written: 0.0
    p.halt();
    p.finalize();
    Emulator emu(p);
    EXPECT_EQ(emu.run(100).size(), 3u);  // no trap, no crash
}

TEST(Emulator, MaxInstrsTruncates)
{
    Program p;
    Label loop = p.newLabel();
    p.bind(loop);
    p.addi(r(1), r(1), 1);
    p.jmp(loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(1000);
    EXPECT_EQ(t.size(), 1000u);
}

TEST(Emulator, PcEncodesStaticIndex)
{
    Program p;
    p.nop();
    p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Emulator emu(p);
    Trace t = emu.run(10);
    EXPECT_EQ(t[0].pc, Emulator::codeBase);
    EXPECT_EQ(t[1].pc, Emulator::codeBase + 4);
}

TEST(Emulator, PresetRegistersAndMemory)
{
    Program p;
    p.ld(r(2), r(1), 0);
    p.halt();
    p.finalize();
    Emulator emu(p);
    emu.setReg(r(1), 0x4000);
    emu.poke(0x4000, 123);
    emu.run(10);
    EXPECT_EQ(emu.reg(r(2)), 123);
}

} // anonymous namespace
} // namespace csim
