/**
 * @file
 * Unit tests for the cache model and the load-latency annotation pass.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "emu/emulator.hh"
#include "mem/cache.hh"
#include "mem/latency_annotator.hh"

namespace csim {
namespace {

const auto r = Program::r;

TEST(Cache, FirstAccessMissesThenHits)
{
    Cache c;
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103f));  // same 64B line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c;
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
    c.access(0x1000);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, LruEvictionOrder)
{
    // Tiny cache: 2 sets x 2 ways x 64B lines = 256B.
    Cache c(CacheConfig{256, 2, 64});
    // Three lines mapping to set 0: line addresses stride 128.
    c.access(0x0000);
    c.access(0x0080);
    c.access(0x0000);   // touch A so B becomes LRU
    c.access(0x0100);   // evicts B
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0080));
    EXPECT_TRUE(c.probe(0x0100));
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache c(CacheConfig{32 * 1024, 4, 64});
    const unsigned sets = c.numSets();
    // 4 lines in the same set: all should fit in a 4-way cache.
    for (int i = 0; i < 4; ++i)
        c.access(static_cast<Addr>(i) * sets * 64);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(c.probe(static_cast<Addr>(i) * sets * 64));
    // The fifth evicts the oldest.
    c.access(Addr{4} * sets * 64);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, PaperL1Geometry)
{
    Cache c;  // default: 32KB 4-way 64B
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.config().sizeBytes, 32u * 1024);
}

class CacheGeometry : public ::testing::TestWithParam<
                          std::tuple<std::uint64_t, unsigned>>
{};

TEST_P(CacheGeometry, WorkingSetBehaviour)
{
    const auto [size, assoc] = GetParam();
    Cache c(CacheConfig{size, assoc, 64});

    // Sequential working set half the cache size: after warmup,
    // everything hits.
    const Addr span = size / 2;
    for (Addr a = 0; a < span; a += 64)
        c.access(a);
    std::uint64_t misses_before = c.stats().misses;
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < span; a += 64)
            c.access(a);
    EXPECT_EQ(c.stats().misses, misses_before);

    // Working set 4x the cache: sequential sweep thrashes with LRU.
    Cache big(CacheConfig{size, assoc, 64});
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < 4 * size; a += 64)
            big.access(a);
    EXPECT_GT(big.stats().missRate(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(std::uint64_t{4096}, 1u),
                      std::make_tuple(std::uint64_t{8192}, 2u),
                      std::make_tuple(std::uint64_t{32768}, 4u),
                      std::make_tuple(std::uint64_t{65536}, 8u)));

TEST(LatencyAnnotator, HitAndMissLatencies)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.ld(r(2), r(1), 0);            // cold: miss
    p.ld(r(3), r(1), 0);            // hit
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(100);
    t.linkProducers();
    MemAnnotateResult res = annotateMemory(t);

    EXPECT_TRUE(t[1].l1Miss);
    EXPECT_EQ(t[1].execLat, 23u);   // 3 + 20-cycle L2
    EXPECT_FALSE(t[2].l1Miss);
    EXPECT_EQ(t[2].execLat, 3u);    // load-to-use
    EXPECT_EQ(res.loadMisses, 1u);
}

TEST(LatencyAnnotator, StoresAllocate)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.lui(r(2), 5);
    p.st(r(2), r(1), 0);            // miss, allocates
    p.ld(r(3), r(1), 0);            // hits thanks to the store
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(100);
    t.linkProducers();
    annotateMemory(t);
    EXPECT_FALSE(t[3].l1Miss);
    EXPECT_EQ(t[3].execLat, 3u);
}

TEST(LatencyAnnotator, NonMemOpsUntouched)
{
    Program p;
    p.add(r(1), r(2), r(3));
    p.halt();
    p.finalize();
    Emulator emu(p);
    Trace t = emu.run(100);
    annotateMemory(t);
    EXPECT_EQ(t[0].execLat, 1u);
}

TEST(LatencyAnnotator, CustomLatencies)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.ld(r(2), r(1), 0);
    p.halt();
    p.finalize();
    Emulator emu(p);
    Trace t = emu.run(100);

    MemoryModelConfig cfg;
    cfg.loadToUse = 2;
    cfg.l2Latency = 50;
    annotateMemory(t, cfg);
    EXPECT_EQ(t[1].execLat, 52u);
}

} // anonymous namespace
} // namespace csim
