/**
 * @file
 * Unit tests for the local slack analysis (Sec. 4 support).
 */

#include <gtest/gtest.h>

#include "core/timing_sim.hh"
#include "critpath/slack.hh"
#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

const auto r = Program::r;

Trace
prepare(const Program &p)
{
    Emulator emu(p);
    Trace t = emu.run(100000);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    return t;
}

SimResult
run(const Trace &t)
{
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    return TimingSim(MachineConfig::monolithic(), t, steer, age)
        .run();
}

TEST(Slack, SerialChainHasNoSlack)
{
    Program p;
    for (int i = 0; i < 100; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = run(t);
    SlackAnalysis sa =
        analyzeSlack(t, res, MachineConfig::monolithic());

    // Interior chain links are consumed the cycle they arrive.
    std::uint64_t zero = 0;
    for (std::size_t i = 10; i + 10 < t.size(); ++i)
        if (sa.localSlack[i] == 0)
            ++zero;
    EXPECT_GT(zero, 70u);
}

TEST(Slack, UnusedValueGetsCommitSlack)
{
    Program p;
    p.lui(r(1), 7);                  // never consumed
    for (int i = 0; i < 40; ++i)
        p.addi(r(2), r(2), 1);       // a chain delaying commit
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = run(t);
    SlackAnalysis sa =
        analyzeSlack(t, res, MachineConfig::monolithic());
    // The lui completes immediately but commits in order behind the
    // pipeline fill: positive slack.
    EXPECT_GT(sa.localSlack[0], 0u);
}

TEST(Slack, MispredictedBranchHasZeroSlack)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 100);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i].isCondBranch)
            t[i].mispredicted = true;
    SimResult res = run(t);
    SlackAnalysis sa =
        analyzeSlack(t, res, MachineConfig::monolithic());
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].isCondBranch) {
            EXPECT_EQ(sa.localSlack[i], 0u) << i;
        }
    }
}

TEST(Slack, CapRespected)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 5000;
    wcfg.seed = 1;
    Trace t = buildAnnotatedTrace("vortex", wcfg);
    SimResult res = run(t);
    SlackAnalysis sa =
        analyzeSlack(t, res, MachineConfig::monolithic(), 64);
    for (Cycle s : sa.localSlack)
        ASSERT_LE(s, 64u);
    EXPECT_GE(sa.highVarianceFraction, 0.0);
    EXPECT_LE(sa.highVarianceFraction, 1.0);
    EXPECT_FALSE(sa.perStatic.empty());
    // perStatic sorted by dynamic count.
    for (std::size_t i = 1; i < sa.perStatic.size(); ++i) {
        ASSERT_GE(sa.perStatic[i - 1].instances,
                  sa.perStatic[i].instances);
    }
}

TEST(Slack, StaticStatsConsistent)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 5000;
    wcfg.seed = 2;
    Trace t = buildAnnotatedTrace("twolf", wcfg);
    SimResult res = run(t);
    SlackAnalysis sa =
        analyzeSlack(t, res, MachineConfig::monolithic());
    std::uint64_t total = 0;
    for (const StaticSlack &s : sa.perStatic) {
        EXPECT_LE(s.minSlack, s.meanSlack);
        EXPECT_LE(s.meanSlack, s.maxSlack);
        EXPECT_GE(s.stddev, 0.0);
        total += s.instances;
    }
    EXPECT_EQ(total, t.size());
}

} // anonymous namespace
} // namespace csim
