/**
 * @file
 * Tests for the structure-of-arrays trace view and the event-driven
 * skip-ahead that consumes it: AoS <-> SoA round-trips over every
 * registered workload, footprint accounting, and skip-vs-dense
 * equality on synthetic sparse traces where the skip path must
 * actually engage.
 */

#include <gtest/gtest.h>

#include "trace/trace_soa.hh"

#include "core/timing_sim.hh"
#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "sim_checks.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

const auto r = Program::r;

void
expectRecordEq(const TraceRecord &a, const TraceRecord &b,
               std::size_t i)
{
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.dest, b.dest);
    EXPECT_EQ(a.src1, b.src1);
    EXPECT_EQ(a.src2, b.src2);
    EXPECT_EQ(a.memAddr, b.memAddr);
    for (int s = 0; s < numSrcSlots; ++s)
        EXPECT_EQ(a.prod[s], b.prod[s]) << "slot " << s;
    EXPECT_EQ(a.execLat, b.execLat);
    EXPECT_EQ(a.isBranch, b.isBranch);
    EXPECT_EQ(a.isCondBranch, b.isCondBranch);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.mispredicted, b.mispredicted);
    EXPECT_EQ(a.l1Miss, b.l1Miss);
}

void
expectStatsEq(const TraceStats &a, const TraceStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicted, b.mispredicted);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.fpOps, b.fpOps);
}

TEST(TraceSoA, RoundTripsEveryRegisteredWorkload)
{
    for (const std::string &name : workloadNames()) {
        SCOPED_TRACE(name);
        WorkloadConfig wcfg;
        wcfg.targetInstructions = 2000;
        wcfg.seed = 1;
        const Trace trace = buildAnnotatedTrace(name, wcfg);
        ASSERT_TRUE(trace.wellFormed());

        const TraceSoA &soa = trace.soa();
        ASSERT_EQ(soa.size(), trace.size());

        std::uint64_t links = 0;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            // Per-field columns and the reassembled record agree with
            // the AoS source.
            expectRecordEq(soa.record(i), trace[i], i);
            EXPECT_EQ(soa.pc()[i], trace[i].pc);
            EXPECT_EQ(soa.cls()[i], trace[i].cls);
            EXPECT_EQ(soa.execLat()[i], trace[i].execLat);
            EXPECT_EQ(soa.hasDest(i), trace[i].hasDest());
            EXPECT_EQ(soa.isLoad(i), trace[i].isLoad());
            EXPECT_EQ(soa.isStore(i), trace[i].isStore());
            EXPECT_EQ(soa.isBranch(i), trace[i].isBranch);
            EXPECT_EQ(soa.mispredicted(i), trace[i].mispredicted);
            EXPECT_EQ(soa.l1Miss(i), trace[i].l1Miss);
            for (int s = 0; s < numSrcSlots; ++s) {
                EXPECT_EQ(soa.prod(s)[i], trace[i].prod[s]);
                if (trace[i].prod[s] != invalidInstId)
                    ++links;
            }
        }
        EXPECT_EQ(soa.producerLinks(), links);

        // Whole-trace round trip preserves every record and the
        // aggregate statistics.
        const Trace back = soa.toTrace();
        ASSERT_EQ(back.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            expectRecordEq(back[i], trace[i], i);
        expectStatsEq(soa.stats(), trace.stats());
        expectStatsEq(back.stats(), trace.stats());
    }
}

TEST(TraceSoA, FootprintCountsRecordsAndArena)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 1000;
    wcfg.seed = 1;
    Trace trace = buildAnnotatedTrace(workloadNames().front(), wcfg);

    const std::size_t aos_bytes =
        trace.size() * sizeof(TraceRecord);
    EXPECT_EQ(trace.footprintBytes(), aos_bytes);

    const TraceSoA &soa = trace.soa();
    EXPECT_GT(soa.arenaBytes(), 0u);
    EXPECT_EQ(trace.footprintBytes(), aos_bytes + soa.arenaBytes());

    // Mutation drops the cached view (and its bytes) again.
    trace[0].execLat = trace[0].execLat;
    EXPECT_EQ(trace.footprintBytes(), aos_bytes);
}

/** A serial dependence chain of uniformly long-latency instructions:
 *  between one completion and the next wakeup the machine is fully
 *  idle, so the event-driven core must skip, not step. */
Trace
sparseSerialChain(unsigned length, std::uint8_t lat)
{
    Program p;
    for (unsigned i = 0; i < length; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Emulator emu(p);
    Trace t = emu.run(100000);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i].execLat = lat;
    return t;
}

void
expectTimingEq(const SimResult &skip, const SimResult &dense)
{
    ASSERT_EQ(skip.cycles, dense.cycles);
    ASSERT_EQ(skip.instructions, dense.instructions);
    ASSERT_EQ(skip.timing.size(), dense.timing.size());
    for (std::size_t i = 0; i < skip.timing.size(); ++i) {
        SCOPED_TRACE("instruction " + std::to_string(i));
        const InstTiming &s = skip.timing[i];
        const InstTiming &d = dense.timing[i];
        EXPECT_EQ(s.fetch, d.fetch);
        EXPECT_EQ(s.dispatch, d.dispatch);
        EXPECT_EQ(s.ready, d.ready);
        EXPECT_EQ(s.issue, d.issue);
        EXPECT_EQ(s.complete, d.complete);
        EXPECT_EQ(s.commit, d.commit);
        EXPECT_EQ(s.cluster, d.cluster);
        EXPECT_EQ(s.reason, d.reason);
        EXPECT_EQ(s.crossMask, d.crossMask);
    }
}

void
checkSkipMatchesDense(const Trace &trace, const MachineConfig &config)
{
    UnifiedSteering skip_steer(UnifiedSteeringOptions{}, nullptr,
                               nullptr);
    AgeScheduling skip_sched;
    TimingSim skip_sim(config, trace, skip_steer, skip_sched);
    const SimResult skip = skip_sim.run();
    // The whole point of the sparse chain: the skip path must engage.
    EXPECT_GT(skip_sim.skipCycles(), 0u);
    EXPECT_GT(skip_sim.skipSpans(), 0u);

    SimOptions dense_options;
    dense_options.legacyStep = true;
    UnifiedSteering dense_steer(UnifiedSteeringOptions{}, nullptr,
                                nullptr);
    AgeScheduling dense_sched;
    TimingSim dense_sim(config, trace, dense_steer, dense_sched,
                        nullptr, dense_options);
    const SimResult dense = dense_sim.run();
    EXPECT_EQ(dense_sim.skipCycles(), 0u);
    EXPECT_EQ(dense_sim.skipSpans(), 0u);

    expectTimingEq(skip, dense);
    validateTiming(trace, skip, config);
}

TEST(SkipAhead, MatchesDenseOnSparseChainMonolithic)
{
    const Trace trace = sparseSerialChain(200, 20);
    checkSkipMatchesDense(trace, MachineConfig::monolithic());
}

TEST(SkipAhead, MatchesDenseOnSparseChainClustered)
{
    const Trace trace = sparseSerialChain(200, 20);
    checkSkipMatchesDense(trace, MachineConfig::clustered(4));
}

TEST(SkipAhead, MatchesDenseOnMaxLatencyChain)
{
    // The widest idle gap a single dependence edge can produce.
    const Trace trace = sparseSerialChain(64, 255);
    checkSkipMatchesDense(trace, MachineConfig::clustered(8));
}

} // anonymous namespace
} // namespace csim
