/**
 * @file
 * Targeted unit tests for the clustered timing simulator: latency,
 * bandwidth, forwarding, fetch and misprediction behaviour on small
 * hand-built programs.
 */

#include <gtest/gtest.h>

#include "core/timing_sim.hh"

#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "sim_checks.hh"

namespace csim {
namespace {

const auto r = Program::r;
const auto f = Program::f;

Trace
prepare(const Program &p, std::uint64_t n = 100000)
{
    Emulator emu(p);
    Trace t = emu.run(n);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    return t;
}

SimResult
runOn(const Trace &trace, const MachineConfig &config,
      SteeringPolicy &steer)
{
    AgeScheduling age;
    return TimingSim(config, trace, steer, age).run();
}

SimResult
runMono(const Trace &trace)
{
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    return runOn(trace, MachineConfig::monolithic(), steer);
}

TEST(TimingSim, EmptyTrace)
{
    Trace t;
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    SimResult res =
        TimingSim(MachineConfig::monolithic(), t, steer, age).run();
    EXPECT_EQ(res.cycles, 0u);
    EXPECT_EQ(res.instructions, 0u);
}

TEST(TimingSim, SerialChainIssuesBackToBack)
{
    Program p;
    for (int i = 0; i < 64; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = runMono(t);
    validateTiming(t, res, MachineConfig::monolithic());

    // Dependent single-cycle adds issue one per cycle.
    for (std::size_t i = 20; i < 60; ++i) {
        EXPECT_EQ(res.timing[i].issue, res.timing[i - 1].issue + 1)
            << "at " << i;
    }
}

TEST(TimingSim, IndependentAddsReachFullWidth)
{
    Program p;
    for (int i = 0; i < 16; ++i)
        for (int j = 1; j <= 8; ++j)
            p.addi(r(j), r(j), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = runMono(t);
    validateTiming(t, res, MachineConfig::monolithic());

    // 128 instructions in 8 independent chains of 16: the execution
    // portion is ~16 cycles, so total runtime is pipeline fill + ~16.
    const MachineConfig mc = MachineConfig::monolithic();
    EXPECT_LT(res.cycles, mc.frontendDepth + 16 + 16);
}

TEST(TimingSim, LoadToUseIsThreeCycles)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.lui(r(2), 5);
    p.st(r(2), r(1), 0);
    p.ld(r(3), r(1), 0);
    p.ld(r(3), r(1), 0);            // warm load (hit)
    p.addi(r(4), r(3), 1);          // consumer of the hit load
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    ASSERT_EQ(t[4].execLat, 3u);
    SimResult res = runMono(t);
    validateTiming(t, res, MachineConfig::monolithic());
    EXPECT_EQ(res.timing[5].issue, res.timing[4].issue + 3);
}

TEST(TimingSim, L1MissAddsL2Latency)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.ld(r(3), r(1), 0);            // cold miss
    p.addi(r(4), r(3), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    ASSERT_EQ(t[1].execLat, 23u);
    SimResult res = runMono(t);
    EXPECT_EQ(res.timing[2].issue, res.timing[1].issue + 23);
}

TEST(TimingSim, CrossClusterForwardingDelay)
{
    // Mod-N steering alternates clusters, so a dependent pair lands
    // on different clusters and pays the 2-cycle bypass.
    Program p;
    p.addi(r(1), r(1), 1);          // 0 -> cluster 0
    p.addi(r(2), r(1), 1);          // 1 -> cluster 1, reads 0
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    ModNSteering modn;
    MachineConfig mc = MachineConfig::clustered(2);
    SimResult res = runOn(t, mc, modn);
    validateTiming(t, res, mc);

    ASSERT_NE(res.timing[0].cluster, res.timing[1].cluster);
    EXPECT_EQ(res.timing[1].issue,
              res.timing[0].complete + mc.fwdLatency);
    EXPECT_EQ(res.globalValues, 1u);
    EXPECT_NE(res.timing[1].crossMask, 0);
}

TEST(TimingSim, LocalConsumerAvoidsForwarding)
{
    Program p;
    p.addi(r(1), r(1), 1);
    p.addi(r(2), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    // Dependence steering collocates the pair.
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    MachineConfig mc = MachineConfig::clustered(2);
    SimResult res = runOn(t, mc, steer);
    EXPECT_EQ(res.timing[0].cluster, res.timing[1].cluster);
    EXPECT_EQ(res.timing[1].issue, res.timing[0].complete);
    EXPECT_EQ(res.globalValues, 0u);
}

TEST(TimingSim, MemoryDependenceDoesNotPayBypass)
{
    Program p;
    p.lui(r(1), 0x1000);
    p.lui(r(2), 9);
    p.st(r(2), r(1), 0);            // 2
    p.ld(r(3), r(1), 0);            // 3: store-to-load dep
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    ASSERT_EQ(t[3].prod[srcSlotMem], 2u);

    ModNSteering modn;  // force the pair apart
    MachineConfig mc = MachineConfig::clustered(2);
    SimResult res = runOn(t, mc, modn);
    // The load waits for the store via the shared L1 but pays no
    // forwarding latency for the memory dependence itself.
    EXPECT_GE(res.timing[3].issue, res.timing[2].complete);
}

TEST(TimingSim, MispredictedBranchStallsFetch)
{
    Program p;
    Label skip = p.newLabel();
    p.lui(r(1), 0);
    p.beq(r(1), skip);              // always taken
    p.nop();
    p.bind(skip);
    for (int i = 0; i < 20; ++i)
        p.addi(r(2), r(2), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    // Force the branch to be a misprediction.
    for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i].isCondBranch)
            t[i].mispredicted = true;
    ASSERT_TRUE(t[1].mispredicted);

    SimResult res = runMono(t);
    // The instruction after the branch is fetched only once the
    // branch resolves.
    EXPECT_EQ(res.timing[2].fetch, res.timing[1].complete + 1);
    EXPECT_GE(res.timing[2].dispatch,
              res.timing[2].fetch +
                  MachineConfig::monolithic().frontendDepth);
}

TEST(TimingSim, CorrectlyPredictedBranchDoesNotStall)
{
    Program p;
    Label skip = p.newLabel();
    p.lui(r(1), 0);
    p.beq(r(1), skip);
    p.nop();
    p.bind(skip);
    p.addi(r(2), r(2), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i].mispredicted = false;

    SimResult res = runMono(t);
    // Taken branch ends the fetch group; the target comes next cycle.
    EXPECT_EQ(res.timing[2].fetch, res.timing[1].fetch + 1);
}

TEST(TimingSim, FpPortLimitThrottlesIssue)
{
    // 16 independent FP adds on the monolithic machine (4 fp ports):
    // at least 4 issue cycles.
    Program p;
    for (int i = 0; i < 16; ++i)
        p.fadd(f(i % 8), f(8 + (i % 8)), f(16 + (i % 8)));
    p.halt();
    p.finalize();
    // Break the false output-dependences: use distinct destinations.
    Program q;
    for (int i = 0; i < 16; ++i)
        q.fadd(f(i), f(16 + (i % 8)), f(24 + (i % 4)));
    q.halt();
    q.finalize();
    Trace t = prepare(q);
    SimResult res = runMono(t);
    validateTiming(t, res, MachineConfig::monolithic());

    Cycle first = res.timing[0].issue;
    Cycle last = res.timing[15].issue;
    EXPECT_GE(last - first + 1, 4u);
}

TEST(TimingSim, DeterministicAcrossRuns)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 500);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.addi(r(2), r(2), 3);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    UnifiedSteering s1(UnifiedSteeringOptions{}, nullptr, nullptr);
    UnifiedSteering s2(UnifiedSteeringOptions{}, nullptr, nullptr);
    MachineConfig mc = MachineConfig::clustered(4);
    SimResult r1 = runOn(t, mc, s1);
    SimResult r2 = runOn(t, mc, s2);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.globalValues, r2.globalValues);
}

TEST(TimingSim, IlpAccountingSumsMatch)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 300);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.addi(r(2), r(2), 3);
    p.addi(r(3), r(3), 5);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    SimOptions opts;
    opts.collectIlp = true;
    MachineConfig mc = MachineConfig::clustered(8);
    SimResult res = TimingSim(mc, t, steer, age, nullptr, opts).run();

    std::uint64_t cycles = 0, issued = 0;
    for (std::size_t a = 0; a < res.ilpCycles.size(); ++a) {
        cycles += res.ilpCycles[a];
        issued += res.ilpIssuedSum[a];
    }
    EXPECT_EQ(cycles, res.cycles);
    EXPECT_EQ(issued, res.instructions);
}

/** A policy that always stalls: the core must detect the deadlock. */
class AlwaysStall : public SteeringPolicy
{
  public:
    SteerDecision
    steer(const CoreView &, const SteerRequest &) override
    {
        SteerDecision d;
        d.stall = true;
        return d;
    }
    const char *name() const override { return "always-stall"; }
};

TEST(TimingSimDeath, PolicyDeadlockIsCaught)
{
    Program p;
    p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    AlwaysStall stall;
    AgeScheduling age;
    SimOptions opts;
    opts.maxCpi = 10;
    TimingSim sim(MachineConfig::clustered(2), t, stall, age, nullptr,
                  opts);
    EXPECT_DEATH(sim.run(), "cycle limit");
}

TEST(TimingSim, FetchQueueBoundLimitsRunahead)
{
    // A 23-cycle load miss blocks issue/commit; fetch may run ahead
    // only by the front-end buffer (depth x width + one group).
    Program p;
    p.lui(r(1), 0x1000);
    p.ld(r(2), r(1), 0);            // cold miss (23 cycles)
    p.addi(r(2), r(2), 1);          // serialise behind it
    for (int i = 0; i < 400; ++i)
        p.addi(r(3), r(3), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = runMono(t);

    const MachineConfig mc = MachineConfig::monolithic();
    const std::uint64_t bound =
        static_cast<std::uint64_t>(mc.frontendDepth) * mc.fetchWidth +
        mc.fetchWidth;
    // While the miss is outstanding (first ~23 cycles), no
    // instruction more than `bound` past the (stalled) steering point
    // may have been fetched: check instruction 300 was fetched well
    // after the load.
    EXPECT_GT(res.timing[300].fetch, res.timing[1].fetch + 2);
    (void)bound;
}

TEST(TimingSim, RobCapsInFlightInstructions)
{
    // A long miss at the head: younger instructions cannot dispatch
    // past the 256-entry ROB.
    Program p;
    p.lui(r(1), 0x1000);
    p.ld(r(2), r(1), 0);            // miss, commits late
    for (int i = 0; i < 500; ++i)
        p.addi(r(3), r(3), 1);      // independent filler
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = runMono(t);

    const MachineConfig mc = MachineConfig::monolithic();
    // Instruction at ROB distance beyond the miss cannot dispatch
    // before the miss commits.
    const std::size_t beyond = 1 + mc.robEntries;
    ASSERT_LT(beyond, t.size());
    EXPECT_GE(res.timing[beyond].dispatch, res.timing[1].commit);
}

TEST(TimingSim, MonolithicNeverForwards)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 200);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.addi(r(2), r(2), 1);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = runMono(t);
    EXPECT_EQ(res.globalValues, 0u);
    for (const InstTiming &ti : res.timing)
        EXPECT_EQ(ti.crossMask, 0);
}

} // anonymous namespace
} // namespace csim
