/**
 * @file
 * Workload proxy tests: every benchmark builds, is deterministic per
 * seed, varies across seeds, and exhibits the instruction-mix and
 * branch/cache character its SPECint counterpart is known for.
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

namespace csim {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::string>
{};

TEST_P(EveryWorkload, BuildsToExactLength)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 12000;
    cfg.seed = 1;
    Trace t = buildAnnotatedTrace(GetParam(), cfg);
    EXPECT_EQ(t.size(), 12000u);
}

TEST_P(EveryWorkload, DeterministicPerSeed)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 4000;
    cfg.seed = 11;
    Trace a = buildAnnotatedTrace(GetParam(), cfg);
    Trace b = buildAnnotatedTrace(GetParam(), cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << i;
        ASSERT_EQ(a[i].memAddr, b[i].memAddr) << i;
        ASSERT_EQ(a[i].mispredicted, b[i].mispredicted) << i;
    }
}

TEST_P(EveryWorkload, SeedsChangeBehaviour)
{
    WorkloadConfig a_cfg;
    a_cfg.targetInstructions = 6000;
    a_cfg.seed = 1;
    WorkloadConfig b_cfg = a_cfg;
    b_cfg.seed = 2;
    Trace a = buildAnnotatedTrace(GetParam(), a_cfg);
    Trace b = buildAnnotatedTrace(GetParam(), b_cfg);
    // Data-dependent control flow must differ somewhere.
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].pc != b[i].pc || a[i].memAddr != b[i].memAddr;
    EXPECT_TRUE(differs);
}

TEST_P(EveryWorkload, SaneInstructionMix)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 20000;
    cfg.seed = 3;
    Trace t = buildAnnotatedTrace(GetParam(), cfg);
    TraceStats s = t.stats();

    const double branches = static_cast<double>(s.branches) /
        static_cast<double>(s.instructions);
    const double loads = static_cast<double>(s.loads) /
        static_cast<double>(s.instructions);
    const double stores = static_cast<double>(s.stores) /
        static_cast<double>(s.instructions);

    EXPECT_GT(branches, 0.03);
    EXPECT_LT(branches, 0.45);
    EXPECT_GT(loads, 0.04);
    EXPECT_LT(loads, 0.50);
    EXPECT_LT(stores, 0.30);
    // SPECint-plausible misprediction rates: not perfect, not chaos.
    EXPECT_LT(s.mispredictRate(), 0.35);
}

TEST_P(EveryWorkload, ProducersLinked)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 5000;
    cfg.seed = 1;
    Trace t = buildAnnotatedTrace(GetParam(), cfg);
    std::uint64_t linked = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = t[i].prod[slot];
            if (p != invalidInstId) {
                ASSERT_LT(p, i);  // producers strictly older
                ++linked;
            }
        }
    }
    // Real programs have dense dataflow.
    EXPECT_GT(linked, t.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EveryWorkload,
                         ::testing::ValuesIn(workloadNames()));

TEST(WorkloadCharacter, McfIsMemoryBound)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 20000;
    cfg.seed = 1;
    TraceStats s = buildAnnotatedTrace("mcf", cfg).stats();
    EXPECT_GT(s.l1MissRate(), 0.5);
}

TEST(WorkloadCharacter, VortexHitsInL1)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 20000;
    cfg.seed = 1;
    TraceStats s = buildAnnotatedTrace("vortex", cfg).stats();
    EXPECT_LT(s.l1MissRate(), 0.1);
}

TEST(WorkloadCharacter, EonUsesFloatingPoint)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 20000;
    cfg.seed = 1;
    TraceStats s = buildAnnotatedTrace("eon", cfg).stats();
    EXPECT_GT(s.fpOps, 20000u / 10);
}

TEST(WorkloadCharacter, GccHasLargeStaticFootprint)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 20000;
    cfg.seed = 1;
    Trace t = buildAnnotatedTrace("gcc", cfg);
    std::set<Addr> pcs;
    for (std::size_t i = 0; i < t.size(); ++i)
        pcs.insert(t[i].pc);
    std::set<Addr> vpr_pcs;
    Trace v = buildAnnotatedTrace("vpr", cfg);
    for (std::size_t i = 0; i < v.size(); ++i)
        vpr_pcs.insert(v[i].pc);
    EXPECT_GT(pcs.size(), 5 * vpr_pcs.size() / 2);
}

TEST(WorkloadCharacter, PerlMispredictsMoreThanVortex)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 30000;
    cfg.seed = 1;
    TraceStats perl = buildAnnotatedTrace("perl", cfg).stats();
    TraceStats vortex = buildAnnotatedTrace("vortex", cfg).stats();
    EXPECT_GT(perl.mispredictRate(), vortex.mispredictRate());
}

TEST(WorkloadRegistry, TwelveBenchmarks)
{
    EXPECT_EQ(workloadNames().size(), 12u);
    for (const std::string &n : workloadNames())
        EXPECT_NE(workloadBuilder(n), nullptr);
}

TEST(WorkloadRegistryDeath, UnknownNameFatals)
{
    EXPECT_EXIT(workloadBuilder("quake3"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

} // anonymous namespace
} // namespace csim
