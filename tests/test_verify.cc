/**
 * @file
 * Tests for the src/verify subsystem: the live pipeline invariant
 * checker, the post-hoc timing audit, the differential CPI oracles,
 * the fuzz input generators — and the timing-stat fixes the checker
 * work flushed out (priority-inversion semantics, priority-key
 * packing bounds, machine-config validation).
 *
 * The negative tests cover every invariant family by construction:
 * either auditTiming() over a deliberately corrupted copy of a real
 * run's timing, or a live checker built with a *stricter* geometry
 * than the simulator actually ran (the checker then flags exactly the
 * faults the gap injects — a dropped forwarding latency, an
 * oversubscribed window — without the core's own asserts firing).
 */

#include <gtest/gtest.h>

#include "verify/pipeline_checker.hh"

#include "harness/experiment.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "verify/oracle.hh"
#include "verify/random_trace.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

Trace
workloadTrace(const std::string &name, std::uint64_t n = 6000,
              std::uint64_t seed = 1)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = n;
    wcfg.seed = seed;
    return buildAnnotatedTrace(name, wcfg);
}

/** Run a trace with mod-n steering + age scheduling and a checker. */
SimResult
runChecked(const Trace &trace, const MachineConfig &machine,
           PipelineChecker &checker)
{
    ModNSteering steer;
    AgeScheduling age;
    SimOptions opt;
    opt.checker = &checker;
    return TimingSim(machine, trace, steer, age, nullptr, opt).run();
}

// ---------------------------------------------------------------------
// Live checker, clean paths.

TEST(PipelineChecker, CleanAcrossClusterCounts)
{
    const Trace trace = workloadTrace("gcc");
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(n);
        const MachineConfig machine = MachineConfig::clustered(n);
        PipelineCheckerOptions copt;
        copt.panicOnViolation = false;
        PipelineChecker checker(machine, trace, copt);
        const SimResult res = runChecked(trace, machine, checker);

        EXPECT_TRUE(checker.report().ok())
            << checker.report().firstDetail;
        EXPECT_EQ(checker.report().checkedInstructions, trace.size());
        EXPECT_EQ(checker.report().checkedCycles, res.cycles);

        // The audit agrees with the live view.
        const VerifyReport audit =
            auditTiming(trace, res.timing, machine);
        EXPECT_TRUE(audit.ok()) << audit.firstDetail;
        EXPECT_EQ(audit.checkedInstructions, trace.size());
    }
}

TEST(PipelineChecker, CleanAcrossPolicies)
{
    const Trace trace = workloadTrace("mcf", 4000);
    const MachineConfig machine = MachineConfig::clustered(4);
    ExperimentConfig cfg;
    cfg.verify.checker = true;   // panicOnViolation defaults to true
    for (PolicyKind kind :
         {PolicyKind::ModN, PolicyKind::LoadBal, PolicyKind::Dep,
          PolicyKind::Focused, PolicyKind::FocusedLocStall}) {
        SCOPED_TRACE(policyName(kind));
        const PolicyRun run = runPolicy(trace, machine, kind, cfg);
        EXPECT_EQ(run.checkerViolations, 0u);
        // The checker's counters land in the run's registry.
        EXPECT_EQ(run.sim.stats.value("verify.checkedInstructions"),
                  static_cast<double>(trace.size()));
        EXPECT_EQ(run.sim.stats.value("verify.violations"), 0.0);
    }
}

TEST(PipelineChecker, CleanOnRandomTraces)
{
    for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
        SCOPED_TRACE(seed);
        Rng rng(seed);
        const MachineConfig machine = randomMachineConfig(rng);
        const Trace trace = randomTrace(rng, 1500);
        PipelineCheckerOptions copt;
        copt.panicOnViolation = false;
        PipelineChecker checker(machine, trace, copt);
        const SimResult res = runChecked(trace, machine, checker);
        EXPECT_TRUE(checker.report().ok())
            << checker.report().firstDetail;
        EXPECT_TRUE(auditTiming(trace, res.timing, machine).ok());
    }
}

// ---------------------------------------------------------------------
// Negative tests: one per invariant family. A checker (or audit)
// holding the machine to a stricter geometry than it ran must flag
// the corresponding fault class.

TEST(PipelineCheckerNegative, DroppedForwardingLatencyLive)
{
    const Trace trace = workloadTrace("gzip", 3000);
    MachineConfig ran = MachineConfig::clustered(4);
    ran.fwdLatency = 0;          // the "bug": bypass latency dropped
    MachineConfig intended = ran;
    intended.fwdLatency = 2;

    PipelineCheckerOptions copt;
    copt.panicOnViolation = false;
    PipelineChecker checker(intended, trace, copt);
    const SimResult res = runChecked(trace, ran, checker);

    EXPECT_GT(checker.report().count(Invariant::Bypass), 0u)
        << "no cross-cluster operand issued early?";
    // Same fault through the post-hoc audit.
    const VerifyReport audit =
        auditTiming(trace, res.timing, intended);
    EXPECT_GT(audit.count(Invariant::Bypass), 0u);
}

TEST(PipelineCheckerNegative, SteerIntoFullWindowLive)
{
    const Trace trace = workloadTrace("gzip", 2000);
    const MachineConfig ran = MachineConfig::clustered(2);
    MachineConfig intended = ran;
    intended.windowPerCluster = 2;   // claims a tiny window

    PipelineCheckerOptions copt;
    copt.panicOnViolation = false;
    PipelineChecker checker(intended, trace, copt);
    const SimResult res = runChecked(trace, ran, checker);

    EXPECT_GT(checker.report().count(Invariant::Occupancy), 0u);
    EXPECT_GT(auditTiming(trace, res.timing, intended)
                  .count(Invariant::Occupancy),
              0u);
}

TEST(PipelineCheckerNegative, RobOverflow)
{
    const Trace trace = workloadTrace("gzip", 2000);
    const MachineConfig ran = MachineConfig::monolithic();
    MachineConfig intended = ran;
    intended.robEntries = 4;

    PipelineCheckerOptions copt;
    copt.panicOnViolation = false;
    PipelineChecker checker(intended, trace, copt);
    const SimResult res = runChecked(trace, ran, checker);

    EXPECT_GT(checker.report().count(Invariant::Rob), 0u);
    EXPECT_GT(
        auditTiming(trace, res.timing, intended).count(Invariant::Rob),
        0u);
}

TEST(PipelineCheckerNegative, IssueWidthOverrun)
{
    const Trace trace = workloadTrace("gzip", 2000);
    const MachineConfig ran = MachineConfig::monolithic();
    MachineConfig intended = ran;
    intended.cluster.issueWidth = 1;
    intended.cluster.intPorts = 1;

    PipelineCheckerOptions copt;
    copt.panicOnViolation = false;
    PipelineChecker checker(intended, trace, copt);
    const SimResult res = runChecked(trace, ran, checker);

    EXPECT_GT(checker.report().count(Invariant::Width), 0u);
    EXPECT_GT(auditTiming(trace, res.timing, intended)
                  .count(Invariant::Width),
              0u);
}

TEST(PipelineCheckerNegative, TamperedMonotoneStamp)
{
    const Trace trace = workloadTrace("gzip", 1000);
    const MachineConfig machine = MachineConfig::monolithic();
    PipelineCheckerOptions copt;
    copt.panicOnViolation = false;
    PipelineChecker checker(machine, trace, copt);
    SimResult res = runChecked(trace, machine, checker);
    ASSERT_TRUE(auditTiming(trace, res.timing, machine).ok());

    // An instruction "ready" before its operands were even renamed.
    std::vector<InstTiming> tampered = res.timing;
    tampered[500].ready = tampered[500].dispatch;
    EXPECT_GT(auditTiming(trace, tampered, machine)
                  .count(Invariant::Monotone),
              0u);

    // A completion that ignores the execution latency.
    tampered = res.timing;
    tampered[500].complete = tampered[500].issue;
    EXPECT_GT(auditTiming(trace, tampered, machine)
                  .count(Invariant::Monotone),
              0u);

    // A stamp never filled in.
    tampered = res.timing;
    tampered[500].commit = invalidCycle;
    EXPECT_GT(auditTiming(trace, tampered, machine)
                  .count(Invariant::Monotone),
              0u);
}

TEST(PipelineCheckerNegative, TamperedCommitOrder)
{
    const Trace trace = workloadTrace("gzip", 1000);
    const MachineConfig machine = MachineConfig::monolithic();
    ModNSteering steer;
    AgeScheduling age;
    SimResult res = TimingSim(machine, trace, steer, age).run();

    // Retire an old instruction after a much younger one.
    std::vector<InstTiming> tampered = res.timing;
    std::swap(tampered[400].commit, tampered[600].commit);
    const VerifyReport audit = auditTiming(trace, tampered, machine);
    EXPECT_GT(audit.count(Invariant::Order), 0u);
}

// ---------------------------------------------------------------------
// Priority-inversion accounting (the stat the checker work fixed:
// same-class age bypasses are port contention, not inversions).

/** Loads outrank everything; all else is one class below. */
class LoadsFirstScheduling : public SchedulingPolicy
{
  public:
    std::uint32_t
    priorityClass(const TraceRecord &rec) override
    {
        return rec.isLoad() ? 0 : 1;
    }
    const char *name() const override { return "loads-first"; }
};

Trace
contendedTrace()
{
    // Two independent loads plus four independent adds, all ready in
    // the same cycle. One memory port: the second load is denied
    // while the lower-class adds issue.
    Trace t;
    for (int i = 0; i < 2; ++i) {
        TraceRecord rec;
        rec.op = Opcode::Ld;
        rec.cls = OpClass::Load;
        rec.execLat = 3;
        rec.dest = static_cast<RegIndex>(1 + i);
        t.append(rec);
    }
    for (int i = 0; i < 4; ++i) {
        TraceRecord rec;
        rec.op = Opcode::Add;
        rec.cls = OpClass::IntAlu;
        rec.execLat = 1;
        rec.dest = static_cast<RegIndex>(10 + i);
        t.append(rec);
    }
    EXPECT_TRUE(t.wellFormed());
    return t;
}

MachineConfig
oneMemPortMachine()
{
    MachineConfig m = MachineConfig::monolithic();
    m.cluster.memPorts = 1;
    return m;
}

TEST(PriorityInversions, CrossClassBypassCounts)
{
    const Trace trace = contendedTrace();
    ModNSteering steer;
    LoadsFirstScheduling sched;
    SimResult res =
        TimingSim(oneMemPortMachine(), trace, steer, sched).run();
    // The denied load (class 0) was bypassed by four class-1 adds.
    EXPECT_GE(res.stats.value("sched.priorityInversions"), 1.0);
}

TEST(PriorityInversions, SameClassContentionDoesNotCount)
{
    const Trace trace = contendedTrace();
    ModNSteering steer;
    AgeScheduling age;    // everything in class 0
    SimResult res =
        TimingSim(oneMemPortMachine(), trace, steer, age).run();
    // The same port conflict occurs (second load is denied while
    // younger adds issue), but within one scheduling class that is
    // ordinary contention — the fixed stat must stay zero.
    EXPECT_GT(res.stats.value("sched.replayEvents"), 0.0);
    EXPECT_EQ(res.stats.value("sched.priorityInversions"), 0.0);
}

// ---------------------------------------------------------------------
// Priority-key packing bounds.

TEST(PrioKey, PacksClassAboveAge)
{
    EXPECT_LT(makePrioKey(0, 999), makePrioKey(1, 0));
    EXPECT_LT(makePrioKey(2, 0), makePrioKey(2, 1));
    EXPECT_EQ(prioKeyClass(makePrioKey(7, 123)), 7u);
    EXPECT_EQ(prioKeyClass(makePrioKey(maxPriorityClass,
                                       maxTraceInstructions - 1)),
              maxPriorityClass);
}

TEST(PrioKeyDeath, RejectsOverflowingId)
{
    EXPECT_DEATH((void)makePrioKey(0, maxTraceInstructions),
                 "assertion failed");
}

TEST(PrioKeyDeath, RejectsOverflowingClass)
{
    EXPECT_DEATH((void)makePrioKey(maxPriorityClass + 1, 0),
                 "assertion failed");
}

// ---------------------------------------------------------------------
// Machine-config validation.

TEST(MachineConfigValidation, AcceptsPaperGeometries)
{
    EXPECT_EQ(MachineConfig::monolithic().validationError(), "");
    for (unsigned n : {2u, 4u, 8u})
        EXPECT_EQ(MachineConfig::clustered(n).validationError(), "");
    EXPECT_EQ(MachineConfig::generic(16, 1).validationError(), "");
}

TEST(MachineConfigValidation, RejectsMaskOverflowingClusterCounts)
{
    MachineConfig bad = MachineConfig::generic(16, 1);
    bad.numClusters = 17;
    EXPECT_NE(bad.validationError(), "");
    bad.numClusters = 0;
    EXPECT_NE(bad.validationError(), "");
}

TEST(MachineConfigValidation, RejectsZeroResources)
{
    MachineConfig bad = MachineConfig::monolithic();
    bad.cluster.memPorts = 0;
    EXPECT_NE(bad.validationError(), "");

    bad = MachineConfig::monolithic();
    bad.windowPerCluster = 0;
    EXPECT_NE(bad.validationError(), "");

    bad = MachineConfig::monolithic();
    bad.commitWidth = 0;
    EXPECT_NE(bad.validationError(), "");
}

TEST(MachineConfigValidationDeath, SimRejectsInvalidConfig)
{
    MachineConfig bad = MachineConfig::monolithic();
    bad.numClusters = 17;
    const Trace trace = workloadTrace("gzip", 200);
    ModNSteering steer;
    AgeScheduling age;
    EXPECT_EXIT((void)TimingSim(bad, trace, steer, age),
                testing::ExitedWithCode(1), "invalid machine config");
}

// ---------------------------------------------------------------------
// Differential oracles.

TEST(Oracle, EnvelopeSumsClusterResources)
{
    const MachineConfig env =
        monolithicEnvelope(MachineConfig::clustered(8));
    EXPECT_EQ(env.numClusters, 1u);
    EXPECT_EQ(env.cluster.issueWidth, 8u);
    // clustered(8) rounds fp/mem ports up to 1 per cluster, so the
    // envelope owns 8 of each — more than the paper's 1x8w baseline.
    EXPECT_EQ(env.cluster.fpPorts, 8u);
    EXPECT_EQ(env.cluster.memPorts, 8u);
    EXPECT_EQ(env.windowPerCluster, 128u);
    EXPECT_EQ(env.fwdLatency, 0u);
    EXPECT_EQ(env.validationError(), "");
}

TEST(Oracle, BoundChecks)
{
    EXPECT_TRUE(checkCpiLowerBound(1.0, 0.9, 0.0, "x").ok);
    EXPECT_TRUE(checkCpiLowerBound(0.99, 1.0, 0.02, "x").ok);
    const OracleCheck bad = checkCpiLowerBound(0.5, 1.0, 0.02, "x");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.detail.find("x"), std::string::npos);

    const MachineConfig mono = MachineConfig::monolithic();
    EXPECT_TRUE(checkCpiFloor(0.125, mono).ok);
    EXPECT_FALSE(checkCpiFloor(0.1, mono).ok);
}

TEST(Oracle, DifferentialBoundsHoldOnPolicyCells)
{
    const Trace trace = workloadTrace("vpr", 4000);
    ExperimentConfig cfg;
    cfg.verify.checker = true;
    cfg.verify.oracle = true;   // violations are fatal: surviving the
                                // calls is the assertion
    for (unsigned n : {1u, 2u, 4u}) {
        SCOPED_TRACE(n);
        const AggregateResult agg = runPolicyCell(
            trace, MachineConfig::clustered(n), PolicyKind::Dep, cfg);
        EXPECT_GT(agg.cpi(), 0.0);
    }
}

// ---------------------------------------------------------------------
// Fuzz input generators.

TEST(RandomInputs, ConfigsAreValidAndDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        Rng rng(seed);
        const MachineConfig c = randomMachineConfig(rng);
        EXPECT_EQ(c.validationError(), "") << "seed " << seed;
        EXPECT_LE(c.numClusters, maxClusters);
    }
    Rng a(42), b(42);
    const MachineConfig ca = randomMachineConfig(a);
    const MachineConfig cb = randomMachineConfig(b);
    EXPECT_EQ(ca.name(), cb.name());
    EXPECT_EQ(ca.robEntries, cb.robEntries);
}

TEST(RandomInputs, TracesAreWellFormedAndDeterministic)
{
    Rng a(5), b(5);
    const Trace ta = randomTrace(a, 2000);
    const Trace tb = randomTrace(b, 2000);
    ASSERT_EQ(ta.size(), 2000u);
    EXPECT_TRUE(ta.wellFormed());
    for (std::size_t i : {0ul, 500ul, 1999ul}) {
        EXPECT_EQ(ta[i].op, tb[i].op);
        EXPECT_EQ(ta[i].prod, tb[i].prod);
    }
    // A different seed produces a different instruction stream.
    Rng c(6);
    const Trace tc = randomTrace(c, 2000);
    bool differs = false;
    for (std::size_t i = 0; i < tc.size() && !differs; ++i)
        differs = tc[i].op != ta[i].op;
    EXPECT_TRUE(differs);
}

} // anonymous namespace
} // namespace csim
