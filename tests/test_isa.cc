/**
 * @file
 * Unit tests for src/isa: opcode metadata, the instruction format and
 * the Program builder (labels, fixups, disassembly).
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "isa/program.hh"

namespace csim {
namespace {

TEST(Opcode, ClassesMatchPorts)
{
    EXPECT_EQ(opClass(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClass(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opClass(Opcode::Ld), OpClass::Load);
    EXPECT_EQ(opClass(Opcode::St), OpClass::Store);
    EXPECT_EQ(opClass(Opcode::Fadd), OpClass::FpAlu);
    EXPECT_EQ(opClass(Opcode::Fdiv), OpClass::FpDiv);
    EXPECT_EQ(opClass(Opcode::Beq), OpClass::IntAlu);
}

TEST(Opcode, Alpha21264Latencies)
{
    EXPECT_EQ(opLatency(Opcode::Add), 1u);
    EXPECT_EQ(opLatency(Opcode::Mul), 7u);
    EXPECT_EQ(opLatency(Opcode::Ld), 3u);   // load-to-use
    EXPECT_EQ(opLatency(Opcode::Fadd), 4u);
    EXPECT_EQ(opLatency(Opcode::Fdiv), 12u);
    EXPECT_EQ(opLatency(Opcode::Beq), 1u);
}

TEST(Opcode, BranchPredicates)
{
    EXPECT_TRUE(isBranch(Opcode::Beq));
    EXPECT_TRUE(isBranch(Opcode::Bne));
    EXPECT_TRUE(isBranch(Opcode::Jmp));
    EXPECT_FALSE(isBranch(Opcode::Add));
    EXPECT_TRUE(isCondBranch(Opcode::Beq));
    EXPECT_FALSE(isCondBranch(Opcode::Jmp));
}

TEST(Opcode, DestWriting)
{
    EXPECT_TRUE(writesDest(Opcode::Add));
    EXPECT_TRUE(writesDest(Opcode::Ld));
    EXPECT_FALSE(writesDest(Opcode::St));
    EXPECT_FALSE(writesDest(Opcode::Beq));
    EXPECT_FALSE(writesDest(Opcode::Nop));
}

TEST(Opcode, PortClassHelpers)
{
    EXPECT_TRUE(isIntClass(OpClass::IntAlu));
    EXPECT_TRUE(isIntClass(OpClass::IntMul));
    EXPECT_TRUE(isFpClass(OpClass::FpAlu));
    EXPECT_TRUE(isFpClass(OpClass::FpDiv));
    EXPECT_TRUE(isMemClass(OpClass::Load));
    EXPECT_TRUE(isMemClass(OpClass::Store));
    EXPECT_FALSE(isMemClass(OpClass::IntAlu));
}

TEST(Opcode, NamesExist)
{
    for (int op = 0;
         op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        EXPECT_FALSE(opName(static_cast<Opcode>(op)).empty());
    }
}

TEST(Instruction, SourceCounts)
{
    Instruction add{Opcode::Add, 1, 2, 3, 0};
    EXPECT_EQ(add.numSrcs(), 2);
    Instruction addi{Opcode::Addi, 1, 2, zeroReg, 5};
    EXPECT_EQ(addi.numSrcs(), 1);
    Instruction lui{Opcode::Lui, 1, zeroReg, zeroReg, 5};
    EXPECT_EQ(lui.numSrcs(), 0);
    Instruction st{Opcode::St, zeroReg, 1, 2, 0};
    EXPECT_EQ(st.numSrcs(), 2);
}

TEST(Instruction, ZeroRegHasNoDest)
{
    Instruction to_zero{Opcode::Add, zeroReg, 1, 2, 0};
    EXPECT_FALSE(to_zero.hasDest());
    Instruction normal{Opcode::Add, 5, 1, 2, 0};
    EXPECT_TRUE(normal.hasDest());
}

TEST(Program, RegisterHelpers)
{
    EXPECT_EQ(Program::r(0), 0);
    EXPECT_EQ(Program::r(31), 31);
    EXPECT_EQ(Program::f(0), numIntRegs);
    EXPECT_EQ(Program::f(5), numIntRegs + 5);
}

TEST(Program, BuildsAndFinalizes)
{
    Program p;
    Label top = p.newLabel();
    p.bind(top);
    p.add(Program::r(1), Program::r(2), Program::r(3));
    p.bne(Program::r(1), top);
    p.halt();
    p.finalize();

    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.at(1).op, Opcode::Bne);
    EXPECT_EQ(p.at(1).imm, 0);  // patched to instruction index 0
    EXPECT_TRUE(p.finalized());
}

TEST(Program, ForwardLabel)
{
    Program p;
    Label skip = p.newLabel();
    p.beq(Program::r(1), skip);
    p.addi(Program::r(2), Program::r(2), 1);
    p.bind(skip);
    p.halt();
    p.finalize();
    EXPECT_EQ(p.at(0).imm, 2);
}

TEST(Program, DisassemblyMentionsOpsAndRegs)
{
    Program p;
    p.ld(Program::r(4), Program::r(2), 16);
    p.fadd(Program::f(1), Program::f(2), Program::f(3));
    p.halt();
    p.finalize();
    const std::string d = p.disassemble();
    EXPECT_NE(d.find("ld r4, 16(r2)"), std::string::npos);
    EXPECT_NE(d.find("fadd f1, f2, f3"), std::string::npos);
}

TEST(ProgramDeath, ModifyAfterFinalizePanics)
{
    Program p;
    p.halt();
    p.finalize();
    EXPECT_DEATH(p.nop(), "finalize");
}

TEST(ProgramDeath, UnboundLabelFatals)
{
    Program p;
    Label l = p.newLabel();
    p.jmp(l);
    EXPECT_EXIT(p.finalize(), ::testing::ExitedWithCode(1),
                "unbound label");
}

} // anonymous namespace
} // namespace csim
