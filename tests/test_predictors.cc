/**
 * @file
 * Unit tests for the criticality predictors: the binary Fields
 * predictor (6-bit, +8/-1, threshold 8) and the 16-level LoC
 * predictor with probabilistic 4-bit counters.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predict/criticality_predictor.hh"
#include "predict/loc_predictor.hh"

namespace csim {
namespace {

TEST(CriticalityPredictor, ColdPredictsNotCritical)
{
    CriticalityPredictor pred;
    EXPECT_FALSE(pred.predict(0x1000));
}

TEST(CriticalityPredictor, OneCriticalInstanceSufficesBriefly)
{
    CriticalityPredictor pred;
    pred.train(0x1000, true);
    EXPECT_TRUE(pred.predict(0x1000));   // counter jumped to 8
    // Seven non-critical instances decay back below threshold.
    for (int i = 0; i < 7; ++i)
        pred.train(0x1000, false);
    EXPECT_FALSE(pred.predict(0x1000));
}

TEST(CriticalityPredictor, OneInEightStaysCritical)
{
    // The paper's footnote 6: 1 in 8 instances critical is enough to
    // stay classified critical.
    CriticalityPredictor pred;
    for (int round = 0; round < 30; ++round) {
        pred.train(0x2000, true);
        // Right after a critical instance the prediction holds.
        EXPECT_TRUE(pred.predict(0x2000)) << "round " << round;
        for (int i = 0; i < 7; ++i)
            pred.train(0x2000, false);
        // The +8/-1 counter nets +1 per 1-in-8 round, so after enough
        // rounds the prediction survives even the decay phase.
        if (round >= 14) {
            EXPECT_TRUE(pred.predict(0x2000)) << "round " << round;
        }
    }
}

TEST(CriticalityPredictor, OneInSixteenDecays)
{
    CriticalityPredictor pred;
    bool late_predicts = true;
    for (int round = 0; round < 30; ++round) {
        pred.train(0x3000, true);
        for (int i = 0; i < 15; ++i)
            pred.train(0x3000, false);
        if (round >= 10)
            late_predicts = late_predicts && pred.predict(0x3000);
    }
    // At 1-in-16 the +8/-16 balance is negative: not critical after
    // each full round.
    EXPECT_FALSE(late_predicts);
}

TEST(CriticalityPredictor, SeparatePcsIndependent)
{
    CriticalityPredictor pred;
    pred.train(0x1000, true);
    EXPECT_TRUE(pred.predict(0x1000));
    EXPECT_FALSE(pred.predict(0x1004));
}

TEST(CriticalityPredictor, ResetClears)
{
    CriticalityPredictor pred;
    pred.train(0x1000, true);
    pred.reset();
    EXPECT_FALSE(pred.predict(0x1000));
    EXPECT_EQ(pred.counterValue(0x1000), 0u);
}

TEST(CriticalityPredictor, CounterSaturatesAt6Bits)
{
    CriticalityPredictor pred;
    for (int i = 0; i < 100; ++i)
        pred.train(0x1000, true);
    EXPECT_EQ(pred.counterValue(0x1000), 63u);
}

TEST(LocPredictor, ColdIsZero)
{
    LocPredictor loc;
    EXPECT_EQ(loc.level(0x1000), 0u);
    EXPECT_DOUBLE_EQ(loc.estimate(0x1000), 0.0);
}

class LocPredictorFreq : public ::testing::TestWithParam<double>
{};

TEST_P(LocPredictorFreq, TracksCriticalityFrequency)
{
    const double f = GetParam();
    LocPredictor loc;
    Rng data(99);
    const Addr pc = 0x4000;

    double sum = 0.0;
    int samples = 0;
    for (int i = 0; i < 50000; ++i) {
        loc.train(pc, data.uniform() < f);
        if (i >= 20000) {
            sum += loc.estimate(pc);
            ++samples;
        }
    }
    EXPECT_NEAR(sum / samples, f, 0.09) << "frequency " << f;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, LocPredictorFreq,
                         ::testing::Values(0.05, 0.2, 0.4, 0.6, 0.8,
                                           0.95));

TEST(LocPredictor, SixteenLevelsInRange)
{
    LocPredictor loc;
    Rng data(5);
    for (int i = 0; i < 10000; ++i) {
        loc.train(0x5000, data.chance(1, 2));
        ASSERT_LT(loc.level(0x5000), 16u);
    }
    EXPECT_EQ(loc.levels(), 16u);
}

TEST(LocPredictor, ResetClears)
{
    LocPredictor loc;
    for (int i = 0; i < 100; ++i)
        loc.train(0x1000, true);
    EXPECT_GT(loc.level(0x1000), 0u);
    loc.reset();
    EXPECT_EQ(loc.level(0x1000), 0u);
}

TEST(LocPredictor, DistinguishesDegreesOfCriticality)
{
    // The whole point of LoC (paper Sec. 4): an 80%-critical and a
    // 25%-critical instruction, both "critical" to the binary
    // predictor, should separate clearly.
    LocPredictor loc;
    Rng data(31);
    for (int i = 0; i < 30000; ++i) {
        loc.train(0x100, data.uniform() < 0.8);
        loc.train(0x200, data.uniform() < 0.25);
    }
    EXPECT_GT(loc.level(0x100), loc.level(0x200));
    EXPECT_GE(loc.estimate(0x100), 0.55);
    EXPECT_LE(loc.estimate(0x200), 0.5);
}

} // anonymous namespace
} // namespace csim
