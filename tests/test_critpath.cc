/**
 * @file
 * Tests for the critical-path machinery: attribution exactness,
 * category semantics, the online trainer and the consumer analysis.
 */

#include <gtest/gtest.h>

#include "core/timing_sim.hh"
#include "critpath/attribution.hh"
#include "critpath/consumer_analysis.hh"
#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "mem/latency_annotator.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

const auto r = Program::r;

Trace
prepare(const Program &p)
{
    Emulator emu(p);
    Trace t = emu.run(100000);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    return t;
}

SimResult
run(const Trace &t, const MachineConfig &mc)
{
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    return TimingSim(mc, t, steer, age).run();
}

TEST(CritPath, AttributionSumsToRuntime)
{
    for (const char *wl : {"vpr", "gzip", "mcf"}) {
        SCOPED_TRACE(wl);
        WorkloadConfig wcfg;
        wcfg.targetInstructions = 10000;
        wcfg.seed = 2;
        Trace t = buildAnnotatedTrace(wl, wcfg);
        for (unsigned n : {1u, 2u, 4u, 8u}) {
            SCOPED_TRACE(n);
            MachineConfig mc = n == 1 ? MachineConfig::monolithic()
                                      : MachineConfig::clustered(n);
            SimResult res = run(t, mc);
            CpBreakdown bd = analyzeFullRun(t, res, mc);
            EXPECT_EQ(bd.total(), res.timing.back().commit);
        }
    }
}

TEST(CritPath, SerialChainIsExecuteCritical)
{
    Program p;
    for (int i = 0; i < 400; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    MachineConfig mc = MachineConfig::monolithic();
    SimResult res = run(t, mc);
    CpBreakdown bd = analyzeFullRun(t, res, mc);

    // The chain dominates: execute cycles ~ instruction count.
    EXPECT_GT(bd[CpCategory::Execute],
              static_cast<std::uint64_t>(0.8 * 400));
    EXPECT_EQ(bd[CpCategory::FwdDelay], 0u);
}

TEST(CritPath, IndependentWorkIsFetchBound)
{
    Program p;
    for (int i = 0; i < 50; ++i)
        for (int j = 1; j <= 8; ++j)
            p.addi(r(j), r(j), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    MachineConfig mc = MachineConfig::monolithic();
    SimResult res = run(t, mc);
    CpBreakdown bd = analyzeFullRun(t, res, mc);

    // 400 independent-chain instructions at 8 wide: the front end is
    // the constraint.
    EXPECT_GT(bd[CpCategory::Fetch], bd[CpCategory::Execute]);
}

TEST(CritPath, MissLatencyAttributedToMemory)
{
    // Serial pointer chase over a large region: misses dominate.
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 0x100000);
    p.lui(r(2), 600);
    p.bind(loop);
    p.ld(r(1), r(1), 0);
    p.addi(r(2), r(2), -1);
    p.bne(r(2), loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    // Pointer cycle with a large stride to defeat the 32KB L1.
    const Addr base = 0x100000;
    const std::uint64_t nodes = 4096;
    for (std::uint64_t i = 0; i < nodes; ++i) {
        emu.poke(base + i * 8,
                 static_cast<std::int64_t>(
                     base + ((i + 577) % nodes) * 8));
    }
    Trace t = emu.run(100000);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);

    MachineConfig mc = MachineConfig::monolithic();
    SimResult res = run(t, mc);
    CpBreakdown bd = analyzeFullRun(t, res, mc);
    EXPECT_GT(bd[CpCategory::MemLatency], bd.total() / 2);
}

TEST(CritPath, MispredictsAttributedToBranches)
{
    // A loop whose only long-latency events are forced mispredicts.
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 300);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i].isCondBranch)
            t[i].mispredicted = true;

    MachineConfig mc = MachineConfig::monolithic();
    SimResult res = run(t, mc);
    CpBreakdown bd = analyzeFullRun(t, res, mc);
    // Each iteration pays a redirect: the dominant category.
    EXPECT_GT(bd[CpCategory::BrMispredict], bd.total() / 2);
}

TEST(CritPath, ForwardingAttributedWhenChainsSplit)
{
    Program p;
    for (int i = 0; i < 200; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    // Mod-N steering alternates the chain across clusters: every link
    // pays the bypass.
    ModNSteering modn;
    AgeScheduling age;
    MachineConfig mc = MachineConfig::clustered(2);
    SimResult res = TimingSim(mc, t, modn, age).run();
    CpBreakdown bd = analyzeFullRun(t, res, mc);
    EXPECT_GT(bd[CpCategory::FwdDelay],
              static_cast<std::uint64_t>(150 * mc.fwdLatency));
}

TEST(CritPath, ChunkedGroundTruthCoversTrace)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 9000;
    wcfg.seed = 3;
    Trace t = buildAnnotatedTrace("vpr", wcfg);
    MachineConfig mc = MachineConfig::clustered(4);
    SimResult res = run(t, mc);

    std::vector<bool> crit = criticalityGroundTruth(t, res, mc, 2048);
    ASSERT_EQ(crit.size(), t.size());
    std::uint64_t critical = 0;
    for (bool b : crit)
        if (b)
            ++critical;
    // Some instructions are critical, but not all.
    EXPECT_GT(critical, t.size() / 100);
    EXPECT_LT(critical, t.size());
}

TEST(CritPath, TrainerSeesEveryInstruction)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 7000;
    wcfg.seed = 1;
    Trace t = buildAnnotatedTrace("gcc", wcfg);

    CriticalityPredictor crit;
    LocPredictor loc;
    OnlineCriticalityTrainer trainer(t, &crit, &loc, 1024);
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    TimingSim sim(MachineConfig::clustered(4), t, steer, age,
                  &trainer);
    (void)sim.run();

    EXPECT_EQ(trainer.trainedTotal(), t.size());
    EXPECT_GT(trainer.trainedCritical(), 0u);
    EXPECT_LT(trainer.trainedCritical(), t.size());
    EXPECT_EQ(trainer.chunksAnalyzed(),
              (t.size() + 1023) / 1024);
}

TEST(CritPath, CategoryNamesComplete)
{
    for (std::size_t c = 0; c < numCpCategories; ++c) {
        EXPECT_NE(cpCategoryName(static_cast<CpCategory>(c)),
                  nullptr);
    }
}

TEST(ConsumerAnalysis, SyntheticSelfRecurrence)
{
    // Fig. 12/13 shape: a loop-carried counter whose most critical
    // consumer is the next instance of itself (the last consumer in
    // fetch order), plus a throwaway first consumer.
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 2000);
    p.bind(loop);
    p.addi(r(2), r(1), 5);          // dead-end consumer
    p.addi(r(1), r(1), -1);         // the recurrence (2-deep per
    p.addi(r(1), r(1), 0);          //  iteration: execute-critical)
    p.bne(r(1), loop);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    MachineConfig mc = MachineConfig::monolithic();
    SimResult res = run(t, mc);
    ConsumerAnalysis ca = analyzeConsumers(t, res, mc);

    EXPECT_GT(ca.valuesAnalyzed, 1000u);
    EXPECT_GT(ca.multiConsumerValues, 1000u);
    // The critical consumer (the decrement) is not first in fetch
    // order for essentially every value.
    EXPECT_GT(ca.mostCriticalNotFirstFraction, 0.9);
    // And it is statically unique.
    EXPECT_GT(ca.staticallyUniqueFraction, 0.9);
}

TEST(ConsumerAnalysis, RunsOnRealWorkload)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 8000;
    wcfg.seed = 2;
    Trace t = buildAnnotatedTrace("parser", wcfg);
    MachineConfig mc = MachineConfig::monolithic();
    SimResult res = run(t, mc);
    ConsumerAnalysis ca = analyzeConsumers(t, res, mc);
    EXPECT_GT(ca.valuesAnalyzed, 0u);
    EXPECT_GE(ca.staticallyUniqueFraction, 0.0);
    EXPECT_LE(ca.staticallyUniqueFraction, 1.0);
    EXPECT_GT(ca.tendency.total(), 0u);
}

} // anonymous namespace
} // namespace csim
