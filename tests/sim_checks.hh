/**
 * @file
 * Shared test helpers: machine-invariant validation of a timing-sim
 * result, used by the unit, integration and property suites.
 */

#ifndef CSIM_TESTS_SIM_CHECKS_HH
#define CSIM_TESTS_SIM_CHECKS_HH

#include <gtest/gtest.h>

#include <map>

#include "core/machine_config.hh"
#include "core/timing.hh"
#include "isa/opcode.hh"
#include "trace/trace.hh"

namespace csim {

/**
 * Check every microarchitectural invariant the clustered machine must
 * honour, per instruction and per cycle:
 *  - pipeline ordering: fetch <= dispatch (>= fetch+depth), ready >=
 *    dispatch+1, issue >= ready, complete == issue + latency, commit >
 *    complete;
 *  - in-order dispatch and commit, commit width respected;
 *  - operands available at issue (producer complete + forwarding);
 *  - per-cluster issue width and int/fp/mem port limits per cycle;
 *  - cluster ids within range.
 */
inline void
validateTiming(const Trace &trace, const SimResult &result,
               const MachineConfig &config)
{
    ASSERT_EQ(result.timing.size(), trace.size());

    struct CycleUse
    {
        unsigned total = 0;
        unsigned intU = 0;
        unsigned fpU = 0;
        unsigned memU = 0;
    };
    // (cluster, cycle) -> usage
    std::map<std::pair<ClusterId, Cycle>, CycleUse> usage;
    std::map<Cycle, unsigned> commits_per_cycle;

    Cycle prev_dispatch = 0;
    Cycle prev_commit = 0;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &rec = trace[i];
        const InstTiming &t = result.timing[i];
        SCOPED_TRACE("instruction " + std::to_string(i));

        ASSERT_NE(t.fetch, invalidCycle);
        ASSERT_NE(t.dispatch, invalidCycle);
        ASSERT_NE(t.issue, invalidCycle);
        ASSERT_NE(t.complete, invalidCycle);
        ASSERT_NE(t.commit, invalidCycle);
        ASSERT_LT(t.cluster, config.numClusters);

        EXPECT_GE(t.dispatch, t.fetch + config.frontendDepth);
        EXPECT_GE(t.ready, t.dispatch + 1);
        EXPECT_GE(t.issue, t.ready);
        EXPECT_EQ(t.complete, t.issue + rec.execLat);
        EXPECT_GT(t.commit, t.complete);

        // In-order dispatch and commit.
        EXPECT_GE(t.dispatch, prev_dispatch);
        EXPECT_GE(t.commit, prev_commit);
        prev_dispatch = t.dispatch;
        prev_commit = t.commit;
        ++commits_per_cycle[t.commit];

        // Operand availability at issue.
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = rec.prod[slot];
            if (p == invalidInstId)
                continue;
            const InstTiming &pt = result.timing[p];
            Cycle avail = pt.complete;
            if (slot != srcSlotMem && pt.cluster != t.cluster)
                avail += config.fwdLatency;
            EXPECT_GE(t.issue, avail)
                << "operand " << slot << " from " << p
                << " not available at issue";
        }

        CycleUse &u = usage[{t.cluster, t.issue}];
        ++u.total;
        if (isIntClass(rec.cls))
            ++u.intU;
        else if (isFpClass(rec.cls))
            ++u.fpU;
        else
            ++u.memU;
    }

    for (const auto &[key, u] : usage) {
        SCOPED_TRACE("cluster " + std::to_string(key.first) +
                     " cycle " + std::to_string(key.second));
        EXPECT_LE(u.total, config.cluster.issueWidth);
        EXPECT_LE(u.intU, config.cluster.intPorts);
        EXPECT_LE(u.fpU, config.cluster.fpPorts);
        EXPECT_LE(u.memU, config.cluster.memPorts);
    }

    for (const auto &[cycle, n] : commits_per_cycle) {
        SCOPED_TRACE("commit cycle " + std::to_string(cycle));
        EXPECT_LE(n, config.commitWidth);
    }

    EXPECT_EQ(result.instructions, trace.size());
    if (!trace.empty()) {
        EXPECT_EQ(result.cycles, result.timing.back().commit + 1);
    }
}

} // namespace csim

#endif // CSIM_TESTS_SIM_CHECKS_HH
