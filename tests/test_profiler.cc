/**
 * @file
 * Interval-profiler tests: the components-sum-to-cycles invariant on
 * every interval of every tested (workload x clusters x policy) cell,
 * event-count conservation against the run totals, the profiler.*
 * registry entries and criticality-scoring telemetry, composition with
 * the pipeline checker on one observer chain, byte-identical interval
 * aggregates across sweep thread counts, the Chrome trace-event
 * emitter's structure, prefix-filtered snapshots, and the schema-v3
 * "intervals" emission through BenchContext.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/timing_sim.hh"
#include "harness/json_report.hh"
#include "harness/sweep.hh"
#include "obs/chrome_trace.hh"
#include "obs/interval_profiler.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"

namespace csim {
namespace {

ExperimentConfig
profiledConfig(std::uint64_t interval_cycles = 500)
{
    ExperimentConfig cfg;
    cfg.instructions = 4000;
    cfg.seeds = {1, 2};
    cfg.profile.enabled = true;
    cfg.profile.intervalCycles = interval_cycles;
    return cfg;
}

Trace
buildSmallTrace(const std::string &workload, std::uint64_t seed,
                std::uint64_t instructions = 4000)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = instructions;
    wcfg.seed = seed;
    return buildAnnotatedTrace(workload, wcfg);
}

/** Every structural invariant one profiled run must satisfy. */
void
checkSeries(const IntervalSeries &series, const SimResult &sim,
            const MachineConfig &machine, std::uint64_t interval_cycles)
{
    ASSERT_FALSE(series.empty());
    EXPECT_EQ(series.intervalCycles, interval_cycles);
    EXPECT_EQ(series.clusterIssueWidth, machine.cluster.issueWidth);
    EXPECT_EQ(series.windowPerCluster, machine.windowPerCluster);

    std::uint64_t cycles = 0, commits = 0, steers = 0, issued = 0;
    for (std::size_t i = 0; i < series.records.size(); ++i) {
        const IntervalRecord &rec = series.records[i];
        // The tentpole invariant: the CPI stack partitions the
        // interval's cycles exactly.
        EXPECT_EQ(rec.componentSum(), rec.cycles)
            << "interval " << i;
        EXPECT_EQ(rec.startCycle, i * interval_cycles);
        const bool last = i + 1 == series.records.size();
        if (!last) {
            EXPECT_EQ(rec.cycles, interval_cycles);
        }
        EXPECT_LE(rec.cycles, interval_cycles);
        ASSERT_EQ(rec.clusters.size(), machine.numClusters);
        std::uint64_t lane_issued = 0, lane_steered = 0;
        for (const IntervalClusterLane &lane : rec.clusters) {
            lane_issued += lane.issued;
            lane_steered += lane.steered;
            EXPECT_LE(lane.occupancySum,
                      rec.cycles * machine.windowPerCluster);
        }
        EXPECT_EQ(lane_issued, rec.issued);
        EXPECT_EQ(lane_steered, rec.steers);
        cycles += rec.cycles;
        commits += rec.commits;
        steers += rec.steers;
        issued += rec.issued;
    }
    // Conservation against the run totals: every cycle, commit and
    // steer lands in exactly one interval.
    EXPECT_EQ(cycles, sim.cycles);
    EXPECT_EQ(series.totalCycles(), sim.cycles);
    EXPECT_EQ(commits, sim.instructions);
    EXPECT_EQ(steers, sim.instructions);
    EXPECT_EQ(issued, sim.instructions);
    const std::uint64_t expect_intervals =
        (sim.cycles + interval_cycles - 1) / interval_cycles;
    EXPECT_EQ(series.records.size(), expect_intervals);
}

// ---------------------------------------------------------------- //
// The tentpole invariant across machines and policies

TEST(IntervalProfiler, ComponentsSumAcrossCells)
{
    const std::vector<std::string> workloads = {"gzip", "mcf"};
    const std::vector<unsigned> cluster_counts = {1, 2, 4};
    const std::vector<PolicyKind> policies = {
        PolicyKind::ModN, PolicyKind::Dep,
        PolicyKind::FocusedLocStall};

    ExperimentConfig cfg = profiledConfig();
    cfg.seeds = {1};
    for (const std::string &wl : workloads) {
        const Trace trace = buildSmallTrace(wl, 1);
        for (unsigned n : cluster_counts) {
            const MachineConfig machine = n == 1 ?
                MachineConfig::monolithic() :
                MachineConfig::clustered(n);
            for (PolicyKind kind : policies) {
                PolicyRun run =
                    runPolicy(trace, machine, kind, cfg);
                checkSeries(run.intervals, run.sim, machine,
                            cfg.profile.intervalCycles);
            }
        }
    }
}

TEST(IntervalProfiler, SingleIntervalWhenLongerThanRun)
{
    const Trace trace = buildSmallTrace("gzip", 1);
    ExperimentConfig cfg = profiledConfig(1u << 30);
    PolicyRun run = runPolicy(trace, MachineConfig::clustered(4),
                              PolicyKind::Focused, cfg);
    ASSERT_EQ(run.intervals.records.size(), 1u);
    EXPECT_EQ(run.intervals.records[0].cycles, run.sim.cycles);
    EXPECT_EQ(run.intervals.records[0].componentSum(), run.sim.cycles);
}

TEST(IntervalProfiler, TrailingPartialIntervalOnPrimeSizes)
{
    // Prime trace lengths against prime (and unit) interval lengths:
    // the run can essentially never end on an interval boundary, so
    // the trailing interval is partial and must still close with an
    // exact components sum and full event conservation.
    const std::uint64_t prime_lengths[] = {3989, 7919};
    const std::uint64_t prime_intervals[] = {499, 997, 1};
    for (std::uint64_t n : prime_lengths) {
        const Trace trace = buildSmallTrace("gzip", 3, n);
        ASSERT_EQ(trace.size(), n);
        for (std::uint64_t iv : prime_intervals) {
            SCOPED_TRACE(testing::Message()
                         << "n=" << n << " interval=" << iv);
            ExperimentConfig cfg = profiledConfig(iv);
            cfg.instructions = n;
            cfg.seeds = {3};
            const MachineConfig machine = MachineConfig::clustered(4);
            PolicyRun run = runPolicy(trace, machine,
                                      PolicyKind::FocusedLocStall, cfg);
            checkSeries(run.intervals, run.sim, machine, iv);
            // The trailing record is the run's remainder modulo the
            // interval length (or a full record on an exact fit).
            const IntervalRecord &tail = run.intervals.records.back();
            const std::uint64_t rem = run.sim.cycles % iv;
            EXPECT_EQ(tail.cycles, rem == 0 ? iv : rem);
        }
    }
}

TEST(IntervalProfiler, EmptyRunKeepsSeriesGeometry)
{
    // A zero-instruction run returns before any observer hook fires,
    // so the series geometry cannot rely on onRunStart. A series left
    // with intervalCycles == 0 would zero-divide downstream
    // normalizers and trip the merge geometry asserts.
    const Trace empty;
    const MachineConfig machine = MachineConfig::clustered(4);
    IntervalProfilerOptions popt;
    popt.intervalCycles = 500;
    IntervalProfiler prof(machine, empty, popt);
    UnifiedSteering st(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    SimOptions opt;
    opt.observers.push_back(&prof);
    (void)TimingSim(machine, empty, st, age, nullptr, opt).run();

    const IntervalSeries series = prof.takeSeries();
    EXPECT_TRUE(series.empty());
    EXPECT_EQ(series.intervalCycles, 500u);
    EXPECT_EQ(series.clusterIssueWidth, machine.cluster.issueWidth);
    EXPECT_EQ(series.windowPerCluster, machine.windowPerCluster);

    // Merging a real profiled run into it must keep that run's
    // records intact instead of asserting on mismatched geometry.
    ExperimentConfig cfg = profiledConfig(500);
    cfg.seeds = {1};
    PolicyRun run = runPolicy(buildSmallTrace("gzip", 1),
                              MachineConfig::clustered(4),
                              PolicyKind::Focused, cfg);
    IntervalSeries merged = series;
    merged.merge(run.intervals);
    EXPECT_EQ(merged.records.size(), run.intervals.records.size());
}

TEST(IntervalProfiler, RegionSampledProfileMergesPartialTails)
{
    // Region sampling merges per-region series index-wise; region
    // runs end mid-interval, so partial tail records land on top of
    // full records from longer regions. Component sums must survive
    // the merge and total cycles must cover every region's run.
    const Trace trace = buildSmallTrace("gzip", 3, 7919);
    const TraceSoA soa(trace);
    ExperimentConfig cfg = profiledConfig(499);
    cfg.instructions = trace.size();
    cfg.seeds = {3};
    cfg.regions = 3;
    cfg.regionLen = 601;
    cfg.regionWarmup = 97;
    const AggregateResult agg = runRegionSampledCell(
        soa, MachineConfig::clustered(4), PolicyKind::FocusedLocStall,
        cfg);
    ASSERT_FALSE(agg.intervals.empty());
    EXPECT_EQ(agg.intervals.mergeCount, 3u);
    std::uint64_t cycles = 0;
    for (const IntervalRecord &rec : agg.intervals.records) {
        EXPECT_EQ(rec.componentSum(), rec.cycles);
        cycles += rec.cycles;
    }
    // The profiler spans each region's full run (warmup + measure
    // phases alike); the merged series must cover exactly that.
    std::uint64_t phase_cycles = 0;
    for (const PhaseResult &phase : agg.phases)
        phase_cycles += phase.cycles;
    EXPECT_EQ(cycles, phase_cycles);
}

TEST(IntervalProfiler, ProfilerStatsRegistered)
{
    const Trace trace = buildSmallTrace("gzip", 1);
    ExperimentConfig cfg = profiledConfig();
    PolicyRun run = runPolicy(trace, MachineConfig::clustered(4),
                              PolicyKind::FocusedLocStall, cfg);
    const StatsSnapshot &stats = run.sim.stats;

    // The per-component counters mirror the series exactly.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < numCpiComponents; ++i) {
        const std::string name = std::string("profiler.cycles.") +
            cpiComponentName(static_cast<CpiComponent>(i));
        ASSERT_TRUE(stats.has(name)) << name;
        total += static_cast<std::uint64_t>(stats.value(name));
    }
    EXPECT_EQ(total, run.sim.cycles);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  stats.value("profiler.intervals")),
              run.intervals.records.size());

    // LoC spectrum: one sample per steered instruction.
    ASSERT_TRUE(stats.has("profiler.loc.spectrum"));
    EXPECT_EQ(stats.at("profiler.loc.spectrum").value,
              static_cast<double>(run.sim.instructions));

    // Criticality scoring: the confusion matrix partitions the run.
    const std::uint64_t tp = static_cast<std::uint64_t>(
        stats.value("profiler.crit.truePos"));
    const std::uint64_t fp = static_cast<std::uint64_t>(
        stats.value("profiler.crit.falsePos"));
    const std::uint64_t fn = static_cast<std::uint64_t>(
        stats.value("profiler.crit.falseNeg"));
    const std::uint64_t tn = static_cast<std::uint64_t>(
        stats.value("profiler.crit.trueNeg"));
    EXPECT_EQ(tp + fp + fn + tn, run.sim.instructions);
    const double hit = stats.value("profiler.crit.hitRate");
    EXPECT_GE(hit, 0.0);
    EXPECT_LE(hit, 1.0);
}

// ---------------------------------------------------------------- //
// Observer-chain composition

TEST(IntervalProfiler, ComposesWithPipelineChecker)
{
    const Trace trace = buildSmallTrace("mcf", 1);
    const MachineConfig machine = MachineConfig::clustered(2);

    ExperimentConfig plain = profiledConfig();
    plain.seeds = {1};
    PolicyRun alone =
        runPolicy(trace, machine, PolicyKind::Focused, plain);

    ExperimentConfig checked = plain;
    checked.verify.checker = true;
    checked.verify.panicOnViolation = false;
    PolicyRun both =
        runPolicy(trace, machine, PolicyKind::Focused, checked);

    // The checker found nothing, and observing through a longer chain
    // did not perturb the profile.
    EXPECT_EQ(both.checkerViolations, 0u);
    ASSERT_EQ(both.intervals.records.size(),
              alone.intervals.records.size());
    for (std::size_t i = 0; i < alone.intervals.records.size(); ++i) {
        const IntervalRecord &a = alone.intervals.records[i];
        const IntervalRecord &b = both.intervals.records[i];
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.components, b.components);
        EXPECT_EQ(a.commits, b.commits);
        EXPECT_EQ(a.deniedIssue, b.deniedIssue);
    }
}

// ---------------------------------------------------------------- //
// Sweep determinism across thread counts

std::string
seriesFingerprint(const std::vector<ChromeTraceRun> &runs)
{
    std::ostringstream os;
    writeChromeTrace(os, runs);
    return os.str();
}

TEST(IntervalProfiler, SweepIntervalsIdenticalAcrossThreadCounts)
{
    SweepSpec spec;
    spec.cfg = profiledConfig();
    spec.crossTiming({"gzip", "mcf"},
                     {MachineConfig::clustered(2),
                      MachineConfig::clustered(4)},
                     {PolicyKind::ModN, PolicyKind::Focused});

    TraceCache cache;
    SweepOutcome one = SweepRunner(1, &cache).run(spec);
    SweepOutcome four = SweepRunner(4, &cache).run(spec);

    ASSERT_EQ(one.results.size(), four.results.size());
    std::vector<ChromeTraceRun> runs_one, runs_four;
    for (std::size_t i = 0; i < one.results.size(); ++i) {
        ASSERT_FALSE(one.results[i].intervals.empty());
        runs_one.push_back(ChromeTraceRun{one.cells[i].label(),
                                          one.results[i].intervals});
        runs_four.push_back(ChromeTraceRun{four.cells[i].label(),
                                           four.results[i].intervals});
    }
    // Byte-identical once rendered — the acceptance criterion.
    EXPECT_EQ(seriesFingerprint(runs_one),
              seriesFingerprint(runs_four));

    // Seed merge really accumulated both seeds: the merged series
    // carries both runs' commits.
    std::uint64_t commits = 0;
    for (const IntervalRecord &rec : one.results[0].intervals.records)
        commits += rec.commits;
    EXPECT_EQ(commits, one.results[0].instructions);
}

// ---------------------------------------------------------------- //
// Chrome trace emission

TEST(ChromeTrace, StructureAndDeterminism)
{
    const Trace trace = buildSmallTrace("gzip", 1);
    const MachineConfig machine = MachineConfig::clustered(2);
    ExperimentConfig cfg = profiledConfig();
    cfg.seeds = {1};
    PolicyRun run =
        runPolicy(trace, machine, PolicyKind::Focused, cfg);

    std::vector<ChromeTraceRun> runs;
    runs.push_back(ChromeTraceRun{"gzip/2x4w/focused", run.intervals});
    std::ostringstream os;
    writeChromeTrace(os, runs);
    const std::string trace_json = os.str();

    EXPECT_NE(trace_json.find("\"traceEvents\":"), std::string::npos);
    EXPECT_NE(trace_json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(
        trace_json.find("\"args\":{\"name\":\"gzip/2x4w/focused\"}"),
        std::string::npos);
    EXPECT_NE(trace_json.find("\"name\":\"cluster0\""),
              std::string::npos);
    EXPECT_NE(trace_json.find("\"name\":\"cluster1\""),
              std::string::npos);
    EXPECT_NE(trace_json.find("\"name\":\"cpiStack\""),
              std::string::npos);
    EXPECT_NE(trace_json.find("\"ph\":\"X\""), std::string::npos);
    // Every CPI-stack key appears in the counter args.
    for (std::size_t i = 0; i < numCpiComponents; ++i) {
        const std::string key = std::string("\"") +
            cpiComponentName(static_cast<CpiComponent>(i)) + "\":";
        EXPECT_NE(trace_json.find(key), std::string::npos) << key;
    }
    // Emission is a pure function of the series.
    std::ostringstream again;
    writeChromeTrace(again, runs);
    EXPECT_EQ(trace_json, again.str());
}

// ---------------------------------------------------------------- //
// Satellites: filtered snapshots, series merge, v3 report

TEST(StatsSnapshot, PrefixFilter)
{
    StatsRegistry reg;
    reg.addCounter("profiler.intervals").inc(3);
    reg.addCounter("sim.cycles").inc(100);
    reg.addCounter("profiler.cycles.base").inc(7);
    StatsSnapshot snap = reg.snapshot();

    StatsSnapshot only = snap.filtered({"profiler."});
    EXPECT_EQ(only.size(), 2u);
    EXPECT_TRUE(only.has("profiler.intervals"));
    EXPECT_TRUE(only.has("profiler.cycles.base"));
    EXPECT_FALSE(only.has("sim.cycles"));

    StatsSnapshot both = snap.filtered({"sim.", "profiler.cycles."});
    EXPECT_EQ(both.size(), 2u);

    // Empty prefix list keeps everything (filtering is opt-in).
    EXPECT_EQ(snap.filtered({}).size(), snap.size());
}

TEST(IntervalSeries, MergeSumsIndexWise)
{
    IntervalSeries a, b;
    a.intervalCycles = b.intervalCycles = 100;
    a.clusterIssueWidth = b.clusterIssueWidth = 4;
    a.windowPerCluster = b.windowPerCluster = 64;
    IntervalRecord ra;
    ra.cycles = 100;
    ra.components[static_cast<std::size_t>(CpiComponent::Base)] = 100;
    ra.commits = 80;
    ra.clusters.resize(2);
    ra.clusters[0].issued = 50;
    a.records = {ra, ra};
    IntervalRecord rb = ra;
    rb.components[static_cast<std::size_t>(CpiComponent::Base)] = 60;
    rb.components[static_cast<std::size_t>(CpiComponent::Memory)] = 40;
    b.records = {rb, rb, rb};  // longer tail is adopted

    a.merge(b);
    EXPECT_EQ(a.mergeCount, 2u);
    ASSERT_EQ(a.records.size(), 3u);
    EXPECT_EQ(a.records[0].cycles, 200u);
    EXPECT_EQ(a.records[0].componentSum(), 200u);
    EXPECT_EQ(a.records[0].commits, 160u);
    EXPECT_EQ(a.records[0].clusters[0].issued, 100u);
    EXPECT_EQ(a.records[2].cycles, 100u);
    EXPECT_EQ(a.totalCycles(), 500u);

    // Merging into an empty series adopts the other wholesale.
    IntervalSeries fresh;
    fresh.merge(b);
    EXPECT_EQ(fresh.records.size(), 3u);
    EXPECT_EQ(fresh.intervalCycles, 100u);
    EXPECT_EQ(fresh.mergeCount, 1u);
}

TEST(JsonReport, SchemaV3IntervalsRoundTrip)
{
    const Trace trace = buildSmallTrace("gzip", 1);
    ExperimentConfig cfg = profiledConfig();
    cfg.seeds = {1};
    PolicyRun run = runPolicy(trace, MachineConfig::clustered(2),
                              PolicyKind::Focused, cfg);

    const std::string path = "test_profiler_report.json";
    {
        const char *argv[] = {"bench", "--json", path.c_str(),
                              "--profile"};
        BenchContext ctx("test_profiler_bench", 4,
                         const_cast<char **>(argv));
        ExperimentConfig applied;
        ctx.apply(applied);
        EXPECT_TRUE(applied.profile.enabled);
        ctx.addRunStats("gzip/2x4w/focused", run.sim.stats,
                        run.intervals);
        EXPECT_EQ(ctx.finish(), 0);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("\"schemaVersion\":7"), std::string::npos);
    EXPECT_NE(json.find("\"intervals\":{"), std::string::npos);
    EXPECT_NE(json.find("\"intervalCycles\":500"), std::string::npos);
    EXPECT_NE(json.find("\"mergeCount\":1"), std::string::npos);
    EXPECT_NE(json.find("\"cpiStack\":{"), std::string::npos);
    EXPECT_NE(json.find("\"clusters\":["), std::string::npos);
}

TEST(JsonReport, StatsFilterFlag)
{
    StatsRegistry reg;
    reg.addCounter("profiler.intervals").inc(1);
    reg.addCounter("sim.cycles").inc(5);

    const std::string path = "test_profiler_filtered.json";
    {
        const char *argv[] = {"bench", "--json", path.c_str(),
                              "--stats-filter", "profiler."};
        BenchContext ctx("test_profiler_bench", 5,
                         const_cast<char **>(argv));
        ctx.addRunStats("cell", reg.snapshot());
        EXPECT_EQ(ctx.finish(), 0);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    std::remove(path.c_str());

    EXPECT_NE(json.find("profiler.intervals"), std::string::npos);
    EXPECT_EQ(json.find("sim.cycles"), std::string::npos);
}

} // anonymous namespace
} // namespace csim
