/**
 * @file
 * Unit tests for src/common: saturating counters, probabilistic
 * counters, the RNG and the statistics toolkit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"
#include "common/prob_counter.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

namespace csim {
namespace {

// ---------------------------------------------------------------- //
// SatCounter

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.train(true);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturatedHigh());
    EXPECT_FALSE(c.saturatedLow());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 1, 1, 3);
    for (int i = 0; i < 10; ++i)
        c.train(false);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.saturatedLow());
}

TEST(SatCounter, AsymmetricStepsFieldsShape)
{
    // The Fields criticality counter: 6 bits, +8/-1, threshold 8.
    SatCounter c(6, 8, 1, 0);
    EXPECT_FALSE(c.atLeast(8));
    c.train(true);
    EXPECT_EQ(c.value(), 8u);
    EXPECT_TRUE(c.atLeast(8));
    // Seven non-critical instances keep the prediction alive...
    for (int i = 0; i < 7; ++i)
        c.train(false);
    EXPECT_TRUE(c.atLeast(8) || c.value() == 1u);
    // ...so 1-in-8 critical is enough to stay classified critical.
    for (int round = 0; round < 20; ++round) {
        c.train(true);
        for (int i = 0; i < 7; ++i)
            c.train(false);
    }
    EXPECT_TRUE(c.atLeast(1));
}

TEST(SatCounter, ClampsAtMax)
{
    SatCounter c(3, 5, 1, 6);
    c.train(true);
    EXPECT_EQ(c.value(), 7u);  // 6 + 5 clamps to 2^3 - 1
    c.train(false);
    EXPECT_EQ(c.value(), 6u);
}

TEST(SatCounter, Reset)
{
    SatCounter c(4);
    c.train(true);
    c.reset(9);
    EXPECT_EQ(c.value(), 9u);
}

class SatCounterWidths : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SatCounterWidths, NeverExceedsRange)
{
    const unsigned bits = GetParam();
    SatCounter c(bits, 3, 2, 0);
    Rng rng(bits * 977 + 1);
    for (int i = 0; i < 5000; ++i) {
        c.train(rng.chance(1, 2));
        ASSERT_LE(c.value(), c.maxValue());
    }
    EXPECT_EQ(c.maxValue(), (1u << bits) - 1);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SatCounterWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u,
                                           12u, 16u));

// ---------------------------------------------------------------- //
// ProbCounter

class ProbCounterFreq : public ::testing::TestWithParam<double>
{};

TEST_P(ProbCounterFreq, EstimateConvergesToFrequency)
{
    const double f = GetParam();
    ProbCounter c(16, 0);
    Rng rng(static_cast<std::uint64_t>(f * 1000) + 3);
    Rng data(42);

    // Train on a long stream, then average the estimate over the
    // tail: the stationary distribution is binomial, so the mean
    // (not any single sample) tracks f.
    double sum = 0.0;
    int samples = 0;
    for (int i = 0; i < 60000; ++i) {
        c.train(data.uniform() < f, rng);
        if (i >= 20000) {
            sum += c.estimate();
            ++samples;
        }
    }
    const double mean_est = sum / samples;
    EXPECT_NEAR(mean_est, f, 0.08) << "frequency " << f;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ProbCounterFreq,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0));

TEST(ProbCounter, StaysInRange)
{
    ProbCounter c(16, 15);
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        c.train(rng.chance(1, 3), rng);
        ASSERT_LT(c.level(), 16u);
    }
}

TEST(ProbCounter, AllTrueSaturates)
{
    ProbCounter c(16, 0);
    Rng rng(11);
    for (int i = 0; i < 2000; ++i)
        c.train(true, rng);
    EXPECT_EQ(c.level(), 15u);
    EXPECT_DOUBLE_EQ(c.estimate(), 1.0);
}

TEST(ProbCounter, AllFalseStaysZero)
{
    ProbCounter c(16, 0);
    Rng rng(13);
    for (int i = 0; i < 2000; ++i)
        c.train(false, rng);
    EXPECT_EQ(c.level(), 0u);
}

// ---------------------------------------------------------------- //
// Rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(17);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 30000; ++i)
        if (rng.chance(1, 4))
            ++hits;
    EXPECT_NEAR(hits / 30000.0, 0.25, 0.02);
}

// ---------------------------------------------------------------- //
// Stats

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStat, WelfordVarianceAndStddev)
{
    RunningStat s;
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // no samples
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // one sample
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    s.add(5.0);
    // Sample variance (n-1) of {5,2,4,9,5}: mean 5, ssq 26, /4 = 6.5.
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 6.5);
    EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(6.5));
    s.reset();
    s.add(3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // reset clears m2
}

TEST(RunningStat, WelfordMatchesTwoPassOnLargeOffset)
{
    // The naive sum-of-squares formula loses precision with a large
    // common offset; Welford's update must not.
    RunningStat s;
    const double offset = 1e9;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(offset + x);
    EXPECT_NEAR(s.variance(), 2.5, 1e-6);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(10, 0.0, 1.0);
    h.add(0.05);          // bucket 0
    h.add(0.95);          // bucket 9
    h.add(-5.0);          // clamps to 0
    h.add(99.0);          // clamps to 9
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(4, 0.0, 4.0);
    h.add(1.5, 10);
    EXPECT_EQ(h.bucket(1), 10u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(4, 0.0, 4.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 3.0);
}

TEST(Histogram, RejectsNaN)
{
    Histogram h(4, 0.0, 4.0);
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::quiet_NaN(), 10);
    EXPECT_EQ(h.total(), 0u);  // dropped, not clamped into a bucket
    h.add(1.5);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
}

TEST(Histogram, BoundsAccessors)
{
    Histogram h(4, -1.0, 3.0);
    EXPECT_DOUBLE_EQ(h.lo(), -1.0);
    EXPECT_DOUBLE_EQ(h.hi(), 3.0);
}

TEST(TextTable, AlignsAndSeparates)
{
    TextTable t({"a", "bbbb"});
    t.addRow({"xxx", "y"});
    const std::string s = t.str();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    EXPECT_NE(s.find("xxx"), std::string::npos);
}

TEST(Format, Doubles)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatPercent(0.125, 1), "12.5%");
}

// ---------------------------------------------------------------- //
// Logging

TEST(Logging, GlobalLevelRoundTrip)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(saved);
}

TEST(Logging, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Trace), "trace");
}

TEST(Logging, SuppressedBelowLevel)
{
    // CSIM_LOG must evaluate its arguments only when enabled.
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);
    int evals = 0;
    auto bump = [&] { return ++evals; };
    CSIM_LOG(Debug, "suppressed %d", bump());
    EXPECT_EQ(evals, 0);
    setLogLevel(saved);
}

TEST(LoggingDeathTest, PanicFormats)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(CSIM_PANIC_F("bad value %d", 42), "bad value 42");
}

TEST(Logging, ParseLogLevelAcceptsNamesAndDigits)
{
    EXPECT_EQ(parseLogLevel("error", "CSIM_LOG"), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("warn", "CSIM_LOG"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info", "CSIM_LOG"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug", "CSIM_LOG"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("trace", "CSIM_LOG"), LogLevel::Trace);
    EXPECT_EQ(parseLogLevel("0", "CSIM_LOG"), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("2", "CSIM_LOG"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("4", "CSIM_LOG"), LogLevel::Trace);
}

// A typo in CSIM_LOG must die quoting the source, never silently
// fall back to the default level.
TEST(LoggingDeathTest, ParseLogLevelRejectsGarbage)
{
    EXPECT_DEATH(parseLogLevel("", "CSIM_LOG"), "CSIM_LOG");
    EXPECT_DEATH(parseLogLevel(nullptr, "CSIM_LOG"), "CSIM_LOG");
    EXPECT_DEATH(parseLogLevel("5", "CSIM_LOG"),
                 "log level '5' is not");
    EXPECT_DEATH(parseLogLevel("INFO", "CSIM_LOG"),
                 "log level 'INFO' is not");
    EXPECT_DEATH(parseLogLevel("debugx", "CSIM_LOG"),
                 "log level 'debugx' is not");
    EXPECT_DEATH(parseLogLevel("2 ", "--log"), "--log");
    EXPECT_DEATH(parseLogLevel("-1", "CSIM_LOG"), "CSIM_LOG");
}

TEST(Logging, InitLogLevelFromEnv)
{
    const LogLevel saved = logLevel();
    ::setenv("CSIM_LOG", "trace", 1);
    initLogLevelFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Trace);
    ::unsetenv("CSIM_LOG");
    setLogLevel(LogLevel::Warn);
    initLogLevelFromEnv(); // unset keeps the current level
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(saved);
}

TEST(LoggingDeathTest, InitLogLevelFromEnvRejectsGarbage)
{
    ::setenv("CSIM_LOG", "verbose", 1);
    EXPECT_DEATH(initLogLevelFromEnv(),
                 "CSIM_LOG: log level 'verbose' is not");
    ::unsetenv("CSIM_LOG");
}

} // anonymous namespace
} // namespace csim
