/**
 * @file
 * Unit tests for the front-end models: the gshare predictor and the
 * branch annotation pass.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "frontend/gshare.hh"

namespace csim {
namespace {

const auto r = Program::r;

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor pred(12);
    const Addr pc = 0x1000;
    int wrong = 0;
    for (int i = 0; i < 200; ++i)
        if (pred.mispredicts(pc, true))
            ++wrong;
    // Warmup only: each new history value hits a fresh PHT entry
    // until the all-taken history saturates (one per history bit).
    EXPECT_LE(wrong, 14);
    // Steady state is perfect.
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(pred.mispredicts(pc, true));
}

TEST(Gshare, LearnsAlternatingPatternViaHistory)
{
    GsharePredictor pred(12);
    const Addr pc = 0x2000;
    int wrong_late = 0;
    for (int i = 0; i < 2000; ++i) {
        bool taken = (i & 1) != 0;
        bool m = pred.mispredicts(pc, taken);
        if (i >= 1000 && m)
            ++wrong_late;
    }
    // Global history disambiguates the alternation perfectly.
    EXPECT_EQ(wrong_late, 0);
}

TEST(Gshare, LearnsShortRepeatingPattern)
{
    GsharePredictor pred(16);
    const Addr pc = 0x3000;
    // Period-5 pattern: TTTTN, like a 5-iteration inner loop.
    int wrong_late = 0;
    for (int i = 0; i < 5000; ++i) {
        bool taken = (i % 5) != 4;
        bool m = pred.mispredicts(pc, taken);
        if (i >= 2500 && m)
            ++wrong_late;
    }
    EXPECT_LT(wrong_late, 25);  // < 1% once warmed up
}

TEST(Gshare, RandomBranchesMispredictHalfTheTime)
{
    GsharePredictor pred(14);
    Rng rng(3);
    const Addr pc = 0x4000;
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (pred.mispredicts(pc, rng.chance(1, 2)))
            ++wrong;
    EXPECT_NEAR(static_cast<double>(wrong) / n, 0.5, 0.05);
}

TEST(Gshare, BiasedBranchMispredictsAtBiasRate)
{
    GsharePredictor pred(14);
    Rng rng(9);
    const Addr pc = 0x5000;
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (pred.mispredicts(pc, rng.chance(1, 10)))
            ++wrong;
    // Random 10%-taken branch: mispredict rate ~ the minority rate.
    EXPECT_NEAR(static_cast<double>(wrong) / n, 0.1, 0.05);
}

TEST(Gshare, HistoryShiftsOutcomes)
{
    GsharePredictor pred(8);
    EXPECT_EQ(pred.history(), 0u);
    pred.update(0x100, true);
    EXPECT_EQ(pred.history(), 1u);
    pred.update(0x100, false);
    EXPECT_EQ(pred.history(), 2u);
    pred.update(0x100, true);
    EXPECT_EQ(pred.history(), 5u);
}

TEST(BranchAnnotator, MarksOnlyConditionals)
{
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 50);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(1000);
    BranchAnnotateResult res = annotateBranches(t);

    TraceStats s = t.stats();
    EXPECT_EQ(res.condBranches, s.condBranches);
    EXPECT_EQ(res.mispredictions, s.mispredicted);
    // Non-branches never marked.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].isCondBranch) {
            EXPECT_FALSE(t[i].mispredicted);
        }
    }
}

TEST(BranchAnnotator, CountedLoopEndsMispredictRarely)
{
    // A long countdown loop: the closing branch is taken every time
    // except the last; gshare should be nearly perfect.
    Program p;
    Label loop = p.newLabel();
    p.lui(r(1), 4000);
    p.bind(loop);
    p.addi(r(1), r(1), -1);
    p.bne(r(1), loop);
    p.halt();
    p.finalize();

    Emulator emu(p);
    Trace t = emu.run(100000);
    BranchAnnotateResult res = annotateBranches(t);
    // Warmup (one fresh PHT entry per history bit) plus the final
    // fall-through.
    EXPECT_LE(res.mispredictions, 20u);
    EXPECT_LT(static_cast<double>(res.mispredictions) /
                  static_cast<double>(res.condBranches),
              0.01);
}

} // anonymous namespace
} // namespace csim
