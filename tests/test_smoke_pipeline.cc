/**
 * @file
 * End-to-end smoke test: workload -> annotated trace -> clustered
 * timing simulation -> critical-path attribution. Exercises the whole
 * stack on a small trace and checks basic sanity so deeper unit tests
 * have a known-good foundation.
 */

#include <gtest/gtest.h>

#include "core/timing_sim.hh"
#include "critpath/attribution.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

TEST(SmokePipeline, VprEndToEnd)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 20000;
    wcfg.seed = 1;
    Trace trace = buildAnnotatedTrace("vpr", wcfg);
    ASSERT_EQ(trace.size(), 20000u);

    TraceStats ts = trace.stats();
    EXPECT_GT(ts.condBranches, 1000u);
    EXPECT_GT(ts.mispredicted, 10u);
    EXPECT_GT(ts.loads, 1000u);

    // Monolithic run.
    MachineConfig mono = MachineConfig::monolithic();
    UnifiedSteering steer_mono(UnifiedSteeringOptions{}, nullptr,
                               nullptr);
    AgeScheduling age;
    SimResult r1 = TimingSim(mono, trace, steer_mono, age).run();
    EXPECT_EQ(r1.instructions, trace.size());
    EXPECT_GT(r1.cycles, trace.size() / 8);  // can't beat 8-wide
    EXPECT_LT(r1.cpi(), 10.0);

    // Clustered run.
    MachineConfig quad = MachineConfig::clustered(4);
    UnifiedSteering steer_quad(UnifiedSteeringOptions{}, nullptr,
                               nullptr);
    SimResult r4 = TimingSim(quad, trace, steer_quad, age).run();
    EXPECT_EQ(r4.instructions, trace.size());
    // Clustering should not be faster than monolithic by more than
    // scheduling noise, and should not be catastrophically slower.
    EXPECT_GT(r4.cycles * 100, r1.cycles * 95);
    EXPECT_LT(r4.cpi(), r1.cpi() * 3.0);

    // Critical-path attribution must cover the whole runtime.
    CpBreakdown bd = analyzeFullRun(trace, r1, mono);
    EXPECT_EQ(bd.total(), r1.timing.back().commit);

    CpBreakdown bd4 = analyzeFullRun(trace, r4, quad);
    EXPECT_EQ(bd4.total(), r4.timing.back().commit);

    // Monolithic machines never pay forwarding delay.
    EXPECT_EQ(bd[CpCategory::FwdDelay], 0u);
    EXPECT_EQ(r1.globalValues, 0u);
}

TEST(SmokePipeline, AllWorkloadsBuild)
{
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 5000;
    wcfg.seed = 2;
    for (const std::string &name : workloadNames()) {
        SCOPED_TRACE(name);
        Trace trace = buildAnnotatedTrace(name, wcfg);
        EXPECT_EQ(trace.size(), 5000u);
        TraceStats ts = trace.stats();
        EXPECT_GT(ts.branches, 100u);
    }
}

} // anonymous namespace
} // namespace csim
