/**
 * @file
 * Tests for the columnar v2 trace store: round-trip fidelity (raw and
 * compressed), streaming-writer equivalence, region extraction, the
 * column-view simulation path, phased runs, and region-sampling
 * determinism.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/timing_sim.hh"
#include "harness/experiment.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "trace/trace_soa.hh"
#include "trace/trace_store.hh"
#include "workloads/registry.hh"

namespace csim {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/csim_" + tag +
        ".trc2";
}

Trace
smallTrace(const char *workload = "bzip2",
           std::uint64_t instructions = 4000, std::uint64_t seed = 5)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = instructions;
    cfg.seed = seed;
    return buildAnnotatedTrace(workload, cfg);
}

void
expectRecordsEqual(const TraceRecord &a, const TraceRecord &b)
{
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.dest, b.dest);
    EXPECT_EQ(a.src1, b.src1);
    EXPECT_EQ(a.src2, b.src2);
    EXPECT_EQ(a.memAddr, b.memAddr);
    EXPECT_EQ(a.execLat, b.execLat);
    EXPECT_EQ(a.prod, b.prod);
    EXPECT_EQ(a.isBranch, b.isBranch);
    EXPECT_EQ(a.isCondBranch, b.isCondBranch);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.mispredicted, b.mispredicted);
    EXPECT_EQ(a.l1Miss, b.l1Miss);
}

void
expectViewMatchesTrace(const TraceSoA &soa, const Trace &original)
{
    ASSERT_EQ(soa.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        SCOPED_TRACE(i);
        expectRecordsEqual(soa.record(i), original[i]);
    }
}

TEST(TraceStore, RoundTripPreservesEverything)
{
    const Trace original = smallTrace();
    const std::string path = tempPath("roundtrip");
    ASSERT_TRUE(saveTraceStore(original, path));

    TraceSoA soa;
    TraceStoreInfo info;
    ASSERT_EQ(loadTraceStore(soa, path, &info), TraceIoStatus::Ok);
    expectViewMatchesTrace(soa, original);
    EXPECT_EQ(info.instructions, original.size());
    EXPECT_FALSE(info.compressed);
    // Uncompressed loads are zero-copy: the whole file stays mapped.
    EXPECT_EQ(info.mappedBytes, info.fileBytes);
    EXPECT_EQ(soa.producerLinks(),
              TraceSoA(original).producerLinks());
    std::remove(path.c_str());
}

TEST(TraceStore, CompressedRoundTripPreservesEverything)
{
    const Trace original = smallTrace();
    const std::string raw_path = tempPath("zraw");
    const std::string z_path = tempPath("zcomp");
    ASSERT_TRUE(saveTraceStore(original, raw_path));
    TraceStoreOptions opts;
    opts.compressWide = true;
    ASSERT_TRUE(saveTraceStore(original, z_path, opts));

    TraceSoA raw, z;
    TraceStoreInfo raw_info, z_info;
    ASSERT_EQ(loadTraceStore(raw, raw_path, &raw_info),
              TraceIoStatus::Ok);
    ASSERT_EQ(loadTraceStore(z, z_path, &z_info), TraceIoStatus::Ok);
    expectViewMatchesTrace(z, original);
    EXPECT_TRUE(z_info.compressed);
    // Compressed stores decode into an owned arena, nothing mapped.
    EXPECT_EQ(z_info.mappedBytes, 0u);
    // The wide columns (pc deltas, sentinel-heavy producer links)
    // are what LEB128 targets; the file must actually shrink.
    EXPECT_LT(z_info.fileBytes, raw_info.fileBytes);
    std::remove(raw_path.c_str());
    std::remove(z_path.c_str());
}

TEST(TraceStore, EmptyTraceRoundTrips)
{
    const Trace empty;
    const std::string path = tempPath("empty");
    ASSERT_TRUE(saveTraceStore(empty, path));
    TraceSoA soa;
    ASSERT_EQ(loadTraceStore(soa, path), TraceIoStatus::Ok);
    EXPECT_EQ(soa.size(), 0u);
    std::remove(path.c_str());
}

TEST(TraceStore, StreamingWriterMatchesMonolithicSave)
{
    const Trace original = smallTrace();
    const std::string whole_path = tempPath("whole");
    const std::string chunked_path = tempPath("chunked");
    ASSERT_TRUE(saveTraceStore(original, whole_path));

    // Append in uneven chunks; producer links are already global in
    // the source trace, so chunk records pass through unchanged.
    TraceStoreWriter writer(chunked_path, original.size());
    ASSERT_TRUE(writer.ok());
    const std::size_t chunk_len = 613;
    for (std::size_t base = 0; base < original.size();
         base += chunk_len) {
        Trace chunk;
        for (std::size_t i = base;
             i < std::min(base + chunk_len, original.size()); ++i)
            chunk.append(original[i]);
        ASSERT_TRUE(writer.append(chunk));
    }
    ASSERT_TRUE(writer.finalize());
    EXPECT_EQ(writer.written(), original.size());

    // Same capacity, same layout: the files must be byte-identical.
    std::FILE *fa = std::fopen(whole_path.c_str(), "rb");
    std::FILE *fb = std::fopen(chunked_path.c_str(), "rb");
    ASSERT_NE(fa, nullptr);
    ASSERT_NE(fb, nullptr);
    int ca, cb;
    std::uint64_t offset = 0;
    do {
        ca = std::fgetc(fa);
        cb = std::fgetc(fb);
        ASSERT_EQ(ca, cb) << "files diverge at byte " << offset;
        ++offset;
    } while (ca != EOF);
    std::fclose(fa);
    std::fclose(fb);
    std::remove(whole_path.c_str());
    std::remove(chunked_path.c_str());
}

TEST(TraceStore, WriterRejectsCapacityOverflow)
{
    const Trace original = smallTrace("vpr", 100, 1);
    const std::string path = tempPath("overflow");
    TraceStoreWriter writer(path, original.size() - 1);
    ASSERT_TRUE(writer.ok());
    EXPECT_FALSE(writer.append(original));
    EXPECT_FALSE(writer.ok());
    EXPECT_FALSE(writer.finalize());
    std::remove(path.c_str());
}

TEST(TraceStore, WriterUnderfillLoadsWrittenPrefix)
{
    const Trace original = smallTrace("vpr", 200, 3);
    const std::string path = tempPath("underfill");
    // Declare twice the capacity actually used (the streaming builder
    // does this whenever emulation halts early).
    TraceStoreWriter writer(path, original.size() * 2);
    ASSERT_TRUE(writer.append(original));
    ASSERT_TRUE(writer.finalize());

    TraceSoA soa;
    TraceStoreInfo info;
    ASSERT_EQ(loadTraceStore(soa, path, &info), TraceIoStatus::Ok);
    expectViewMatchesTrace(soa, original);
    EXPECT_EQ(info.instructions, original.size());
    std::remove(path.c_str());
}

TEST(TraceStore, BuildTraceStoreFileMatchesMonolithicBuild)
{
    WorkloadConfig cfg;
    cfg.targetInstructions = 4000;
    cfg.seed = 9;
    const Trace reference = buildAnnotatedTrace("gzip", cfg);

    // A chunk far below the target forces many emulate/link/annotate
    // hand-offs; the carried pass state must make them seamless.
    const std::string path = tempPath("streambuild");
    const TraceStoreBuildResult built =
        buildTraceStoreFile("gzip", cfg, path, 512);
    ASSERT_TRUE(built.ok);
    EXPECT_EQ(built.instructions, reference.size());

    TraceSoA soa;
    ASSERT_EQ(loadTraceStore(soa, path), TraceIoStatus::Ok);
    expectViewMatchesTrace(soa, reference);
    std::remove(path.c_str());
}

TEST(TraceStore, ExtractRegionRebasesProducerLinks)
{
    const Trace original = smallTrace("twolf", 2000, 4);
    const TraceSoA soa(original);

    const std::uint64_t base = 700;
    const std::uint64_t len = 500;
    const Trace region = extractRegion(soa, base, len);
    ASSERT_EQ(region.size(), len);
    EXPECT_TRUE(region.wellFormed());

    for (std::uint64_t i = 0; i < len; ++i) {
        SCOPED_TRACE(i);
        const TraceRecord &src = original[base + i];
        const TraceRecord &dst = region[i];
        EXPECT_EQ(dst.pc, src.pc);
        EXPECT_EQ(dst.cls, src.cls);
        EXPECT_EQ(dst.execLat, src.execLat);
        for (int slot = 0; slot < numSrcSlots; ++slot) {
            const InstId p = src.prod[slot];
            if (p == invalidInstId || p < base)
                EXPECT_EQ(dst.prod[slot], invalidInstId);
            else
                EXPECT_EQ(dst.prod[slot], p - base);
        }
    }
}

TEST(TraceStore, ExtractRegionClampsAtTraceEnd)
{
    const Trace original = smallTrace("vpr", 300, 2);
    const TraceSoA soa(original);
    const Trace tail = extractRegion(soa, original.size() - 50,
                                     1000000);
    EXPECT_EQ(tail.size(), 50u);
    EXPECT_TRUE(tail.wellFormed());
    const Trace whole = extractRegion(soa, 0, soa.size());
    EXPECT_EQ(whole.size(), original.size());
}

TEST(TraceStore, ColumnViewSimulatesIdentically)
{
    const Trace original = smallTrace("twolf", 6000, 8);
    const std::string path = tempPath("viewsim");
    ASSERT_TRUE(saveTraceStore(original, path));
    TraceSoA soa;
    ASSERT_EQ(loadTraceStore(soa, path), TraceIoStatus::Ok);

    UnifiedSteering s1(UnifiedSteeringOptions{}, nullptr, nullptr);
    UnifiedSteering s2(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    const MachineConfig mc = MachineConfig::clustered(4);
    const SimResult a = TimingSim(mc, original, s1, age).run();
    // The mmap-backed view has no AoS trace behind it at all:
    // record() reassembles rows from the mapped columns on demand.
    const SimResult b = TimingSim(mc, soa, s2, age).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.globalValues, b.globalValues);
    EXPECT_EQ(a.steerStallCycles, b.steerStallCycles);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- //
// Phases

TEST(TraceStorePhases, SinglePhaseMatchesUnphasedRun)
{
    const Trace trace = smallTrace("gzip", 3000, 2);
    const MachineConfig mc = MachineConfig::clustered(4);
    AgeScheduling age;

    UnifiedSteering s1(UnifiedSteeringOptions{}, nullptr, nullptr);
    const SimResult plain = TimingSim(mc, trace, s1, age).run();

    SimOptions opt;
    opt.phases = {PhaseSpec{"all", 0, false}};
    UnifiedSteering s2(UnifiedSteeringOptions{}, nullptr, nullptr);
    const SimResult phased =
        TimingSim(mc, trace, s2, age, nullptr, opt).run();

    EXPECT_EQ(phased.cycles, plain.cycles);
    EXPECT_EQ(phased.instructions, plain.instructions);
    EXPECT_EQ(phased.globalValues, plain.globalValues);
    ASSERT_EQ(phased.phases.size(), 1u);
    EXPECT_EQ(phased.phases[0].name, "all");
    EXPECT_EQ(phased.phases[0].instructions, plain.instructions);
}

TEST(TraceStorePhases, WarmupPhaseIsExcludedFromTotals)
{
    const Trace trace = smallTrace("gzip", 3000, 2);
    const MachineConfig mc = MachineConfig::clustered(4);
    AgeScheduling age;

    SimOptions opt;
    opt.phases = {PhaseSpec{"warmup", 1000, true},
                  PhaseSpec{"measure", 0, false}};
    UnifiedSteering st(UnifiedSteeringOptions{}, nullptr, nullptr);
    const SimResult r =
        TimingSim(mc, trace, st, age, nullptr, opt).run();

    ASSERT_EQ(r.phases.size(), 2u);
    EXPECT_EQ(r.phases[0].instructions, 1000u);
    EXPECT_TRUE(r.phases[0].isWarmup);
    EXPECT_EQ(r.phases[1].instructions, trace.size() - 1000);
    EXPECT_FALSE(r.phases[1].isWarmup);

    // Top-level totals cover measured phases only; phase boundaries
    // reset stats, not microarchitectural state, so the phase spans
    // tile the run exactly.
    EXPECT_EQ(r.instructions, trace.size() - 1000);
    EXPECT_EQ(r.cycles,
              r.phases[1].cycles);
    ASSERT_GT(r.phases[0].cycles, 0u);

    // An unphased run over the same trace commits the same stream;
    // the phased run's spans must sum to its full length.
    UnifiedSteering s2(UnifiedSteeringOptions{}, nullptr, nullptr);
    const SimResult plain = TimingSim(mc, trace, s2, age).run();
    EXPECT_EQ(r.phases[0].cycles + r.phases[1].cycles, plain.cycles);
    EXPECT_EQ(r.phases[0].instructions + r.phases[1].instructions,
              plain.instructions);
}

// ---------------------------------------------------------------- //
// Region sampling

TEST(TraceStoreRegions, RegionSampledCellIsDeterministic)
{
    const Trace trace = smallTrace("gzip", 8000, 3);
    const TraceSoA soa(trace);

    ExperimentConfig cfg;
    cfg.instructions = trace.size();
    cfg.regions = 4;
    cfg.regionLen = 600;
    cfg.regionWarmup = 200;
    const MachineConfig mc = MachineConfig::clustered(4);

    const AggregateResult a =
        runRegionSampledCell(soa, mc, PolicyKind::Focused, cfg);
    const AggregateResult b =
        runRegionSampledCell(soa, mc, PolicyKind::Focused, cfg);

    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    // Regions merge like-named phases elementwise: warmup + measure.
    ASSERT_EQ(a.phases.size(), 2u);
    EXPECT_EQ(a.phases[0].name, "warmup");
    EXPECT_TRUE(a.phases[0].isWarmup);
    EXPECT_EQ(a.phases[1].name, "measure");
    EXPECT_EQ(a.phases[0].instructions, 4 * 200u);
    EXPECT_EQ(a.phases[1].instructions, 4 * 600u);
    // The aggregate's measured totals are the measure phase's.
    EXPECT_EQ(a.instructions, a.phases[1].instructions);
    ASSERT_EQ(b.phases.size(), 2u);
    EXPECT_EQ(a.phases[1].cycles, b.phases[1].cycles);
}

TEST(TraceStoreRegions, SampledSubsetIsCheaperThanFullRun)
{
    const Trace trace = smallTrace("gzip", 8000, 3);
    const TraceSoA soa(trace);
    ExperimentConfig cfg;
    cfg.instructions = trace.size();
    cfg.regions = 2;
    cfg.regionLen = 500;
    cfg.regionWarmup = 100;
    const AggregateResult sampled = runRegionSampledCell(
        soa, MachineConfig::clustered(4), PolicyKind::Focused, cfg);
    EXPECT_EQ(sampled.instructions, 2 * 500u);
    EXPECT_LT(sampled.instructions, trace.size());
    EXPECT_GT(sampled.cpi(), 0.0);
}

TEST(TraceStoreRegions, ExactFitBudgetAndSingleRegionAreAccepted)
{
    // k * (warmup + len) == n is the largest legal budget; with one
    // region the span may cover the whole store.
    const Trace trace = smallTrace("gzip", 4000, 3);
    const TraceSoA soa(trace);
    ExperimentConfig cfg;
    cfg.instructions = trace.size();
    cfg.regions = 4;
    cfg.regionLen = 900;
    cfg.regionWarmup = 100;
    const AggregateResult tight = runRegionSampledCell(
        soa, MachineConfig::clustered(4), PolicyKind::Focused, cfg);
    EXPECT_EQ(tight.instructions, 4 * 900u);

    cfg.regions = 1;
    cfg.regionLen = trace.size() - 100;
    const AggregateResult whole = runRegionSampledCell(
        soa, MachineConfig::clustered(4), PolicyKind::Focused, cfg);
    EXPECT_EQ(whole.instructions, trace.size() - 100);
}

TEST(TraceStoreRegionsDeath, RegionBudgetExceedingStoreIsFatal)
{
    // 4 x (200 + 1900) = 8400 > 8000: evenly spaced starts at stride
    // 2000 would overlap every adjacent region and double-count the
    // overlap in the merged phases. Must be a clean fatal, not a
    // silent wrong answer.
    const Trace trace = smallTrace("gzip", 8000, 3);
    const TraceSoA soa(trace);
    ExperimentConfig cfg;
    cfg.instructions = trace.size();
    cfg.regions = 4;
    cfg.regionLen = 1900;
    cfg.regionWarmup = 200;
    EXPECT_EXIT(runRegionSampledCell(soa, MachineConfig::clustered(4),
                                     PolicyKind::Focused, cfg),
                ::testing::ExitedWithCode(1),
                "fatal: region sampling: .*exceed");
}

TEST(TraceStoreRegionsDeath, RegionCountExceedingStoreIsFatal)
{
    const Trace trace = smallTrace("vpr", 300, 2);
    const TraceSoA soa(trace);
    ExperimentConfig cfg;
    cfg.instructions = trace.size();
    cfg.regions = trace.size() + 1;
    cfg.regionLen = 1;
    EXPECT_EXIT(runRegionSampledCell(soa, MachineConfig::clustered(4),
                                     PolicyKind::Focused, cfg),
                ::testing::ExitedWithCode(1),
                "fatal: region sampling: region count .*out of range");
}

TEST(TraceStoreRegionsDeath, ZeroRegionLenIsFatal)
{
    const Trace trace = smallTrace("vpr", 300, 2);
    const TraceSoA soa(trace);
    ExperimentConfig cfg;
    cfg.instructions = trace.size();
    cfg.regions = 2;
    cfg.regionLen = 0;
    EXPECT_EXIT(runRegionSampledCell(soa, MachineConfig::clustered(4),
                                     PolicyKind::Focused, cfg),
                ::testing::ExitedWithCode(1),
                "fatal: region sampling: region length");
}

// ---------------------------------------------------------------- //
// Corrupt / hostile store files

// Byte-level builder for hand-crafted hostile compressed stores. The
// layout constants mirror the static_asserts pinning the v2 format in
// trace_store.cc: 240-byte header, {offset, bytes} column descriptor
// pairs starting at byte 48.
struct CraftedStore
{
    std::vector<std::uint8_t> bytes;

    explicit CraftedStore(std::size_t fileBytes)
        : bytes(fileBytes, 0)
    {
        std::memcpy(bytes.data(), "csimtrc2", 8);
        put32(8, 2);            // version
        put32(12, 0x01020304u); // endian tag
        put64(16, 1);           // count
        put64(24, 1);           // capacity
        put64(32, 0);           // producer links
        put32(40, 1);           // flags: wide columns compressed
        put32(44, 12);          // column count
    }

    void
    put32(std::size_t off, std::uint32_t v)
    {
        std::memcpy(&bytes[off], &v, sizeof(v));
    }

    void
    put64(std::size_t off, std::uint64_t v)
    {
        std::memcpy(&bytes[off], &v, sizeof(v));
    }

    void
    col(std::size_t c, std::uint64_t offset, std::uint64_t size)
    {
        put64(48 + 16 * c, offset);
        put64(48 + 16 * c + 8, size);
    }

    std::string
    write(const char *tag) const
    {
        const std::string path = tempPath(tag);
        std::FILE *f = std::fopen(path.c_str(), "wb");
        EXPECT_NE(f, nullptr);
        EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
        return path;
    }
};

TEST(TraceStoreCorruption, OverlongVarintIsRejected)
{
    // col0 (pc) holds a 10-byte varint whose final byte encodes
    // payload bits beyond 2^64. An unchecked decoder shifts those
    // bits out of the accumulator and accepts a silently wrong
    // value; the loader must reject the file instead.
    CraftedStore f(344);
    f.col(0, 240, 10);
    for (int i = 0; i < 9; ++i)
        f.bytes[240 + i] = 0xff;
    f.bytes[249] = 0x7f; // terminator carrying bits past the 64th
    std::uint64_t off = 256;
    for (std::size_t c = 1; c < 12; ++c, off += 8)
        f.col(c, off, 1); // zero bytes: valid varints / raw values

    const std::string path = f.write("overlongvarint");
    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::Truncated);
    std::remove(path.c_str());
}

TEST(TraceStoreCorruption, ColumnExtentOverflowIsRejected)
{
    // col0's byte count is chosen so offset + bytes wraps past 2^64
    // to a small value: a naive extent check passes and the decoder
    // walks off the end of the mapping. The file is exactly one page
    // so the overrun genuinely leaves the mapped range (continuation
    // bytes run right up to the last file byte). Without the
    // overflow-safe check the failure is an out-of-bounds read /
    // pointer overflow, caught deterministically by the ASan+UBSan
    // CI configuration.
    CraftedStore f(4096);
    f.col(0, 4088, ~std::uint64_t{0} - 4080); // 4088 + bytes == 8
    for (int i = 0; i < 8; ++i)
        f.bytes[4088 + i] = 0xff;
    std::uint64_t off = 240;
    for (std::size_t c = 1; c < 12; ++c, off += 8)
        f.col(c, off, 1);

    const std::string path = f.write("extentwrap");
    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::Truncated);
    std::remove(path.c_str());
}

TEST(TraceStoreCorruption, TruncatedVarintAtColumnEndIsRejected)
{
    // A continuation bit on the last byte of the column promises more
    // bytes than the column holds.
    CraftedStore f(344);
    f.col(0, 240, 1);
    f.bytes[240] = 0x80;
    std::uint64_t off = 248;
    for (std::size_t c = 1; c < 12; ++c, off += 8)
        f.col(c, off, 1);

    const std::string path = f.write("truncvarint");
    TraceSoA soa;
    EXPECT_EQ(loadTraceStore(soa, path), TraceIoStatus::Truncated);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace csim
