/**
 * @file
 * Observability tests: the stats registry (registration, panics,
 * snapshot merge), its integration into TimingSim, the O3PipeView
 * pipeline tracer (exact golden output on a hand-analysable program,
 * lifecycle ordering on a paper example), and the JSON report
 * round-trip through BenchContext + FigureGrid::toJson.
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "emu/emulator.hh"
#include "frontend/branch_annotator.hh"
#include "harness/experiment.hh"
#include "harness/json_report.hh"
#include "mem/latency_annotator.hh"
#include "obs/pipe_trace.hh"
#include "obs/stats_registry.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "workloads/micro.hh"

namespace csim {
namespace {

const auto r = Program::r;

Trace
prepare(const Program &p, std::uint64_t n = 100000)
{
    Emulator emu(p);
    Trace t = emu.run(n);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);
    return t;
}

SimResult
runMono(const Trace &trace, const SimOptions &opts = SimOptions{})
{
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    return TimingSim(MachineConfig::monolithic(), trace, steer, age,
                     nullptr, opts)
        .run();
}

// ------------------------------------------------------------------ //
// StatsRegistry / StatsSnapshot

TEST(StatsRegistry, CountersAndFormulas)
{
    StatsRegistry reg;
    Counter &a = reg.addCounter("a.count", "a counter");
    Counter &b = reg.addCounter("a.other");
    reg.addFormula("a.ratio", [&] {
        return b.value() ? static_cast<double>(a.value()) /
            static_cast<double>(b.value()) : 0.0;
    });

    ++a;
    a += 4;
    b.inc(2);

    EXPECT_TRUE(reg.has("a.count"));
    EXPECT_FALSE(reg.has("a.missing"));
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.description("a.count"), "a counter");

    StatsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("a.count"), 5.0);
    EXPECT_EQ(snap.value("a.other"), 2.0);
    EXPECT_DOUBLE_EQ(snap.value("a.ratio"), 2.5);
    EXPECT_EQ(snap.at("a.count").kind, StatKind::Counter);
    EXPECT_EQ(snap.at("a.ratio").kind, StatKind::Formula);

    // The snapshot is frozen; later counting doesn't affect it.
    a += 100;
    EXPECT_EQ(snap.value("a.count"), 5.0);
}

TEST(StatsRegistry, Distributions)
{
    StatsRegistry reg;
    Histogram &h = reg.addDistribution("d", 4, 0.0, 4.0);
    h.add(0.5);
    h.add(2.5);
    h.add(2.6);

    StatsSnapshot snap = reg.snapshot();
    const StatValue &v = snap.at("d");
    EXPECT_EQ(v.kind, StatKind::Distribution);
    ASSERT_EQ(v.buckets.size(), 4u);
    EXPECT_EQ(v.buckets[0], 1u);
    EXPECT_EQ(v.buckets[2], 2u);
    EXPECT_EQ(v.value, 3.0);  // total samples
    EXPECT_EQ(v.lo, 0.0);
    EXPECT_EQ(v.hi, 4.0);
}

TEST(StatsRegistryDeathTest, DuplicateNamePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatsRegistry reg;
    reg.addCounter("dup");
    EXPECT_DEATH(reg.addCounter("dup"), "dup");
}

TEST(StatsRegistryDeathTest, MalformedNamePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatsRegistry reg;
    EXPECT_DEATH(reg.addCounter(""), "name");
    EXPECT_DEATH(reg.addCounter(".leading"), "name");
    EXPECT_DEATH(reg.addCounter("trailing."), "name");
    EXPECT_DEATH(reg.addCounter("a..b"), "name");
    EXPECT_DEATH(reg.addCounter("sp ace"), "name");
}

TEST(StatsSnapshot, MergeSemantics)
{
    StatsRegistry r1, r2;
    r1.addCounter("c").inc(3);
    r2.addCounter("c").inc(5);
    r1.addFormula("f", [] { return 1.0; });
    r2.addFormula("f", [] { return 3.0; });
    r1.addDistribution("d", 2, 0.0, 2.0).add(0.5);
    r2.addDistribution("d", 2, 0.0, 2.0).add(1.5);
    r2.addCounter("only2").inc(7);

    StatsSnapshot s = r1.snapshot();
    s.merge(r2.snapshot());

    EXPECT_EQ(s.value("c"), 8.0);             // counters sum
    EXPECT_DOUBLE_EQ(s.value("f"), 2.0);      // formulas average
    EXPECT_EQ(s.at("d").buckets[0], 1u);      // buckets sum
    EXPECT_EQ(s.at("d").buckets[1], 1u);
    EXPECT_EQ(s.value("only2"), 7.0);         // unknown names adopted
    EXPECT_EQ(s.at("c").mergeCount, 2u);

    // Three-way formula merge stays the running mean.
    StatsRegistry r3;
    r3.addFormula("f", [] { return 8.0; });
    s.merge(r3.snapshot());
    EXPECT_DOUBLE_EQ(s.value("f"), 4.0);      // (1 + 3 + 8) / 3
}

TEST(StatsSnapshotDeathTest, MergeGeometryMismatchPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatsRegistry r1, r2;
    r1.addDistribution("d", 2, 0.0, 2.0);
    r2.addDistribution("d", 4, 0.0, 2.0);
    StatsSnapshot s = r1.snapshot();
    EXPECT_DEATH(s.merge(r2.snapshot()), "d");
}

// ------------------------------------------------------------------ //
// TimingSim integration

TEST(StatsIntegration, RegistryMatchesLegacyFields)
{
    Program p;
    for (int i = 0; i < 256; ++i)
        p.addi(r(1 + (i % 8)), r(1 + ((i + 1) % 8)), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    SimResult res =
        TimingSim(MachineConfig::clustered(4), t, steer, age).run();

    // The legacy SimResult fields are copies of registry counters.
    EXPECT_EQ(res.stats.value("sim.globalValues"),
              static_cast<double>(res.globalValues));
    EXPECT_EQ(res.stats.value("steer.stallCycles"),
              static_cast<double>(res.steerStallCycles));
    EXPECT_EQ(res.stats.value("sim.cycles"),
              static_cast<double>(res.cycles));
    EXPECT_EQ(res.stats.value("sim.instructions"),
              static_cast<double>(res.instructions));
    EXPECT_DOUBLE_EQ(res.stats.value("sim.cpi"), res.cpi());

    // Core counters exist and the registry is comfortably rich.
    EXPECT_GE(res.stats.size(), 10u);
    EXPECT_TRUE(res.stats.has("fetch.stallCycles"));
    EXPECT_TRUE(res.stats.has("steer.reason.noProducer"));
    EXPECT_TRUE(res.stats.has("sim.cluster0.issue.int"));
    EXPECT_TRUE(res.stats.has("sim.cluster3.window.occupancy"));

    // Every committed instruction was steered for exactly one reason.
    double reasons = 0.0;
    for (const char *s : {"monolithic", "noProducer", "collocated",
                          "loadBalanced", "proactiveLb"})
        reasons += res.stats.value(std::string("steer.reason.") + s);
    EXPECT_EQ(reasons, static_cast<double>(res.instructions));

    // Issue-port counts sum to the committed instruction count.
    double issued = 0.0;
    for (unsigned c = 0; c < 4; ++c)
        for (const char *port : {"int", "fp", "mem"})
            issued += res.stats.value("sim.cluster" +
                                      std::to_string(c) + ".issue." +
                                      port);
    EXPECT_EQ(issued, static_cast<double>(res.instructions));
}

TEST(StatsIntegration, AggregateMergesSeeds)
{
    ExperimentConfig cfg;
    cfg.instructions = 2000;
    cfg.seeds = {1, 2};
    AggregateResult agg = runAggregate(
        "gcc", MachineConfig::clustered(2), PolicyKind::FocusedLoc,
        cfg);
    EXPECT_GE(agg.stats.size(), 10u);
    EXPECT_EQ(agg.stats.at("sim.cycles").mergeCount, 2u);
    EXPECT_EQ(agg.stats.value("sim.instructions"),
              static_cast<double>(agg.instructions));
    EXPECT_EQ(agg.stats.value("sim.cycles"),
              static_cast<double>(agg.cycles));
    // The policy stack's predictor/trainer stats ride along.
    EXPECT_TRUE(agg.stats.has("predict.crit.trains"));
    EXPECT_TRUE(agg.stats.has("predict.loc.trains"));
    EXPECT_TRUE(agg.stats.has("train.chunks"));
}

// ------------------------------------------------------------------ //
// Pipeline tracer

TEST(PipeTrace, GoldenSingleInstruction)
{
    // One independent addi on the monolithic machine; every timestamp
    // is derivable by hand: fetched cycle 0, leaves the 13-stage
    // front end at 13, issues at 14, completes (1-cycle op) at 15,
    // commits the cycle after.
    Program p;
    p.addi(r(1), r(2), 7);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    ASSERT_EQ(t.size(), 1u);

    SimOptions opts;
    std::ostringstream out;
    PipeTracer tracer(out);
    opts.pipeTracer = &tracer;
    SimResult res = runMono(t, opts);
    ASSERT_EQ(res.instructions, 1u);
    EXPECT_EQ(tracer.traced(), 1u);

    EXPECT_EQ(out.str(),
              "O3PipeView:fetch:0:0x00001000:0:0:addi c0 crit=0 "
              "loc=0\n"
              "O3PipeView:decode:13\n"
              "O3PipeView:rename:13\n"
              "O3PipeView:dispatch:13\n"
              "O3PipeView:issue:14\n"
              "O3PipeView:complete:15\n"
              "O3PipeView:retire:16:store:0\n");

    // The post-hoc writer reproduces the streaming output.
    std::ostringstream post;
    writePipeTrace(post, t, res.timing);
    EXPECT_EQ(post.str(), out.str());
}

TEST(PipeTrace, OrderingOnPaperExample)
{
    // Fig. 9's serial dependence chain on the 8x1w machine: the
    // stage ordering fetch <= dispatch <= issue <= complete < retire
    // must hold for every traced instruction.
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 2000;
    wcfg.seed = 1;
    Trace t = buildMicroSerialChain(wcfg);
    t.linkProducers();
    annotateBranches(t);
    annotateMemory(t);

    std::ostringstream out;
    PipeTracer tracer(out);
    SimOptions opts;
    opts.pipeTracer = &tracer;
    UnifiedSteering steer(UnifiedSteeringOptions{}, nullptr, nullptr);
    AgeScheduling age;
    SimResult res = TimingSim(MachineConfig::clustered(8), t, steer,
                              age, nullptr, opts)
                        .run();
    EXPECT_EQ(tracer.traced(), res.instructions);

    // Parse the stream back and re-check the ordering record by
    // record (the tracer asserts it too, but the text is the API).
    std::istringstream in(out.str());
    std::string line;
    std::uint64_t records = 0;
    std::uint64_t fetch = 0, dispatch = 0, issue = 0, complete = 0;
    while (std::getline(in, line)) {
        std::uint64_t cyc = 0;
        if (std::sscanf(line.c_str(), "O3PipeView:fetch:%" SCNu64,
                        &cyc) == 1) {
            fetch = cyc;
        } else if (std::sscanf(line.c_str(),
                               "O3PipeView:dispatch:%" SCNu64,
                               &cyc) == 1) {
            dispatch = cyc;
        } else if (std::sscanf(line.c_str(),
                               "O3PipeView:issue:%" SCNu64,
                               &cyc) == 1) {
            issue = cyc;
        } else if (std::sscanf(line.c_str(),
                               "O3PipeView:complete:%" SCNu64,
                               &cyc) == 1) {
            complete = cyc;
        } else if (std::sscanf(line.c_str(),
                               "O3PipeView:retire:%" SCNu64,
                               &cyc) == 1) {
            EXPECT_LE(fetch, dispatch);
            EXPECT_LE(dispatch, issue);
            EXPECT_LE(issue, complete);
            EXPECT_LT(complete, cyc);
            ++records;
        }
    }
    EXPECT_EQ(records, res.instructions);
}

TEST(PipeTrace, SamplingWindow)
{
    Program p;
    for (int i = 0; i < 50; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);

    PipeTraceOptions w;
    w.startInst = 10;
    w.endInst = 20;
    std::ostringstream out;
    PipeTracer tracer(out, w);
    SimOptions opts;
    opts.pipeTracer = &tracer;
    (void)runMono(t, opts);

    EXPECT_EQ(tracer.traced(), 10u);
    // Sequence numbers 10..19 only.
    EXPECT_EQ(out.str().find(":0:9:"), std::string::npos);
    EXPECT_NE(out.str().find(":0:10:"), std::string::npos);
    EXPECT_NE(out.str().find(":0:19:"), std::string::npos);
    EXPECT_EQ(out.str().find(":0:20:"), std::string::npos);
}

TEST(PipeTrace, CycleWindowGolden)
{
    Program p;
    for (int i = 0; i < 50; ++i)
        p.addi(r(1), r(1), 1);
    p.halt();
    p.finalize();
    Trace t = prepare(p);
    SimResult res = runMono(t);

    // Reference: the ungated trace, split into its 7-line records.
    std::ostringstream full;
    writePipeTrace(full, t, res.timing);
    std::vector<std::string> lines;
    {
        std::istringstream in(full.str());
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size() % 7, 0u);

    // Parse each record's fetch cycle (first numeric field of its
    // fetch line) and pick a window that is a proper, non-empty
    // subset of the observed fetch cycles.
    std::vector<Cycle> fetches;
    for (std::size_t i = 0; i < lines.size(); i += 7)
        fetches.push_back(std::stoull(lines[i].substr(
            std::string("O3PipeView:fetch:").size())));
    PipeTraceOptions w;
    w.startCycle = fetches[fetches.size() / 4];
    w.endCycle = fetches[3 * fetches.size() / 4];
    ASSERT_LT(w.startCycle, w.endCycle);

    // Golden gated output: records whose fetch lies in the window.
    std::string golden;
    for (std::size_t i = 0; i < lines.size(); i += 7) {
        if (fetches[i / 7] < w.startCycle ||
            fetches[i / 7] >= w.endCycle)
            continue;
        for (std::size_t j = 0; j < 7; ++j)
            golden += lines[i + j] + "\n";
    }
    EXPECT_FALSE(golden.empty());
    EXPECT_LT(golden.size(), full.str().size());

    std::ostringstream gated;
    writePipeTrace(gated, t, res.timing, w);
    EXPECT_EQ(gated.str(), golden);

    // Both gates compose: the cycle window ANDs with the inst window.
    PipeTraceOptions both = w;
    both.startInst = 0;
    both.endInst = 1;
    std::ostringstream none;
    writePipeTrace(none, t, res.timing, both);
    EXPECT_TRUE(none.str().empty());  // inst 0 fetches at cycle 0
}

// ------------------------------------------------------------------ //
// JSON report round-trip

TEST(JsonReport, WriterEscapesAndNests)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("s").value("a\"b\\c\nd");
    w.key("arr").beginArray().value(std::uint64_t{1}).value(2.5)
        .value(true).null().endArray();
    w.key("inf").value(1.0 / 0.0);
    w.endObject();
    EXPECT_EQ(out.str(),
              "{\"s\":\"a\\\"b\\\\c\\nd\","
              "\"arr\":[1,2.5,true,null],"
              "\"inf\":null}");
}

TEST(JsonReport, BenchContextRoundTrip)
{
    const std::string path =
        testing::TempDir() + "test_obs_report.json";

    const char *argv[] = {"test_bench", "--json", path.c_str(),
                          "--instructions", "1234", "--seeds", "4,5"};
    BenchContext ctx("test_bench", 7, const_cast<char **>(argv));

    ExperimentConfig cfg;
    ctx.apply(cfg);
    EXPECT_EQ(cfg.instructions, 1234u);
    ASSERT_EQ(cfg.seeds.size(), 2u);
    EXPECT_EQ(cfg.seeds[0], 4u);
    EXPECT_EQ(cfg.seeds[1], 5u);

    FigureGrid grid("t", {"c1", "c2"});
    grid.set("wl", "c1", 1.5);
    grid.set("wl", "c2", 2.5);
    ctx.addGrid(grid);
    ctx.addScalar("answer", 42.0);

    StatsRegistry reg;
    reg.addCounter("x.count").inc(9);
    reg.addDistribution("x.dist", 2, 0.0, 2.0).add(0.5);
    ctx.addRunStats("wl/1x8w/test", reg.snapshot());

    EXPECT_EQ(ctx.finish(), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();

    // Structural spot checks on the emitted document.
    EXPECT_NE(json.find("\"schemaVersion\":7"), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\":\"test_bench\""),
              std::string::npos);
    EXPECT_NE(json.find("\"threads\":"), std::string::npos);
    EXPECT_NE(json.find("\"wallSeconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"title\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"c1\":1.5"), std::string::npos);
    EXPECT_NE(json.find("\"answer\":42"), std::string::npos);
    EXPECT_NE(json.find("\"label\":\"wl/1x8w/test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"x.count\":9"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[1,0]"), std::string::npos);
    std::remove(path.c_str());
}

TEST(JsonReport, GridAccessors)
{
    FigureGrid grid("g", {"a", "b"});
    grid.set("r1", "a", 1.0);
    EXPECT_EQ(grid.title(), "g");
    ASSERT_EQ(grid.rows().size(), 1u);
    EXPECT_EQ(grid.rows()[0], "r1");
    EXPECT_TRUE(grid.has("r1", "a"));
    EXPECT_FALSE(grid.has("r1", "b"));
    EXPECT_EQ(grid.at("r1", "a"), 1.0);
}

} // anonymous namespace
} // namespace csim
