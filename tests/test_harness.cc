/**
 * @file
 * Tests for the experiment harness and reporting helpers.
 */

#include <gtest/gtest.h>

#include "core/machine_config.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

namespace csim {
namespace {

TEST(MachineConfigs, PaperPartitionings)
{
    const MachineConfig m1 = MachineConfig::monolithic();
    EXPECT_EQ(m1.numClusters, 1u);
    EXPECT_EQ(m1.cluster.issueWidth, 8u);
    EXPECT_EQ(m1.cluster.fpPorts, 4u);
    EXPECT_EQ(m1.cluster.memPorts, 4u);
    EXPECT_EQ(m1.windowPerCluster, 128u);
    EXPECT_EQ(m1.name(), "1x8w");

    const MachineConfig m2 = MachineConfig::clustered(2);
    EXPECT_EQ(m2.cluster.issueWidth, 4u);
    EXPECT_EQ(m2.cluster.fpPorts, 2u);
    EXPECT_EQ(m2.windowPerCluster, 64u);
    EXPECT_EQ(m2.name(), "2x4w");

    const MachineConfig m4 = MachineConfig::clustered(4);
    EXPECT_EQ(m4.cluster.issueWidth, 2u);
    EXPECT_EQ(m4.cluster.intPorts, 2u);
    EXPECT_EQ(m4.cluster.fpPorts, 1u);
    EXPECT_EQ(m4.cluster.memPorts, 1u);
    EXPECT_EQ(m4.windowPerCluster, 32u);
    EXPECT_EQ(m4.name(), "4x2w");

    // Footnote 1: each 1-wide cluster still gets a memory port and a
    // floating point ALU.
    const MachineConfig m8 = MachineConfig::clustered(8);
    EXPECT_EQ(m8.cluster.issueWidth, 1u);
    EXPECT_EQ(m8.cluster.fpPorts, 1u);
    EXPECT_EQ(m8.cluster.memPorts, 1u);
    EXPECT_EQ(m8.windowPerCluster, 16u);
    EXPECT_EQ(m8.name(), "8x1w");
}

TEST(MachineConfigs, GenericGeometry)
{
    const MachineConfig g = MachineConfig::generic(16, 1);
    EXPECT_EQ(g.numClusters, 16u);
    EXPECT_EQ(g.cluster.issueWidth, 1u);
    EXPECT_EQ(g.windowPerCluster, 8u);
    EXPECT_EQ(g.name(), "16x1w");
    EXPECT_EQ(g.totalWidth(), 16u);
}

TEST(Harness, PolicyNamesExist)
{
    for (PolicyKind k :
         {PolicyKind::ModN, PolicyKind::LoadBal, PolicyKind::Dep,
          PolicyKind::Focused, PolicyKind::FocusedLoc,
          PolicyKind::FocusedLocStall,
          PolicyKind::FocusedLocStallProactive}) {
        EXPECT_NE(policyName(k), nullptr);
    }
}

TEST(Harness, AggregateAccumulatesSeeds)
{
    ExperimentConfig cfg;
    cfg.instructions = 3000;
    cfg.seeds = {1, 2, 3};
    cfg.warmupRuns = 0;
    AggregateResult res = runAggregate(
        "vpr", MachineConfig::clustered(2), PolicyKind::Dep, cfg);
    EXPECT_EQ(res.instructions, 9000u);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.cpi(), 0.1);
    EXPECT_LT(res.cpi(), 10.0);

    // Breakdown covers the full runtime of every seed: category sum
    // is close to total cycles (one commit cycle per seed is
    // definitionally outside the walk).
    std::uint64_t cats = 0;
    for (std::size_t c = 0; c < numCpCategories; ++c)
        cats += res.categoryCycles[c];
    EXPECT_GE(cats + 3 * 2, res.cycles);
    EXPECT_LE(cats, res.cycles);
}

TEST(Harness, IdealAggregateRuns)
{
    ExperimentConfig cfg;
    cfg.instructions = 3000;
    cfg.seeds = {1};
    AggregateResult ideal = runIdealAggregate(
        "gzip", MachineConfig::clustered(4), cfg);
    EXPECT_EQ(ideal.instructions, 3000u);
    EXPECT_GT(ideal.cycles, 0u);
}

TEST(Harness, WarmupImprovesOrMatchesFocused)
{
    // With warmed predictors the focused policy should rarely be
    // (much) worse than with cold predictors.
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 12000;
    wcfg.seed = 1;
    Trace trace = buildAnnotatedTrace("gzip", wcfg);

    ExperimentConfig cold;
    cold.warmupRuns = 0;
    ExperimentConfig warm;
    warm.warmupRuns = 1;
    const MachineConfig mc = MachineConfig::clustered(4);
    PolicyRun rc = runPolicy(trace, mc, PolicyKind::FocusedLoc, cold);
    PolicyRun rw = runPolicy(trace, mc, PolicyKind::FocusedLoc, warm);
    EXPECT_LE(rw.sim.cycles,
              rc.sim.cycles + rc.sim.cycles / 10);
}

TEST(MachineConfigsDeath, InvalidClusterCountPanics)
{
    EXPECT_DEATH(MachineConfig::clustered(3), "");
    EXPECT_DEATH(MachineConfig::clustered(0), "");
    EXPECT_DEATH(MachineConfig::clustered(16), "");
}

TEST(Harness, AblationKnobsArePlumbedThrough)
{
    // Different LoC stratifications and stall thresholds must produce
    // valid (and generally different) runs.
    WorkloadConfig wcfg;
    wcfg.targetInstructions = 8000;
    wcfg.seed = 1;
    Trace trace = buildAnnotatedTrace("gzip", wcfg);
    const MachineConfig mc = MachineConfig::clustered(8);

    ExperimentConfig coarse;
    coarse.locLevels = 2;
    ExperimentConfig fine;
    fine.locLevels = 16;
    PolicyRun a = runPolicy(trace, mc, PolicyKind::FocusedLoc, coarse);
    PolicyRun b = runPolicy(trace, mc, PolicyKind::FocusedLoc, fine);
    EXPECT_GT(a.sim.cycles, 0u);
    EXPECT_GT(b.sim.cycles, 0u);

    ExperimentConfig lenient;
    lenient.stallThreshold = 0.05;
    ExperimentConfig strict;
    strict.stallThreshold = 0.95;
    PolicyRun c = runPolicy(trace, mc, PolicyKind::FocusedLocStall,
                            lenient);
    PolicyRun d = runPolicy(trace, mc, PolicyKind::FocusedLocStall,
                            strict);
    // A near-zero threshold stalls far more often.
    EXPECT_GT(c.sim.steerStallCycles, d.sim.steerStallCycles);
}

TEST(FigureGrid, AveragesAndFormats)
{
    FigureGrid grid("title", {"a", "b"});
    grid.set("w1", "a", 1.0);
    grid.set("w2", "a", 3.0);
    grid.set("w1", "b", 2.0);
    EXPECT_DOUBLE_EQ(grid.columnAverage("a"), 2.0);
    EXPECT_DOUBLE_EQ(grid.columnAverage("b"), 2.0);
    const std::string s = grid.str();
    EXPECT_NE(s.find("title"), std::string::npos);
    EXPECT_NE(s.find("AVE"), std::string::npos);
    EXPECT_NE(s.find("1.000"), std::string::npos);
    // Missing cells render as '-'.
    EXPECT_NE(s.find("-"), std::string::npos);
}

TEST(ReportMath, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

} // anonymous namespace
} // namespace csim
