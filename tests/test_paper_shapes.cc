/**
 * @file
 * Paper-shape regression tests: small-scale versions of the headline
 * results that must keep holding as the code evolves. These are the
 * repository's contract with the paper:
 *  - idealized clustering penalties are small (Fig. 2),
 *  - real-policy penalties grow with cluster count (Fig. 4),
 *  - LoC scheduling cuts critical contention (Sec. 4 / Fig. 14 'l'),
 *  - stall-over-steer rescues execute-critical programs (Sec. 5),
 *  - the LoC distribution has a dominant never-critical spike
 *    (Fig. 8),
 *  - achieved ILP saturates below the width near the machine width
 *    (Fig. 15).
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "harness/experiment.hh"

namespace csim {
namespace {

ExperimentConfig
quickConfig()
{
    ExperimentConfig cfg;
    cfg.instructions = 30000;
    cfg.seeds = {1};
    return cfg;
}

TEST(PaperShapes, IdealClusteringPenaltyIsSmall)
{
    ExperimentConfig cfg = quickConfig();
    double worst = 0.0;
    for (const char *wl : {"gcc", "gzip", "perl", "vortex"}) {
        AggregateResult base = runIdealAggregate(
            wl, MachineConfig::monolithic(), cfg);
        AggregateResult quad = runIdealAggregate(
            wl, MachineConfig::clustered(4), cfg);
        worst = std::max(worst, quad.cpi() / base.cpi());
    }
    // Fig. 2: idealized 4x2w within a few percent of monolithic.
    EXPECT_LT(worst, 1.05);
}

TEST(PaperShapes, FocusedPenaltyGrowsWithClusterCount)
{
    ExperimentConfig cfg = quickConfig();
    double avg[3] = {0.0, 0.0, 0.0};
    const char *wls[] = {"gzip", "vpr", "crafty", "mcf"};
    for (const char *wl : wls) {
        AggregateResult base = runAggregate(
            wl, MachineConfig::monolithic(), PolicyKind::Focused,
            cfg);
        int k = 0;
        for (unsigned n : {2u, 4u, 8u}) {
            AggregateResult clus = runAggregate(
                wl, MachineConfig::clustered(n), PolicyKind::Focused,
                cfg);
            avg[k++] += clus.cpi() / base.cpi();
        }
    }
    EXPECT_LT(avg[0], avg[1]);   // 2 clusters better than 4
    EXPECT_LT(avg[1], avg[2]);   // 4 better than 8
    EXPECT_GT(avg[2] / 4.0, 1.03);  // and 8x1w penalties are real
}

TEST(PaperShapes, IdealBeatsFocusedByALot)
{
    // The central claim: the gap between Fig. 2 and Fig. 4.
    ExperimentConfig cfg = quickConfig();
    double ideal_sum = 0.0, focused_sum = 0.0;
    for (const char *wl : {"gzip", "parser", "bzip2"}) {
        AggregateResult ib = runIdealAggregate(
            wl, MachineConfig::monolithic(), cfg);
        AggregateResult ic = runIdealAggregate(
            wl, MachineConfig::clustered(8), cfg);
        ideal_sum += ic.cpi() / ib.cpi();
        AggregateResult fb = runAggregate(
            wl, MachineConfig::monolithic(), PolicyKind::Focused,
            cfg);
        AggregateResult fc = runAggregate(
            wl, MachineConfig::clustered(8), PolicyKind::Focused,
            cfg);
        focused_sum += fc.cpi() / fb.cpi();
    }
    EXPECT_LT(ideal_sum / 3.0 - 1.0,
              (focused_sum / 3.0 - 1.0) / 2.5);
}

TEST(PaperShapes, LocSchedulingCutsCriticalContention)
{
    // Sec. 4 / Fig. 14: LoC-based scheduling halves contention-stall
    // time relative to binary criticality. Check the direction with a
    // generous margin on the aggregate.
    ExperimentConfig cfg = quickConfig();
    std::uint64_t binary_cont = 0, loc_cont = 0;
    for (const char *wl : {"gzip", "mcf", "parser", "gcc"}) {
        AggregateResult bin = runAggregate(
            wl, MachineConfig::clustered(4), PolicyKind::Focused,
            cfg);
        AggregateResult loc = runAggregate(
            wl, MachineConfig::clustered(4), PolicyKind::FocusedLoc,
            cfg);
        binary_cont += bin.categoryCycles[static_cast<std::size_t>(
            CpCategory::Contention)];
        loc_cont += loc.categoryCycles[static_cast<std::size_t>(
            CpCategory::Contention)];
    }
    EXPECT_LT(loc_cont, binary_cont);
}

TEST(PaperShapes, StallOverSteerRescuesGzip)
{
    // Sec. 7: stall-over-steer buys ~20% on gzip's 8-cluster machine.
    ExperimentConfig cfg = quickConfig();
    AggregateResult without = runAggregate(
        "gzip", MachineConfig::clustered(8), PolicyKind::FocusedLoc,
        cfg);
    AggregateResult with_stall = runAggregate(
        "gzip", MachineConfig::clustered(8),
        PolicyKind::FocusedLocStall, cfg);
    EXPECT_LT(with_stall.cpi(), without.cpi());
}

TEST(PaperShapes, PoliciesReduceEightClusterPenalty)
{
    // Fig. 14 headline: the full stack cuts the focused penalty.
    ExperimentConfig cfg = quickConfig();
    double focused = 0.0, full = 0.0;
    const char *wls[] = {"gzip", "mcf", "parser", "gap"};
    for (const char *wl : wls) {
        AggregateResult base = runAggregate(
            wl, MachineConfig::monolithic(), PolicyKind::FocusedLoc,
            cfg);
        focused += runAggregate(wl, MachineConfig::clustered(8),
                                PolicyKind::Focused, cfg).cpi() /
            base.cpi();
        full += runAggregate(wl, MachineConfig::clustered(8),
                             PolicyKind::FocusedLocStallProactive,
                             cfg).cpi() /
            base.cpi();
    }
    EXPECT_LT(full, focused);
    // At least a third of the penalty disappears on this sample.
    EXPECT_LT(full - 4.0, (focused - 4.0) * 0.67);
}

TEST(PaperShapes, LocDistributionHasNeverCriticalSpike)
{
    // Fig. 8: the 0% bucket dominates.
    ExperimentConfig cfg = quickConfig();
    WorkloadConfig wcfg;
    wcfg.targetInstructions = cfg.instructions;
    wcfg.seed = 1;

    std::uint64_t never = 0, total = 0;
    for (const char *wl : {"vpr", "gcc", "vortex"}) {
        Trace trace = buildAnnotatedTrace(wl, wcfg);
        PolicyRun run = runPolicy(trace, MachineConfig::monolithic(),
                                  PolicyKind::Focused, cfg);
        std::vector<bool> crit = criticalityGroundTruth(
            trace, run.sim, MachineConfig::monolithic());
        std::unordered_map<Addr,
                           std::pair<std::uint64_t,
                                     std::uint64_t>> per_pc;
        for (std::uint64_t i = 0; i < trace.size(); ++i) {
            auto &e = per_pc[trace[i].pc];
            ++e.second;
            if (crit[i])
                ++e.first;
        }
        for (const auto &[pc, e] : per_pc) {
            (void)pc;
            total += e.second;
            if (e.first * 20 < e.second)   // LoC below 5%
                never += e.second;
        }
    }
    EXPECT_GT(static_cast<double>(never) /
                  static_cast<double>(total),
              0.35);
}

TEST(PaperShapes, AchievedIlpSaturatesNearMachineWidth)
{
    // Fig. 15 on the 8x1w machine.
    ExperimentConfig cfg = quickConfig();
    cfg.simOptions.collectIlp = true;

    std::vector<double> issued(65, 0.0), cycles(65, 0.0);
    for (const char *wl : {"vortex", "gcc", "eon"}) {
        WorkloadConfig wcfg;
        wcfg.targetInstructions = cfg.instructions;
        wcfg.seed = 1;
        Trace trace = buildAnnotatedTrace(wl, wcfg);
        PolicyRun run = runPolicy(
            trace, MachineConfig::clustered(8),
            PolicyKind::FocusedLocStallProactive, cfg);
        for (std::size_t a = 0; a < run.sim.ilpCycles.size(); ++a) {
            issued[a] += static_cast<double>(run.sim.ilpIssuedSum[a]);
            cycles[a] += static_cast<double>(run.sim.ilpCycles[a]);
        }
    }

    auto achieved = [&](std::size_t a) {
        return cycles[a] > 0 ? issued[a] / cycles[a] : 0.0;
    };
    // Tracks available at low ILP...
    ASSERT_GT(cycles[1], 0.0);
    EXPECT_GT(achieved(1), 0.9);
    // ...but saturates below the full width near the machine width.
    if (cycles[8] > 100.0) {
        EXPECT_LT(achieved(8), 7.0);
    }
}

} // anonymous namespace
} // namespace csim
