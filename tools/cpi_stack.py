#!/usr/bin/env python3
"""Render the interval CPI stacks in a schema-v3 bench report.

Usage: cpi_stack.py [--csv] [--run SUBSTR] [--width N] report.json

Default output is one ASCII block per profiled run: a summary line
(total cycles, CPI when commits are recorded) followed by one bar per
interval, each cycle-width-proportional and lettered by component:

  gcc/4x2w/focused  (cycles=60210, intervals=7, cpi=1.004)
    [     0] BBBBBBBBBBBBBBWWWWMMM..  base=62% window=17% memory=12%
    ...

Component letters: B=base W=window S=steerStall Y=bypass C=contention
L=loadImbalance X=execute M=memory F=frontend.

--csv instead emits one row per (run, interval) with the raw component
cycle counts, suitable for plotting:

  run,interval,start,cycles,commits,base,window,steerStall,bypass,...

--run filters runs by substring match on the label.

A malformed report — unreadable file, invalid JSON, a non-object top
level, runs whose "intervals" lack the series/cycles keys — exits 1
with a one-line diagnostic instead of a traceback.
"""

import argparse
import json
import sys

# (json key, bar letter) in emission order.
COMPONENTS = [
    ("base", "B"),
    ("window", "W"),
    ("steerStall", "S"),
    ("bypass", "Y"),
    ("contention", "C"),
    ("loadImbalance", "L"),
    ("execute", "X"),
    ("memory", "M"),
    ("frontend", "F"),
]


def profiled_runs(report, run_filter):
    for run in report.get("runs", []):
        if "intervals" not in run:
            continue
        if run_filter and run_filter not in run.get("label", ""):
            continue
        yield run


def render_bar(stack, cycles, width):
    """Letter-proportional bar; largest-remainder rounding keeps the
    bar exactly `width` chars when the stack sums to `cycles`."""
    if cycles == 0:
        return " " * width
    shares = [(key, letter, stack.get(key, 0) * width / cycles)
              for key, letter, in COMPONENTS]
    cells = [(key, letter, int(share)) for key, letter, share in shares]
    assigned = sum(n for _, _, n in cells)
    remainders = sorted(
        range(len(shares)),
        key=lambda i: shares[i][2] - int(shares[i][2]),
        reverse=True)
    bonus = set(remainders[:width - assigned])
    bar = "".join(letter * (n + (1 if i in bonus else 0))
                  for i, (_, letter, n) in enumerate(cells))
    return bar.ljust(width, ".")[:width]


def top_shares(stack, cycles, n=3):
    pairs = sorted(((v, k) for k, v in stack.items() if v), reverse=True)
    return "  ".join(f"{k}={100 * v // cycles}%"
                     for v, k in pairs[:n]) if cycles else ""


def render_ascii(report, run_filter, width, out):
    shown = 0
    for run in profiled_runs(report, run_filter):
        iv = run["intervals"]
        series = iv["series"]
        cycles = sum(rec["cycles"] for rec in series)
        commits = sum(rec["commits"] for rec in series)
        cpi = f", cpi={cycles / commits:.3f}" if commits else ""
        print(f"{run['label']}  (cycles={cycles}, "
              f"intervals={len(series)}{cpi})", file=out)
        for rec in series:
            bar = render_bar(rec["cpiStack"], rec["cycles"], width)
            print(f"  [{rec['start']:>8}] {bar}  "
                  f"{top_shares(rec['cpiStack'], rec['cycles'])}",
                  file=out)
        shown += 1
    return shown


def render_csv(report, run_filter, out):
    header = ["run", "interval", "start", "cycles", "commits",
              "steers"] + [key for key, _ in COMPONENTS]
    print(",".join(header), file=out)
    shown = 0
    for run in profiled_runs(report, run_filter):
        for j, rec in enumerate(run["intervals"]["series"]):
            row = [run["label"], j, rec["start"], rec["cycles"],
                   rec["commits"], rec["steers"]]
            row += [rec["cpiStack"].get(key, 0)
                    for key, _ in COMPONENTS]
            print(",".join(str(v) for v in row), file=out)
        shown += 1
    return shown


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--csv", action="store_true",
                    help="emit CSV rows instead of ASCII bars")
    ap.add_argument("--run", default="",
                    help="only render runs whose label contains this")
    ap.add_argument("--width", type=int, default=60,
                    help="ASCII bar width in characters")
    ap.add_argument("report")
    args = ap.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
    except OSError as e:
        print(f"{args.report}: cannot read: {e}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(f"{args.report}: not valid JSON: {e}", file=sys.stderr)
        return 1
    if not isinstance(report, dict):
        print(f"{args.report}: top level is not an object",
              file=sys.stderr)
        return 1
    version = report.get("schemaVersion")
    if not isinstance(version, int) or version < 3:
        print(f"{args.report}: schemaVersion {version!r} has no "
              f"intervals (need 3)", file=sys.stderr)
        return 1

    try:
        if args.csv:
            shown = render_csv(report, args.run, sys.stdout)
        else:
            shown = render_ascii(report, args.run, args.width,
                                 sys.stdout)
    except (KeyError, TypeError, AttributeError) as e:
        print(f"{args.report}: malformed intervals object: "
              f"{type(e).__name__}: {e}", file=sys.stderr)
        return 1
    if shown == 0:
        print(f"{args.report}: no profiled runs matched "
              f"(did the bench run with --profile?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
