/**
 * @file
 * Differential fuzzer for the clustered timing simulator.
 *
 * Each case derives, from one 64-bit seed, a random-but-valid machine
 * geometry, a random well-formed synthetic trace and a policy stack,
 * then runs the timing simulator under the full pipeline invariant
 * checker (live hooks + post-run audit) and the differential CPI
 * oracles:
 *
 *   - the structural floor (CPI >= 1 / narrowest stage width),
 *   - for clustered geometries, the monolithic envelope: the same
 *     policy on one cluster owning the summed resources with free
 *     bypass can never lose to the clustered machine, and
 *   - the stepping differential: a bare run on the event-driven
 *     skip-ahead core must match the same case stepped densely in
 *     every observable — cycle count, every timing record and every
 *     registered stat.
 *
 * (The ideal list-scheduler bound is NOT applied here: its reference
 * schedule assumes the paper's Table-1 front end, which random
 * geometries deliberately violate. The harness `--check` path applies
 * it on the paper machines, where it is sound.)
 *
 * On the first failing case the fuzzer prints the seed, the derived
 * geometry and policy, the first violation, and the exact command
 * that replays just that case, then exits nonzero. CI runs a bounded
 * batch of seeds per push.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hh"
#include "harness/experiment.hh"
#include "policy/scheduling.hh"
#include "policy/steering.hh"
#include "trace/trace_soa.hh"
#include "trace/trace_store.hh"
#include "verify/oracle.hh"
#include "verify/random_trace.hh"

namespace {

using namespace csim;

struct FuzzArgs
{
    std::uint64_t startSeed = 1;
    std::uint64_t numSeeds = 64;
    std::uint64_t instructions = 1000;
    double relTol = 0.05;
    bool verbose = false;
};

[[noreturn]] void
usage(const char *bad)
{
    std::fprintf(stderr,
                 "usage: fuzz_sim [--start S] [--seeds N] "
                 "[--instructions N] [--tol F] [--verbose]\n");
    std::exit(bad ? 2 : 0);
}

std::uint64_t
parseU64(const char *flag, const char *v)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (*v == '\0' || *end != '\0') {
        std::fprintf(stderr, "fuzz_sim: bad %s '%s'\n", flag, v);
        std::exit(2);
    }
    return n;
}

FuzzArgs
parseArgs(int argc, char **argv)
{
    FuzzArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[i]);
            return argv[++i];
        };
        if (arg == "--start")
            args.startSeed = parseU64("--start", next());
        else if (arg == "--seeds")
            args.numSeeds = parseU64("--seeds", next());
        else if (arg == "--instructions")
            args.instructions =
                parseU64("--instructions", next());
        else if (arg == "--tol")
            args.relTol = std::atof(next());
        else if (arg == "--verbose")
            args.verbose = true;
        else if (arg == "--help" || arg == "-h")
            usage(nullptr);
        else
            usage(arg.c_str());
    }
    return args;
}

const PolicyKind fuzzPolicies[] = {
    PolicyKind::ModN,
    PolicyKind::LoadBal,
    PolicyKind::Dep,
    PolicyKind::Focused,
    PolicyKind::FocusedLoc,
    PolicyKind::FocusedLocStall,
    PolicyKind::FocusedLocStallProactive,
};

void
describeCase(const MachineConfig &config, PolicyKind kind,
             std::uint64_t instructions)
{
    std::fprintf(
        stderr,
        "  machine %s: clusters=%u width=%u int=%u fp=%u mem=%u "
        "window=%u rob=%u fetch=%u dispatch=%u commit=%u depth=%u "
        "fwd=%u stopAtTaken=%d\n  policy %s, trace %llu insts\n",
        config.name().c_str(), config.numClusters,
        config.cluster.issueWidth, config.cluster.intPorts,
        config.cluster.fpPorts, config.cluster.memPorts,
        config.windowPerCluster, config.robEntries,
        config.fetchWidth, config.dispatchWidth, config.commitWidth,
        config.frontendDepth, config.fwdLatency,
        config.fetchStopAtTaken ? 1 : 0, policyName(kind),
        static_cast<unsigned long long>(instructions));
}

/** Cycles the skip-ahead jumped over, summed over the whole batch.
 *  Random traces always contain idle spans somewhere, so a batch in
 *  which the skip path never engaged means it is broken (or silently
 *  disabled) and the differential below proved nothing. */
std::uint64_t batchSkipCycles = 0;

/** Compare one InstTiming field across the two stepping modes. */
template <typename T>
bool
timingFieldDiffers(const char *name, T skip, T dense, InstId id,
                   std::string &detail)
{
    if (skip == dense)
        return false;
    detail = "skip-vs-dense: inst " + std::to_string(id) + " " +
        name + " " + std::to_string(static_cast<long long>(skip)) +
        " != " + std::to_string(static_cast<long long>(dense));
    return true;
}

/**
 * Returns "" when the event-driven run and the dense run agree on
 * every observable, else the first mismatch. Both runs are bare (no
 * checker, no profiler) so the skip path actually engages.
 */
std::string
checkSteppingDifferential(const Trace &trace,
                          const MachineConfig &config, PolicyKind kind,
                          ExperimentConfig cfg)
{
    cfg.verify = VerifyConfig{};
    cfg.profile = ProfileConfig{};
    cfg.simOptions.legacyStep = false;
    const PolicyRun skip = runPolicy(trace, config, kind, cfg);
    cfg.simOptions.legacyStep = true;
    const PolicyRun dense = runPolicy(trace, config, kind, cfg);

    if (dense.skipCycles != 0 || dense.skipSpans != 0)
        return "skip-vs-dense: --legacy-step run reported skipped "
               "cycles";
    batchSkipCycles += skip.skipCycles;

    if (skip.sim.cycles != dense.sim.cycles)
        return "skip-vs-dense: cycles " +
            std::to_string(skip.sim.cycles) + " != " +
            std::to_string(dense.sim.cycles);
    if (skip.sim.instructions != dense.sim.instructions)
        return "skip-vs-dense: instructions " +
            std::to_string(skip.sim.instructions) + " != " +
            std::to_string(dense.sim.instructions);

    if (skip.sim.timing.size() != dense.sim.timing.size())
        return "skip-vs-dense: timing record counts differ";
    for (InstId id = 0; id < skip.sim.timing.size(); ++id) {
        const InstTiming &s = skip.sim.timing[id];
        const InstTiming &d = dense.sim.timing[id];
        std::string detail;
        if (timingFieldDiffers("fetch", s.fetch, d.fetch, id, detail) ||
            timingFieldDiffers("dispatch", s.dispatch, d.dispatch, id,
                               detail) ||
            timingFieldDiffers("ready", s.ready, d.ready, id, detail) ||
            timingFieldDiffers("issue", s.issue, d.issue, id, detail) ||
            timingFieldDiffers("complete", s.complete, d.complete, id,
                               detail) ||
            timingFieldDiffers("commit", s.commit, d.commit, id,
                               detail) ||
            timingFieldDiffers("cluster", s.cluster, d.cluster, id,
                               detail) ||
            timingFieldDiffers("desired", s.desired, d.desired, id,
                               detail) ||
            timingFieldDiffers("reason",
                               static_cast<unsigned>(s.reason),
                               static_cast<unsigned>(d.reason), id,
                               detail) ||
            timingFieldDiffers("predictedCritical",
                               s.predictedCritical,
                               d.predictedCritical, id, detail) ||
            timingFieldDiffers("locLevel", s.locLevel, d.locLevel, id,
                               detail) ||
            timingFieldDiffers("dyadicSplit", s.dyadicSplit,
                               d.dyadicSplit, id, detail) ||
            timingFieldDiffers("crossMask", s.crossMask, d.crossMask,
                               id, detail))
            return detail;
    }

    const auto &se = skip.sim.stats.entries();
    const auto &de = dense.sim.stats.entries();
    if (se.size() != de.size())
        return "skip-vs-dense: stat counts differ";
    for (std::size_t i = 0; i < se.size(); ++i) {
        if (se[i].first != de[i].first)
            return "skip-vs-dense: stat order differs at '" +
                se[i].first + "'";
        const StatValue &sv = se[i].second;
        const StatValue &dv = de[i].second;
        if (sv.value != dv.value || sv.buckets != dv.buckets)
            return "skip-vs-dense: stat '" + se[i].first +
                "' differs: " + std::to_string(sv.value) + " != " +
                std::to_string(dv.value);
    }
    return "";
}

/** "" when two snapshots agree bit for bit, else the first mismatch. */
std::string
compareStats(const char *what, const StatsSnapshot &a,
             const StatsSnapshot &b)
{
    const auto &ae = a.entries();
    const auto &be = b.entries();
    if (ae.size() != be.size())
        return std::string(what) + ": stat counts differ";
    for (std::size_t i = 0; i < ae.size(); ++i) {
        if (ae[i].first != be[i].first)
            return std::string(what) + ": stat order differs at '" +
                ae[i].first + "'";
        const StatValue &av = ae[i].second;
        const StatValue &bv = be[i].second;
        if (av.value != bv.value || av.buckets != bv.buckets)
            return std::string(what) + ": stat '" + ae[i].first +
                "' differs: " + std::to_string(av.value) + " != " +
                std::to_string(bv.value);
    }
    return "";
}

/**
 * Round-trip the case's trace through the columnar store (save →
 * mmap-load → simulate) and check the loaded copy reproduces the
 * original run byte for byte, both through the rebuilt-AoS pipeline
 * and straight off the mmap-ed column view. Compression alternates by
 * seed so both file layouts stay covered.
 */
std::string
checkStoreRoundTrip(const Trace &trace, const MachineConfig &config,
                    PolicyKind kind, ExperimentConfig cfg,
                    const PolicyRun &reference, std::uint64_t seed)
{
    const std::string path = "/tmp/csim_fuzz_" +
        std::to_string(::getpid()) + "_" + std::to_string(seed) +
        ".trc2";
    TraceStoreOptions sopt;
    sopt.compressWide = (seed & 1) != 0;
    if (!saveTraceStore(trace, path, sopt))
        return "store: save failed";
    TraceSoA soa;
    TraceStoreInfo info;
    const TraceIoStatus st = loadTraceStore(soa, path, &info);
    std::remove(path.c_str());
    if (st != TraceIoStatus::Ok)
        return std::string("store: load failed: ") +
            traceIoStatusName(st);
    if (soa.size() != trace.size())
        return "store: instruction count changed in round trip";
    if (info.compressed != sopt.compressWide)
        return "store: compression flag not preserved";

    // Rebuilt-AoS path: identical inputs through the identical
    // harness must give identical outputs.
    const Trace rebuilt = extractRegion(soa, 0, soa.size());
    const PolicyRun replay = runPolicy(rebuilt, config, kind, cfg);
    if (replay.sim.cycles != reference.sim.cycles)
        return "store: replay cycles " +
            std::to_string(replay.sim.cycles) + " != " +
            std::to_string(reference.sim.cycles);
    if (replay.sim.instructions != reference.sim.instructions)
        return "store: replay instruction counts differ";
    std::string diff = compareStats("store-replay", replay.sim.stats,
                                    reference.sim.stats);
    if (!diff.empty())
        return diff;

    // Column-view path: the sim reading records straight out of the
    // mapping (no AoS trace behind it) must agree with the same bare
    // run on the original trace.
    {
        ModNSteering steer_aos, steer_soa;
        AgeScheduling sched_aos, sched_soa;
        const SimResult aos =
            TimingSim(config, trace, steer_aos, sched_aos).run();
        const SimResult cols =
            TimingSim(config, soa, steer_soa, sched_soa).run();
        if (aos.cycles != cols.cycles)
            return "store: column-view cycles " +
                std::to_string(cols.cycles) + " != " +
                std::to_string(aos.cycles);
        diff = compareStats("store-column-view", cols.stats, aos.stats);
        if (!diff.empty())
            return diff;
    }
    return "";
}

/**
 * Adaptive-manager leg: rerun the case with the closed-loop manager
 * retuning the policy knobs on a short interval (reaction latency and
 * dwell forced to 1 so transitions actually fire at fuzz trace sizes),
 * under the live checker. Mid-run knob changes must not break any
 * pipeline invariant, and two identical adaptive runs must agree bit
 * for bit — the manager's decisions are a pure function of the
 * interval records. Exercises the retune surface on every policy
 * stack, including those with no knobs to turn (ModN, LoadBal).
 */
std::string
checkAdaptiveCase(const Trace &trace, const MachineConfig &config,
                  PolicyKind kind, ExperimentConfig cfg)
{
    cfg.verify.checker = true;
    cfg.verify.panicOnViolation = false;
    cfg.adaptive.enabled = true;
    cfg.adaptive.intervalCycles = 256;
    cfg.adaptive.reactionIntervals = 1;
    cfg.adaptive.minDwellIntervals = 1;
    const PolicyRun a = runPolicy(trace, config, kind, cfg);
    if (a.checkerViolations)
        return "adaptive: " + a.checkerDetail;
    if (!a.adaptive.present())
        return "adaptive: manager attached but exported no summary";
    const PolicyRun b = runPolicy(trace, config, kind, cfg);
    if (a.sim.cycles != b.sim.cycles)
        return "adaptive: replay cycles " +
            std::to_string(b.sim.cycles) + " != " +
            std::to_string(a.sim.cycles);
    return compareStats("adaptive-replay", a.sim.stats, b.sim.stats);
}

/** Returns "" on a clean case, else the first failure description. */
std::string
runCase(std::uint64_t seed, const FuzzArgs &args)
{
    Rng rng(seed);
    const MachineConfig config = randomMachineConfig(rng);
    const Trace trace = randomTrace(rng, args.instructions);
    const PolicyKind kind = fuzzPolicies[rng.below(7)];

    ExperimentConfig cfg;
    cfg.instructions = args.instructions;
    cfg.seeds = {seed};
    cfg.verify.checker = true;
    cfg.verify.panicOnViolation = false;

    if (args.verbose) {
        std::fprintf(stderr, "seed %llu:\n",
                     static_cast<unsigned long long>(seed));
        describeCase(config, kind, trace.size());
    }

    const PolicyRun run = runPolicy(trace, config, kind, cfg);
    if (run.checkerViolations) {
        describeCase(config, kind, trace.size());
        return run.checkerDetail;
    }

    const double cpi = run.sim.instructions ?
        static_cast<double>(run.sim.cycles) /
        static_cast<double>(run.sim.instructions) : 0.0;

    OracleCheck floor = checkCpiFloor(cpi, config);
    if (!floor.ok) {
        describeCase(config, kind, trace.size());
        return floor.detail;
    }

    if (config.numClusters > 1) {
        cfg.verify = VerifyConfig{};
        const PolicyRun env =
            runPolicy(trace, monolithicEnvelope(config), kind, cfg);
        const double env_cpi = env.sim.instructions ?
            static_cast<double>(env.sim.cycles) /
            static_cast<double>(env.sim.instructions) : 0.0;
        OracleCheck vs_env = checkCpiLowerBound(
            cpi, env_cpi, args.relTol, "monolithic-envelope");
        if (!vs_env.ok) {
            describeCase(config, kind, trace.size());
            return vs_env.detail;
        }
    }

    const std::string step_diff =
        checkSteppingDifferential(trace, config, kind, cfg);
    if (!step_diff.empty()) {
        describeCase(config, kind, trace.size());
        return step_diff;
    }

    cfg.verify.checker = true;
    cfg.verify.panicOnViolation = false;
    const std::string store_diff =
        checkStoreRoundTrip(trace, config, kind, cfg, run, seed);
    if (!store_diff.empty()) {
        describeCase(config, kind, trace.size());
        return store_diff;
    }

    const std::string adaptive_diff =
        checkAdaptiveCase(trace, config, kind, cfg);
    if (!adaptive_diff.empty()) {
        describeCase(config, kind, trace.size());
        return adaptive_diff;
    }
    return "";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const FuzzArgs args = parseArgs(argc, argv);

    for (std::uint64_t i = 0; i < args.numSeeds; ++i) {
        const std::uint64_t seed = args.startSeed + i;
        const std::string failure = runCase(seed, args);
        if (!failure.empty()) {
            std::fprintf(
                stderr,
                "fuzz_sim: FAIL seed=%llu\n  %s\n"
                "reproduce: fuzz_sim --start %llu --seeds 1 "
                "--instructions %llu --tol %g --verbose\n",
                static_cast<unsigned long long>(seed),
                failure.c_str(),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(args.instructions),
                args.relTol);
            return 1;
        }
    }
    if (args.numSeeds > 1 && batchSkipCycles == 0) {
        std::fprintf(stderr,
                     "fuzz_sim: FAIL skip-ahead never engaged across "
                     "the whole batch -- the stepping differential "
                     "compared dense against dense\n");
        return 1;
    }
    std::fprintf(stderr,
                 "fuzz_sim: %llu seeds clean (start %llu, %llu insts "
                 "each, %llu cycles skipped ahead)\n",
                 static_cast<unsigned long long>(args.numSeeds),
                 static_cast<unsigned long long>(args.startSeed),
                 static_cast<unsigned long long>(args.instructions),
                 static_cast<unsigned long long>(batchSkipCycles));
    return 0;
}
